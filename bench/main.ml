(* bench/main.exe — the full benchmark harness.

   Part 1 (B1-B8): Bechamel microbenchmarks of the hot substrate
   operations and of one complete discovery run per key algorithm.

   Part 2: the experiment suite — regenerates every table (T1-T7) and
   figure (F1-F4) of EXPERIMENTS.md into results/.

   Set REPRO_BENCH_QUICK=1 to run the experiment suite at reduced sizes
   (useful for smoke-testing; the published numbers use the full mode).
   Set REPRO_BENCH_SKIP_EXPERIMENTS=1 to run the microbenchmarks only. *)

open Bechamel
open Toolkit
open Repro_util
open Repro_graph
open Repro_discovery

(* ---------- microbenchmark subjects ---------- *)

let bitset_pair n seed =
  let rng = Rng.create ~seed in
  let mk () =
    let b = Bitset.create n in
    for _ = 1 to n / 2 do
      ignore (Bitset.add b (Rng.int rng n))
    done;
    b
  in
  (mk (), mk ())

let b1_bitset_union =
  let dst0, src = bitset_pair 16384 1 in
  Test.make ~name:"B1 bitset_union_16384"
    (Staged.stage (fun () ->
         let dst = Bitset.copy dst0 in
         ignore (Bitset.union_into ~dst ~src)))

let b2_rng =
  let rng = Rng.create ~seed:2 in
  Test.make ~name:"B2 rng_int_1k"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.int rng 4096
         done;
         !acc))

let b3_knowledge_merge =
  let n = 8192 in
  let labels = Array.init n (fun i -> i) in
  let _, src = bitset_pair n 3 in
  Test.make ~name:"B3 knowledge_merge_8192"
    (Staged.stage (fun () ->
         let k = Knowledge.create ~n ~owner:0 ~labels in
         ignore (Knowledge.merge_bits k src)))

let b4_graph_gen =
  Test.make ~name:"B4 kout_graph_4096"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          ignore (Generate.k_out ~rng:(Rng.create ~seed:!counter) ~n:4096 ~k:3)))

let full_run name algo =
  Test.make ~name
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let seed = !counter in
          let topo =
            Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:1024 ~seed
          in
          let r = Run.exec_spec { Run.default_spec with Run.seed } algo topo in
          assert r.Run.completed))

let b5 = full_run "B5 full_run_hm_1024" Hm_gossip.algorithm
let b6 = full_run "B6 full_run_name_dropper_1024" Name_dropper.algorithm
let b7 = full_run "B7 full_run_min_pointer_1024" Min_pointer.algorithm
let b8 = full_run "B8 full_run_rand_gossip_1024" Rand_gossip.algorithm

let microbenchmarks () =
  let tests =
    Test.make_grouped ~name:"repro"
      [ b1_bitset_union; b2_rng; b3_knowledge_merge; b4_graph_gen; b5; b6; b7; b8 ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Bechamel.Analyze.all ols Instance.monotonic_clock raw in
  print_endline "## Microbenchmarks (monotonic clock, OLS ns/run)\n";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Bechamel.Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  let table = Table.create ~columns:[ ("benchmark", Table.Left); ("time/run", Table.Right) ] in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row table [ name; human ])
    rows;
  Table.print table;
  print_newline ()

let () =
  microbenchmarks ();
  if Sys.getenv_opt "REPRO_BENCH_SKIP_EXPERIMENTS" = None then begin
    let quick = Sys.getenv_opt "REPRO_BENCH_QUICK" <> None in
    match
      Repro_experiments.Suite.run ~quick ~jobs:(Pool.default_jobs ()) ~results_dir:"results" ()
    with
    | Ok () -> ()
    | Error msg ->
      prerr_endline msg;
      exit 1
  end
