(* bench/main.exe — the full benchmark harness.

   Part 1 (B1-B11): Bechamel microbenchmarks of the hot substrate
   operations and of one complete discovery run per key algorithm, each
   measured on two instances: monotonic clock (ns/run) and minor-heap
   allocation (words/run); plus two single-shot subjects — B12 (full hm
   run at 65,536) and B13 (continuous-service soak, per-tick). The
   allocation figure is the one the zero-copy/allocation-free engine
   work is graded on — see EXPERIMENTS.md "Benchmark trajectory".

   Part 2: the experiment suite — regenerates every table (T1-T7) and
   figure (F1-F4) of EXPERIMENTS.md into results/.

   Modes:
     bench/main.exe            table output + experiment suite
     bench/main.exe --json     microbenchmarks only, written as
                               machine-readable JSON (default
                               BENCH_results.json; override with -o)

   Set REPRO_BENCH_QUICK=1 to run the experiment suite at reduced sizes
   (useful for smoke-testing; the published numbers use the full mode).
   Set REPRO_BENCH_SKIP_EXPERIMENTS=1 to run the microbenchmarks only. *)

open Bechamel
open Toolkit
open Repro_util
open Repro_graph
open Repro_discovery

(* ---------- microbenchmark subjects ---------- *)

let bitset_pair n seed =
  let rng = Rng.create ~seed in
  let mk () =
    let b = Bitset.create n in
    for _ = 1 to n / 2 do
      ignore (Bitset.add b (Rng.int rng n))
    done;
    b
  in
  (mk (), mk ())

let b1_bitset_union =
  let dst0, src = bitset_pair 16384 1 in
  Test.make ~name:"B1 bitset_union_16384"
    (Staged.stage (fun () ->
         let dst = Bitset.copy dst0 in
         ignore (Bitset.union_into ~dst ~src)))

let b2_rng =
  let rng = Rng.create ~seed:2 in
  Test.make ~name:"B2 rng_int_1k"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.int rng 4096
         done;
         !acc))

let cset_pair n seed =
  let rng = Rng.create ~seed in
  let mk () =
    let b = Cset.create n in
    for _ = 1 to n / 2 do
      ignore (Cset.add b (Rng.int rng n))
    done;
    b
  in
  (mk (), mk ())

let b3_knowledge_merge =
  let n = 8192 in
  let labels = Array.init n (fun i -> i) in
  let _, src = cset_pair n 3 in
  Test.make ~name:"B3 knowledge_merge_8192"
    (Staged.stage (fun () ->
         let k = Knowledge.create ~n ~owner:0 ~labels () in
         ignore (Knowledge.merge_bits k src)))

let b4_graph_gen =
  Test.make ~name:"B4 kout_graph_4096"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          ignore (Generate.k_out ~rng:(Rng.create ~seed:!counter) ~n:4096 ~k:3)))

let full_run name algo =
  Test.make ~name
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let seed = !counter in
          let topo =
            Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:1024 ~seed
          in
          let r = Run.exec_spec { Run.default_spec with Run.seed } algo topo in
          assert r.Run.completed))

let b5 = full_run "B5 full_run_hm_1024" Hm_gossip.algorithm
let b6 = full_run "B6 full_run_name_dropper_1024" Name_dropper.algorithm
let b7 = full_run "B7 full_run_min_pointer_1024" Min_pointer.algorithm
let b8 = full_run "B8 full_run_rand_gossip_1024" Rand_gossip.algorithm

(* One broadcast round of the swamping instance at n = 65536, against a
   single shared receiver whose knowledge is already complete (so the
   merge takes the O(1) saturated fast path and the subject isolates the
   per-send cost: snapshot, payload construction, measurement,
   delivery). This is the subject the zero-copy payload work targets —
   before it, every round pays a full bitset snapshot plus an O(n)
   materialisation of the destination list. *)
let b9_broadcast =
  let n = 65536 in
  let labels = Array.init n (fun i -> i) in
  let full =
    let b = Cset.create n in
    for v = 0 to n - 1 do
      ignore (Cset.add b v)
    done;
    b
  in
  let instance node =
    let ctx =
      {
        Algorithm.n;
        node;
        neighbors = [||];
        labels;
        rng = Rng.create ~seed:(9 + node);
        params = Params.default;
      }
    in
    let inst = Swamping.algorithm.Algorithm.make ctx in
    ignore (Knowledge.merge_bits inst.Algorithm.knowledge full);
    inst
  in
  let sender = instance 0 in
  let receiver = instance 1 in
  let metrics = Repro_engine.Metrics.create () in
  Repro_engine.Metrics.begin_round metrics;
  let send ~dst:_ payload =
    Repro_engine.Metrics.record_send metrics ~pointers:(Payload.measure payload) ~bytes:0;
    receiver.Algorithm.receive ~src:0 payload
  in
  Test.make ~name:"B9 broadcast_round_65536"
    (Staged.stage (fun () -> sender.Algorithm.round ~round:1 ~send))

(* Compressed-vs-dense set unions at the knowledge-state sizes the
   large-n engine work targets. Same shape as B1: copy the destination,
   union a fixed half-full source in. The adaptive set pays container
   dispatch at 4096, meets its promotion boundary around 65,536 (one
   container) and must win asymptotically at 1M, where the dense bitmap
   scans 15,625 words regardless of occupancy. *)
let union_pair_subjects =
  List.concat_map
    (fun n ->
      let dstb, srcb = bitset_pair n (n lxor 21) in
      let dstc, srcc = cset_pair n (n lxor 22) in
      [
        Test.make
          ~name:(Printf.sprintf "B10 bitset_union_%d" n)
          (Staged.stage (fun () ->
               let dst = Bitset.copy dstb in
               ignore (Bitset.union_into ~dst ~src:srcb)));
        Test.make
          ~name:(Printf.sprintf "B11 cset_union_%d" n)
          (Staged.stage (fun () ->
               let dst = Cset.copy dstc in
               ignore (Cset.union_into ~dst ~src:srcc)));
      ])
    [ 4096; 65536; 1048576 ]

(* ---------- measurement and reporting ---------- *)

type row = { name : string; ns_per_run : float; minor_words_per_run : float }

let estimate ols =
  match Bechamel.Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> Float.nan

let measure_subjects () =
  let tests =
    Test.make_grouped ~name:"repro"
      ([ b1_bitset_union; b2_rng; b3_knowledge_merge; b4_graph_gen; b5; b6; b7; b8; b9_broadcast ]
      @ union_pair_subjects)
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let times = Bechamel.Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Bechamel.Analyze.all ols Instance.minor_allocated raw in
  let rows =
    Hashtbl.fold
      (fun name t acc ->
        let words =
          match Hashtbl.find_opt allocs name with Some a -> estimate a | None -> Float.nan
        in
        { name; ns_per_run = estimate t; minor_words_per_run = words } :: acc)
      times []
  in
  List.sort (fun a b -> String.compare a.name b.name) rows

(* The scale subject: one complete hm run at n = 65,536 (compact
   knowledge regime, domain-parallel engine at the machine's default job
   count). Far too slow for an OLS loop — measured as a single shot, so
   its row is a wall-clock point, not a per-run estimate. Skipped under
   REPRO_BENCH_QUICK. *)
let scale_subject () =
  if Sys.getenv_opt "REPRO_BENCH_QUICK" <> None then []
  else begin
    let n = 65536 in
    let topo = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed:1 in
    let spec = { Run.default_spec with Run.seed = 1; jobs = Pool.default_jobs () } in
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = Run.exec_spec spec Hm_gossip.algorithm topo in
    let dt = Unix.gettimeofday () -. t0 in
    let dw = Gc.minor_words () -. w0 in
    assert r.Run.completed;
    [ { name = "repro/B12 full_run_hm_65536"; ns_per_run = dt *. 1e9; minor_words_per_run = dw } ]
  end

(* The soak subject: steady-state cost of the continuous discovery
   service under churn, normalised per virtual tick (not per run) so the
   figure is comparable across soak lengths. Unlike the one-shot hot
   paths this loop is not allocation-free — every tick builds payload
   batches and trace events — so the bench-alloc-guard pins it with a
   words-per-tick budget rather than at zero. Single-shot like B12: a
   soak is far too long for an OLS loop. *)
let soak_subject () =
  let module Service = Repro_service.Service in
  let ticks = 2000 and n = 64 in
  let cap = n + 16 in
  let cooldown = int_of_float (Service.default_lag_bound ~cap) + 16 in
  let cfg =
    {
      Service.n;
      cap;
      seed = 3;
      ticks;
      churn = Some { Service.rate = 0.05; min_live = n / 2; until = ticks - cooldown };
      fault = Repro_engine.Fault.none;
      lag_bound = None;
      full_sync = None;
      backend = None;
      indirect_k = 2;
      lifeguard = true;
      trace = Repro_engine.Trace.null;
    }
  in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let stats = Service.run cfg in
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  assert (stats.Service.epochs = stats.Service.epochs_closed);
  let per_tick v = v /. float_of_int ticks in
  [ { name = "repro/B13 soak_service_tick_64";
      ns_per_run = per_tick (dt *. 1e9);
      minor_words_per_run = per_tick dw } ]

let human_time ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let human_words w =
  if Float.is_nan w then "n/a"
  else if w >= 1e6 then Printf.sprintf "%.2f Mw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.2f kw" (w /. 1e3)
  else Printf.sprintf "%.0f w" w

let print_table rows =
  print_endline "## Microbenchmarks (OLS per-run estimates)\n";
  let table =
    Table.create
      ~columns:
        [ ("benchmark", Table.Left); ("time/run", Table.Right); ("minor words/run", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table [ r.name; human_time r.ns_per_run; human_words r.minor_words_per_run ])
    rows;
  Table.print table;
  print_newline ()

(* Machine-readable trajectory point: one JSON document per bench run,
   compared across PRs. NaN (an estimate bechamel could not produce) is
   encoded as null. *)
let write_json path rows =
  let oc = open_out path in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"repro-bench/v1\",\n";
  output_string oc "  \"units\": { \"ns_per_run\": \"ns\", \"minor_words_per_run\": \"words\" },\n";
  output_string oc "  \"subjects\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": %s }%s\n"
        r.name (num r.ns_per_run)
        (num r.minor_words_per_run)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d subjects)\n" path (List.length rows)

let () =
  let json = ref false in
  let out = ref "BENCH_results.json" in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "-o" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "usage: %s [--json] [-o FILE]\nunknown argument %S\n" Sys.argv.(0) arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows =
    List.sort
      (fun a b -> String.compare a.name b.name)
      (measure_subjects () @ scale_subject () @ soak_subject ())
  in
  print_table rows;
  if !json then write_json !out rows
  else if Sys.getenv_opt "REPRO_BENCH_SKIP_EXPERIMENTS" = None then begin
    let quick = Sys.getenv_opt "REPRO_BENCH_QUICK" <> None in
    match
      Repro_experiments.Suite.run ~quick ~jobs:(Pool.default_jobs ()) ~results_dir:"results" ()
    with
    | Ok () -> ()
    | Error msg ->
      prerr_endline msg;
      exit 1
  end
