(** Directed knowledge graphs.

    A topology is the *initial* knowledge state of a resource-discovery
    instance: an edge [u → v] means machine [u] starts out knowing machine
    [v]'s address. Nodes are the integers [0 .. n-1]. Self-loops are
    implicit (every machine knows itself) and never stored. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** Build a topology; duplicate edges and self-loops are dropped.
    @raise Invalid_argument if [n < 0] or an endpoint is out of range. *)

val create_packed : n:int -> codes:int array -> len:int -> t
(** [create_packed ~n ~codes ~len] builds a topology from the packed
    edge codes [codes.(0 .. len-1)], each [u * n + v]. The allocation-
    lean construction path for generators that produce many edges: the
    caller keeps one grow-only scratch array across calls instead of
    consing a tuple list per graph. [codes] is scratch — its prefix is
    sorted and compacted in place. Duplicates and self-loops are
    dropped, as in {!create}.
    @raise Invalid_argument if [n < 0], [len] exceeds the array, or a
    code is out of range. *)

val n : t -> int
(** Number of nodes. *)

val out_degree : t -> int -> int
val out_neighbors : t -> int -> int array
(** The nodes [v] initially knows, in increasing order. The returned
    array is fresh on every call. *)

val edges : t -> (int * int) list
(** All edges, lexicographically ordered. *)

val edge_count : t -> int

val mem_edge : t -> int -> int -> bool

val symmetrize : t -> t
(** Add the reverse of every edge (knowledge graphs are often built from
    undirected acquaintance relations). *)

val map_nodes : t -> int array -> t
(** [map_nodes t perm] relabels node [i] as [perm.(i)].
    @raise Invalid_argument if [perm] is not a permutation of [0..n-1]. *)

val pp : Format.formatter -> t -> unit
(** Short description like ["topology(n=16, m=30)"]. *)
