open Repro_util

let sym u v = [ (u, v); (v, u) ]

let path n =
  let edges = List.concat (List.init (max 0 (n - 1)) (fun i -> sym i (i + 1))) in
  Topology.create ~n ~edges

let directed_path n =
  Topology.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n <= 2 then path n
  else
    let edges = List.concat (List.init n (fun i -> sym i ((i + 1) mod n))) in
    Topology.create ~n ~edges

let directed_cycle n =
  if n <= 1 then Topology.create ~n ~edges:[]
  else Topology.create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  Topology.create ~n ~edges:(List.concat (List.init (max 0 (n - 1)) (fun i -> sym 0 (i + 1))))

let inward_star n =
  Topology.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i + 1, 0)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  Topology.create ~n ~edges:!edges

let binary_tree n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then edges := sym i l @ !edges;
    if r < n then edges := sym i r @ !edges
  done;
  Topology.create ~n ~edges:!edges

let grid ~rows ~cols =
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := sym (id r c) (id r (c + 1)) @ !edges;
      if r + 1 < rows then edges := sym (id r c) (id (r + 1) c) @ !edges
    done
  done;
  Topology.create ~n ~edges:!edges

let hypercube ~dim =
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := sym u v @ !edges
    done
  done;
  Topology.create ~n ~edges:!edges

let lollipop n =
  let head = (n + 1) / 2 in
  let edges = ref [] in
  for u = 0 to head - 1 do
    for v = u + 1 to head - 1 do
      edges := sym u v @ !edges
    done
  done;
  for i = head - 1 to n - 2 do
    edges := sym i (i + 1) @ !edges
  done;
  Topology.create ~n ~edges:!edges

(* The paper's sorted-input nemesis: every node's single pointer targets
   the node with the next-smaller id (node 0 knows nobody). Ids coincide
   with ranks, so deterministic min-pointer strategies collapse the whole
   instance onto node 0 instead of spreading load. *)
let sorted_chain n = Topology.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i + 1, i)))

(* The Kniesburges et al. deterministic worst case: w interleaved
   descending sorted lists (node v points to v - w) whose heads are
   chained together. With w = 1 this degenerates to the sorted chain. *)
let kniesburges ~n ~w =
  if w < 1 then invalid_arg "Generate.kniesburges: need w >= 1";
  let edges = ref [] in
  for v = w to n - 1 do
    edges := (v, v - w) :: !edges
  done;
  for i = 0 to min (w - 2) (n - 2) do
    edges := (i, i + 1) :: !edges
  done;
  Topology.create ~n ~edges:!edges

(* Stitch an edge list into a single weakly connected component by
   chaining component representatives with symmetric edges. *)
let stitch ~n edges =
  let uf = Unionfind.create n in
  List.iter (fun (u, v) -> ignore (Unionfind.union uf u v)) edges;
  if Unionfind.count uf <= 1 then edges
  else begin
    let reps = List.map List.hd (Unionfind.components uf) in
    let extra =
      match reps with
      | [] | [ _ ] -> []
      | first :: rest ->
        List.concat (List.map2 sym (first :: List.rev (List.tl (List.rev rest))) rest)
    in
    extra @ edges
  end

(* Grow-only per-domain scratch of packed [u * n + v] edge codes. The
   k-out family is generated at every sweep cell and benchmark
   iteration, and consing 2nk edge tuples per graph dominated the
   generation allocation profile; pushing codes into a reused array
   leaves only the result CSR arrays as per-call allocation.
   Domain-local because parallel sweeps generate graphs concurrently. *)
let code_scratch : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])

let k_out ~rng ~n ~k =
  if k < 1 || k >= n then invalid_arg "Generate.k_out: need 1 <= k < n";
  let scratch = Domain.DLS.get code_scratch in
  (* 2nk sampled edges plus at most 2(n-1) stitch edges *)
  let cap = (2 * n * k) + (2 * n) in
  if Array.length !scratch < cap then scratch := Array.make (max cap (2 * Array.length !scratch)) 0;
  let codes = !scratch in
  let len = ref 0 in
  let push u v =
    codes.(!len) <- (u * n) + v;
    incr len
  in
  for u = 0 to n - 1 do
    let targets = Rng.sample_distinct rng ~n ~k ~avoid:u in
    Array.iter
      (fun v ->
        push u v;
        push v u)
      targets
  done;
  (* stitch into one weak component, exactly as [stitch] does: chain
     consecutive component representatives (their min members, in
     ascending order — a function of the partition alone) with
     symmetric edges *)
  let uf = Unionfind.create n in
  for i = 0 to !len - 1 do
    ignore (Unionfind.union uf (codes.(i) / n) (codes.(i) mod n))
  done;
  if Unionfind.count uf > 1 then begin
    let reps = List.map List.hd (Unionfind.components uf) in
    match reps with
    | [] -> ()
    | first :: rest ->
      ignore
        (List.fold_left
           (fun prev r ->
             push prev r;
             push r prev;
             r)
           first rest)
  end;
  Topology.create_packed ~n ~codes ~len:!len

let erdos_renyi ~rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generate.erdos_renyi: p out of range";
  let edges = ref [] in
  (* Geometric skipping keeps generation O(m) rather than O(n^2). *)
  if p > 0.0 then begin
    let total = n * n in
    let idx = ref (-1) in
    let log1mp = log (1.0 -. Float.min p 0.999999) in
    let continue = ref true in
    while !continue do
      let r = Float.max 1e-12 (1.0 -. Rng.float rng 1.0) in
      let skip = 1 + int_of_float (Float.floor (log r /. log1mp)) in
      idx := !idx + skip;
      if !idx >= total then continue := false
      else begin
        let u = !idx / n and v = !idx mod n in
        if u <> v then edges := (u, v) :: (v, u) :: !edges
      end
    done
  end;
  Topology.create ~n ~edges:(stitch ~n !edges)

let clustered ~rng ~n ~clusters ~intra_k =
  if clusters < 1 || clusters > n then invalid_arg "Generate.clustered: bad cluster count";
  let base = n / clusters and extra = n mod clusters in
  let starts = Array.make (clusters + 1) 0 in
  for c = 0 to clusters - 1 do
    starts.(c + 1) <- starts.(c) + base + (if c < extra then 1 else 0)
  done;
  let edges = ref [] in
  for c = 0 to clusters - 1 do
    let lo = starts.(c) and hi = starts.(c + 1) in
    let size = hi - lo in
    if size > 1 then begin
      let k = min intra_k (size - 1) in
      for u = lo to hi - 1 do
        let targets = Rng.sample_distinct rng ~n:size ~k ~avoid:(u - lo) in
        Array.iter (fun v -> edges := (u, lo + v) :: (lo + v, u) :: !edges) targets
      done;
      (* guarantee intra-pod weak connectivity with a cheap pod ring *)
      for u = lo to hi - 2 do
        edges := sym u (u + 1) @ !edges
      done
    end
  done;
  (* gateway ring between pods *)
  for c = 0 to clusters - 1 do
    edges := sym starts.(c) starts.((c + 1) mod clusters) @ !edges
  done;
  Topology.create ~n ~edges:(stitch ~n !edges)

let seeded_directory ~rng ~n ~seeds ~fanout =
  if seeds < 1 || seeds > n then invalid_arg "Generate.seeded_directory: bad seed count";
  if fanout < 1 || fanout > seeds then invalid_arg "Generate.seeded_directory: bad fanout";
  let edges = ref [] in
  for u = 0 to seeds - 1 do
    for v = 0 to seeds - 1 do
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  for u = seeds to n - 1 do
    let targets = Rng.sample_distinct rng ~n:seeds ~k:fanout ~avoid:(-1) in
    Array.iter (fun v -> edges := (u, v) :: !edges) targets
  done;
  Topology.create ~n ~edges:!edges

let barabasi_albert ~rng ~n ~m =
  if m < 1 then invalid_arg "Generate.barabasi_albert: m must be >= 1";
  (* Preferential attachment via the repeated-endpoints trick: choosing a
     uniform element of the endpoint multiset selects nodes with
     probability proportional to their degree. *)
  let endpoint_count = ref 0 in
  let endpoint_arr = Array.make (max 1 (2 * m * n)) 0 in
  let push v =
    endpoint_arr.(!endpoint_count) <- v;
    incr endpoint_count
  in
  let edges = ref [] in
  let seed_size = min n (m + 1) in
  (* initial clique among the first m+1 nodes *)
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      edges := sym u v @ !edges;
      push u;
      push v
    done
  done;
  for v = seed_size to n - 1 do
    let chosen = Hashtbl.create (2 * m) in
    let tries = ref 0 in
    while Hashtbl.length chosen < m && !tries < 50 * m do
      incr tries;
      let u = endpoint_arr.(Rng.int rng !endpoint_count) in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := sym u v @ !edges;
        push u;
        push v)
      chosen
  done;
  Topology.create ~n ~edges:(stitch ~n !edges)

let watts_strogatz ~rng ~n ~k ~beta =
  if k < 1 then invalid_arg "Generate.watts_strogatz: k must be >= 1";
  if beta < 0.0 || beta > 1.0 then invalid_arg "Generate.watts_strogatz: beta out of range";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for j = 1 to min k (n - 1) do
      let v = (u + j) mod n in
      if Rng.bernoulli rng ~p:beta && n > 2 then begin
        (* rewire the far endpoint to a uniform random node *)
        let rec fresh () =
          let w = Rng.int rng n in
          if w = u then fresh () else w
        in
        edges := sym u (fresh ()) @ !edges
      end
      else if u <> v then edges := sym u v @ !edges
    done
  done;
  Topology.create ~n ~edges:(stitch ~n !edges)

let random_geometric ~rng ~n ~radius =
  if radius <= 0.0 then invalid_arg "Generate.random_geometric: radius must be positive";
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let edges = ref [] in
  (* grid-bucket the points so neighbour search is O(n) for small radii *)
  let cells = max 1 (int_of_float (1.0 /. radius)) in
  let bucket = Hashtbl.create (2 * n) in
  let cell_of v =
    (min (cells - 1) (int_of_float (xs.(v) *. float_of_int cells)),
     min (cells - 1) (int_of_float (ys.(v) *. float_of_int cells)))
  in
  for v = 0 to n - 1 do
    let c = cell_of v in
    Hashtbl.replace bucket c (v :: (try Hashtbl.find bucket c with Not_found -> []))
  done;
  let r2 = radius *. radius in
  for v = 0 to n - 1 do
    let cx, cy = cell_of v in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt bucket (cx + dx, cy + dy) with
        | None -> ()
        | Some candidates ->
          List.iter
            (fun u ->
              if u > v then begin
                let ddx = xs.(u) -. xs.(v) and ddy = ys.(u) -. ys.(v) in
                if (ddx *. ddx) +. (ddy *. ddy) <= r2 then edges := sym u v @ !edges
              end)
            candidates
      done
    done
  done;
  Topology.create ~n ~edges:(stitch ~n !edges)

type family =
  | Path
  | Directed_path
  | Cycle
  | Directed_cycle
  | Star
  | Inward_star
  | Complete
  | Binary_tree
  | Grid
  | Hypercube
  | Lollipop
  | Sorted_chain
  | Kniesburges of int
  | K_out of int
  | Erdos_renyi of float
  | Clustered of int * int
  | Seeded_directory of int * int
  | Barabasi_albert of int
  | Watts_strogatz of int * float
  | Random_geometric of float

let family_name = function
  | Path -> "path"
  | Directed_path -> "dpath"
  | Cycle -> "cycle"
  | Directed_cycle -> "dcycle"
  | Star -> "star"
  | Inward_star -> "instar"
  | Complete -> "complete"
  | Binary_tree -> "tree"
  | Grid -> "grid"
  | Hypercube -> "hypercube"
  | Lollipop -> "lollipop"
  | Sorted_chain -> "sorted_chain"
  | Kniesburges w -> Printf.sprintf "kniesburges:%d" w
  | K_out k -> Printf.sprintf "kout:%d" k
  | Erdos_renyi p -> Printf.sprintf "er:%g" p
  | Clustered (c, k) -> Printf.sprintf "clustered:%d:%d" c k
  | Seeded_directory (s, f) -> Printf.sprintf "seeds:%d:%d" s f
  | Barabasi_albert m -> Printf.sprintf "ba:%d" m
  | Watts_strogatz (k, b) -> Printf.sprintf "ws:%d:%g" k b
  | Random_geometric r -> Printf.sprintf "geo:%g" r

let family_of_string s =
  let parts = String.split_on_char ':' s in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some i -> k i
    | None -> Error (Printf.sprintf "%s: expected integer argument, got %S" name v)
  in
  match parts with
  | [ "path" ] -> Ok Path
  | [ "dpath" ] -> Ok Directed_path
  | [ "cycle" ] -> Ok Cycle
  | [ "dcycle" ] -> Ok Directed_cycle
  | [ "star" ] -> Ok Star
  | [ "instar" ] -> Ok Inward_star
  | [ "complete" ] -> Ok Complete
  | [ "tree" ] -> Ok Binary_tree
  | [ "grid" ] -> Ok Grid
  | [ "hypercube" ] -> Ok Hypercube
  | [ "lollipop" ] -> Ok Lollipop
  | [ "sorted_chain" ] -> Ok Sorted_chain
  | [ "kniesburges" ] -> Ok (Kniesburges 8)
  | [ "kniesburges"; w ] -> int_arg "kniesburges" w (fun w -> Ok (Kniesburges w))
  | [ "kout"; k ] -> int_arg "kout" k (fun k -> Ok (K_out k))
  | [ "er"; p ] -> (
    match float_of_string_opt p with
    | Some p -> Ok (Erdos_renyi p)
    | None -> Error (Printf.sprintf "er: expected float argument, got %S" p))
  | [ "clustered"; c; k ] ->
    int_arg "clustered" c (fun c -> int_arg "clustered" k (fun k -> Ok (Clustered (c, k))))
  | [ "seeds"; s; f ] ->
    int_arg "seeds" s (fun s -> int_arg "seeds" f (fun f -> Ok (Seeded_directory (s, f))))
  | [ "ba"; m ] -> int_arg "ba" m (fun m -> Ok (Barabasi_albert m))
  | [ "ws"; k; b ] ->
    int_arg "ws" k (fun k ->
        match float_of_string_opt b with
        | Some b -> Ok (Watts_strogatz (k, b))
        | None -> Error (Printf.sprintf "ws: expected float argument, got %S" b))
  | [ "geo"; r ] -> (
    match float_of_string_opt r with
    | Some r -> Ok (Random_geometric r)
    | None -> Error (Printf.sprintf "geo: expected float argument, got %S" r))
  | _ -> Error (Printf.sprintf "unknown topology family %S" s)

let near_square n =
  let r = int_of_float (Float.round (sqrt (float_of_int n))) in
  let rec fit r = if r < 1 then (1, n) else if n mod r = 0 then (r, n / r) else fit (r - 1) in
  fit (max 1 r)

let build family ~rng ~n =
  match family with
  | Path -> path n
  | Directed_path -> directed_path n
  | Cycle -> cycle n
  | Directed_cycle -> directed_cycle n
  | Star -> star n
  | Inward_star -> inward_star n
  | Complete -> complete n
  | Binary_tree -> binary_tree n
  | Grid ->
    let rows, cols = near_square n in
    grid ~rows ~cols
  | Hypercube ->
    let dim = max 1 (int_of_float (Float.floor (Stats.log2 (float_of_int (max 2 n))))) in
    hypercube ~dim
  | Lollipop -> lollipop n
  | Sorted_chain -> sorted_chain n
  | Kniesburges w -> kniesburges ~n ~w
  | K_out k -> k_out ~rng ~n ~k
  | Erdos_renyi p -> erdos_renyi ~rng ~n ~p
  | Clustered (c, k) -> clustered ~rng ~n ~clusters:c ~intra_k:k
  | Seeded_directory (s, f) -> seeded_directory ~rng ~n ~seeds:s ~fanout:f
  | Barabasi_albert m -> barabasi_albert ~rng ~n ~m
  | Watts_strogatz (k, b) -> watts_strogatz ~rng ~n ~k ~beta:b
  | Random_geometric r -> random_geometric ~rng ~n ~radius:r

let all_families =
  [
    Path;
    Cycle;
    Directed_cycle;
    Star;
    Inward_star;
    Binary_tree;
    Grid;
    Hypercube;
    Lollipop;
    K_out 3;
    Erdos_renyi 0.002;
    Clustered (8, 3);
    Seeded_directory (16, 2);
    Barabasi_albert 2;
    Watts_strogatz (2, 0.1);
    Random_geometric 0.06;
  ]

(* The named worst-case instances swept by exp_adversarial and the CI
   chaos matrix; kept out of all_families so existing reports keep their
   shape. *)
let adversarial_families = [ Sorted_chain; Star; Lollipop; Binary_tree; Kniesburges 8 ]
