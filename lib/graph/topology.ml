(* Adjacency stored in compressed-sparse-row form: [adj] holds the sorted
   out-neighbour lists back to back, [offsets.(u) .. offsets.(u+1)-1]
   delimiting node [u]'s slice. Immutable after construction. *)

type t = { n : int; offsets : int array; adj : int array }

(* In-place heapsort of [arr.(0..m-1)]: [Array.sort] cannot sort a
   prefix of a longer caller-owned scratch without an allocating copy.
   [sift] and the swaps are top-level so the sort builds no closures. *)
let rec sift arr i len =
  let l = (2 * i) + 1 in
  if l < len then begin
    let c = if l + 1 < len && arr.(l + 1) > arr.(l) then l + 1 else l in
    if arr.(c) > arr.(i) then begin
      let t = arr.(i) in
      arr.(i) <- arr.(c);
      arr.(c) <- t;
      sift arr c len
    end
  end

let sort_prefix arr m =
  for i = (m / 2) - 1 downto 0 do
    sift arr i m
  done;
  for len = m - 1 downto 1 do
    let t = arr.(0) in
    arr.(0) <- arr.(len);
    arr.(len) <- t;
    sift arr 0 len
  done

(* Dedup the sorted prefix [codes.(0..m-1)] in place and build the CSR
   arrays from the distinct packed [u * n + v] codes. *)
let of_sorted_codes ~n codes m =
  let distinct = ref 0 in
  let prev = ref (-1) in
  for j = 0 to m - 1 do
    if codes.(j) <> !prev then begin
      prev := codes.(j);
      codes.(!distinct) <- codes.(j);
      incr distinct
    end
  done;
  let m = !distinct in
  let offsets = Array.make (n + 1) 0 in
  for j = 0 to m - 1 do
    let u = codes.(j) / n in
    offsets.(u + 1) <- offsets.(u + 1) + 1
  done;
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + offsets.(u + 1)
  done;
  let adj = Array.make m 0 in
  (* codes are sorted, so neighbours land in CSR order directly *)
  for j = 0 to m - 1 do
    adj.(j) <- codes.(j) mod n
  done;
  { n; offsets; adj }

let create ~n ~edges =
  if n < 0 then invalid_arg "Topology.create: negative size";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Topology.create: edge endpoint out of range")
    edges;
  (* Deduplicate via packed [u * n + v] codes sorted in place: sorting
     the tuple list with the polymorphic compare allocates a multiple of
     the list size per merge level, which dominated graph-generation
     allocation profiles. The packed code of an (n-1, n-1) edge is below
     2^62 for any n addressable by the simulator. *)
  let m = List.fold_left (fun acc (u, v) -> if u <> v then acc + 1 else acc) 0 edges in
  let codes = Array.make m 0 in
  let i = ref 0 in
  List.iter
    (fun (u, v) ->
      if u <> v then begin
        codes.(!i) <- (u * n) + v;
        incr i
      end)
    edges;
  Array.sort Int.compare codes;
  of_sorted_codes ~n codes m

let create_packed ~n ~codes ~len =
  if n < 0 then invalid_arg "Topology.create_packed: negative size";
  if len < 0 || len > Array.length codes then invalid_arg "Topology.create_packed: bad length";
  let m = ref 0 in
  for i = 0 to len - 1 do
    let c = codes.(i) in
    if c < 0 || c >= n * n then invalid_arg "Topology.create_packed: code out of range";
    (* drop self-loops, compacting in place *)
    if c / n <> c mod n then begin
      codes.(!m) <- c;
      incr m
    end
  done;
  sort_prefix codes !m;
  of_sorted_codes ~n codes !m

let n t = t.n
let out_degree t u =
  if u < 0 || u >= t.n then invalid_arg "Topology.out_degree: out of range";
  t.offsets.(u + 1) - t.offsets.(u)

let out_neighbors t u =
  if u < 0 || u >= t.n then invalid_arg "Topology.out_neighbors: out of range";
  Array.sub t.adj t.offsets.(u) (t.offsets.(u + 1) - t.offsets.(u))

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for i = t.offsets.(u + 1) - 1 downto t.offsets.(u) do
      acc := (u, t.adj.(i)) :: !acc
    done
  done;
  !acc

let edge_count t = Array.length t.adj

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else begin
    (* binary search within u's sorted slice *)
    let lo = ref t.offsets.(u) and hi = ref (t.offsets.(u + 1) - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = t.adj.(mid) in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
    done;
    !found
  end

let symmetrize t =
  let fwd = edges t in
  let bwd = List.map (fun (u, v) -> (v, u)) fwd in
  create ~n:t.n ~edges:(fwd @ bwd)

let map_nodes t perm =
  if Array.length perm <> t.n then invalid_arg "Topology.map_nodes: wrong permutation length";
  let seen = Array.make t.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= t.n || seen.(p) then invalid_arg "Topology.map_nodes: not a permutation";
      seen.(p) <- true)
    perm;
  create ~n:t.n ~edges:(List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges t))

let pp ppf t = Format.fprintf ppf "topology(n=%d, m=%d)" t.n (edge_count t)
