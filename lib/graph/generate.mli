(** Knowledge-graph generators.

    All generators produce weakly-connected topologies over [0 .. n-1]
    (random families are stitched into one component when sampling leaves
    them disconnected). Random generators draw exclusively from the
    supplied {!Repro_util.Rng.t}, so a topology is a pure function of
    [(family, parameters, seed)]. *)

open Repro_util

val path : int -> Topology.t
(** Symmetric path [0 – 1 – … – n-1]: the worst-case (diameter n−1)
    initial knowledge graph. *)

val directed_path : int -> Topology.t
(** One-way path [0 → 1 → … → n-1]: weakly but not strongly connected. *)

val cycle : int -> Topology.t
(** Symmetric ring. *)

val directed_cycle : int -> Topology.t
(** One-way ring; the classic adversarial input for Random Pointer Jump. *)

val star : int -> Topology.t
(** Symmetric star centred at node 0. *)

val inward_star : int -> Topology.t
(** Every node knows node 0 only; node 0 knows nobody. Models machines
    booting with a single directory-seed address. *)

val complete : int -> Topology.t

val binary_tree : int -> Topology.t
(** Symmetric complete-ish binary tree rooted at 0 (node i ↔ 2i+1, 2i+2). *)

val grid : rows:int -> cols:int -> Topology.t
(** Symmetric 2-D mesh of [rows × cols] nodes. *)

val hypercube : dim:int -> Topology.t
(** Symmetric [dim]-dimensional hypercube on [2^dim] nodes. *)

val lollipop : int -> Topology.t
(** Clique on the first ⌈n/2⌉ nodes glued to a path on the rest. *)

val sorted_chain : int -> Topology.t
(** The sorted-input nemesis: node v's single pointer targets v−1 (node 0
    knows nobody). Ids coincide with ranks, so deterministic min-pointer
    strategies funnel the whole instance onto node 0. *)

val kniesburges : n:int -> w:int -> Topology.t
(** The Kniesburges et al. deterministic worst case: [w] interleaved
    descending sorted lists (node v points to v−w) with the list heads
    0 → 1 → … → w−1 chained; [w = 1] is {!sorted_chain}.
    @raise Invalid_argument if [w < 1]. *)

val k_out : rng:Rng.t -> n:int -> k:int -> Topology.t
(** Each node picks [k] distinct uniform random acquaintances; knowledge
    of an acquaintance is symmetric (both endpoints know each other), so
    every node is known by someone and pull-only algorithms are not
    trivially doomed. Components that sampling happens to leave apart are
    stitched with extra edges. This is the canonical "realistic" input
    for resource-discovery experiments.
    @raise Invalid_argument if [k >= n] or [k < 1]. *)

val erdos_renyi : rng:Rng.t -> n:int -> p:float -> Topology.t
(** G(n,p) with symmetric acquaintance, stitched into connectivity. *)

val clustered : rng:Rng.t -> n:int -> clusters:int -> intra_k:int -> Topology.t
(** Datacenter-pod model: [clusters] equal-sized pods, each pod internally
    a symmetric [intra_k]-out random graph, pod gateways (lowest node of
    each pod) joined in a ring.
    @raise Invalid_argument if [clusters > n]. *)

val seeded_directory : rng:Rng.t -> n:int -> seeds:int -> fanout:int -> Topology.t
(** Bootstrap model: the first [seeds] nodes form a clique (the directory
    tier); every other node knows [fanout] uniformly-chosen seeds.
    @raise Invalid_argument if [seeds < 1] or [fanout > seeds]. *)

val barabasi_albert : rng:Rng.t -> n:int -> m:int -> Topology.t
(** Scale-free preferential attachment: nodes arrive one at a time and
    attach (symmetrically) to [m] existing nodes chosen with probability
    proportional to degree. Models overlays grown by "join via a popular
    peer". @raise Invalid_argument if [m < 1]. *)

val watts_strogatz : rng:Rng.t -> n:int -> k:int -> beta:float -> Topology.t
(** Small-world model: a ring lattice where every node knows its [k]
    nearest neighbours on each side, with each edge rewired to a uniform
    random endpoint with probability [beta]. Interpolates between the
    high-diameter ring (β = 0) and a random graph (β = 1).
    @raise Invalid_argument if [k < 1] or [beta] outside [0, 1]. *)

val random_geometric : rng:Rng.t -> n:int -> radius:float -> Topology.t
(** Nodes at uniform positions in the unit square, symmetric edges
    between pairs within [radius] (stitched into connectivity). Models
    proximity-limited bootstrap knowledge (sensor/wireless deployments) —
    high diameter at small radii.
    @raise Invalid_argument if [radius <= 0]. *)

(** {2 Named families for the experiment harness} *)

type family =
  | Path
  | Directed_path
  | Cycle
  | Directed_cycle
  | Star
  | Inward_star
  | Complete
  | Binary_tree
  | Grid
  | Hypercube
  | Lollipop
  | Sorted_chain
  | Kniesburges of int  (** interleaved sorted lists w *)
  | K_out of int
  | Erdos_renyi of float
  | Clustered of int * int  (** clusters, intra_k *)
  | Seeded_directory of int * int  (** seeds, fanout *)
  | Barabasi_albert of int  (** attachment degree m *)
  | Watts_strogatz of int * float  (** lattice half-degree k, rewiring β *)
  | Random_geometric of float  (** connection radius *)

val family_name : family -> string
val family_of_string : string -> (family, string) result
(** Parse names like ["path"], ["kout:3"], ["er:0.01"], ["clustered:8:3"],
    ["seeds:16:2"], ["ba:2"], ["ws:3:0.1"], ["geo:0.05"], ["sorted_chain"],
    ["kniesburges:4"] (bare ["kniesburges"] defaults to w = 8). *)

val build : family -> rng:Rng.t -> n:int -> Topology.t
(** Instantiate a family at size [n]. [Grid] uses a near-square layout,
    [Hypercube] rounds [n] down to a power of two. *)

val all_families : family list
(** The families exercised by the topology-sensitivity experiment (T4). *)

val adversarial_families : family list
(** The named worst-case instances swept by the adversarial experiment
    (T12) and the CI chaos matrix: sorted chain, star, lollipop, binary
    tree and the Kniesburges instance. *)
