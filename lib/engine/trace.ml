open Repro_util

type drop_reason = Loss | Dead_dst | Unjoined_dst | Partitioned | Throttled

type event =
  | Round_begin of { round : int }
  | Tick of { node : int; time : float; count : int }
  | Send of { src : int; dst : int; pointers : int; bytes : int }
  | Deliver of { src : int; dst : int }
  | Drop of { src : int; dst : int; reason : drop_reason }
  | Crash of { node : int }
  | Join of { node : int }
  | Genesis of { node : int; ids : int array }
  | Content of { src : int; dst : int; ids : int array }
  | Leave of { node : int }
  | Suspect of { node : int; target : int }
  | Retire of { node : int; target : int }
  | Converge of { node : int; epoch : int }
  | Complete
  | Give_up

let drop_reason_name = function
  | Loss -> "loss"
  | Dead_dst -> "dead_dst"
  | Unjoined_dst -> "unjoined_dst"
  | Partitioned -> "partitioned"
  | Throttled -> "throttled"

(* "%.12g" prints a given double identically on every run and platform,
   which is all byte-stable traces need; times beyond 12 significant
   digits are not distinguished by the textual diff. *)
let float_str t = Printf.sprintf "%.12g" t

let ids_json ids =
  let b = Buffer.create ((Array.length ids * 4) + 2) in
  Buffer.add_char b '[';
  Array.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int id))
    ids;
  Buffer.add_char b ']';
  Buffer.contents b

let event_to_json = function
  | Round_begin { round } -> Printf.sprintf {|{"ev":"round_begin","round":%d}|} round
  | Tick { node; time; count } ->
    Printf.sprintf {|{"ev":"tick","node":%d,"time":%s,"count":%d}|} node (float_str time) count
  | Send { src; dst; pointers; bytes } ->
    Printf.sprintf {|{"ev":"send","src":%d,"dst":%d,"pointers":%d,"bytes":%d}|} src dst pointers
      bytes
  | Deliver { src; dst } -> Printf.sprintf {|{"ev":"deliver","src":%d,"dst":%d}|} src dst
  | Drop { src; dst; reason } ->
    Printf.sprintf {|{"ev":"drop","src":%d,"dst":%d,"reason":"%s"}|} src dst
      (drop_reason_name reason)
  | Crash { node } -> Printf.sprintf {|{"ev":"crash","node":%d}|} node
  | Join { node } -> Printf.sprintf {|{"ev":"join","node":%d}|} node
  | Genesis { node; ids } ->
    Printf.sprintf {|{"ev":"genesis","node":%d,"ids":%s}|} node (ids_json ids)
  | Content { src; dst; ids } ->
    Printf.sprintf {|{"ev":"content","src":%d,"dst":%d,"ids":%s}|} src dst (ids_json ids)
  | Leave { node } -> Printf.sprintf {|{"ev":"leave","node":%d}|} node
  | Suspect { node; target } ->
    Printf.sprintf {|{"ev":"suspect","node":%d,"target":%d}|} node target
  | Retire { node; target } ->
    Printf.sprintf {|{"ev":"retire","node":%d,"target":%d}|} node target
  | Converge { node; epoch } ->
    Printf.sprintf {|{"ev":"converge","node":%d,"epoch":%d}|} node epoch
  | Complete -> {|{"ev":"complete"}|}
  | Give_up -> {|{"ev":"give_up"}|}

let pp_event ppf ev = Format.pp_print_string ppf (event_to_json ev)

type sink = Null | Fn of { emit : event -> unit; flush : unit -> unit }

let null = Null
let is_null = function Null -> true | Fn _ -> false
let emit sink ev = match sink with Null -> () | Fn f -> f.emit ev
let flush = function Null -> () | Fn f -> f.flush ()

let callback ?(flush = fun () -> ()) emit = Fn { emit; flush }

let jsonl oc =
  Fn
    {
      emit =
        (fun ev ->
          output_string oc (event_to_json ev);
          output_char oc '\n');
      flush = (fun () -> Stdlib.flush oc);
    }

let buffer buf =
  Fn
    {
      emit =
        (fun ev ->
          Buffer.add_string buf (event_to_json ev);
          Buffer.add_char buf '\n');
      flush = (fun () -> ());
    }

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Fn fa, Fn fb ->
    Fn
      {
        emit =
          (fun ev ->
            fa.emit ev;
            fb.emit ev);
        flush =
          (fun () ->
            fa.flush ();
            fb.flush ());
      }

module Ring = struct
  type t = {
    data : event array;
    capacity : int;
    mutable len : int;  (* events currently stored, <= capacity *)
    mutable next : int;  (* write position *)
    mutable dropped : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    { data = Array.make capacity Complete; capacity; len = 0; next = 0; dropped = 0 }

  let push t ev =
    t.data.(t.next) <- ev;
    t.next <- (t.next + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

  let sink t = Fn { emit = push t; flush = (fun () -> ()) }
  let length t = t.len
  let dropped t = t.dropped

  let contents t =
    let start = (t.next - t.len + t.capacity) mod t.capacity in
    Array.init t.len (fun i -> t.data.((start + i) mod t.capacity))
end

module Invariants = struct
  exception Violation of string

  (* Node status: absent from [status] = never joined; [Active] = joined
     and running; [Crashed] = crash applied (whether or not it ever
     joined). All checks are O(1) per event. *)
  type node_status = Active | Crashed

  type t = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable pointers : int;
    mutable bytes : int;
    mutable round : int;  (* last Round_begin *)
    mutable synchronous : bool;  (* saw a Round_begin *)
    mutable last_time : float;
    mutable finished : bool;  (* saw Complete / Give_up *)
    status : (int, node_status) Hashtbl.t;
    tick_counts : (int, int) Hashtbl.t;
    mutable events : int;
    lenient : bool;
    allow_inflight : bool;
    (* provenance audit: per-node set of ids the node genuinely learned
       (its genesis knowledge plus everything delivered to it); armed by
       the first Genesis event. Compressed sets rather than per-id
       hash entries: auditing a large converged run holds n sets of up
       to n ids each, and the saturated containers collapse to O(1). *)
    mutable auditing : bool;
    genuine : (int, Cset.t) Hashtbl.t;
  }

  let create ?(lenient = false) ?(allow_inflight = false) () =
    {
      lenient;
      allow_inflight;
      sent = 0;
      delivered = 0;
      dropped = 0;
      pointers = 0;
      bytes = 0;
      round = 0;
      synchronous = false;
      last_time = neg_infinity;
      finished = false;
      status = Hashtbl.create 64;
      tick_counts = Hashtbl.create 64;
      events = 0;
      auditing = false;
      genuine = Hashtbl.create 64;
    }

  let fail fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

  let require_active t who node =
    match Hashtbl.find_opt t.status node with
    | Some Active -> ()
    | Some Crashed -> fail "%s involves crashed node %d" who node
    | None -> fail "%s involves unjoined node %d" who node

  let genuine_set t node =
    match Hashtbl.find_opt t.genuine node with
    | Some set -> set
    | None ->
      let set = Cset.create_unbounded () in
      Hashtbl.replace t.genuine node set;
      set

  let learn t ~node id = ignore (Cset.add (genuine_set t node) id)

  let check t ev =
    t.events <- t.events + 1;
    if t.finished then fail "event after run completion: %s" (event_to_json ev);
    match ev with
    | Round_begin { round } ->
      t.synchronous <- true;
      if round <> t.round + 1 then
        fail "round %d begins after round %d (rounds must increase by 1)" round t.round;
      (* synchronous rounds resolve every message they send before the
         next round starts; delayed links legitimately carry messages
         across round boundaries, hence allow_inflight *)
      if (not t.allow_inflight) && t.delivered + t.dropped <> t.sent then
        fail "round %d begins with %d unresolved message(s)" round
          (t.sent - t.delivered - t.dropped);
      if t.allow_inflight && t.delivered + t.dropped > t.sent then
        fail "round %d begins with more deliveries+drops than sends" round;
      t.round <- round
    | Tick { node; time; count } ->
      if time < t.last_time then fail "time went backwards: %g after %g" time t.last_time;
      t.last_time <- time;
      require_active t "tick" node;
      let prev = Option.value (Hashtbl.find_opt t.tick_counts node) ~default:0 in
      if count <> prev + 1 then fail "node %d ticked %d after %d" node count prev;
      Hashtbl.replace t.tick_counts node count
    | Send { src; dst = _; pointers; bytes } ->
      require_active t "send" src;
      t.sent <- t.sent + 1;
      t.pointers <- t.pointers + pointers;
      t.bytes <- t.bytes + bytes
    | Deliver { src; dst } ->
      t.delivered <- t.delivered + 1;
      if (not t.lenient) && t.delivered + t.dropped > t.sent then
        fail "more deliveries+drops than sends";
      require_active t "delivery" dst;
      (* a delivery genuinely teaches the receiver the sender's id *)
      if t.auditing then learn t ~node:dst src
    | Drop { src = _; dst; reason } -> (
      t.dropped <- t.dropped + 1;
      if (not t.lenient) && t.delivered + t.dropped > t.sent then
        fail "more deliveries+drops than sends";
      match (reason, Hashtbl.find_opt t.status dst) with
      | Loss, _ | Partitioned, _ | Throttled, _ -> ()
      | Dead_dst, Some Crashed -> ()
      | Dead_dst, _ when t.lenient -> ()
        (* a restarted destination is Active again, but a sender may
           still blame its death window *)
      | Dead_dst, _ -> fail "drop blamed on dead destination %d, which never crashed" dst
      | Unjoined_dst, None -> ()
      | Unjoined_dst, Some _ -> fail "drop blamed on unjoined destination %d, which joined" dst)
    | Crash { node } -> (
      match Hashtbl.find_opt t.status node with
      | Some Crashed -> fail "node %d crashed twice" node
      | _ -> Hashtbl.replace t.status node Crashed)
    | Leave { node } ->
      (* a graceful departure is only legal from an active node; the node
         is inactive afterwards, exactly like a crash *)
      require_active t "leave" node;
      Hashtbl.replace t.status node Crashed
    | Suspect { node; target = _ } -> require_active t "suspicion" node
    | Retire { node; target = _ } -> require_active t "retirement" node
    | Converge { node = _; epoch } ->
      (* observer verdicts carry no liveness obligations of their own;
         the convergence-lag discipline lives in {!Lag} *)
      if epoch < 0 then fail "converge with negative epoch %d" epoch
    | Join { node } -> (
      match Hashtbl.find_opt t.status node with
      | None -> Hashtbl.replace t.status node Active
      | Some Active -> fail "node %d joined twice" node
      | Some Crashed when t.lenient ->
        (* restart: the node revives with a fresh tick sequence *)
        Hashtbl.replace t.status node Active;
        Hashtbl.replace t.tick_counts node 0
      | Some Crashed -> fail "crashed node %d joined" node)
    | Genesis { node; ids } ->
      (* the node's genuinely originated knowledge at birth (or at
         restart, which resets its provenance) *)
      t.auditing <- true;
      let set = Cset.create_unbounded () in
      ignore (Cset.add set node);
      Array.iter (fun id -> ignore (Cset.add set id)) ids;
      Hashtbl.replace t.genuine node set
    | Content { src; dst; ids } ->
      if t.auditing then begin
        (match Hashtbl.find_opt t.genuine src with
        | None -> fail "content from node %d, which has no genesis" src
        | Some set ->
          Array.iter
            (fun id ->
              if id <> src && not (Cset.mem set id) then
                fail "node %d advertised id %d it never genuinely learned (provenance violation)"
                  src id)
            ids);
        (* content that survives the audit becomes genuine knowledge of
           the receiver *)
        let dset = genuine_set t dst in
        ignore (Cset.add dset src);
        Array.iter (fun id -> ignore (Cset.add dset id)) ids
      end
    | Complete | Give_up ->
      t.finished <- true;
      if t.synchronous && (not t.allow_inflight) && t.delivered + t.dropped <> t.sent then
        fail "synchronous run ended with %d unresolved message(s)"
          (t.sent - t.delivered - t.dropped)

  let sink t = callback (check t)
  let events_seen t = t.events

  let final_check t metrics =
    if not t.finished then fail "run produced no Complete/Give_up event";
    let agree what counted total =
      if t.lenient then begin
        (* restarts retire incarnations whose activity is in the trace
           but not in the survivors' totals: the trace dominates *)
        if counted < total then
          fail "%s disagree: trace counted %d, below the %d Metrics recorded" what counted total
      end
      else if counted <> total then
        fail "%s disagree: trace counted %d, Metrics recorded %d" what counted total
    in
    agree "sends" t.sent (Metrics.messages_sent metrics);
    agree "deliveries" t.delivered (Metrics.messages_delivered metrics);
    agree "drops" t.dropped (Metrics.messages_dropped metrics);
    agree "pointers" t.pointers (Metrics.pointers_sent metrics);
    agree "bytes" t.bytes (Metrics.bytes_sent metrics)
end

module Lag = struct
  exception Violation of string

  (* Epochs are numbered from 1; epoch 0 is the genesis membership
     (Join events before the first Tick), which carries no deadline.
     [frontier] is the lowest epoch not yet confirmed converged; epochs
     close in order, since a node matching the *current* membership has
     necessarily caught up with every earlier change. *)
  type t = {
    bound : float;
    mutable now : float;
    mutable started : bool;  (* saw a Tick: membership changes now bump epochs *)
    mutable epoch : int;
    epoch_time : (int, float) Hashtbl.t;
    live : (int, unit) Hashtbl.t;
    join_time : (int, float) Hashtbl.t;
    conv : (int, int) Hashtbl.t;  (* node -> highest converged epoch *)
    mutable frontier : int;
    mutable closed : int;
    mutable max_lag : float;
    mutable table_peak : int;  (* high-water mark of [epoch_time] *)
  }

  let create ?(bound = 512.0) () =
    if bound <= 0.0 then invalid_arg "Trace.Lag.create: bound must be positive";
    {
      bound;
      now = 0.0;
      started = false;
      epoch = 0;
      epoch_time = Hashtbl.create 64;
      live = Hashtbl.create 64;
      join_time = Hashtbl.create 64;
      conv = Hashtbl.create 64;
      frontier = 1;
      closed = 0;
      max_lag = 0.0;
      table_peak = 0;
    }

  let fail fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

  let required t ~epoch_t node =
    Hashtbl.mem t.live node
    && Option.value (Hashtbl.find_opt t.join_time node) ~default:0.0 <= epoch_t

  let laggard t ~epoch_t ~epoch =
    Hashtbl.fold
      (fun node () acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if
            required t ~epoch_t node
            && Option.value (Hashtbl.find_opt t.conv node) ~default:0 < epoch
          then Some node
          else None)
      t.live None

  let advance t =
    let continue = ref true in
    while !continue && t.frontier <= t.epoch do
      let epoch_t = Hashtbl.find t.epoch_time t.frontier in
      match laggard t ~epoch_t ~epoch:t.frontier with
      | None ->
        let lag = t.now -. epoch_t in
        if lag > t.max_lag then t.max_lag <- lag;
        t.closed <- t.closed + 1;
        (* a closed epoch's change time is never consulted again:
           pruning here keeps the table at O(open epochs) — bounded by
           the lag window, not the run length *)
        Hashtbl.remove t.epoch_time t.frontier;
        t.frontier <- t.frontier + 1
      | Some node ->
        if t.now > epoch_t +. t.bound then
          fail
            "convergence lag exceeded: node %d has not converged to epoch %d (change at t=%g) by \
             t=%g (bound %g)"
            node t.frontier epoch_t t.now t.bound;
        continue := false
    done

  let bump t =
    if t.started then begin
      t.epoch <- t.epoch + 1;
      Hashtbl.replace t.epoch_time t.epoch t.now;
      let size = Hashtbl.length t.epoch_time in
      if size > t.table_peak then t.table_peak <- size
    end

  let check t ev =
    match ev with
    | Tick { time; _ } ->
      t.started <- true;
      if time > t.now then t.now <- time;
      advance t
    | Join { node } ->
      bump t;
      Hashtbl.replace t.live node ();
      Hashtbl.replace t.join_time node (if t.started then t.now else 0.0);
      (* a fresh (re)join starts from scratch: earlier convergence
         verdicts belong to the previous incarnation *)
      Hashtbl.remove t.conv node;
      advance t
    | Crash { node } | Leave { node } ->
      bump t;
      Hashtbl.remove t.live node;
      advance t
    | Converge { node; epoch } ->
      if epoch > t.epoch then
        fail "node %d converged to epoch %d, which has not happened (current epoch %d)" node epoch
          t.epoch;
      let prev = Option.value (Hashtbl.find_opt t.conv node) ~default:0 in
      if epoch > prev then Hashtbl.replace t.conv node epoch;
      advance t
    | Round_begin _ | Send _ | Deliver _ | Drop _ | Suspect _ | Retire _ | Genesis _ | Content _
    | Complete | Give_up ->
      ()

  let sink t = callback (check t)
  let epochs t = t.epoch
  let closed t = t.closed
  let max_lag t = t.max_lag
  let table_peak t = t.table_peak

  (* Epochs whose deadline falls beyond the end of the trace are not
     enforced (the run simply ended too early to judge them); everything
     due by the final clock reading was already checked online, so the
     final pass is one last [advance] at the last observed time. *)
  let final_check t = advance t
end
