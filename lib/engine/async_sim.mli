(** Event-driven asynchronous execution.

    The synchronous round model ({!Sim}) is the clean analysis setting;
    real deployments have drifting clocks and variable message latency.
    This engine runs the {e same} algorithm instances asynchronously:

    - every node executes its per-round logic on a private periodic
      timer whose period is drawn once from [1 ± tick_jitter] (so nodes'
      "rounds" drift apart over time);
    - every message is delivered after an independent latency drawn
      uniformly from [[latency_min, latency_max]] (messages may overtake
      each other);
    - message loss and crash/join schedules come from the same
      {!Fault.t}, with round numbers interpreted as simulated-time
      instants.

    Events at equal timestamps are ordered by creation sequence, so runs
    are a pure function of the configuration and seed, exactly like the
    synchronous engine. The completion predicate is polled once per
    simulated time unit. *)

type config = {
  horizon : float;  (** give up after this much simulated time *)
  tick_jitter : float;  (** node period ∈ [1−j, 1+j]; 0 = lockstep periods *)
  latency_min : float;
  latency_max : float;  (** message latency ∈ [min, max] *)
  fault : Fault.t;
  engine_seed : int;
  trace : Trace.sink;
      (** structured event trace (see {!Trace}): [Tick] per activation,
          [Join]/[Crash] when the engine applies a status change,
          [Send]/[Deliver]/[Drop] per message. Observational only. *)
}

val default_config : config
(** horizon 10,000; jitter 0.1; latency ∈ [0.1, 0.9]; no faults; seed 0;
    no tracing. *)

type outcome = {
  completed : bool;
  time : float;  (** simulated completion (or give-up) time *)
  ticks : int;  (** total node activations *)
  metrics : Metrics.t;  (** totals only — per-round series are not meaningful here *)
  alive : bool array;
}

val run :
  n:int ->
  config:config ->
  handlers:'msg Sim.handlers ->
  measure:('msg -> int) ->
  ?measure_bytes:('msg -> int) ->
  stop:(time:float -> alive:(int -> bool) -> bool) ->
  ?on_restart:(node:int -> unit) ->
  unit ->
  outcome
(** [handlers.round_begin] is invoked on each node tick with [round]
    equal to that node's own tick count (1-based) — algorithms written
    against {!Sim} run unchanged. Scheduled restarts are applied lazily
    like crashes: at the revived node's next event the engine emits
    [Crash] (if not yet announced) then [Join], resets the node's tick
    sequence, and calls [on_restart] so the caller can reinstall the
    node's initial algorithm state (default: no-op).
    @raise Invalid_argument on a negative [n], a non-positive [horizon],
    a jitter outside [0, 1), or an invalid latency interval. *)
