open Repro_util

type config = {
  horizon : float;
  tick_jitter : float;
  latency_min : float;
  latency_max : float;
  fault : Fault.t;
  engine_seed : int;
  trace : Trace.sink;
}

let default_config =
  {
    horizon = 10_000.0;
    tick_jitter = 0.1;
    latency_min = 0.1;
    latency_max = 0.9;
    fault = Fault.none;
    engine_seed = 0;
    trace = Trace.null;
  }

type outcome = {
  completed : bool;
  time : float;
  ticks : int;
  metrics : Metrics.t;
  alive : bool array;
}

(* A small binary min-heap of timestamped events. The sequence number
   breaks timestamp ties deterministically (insertion order). *)
module Heap = struct
  type 'a t = {
    mutable data : (float * int * 'a) array;
    mutable len : int;
    mutable seq : int;
    dummy : 'a;
  }

  let create dummy = { data = Array.make 64 (0.0, 0, dummy); len = 0; seq = 0; dummy }

  let lt (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h time event =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0.0, 0, h.dummy) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    let entry = (time, h.seq, event) in
    h.seq <- h.seq + 1;
    h.data.(h.len) <- entry;
    h.len <- h.len + 1;
    (* sift up *)
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      lt h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let (time, _, event) = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some (time, event)
    end
end

type 'msg event = Tick of int | Deliver of int * int * 'msg | Monitor

let run ~n ~config ~handlers ~measure ?(measure_bytes = fun _ -> 0) ~stop () =
  if n < 0 then invalid_arg "Async_sim.run: negative node count";
  if config.horizon <= 0.0 then invalid_arg "Async_sim.run: horizon must be positive";
  if config.tick_jitter < 0.0 || config.tick_jitter >= 1.0 then
    invalid_arg "Async_sim.run: jitter must be in [0, 1)";
  if config.latency_min < 0.0 || config.latency_max < config.latency_min then
    invalid_arg "Async_sim.run: invalid latency interval";
  let metrics = Metrics.create () in
  Metrics.begin_round metrics;
  let rng = Rng.substream ~seed:config.engine_seed ~index:0xa5f1 in
  let loss = Fault.drop_probability config.fault in
  let alive = Array.make n true in
  let crash_time = Array.make n infinity in
  List.iter
    (fun (node, round) -> if node < n then crash_time.(node) <- float_of_int round)
    (Fault.crashed_nodes config.fault);
  let join_time = Array.make n 0.0 in
  List.iter
    (fun (node, round) -> if node < n then join_time.(node) <- float_of_int round)
    (Fault.joining_nodes config.fault);
  (* a node is effectively dead for its whole life if it crashes before
     joining; alive.(v) tracks "has joined and not crashed" lazily via
     event processing below *)
  let period = Array.init n (fun _ -> 1.0 -. config.tick_jitter +. Rng.float rng (2.0 *. config.tick_jitter)) in
  let tick_count = Array.make n 0 in
  let is_alive v = v >= 0 && v < n && alive.(v) in
  let heap = Heap.create (Monitor : 'msg event) in
  let now = ref 0.0 in
  let latency () =
    config.latency_min +. Rng.float rng (config.latency_max -. config.latency_min)
  in
  (* tracing is observational only, exactly as in Sim: same RNG draws,
     same schedule, no allocation with the null sink *)
  let trace = config.trace in
  let tracing = not (Trace.is_null trace) in
  (* crashes are applied lazily, so a node that crashes before ever
     activating never produces a Crash event; remember which crashes
     were announced so drop reasons match the emitted lifecycle *)
  let crash_emitted = if tracing then Array.make n false else [||] in
  let emit_crash v =
    crash_emitted.(v) <- true;
    Trace.emit trace (Trace.Crash { node = v })
  in
  for v = 0 to n - 1 do
    if join_time.(v) > 0.0 then alive.(v) <- false
    else if tracing then Trace.emit trace (Trace.Join { node = v });
    (* first tick: a random phase within the first period after joining *)
    Heap.push heap (join_time.(v) +. Rng.float rng period.(v)) (Tick v)
  done;
  Heap.push heap 1.0 Monitor;
  let ticks = ref 0 in
  let completed = ref (stop ~time:0.0 ~alive:is_alive) in
  let send_from src ~dst payload =
    if dst < 0 || dst >= n then invalid_arg "Async_sim.send: destination out of range";
    let pointers = measure payload and bytes = measure_bytes payload in
    Metrics.record_send metrics ~pointers ~bytes;
    if tracing then Trace.emit trace (Trace.Send { src; dst; pointers; bytes });
    if loss > 0.0 && Rng.bernoulli rng ~p:loss then begin
      Metrics.record_drop metrics;
      if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Loss })
    end
    else Heap.push heap (!now +. latency ()) (Deliver (src, dst, payload))
  in
  let continue = ref true in
  while !continue && not !completed do
    match Heap.pop heap with
    | None -> continue := false
    | Some (time, event) ->
      if time > config.horizon then continue := false
      else begin
        now := time;
        (match event with
        | Tick v ->
          (* lazily apply crash/join status at activation time *)
          if alive.(v) && !now >= crash_time.(v) then begin
            alive.(v) <- false;
            if tracing then emit_crash v
          end;
          if (not alive.(v)) && !now >= join_time.(v) && !now < crash_time.(v) then begin
            alive.(v) <- true;
            if tracing then Trace.emit trace (Trace.Join { node = v })
          end;
          if alive.(v) then begin
            incr ticks;
            tick_count.(v) <- tick_count.(v) + 1;
            if tracing then
              Trace.emit trace (Trace.Tick { node = v; time = !now; count = tick_count.(v) });
            handlers.Sim.round_begin ~node:v ~round:tick_count.(v)
              ~send:(fun ~dst payload -> send_from v ~dst payload)
          end;
          if !now < crash_time.(v) then Heap.push heap (!now +. period.(v)) (Tick v)
        | Deliver (src, dst, payload) ->
          if alive.(dst) && !now >= crash_time.(dst) then begin
            alive.(dst) <- false;
            if tracing then emit_crash dst
          end;
          if alive.(dst) then begin
            Metrics.record_delivery metrics;
            if tracing then Trace.emit trace (Trace.Deliver { src; dst });
            handlers.Sim.deliver ~node:dst ~src ~round:tick_count.(dst) payload
          end
          else begin
            Metrics.record_drop metrics;
            if tracing then
              Trace.emit trace
                (Trace.Drop
                   {
                     src;
                     dst;
                     reason = (if crash_emitted.(dst) then Trace.Dead_dst else Trace.Unjoined_dst);
                   })
          end
        | Monitor ->
          if stop ~time:!now ~alive:is_alive then completed := true
          else Heap.push heap (!now +. 1.0) Monitor)
      end
  done;
  if tracing then begin
    Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
    Trace.flush trace
  end;
  (* final liveness snapshot *)
  for v = 0 to n - 1 do
    if alive.(v) && !now >= crash_time.(v) then alive.(v) <- false
  done;
  { completed = !completed; time = !now; ticks = !ticks; metrics; alive }
