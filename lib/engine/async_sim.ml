open Repro_util

type config = {
  horizon : float;
  tick_jitter : float;
  latency_min : float;
  latency_max : float;
  fault : Fault.t;
  engine_seed : int;
  trace : Trace.sink;
}

let default_config =
  {
    horizon = 10_000.0;
    tick_jitter = 0.1;
    latency_min = 0.1;
    latency_max = 0.9;
    fault = Fault.none;
    engine_seed = 0;
    trace = Trace.null;
  }

type outcome = {
  completed : bool;
  time : float;
  ticks : int;
  metrics : Metrics.t;
  alive : bool array;
}

(* A small binary min-heap of timestamped events, stored as parallel
   arrays: an unboxed float array of times plus int arrays for the
   tie-breaking sequence number, the event kind and its two int operands,
   and a lazily-seeded ['msg] array for deliver payloads. Compared to a
   heap of (float * int * event) tuples this allocates nothing per event
   in steady state — pushing writes into preallocated slots, and the
   peek/drop interface inspects the root fields in place instead of
   materialising an option of a tuple.

   The sequence number breaks timestamp ties deterministically
   (insertion order), exactly as the tuple heap did.

   Kinds: 0 = Tick (a = node), 1 = Deliver (a = src, b = dst, msg),
   2 = Monitor. The payload array stays empty until the first deliver is
   pushed — ['msg] has no fabricable dummy — and is only touched while
   non-empty, which is safe because ticks and monitors never read it. *)
module Heap = struct
  type 'msg t = {
    mutable times : float array;
    mutable seqs : int array;
    mutable kinds : int array;
    mutable a : int array;
    mutable b : int array;
    mutable msgs : 'msg array;
    mutable len : int;
    mutable seq : int;
  }

  let tick_kind = 0
  let deliver_kind = 1
  let monitor_kind = 2

  let create () =
    {
      times = Array.make 64 0.0;
      seqs = Array.make 64 0;
      kinds = Array.make 64 0;
      a = Array.make 64 0;
      b = Array.make 64 0;
      msgs = [||];
      len = 0;
      seq = 0;
    }

  let lt h i j = h.times.(i) < h.times.(j) || (h.times.(i) = h.times.(j) && h.seqs.(i) < h.seqs.(j))

  let swap h i j =
    let swap_at arr =
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    in
    let tmp = h.times.(i) in
    h.times.(i) <- h.times.(j);
    h.times.(j) <- tmp;
    swap_at h.seqs;
    swap_at h.kinds;
    swap_at h.a;
    swap_at h.b;
    if Array.length h.msgs > 0 then swap_at h.msgs

  let grow h =
    let cap = Array.length h.times in
    let cap' = 2 * cap in
    let extend dummy arr =
      let arr' = Array.make cap' dummy in
      Array.blit arr 0 arr' 0 h.len;
      arr'
    in
    h.times <- extend 0.0 h.times;
    h.seqs <- extend 0 h.seqs;
    h.kinds <- extend 0 h.kinds;
    h.a <- extend 0 h.a;
    h.b <- extend 0 h.b;
    if Array.length h.msgs > 0 then h.msgs <- extend h.msgs.(0) h.msgs

  let sift_up h =
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      lt h !i parent
    do
      let parent = (!i - 1) / 2 in
      swap h !i parent;
      i := parent
    done

  let push_slot h time =
    if h.len = Array.length h.times then grow h;
    let i = h.len in
    h.times.(i) <- time;
    h.seqs.(i) <- h.seq;
    h.seq <- h.seq + 1;
    h.len <- h.len + 1;
    i

  let push_tick h time node =
    let i = push_slot h time in
    h.kinds.(i) <- tick_kind;
    h.a.(i) <- node;
    sift_up h

  let push_monitor h time =
    let i = push_slot h time in
    h.kinds.(i) <- monitor_kind;
    sift_up h

  let push_deliver h time ~src ~dst msg =
    let i = push_slot h time in
    h.kinds.(i) <- deliver_kind;
    h.a.(i) <- src;
    h.b.(i) <- dst;
    (* seed the payload array on first use, at the current capacity *)
    if Array.length h.msgs = 0 then h.msgs <- Array.make (Array.length h.times) msg;
    h.msgs.(i) <- msg;
    sift_up h

  let is_empty h = h.len = 0
  let peek_time h = h.times.(0)
  let peek_kind h = h.kinds.(0)
  let peek_a h = h.a.(0)
  let peek_b h = h.b.(0)
  let peek_msg h = h.msgs.(0)

  let drop h =
    h.len <- h.len - 1;
    if h.len > 0 then begin
      swap h 0 h.len;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h l !smallest then smallest := l;
        if r < h.len && lt h r !smallest then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done
    end
end

let run ~n ~config ~handlers ~measure ?(measure_bytes = fun _ -> 0) ~stop
    ?(on_restart = fun ~node:_ -> ()) () =
  if n < 0 then invalid_arg "Async_sim.run: negative node count";
  if config.horizon <= 0.0 then invalid_arg "Async_sim.run: horizon must be positive";
  if config.tick_jitter < 0.0 || config.tick_jitter >= 1.0 then
    invalid_arg "Async_sim.run: jitter must be in [0, 1)";
  if config.latency_min < 0.0 || config.latency_max < config.latency_min then
    invalid_arg "Async_sim.run: invalid latency interval";
  let metrics = Metrics.create () in
  Metrics.begin_round metrics;
  let rng = Rng.substream ~seed:config.engine_seed ~index:0xa5f1 in
  let fault = config.fault in
  let has_partitions = Fault.partitions fault <> [] in
  let alive = Array.make n true in
  let crash_time = Array.make n infinity in
  List.iter
    (fun (node, round) -> if node < n then crash_time.(node) <- float_of_int round)
    (Fault.crashed_nodes config.fault);
  let restart_time = Array.make n infinity in
  List.iter
    (fun (node, round) -> if node < n then restart_time.(node) <- float_of_int round)
    (Fault.restarting_nodes config.fault);
  let join_time = Array.make n 0.0 in
  List.iter
    (fun (node, round) -> if node < n then join_time.(node) <- float_of_int round)
    (Fault.joining_nodes config.fault);
  (* a node is effectively dead for its whole life if it crashes before
     joining; alive.(v) tracks "has joined and not crashed" lazily via
     event processing below *)
  let period = Array.init n (fun _ -> 1.0 -. config.tick_jitter +. Rng.float rng (2.0 *. config.tick_jitter)) in
  let tick_count = Array.make n 0 in
  let is_alive v = v >= 0 && v < n && alive.(v) in
  let heap : 'msg Heap.t = Heap.create () in
  let now = ref 0.0 in
  (* per-link bandwidth windows, keyed src*n+dst -> (window, used) *)
  let cap_used : (int, int * int) Hashtbl.t =
    Hashtbl.create (if Fault.has_caps config.fault then 64 else 1)
  in
  let latency () =
    config.latency_min +. Rng.float rng (config.latency_max -. config.latency_min)
  in
  (* tracing is observational only, exactly as in Sim: same RNG draws,
     same schedule, no allocation with the null sink *)
  let trace = config.trace in
  let tracing = not (Trace.is_null trace) in
  (* crashes are applied lazily, so a node that crashes before ever
     activating never produces a Crash event; remember which crashes
     were announced so drop reasons match the emitted lifecycle *)
  let crash_emitted = if tracing then Array.make n false else [||] in
  let emit_crash v =
    crash_emitted.(v) <- true;
    Trace.emit trace (Trace.Crash { node = v })
  in
  (* like crashes, restarts are applied lazily at the node's next event;
     the revived node gets its initial state back (via [on_restart]) and
     a fresh tick sequence *)
  let apply_restart v =
    if (not alive.(v)) && !now >= crash_time.(v) && !now >= restart_time.(v) then begin
      if tracing && not crash_emitted.(v) then emit_crash v;
      alive.(v) <- true;
      crash_time.(v) <- infinity;
      restart_time.(v) <- infinity;
      tick_count.(v) <- 0;
      if tracing then Trace.emit trace (Trace.Join { node = v });
      on_restart ~node:v
    end
  in
  for v = 0 to n - 1 do
    if join_time.(v) > 0.0 then alive.(v) <- false
    else if tracing then Trace.emit trace (Trace.Join { node = v });
    (* first tick: a random phase within the first period after joining *)
    Heap.push_tick heap (join_time.(v) +. Rng.float rng period.(v)) v
  done;
  Heap.push_monitor heap 1.0;
  let ticks = ref 0 in
  let completed = ref (stop ~time:0.0 ~alive:is_alive) in
  let send_from src ~dst payload =
    if dst < 0 || dst >= n then invalid_arg "Async_sim.send: destination out of range";
    let pointers = measure payload and bytes = measure_bytes payload in
    Metrics.record_send metrics ~pointers ~bytes;
    if tracing then Trace.emit trace (Trace.Send { src; dst; pointers; bytes });
    if has_partitions && Fault.cut fault ~src ~dst ~time:!now then begin
      Metrics.record_drop metrics;
      if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Partitioned })
    end
    else begin
      let lk = Fault.link_between fault ~src ~dst in
      let throttled =
        lk.Fault.cap > 0
        &&
        (* bandwidth window: [cap] messages per unit of simulated time
           (the mean tick period) per directed link *)
        let key = (src * n) + dst in
        let window = int_of_float !now in
        let used =
          match Hashtbl.find_opt cap_used key with
          | Some (w, u) when w = window -> u
          | _ -> 0
        in
        Hashtbl.replace cap_used key (window, used + 1);
        used >= lk.Fault.cap
      in
      if throttled then begin
        Metrics.record_drop metrics;
        if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Throttled })
      end
      else if lk.Fault.loss > 0.0 && Rng.bernoulli rng ~p:lk.Fault.loss then begin
        Metrics.record_drop metrics;
        if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Loss })
      end
      else
        Heap.push_deliver heap
          (!now +. latency () +. float_of_int lk.Fault.delay)
          ~src ~dst payload
    end
  in
  let continue = ref true in
  while !continue && not !completed do
    if Heap.is_empty heap then continue := false
    else begin
      let time = Heap.peek_time heap in
      if time > config.horizon then continue := false
      else begin
        now := time;
        let kind = Heap.peek_kind heap in
        if kind = Heap.tick_kind then begin
          let v = Heap.peek_a heap in
          Heap.drop heap;
          (* lazily apply crash/join status at activation time *)
          if alive.(v) && !now >= crash_time.(v) then begin
            alive.(v) <- false;
            if tracing then emit_crash v
          end;
          if (not alive.(v)) && !now >= join_time.(v) && !now < crash_time.(v) then begin
            alive.(v) <- true;
            if tracing then Trace.emit trace (Trace.Join { node = v })
          end;
          apply_restart v;
          if alive.(v) then begin
            incr ticks;
            tick_count.(v) <- tick_count.(v) + 1;
            if tracing then
              Trace.emit trace (Trace.Tick { node = v; time = !now; count = tick_count.(v) });
            handlers.Sim.round_begin ~node:v ~round:tick_count.(v)
              ~send:(fun ~dst payload -> send_from v ~dst payload)
          end;
          (* keep scheduling activations for a crashed node that still
             has a restart ahead of it, so the restart can fire *)
          if !now < crash_time.(v) || restart_time.(v) < infinity then
            Heap.push_tick heap (!now +. period.(v)) v
        end
        else if kind = Heap.deliver_kind then begin
          let src = Heap.peek_a heap and dst = Heap.peek_b heap in
          let payload = Heap.peek_msg heap in
          Heap.drop heap;
          if alive.(dst) && !now >= crash_time.(dst) then begin
            alive.(dst) <- false;
            if tracing then emit_crash dst
          end;
          apply_restart dst;
          if alive.(dst) then begin
            Metrics.record_delivery metrics;
            if tracing then Trace.emit trace (Trace.Deliver { src; dst });
            handlers.Sim.deliver ~node:dst ~src ~round:tick_count.(dst) payload
          end
          else begin
            Metrics.record_drop metrics;
            if tracing then
              Trace.emit trace
                (Trace.Drop
                   {
                     src;
                     dst;
                     reason = (if crash_emitted.(dst) then Trace.Dead_dst else Trace.Unjoined_dst);
                   })
          end
        end
        else begin
          Heap.drop heap;
          if stop ~time:!now ~alive:is_alive then completed := true
          else Heap.push_monitor heap (!now +. 1.0)
        end
      end
    end
  done;
  if tracing then begin
    Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
    Trace.flush trace
  end;
  (* final liveness snapshot *)
  for v = 0 to n - 1 do
    if alive.(v) && !now >= crash_time.(v) then alive.(v) <- false
  done;
  { completed = !completed; time = !now; ticks = !ticks; metrics; alive }
