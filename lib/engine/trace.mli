(** Structured event tracing for both execution engines.

    Every run of {!Sim} or {!Async_sim} is specified to be a pure
    function of (algorithm, topology, configuration, seed). The metrics
    layer checks that claim only at the coarsest granularity (final
    totals); this module makes the {e execution itself} observable: the
    engines emit one {!event} per lifecycle step into a pluggable
    {!sink}, so a run can be recorded, replayed against a golden file,
    diffed event-by-event across machines or job counts, or checked
    online against the execution invariants ({!Invariants}).

    {2 Event vocabulary}

    A synchronous run emits, in order:
    - [Round_begin] at the start of every round;
    - [Join] when a node activates (round 1 for ordinary nodes, the
      scheduled round for late joiners) and [Crash] when a scheduled
      crash fires — both during the round's start-of-round transitions;
    - [Send] for every message handed to the engine during the send
      phase;
    - [Deliver] or [Drop] for every message during the delivery phase of
      the same round, in send order. Every drop states its reason:
      [Loss] (the fault model's coin), [Dead_dst] (destination already
      crashed) or [Unjoined_dst] (destination not yet active);
    - a final [Complete] (the stop predicate fired) or [Give_up] (round
      budget exhausted).

    An asynchronous run uses the same vocabulary with [Tick] in place of
    [Round_begin]: one [Tick] per node activation, carrying the
    simulated time and that node's activation count. [Join] and [Crash]
    are emitted when the engine {e applies} the status change (lazily,
    at the node's next event), so a message dropped before a scheduled
    joiner's first activation is reported as [Unjoined_dst] even if its
    nominal join time has passed. Deliveries and drops are not
    separately timestamped; [Tick] events carry the clock.

    Tracing is strictly observational: enabling any sink never changes
    an execution (RNG draws, delivery order and metrics are identical
    with tracing on or off), and the {!null} sink costs no per-event
    allocation, so production runs pay nothing. *)

(** Why a message was dropped. *)
type drop_reason =
  | Loss  (** the fault model's independent per-message coin *)
  | Dead_dst  (** destination crashed before delivery *)
  | Unjoined_dst  (** destination has not (yet) activated *)
  | Partitioned  (** the src->dst link is severed by a scheduled partition *)
  | Throttled  (** the link's bandwidth cap was exhausted this round/window *)

type event =
  | Round_begin of { round : int }  (** synchronous engine only *)
  | Tick of { node : int; time : float; count : int }
      (** asynchronous engine only: activation [count] (1-based) of
          [node] at simulated [time] *)
  | Send of { src : int; dst : int; pointers : int; bytes : int }
      (** a message entered the network; [pointers]/[bytes] are the same
          measures {!Metrics} records *)
  | Deliver of { src : int; dst : int }
  | Drop of { src : int; dst : int; reason : drop_reason }
  | Crash of { node : int }
  | Join of { node : int }
  | Genesis of { node : int; ids : int array }
      (** content audit only: the ids a node genuinely originates with at
          birth or restart (itself plus its initial out-neighbors),
          ascending. Emitted only when the fault plan's audit flag is on,
          so untraced and golden runs are unchanged. *)
  | Content of { src : int; dst : int; ids : int array }
      (** content audit only: the ids a delivered data payload advertises
          (ascending), emitted adjacent to its [Deliver]. *)
  | Leave of { node : int }
      (** continuous service only: a graceful departure — the node
          announces it is leaving and stops. Inactive afterwards, like
          [Crash], but the fleet was told rather than left to find out. *)
  | Suspect of { node : int; target : int }
      (** continuous service only: [node]'s failure detector started
          suspecting [target] (an unanswered liveness probe). *)
  | Retire of { node : int; target : int }
      (** continuous service only: [node] confirmed [target] as failed
          and retired it from its membership view. *)
  | Converge of { node : int; epoch : int }
      (** continuous service only, emitted by the omniscient observer:
          [node]'s membership view matches the true membership as of
          change number [epoch] (see {!Lag}). *)
  | Complete  (** the completion predicate fired *)
  | Give_up  (** round/time budget exhausted *)

val event_to_json : event -> string
(** One-line JSON object, stable field order, no trailing newline — the
    JSONL wire format. Times are printed with ["%.12g"], so equal floats
    always print identically (byte-stable reruns). *)

val pp_event : Format.formatter -> event -> unit

val drop_reason_name : drop_reason -> string
(** ["loss"], ["dead_dst"], ["unjoined_dst"], ["partitioned"] or
    ["throttled"], as used in the JSON encoding. *)

(** {2 Sinks} *)

type sink
(** A trace consumer. Engines test {!is_null} once and skip event
    construction entirely when tracing is off — the hot path of an
    untraced run does not allocate for tracing. *)

val null : sink
(** Discards everything. The default everywhere. *)

val is_null : sink -> bool

val emit : sink -> event -> unit
val flush : sink -> unit
(** Engines flush once at the end of a run; [flush] on {!null} and
    in-memory sinks is a no-op. *)

val callback : ?flush:(unit -> unit) -> (event -> unit) -> sink
(** The general escape hatch: run an arbitrary function per event. *)

val jsonl : out_channel -> sink
(** Write one {!event_to_json} line per event. The caller owns the
    channel (open/close); {!flush} flushes it. *)

val buffer : Buffer.t -> sink
(** {!jsonl} into a [Buffer.t] — the in-memory form used by the golden
    trace tests. *)

val tee : sink -> sink -> sink
(** Duplicate events to both sinks (left first). [tee null s] is [s]. *)

(** Bounded in-memory ring buffer: keeps the last [capacity] events of a
    run — a flight recorder for post-mortem inspection of long runs
    without unbounded memory. *)
module Ring : sig
  type t

  val create : capacity:int -> t
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val sink : t -> sink
  val length : t -> int
  val dropped : t -> int
  (** Events overwritten because the buffer was full. *)

  val contents : t -> event array
  (** Oldest first. *)
end

(** {2 Online invariant checking}

    An invariant checker is itself a sink: attach it (alone, or {!tee}d
    with a writer) and every event is checked the moment it happens.
    The invariants, for both engines:

    - {b conservation}: never more deliveries + drops than sends; in a
      synchronous run, every round's sends are fully resolved by the
      next [Round_begin] and by the end of the run ([Complete]/
      [Give_up]). (An asynchronous run may legitimately end with
      messages still in flight.)
    - {b liveness discipline}: only active nodes send, tick, or receive
      — a [Send]/[Tick] from, or [Deliver] to, a crashed or unjoined
      node is a violation; a [Drop] blamed on [Dead_dst] must name a
      node that actually crashed, and [Unjoined_dst] one that has not
      activated.
    - {b monotonicity}: synchronous rounds increase by exactly 1;
      asynchronous time never decreases, and each node's tick counts
      are consecutive from 1. [Join]/[Crash] fire at most once per
      node; nothing follows [Complete]/[Give_up].
    - {b metrics agreement} ({!Invariants.final_check}): the
      sink-counted totals equal the engine's {!Metrics} totals.
    - {b provenance} (content audit): once a [Genesis] event arms the
      audit, every id a [Content] event advertises must be genuinely
      held by its sender — present in the sender's genesis set or learned
      through an earlier audited delivery. A fabricated or stale id is a
      violation. A node's [Genesis] resets its provenance (restarts
      start over from initial knowledge).
*)
module Invariants : sig
  type t

  exception Violation of string
  (** Raised out of {!Trace.emit} (hence out of the engine's run) at the
      first offending event, and by {!final_check}. *)

  val create : ?lenient:bool -> ?allow_inflight:bool -> unit -> t
  (** [lenient] (default [false]) relaxes the checks that fault plans
      with node restarts legitimately break: a [Join] after a [Crash] is
      a restart (the node becomes active again and its tick sequence
      restarts from 1); deliveries may exceed sends (a retransmission
      can deliver to a second incarnation of a restarted peer); a
      [Dead_dst] drop may name a node that has since restarted; and
      {!final_check} only requires the trace totals to {e dominate} the
      metrics totals (retired incarnations appear in the trace but not
      in the survivors' final counters). Everything else — liveness
      discipline, monotonic time, consecutive per-incarnation ticks —
      is still enforced.

      [allow_inflight] (default [false]) relaxes the synchronous
      round-boundary and end-of-run conservation checks from equality to
      "never more resolutions than sends": fault plans with link delays
      legitimately carry messages across round boundaries (and a run can
      end with delayed messages still pending). *)

  val sink : t -> sink

  val events_seen : t -> int

  val final_check : t -> Metrics.t -> unit
  (** Call after the run with the outcome's metrics: checks the run was
      properly terminated ([Complete]/[Give_up] seen), end-of-run
      conservation, and that sink-counted sends/deliveries/drops/
      pointers/bytes equal the {!Metrics} totals.
      @raise Violation on any mismatch. *)
end

(** {2 Convergence-lag checking}

    The liveness discipline of a {e continuous} run: after every
    membership change (a [Join], [Crash] or [Leave] once the clock has
    started), every live node must re-converge to the new membership
    within [bound] time units. The observer (the service runtime)
    numbers changes as {e epochs} — change [k] is epoch [k]; [Join]s
    before the first [Tick] are the genesis membership, epoch 0, with no
    deadline — and emits [Converge {node; epoch}] when a node's view
    matches the membership as of epoch [epoch]. The checker closes
    epochs in order (matching the current membership subsumes every
    earlier change) and raises the moment the clock passes an open
    epoch's deadline.

    A node is required to converge to epoch [e] iff it is live and
    (re)joined no later than [e]'s change time: later joiners answer for
    the epochs their own join created. Like {!Invariants}, attach via
    {!Lag.sink} ({!tee}d with any other sink). *)
module Lag : sig
  type t

  exception Violation of string

  val create : ?bound:float -> unit -> t
  (** [bound] is the convergence deadline in the trace's time units
      (virtual ticks), default [512.0]. Callers should scale it
      O(polylog n) — e.g. [4 · (log2 n)²] with a small-n floor.
      @raise Invalid_argument if [bound <= 0]. *)

  val sink : t -> sink

  val epochs : t -> int
  (** Membership changes seen since the clock started. *)

  val closed : t -> int
  (** Epochs confirmed converged so far. *)

  val max_lag : t -> float
  (** The largest observed change-to-fleet-convergence lag over closed
      epochs. *)

  val table_peak : t -> int
  (** High-water mark of the internal epoch→change-time table. Closed
      epochs are pruned as the frontier advances, so this is bounded by
      the number of epochs ever simultaneously open (O(bound · churn
      rate)), not by the total number of changes — the memory guarantee
      long soaks rely on. *)

  val final_check : t -> unit
  (** Re-checks the frontier at the last observed time: epochs whose
      deadline already passed must be closed. Epochs whose deadline
      falls beyond the end of the trace are not judged.
      @raise Violation if an overdue epoch is still open. *)
end
