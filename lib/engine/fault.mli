(** Serializable fault plans shared by the simulators and the live
    network path.

    A plan combines four orthogonal dynamics classes:

    - {b link faults}: per-message loss, fixed delivery delay, duplication,
      reordering and byte corruption — either uniform (the {e base} link)
      or overridden per directed link. The synchronous and asynchronous
      simulators apply loss only (their delivery model has no frames to
      delay or corrupt); the live path applies all five at the frame level
      via [Repro_net.Faultnet].
    - {b partitions}: scheduled cuts between node groups, healed at a
      given round. Messages crossing group boundaries inside the window
      are dropped.
    - {b crash/restart schedules}: a node scheduled to crash at round [r]
      executes rounds [1 .. r-1] normally and is silent from round [r] on;
      a restart scheduled at a later round revives it with its initial
      knowledge (live: the supervisor re-forks the process and it rejoins
      via a hello handshake).
    - {b late joins} (churn): a node scheduled to join at round [r] is
      inactive before [r], and runs normally from round [r] on. Scheduled
      joins are simulator-only; the live cluster forks every node at
      start.

    Plans round-trip through a textual DSL ({!of_string} / {!to_string}):

    {v loss=0.1,part=0-3|4-7@5..20,crash=5@8,restart=5@14 v} *)

type t

type link = {
  loss : float;  (** independent per-message drop probability *)
  delay : int;  (** fixed delivery delay, in rounds/ticks *)
  dup : float;  (** probability a message is delivered twice *)
  reorder : float;  (** probability a message is held back one tick *)
  corrupt : float;  (** probability one frame byte is flipped (live only) *)
}

type partition = { groups : int list list; start : int; heal : int }
(** Nodes in different [groups] cannot exchange messages during rounds
    [start .. heal-1]; nodes in no listed group form an implicit extra
    group. *)

val none : t
(** The fault-free plan. *)

val default_link : link
(** All-zero link faults. *)

val is_none : t -> bool
val equal : t -> t -> bool

(** {1 Base link faults} *)

val drop_probability : t -> float
(** The base link's loss probability (back-compat accessor). *)

val with_loss : t -> p:float -> t
(** Independent per-message drop probability on the base link.
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val with_delay : t -> ticks:int -> t
val with_dup : t -> p:float -> t
val with_reorder : t -> p:float -> t
val with_corrupt : t -> p:float -> t

(** {1 Per-link overrides} *)

val with_link : t -> src:int -> dst:int -> link -> t
(** Override every fault field for the directed link [src -> dst]; an
    all-default link removes the override.
    @raise Invalid_argument on negative nodes or out-of-range fields. *)

val link_between : t -> src:int -> dst:int -> link
(** The effective link faults for [src -> dst] (override or base). *)

val loss_between : t -> src:int -> dst:int -> float
val overrides : t -> ((int * int) * link) list
(** All per-link overrides, sorted by (src, dst). *)

val has_link_faults : t -> bool
(** Any nonzero base field or any override. *)

(** {1 Partitions} *)

val with_partition : t -> groups:int list list -> start:int -> heal:int -> t
(** Cut the links between [groups] during rounds [start .. heal-1].
    @raise Invalid_argument if [start < 1], [heal <= start], a group is
    empty, or a node appears in two groups. *)

val partitions : t -> partition list

val cut : t -> src:int -> dst:int -> time:float -> bool
(** Is the [src -> dst] link severed by a partition at [time]? Rounds are
    compared as floats so the asynchronous engines can pass fractional
    times; the synchronous simulator passes [float_of_int round]. *)

(** {1 Crash / restart / join schedules} *)

val with_crash : t -> node:int -> round:int -> t
(** Schedule [node] to crash at the start of [round] (1-based). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1], [node < 0], or a scheduled
    restart for [node] does not come after [round]. *)

val with_crashes : t -> (int * int) list -> t
(** Fold of {!with_crash} over [(node, round)] pairs. *)

val crash_round : t -> node:int -> int option
(** The round at which [node] crashes, if any. *)

val crashed_nodes : t -> (int * int) list
(** All scheduled crashes as [(node, round)], sorted by node. *)

val with_restart : t -> node:int -> round:int -> t
(** Schedule [node] to restart (revive with initial knowledge) at the
    start of [round]. Requires an earlier scheduled crash.
    @raise Invalid_argument if [round < 1], [node < 0], no crash is
    scheduled for [node], or the restart does not come after it. *)

val restart_round : t -> node:int -> int option
val restarting_nodes : t -> (int * int) list
val has_restarts : t -> bool

val with_join : t -> node:int -> round:int -> t
(** Schedule [node] to join (become active) at the start of [round]
    (1-based; a join at round 1 is the default behaviour). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1] or [node < 0]. *)

val with_joins : t -> (int * int) list -> t
(** Fold of {!with_join} over [(node, round)] pairs. *)

val join_round : t -> node:int -> int
(** The round at which [node] activates (1 when unscheduled). *)

val joining_nodes : t -> (int * int) list
(** All scheduled late joins as [(node, round)], sorted by node. *)

val last_scheduled_round : t -> int
(** The latest round mentioned by any schedule (crash, restart, join or
    partition heal); 0 for {!none}. Drivers use it to keep runs alive
    until the plan has fully played out. *)

(** {1 Serialization} *)

val to_string : t -> string
(** Canonical DSL form; [to_string none = ""]. Items are comma-separated:
    [loss=P], [delay=T], [dup=P], [reorder=P], [corrupt=P],
    [link=SRC>DST:key=value:...], [part=G1|G2@START..HEAL] (groups are
    [+]-joined [a-b] ranges), [crash=N@R], [restart=N@R], [join=N@R]. *)

val of_string : string -> (t, string) result
(** Parse the DSL; inverse of {!to_string}. Restart items may appear
    before the crash they depend on. *)

val pp : Format.formatter -> t -> unit
