(** Serializable fault plans shared by the simulators and the live
    network path.

    A plan combines five orthogonal dynamics classes:

    - {b link faults}: per-message loss, fixed delivery delay, duplication,
      reordering, byte corruption and a per-link bandwidth cap — either
      uniform (the {e base} link), overridden per directed link, or applied
      to all cross-region links via a {b WAN profile}. The simulators apply
      loss, delay and caps (their delivery model has no frames to corrupt
      or reorder); the live path applies everything at the frame level via
      [Repro_net.Faultnet].
    - {b partitions}: scheduled cuts between node groups, healed at a
      given round. Messages crossing group boundaries inside the window
      are dropped.
    - {b content adversaries}: nodes scheduled to fabricate identifiers
      inject them into every data payload they send; the audit flag makes
      drivers emit provenance events ([genesis]/[content]) so the trace
      invariant checker can catch exactly this class of misbehavior.
    - {b crash/restart schedules}: a node scheduled to crash at round [r]
      executes rounds [1 .. r-1] normally and is silent from round [r] on;
      a restart scheduled at a later round revives it with its initial
      knowledge (live: the supervisor re-forks the process and it rejoins
      via a hello handshake).
    - {b late joins} (churn): a node scheduled to join at round [r] is
      inactive before [r], and runs normally from round [r] on. Scheduled
      joins are simulator-only; the live cluster forks every node at
      start.

    Plans round-trip through a textual DSL ({!of_string} / {!to_string}):

    {v loss=0.1,part=0-3|4-7@5..20,crash=5@8,restart=5@14 v} *)

type t

type link = {
  loss : float;  (** independent per-message drop probability *)
  delay : int;  (** fixed delivery delay, in rounds/ticks *)
  dup : float;  (** probability a message is delivered twice *)
  reorder : float;  (** probability a message is held back one tick *)
  corrupt : float;  (** probability one frame byte is flipped (live only) *)
  cap : int;
      (** bandwidth cap: at most [cap] messages per round (sync) or per
          unit-time window (async/live) cross the link; excess messages
          are dropped ([throttled]). 0 means unlimited. *)
}

type partition = { groups : int list list; start : int; heal : int }
(** Nodes in different [groups] cannot exchange messages during rounds
    [start .. heal-1]; nodes in no listed group form an implicit extra
    group. *)

type wan = { regions : int list list; cross : link }
(** A WAN profile: nodes cluster into latency [regions]; every link whose
    endpoints sit in different regions (nodes in no listed region form an
    implicit extra region) uses the [cross] link profile instead of the
    base link. Per-link overrides still win over the WAN profile. *)

val none : t
(** The fault-free plan. *)

val default_link : link
(** All-zero link faults. *)

val is_none : t -> bool
val equal : t -> t -> bool

(** {1 Base link faults} *)

val drop_probability : t -> float
(** The base link's loss probability (back-compat accessor). *)

val with_loss : t -> p:float -> t
(** Independent per-message drop probability on the base link.
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val with_delay : t -> ticks:int -> t
val with_dup : t -> p:float -> t
val with_reorder : t -> p:float -> t
val with_corrupt : t -> p:float -> t

val with_cap : t -> limit:int -> t
(** Base-link bandwidth cap in messages per round/window; 0 = unlimited.
    @raise Invalid_argument if [limit < 0]. *)

(** {1 Per-link overrides} *)

val with_link : t -> src:int -> dst:int -> link -> t
(** Override every fault field for the directed link [src -> dst]; an
    all-default link removes the override.
    @raise Invalid_argument on negative nodes or out-of-range fields. *)

val link_between : t -> src:int -> dst:int -> link
(** The effective link faults for [src -> dst]: per-link override if one
    exists, else the WAN cross profile when the endpoints sit in different
    regions, else the base link. *)

val loss_between : t -> src:int -> dst:int -> float
val overrides : t -> ((int * int) * link) list
(** All per-link overrides, sorted by (src, dst). *)

val has_link_faults : t -> bool
(** Any nonzero base field, any override, or a WAN profile. *)

val has_delays : t -> bool
(** Any link (base, override or WAN cross) with a nonzero delay. *)

val has_caps : t -> bool
(** Any link (base, override or WAN cross) with a bandwidth cap. *)

(** {1 WAN profiles} *)

val with_wan : t -> regions:int list list -> cross:link -> t
(** Install a WAN profile (replacing any previous one).
    @raise Invalid_argument if a region is empty, a node appears in two
    regions, [cross] has an out-of-range field, or [cross] is all-default
    (a no-op profile is almost certainly a mistake). *)

val wan : t -> wan option

(** {1 Partitions} *)

val with_partition : t -> groups:int list list -> start:int -> heal:int -> t
(** Cut the links between [groups] during rounds [start .. heal-1].
    @raise Invalid_argument if [start < 1], [heal <= start], a group is
    empty, or a node appears in two groups. *)

val partitions : t -> partition list

val cut : t -> src:int -> dst:int -> time:float -> bool
(** Is the [src -> dst] link severed by a partition at [time]? Rounds are
    compared as floats so the asynchronous engines can pass fractional
    times; the synchronous simulator passes [float_of_int round]. *)

(** {1 Crash / restart / join schedules} *)

val with_crash : t -> node:int -> round:int -> t
(** Schedule [node] to crash at the start of [round] (1-based). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1], [node < 0], or a scheduled
    restart for [node] does not come after [round]. *)

val with_crashes : t -> (int * int) list -> t
(** Fold of {!with_crash} over [(node, round)] pairs. *)

val crash_round : t -> node:int -> int option
(** The round at which [node] crashes, if any. *)

val crashed_nodes : t -> (int * int) list
(** All scheduled crashes as [(node, round)], sorted by node. *)

val with_restart : t -> node:int -> round:int -> t
(** Schedule [node] to restart (revive with initial knowledge) at the
    start of [round]. Requires an earlier scheduled crash.
    @raise Invalid_argument if [round < 1], [node < 0], no crash is
    scheduled for [node], or the restart does not come after it. *)

val restart_round : t -> node:int -> int option
val restarting_nodes : t -> (int * int) list
val has_restarts : t -> bool

val with_join : t -> node:int -> round:int -> t
(** Schedule [node] to join (become active) at the start of [round]
    (1-based; a join at round 1 is the default behaviour). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1] or [node < 0]. *)

val with_joins : t -> (int * int) list -> t
(** Fold of {!with_join} over [(node, round)] pairs. *)

val join_round : t -> node:int -> int
(** The round at which [node] activates (1 when unscheduled). *)

val joining_nodes : t -> (int * int) list
(** All scheduled late joins as [(node, round)], sorted by node. *)

val with_leave : t -> node:int -> round:int -> t
(** Schedule [node] to leave gracefully at the start of [round]
    (1-based): it announces its departure and stops, unlike a crash,
    which is silent. Consumed by the continuous discovery service
    (the one-shot engines treat membership as fixed once joined).
    @raise Invalid_argument if [round < 1], [node < 0], or [node] also
    has a scheduled crash (a node cannot both crash and leave). *)

val with_leaves : t -> (int * int) list -> t
(** Fold of {!with_leave} over [(node, round)] pairs. *)

val leave_round : t -> node:int -> int option
(** The round at which [node] leaves, if scheduled. *)

val leaving_nodes : t -> (int * int) list
(** All scheduled leaves as [(node, round)], sorted by node. *)

(** {1 Content adversaries} *)

val with_fabrication : t -> node:int -> id:int -> t
(** Make [node] inject identifier [id] into every data payload it sends —
    a Byzantine-ish adversary advertising ids it never genuinely learned.
    Multiple fabrications per node accumulate (set semantics).
    @raise Invalid_argument on a negative node or id. *)

val fabrications : t -> (int * int list) list
(** All fabrication schedules as [(node, sorted ids)], sorted by node. *)

val fabricated_ids : t -> node:int -> int list
(** The ids [node] fabricates (sorted; [] when honest). *)

val has_fabrications : t -> bool

val with_audit : t -> bool -> t
(** Toggle content auditing: drivers emit [genesis] events (a node's
    genuinely originated knowledge at birth/restart) and [content] events
    (the ids a payload advertises) so {!Trace.Invariants} can verify that
    every advertised id was genuinely learned. Off by default — audit
    events change the trace stream, so goldens stay byte-identical. *)

val audit : t -> bool

val last_scheduled_round : t -> int
(** The latest round mentioned by any schedule (crash, restart, join,
    leave or partition heal); 0 for {!none}. Drivers use it to keep runs
    alive until the plan has fully played out. *)

(** {1 Serialization} *)

val to_string : t -> string
(** Canonical DSL form; [to_string none = ""]. Items are comma-separated:
    [loss=P], [delay=T], [dup=P], [reorder=P], [corrupt=P], [cap=N],
    [link=SRC>DST:key=value:...], [wan=R1|R2:key=value:...] (regions are
    [+]-joined [a-b] ranges), [part=G1|G2@START..HEAL], [crash=N@R],
    [restart=N@R], [join=N@R], [leave=N@R], [fabricate=NODE@ID],
    [audit=1]. *)

val of_string : string -> (t, string) result
(** Parse the DSL; inverse of {!to_string}. Restart items may appear
    before the crash they depend on. Duplicate [link=] items for the same
    directed link and duplicate [wan=] items are rejected. *)

val pp : Format.formatter -> t -> unit
