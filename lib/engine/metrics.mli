(** Cost accounting for simulation runs.

    Tracks the three complexity measures of the resource-discovery
    literature — rounds, messages ("connection complexity") and pointers
    (identifiers transferred) — plus delivery/drop counters and full
    per-round series for the dynamics figures. *)

type t

val create : unit -> t

(** {2 Recording (used by the engine)} *)

val begin_round : t -> unit
val record_send : t -> pointers:int -> bytes:int -> unit
val record_delivery : t -> unit
val record_drop : t -> unit

val record_retransmit : t -> unit
(** A frame re-sent by the live path's reliability layer. Retransmits
    are transport-level repair, not algorithm activity: they are never
    counted as sends. *)

val record_corrupt_frame : t -> unit
(** A received frame rejected by its CRC. *)

val absorb :
  t ->
  ?retransmits:int ->
  ?corrupt_frames:int ->
  sent:int ->
  delivered:int ->
  dropped:int ->
  pointers:int ->
  bytes:int ->
  unit ->
  unit
(** Merge pre-aggregated totals into [t] without touching the per-round
    series — how the cluster harness folds the counters its node
    processes report into one run-level metrics value (live runs have no
    global rounds, so the series stay empty).
    @raise Invalid_argument on negative totals. *)

(** {2 Totals} *)

val rounds : t -> int
val messages_sent : t -> int
val messages_delivered : t -> int
val messages_dropped : t -> int
val pointers_sent : t -> int
val bytes_sent : t -> int
(** Wire bytes under the encoding the engine was configured with (0 when
    byte accounting is off). *)

val retransmits : t -> int
(** Reliability-layer frame retransmissions (live path only; always 0 in
    simulator runs). *)

val corrupt_frames : t -> int
(** Received frames rejected by CRC (live path only). *)

(** {2 Per-round series (index 0 = round 1)} *)

val sent_series : t -> int array
val pointer_series : t -> int array
val byte_series : t -> int array

val max_messages_in_round : t -> int
(** 0 when no round has run. *)

val pp : Format.formatter -> t -> unit
val to_csv_rows : t -> string list list
(** Rows of [round; sent; pointers; bytes] suitable for {!Csvio.write}
    with header [\["round"; "messages"; "pointers"; "bytes"\]]. *)
