(** The synchronous round-based execution engine.

    This is the standard execution model of PODC-style synchronous
    algorithms: in every round each (alive) node first computes and sends
    its messages from its start-of-round state, then all messages are
    delivered simultaneously. The engine is generic in the message type;
    algorithm state lives entirely in the caller's closures.

    Determinism: given the same handlers, node count, configuration and
    seed, the engine performs the identical sequence of callbacks. Nodes
    are polled for sends in index order, and messages are delivered in
    send order; message loss is drawn from a dedicated engine RNG stream.
*)

type 'msg handlers = {
  round_begin : node:int -> round:int -> send:(dst:int -> 'msg -> unit) -> unit;
      (** Called once per alive node per round. [send] may be called any
          number of times; sends to crashed or out-of-range destinations
          are counted as sent and then dropped.
          @raise Invalid_argument if [send] is given a destination outside
          [0 .. n-1]. *)
  deliver : node:int -> src:int -> round:int -> 'msg -> unit;
      (** Called during the delivery phase of the same round. *)
}

type config = {
  max_rounds : int;  (** hard stop; the run is marked incomplete if hit *)
  fault : Fault.t;
  engine_seed : int;  (** seeds the loss RNG only *)
  trace : Trace.sink;
      (** structured event trace of the run (see {!Trace} for the
          vocabulary and ordering guarantees). Strictly observational:
          the execution is identical whatever the sink, and the default
          {!Trace.null} adds no per-event work or allocation. *)
  jobs : int;
      (** Domains sharding {e this} run's nodes ([<= 1] = sequential).
          Nodes are split into [jobs] contiguous shards; each round, the
          shards compute their sends in parallel, the coordinator then
          accounts and resolves every message in the sequential engine's
          canonical order (so all trace events, metrics and RNG draws
          are emitted in the identical sequence), and the shards apply
          deliveries in parallel. A run at [jobs = k] is byte-identical
          — same trace, same metrics, same outcome — to [jobs = 1].

          Requirements on the handlers, beyond the sequential contract:
          [round_begin] and [deliver] for node [v] may touch only node
          [v]'s state plus immutable shared data (message payloads must
          be frozen snapshots), and must not emit trace events (the
          engine owns the canonical event order; callers that wrap
          [deliver] with trace emission — e.g. content auditing — must
          clamp to [jobs = 1], see {!Repro_discovery.Run.exec_spec}). *)
}

val default_config : config
(** [max_rounds = 10_000], no faults, seed 0, no tracing, [jobs = 1]. *)

type outcome = {
  completed : bool;  (** the stop predicate fired before [max_rounds] *)
  rounds : int;  (** rounds actually executed *)
  metrics : Metrics.t;
  alive : bool array;  (** liveness at the end of the run *)
}

val run :
  n:int ->
  config:config ->
  handlers:'msg handlers ->
  measure:('msg -> int) ->
  ?measure_bytes:('msg -> int) ->
  stop:(round:int -> alive:(int -> bool) -> bool) ->
  ?on_round_end:(round:int -> unit) ->
  ?on_restart:(node:int -> unit) ->
  unit ->
  outcome
(** Execute rounds [1, 2, …] until [stop] returns true (checked after each
    round's deliveries, and once before round 1 for trivially-complete
    instances) or [max_rounds] is reached. [measure] gives the pointer
    count of a message for accounting; [measure_bytes] (default: constant
    0, i.e. byte accounting off) its wire size. [on_restart] fires when a
    scheduled restart revives a crashed node, before the node's next
    [round_begin]: the caller must reset that node's algorithm state to
    its initial world view (default: no-op, i.e. the node resumes with
    whatever state the handlers still hold for it).
    @raise Invalid_argument if [n < 0] or [config.max_rounds < 0]. *)
