open Repro_util

type 'msg handlers = {
  round_begin : node:int -> round:int -> send:(dst:int -> 'msg -> unit) -> unit;
  deliver : node:int -> src:int -> round:int -> 'msg -> unit;
}

type config = { max_rounds : int; fault : Fault.t; engine_seed : int; trace : Trace.sink }

let default_config =
  { max_rounds = 10_000; fault = Fault.none; engine_seed = 0; trace = Trace.null }

type outcome = { completed : bool; rounds : int; metrics : Metrics.t; alive : bool array }

let run ~n ~config ~handlers ~measure ?(measure_bytes = fun _ -> 0) ~stop
    ?(on_round_end = fun ~round:_ -> ()) ?(on_restart = fun ~node:_ -> ()) () =
  if n < 0 then invalid_arg "Sim.run: negative node count";
  if config.max_rounds < 0 then invalid_arg "Sim.run: negative round budget";
  let alive = Array.make n true in
  let metrics = Metrics.create () in
  let loss_rng = Rng.substream ~seed:config.engine_seed ~index:0x10ad in
  let fault = config.fault in
  let has_partitions = Fault.partitions fault <> [] in
  let has_delays = Fault.has_delays fault in
  let has_caps = Fault.has_caps fault in
  (* per-round per-link bandwidth accounting, keyed src*n+dst *)
  let cap_used : (int, int) Hashtbl.t = Hashtbl.create (if has_caps then 64 else 1) in
  (* messages held by delayed links, (release_round, src, dst, payload)
     newest first; they outlive the outbox, which is cleared per round *)
  let pending = ref [] in
  let crash_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then crash_at.(node) <- round)
    (Fault.crashed_nodes config.fault);
  let restart_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then restart_at.(node) <- round)
    (Fault.restarting_nodes config.fault);
  let join_at = Array.make n 1 in
  List.iter
    (fun (node, round) ->
      if node < n then begin
        join_at.(node) <- round;
        if round > 1 then alive.(node) <- false
      end)
    (Fault.joining_nodes config.fault);
  let is_alive v = v >= 0 && v < n && alive.(v) in
  (* one buffer for the whole run: cleared (not reallocated) per round *)
  let outbox : 'msg Outbox.t = Outbox.create () in
  let completed = ref (stop ~round:0 ~alive:is_alive) in
  let round = ref 0 in
  (* tracing is observational only: no RNG draw, metric or delivery
     depends on it, and with the null sink no event is even constructed *)
  let trace = config.trace in
  let tracing = not (Trace.is_null trace) in
  (* one send closure per node for the whole run — building them inside
     the round loop would put n closures per round on the minor heap *)
  let senders =
    Array.init n (fun v ~dst payload ->
        if dst < 0 || dst >= n then invalid_arg "Sim.send: destination out of range";
        let pointers = measure payload and bytes = measure_bytes payload in
        Metrics.record_send metrics ~pointers ~bytes;
        if tracing then Trace.emit trace (Trace.Send { src = v; dst; pointers; bytes });
        Outbox.push outbox ~src:v ~dst payload)
  in
  while (not !completed) && !round < config.max_rounds do
    incr round;
    let r = !round in
    if tracing then Trace.emit trace (Trace.Round_begin { round = r });
    Metrics.begin_round metrics;
    (* join and crash-stop transitions happen at the start of the round;
       a crash scheduled at or before a node's join round wins *)
    for v = 0 to n - 1 do
      if join_at.(v) = r && crash_at.(v) > r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v })
      end;
      if crash_at.(v) = r then begin
        alive.(v) <- false;
        if tracing then Trace.emit trace (Trace.Crash { node = v })
      end;
      (* a restart revives the node with its initial state; the restart
         round is constrained to come strictly after the crash round *)
      if restart_at.(v) = r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v });
        on_restart ~node:v
      end
    done;
    (* send phase: all sends are computed from start-of-round state *)
    Outbox.clear outbox;
    for v = 0 to n - 1 do
      if alive.(v) then handlers.round_begin ~node:v ~round:r ~send:senders.(v)
    done;
    (* delivery phase, in send order *)
    let drop src dst reason =
      Metrics.record_drop metrics;
      if tracing then Trace.emit trace (Trace.Drop { src; dst; reason })
    in
    let drop_dead src dst =
      drop src dst (if crash_at.(dst) <= r then Trace.Dead_dst else Trace.Unjoined_dst)
    in
    let deliver src dst payload =
      Metrics.record_delivery metrics;
      if tracing then Trace.emit trace (Trace.Deliver { src; dst });
      handlers.deliver ~node:dst ~src ~round:r payload
    in
    if has_caps then Hashtbl.reset cap_used;
    (* messages released by delayed links deliver first (they are older
       than this round's outbox), oldest sends first; partitions and loss
       were already resolved at send time, only liveness is re-checked *)
    if has_delays && !pending <> [] then begin
      let due, held = List.partition (fun (rel, _, _, _) -> rel <= r) !pending in
      pending := held;
      List.iter
        (fun (_, src, dst, payload) ->
          if not alive.(dst) then drop_dead src dst else deliver src dst payload)
        (List.rev due)
    end;
    Outbox.iter outbox (fun src dst payload ->
        if not alive.(dst) then drop_dead src dst
        else if has_partitions && Fault.cut fault ~src ~dst ~time:(float_of_int r) then
          drop src dst Trace.Partitioned
        else begin
          let lk = Fault.link_between fault ~src ~dst in
          let throttled =
            lk.Fault.cap > 0
            &&
            let key = (src * n) + dst in
            let used = Option.value ~default:0 (Hashtbl.find_opt cap_used key) in
            Hashtbl.replace cap_used key (used + 1);
            used >= lk.Fault.cap
          in
          if throttled then drop src dst Trace.Throttled
          else if lk.Fault.loss > 0.0 && Rng.bernoulli loss_rng ~p:lk.Fault.loss then
            drop src dst Trace.Loss
          else if lk.Fault.delay > 0 then
            pending := (r + lk.Fault.delay, src, dst, payload) :: !pending
          else deliver src dst payload
        end);
    on_round_end ~round:r;
    if stop ~round:r ~alive:is_alive then completed := true
  done;
  if tracing then begin
    Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
    Trace.flush trace
  end;
  { completed = !completed; rounds = !round; metrics; alive }
