open Repro_util

type 'msg handlers = {
  round_begin : node:int -> round:int -> send:(dst:int -> 'msg -> unit) -> unit;
  deliver : node:int -> src:int -> round:int -> 'msg -> unit;
}

type config = {
  max_rounds : int;
  fault : Fault.t;
  engine_seed : int;
  trace : Trace.sink;
  jobs : int;
}

let default_config =
  { max_rounds = 10_000; fault = Fault.none; engine_seed = 0; trace = Trace.null; jobs = 1 }

type outcome = { completed : bool; rounds : int; metrics : Metrics.t; alive : bool array }

(* The parallel path shards one run's nodes across a persistent domain
   team and replays the sequential engine's event order exactly:

   - send phase (parallel): shard s runs [round_begin] for its nodes,
     pushing raw messages into a shard-private outbox — no accounting,
     no tracing, no shared writes. Shard s covers the contiguous nodes
     [s*chunk, (s+1)*chunk), so concatenating the shard outboxes in
     shard order reproduces the sequential engine's global send order.

   - accounting + resolution (coordinator, sequential): walk the shard
     outboxes in canonical order emitting Send events and metrics, then
     release due delayed messages, then resolve each message's fate
     (liveness, partition, cap, loss, delay) in the same order and with
     the same RNG stream as the sequential engine, emitting Drop/Deliver
     events as resolved and pushing survivors into the destination
     shard's delivery inbox.

   - delivery phase (parallel): shard s applies [handlers.deliver] for
     the messages in its inbox, in inbox order. Deliveries to one node
     keep their canonical relative order; deliveries to different nodes
     commute because a deliver handler only touches its own node's state
     (payloads are immutable snapshots; see {!Repro_util.Cset.freeze}).

   Every trace event, metric and RNG draw therefore happens on the
   coordinator in the sequential order — a run at [jobs = k] is
   byte-identical to [jobs = 1]. The team barrier between phases gives
   the happens-before edges: phase N's writes are visible to phase N+1
   on every member. *)
let run ~n ~config ~handlers ~measure ?(measure_bytes = fun _ -> 0) ~stop
    ?(on_round_end = fun ~round:_ -> ()) ?(on_restart = fun ~node:_ -> ()) () =
  if n < 0 then invalid_arg "Sim.run: negative node count";
  if config.max_rounds < 0 then invalid_arg "Sim.run: negative round budget";
  let alive = Array.make n true in
  let metrics = Metrics.create () in
  let loss_rng = Rng.substream ~seed:config.engine_seed ~index:0x10ad in
  let fault = config.fault in
  let has_partitions = Fault.partitions fault <> [] in
  let has_delays = Fault.has_delays fault in
  let has_caps = Fault.has_caps fault in
  (* per-round per-link bandwidth accounting, keyed src*n+dst *)
  let cap_used : (int, int) Hashtbl.t = Hashtbl.create (if has_caps then 64 else 1) in
  (* messages held by delayed links, (release_round, src, dst, payload)
     newest first; they outlive the outbox, which is cleared per round *)
  let pending = ref [] in
  let crash_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then crash_at.(node) <- round)
    (Fault.crashed_nodes config.fault);
  let restart_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then restart_at.(node) <- round)
    (Fault.restarting_nodes config.fault);
  let join_at = Array.make n 1 in
  List.iter
    (fun (node, round) ->
      if node < n then begin
        join_at.(node) <- round;
        if round > 1 then alive.(node) <- false
      end)
    (Fault.joining_nodes config.fault);
  let is_alive v = v >= 0 && v < n && alive.(v) in
  let completed = ref (stop ~round:0 ~alive:is_alive) in
  let round = ref 0 in
  (* tracing is observational only: no RNG draw, metric or delivery
     depends on it, and with the null sink no event is even constructed *)
  let trace = config.trace in
  let tracing = not (Trace.is_null trace) in
  (* join and crash-stop transitions happen at the start of the round; a
     crash scheduled at or before a node's join round wins *)
  let transitions r =
    for v = 0 to n - 1 do
      if join_at.(v) = r && crash_at.(v) > r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v })
      end;
      if crash_at.(v) = r then begin
        alive.(v) <- false;
        if tracing then Trace.emit trace (Trace.Crash { node = v })
      end;
      (* a restart revives the node with its initial state; the restart
         round is constrained to come strictly after the crash round *)
      if restart_at.(v) = r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v });
        on_restart ~node:v
      end
    done
  in
  (* Delivery-fate closures are hoisted out of the round loop (they read
     the current round through the [round] ref) so a steady-state round
     allocates nothing. *)
  let drop src dst reason =
    Metrics.record_drop metrics;
    if tracing then Trace.emit trace (Trace.Drop { src; dst; reason })
  in
  let drop_dead src dst =
    drop src dst (if crash_at.(dst) <= !round then Trace.Dead_dst else Trace.Unjoined_dst)
  in
  (* [resolve] decides a message's fate — shared verbatim by both paths
     so the RNG stream and event order cannot diverge. [deliver] is the
     path-specific survivor action. *)
  let resolve ~deliver src dst payload =
    if not alive.(dst) then drop_dead src dst
    else if has_partitions && Fault.cut fault ~src ~dst ~time:(float_of_int !round) then
      drop src dst Trace.Partitioned
    else begin
      let lk = Fault.link_between fault ~src ~dst in
      let throttled =
        lk.Fault.cap > 0
        &&
        let key = (src * n) + dst in
        let used = Option.value ~default:0 (Hashtbl.find_opt cap_used key) in
        Hashtbl.replace cap_used key (used + 1);
        used >= lk.Fault.cap
      in
      if throttled then drop src dst Trace.Throttled
      else if lk.Fault.loss > 0.0 && Rng.bernoulli loss_rng ~p:lk.Fault.loss then
        drop src dst Trace.Loss
      else if lk.Fault.delay > 0 then
        pending := (!round + lk.Fault.delay, src, dst, payload) :: !pending
      else deliver src dst payload
    end
  in
  let release_due ~deliver r =
    if has_delays && !pending <> [] then begin
      let due, held = List.partition (fun (rel, _, _, _) -> rel <= r) !pending in
      pending := held;
      List.iter
        (fun (_, src, dst, payload) ->
          if not alive.(dst) then drop_dead src dst else deliver src dst payload)
        (List.rev due)
    end
  in
  let jobs = min (max 1 config.jobs) (max 1 n) in
  if jobs = 1 then begin
    (* ---- sequential path ---- *)
    (* one buffer for the whole run: cleared (not reallocated) per round *)
    let outbox : 'msg Outbox.t = Outbox.create () in
    (* one send closure per node for the whole run — building them inside
       the round loop would put n closures per round on the minor heap *)
    let senders =
      Array.init n (fun v ~dst payload ->
          if dst < 0 || dst >= n then invalid_arg "Sim.send: destination out of range";
          let pointers = measure payload and bytes = measure_bytes payload in
          Metrics.record_send metrics ~pointers ~bytes;
          if tracing then Trace.emit trace (Trace.Send { src = v; dst; pointers; bytes });
          Outbox.push outbox ~src:v ~dst payload)
    in
    let deliver src dst payload =
      Metrics.record_delivery metrics;
      if tracing then Trace.emit trace (Trace.Deliver { src; dst });
      handlers.deliver ~node:dst ~src ~round:!round payload
    in
    let resolve_deliver src dst payload = resolve ~deliver src dst payload in
    while (not !completed) && !round < config.max_rounds do
      incr round;
      let r = !round in
      if tracing then Trace.emit trace (Trace.Round_begin { round = r });
      Metrics.begin_round metrics;
      transitions r;
      (* send phase: all sends are computed from start-of-round state *)
      Outbox.clear outbox;
      for v = 0 to n - 1 do
        if alive.(v) then handlers.round_begin ~node:v ~round:r ~send:senders.(v)
      done;
      if has_caps then Hashtbl.reset cap_used;
      (* messages released by delayed links deliver first (they are older
         than this round's outbox), oldest sends first; partitions and
         loss were already resolved at send time, only liveness is
         re-checked *)
      release_due ~deliver r;
      Outbox.iter outbox resolve_deliver;
      on_round_end ~round:r;
      if stop ~round:r ~alive:is_alive then completed := true
    done
  end
  else begin
    (* ---- parallel path ---- *)
    let chunk = (n + jobs - 1) / jobs in
    let shard_of v = v / chunk in
    let shard_out : 'msg Outbox.t array = Array.init jobs (fun _ -> Outbox.create ()) in
    let shard_in : 'msg Outbox.t array = Array.init jobs (fun _ -> Outbox.create ()) in
    (* raw per-node senders: shard-private push, zero shared writes *)
    let senders =
      Array.init n (fun v ~dst payload ->
          if dst < 0 || dst >= n then invalid_arg "Sim.send: destination out of range";
          Outbox.push shard_out.(shard_of v) ~src:v ~dst payload)
    in
    let account src dst payload =
      let pointers = measure payload and bytes = measure_bytes payload in
      Metrics.record_send metrics ~pointers ~bytes;
      if tracing then Trace.emit trace (Trace.Send { src; dst; pointers; bytes })
    in
    (* a survivor's Deliver event and metric are emitted at resolution
       time (the sequential order); the handler itself runs in the
       delivery phase on the destination's shard *)
    let deliver src dst payload =
      Metrics.record_delivery metrics;
      if tracing then Trace.emit trace (Trace.Deliver { src; dst });
      Outbox.push shard_in.(shard_of dst) ~src ~dst payload
    in
    let resolve_deliver src dst payload = resolve ~deliver src dst payload in
    let team = Pool.Team.create ~members:jobs in
    let send_phase s =
      let lo = s * chunk in
      let hi = min n (lo + chunk) - 1 in
      for v = lo to hi do
        if alive.(v) then handlers.round_begin ~node:v ~round:!round ~send:senders.(v)
      done
    in
    let deliver_phase s =
      Outbox.iter shard_in.(s) (fun src dst payload ->
          handlers.deliver ~node:dst ~src ~round:!round payload)
    in
    Fun.protect
      ~finally:(fun () -> Pool.Team.shutdown team)
      (fun () ->
        while (not !completed) && !round < config.max_rounds do
          incr round;
          let r = !round in
          if tracing then Trace.emit trace (Trace.Round_begin { round = r });
          Metrics.begin_round metrics;
          transitions r;
          Array.iter Outbox.clear shard_out;
          Pool.Team.run team send_phase;
          (* canonical accounting: shard concatenation = node order *)
          Array.iter (fun ob -> Outbox.iter ob account) shard_out;
          if has_caps then Hashtbl.reset cap_used;
          Array.iter Outbox.clear shard_in;
          release_due ~deliver r;
          Array.iter (fun ob -> Outbox.iter ob resolve_deliver) shard_out;
          Pool.Team.run team deliver_phase;
          on_round_end ~round:r;
          if stop ~round:r ~alive:is_alive then completed := true
        done)
  end;
  if tracing then begin
    Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
    Trace.flush trace
  end;
  { completed = !completed; rounds = !round; metrics; alive }
