open Repro_util

type 'msg handlers = {
  round_begin : node:int -> round:int -> send:(dst:int -> 'msg -> unit) -> unit;
  deliver : node:int -> src:int -> round:int -> 'msg -> unit;
}

type config = { max_rounds : int; fault : Fault.t; engine_seed : int; trace : Trace.sink }

let default_config =
  { max_rounds = 10_000; fault = Fault.none; engine_seed = 0; trace = Trace.null }

type outcome = { completed : bool; rounds : int; metrics : Metrics.t; alive : bool array }

let run ~n ~config ~handlers ~measure ?(measure_bytes = fun _ -> 0) ~stop
    ?(on_round_end = fun ~round:_ -> ()) ?(on_restart = fun ~node:_ -> ()) () =
  if n < 0 then invalid_arg "Sim.run: negative node count";
  if config.max_rounds < 0 then invalid_arg "Sim.run: negative round budget";
  let alive = Array.make n true in
  let metrics = Metrics.create () in
  let loss_rng = Rng.substream ~seed:config.engine_seed ~index:0x10ad in
  let fault = config.fault in
  let has_partitions = Fault.partitions fault <> [] in
  let crash_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then crash_at.(node) <- round)
    (Fault.crashed_nodes config.fault);
  let restart_at = Array.make n max_int in
  List.iter
    (fun (node, round) -> if node < n then restart_at.(node) <- round)
    (Fault.restarting_nodes config.fault);
  let join_at = Array.make n 1 in
  List.iter
    (fun (node, round) ->
      if node < n then begin
        join_at.(node) <- round;
        if round > 1 then alive.(node) <- false
      end)
    (Fault.joining_nodes config.fault);
  let is_alive v = v >= 0 && v < n && alive.(v) in
  (* one buffer for the whole run: cleared (not reallocated) per round *)
  let outbox : 'msg Outbox.t = Outbox.create () in
  let completed = ref (stop ~round:0 ~alive:is_alive) in
  let round = ref 0 in
  (* tracing is observational only: no RNG draw, metric or delivery
     depends on it, and with the null sink no event is even constructed *)
  let trace = config.trace in
  let tracing = not (Trace.is_null trace) in
  (* one send closure per node for the whole run — building them inside
     the round loop would put n closures per round on the minor heap *)
  let senders =
    Array.init n (fun v ~dst payload ->
        if dst < 0 || dst >= n then invalid_arg "Sim.send: destination out of range";
        let pointers = measure payload and bytes = measure_bytes payload in
        Metrics.record_send metrics ~pointers ~bytes;
        if tracing then Trace.emit trace (Trace.Send { src = v; dst; pointers; bytes });
        Outbox.push outbox ~src:v ~dst payload)
  in
  while (not !completed) && !round < config.max_rounds do
    incr round;
    let r = !round in
    if tracing then Trace.emit trace (Trace.Round_begin { round = r });
    Metrics.begin_round metrics;
    (* join and crash-stop transitions happen at the start of the round;
       a crash scheduled at or before a node's join round wins *)
    for v = 0 to n - 1 do
      if join_at.(v) = r && crash_at.(v) > r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v })
      end;
      if crash_at.(v) = r then begin
        alive.(v) <- false;
        if tracing then Trace.emit trace (Trace.Crash { node = v })
      end;
      (* a restart revives the node with its initial state; the restart
         round is constrained to come strictly after the crash round *)
      if restart_at.(v) = r then begin
        alive.(v) <- true;
        if tracing then Trace.emit trace (Trace.Join { node = v });
        on_restart ~node:v
      end
    done;
    (* send phase: all sends are computed from start-of-round state *)
    Outbox.clear outbox;
    for v = 0 to n - 1 do
      if alive.(v) then handlers.round_begin ~node:v ~round:r ~send:senders.(v)
    done;
    (* delivery phase, in send order *)
    Outbox.iter outbox (fun src dst payload ->
        if not alive.(dst) then begin
          Metrics.record_drop metrics;
          if tracing then
            Trace.emit trace
              (Trace.Drop
                 {
                   src;
                   dst;
                   reason = (if crash_at.(dst) <= r then Trace.Dead_dst else Trace.Unjoined_dst);
                 })
        end
        else if has_partitions && Fault.cut fault ~src ~dst ~time:(float_of_int r) then begin
          Metrics.record_drop metrics;
          if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Partitioned })
        end
        else begin
          let loss = Fault.loss_between fault ~src ~dst in
          if loss > 0.0 && Rng.bernoulli loss_rng ~p:loss then begin
            Metrics.record_drop metrics;
            if tracing then Trace.emit trace (Trace.Drop { src; dst; reason = Trace.Loss })
          end
          else begin
            Metrics.record_delivery metrics;
            if tracing then Trace.emit trace (Trace.Deliver { src; dst });
            handlers.deliver ~node:dst ~src ~round:r payload
          end
        end);
    on_round_end ~round:r;
    if stop ~round:r ~alive:is_alive then completed := true
  done;
  if tracing then begin
    Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
    Trace.flush trace
  end;
  { completed = !completed; rounds = !round; metrics; alive }
