open Repro_util

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pointers : int;
  mutable bytes : int;
  mutable retransmits : int;
  mutable corrupt_frames : int;
  sent_per_round : Intvec.t;
  pointers_per_round : Intvec.t;
  bytes_per_round : Intvec.t;
}

let create () =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    pointers = 0;
    bytes = 0;
    retransmits = 0;
    corrupt_frames = 0;
    sent_per_round = Intvec.create ();
    pointers_per_round = Intvec.create ();
    bytes_per_round = Intvec.create ();
  }

let begin_round t =
  Intvec.push t.sent_per_round 0;
  Intvec.push t.pointers_per_round 0;
  Intvec.push t.bytes_per_round 0

let bump vec delta =
  let i = Intvec.length vec - 1 in
  Intvec.set vec i (Intvec.get vec i + delta)

let record_send t ~pointers ~bytes =
  t.sent <- t.sent + 1;
  t.pointers <- t.pointers + pointers;
  t.bytes <- t.bytes + bytes;
  bump t.sent_per_round 1;
  bump t.pointers_per_round pointers;
  bump t.bytes_per_round bytes

let record_delivery t = t.delivered <- t.delivered + 1
let record_drop t = t.dropped <- t.dropped + 1
let record_retransmit t = t.retransmits <- t.retransmits + 1
let record_corrupt_frame t = t.corrupt_frames <- t.corrupt_frames + 1

let absorb t ?(retransmits = 0) ?(corrupt_frames = 0) ~sent ~delivered ~dropped ~pointers ~bytes
    () =
  if
    sent < 0 || delivered < 0 || dropped < 0 || pointers < 0 || bytes < 0 || retransmits < 0
    || corrupt_frames < 0
  then invalid_arg "Metrics.absorb: negative totals";
  t.sent <- t.sent + sent;
  t.delivered <- t.delivered + delivered;
  t.dropped <- t.dropped + dropped;
  t.pointers <- t.pointers + pointers;
  t.bytes <- t.bytes + bytes;
  t.retransmits <- t.retransmits + retransmits;
  t.corrupt_frames <- t.corrupt_frames + corrupt_frames

let rounds t = Intvec.length t.sent_per_round
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let pointers_sent t = t.pointers
let bytes_sent t = t.bytes
let retransmits t = t.retransmits
let corrupt_frames t = t.corrupt_frames

let sent_series t = Intvec.to_array t.sent_per_round
let pointer_series t = Intvec.to_array t.pointers_per_round
let byte_series t = Intvec.to_array t.bytes_per_round

let max_messages_in_round t = Intvec.fold max 0 t.sent_per_round

let pp ppf t =
  Format.fprintf ppf "rounds=%d msgs=%d (delivered=%d dropped=%d) pointers=%d bytes=%d"
    (rounds t) t.sent t.delivered t.dropped t.pointers t.bytes

let to_csv_rows t =
  List.init (rounds t) (fun i ->
      [
        string_of_int (i + 1);
        string_of_int (Intvec.get t.sent_per_round i);
        string_of_int (Intvec.get t.pointers_per_round i);
        string_of_int (Intvec.get t.bytes_per_round i);
      ])
