(* Grow-only struct-of-arrays message buffer. The engine reuses one
   instance across every round of a run: [clear] just resets the length,
   so the steady state pushes into already-allocated arrays and the send
   phase allocates nothing.

   The message array is seeded lazily from the first pushed message —
   ['msg] has no fabricable dummy value — and deliberately keeps stale
   message references after [clear] until they are overwritten by later
   pushes. The retention is bounded by the high-water mark of a single
   round and the payloads are small shared values, so scrubbing would
   cost more than it saves. *)

type 'msg t = {
  mutable srcs : int array;
  mutable dsts : int array;
  mutable msgs : 'msg array;
  mutable len : int;
}

let create () = { srcs = [||]; dsts = [||]; msgs = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0
let capacity t = Array.length t.srcs

let grow t msg =
  let cap = Array.length t.srcs in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let srcs = Array.make cap' 0 in
  let dsts = Array.make cap' 0 in
  let msgs = Array.make cap' msg in
  Array.blit t.srcs 0 srcs 0 t.len;
  Array.blit t.dsts 0 dsts 0 t.len;
  Array.blit t.msgs 0 msgs 0 t.len;
  t.srcs <- srcs;
  t.dsts <- dsts;
  t.msgs <- msgs

let push t ~src ~dst msg =
  if t.len = Array.length t.srcs then grow t msg;
  t.srcs.(t.len) <- src;
  t.dsts.(t.len) <- dst;
  t.msgs.(t.len) <- msg;
  t.len <- t.len + 1

let iter t f =
  for i = 0 to t.len - 1 do
    f t.srcs.(i) t.dsts.(i) t.msgs.(i)
  done
