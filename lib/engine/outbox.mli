(** Grow-only struct-of-arrays message buffer.

    One instance is reused across every round of a simulation run:
    {!clear} resets the length without releasing storage, so steady-state
    rounds push into already-allocated arrays and the engine's send phase
    allocates nothing. Iteration order is push order — the engine's
    delivery phase depends on it.

    After {!clear}, message references pushed in earlier rounds are
    retained until overwritten by later pushes (the element type has no
    dummy value to scrub with). The retention is bounded by the buffer's
    high-water mark. *)

type 'msg t

val create : unit -> 'msg t
val length : 'msg t -> int
val is_empty : 'msg t -> bool

val clear : 'msg t -> unit
(** Reset to empty, keeping the allocated storage. *)

val capacity : 'msg t -> int
(** Current allocated slots — grows monotonically, for tests asserting
    reuse. *)

val push : 'msg t -> src:int -> dst:int -> 'msg -> unit

val iter : 'msg t -> (int -> int -> 'msg -> unit) -> unit
(** [iter t f] calls [f src dst msg] for each buffered message, in push
    order. The buffer must not be modified during iteration. *)
