module Imap = Map.Make (Int)

type link = {
  loss : float;
  delay : int;
  dup : float;
  reorder : float;
  corrupt : float;
  cap : int;
}

let default_link = { loss = 0.0; delay = 0; dup = 0.0; reorder = 0.0; corrupt = 0.0; cap = 0 }

type partition = { groups : int list list; start : int; heal : int }

type wan = { regions : int list list; cross : link }

type t = {
  base : link;
  overrides : ((int * int) * link) list;
  wan : wan option;
  partitions : partition list;
  crashes : int Imap.t;
  restarts : int Imap.t;
  joins : int Imap.t;
  leaves : int Imap.t;
  fabrications : int list Imap.t;
  audit : bool;
}

let none =
  {
    base = default_link;
    overrides = [];
    wan = None;
    partitions = [];
    crashes = Imap.empty;
    restarts = Imap.empty;
    joins = Imap.empty;
    leaves = Imap.empty;
    fabrications = Imap.empty;
    audit = false;
  }

let check_p name p =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Fault.%s: probability out of range" name)

(* --- base link faults ------------------------------------------------ *)

let drop_probability t = t.base.loss

let with_loss t ~p =
  check_p "with_loss" p;
  { t with base = { t.base with loss = p } }

let with_delay t ~ticks =
  if ticks < 0 then invalid_arg "Fault.with_delay: negative delay";
  { t with base = { t.base with delay = ticks } }

let with_dup t ~p =
  check_p "with_dup" p;
  { t with base = { t.base with dup = p } }

let with_reorder t ~p =
  check_p "with_reorder" p;
  { t with base = { t.base with reorder = p } }

let with_corrupt t ~p =
  check_p "with_corrupt" p;
  { t with base = { t.base with corrupt = p } }

let with_cap t ~limit =
  if limit < 0 then invalid_arg "Fault.with_cap: negative cap";
  { t with base = { t.base with cap = limit } }

(* --- per-link overrides ---------------------------------------------- *)

let check_link lk =
  check_p "with_link" lk.loss;
  check_p "with_link" lk.dup;
  check_p "with_link" lk.reorder;
  check_p "with_link" lk.corrupt;
  if lk.delay < 0 then invalid_arg "Fault.with_link: negative delay";
  if lk.cap < 0 then invalid_arg "Fault.with_link: negative cap"

let equal_link a b =
  a.loss = b.loss && a.delay = b.delay && a.dup = b.dup && a.reorder = b.reorder
  && a.corrupt = b.corrupt && a.cap = b.cap

let with_link t ~src ~dst lk =
  if src < 0 || dst < 0 then invalid_arg "Fault.with_link: negative node";
  check_link lk;
  let rest = List.filter (fun (k, _) -> k <> (src, dst)) t.overrides in
  (* an all-default override is a reset: drop the entry entirely *)
  if equal_link lk default_link then { t with overrides = rest }
  else { t with overrides = ((src, dst), lk) :: rest }

(* --- WAN profiles ----------------------------------------------------- *)

let region_of w v =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem v g then i else go (i + 1) rest
  in
  go 0 w.regions

let with_wan t ~regions ~cross =
  if regions = [] || List.exists (fun g -> g = []) regions then
    invalid_arg "Fault.with_wan: empty region";
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun v ->
         if v < 0 then invalid_arg "Fault.with_wan: negative node";
         if Hashtbl.mem seen v then invalid_arg "Fault.with_wan: node in two regions";
         Hashtbl.add seen v ()))
    regions;
  check_link cross;
  if equal_link cross default_link then invalid_arg "Fault.with_wan: cross profile has no faults";
  { t with wan = Some { regions; cross } }

let wan t = t.wan

let link_between t ~src ~dst =
  match List.assoc_opt (src, dst) t.overrides with
  | Some lk -> lk
  | None -> (
      match t.wan with
      | Some w when region_of w src <> region_of w dst -> w.cross
      | _ -> t.base)

let loss_between t ~src ~dst = (link_between t ~src ~dst).loss
let overrides t = List.sort compare t.overrides

let has_link_faults t =
  (not (equal_link t.base default_link)) || t.overrides <> [] || t.wan <> None

let fold_links t f acc =
  let acc = f acc t.base in
  let acc = List.fold_left (fun acc (_, lk) -> f acc lk) acc t.overrides in
  match t.wan with None -> acc | Some w -> f acc w.cross

let has_delays t = fold_links t (fun acc lk -> acc || lk.delay > 0) false
let has_caps t = fold_links t (fun acc lk -> acc || lk.cap > 0) false

(* --- partitions ------------------------------------------------------ *)

let with_partition t ~groups ~start ~heal =
  if start < 1 then invalid_arg "Fault.with_partition: rounds are 1-based";
  if heal <= start then invalid_arg "Fault.with_partition: heal must follow start";
  if groups = [] || List.exists (fun g -> g = []) groups then
    invalid_arg "Fault.with_partition: empty group";
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun v ->
         if v < 0 then invalid_arg "Fault.with_partition: negative node";
         if Hashtbl.mem seen v then invalid_arg "Fault.with_partition: node in two groups";
         Hashtbl.add seen v ()))
    groups;
  { t with partitions = t.partitions @ [ { groups; start; heal } ] }

let partitions t = t.partitions

let group_of p v =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem v g then i else go (i + 1) rest
  in
  go 0 p.groups

let cut t ~src ~dst ~time =
  t.partitions <> []
  && List.exists
       (fun p ->
         float_of_int p.start <= time
         && time < float_of_int p.heal
         && group_of p src <> group_of p dst)
       t.partitions

(* --- crash / restart / join schedules -------------------------------- *)

let with_crash t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_crash: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_crash: negative node";
  (match Imap.find_opt node t.restarts with
  | Some rr when rr <= round -> invalid_arg "Fault.with_crash: scheduled restart precedes crash"
  | _ -> ());
  if Imap.mem node t.leaves then
    invalid_arg "Fault.with_crash: node is scheduled to leave gracefully";
  { t with crashes = Imap.add node round t.crashes }

let with_crashes t pairs =
  List.fold_left (fun t (node, round) -> with_crash t ~node ~round) t pairs

let crash_round t ~node = Imap.find_opt node t.crashes
let crashed_nodes t = Imap.bindings t.crashes

let with_restart t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_restart: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_restart: negative node";
  (match Imap.find_opt node t.crashes with
  | None -> invalid_arg "Fault.with_restart: no crash scheduled for node"
  | Some cr when round <= cr -> invalid_arg "Fault.with_restart: restart must follow the crash"
  | Some _ -> ());
  { t with restarts = Imap.add node round t.restarts }

let restart_round t ~node = Imap.find_opt node t.restarts
let restarting_nodes t = Imap.bindings t.restarts
let has_restarts t = not (Imap.is_empty t.restarts)

let with_join t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_join: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_join: negative node";
  { t with joins = Imap.add node round t.joins }

let with_joins t pairs =
  List.fold_left (fun t (node, round) -> with_join t ~node ~round) t pairs

let join_round t ~node = Option.value ~default:1 (Imap.find_opt node t.joins)
let joining_nodes t = Imap.bindings t.joins

let with_leave t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_leave: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_leave: negative node";
  if Imap.mem node t.crashes then
    invalid_arg "Fault.with_leave: node is scheduled to crash";
  { t with leaves = Imap.add node round t.leaves }

let with_leaves t pairs =
  List.fold_left (fun t (node, round) -> with_leave t ~node ~round) t pairs

let leave_round t ~node = Imap.find_opt node t.leaves
let leaving_nodes t = Imap.bindings t.leaves

(* --- content adversaries --------------------------------------------- *)

let with_fabrication t ~node ~id =
  if node < 0 then invalid_arg "Fault.with_fabrication: negative node";
  if id < 0 then invalid_arg "Fault.with_fabrication: negative id";
  let ids = Option.value ~default:[] (Imap.find_opt node t.fabrications) in
  let ids = if List.mem id ids then ids else List.sort compare (id :: ids) in
  { t with fabrications = Imap.add node ids t.fabrications }

let fabrications t = Imap.bindings t.fabrications
let fabricated_ids t ~node = Option.value ~default:[] (Imap.find_opt node t.fabrications)
let has_fabrications t = not (Imap.is_empty t.fabrications)
let with_audit t on = { t with audit = on }
let audit t = t.audit

let equal a b =
  equal_link a.base b.base
  && List.length a.overrides = List.length b.overrides
  && List.for_all
       (fun (k, lk) ->
         match List.assoc_opt k b.overrides with
         | Some lk' -> equal_link lk lk'
         | None -> false)
       a.overrides
  && (match (a.wan, b.wan) with
     | None, None -> true
     | Some wa, Some wb -> wa.regions = wb.regions && equal_link wa.cross wb.cross
     | _ -> false)
  && a.partitions = b.partitions
  && Imap.equal Int.equal a.crashes b.crashes
  && Imap.equal Int.equal a.restarts b.restarts
  && Imap.equal Int.equal a.joins b.joins
  && Imap.equal Int.equal a.leaves b.leaves
  && Imap.equal (fun x y -> x = y) a.fabrications b.fabrications
  && a.audit = b.audit

let is_none t = equal t none

let last_scheduled_round t =
  let mx m acc = Imap.fold (fun _ r acc -> max r acc) m acc in
  let acc = mx t.crashes (mx t.restarts (mx t.joins (mx t.leaves 0))) in
  List.fold_left (fun acc p -> max acc p.heal) acc t.partitions

(* --- printer --------------------------------------------------------- *)

let link_items lk =
  List.filter_map Fun.id
    [
      (if lk.loss <> 0.0 then Some (Printf.sprintf "loss=%g" lk.loss) else None);
      (if lk.delay <> 0 then Some (Printf.sprintf "delay=%d" lk.delay) else None);
      (if lk.dup <> 0.0 then Some (Printf.sprintf "dup=%g" lk.dup) else None);
      (if lk.reorder <> 0.0 then Some (Printf.sprintf "reorder=%g" lk.reorder) else None);
      (if lk.corrupt <> 0.0 then Some (Printf.sprintf "corrupt=%g" lk.corrupt) else None);
      (if lk.cap <> 0 then Some (Printf.sprintf "cap=%d" lk.cap) else None);
    ]

(* Compress a sorted group into "+"-joined "a-b" ranges. *)
let group_to_string g =
  let g = List.sort_uniq compare g in
  let rec ranges acc cur = function
    | [] -> List.rev (cur :: acc)
    | v :: rest ->
        let lo, hi = cur in
        if v = hi + 1 then ranges acc (lo, v) rest else ranges (cur :: acc) (v, v) rest
  in
  match g with
  | [] -> ""
  | v :: rest ->
      ranges [] (v, v) rest
      |> List.map (fun (lo, hi) ->
             if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi)
      |> String.concat "+"

let partition_to_string p =
  Printf.sprintf "part=%s@%d..%d"
    (String.concat "|" (List.map group_to_string p.groups))
    p.start p.heal

let wan_to_string w =
  Printf.sprintf "wan=%s:%s"
    (String.concat "|" (List.map group_to_string w.regions))
    (String.concat ":" (link_items w.cross))

let to_string t =
  let sched key m =
    Imap.bindings m |> List.map (fun (n, r) -> Printf.sprintf "%s=%d@%d" key n r)
  in
  let items =
    link_items t.base
    @ (overrides t
      |> List.map (fun ((s, d), lk) ->
             Printf.sprintf "link=%d>%d:%s" s d (String.concat ":" (link_items lk))))
    @ (match t.wan with None -> [] | Some w -> [ wan_to_string w ])
    @ List.map partition_to_string t.partitions
    @ sched "crash" t.crashes @ sched "restart" t.restarts @ sched "join" t.joins
    @ sched "leave" t.leaves
    @ (Imap.bindings t.fabrications
      |> List.concat_map (fun (n, ids) ->
             List.map (fun id -> Printf.sprintf "fabricate=%d@%d" n id) ids))
    @ (if t.audit then [ "audit=1" ] else [])
  in
  String.concat "," items

(* --- parser ---------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_float what s =
  match float_of_string_opt s with Some f -> f | None -> bad "%s: not a number %S" what s

let parse_int what s =
  match int_of_string_opt s with Some i -> i | None -> bad "%s: not an integer %S" what s

let split_once c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let apply_link_key lk key v =
  match key with
  | "loss" -> { lk with loss = parse_float "loss" v }
  | "delay" -> { lk with delay = parse_int "delay" v }
  | "dup" -> { lk with dup = parse_float "dup" v }
  | "reorder" -> { lk with reorder = parse_float "reorder" v }
  | "corrupt" -> { lk with corrupt = parse_float "corrupt" v }
  | "cap" -> { lk with cap = parse_int "cap" v }
  | _ -> bad "unknown link fault %S" key

let parse_group s =
  (* "0-3+8" -> [0;1;2;3;8] *)
  String.split_on_char '+' s
  |> List.concat_map (fun piece ->
         match split_once '-' piece with
         | None -> [ parse_int "node" piece ]
         | Some (a, b) ->
             let a = parse_int "node" a and b = parse_int "node" b in
             if b < a then bad "empty range %S" piece;
             List.init (b - a + 1) (fun i -> a + i))

let split_window w =
  (* "5..20" -> Some ("5", "20") *)
  let len = String.length w in
  let rec find i =
    if i + 1 >= len then None
    else if w.[i] = '.' && w.[i + 1] = '.' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub w 0 i, String.sub w (i + 2) (len - i - 2))

let parse_partition v =
  match split_once '@' v with
  | None -> bad "partition needs a @START..HEAL window"
  | Some (groups_s, window) -> (
      let groups = String.split_on_char '|' groups_s |> List.map parse_group in
      match split_window window with
      | Some (s, h) -> (groups, parse_int "partition start" s, parse_int "partition heal" h)
      | None -> bad "partition window %S: expected START..HEAL" window)

let parse_at what v =
  match split_once '@' v with
  | Some (n, r) -> (parse_int what n, parse_int (what ^ " round") r)
  | None -> bad "%s: expected NODE@ROUND" what

type item =
  | Base of (link -> link)
  | Link of int * int * link
  | Wan of int list list * link
  | Part of int list list * int * int
  | Crash of int * int
  | Restart of int * int
  | Join of int * int
  | Leave of int * int
  | Fabricate of int * int
  | Audit of bool

let parse_link_kvs kvs =
  String.split_on_char ':' kvs
  |> List.fold_left
       (fun lk kv ->
         match split_once '=' kv with
         | Some (k, v) -> apply_link_key lk k v
         | None -> bad "expected key=value in %S" kv)
       default_link

let parse_item s =
  match split_once '=' s with
  | None -> bad "expected key=value in %S" s
  | Some (key, v) -> (
      match key with
      | "loss" | "delay" | "dup" | "reorder" | "corrupt" | "cap" ->
          Base (fun lk -> apply_link_key lk key v)
      | "wan" -> (
          match split_once ':' v with
          | None -> bad "wan profile needs REGION|REGION:key=value"
          | Some (regions_s, kvs) ->
              let regions = String.split_on_char '|' regions_s |> List.map parse_group in
              Wan (regions, parse_link_kvs kvs))
      | "audit" -> (
          match v with
          | "1" -> Audit true
          | "0" -> Audit false
          | _ -> bad "audit: expected 0 or 1, got %S" v)
      | "fabricate" -> (
          match split_once '@' v with
          | Some (n, i) -> Fabricate (parse_int "fabricate node" n, parse_int "fabricated id" i)
          | None -> bad "fabricate: expected NODE@ID")
      | "link" -> (
          match split_once ':' v with
          | None -> bad "link fault needs SRC>DST:key=value"
          | Some (ends, kvs) -> (
              match split_once '>' ends with
              | None -> bad "link endpoints %S: expected SRC>DST" ends
              | Some (s, d) ->
                  Link (parse_int "src" s, parse_int "dst" d, parse_link_kvs kvs)))
      | "part" ->
          let groups, start, heal = parse_partition v in
          Part (groups, start, heal)
      | "crash" ->
          let n, r = parse_at "crash" v in
          Crash (n, r)
      | "restart" ->
          let n, r = parse_at "restart" v in
          Restart (n, r)
      | "join" ->
          let n, r = parse_at "join" v in
          Join (n, r)
      | "leave" ->
          let n, r = parse_at "leave" v in
          Leave (n, r)
      | _ -> bad "unknown fault %S" key)

let of_string s =
  let s = String.trim s in
  if s = "" then Ok none
  else
    try
      let items = String.split_on_char ',' s |> List.map parse_item in
      (* Restarts are validated against crashes, so apply them last:
         "restart=5@14,crash=5@8" is as valid as the reverse order. *)
      let order = function Restart _ -> 1 | _ -> 0 in
      let items = List.stable_sort (fun a b -> compare (order a) (order b)) items in
      (* A plan string naming the same link twice is almost always a typo:
         reject it instead of silently keeping the last override. *)
      let seen_links = Hashtbl.create 8 in
      List.iter
        (function
          | Link (src, dst, _) ->
              if Hashtbl.mem seen_links (src, dst) then
                bad "duplicate link override for %d>%d" src dst;
              Hashtbl.add seen_links (src, dst) ()
          | _ -> ())
        items;
      if List.length (List.filter (function Wan _ -> true | _ -> false) items) > 1 then
        bad "duplicate wan profile (at most one wan= item per plan)";
      let t =
        List.fold_left
          (fun t -> function
            | Base f ->
                let lk = f t.base in
                check_link lk;
                { t with base = lk }
            | Link (src, dst, lk) -> with_link t ~src ~dst lk
            | Wan (regions, cross) -> with_wan t ~regions ~cross
            | Part (groups, start, heal) -> with_partition t ~groups ~start ~heal
            | Crash (node, round) -> with_crash t ~node ~round
            | Restart (node, round) -> with_restart t ~node ~round
            | Join (node, round) -> with_join t ~node ~round
            | Leave (node, round) -> with_leave t ~node ~round
            | Fabricate (node, id) -> with_fabrication t ~node ~id
            | Audit on -> with_audit t on)
          none items
      in
      Ok t
    with
    | Bad m -> Error m
    | Invalid_argument m -> Error m

let pp ppf t =
  if is_none t then Format.fprintf ppf "fault(none)"
  else Format.fprintf ppf "fault(%s)" (to_string t)
