open Repro_util
open Repro_engine
open Repro_discovery

type churn = { rate : float; min_live : int; until : int }

type config = {
  n : int;
  cap : int;
  seed : int;
  ticks : int;
  churn : churn option;
  fault : Fault.t;
  lag_bound : float option;
  full_sync : bool option;
  trace : Trace.sink;
}

type stats = {
  ticks_run : int;
  cap : int;
  founders : int;
  final_live : int;
  joins : int;
  leaves : int;
  crashes : int;
  suspicions : int;
  retirements : int;
  epochs : int;
  epochs_closed : int;
  max_lag : float;
  msgs : int;
  bytes : int;
  probes : int;
  acks : int;
  gossip : int;
  update_entries : int;
  full_syncs : int;
  bootstraps : int;
  dropped_loss : int;
  dropped_dead : int;
}

let default_lag_bound ~cap =
  let lg = log (float_of_int (max 2 cap)) /. log 2.0 in
  Float.max 64.0 (4.0 *. lg *. lg)

(* --- a set of ids with O(1) add/remove/uniform-draw ------------------ *)

module Pool = struct
  type t = { ids : Intvec.t; pos : int array }

  let create ~cap = { ids = Intvec.create (); pos = Array.make cap (-1) }
  let mem t id = t.pos.(id) >= 0
  let size t = Intvec.length t.ids

  let add t id =
    if not (mem t id) then begin
      t.pos.(id) <- Intvec.length t.ids;
      Intvec.push t.ids id
    end

  let remove t id =
    if mem t id then begin
      let last = Intvec.length t.ids - 1 in
      let moved = Intvec.get t.ids last in
      let hole = t.pos.(id) in
      Intvec.set t.ids hole moved;
      t.pos.(moved) <- hole;
      ignore (Intvec.pop t.ids);
      t.pos.(id) <- -1
    end

  let draw t rng =
    if size t = 0 then None else Some (Intvec.get t.ids (Rng.int rng (size t)))
end

(* --- (time, seq)-ordered message heap -------------------------------- *)

module Heap = struct
  type entry = { time : float; seq : int; src : int; dst : int; frame : bytes }

  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; src = 0; dst = 0; frame = Bytes.empty }
  let create () = { a = Array.make 256 dummy; len = 0 }
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)
  let is_empty t = t.len = 0
  let peek t = t.a.(0)

  let push t e =
    if t.len = Array.length t.a then begin
      let a = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    while !i > 0 && lt t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let pop t =
    let top = t.a.(0) in
    t.len <- t.len - 1;
    t.a.(0) <- t.a.(t.len);
    t.a.(t.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.len && lt t.a.(l) t.a.(!s) then s := l;
      if r < t.len && lt t.a.(r) t.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = t.a.(!s) in
        t.a.(!s) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !s
      end
    done;
    top
end

(* --------------------------------------------------------------------- *)

let validate cfg =
  if cfg.n < 2 then invalid_arg "Service.run: need at least two founders";
  if cfg.cap < cfg.n then invalid_arg "Service.run: cap must be >= n";
  if cfg.ticks < 1 then invalid_arg "Service.run: ticks must be positive";
  match cfg.churn with
  | Some c ->
    if c.rate < 0.0 || c.rate > 1.0 then invalid_arg "Service.run: churn rate must be in [0,1]";
    if c.min_live < 2 then invalid_arg "Service.run: min_live must be >= 2"
  | None -> ()

let run cfg =
  validate cfg;
  let cap = cfg.cap in
  let fault = cfg.fault in
  let lossy = Fault.has_link_faults fault || Fault.partitions fault <> [] in
  (* The periodic full sync is the backstop for every way an update can
     die before reaching the whole fleet: a lossy link eats it, or a
     joiner bootstraps from a snapshot racing its dissemination and the
     piggyback budgets expire before anyone re-sends it. So it is on by
     default whenever either hazard exists — lossy links, or any
     membership change at all (churn or a scheduled join/leave/crash). *)
  let churny =
    cfg.churn <> None
    || Fault.joining_nodes fault <> []
    || Fault.leaving_nodes fault <> []
    || Fault.crashed_nodes fault <> []
  in
  let full_sync = Option.value cfg.full_sync ~default:(lossy || churny) in
  let bound = Option.value cfg.lag_bound ~default:(default_lag_bound ~cap) in
  let lag = Trace.Lag.create ~bound () in
  let trace = Trace.tee (Trace.Lag.sink lag) cfg.trace in
  let labels = Array.init cap Fun.id in
  let net_rng = Rng.substream ~seed:cfg.seed ~index:0x11e7 in
  let churn_rng = Rng.substream ~seed:cfg.seed ~index:0xc511 in
  let members = Array.make cap None in
  let counts = Array.make cap 0 in
  let live = Pool.create ~cap in
  let retired = Pool.create ~cap in
  let fresh = Pool.create ~cap in
  let truth = Array.make cap false in
  (* The omniscient observer matches views against consistent cuts, not
     just the instantaneous truth: under sustained churn there is almost
     always one change still in flight (crash detection alone takes ~13
     ticks), so "view = truth right now" instants can elude an unlucky
     node for longer than the lag bound even while it tracks perfectly.
     A node converges to epoch [e] by matching the membership as of ANY
     epoch >= e — exactly the checker's documented contract. Set
     equality is tested with Zobrist hashes: each id gets a random
     62-bit key, the truth hash and each member's view hash fold in a
     key per live id, and a view matches epoch [e]'s membership iff the
     hashes collide (the 2^-62 false-match rate is far below any churn
     rate worth measuring; keys are drawn from a seed substream, so runs
     stay byte-reproducible). *)
  let zob =
    let zrng = Rng.substream ~seed:cfg.seed ~index:0x20b1 in
    Array.init cap (fun _ -> Int64.to_int (Rng.bits64 zrng) land max_int)
  in
  let htruth = ref 0 in
  let vhash = Array.make cap 0 in
  let conv_emitted = Array.make cap 0 in
  let snapshots = Hashtbl.create 256 in
  let heap = Heap.create () in
  let seq = ref 0 in
  let spawns = ref 0 in
  let epoch = ref 0 in
  (* counters *)
  let joins = ref 0 and leaves = ref 0 and crashes = ref 0 in
  let suspicions = ref 0 and retirements = ref 0 in
  let msgs = ref 0 and bytes = ref 0 in
  let probes = ref 0 and acks = ref 0 and gossip = ref 0 and update_entries = ref 0 in
  let full_syncs = ref 0 and bootstraps = ref 0 in
  let dropped_loss = ref 0 and dropped_dead = ref 0 in
  let now = ref 0.0 in

  let classify payload =
    match (payload : Payload.t) with
    | Probe -> incr probes
    | Exchange (Payload.Updates u) ->
      (* push-pull exchanges: a periodic full sync carries full state, a
         bootstrap request carries only the joiner's self-announcement *)
      if u.full then incr full_syncs else incr bootstraps
    | Reply (Payload.Updates u) ->
      if u.full then incr bootstraps
      else begin
        incr acks;
        update_entries := !update_entries + Array.length u.entries
      end
    | Share (Payload.Updates u) ->
      if u.full then incr full_syncs
      else begin
        incr gossip;
        update_entries := !update_entries + Array.length u.entries
      end
    | Share _ | Exchange _ | Reply _ | Halt -> ()
  in
  let send ~src ~dst payload =
    incr msgs;
    classify payload;
    let frame = Wire.encode Wire.Adaptive ~universe:cap payload in
    bytes := !bytes + Bytes.length frame;
    let link = Fault.link_between fault ~src ~dst in
    let lost =
      (link.Fault.loss > 0.0 && Rng.bernoulli net_rng ~p:link.Fault.loss)
      || Fault.cut fault ~src ~dst ~time:!now
    in
    if lost then incr dropped_loss
    else begin
      let latency = 0.35 +. Rng.float net_rng 0.3 +. float_of_int link.Fault.delay in
      incr seq;
      Heap.push heap { Heap.time = !now +. latency; seq = !seq; src; dst; frame }
    end
  in
  (* emit the best epoch whose membership this member's view matches *)
  let try_converge id =
    match Hashtbl.find_opt snapshots vhash.(id) with
    | Some e when e > conv_emitted.(id) ->
      conv_emitted.(id) <- e;
      Trace.emit trace (Trace.Converge { node = id; epoch = e })
    | Some _ | None -> ()
  in
  let emit_converged_sweep () =
    for id = 0 to cap - 1 do
      if members.(id) <> None then try_converge id
    done
  in
  let on_view_change ~self ~target ~alive =
    ignore alive;
    if members.(self) <> None then begin
      vhash.(self) <- vhash.(self) lxor zob.(target);
      try_converge self
    end
  in
  let actions_for self =
    {
      Member.send = (fun ~dst payload -> send ~src:self ~dst payload);
      on_suspect =
        (fun ~target ->
          incr suspicions;
          Trace.emit trace (Trace.Suspect { node = self; target }));
      on_retire =
        (fun ~target ->
          incr retirements;
          Trace.emit trace (Trace.Retire { node = self; target }));
      on_view_change = (fun ~target ~alive -> on_view_change ~self ~target ~alive);
    }
  in
  let member_rng () =
    incr spawns;
    Rng.substream ~seed:cfg.seed ~index:(0x3e0 + !spawns)
  in
  (* a (re)spawned member's view hash, from scratch; its convergence
     level starts over — earlier verdicts were the previous incarnation's *)
  let init_view_hash id =
    match members.(id) with
    | None -> ()
    | Some m ->
      let view = Member.view m in
      let h = ref 0 in
      View.iter_known view (fun j -> if View.is_live view j then h := !h lxor zob.(j));
      vhash.(id) <- !h;
      conv_emitted.(id) <- 0
  in
  (* flip the truth for [id] and record the new membership's hash as the
     current epoch's snapshot — O(1), no per-member patching *)
  let flip_truth id =
    truth.(id) <- not truth.(id);
    htruth := !htruth lxor zob.(id);
    Hashtbl.replace snapshots !htruth !epoch
  in

  (* --- membership changes --------------------------------------------- *)
  (* a churn join (genesis members are built inline below): the epoch
     counter mirrors the lag checker's, which starts bumping once the
     first tick has been emitted — always true here *)
  let join ~id ~contacts =
    Trace.emit trace (Trace.Join { node = id });
    incr epoch;
    incr joins;
    flip_truth id;
    Pool.remove fresh id;
    Pool.remove retired id;
    Pool.add live id;
    let m =
      Member.create_joiner ~cap ~self:id ~labels ~contacts ~rng:(member_rng ()) ~full_sync
        (actions_for id)
    in
    members.(id) <- Some m;
    counts.(id) <- 0;
    init_view_hash id;
    emit_converged_sweep ()
  in
  let depart ~id ~graceful =
    match members.(id) with
    | None -> ()
    | Some m ->
      if graceful then begin
        Member.leave m;
        incr leaves;
        Trace.emit trace (Trace.Leave { node = id })
      end
      else begin
        incr crashes;
        Trace.emit trace (Trace.Crash { node = id })
      end;
      incr epoch;
      members.(id) <- None;
      Pool.remove live id;
      Pool.add retired id;
      flip_truth id;
      emit_converged_sweep ()
  in

  (* --- genesis --------------------------------------------------------- *)
  let scheduled_joins = Hashtbl.create 8 in
  List.iter
    (fun (node, round) ->
      if round > 1 && node < cap then Hashtbl.replace scheduled_joins node round)
    (Fault.joining_nodes fault);
  let founders = ref [] in
  for id = cfg.n - 1 downto 0 do
    if not (Hashtbl.mem scheduled_joins id) then founders := id :: !founders
  done;
  let founders = Array.of_list !founders in
  if Array.length founders < 2 then invalid_arg "Service.run: fewer than two founding members";
  for id = cfg.n to cap - 1 do
    if not (Hashtbl.mem scheduled_joins id) then Pool.add fresh id
  done;
  Array.iter
    (fun id ->
      Trace.emit trace (Trace.Join { node = id });
      truth.(id) <- true;
      htruth := !htruth lxor zob.(id);
      Pool.add live id;
      let m =
        Member.create_genesis ~cap ~self:id ~labels ~peers:founders ~rng:(member_rng ())
          ~full_sync (actions_for id)
      in
      members.(id) <- Some m)
    founders;
  (* epoch 0: the genesis membership *)
  Hashtbl.replace snapshots !htruth 0;
  Array.iter init_view_hash founders;

  (* per-round schedules from the fault plan *)
  let at tbl round id =
    let prev = Option.value (Hashtbl.find_opt tbl round) ~default:[] in
    Hashtbl.replace tbl round (id :: prev)
  in
  let joins_at = Hashtbl.create 8
  and leaves_at = Hashtbl.create 8
  and crashes_at = Hashtbl.create 8 in
  Hashtbl.iter (fun node round -> at joins_at round node) scheduled_joins;
  List.iter (fun (node, round) -> if node < cap then at leaves_at round node) (Fault.leaving_nodes fault);
  List.iter (fun (node, round) -> if node < cap then at crashes_at round node) (Fault.crashed_nodes fault);
  List.iter (fun (node, round) -> if node < cap then at joins_at round node) (Fault.restarting_nodes fault);

  (* up to three distinct live contacts for a joiner: a single contact
     can churn out mid-bootstrap, stranding the joiner on a dead address
     with no live peer in its view to re-aim at *)
  let random_contacts ~avoid =
    let want = 3 in
    let picked = ref [] and n_picked = ref 0 and attempts = ref (8 * want) in
    while !n_picked < want && !attempts > 0 do
      decr attempts;
      match Pool.draw live churn_rng with
      | Some c when c <> avoid && not (List.mem c !picked) ->
        picked := c :: !picked;
        incr n_picked
      | Some _ | None -> ()
    done;
    if !picked = [] then None else Some (Array.of_list (List.rev !picked))
  in
  let apply_scheduled tick =
    let sorted tbl = List.sort compare (Option.value (Hashtbl.find_opt tbl tick) ~default:[]) in
    List.iter
      (fun id ->
        if members.(id) = None then
          match random_contacts ~avoid:id with
          | Some contacts -> join ~id ~contacts
          | None -> ())
      (sorted joins_at);
    List.iter (fun id -> depart ~id ~graceful:true) (sorted leaves_at);
    List.iter (fun id -> depart ~id ~graceful:false) (sorted crashes_at)
  in
  let apply_churn tick =
    match cfg.churn with
    | Some c when tick <= c.until ->
      if Rng.bernoulli churn_rng ~p:(c.rate /. 2.0) then begin
        (* fresh ids first, then the retired pool (restarts) *)
        let id =
          match Pool.draw fresh churn_rng with
          | Some id -> Some id
          | None -> Pool.draw retired churn_rng
        in
        match id with
        | Some id when members.(id) = None -> (
          match random_contacts ~avoid:id with
          | Some contacts -> join ~id ~contacts
          | None -> ())
        | Some _ | None -> ()
      end;
      if Rng.bernoulli churn_rng ~p:(c.rate /. 4.0) && Pool.size live > c.min_live then
        (match Pool.draw live churn_rng with
        | Some id -> depart ~id ~graceful:true
        | None -> ());
      if Rng.bernoulli churn_rng ~p:(c.rate /. 4.0) && Pool.size live > c.min_live then
        (match Pool.draw live churn_rng with
        | Some id -> depart ~id ~graceful:false
        | None -> ())
    | Some _ | None -> ()
  in

  (* --- main loop ------------------------------------------------------- *)
  for tick = 1 to cfg.ticks do
    let tick_time = float_of_int tick in
    (* deliver everything due by this tick, in (time, seq) order *)
    while (not (Heap.is_empty heap)) && (Heap.peek heap).Heap.time <= tick_time do
      let e = Heap.pop heap in
      now := e.Heap.time;
      match members.(e.Heap.dst) with
      | None -> incr dropped_dead
      | Some m -> (
        match Wire.decode Wire.Adaptive ~universe:cap e.Heap.frame with
        | Ok payload -> Member.deliver m ~src:e.Heap.src ~now:e.Heap.time payload
        | Error msg -> failwith ("Service.run: wire decode failed: " ^ msg))
    done;
    now := tick_time;
    for id = 0 to cap - 1 do
      match members.(id) with
      | None -> ()
      | Some m ->
        counts.(id) <- counts.(id) + 1;
        Trace.emit trace (Trace.Tick { node = id; time = tick_time; count = counts.(id) });
        Member.step m ~now:tick_time
    done;
    apply_scheduled tick;
    apply_churn tick
  done;
  Trace.Lag.final_check lag;
  Trace.flush trace;
  {
    ticks_run = cfg.ticks;
    cap;
    founders = Array.length founders;
    final_live = Pool.size live;
    joins = !joins;
    leaves = !leaves;
    crashes = !crashes;
    suspicions = !suspicions;
    retirements = !retirements;
    epochs = Trace.Lag.epochs lag;
    epochs_closed = Trace.Lag.closed lag;
    max_lag = Trace.Lag.max_lag lag;
    msgs = !msgs;
    bytes = !bytes;
    probes = !probes;
    acks = !acks;
    gossip = !gossip;
    update_entries = !update_entries;
    full_syncs = !full_syncs;
    bootstraps = !bootstraps;
    dropped_loss = !dropped_loss;
    dropped_dead = !dropped_dead;
  }

let stats_to_json s =
  Printf.sprintf
    "{\"ticks\":%d,\"cap\":%d,\"founders\":%d,\"final_live\":%d,\"joins\":%d,\"leaves\":%d,\"crashes\":%d,\"suspicions\":%d,\"retirements\":%d,\"epochs\":%d,\"epochs_closed\":%d,\"max_lag\":%.12g,\"msgs\":%d,\"bytes\":%d,\"probes\":%d,\"acks\":%d,\"gossip\":%d,\"update_entries\":%d,\"full_syncs\":%d,\"bootstraps\":%d,\"dropped_loss\":%d,\"dropped_dead\":%d}"
    s.ticks_run s.cap s.founders s.final_live s.joins s.leaves s.crashes s.suspicions
    s.retirements s.epochs s.epochs_closed s.max_lag s.msgs s.bytes s.probes s.acks s.gossip
    s.update_entries s.full_syncs s.bootstraps s.dropped_loss s.dropped_dead
