open Repro_util
open Repro_engine
open Repro_discovery
module Backend = Repro_net.Backend
module Node_core = Repro_net.Node_core
module Envelope = Repro_net.Envelope
module Control = Repro_net.Control

type churn = { rate : float; min_live : int; until : int }

type config = {
  n : int;
  cap : int;
  seed : int;
  ticks : int;
  churn : churn option;
  fault : Fault.t;
  lag_bound : float option;
  full_sync : bool option;
  backend : Backend.t option;
  indirect_k : int;
  lifeguard : bool;
  trace : Trace.sink;
}

type stats = {
  ticks_run : int;
  cap : int;
  founders : int;
  final_live : int;
  joins : int;
  leaves : int;
  crashes : int;
  suspicions : int;
  retirements : int;
  epochs : int;
  epochs_closed : int;
  max_lag : float;
  msgs : int;
  bytes : int;
  probes : int;
  acks : int;
  gossip : int;
  update_entries : int;
  full_syncs : int;
  bootstraps : int;
  dropped_loss : int;
  dropped_dead : int;
  probe_reqs : int;
  probe_acks : int;
  suspicion_msgs : int;
  false_suspicions : int;
  false_retirements : int;
  retransmits : int;
  snapshots_peak : int;
  lag_table_peak : int;
}

let default_lag_bound ~cap =
  let lg = log (float_of_int (max 2 cap)) /. log 2.0 in
  Float.max 64.0 (4.0 *. lg *. lg)

(* --- a set of ids with O(1) add/remove/uniform-draw ------------------ *)

module Pool = struct
  type t = { ids : Intvec.t; pos : int array }

  let create ~cap = { ids = Intvec.create (); pos = Array.make cap (-1) }
  let mem t id = t.pos.(id) >= 0
  let size t = Intvec.length t.ids

  let add t id =
    if not (mem t id) then begin
      t.pos.(id) <- Intvec.length t.ids;
      Intvec.push t.ids id
    end

  let remove t id =
    if mem t id then begin
      let last = Intvec.length t.ids - 1 in
      let moved = Intvec.get t.ids last in
      let hole = t.pos.(id) in
      Intvec.set t.ids hole moved;
      t.pos.(moved) <- hole;
      ignore (Intvec.pop t.ids);
      t.pos.(id) <- -1
    end

  let draw t rng =
    if size t = 0 then None else Some (Intvec.get t.ids (Rng.int rng (size t)))
end

(* --- (time, seq)-ordered message heap -------------------------------- *)

module Heap = struct
  type entry = { time : float; seq : int; src : int; dst : int; frame : bytes }

  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; src = 0; dst = 0; frame = Bytes.empty }
  let create () = { a = Array.make 256 dummy; len = 0 }
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)
  let is_empty t = t.len = 0
  let peek t = t.a.(0)

  let push t e =
    if t.len = Array.length t.a then begin
      let a = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    while !i > 0 && lt t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let pop t =
    let top = t.a.(0) in
    t.len <- t.len - 1;
    t.a.(0) <- t.a.(t.len);
    t.a.(t.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.len && lt t.a.(l) t.a.(!s) then s := l;
      if r < t.len && lt t.a.(r) t.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = t.a.(!s) in
        t.a.(!s) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !s
      end
    done;
    top
end

(* --------------------------------------------------------------------- *)

let validate cfg =
  if cfg.n < 2 then invalid_arg "Service.run: need at least two founders";
  if cfg.cap < cfg.n then invalid_arg "Service.run: cap must be >= n";
  if cfg.ticks < 1 then invalid_arg "Service.run: ticks must be positive";
  if cfg.indirect_k < 0 then invalid_arg "Service.run: indirect_k must be >= 0";
  match cfg.churn with
  | Some c ->
    if c.rate < 0.0 || c.rate > 1.0 then invalid_arg "Service.run: churn rate must be in [0,1]";
    if c.min_live < 2 then invalid_arg "Service.run: min_live must be >= 2"
  | None -> ()

let run cfg =
  validate cfg;
  let hosted =
    match cfg.backend with
    | None | Some Backend.Loopback -> false
    | Some Backend.Mux -> true
    | Some (Backend.Process _) ->
      invalid_arg
        "Service.run: process backends fork one OS process per node; the multiplexed service \
         runs on loopback or mux"
  in
  let cap = cfg.cap in
  let fault = cfg.fault in
  let lossy = Fault.has_link_faults fault || Fault.partitions fault <> [] in
  (* The periodic full sync is the backstop for every way an update can
     die before reaching the whole fleet: a lossy link eats it, or a
     joiner bootstraps from a snapshot racing its dissemination and the
     piggyback budgets expire before anyone re-sends it. So it is on by
     default whenever either hazard exists — lossy links, or any
     membership change at all (churn or a scheduled join/leave/crash). *)
  let churny =
    cfg.churn <> None
    || Fault.joining_nodes fault <> []
    || Fault.leaving_nodes fault <> []
    || Fault.crashed_nodes fault <> []
  in
  let full_sync = Option.value cfg.full_sync ~default:(lossy || churny) in
  let bound = Option.value cfg.lag_bound ~default:(default_lag_bound ~cap) in
  let lag = Trace.Lag.create ~bound () in
  let trace = Trace.tee (Trace.Lag.sink lag) cfg.trace in
  let labels = Array.init cap Fun.id in
  let net_rng = Rng.substream ~seed:cfg.seed ~index:0x11e7 in
  let churn_rng = Rng.substream ~seed:cfg.seed ~index:0xc511 in
  let members = Array.make cap None in
  let cores : Node_core.t option array = Array.make cap None in
  let ever_lived = Array.make cap false in
  let healing = Array.make cap false in
  let counts = Array.make cap 0 in
  let live = Pool.create ~cap in
  let retired = Pool.create ~cap in
  let fresh = Pool.create ~cap in
  let truth = Array.make cap false in
  (* The omniscient observer matches views against consistent cuts, not
     just the instantaneous truth: under sustained churn there is almost
     always one change still in flight (crash detection alone takes ~13
     ticks), so "view = truth right now" instants can elude an unlucky
     node for longer than the lag bound even while it tracks perfectly.
     A node converges to epoch [e] by matching the membership as of ANY
     epoch >= e — exactly the checker's documented contract. Set
     equality is tested with Zobrist hashes: each id gets a random
     62-bit key, the truth hash and each member's view hash fold in a
     key per live id, and a view matches epoch [e]'s membership iff the
     hashes collide (the 2^-62 false-match rate is far below any churn
     rate worth measuring; keys are drawn from a seed substream, so runs
     stay byte-reproducible). *)
  let zob =
    let zrng = Rng.substream ~seed:cfg.seed ~index:0x20b1 in
    Array.init cap (fun _ -> Int64.to_int (Rng.bits64 zrng) land max_int)
  in
  let htruth = ref 0 in
  let vhash = Array.make cap 0 in
  let conv_emitted = Array.make cap 0 in
  let snapshots = Hashtbl.create 256 in
  let snapshots_peak = ref 0 in
  (* every snapshot insertion, oldest first, for expiry below *)
  let snapshot_ages : (int * int * float) Queue.t = Queue.create () in
  let heap = Heap.create () in
  let seq = ref 0 in
  let spawns = ref 0 in
  let epoch = ref 0 in
  (* counters *)
  let joins = ref 0 and leaves = ref 0 and crashes = ref 0 in
  let suspicions = ref 0 and retirements = ref 0 in
  let false_suspicions = ref 0 and false_retirements = ref 0 in
  let msgs = ref 0 and bytes = ref 0 in
  let probes = ref 0 and acks = ref 0 and gossip = ref 0 and update_entries = ref 0 in
  let probe_reqs = ref 0 and probe_acks = ref 0 and suspicion_msgs = ref 0 in
  let full_syncs = ref 0 and bootstraps = ref 0 in
  let dropped_loss = ref 0 and dropped_dead = ref 0 in
  let retransmits = ref 0 in
  let now = ref 0.0 in

  let classify payload =
    match (payload : Payload.t) with
    | Probe -> incr probes
    | Probe_req _ -> incr probe_reqs
    | Probe_ack _ -> incr probe_acks
    | Suspicion _ -> incr suspicion_msgs
    | Exchange (Payload.Updates u) ->
      (* push-pull exchanges: a periodic full sync carries full state, a
         bootstrap request carries only the joiner's self-announcement *)
      if u.full then incr full_syncs else incr bootstraps
    | Reply (Payload.Updates u) ->
      if u.full then incr bootstraps
      else begin
        incr acks;
        update_entries := !update_entries + Array.length u.entries
      end
    | Share (Payload.Updates u) ->
      if u.full then incr full_syncs
      else begin
        incr gossip;
        update_entries := !update_entries + Array.length u.entries
      end
    | Share _ | Exchange _ | Reply _ | Halt -> ()
  in
  let latency () = 0.35 +. Rng.float net_rng 0.3 in
  (* One member-level message. Virtual mode encodes, applies the fault
     plan's coin and pushes the frame itself; hosted mode hands the
     payload to the node core, whose wire stack (envelope framing,
     go-back-N, fault shim) owns loss and retransmission — so
     [dropped_loss] stays 0 there: the shim drops silently and the
     reliability layer re-sends. Both modes count the same member-level
     [msgs]/[bytes], so traffic stats are comparable across backends. *)
  let send ~src ~dst payload =
    incr msgs;
    classify payload;
    if hosted then begin
      bytes := !bytes + Wire.encoded_size Wire.Adaptive ~universe:cap payload;
      match cores.(src) with
      | Some core -> Node_core.send core ~now:!now ~dst payload
      | None -> ()
    end
    else begin
      let frame = Wire.encode Wire.Adaptive ~universe:cap payload in
      bytes := !bytes + Bytes.length frame;
      let link = Fault.link_between fault ~src ~dst in
      let lost =
        (link.Fault.loss > 0.0 && Rng.bernoulli net_rng ~p:link.Fault.loss)
        || Fault.cut fault ~src ~dst ~time:!now
      in
      if lost then incr dropped_loss
      else begin
        incr seq;
        Heap.push heap
          { Heap.time = !now +. latency () +. float_of_int link.Fault.delay; seq = !seq; src; dst; frame }
      end
    end
  in
  (* emit the best epoch whose membership this member's view matches *)
  let try_converge id =
    match Hashtbl.find_opt snapshots vhash.(id) with
    | Some e when e > conv_emitted.(id) ->
      conv_emitted.(id) <- e;
      Trace.emit trace (Trace.Converge { node = id; epoch = e })
    | Some _ | None -> ()
  in
  let emit_converged_sweep () =
    for id = 0 to cap - 1 do
      if members.(id) <> None then try_converge id
    done
  in
  let on_view_change ~self ~target ~alive =
    ignore alive;
    if members.(self) <> None then begin
      vhash.(self) <- vhash.(self) lxor zob.(target);
      try_converge self
    end
  in
  let actions_for self =
    {
      Member.send = (fun ~dst payload -> send ~src:self ~dst payload);
      on_suspect =
        (fun ~target ->
          incr suspicions;
          if truth.(target) then incr false_suspicions;
          Trace.emit trace (Trace.Suspect { node = self; target }));
      on_retire =
        (fun ~target ->
          incr retirements;
          if truth.(target) then incr false_retirements;
          Trace.emit trace (Trace.Retire { node = self; target }));
      on_view_change = (fun ~target ~alive -> on_view_change ~self ~target ~alive);
    }
  in
  let member_rng () =
    incr spawns;
    Rng.substream ~seed:cfg.seed ~index:(0x3e0 + !spawns)
  in
  (* a (re)spawned member's view hash, from scratch; its convergence
     level starts over — earlier verdicts were the previous incarnation's *)
  let init_view_hash id =
    match members.(id) with
    | None -> ()
    | Some m ->
      let view = Member.view m in
      let h = ref 0 in
      View.iter_known view (fun j -> if View.is_live view j then h := !h lxor zob.(j));
      vhash.(id) <- !h;
      conv_emitted.(id) <- 0
  in
  let record_snapshot hash ep =
    Hashtbl.replace snapshots hash ep;
    Queue.push (hash, ep, !now) snapshot_ages;
    let size = Hashtbl.length snapshots in
    if size > !snapshots_peak then snapshots_peak := size
  in
  (* Expire snapshots old enough that no member could still legitimately
     converge to them: an epoch more than [bound] old that is still open
     has already raised {!Trace.Lag.Violation}, so keeping twice that
     window is safely conservative. A hash re-recorded since (the
     membership returned to a previous set) keeps its newer entry: the
     guard removes a binding only when it still carries the queued
     epoch. This caps the table at O(bound * churn rate) entries instead
     of one per change for the whole run. *)
  let prune_snapshots () =
    let continue = ref true in
    while !continue && not (Queue.is_empty snapshot_ages) do
      let hash, ep, born = Queue.peek snapshot_ages in
      if !now -. born > 2.0 *. bound then begin
        ignore (Queue.pop snapshot_ages);
        match Hashtbl.find_opt snapshots hash with
        | Some e when e = ep -> Hashtbl.remove snapshots hash
        | Some _ | None -> ()
      end
      else continue := false
    done
  in
  (* flip the truth for [id] and record the new membership's hash as the
     current epoch's snapshot — O(1), no per-member patching *)
  let flip_truth id =
    truth.(id) <- not truth.(id);
    htruth := !htruth lxor zob.(id);
    record_snapshot !htruth !epoch
  in

  (* --- the hosted backend: members inside real node cores ------------- *)
  (* Under [backend = Mux] every member lives inside an (unmodified)
     {!Node_core}: its messages ride the full wire stack — envelope
     framing + CRC, per-link go-back-N with retransmission, the seeded
     fault shim for loss/delay/partitions — and the service delivers
     encoded frames, not payloads. The core's own trace events are
     discarded (the service emits the canonical lifecycle itself), and
     its completion machinery is inert ([fleet_halt = false]). *)
  let spawn_core id =
    match members.(id) with
    | None -> ()
    | Some m ->
      let algo =
        {
          Algorithm.name = "service-member";
          description = "continuous-service member hosted on a node core";
          make =
            (fun _ctx ->
              (* the member, not the ctx, is the protocol state: the
                 core's round/receive hooks just forward to it on the
                 service's clock *)
              {
                Algorithm.knowledge = View.knowledge (Member.view m);
                round = (fun ~round:_ ~send:_ -> Member.step m ~now:!now);
                receive = (fun ~src payload -> Member.deliver m ~src ~now:!now payload);
                is_quiescent = Algorithm.never_quiescent;
              });
        }
      in
      let acts =
        {
          Node_core.emit = (fun ~now:_ _ -> ());
          xmit =
            (fun ~now:sent_at ~dst frame ->
              incr seq;
              Heap.push heap
                { Heap.time = sent_at +. latency (); seq = !seq; src = id; dst; frame });
          notify_complete = (fun ~now:_ ~tick:_ -> ());
          (* "establishing a connection" is instantaneous here, as in the
             mux: a revived link comes straight back up *)
          wake =
            (fun ~dst ->
              match cores.(id) with
              | Some core -> Node_core.link_up core ~now:!now ~dst
              | None -> ());
        }
      in
      let core =
        Node_core.create
          {
            Node_core.node = id;
            n = cap;
            algo;
            seed = cfg.seed;
            neighbors = [||];
            tick_period = 1.0;
            rto = 3.0;
            fault;
            announce = false;
            encoding = Wire.Adaptive;
            fleet_halt = false;
          }
          acts ~links_up:true ~now:!now
      in
      cores.(id) <- Some core;
      if ever_lived.(id) then begin
        (* A reborn id must void the go-back-N state peers still hold
           about its predecessor (their stale cumulative-ack marks would
           silently eat the fresh incarnation's low sequence numbers):
           greet every live peer, and keep re-greeting — see
           [heal_links] — until each peer's dead link has demonstrably
           been revived, since any single hello can be lost. *)
        for p = 0 to cap - 1 do
          if p <> id && cores.(p) <> None then Node_core.greet core ~now:!now ~dst:p
        done;
        healing.(id) <- true
      end;
      ever_lived.(id) <- true
  in
  let despawn_core id =
    match cores.(id) with
    | None -> ()
    | Some core ->
      retransmits := !retransmits + (Node_core.final core).Control.retransmits;
      cores.(id) <- None;
      healing.(id) <- false;
      (* every peer writes the departed id off at once, so go-back-N
         stops retransmitting into the void; a later rebirth revives the
         links via its greeting hellos *)
      for p = 0 to cap - 1 do
        if p <> id then
          match cores.(p) with
          | Some pc -> Node_core.link_dead pc ~now:!now ~dst:id
          | None -> ()
      done
  in
  (* Re-greet peers whose link toward a reborn id is still [Dead]: the
     hello that should have revived it was eaten by the fault shim. The
     peer's link status is the delivery receipt — once no peer holds a
     dead link toward the id, healing is done. *)
  let heal_links () =
    for id = 0 to cap - 1 do
      if healing.(id) then
        match cores.(id) with
        | None -> healing.(id) <- false
        | Some core ->
          let pending = ref false in
          for p = 0 to cap - 1 do
            if p <> id then
              match cores.(p) with
              | Some pc when Node_core.link_status pc ~dst:id = Node_core.Dead ->
                pending := true;
                Node_core.greet core ~now:!now ~dst:p
              | Some _ | None -> ()
          done;
          if not !pending then healing.(id) <- false
    done
  in

  (* --- membership changes --------------------------------------------- *)
  (* a churn join (genesis members are built inline below): the epoch
     counter mirrors the lag checker's, which starts bumping once the
     first tick has been emitted — always true here *)
  let join ~id ~contacts =
    Trace.emit trace (Trace.Join { node = id });
    incr epoch;
    incr joins;
    flip_truth id;
    Pool.remove fresh id;
    Pool.remove retired id;
    Pool.add live id;
    let m =
      Member.create_joiner ~cap ~self:id ~labels ~contacts ~rng:(member_rng ()) ~full_sync
        ~indirect_k:cfg.indirect_k ~lifeguard:cfg.lifeguard (actions_for id)
    in
    members.(id) <- Some m;
    counts.(id) <- 0;
    if hosted then spawn_core id;
    init_view_hash id;
    emit_converged_sweep ()
  in
  let depart ~id ~graceful =
    match members.(id) with
    | None -> ()
    | Some m ->
      if graceful then begin
        Member.leave m;
        incr leaves;
        Trace.emit trace (Trace.Leave { node = id })
      end
      else begin
        incr crashes;
        Trace.emit trace (Trace.Crash { node = id })
      end;
      incr epoch;
      members.(id) <- None;
      if hosted then despawn_core id;
      Pool.remove live id;
      Pool.add retired id;
      flip_truth id;
      emit_converged_sweep ()
  in

  (* --- genesis --------------------------------------------------------- *)
  let scheduled_joins = Hashtbl.create 8 in
  List.iter
    (fun (node, round) ->
      if round > 1 && node < cap then Hashtbl.replace scheduled_joins node round)
    (Fault.joining_nodes fault);
  let founders = ref [] in
  for id = cfg.n - 1 downto 0 do
    if not (Hashtbl.mem scheduled_joins id) then founders := id :: !founders
  done;
  let founders = Array.of_list !founders in
  if Array.length founders < 2 then invalid_arg "Service.run: fewer than two founding members";
  for id = cfg.n to cap - 1 do
    if not (Hashtbl.mem scheduled_joins id) then Pool.add fresh id
  done;
  Array.iter
    (fun id ->
      Trace.emit trace (Trace.Join { node = id });
      truth.(id) <- true;
      htruth := !htruth lxor zob.(id);
      Pool.add live id;
      let m =
        Member.create_genesis ~cap ~self:id ~labels ~peers:founders ~rng:(member_rng ())
          ~full_sync ~indirect_k:cfg.indirect_k ~lifeguard:cfg.lifeguard (actions_for id)
      in
      members.(id) <- Some m)
    founders;
  (* epoch 0: the genesis membership *)
  record_snapshot !htruth 0;
  Array.iter init_view_hash founders;
  if hosted then Array.iter spawn_core founders;

  (* per-round schedules from the fault plan *)
  let at tbl round id =
    let prev = Option.value (Hashtbl.find_opt tbl round) ~default:[] in
    Hashtbl.replace tbl round (id :: prev)
  in
  let joins_at = Hashtbl.create 8
  and leaves_at = Hashtbl.create 8
  and crashes_at = Hashtbl.create 8 in
  Hashtbl.iter (fun node round -> at joins_at round node) scheduled_joins;
  List.iter (fun (node, round) -> if node < cap then at leaves_at round node) (Fault.leaving_nodes fault);
  List.iter (fun (node, round) -> if node < cap then at crashes_at round node) (Fault.crashed_nodes fault);
  List.iter (fun (node, round) -> if node < cap then at joins_at round node) (Fault.restarting_nodes fault);

  (* up to three distinct live contacts for a joiner: a single contact
     can churn out mid-bootstrap, stranding the joiner on a dead address
     with no live peer in its view to re-aim at *)
  let random_contacts ~avoid =
    let want = 3 in
    let picked = ref [] and n_picked = ref 0 and attempts = ref (8 * want) in
    while !n_picked < want && !attempts > 0 do
      decr attempts;
      match Pool.draw live churn_rng with
      | Some c when c <> avoid && not (List.mem c !picked) ->
        picked := c :: !picked;
        incr n_picked
      | Some _ | None -> ()
    done;
    if !picked = [] then None else Some (Array.of_list (List.rev !picked))
  in
  let apply_scheduled tick =
    let sorted tbl = List.sort compare (Option.value (Hashtbl.find_opt tbl tick) ~default:[]) in
    List.iter
      (fun id ->
        if members.(id) = None then
          match random_contacts ~avoid:id with
          | Some contacts -> join ~id ~contacts
          | None -> ())
      (sorted joins_at);
    List.iter (fun id -> depart ~id ~graceful:true) (sorted leaves_at);
    List.iter (fun id -> depart ~id ~graceful:false) (sorted crashes_at)
  in
  let apply_churn tick =
    match cfg.churn with
    | Some c when tick <= c.until ->
      if Rng.bernoulli churn_rng ~p:(c.rate /. 2.0) then begin
        (* fresh ids first, then the retired pool (restarts) *)
        let id =
          match Pool.draw fresh churn_rng with
          | Some id -> Some id
          | None -> Pool.draw retired churn_rng
        in
        match id with
        | Some id when members.(id) = None -> (
          match random_contacts ~avoid:id with
          | Some contacts -> join ~id ~contacts
          | None -> ())
        | Some _ | None -> ()
      end;
      if Rng.bernoulli churn_rng ~p:(c.rate /. 4.0) && Pool.size live > c.min_live then
        (match Pool.draw live churn_rng with
        | Some id -> depart ~id ~graceful:true
        | None -> ());
      if Rng.bernoulli churn_rng ~p:(c.rate /. 4.0) && Pool.size live > c.min_live then
        (match Pool.draw live churn_rng with
        | Some id -> depart ~id ~graceful:false
        | None -> ())
    | Some _ | None -> ()
  in

  (* --- main loop ------------------------------------------------------- *)
  for tick = 1 to cfg.ticks do
    let tick_time = float_of_int tick in
    (* deliver everything due by this tick, in (time, seq) order *)
    while (not (Heap.is_empty heap)) && (Heap.peek heap).Heap.time <= tick_time do
      let e = Heap.pop heap in
      now := e.Heap.time;
      if hosted then begin
        match cores.(e.Heap.dst) with
        | None -> incr dropped_dead
        | Some core -> (
          match Envelope.decode e.Heap.frame ~off:0 ~len:(Bytes.length e.Heap.frame) with
          | `Frame (env, _) -> Node_core.handle_frame core ~now:e.Heap.time env
          | `Corrupt reason ->
            if String.equal reason Envelope.crc_mismatch then Node_core.note_corrupt_frame core
            else Node_core.note_decode_error core
          | `Need_more -> Node_core.note_decode_error core)
      end
      else begin
        match members.(e.Heap.dst) with
        | None -> incr dropped_dead
        | Some m -> (
          match Wire.decode Wire.Adaptive ~universe:cap e.Heap.frame with
          | Ok payload -> Member.deliver m ~src:e.Heap.src ~now:e.Heap.time payload
          | Error msg -> failwith ("Service.run: wire decode failed: " ^ msg))
      end
    done;
    now := tick_time;
    for id = 0 to cap - 1 do
      match members.(id) with
      | None -> ()
      | Some m -> (
        counts.(id) <- counts.(id) + 1;
        Trace.emit trace (Trace.Tick { node = id; time = tick_time; count = counts.(id) });
        match cores.(id) with
        | Some core ->
          (* the core runs the member's step through its round hook, and
             owns retransmission timeouts and held fault-shim frames *)
          Node_core.flush_faults core ~now:tick_time;
          Node_core.tick core ~now:tick_time;
          Node_core.pump core ~now:tick_time
        | None -> Member.step m ~now:tick_time)
    done;
    if hosted then heal_links ();
    apply_scheduled tick;
    apply_churn tick;
    prune_snapshots ()
  done;
  if hosted then
    Array.iter
      (function
        | Some core -> retransmits := !retransmits + (Node_core.final core).Control.retransmits
        | None -> ())
      cores;
  Trace.Lag.final_check lag;
  Trace.flush trace;
  {
    ticks_run = cfg.ticks;
    cap;
    founders = Array.length founders;
    final_live = Pool.size live;
    joins = !joins;
    leaves = !leaves;
    crashes = !crashes;
    suspicions = !suspicions;
    retirements = !retirements;
    epochs = Trace.Lag.epochs lag;
    epochs_closed = Trace.Lag.closed lag;
    max_lag = Trace.Lag.max_lag lag;
    msgs = !msgs;
    bytes = !bytes;
    probes = !probes;
    acks = !acks;
    gossip = !gossip;
    update_entries = !update_entries;
    full_syncs = !full_syncs;
    bootstraps = !bootstraps;
    dropped_loss = !dropped_loss;
    dropped_dead = !dropped_dead;
    probe_reqs = !probe_reqs;
    probe_acks = !probe_acks;
    suspicion_msgs = !suspicion_msgs;
    false_suspicions = !false_suspicions;
    false_retirements = !false_retirements;
    retransmits = !retransmits;
    snapshots_peak = !snapshots_peak;
    lag_table_peak = Trace.Lag.table_peak lag;
  }

let stats_to_json s =
  Printf.sprintf
    "{\"ticks\":%d,\"cap\":%d,\"founders\":%d,\"final_live\":%d,\"joins\":%d,\"leaves\":%d,\"crashes\":%d,\"suspicions\":%d,\"retirements\":%d,\"epochs\":%d,\"epochs_closed\":%d,\"max_lag\":%.12g,\"msgs\":%d,\"bytes\":%d,\"probes\":%d,\"acks\":%d,\"gossip\":%d,\"update_entries\":%d,\"full_syncs\":%d,\"bootstraps\":%d,\"dropped_loss\":%d,\"dropped_dead\":%d,\"probe_reqs\":%d,\"probe_acks\":%d,\"suspicion_msgs\":%d,\"false_suspicions\":%d,\"false_retirements\":%d,\"retransmits\":%d,\"snapshots_peak\":%d,\"lag_table_peak\":%d}"
    s.ticks_run s.cap s.founders s.final_live s.joins s.leaves s.crashes s.suspicions
    s.retirements s.epochs s.epochs_closed s.max_lag s.msgs s.bytes s.probes s.acks s.gossip
    s.update_entries s.full_syncs s.bootstraps s.dropped_loss s.dropped_dead s.probe_reqs
    s.probe_acks s.suspicion_msgs s.false_suspicions s.false_retirements s.retransmits
    s.snapshots_peak s.lag_table_peak
