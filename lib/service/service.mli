(** The continuous discovery runtime: a multiplexed fleet of
    {!Member}s on a virtual clock, with seeded churn and an omniscient
    convergence observer.

    One-shot discovery answers "who is here?" once; the service keeps
    the answer current. The runtime multiplexes every member of an id
    universe [0 .. cap-1] into one process, applies scheduled
    ({!Repro_engine.Fault}) and seeded-random churn — joins, graceful
    leaves, crashes and restarts — and checks the {b convergence-lag
    invariant} online: after every membership change, every live
    member's view must match the true membership again within a bounded
    number of ticks ({!Repro_engine.Trace.Lag}).

    {b Backends.} [backend = None] or [Some Loopback] runs the
    certification path: members exchange {!Repro_discovery.Wire}-encoded
    payloads directly (every payload is encoded and decoded, so the
    codec is exercised on every hop) and the runtime itself applies the
    fault plan's loss coin and partition cuts. [Some Mux] hosts every
    member inside a real {!Repro_net.Node_core}: messages additionally
    ride the envelope framing + CRC, the per-link go-back-N reliability
    layer (lost frames are retransmitted — [dropped_loss] stays 0
    because the fault shim drops silently), and the seeded
    {!Repro_net.Faultnet} shim for loss/delay/partitions. Rebirth of a
    retired id is announced to the fleet with hello frames (re-sent
    until every peer demonstrably revived its link), voiding stale
    go-back-N sequence state. [Some (Process _)] is rejected: the
    service multiplexes thousands of members into one process.

    The observer is omniscient but O(1) per view change: it keeps a
    Zobrist hash of each member's live-view and of every epoch's true
    membership, and emits a [Converge] event when a member's view hash
    matches the snapshot of any epoch it has not yet been credited with
    — convergence to a {e consistent cut}, matching the checker's
    contract even when later changes are still in flight. Snapshots
    older than twice the lag bound are expired (an epoch still open that
    far back has already raised), so observer memory is O(bound ·
    churn rate), not O(changes) — {!stats.snapshots_peak} and
    {!stats.lag_table_peak} pin the high-water marks. Everything is a
    pure function of the configuration: same config, same stats, byte
    for byte. *)

open Repro_engine

type churn = {
  rate : float;
      (** expected membership events per tick: joins arrive at
          [rate/2], graceful leaves and crashes at [rate/4] each, so
          the live population is stationary in expectation *)
  min_live : int;  (** never leave/crash below this population *)
  until : int;
      (** last tick churn may fire; the remaining ticks are a cooldown
          so every epoch's convergence deadline falls inside the run *)
}

type config = {
  n : int;  (** founding members (ids [0 .. n-1] minus scheduled joiners) *)
  cap : int;  (** id universe: joiners and rejoiners draw from [n .. cap-1] and the retired pool *)
  seed : int;
  ticks : int;
  churn : churn option;  (** seeded-random churn generator *)
  fault : Fault.t;  (** scheduled churn, link loss/delay, partitions *)
  lag_bound : float option;  (** [None]: [max 64 (4 log2(cap)^2)] *)
  full_sync : bool option;
      (** enable the periodic full-state backstop; [None]: auto — on
          exactly when an update could die in flight: the fault plan can
          lose messages, or membership can change at all (churn or
          scheduled joins/leaves/crashes), since a joiner's bootstrap
          snapshot can race an in-flight update whose piggyback budgets
          then expire *)
  backend : Repro_net.Backend.t option;
      (** [None]/[Some Loopback]: direct payload delivery (the
          certification oracle); [Some Mux]: members hosted inside real
          node cores, full wire stack per hop. [Some (Process _)] is
          rejected. *)
  indirect_k : int;
      (** intermediaries per indirect-probe round; [0] disables the
          round (a direct-probe timeout suspects immediately) *)
  lifeguard : bool;  (** local-health timeout scaling (see {!Member}) *)
  trace : Trace.sink;  (** teed with the online lag checker *)
}

type stats = {
  ticks_run : int;
  cap : int;
  founders : int;
  final_live : int;
  joins : int;  (** churn joins applied after genesis (incl. restarts) *)
  leaves : int;
  crashes : int;
  suspicions : int;
  retirements : int;
  epochs : int;  (** membership changes after genesis *)
  epochs_closed : int;  (** epochs whose fleet-wide convergence was confirmed *)
  max_lag : float;  (** worst confirmed convergence lag, in ticks *)
  msgs : int;  (** total member-level messages sent (all kinds) *)
  bytes : int;  (** total encoded payload bytes *)
  probes : int;
  acks : int;  (** probe replies *)
  gossip : int;  (** incremental update pushes *)
  update_entries : int;  (** entries carried by incremental pushes *)
  full_syncs : int;  (** periodic full-state sync pushes *)
  bootstraps : int;  (** bootstrap requests + full-state replies *)
  dropped_loss : int;
      (** lost to the fault plan's coin / partitions; always 0 on the
          mux backend, where the fault shim drops frames silently and
          go-back-N retransmits them *)
  dropped_dead : int;  (** destination no longer live *)
  probe_reqs : int;  (** indirect-probe requests to intermediaries *)
  probe_acks : int;  (** nonce-correlated indirect-probe vouches *)
  suspicion_msgs : int;  (** suspicion claims shared with peers *)
  false_suspicions : int;
      (** suspicions opened against a target that was in truth live —
          the false-positive rate the indirect round and local-health
          scaling exist to suppress *)
  false_retirements : int;  (** down convictions of an in-truth-live target *)
  retransmits : int;
      (** go-back-N re-sends, summed over every hosted core's lifetime;
          0 on the loopback path, which has no reliability layer *)
  snapshots_peak : int;
      (** high-water mark of the observer's epoch-snapshot table (see
          the module docs: pruned to O(bound · churn rate)) *)
  lag_table_peak : int;
      (** high-water mark of the lag checker's open-epoch table
          ({!Trace.Lag.table_peak}) *)
}

val default_lag_bound : cap:int -> float

val run : config -> stats
(** Run the service for [config.ticks] virtual ticks.
    @raise Trace.Lag.Violation when a live member fails to re-converge
    within the lag bound.
    @raise Invalid_argument on a malformed configuration (including
    [backend = Some (Process _)]). *)

val stats_to_json : stats -> string
(** One-line JSON object, stable field order, ["%.12g"] floats —
    byte-stable across reruns for CI baselines. *)
