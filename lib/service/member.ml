open Repro_util
open Repro_discovery

(* Timing constants, in virtual ticks. A probe round-trip is ~1.3 ticks
   under the virtual-clock runtime's latency model and up to ~2 ticks
   over the hosted mux backend (replies queue until the next
   activation), so [suspect_after] tolerates a full RTT slack before
   escalating, the indirect window fits a relayed round-trip, and a
   confirmed death takes at most
   (suspect_after + indirect_after + suspicion_max) * lhm ticks end to
   end — 48 at the worst local-health multiplier, still inside the
   minimum convergence-lag bound of 64. *)
let probe_interval = 4.0
let suspect_after = 3.0
let indirect_after = 4.0
let full_sync_interval = 64.0
let leave_fanout = 3

(* Suspicion window: starts at [suspicion_max] and shrinks toward
   [suspicion_min] as independent confirmations arrive (see
   [suspicion_timeout]). With confirmations capped at
   [suspicion_confirmation_cap] the fully corroborated window equals
   the old fixed one's floor. *)
let suspicion_min = 3.0
let suspicion_max = 9.0
let suspicion_confirmation_cap = 3
let suspicion_fanout = 3

(* dead_after is kept as the historical name for the uncorroborated
   suspicion window (diagnostics, tests). *)
let dead_after = suspicion_max

(* Local health (lifeguard): a saturating counter of recent evidence
   that *our own* probes are failing broadly. Every timeout or wrong
   verdict bumps it, every answered probe decays it; the multiplier it
   induces widens all our liveness timeouts, so a node on the minority
   side of a partition slows its convictions instead of spraying down
   verdicts. *)
let health_max = 4

(* An intermediary remembers who asked it to probe whom for this many
   ticks; relays older than that are dropped unanswered. *)
let relay_ttl = 6.0

type actions = {
  send : dst:int -> Payload.t -> unit;
  on_suspect : target:int -> unit;
  on_retire : target:int -> unit;
  on_view_change : target:int -> alive:bool -> unit;
}

type probe_state =
  | Direct of { deadline : float }
  | Indirect of { deadline : float; nonce : int }
  | Suspected of {
      started : float;
      nonce : int;
      version : int;  (* the incarnation under suspicion *)
      mutable deadline : float;
      mutable confirmers : int list;  (* distinct peers corroborating *)
    }

type relay = { requester : int; nonce : int; expiry : float }

type t = {
  self : int;
  rng : Rng.t;
  view : View.t;
  mutable incarnation : int;
  (* Append-only update log, structure-of-arrays: node, version, status
     and the entry's remaining transmission budget. *)
  log_nodes : Intvec.t;
  log_versions : Intvec.t;
  log_statuses : Intvec.t;
  log_budgets : Intvec.t;
  cursors : (int, int) Hashtbl.t;  (* target -> log prefix already pushed *)
  probes : (int, probe_state) Hashtbl.t;
  relays : (int, relay list) Hashtbl.t;  (* target -> pending vouches *)
  indirect_k : int;
  lifeguard : bool;
  mutable health : int;
  mutable next_probe : float;
  mutable bootstrap : (int array * int * Repro_net.Node.Backoff.t * float) option;
      (* contacts, rotation index, backoff, due *)
  mutable next_full_sync : float;
  full_sync : bool;
  actions : actions;
}

let self t = t.self
let view t = t.view
let incarnation t = t.incarnation
let bootstrapping t = t.bootstrap <> None
let log_length t = Intvec.length t.log_nodes
let health t = t.health

(* The local-health multiplier: 1x when healthy, up to 3x when every
   recent probe failed. *)
let lhm t = 1.0 +. (0.5 *. float_of_int t.health)

let penalize t = if t.lifeguard then t.health <- min health_max (t.health + 1)
let improve t = if t.lifeguard then t.health <- max 0 (t.health - 1)

(* Lifeguard-style timeout scaling: the window starts wide and shrinks
   logarithmically with independent confirmations, floored at
   [suspicion_min]. Both bounds stretch under a bad local health. *)
let suspicion_timeout t ~confirmations =
  let m = lhm t in
  let max_to = suspicion_max *. m and min_to = suspicion_min *. m in
  let c = float_of_int (min confirmations suspicion_confirmation_cap) in
  let k = float_of_int suspicion_confirmation_cap in
  max min_to (max_to -. ((max_to -. min_to) *. log (c +. 1.0) /. log (k +. 1.0)))

(* Each entry is pushed O(log live) times fleet-wide per member — the
   classic rumor-mongering budget that makes total dissemination cost
   O(n log n) per change instead of O(n^2). *)
let budget_for t =
  let live = max 2 (View.live_count t.view) in
  let lg = int_of_float (ceil (log (float_of_int live) /. log 2.0)) in
  3 * max 1 lg

let log_append t ~node ~version ~status =
  Intvec.push t.log_nodes node;
  Intvec.push t.log_versions version;
  Intvec.push t.log_statuses status;
  Intvec.push t.log_budgets (budget_for t)

let make_member ~cap ~self ~labels ~rng ~full_sync ~indirect_k ~lifeguard actions =
  if cap <= 0 then invalid_arg "Member.create: cap must be positive";
  if self < 0 || self >= cap then invalid_arg "Member.create: self out of range";
  if indirect_k < 0 then invalid_arg "Member.create: negative indirect_k";
  {
    self;
    rng;
    view = View.create ~cap ~owner:self ~labels;
    incarnation = 1;
    log_nodes = Intvec.create ();
    log_versions = Intvec.create ();
    log_statuses = Intvec.create ();
    log_budgets = Intvec.create ();
    cursors = Hashtbl.create 16;
    probes = Hashtbl.create 4;
    relays = Hashtbl.create 4;
    indirect_k;
    lifeguard;
    health = 0;
    next_probe = 0.0;
    bootstrap = None;
    next_full_sync = full_sync_interval;
    full_sync;
    actions;
  }

let create_genesis ~cap ~self ~labels ~peers ~rng ~full_sync ?(indirect_k = 2)
    ?(lifeguard = true) actions =
  let t = make_member ~cap ~self ~labels ~rng ~full_sync ~indirect_k ~lifeguard actions in
  Array.iter
    (fun peer ->
      if peer <> self then
        ignore (View.apply t.view ~node:peer ~version:1 ~status:Payload.status_alive))
    peers;
  t

let create_joiner ~cap ~self ~labels ~contacts ~rng ~full_sync ?(indirect_k = 2)
    ?(lifeguard = true) actions =
  if Array.length contacts = 0 then invalid_arg "Member.create_joiner: no contacts";
  Array.iter
    (fun contact ->
      if contact < 0 || contact >= cap || contact = self then
        invalid_arg "Member.create_joiner: bad contact")
    contacts;
  let t = make_member ~cap ~self ~labels ~rng ~full_sync ~indirect_k ~lifeguard actions in
  log_append t ~node:self ~version:1 ~status:Payload.status_alive;
  let backoff = Repro_net.Node.Backoff.create ~rng ~base:2.0 ~cap:16.0 in
  t.bootstrap <- Some (contacts, 0, backoff, 0.0);
  t

(* Drop a liveness hypothesis about [target] because it proved alive.
   A refuted *suspicion* (not a mere pending probe) means we were about
   to convict a live node: that is local-health evidence of our own
   unreliability, not the target's. *)
let cancel_probe t ~target ~refuted =
  match Hashtbl.find_opt t.probes target with
  | None -> ()
  | Some (Direct _ | Indirect _) ->
    Hashtbl.remove t.probes target;
    if refuted then improve t
  | Some (Suspected _) ->
    Hashtbl.remove t.probes target;
    ignore (View.unsuspect t.view target);
    if refuted then penalize t

(* Merge one remote observation. [relog] gates re-broadcast: gossip and
   join announcements spread further, bootstrap replies do not (the
   joiner must not re-announce the whole fleet). *)
let observe t ~node ~version ~status ~relog =
  if node = t.self && status <> Payload.status_alive && version >= t.incarnation then begin
    (* someone thinks we are gone: refute with a higher incarnation *)
    t.incarnation <- version + 1;
    ignore (View.apply t.view ~node:t.self ~version:t.incarnation ~status:Payload.status_alive);
    log_append t ~node:t.self ~version:t.incarnation ~status:Payload.status_alive
  end
  else begin
    (* a fresher alive incarnation outranks any in-flight suspicion of
       an older one: cancel it instead of letting it convict later *)
    (match Hashtbl.find_opt t.probes node with
    | Some (Suspected s)
      when status = Payload.status_alive && version > s.version ->
      cancel_probe t ~target:node ~refuted:true
    | Some _ | None -> ());
    match View.apply t.view ~node ~version ~status with
    | View.Stale -> ()
    | View.Updated -> if relog then log_append t ~node ~version ~status
    | View.Changed alive ->
      if relog then log_append t ~node ~version ~status;
      t.actions.on_view_change ~target:node ~alive
  end

(* The canonical batch of log entries in [from, len) that still have
   transmission budget: latest observation per node, ascending by node.
   Decrements the budget of every entry it includes. *)
let pending_entries t ~from =
  let len = Intvec.length t.log_nodes in
  if from >= len then [||]
  else begin
    let latest = Hashtbl.create 8 in
    for i = from to len - 1 do
      if Intvec.get t.log_budgets i > 0 then begin
        Intvec.set t.log_budgets i (Intvec.get t.log_budgets i - 1);
        (* later entries for the same node supersede earlier ones *)
        Hashtbl.replace latest (Intvec.get t.log_nodes i)
          { Payload.node = Intvec.get t.log_nodes i;
            version = Intvec.get t.log_versions i;
            status = Intvec.get t.log_statuses i }
      end
    done;
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) latest [] in
    let entries = Array.of_list entries in
    Array.sort (fun a b -> compare a.Payload.node b.Payload.node) entries;
    entries
  end

let advance_cursor t target = Hashtbl.replace t.cursors target (Intvec.length t.log_nodes)

let cursor t target = Option.value (Hashtbl.find_opt t.cursors target) ~default:0

(* Every known node at its current (version, status) — the full-state
   payload for bootstrap replies and the lossy-network backstop. *)
let full_entries t =
  let acc = ref [] in
  View.iter_known t.view (fun node ->
      let status =
        match View.status t.view node with
        | Some s when s = Payload.status_suspect ->
          (* suspicion is local: export the lattice status, not the hunch *)
          Payload.status_alive
        | Some s -> s
        | None -> assert false
      in
      acc := { Payload.node; version = View.version t.view node; status } :: !acc);
  let entries = Array.of_list !acc in
  Array.sort (fun a b -> compare a.Payload.node b.Payload.node) entries;
  entries

let gossip t =
  match View.random_live t.view t.rng with
  | None -> ()
  | Some target ->
    let entries = pending_entries t ~from:(cursor t target) in
    advance_cursor t target;
    if Array.length entries > 0 then
      t.actions.send ~dst:target (Payload.Share (Payload.Updates { full = false; entries }))

let send_bootstrap t ~now ~dst contacts idx backoff =
  (* [full = false]: the payload is the joiner's lone self-announcement,
     not a full state — which also lets the runtime's traffic classifier
     tell bootstrap requests from periodic full-sync pushes *)
  let entries =
    [| { Payload.node = t.self; version = t.incarnation; status = Payload.status_alive } |]
  in
  t.actions.send ~dst (Payload.Exchange (Payload.Updates { full = false; entries }));
  t.bootstrap <- Some (contacts, idx, backoff, now +. Repro_net.Node.Backoff.next backoff)

let fresh_nonce t = Rng.int t.rng 0x3FFFFFFF

(* Escalate an unanswered direct probe: ask up to [indirect_k] random
   live intermediaries to probe the target on our behalf, correlated by
   a nonce — one lost link no longer convicts a healthy node. Falls
   through to suspicion when indirect probing is off or no intermediary
   exists. Returns [true] if an indirect round was opened. *)
let start_indirect t ~target ~now =
  let mids = View.random_live_sample t.view t.rng ~k:t.indirect_k ~exclude:target in
  if Array.length mids = 0 then false
  else begin
    let nonce = fresh_nonce t in
    Hashtbl.replace t.probes target (Indirect { deadline = now +. (indirect_after *. lhm t); nonce });
    Array.iter (fun mid -> t.actions.send ~dst:mid (Payload.Probe_req { target; nonce })) mids;
    (* keep trying directly too: the direct path may only have been
       unlucky, and its answer is accepted at any time *)
    t.actions.send ~dst:target Payload.Probe;
    true
  end

(* Open the suspicion sub-protocol on [target]: mark it suspect
   locally, start the (wide) refutation window and tell a few live
   peers — each will corroborate only from its own probe evidence, and
   each independent confirmation shrinks the window. *)
let start_suspicion t ~target ~now =
  let version = View.version t.view target in
  let deadline = now +. suspicion_timeout t ~confirmations:0 in
  (* keep the indirect round's nonce: an ack that raced the window's
     expiry is still valid evidence and may acquit the suspicion *)
  let nonce =
    match Hashtbl.find_opt t.probes target with
    | Some (Indirect i) -> i.nonce
    | Some (Direct _ | Suspected _) | None -> fresh_nonce t
  in
  Hashtbl.replace t.probes target
    (Suspected { started = now; nonce; version; deadline; confirmers = [] });
  if View.suspect t.view target then t.actions.on_suspect ~target;
  let peers = View.random_live_sample t.view t.rng ~k:suspicion_fanout ~exclude:target in
  Array.iter (fun peer -> t.actions.send ~dst:peer (Payload.Suspicion { target; version })) peers;
  t.actions.send ~dst:target Payload.Probe

let probe_timeouts t ~now =
  let escalate = ref [] and deaths = ref [] and reprobes = ref [] in
  Hashtbl.iter
    (fun target state ->
      match state with
      | Direct { deadline } when now > deadline -> escalate := (target, `To_indirect) :: !escalate
      | Indirect { deadline; _ } when now > deadline ->
        escalate := (target, `To_suspected) :: !escalate
      | Suspected s when now > s.deadline -> deaths := target :: !deaths
      | Suspected _ | Indirect _ -> reprobes := target :: !reprobes
      | Direct _ -> ())
    t.probes;
  (* keep probing through the indirect and suspicion windows:
     confirming a death then requires every probe of the window to go
     unanswered, so a single lost ack cannot produce a false verdict *)
  List.iter (fun target -> t.actions.send ~dst:target Payload.Probe) !reprobes;
  List.iter
    (fun (target, transition) ->
      (* an expired window is local-health evidence either way *)
      penalize t;
      match transition with
      | `To_indirect ->
        if not (start_indirect t ~target ~now) then start_suspicion t ~target ~now
      | `To_suspected -> start_suspicion t ~target ~now)
    !escalate;
  List.iter
    (fun target ->
      match Hashtbl.find_opt t.probes target with
      | Some (Suspected s) ->
        Hashtbl.remove t.probes target;
        (* convict at the incarnation we suspected: if the node refuted
           meanwhile with a higher one, the verdict is stale on the
           lattice and changes nothing *)
        observe t ~node:target ~version:s.version ~status:Payload.status_down ~relog:true;
        t.actions.on_retire ~target
      | Some _ | None -> ())
    !deaths

let maybe_probe t ~now =
  if now >= t.next_probe then begin
    t.next_probe <- now +. probe_interval;
    match View.random_live t.view t.rng with
    | Some target when not (Hashtbl.mem t.probes target) ->
      Hashtbl.replace t.probes target (Direct { deadline = now +. (suspect_after *. lhm t) });
      t.actions.send ~dst:target Payload.Probe
    | Some _ | None -> ()
  end

let maybe_full_sync t ~now =
  if t.full_sync && now >= t.next_full_sync then begin
    t.next_full_sync <- now +. full_sync_interval;
    match View.random_live t.view t.rng with
    | None -> ()
    | Some target ->
      advance_cursor t target;
      (* push-pull, like bootstrap: the Exchange both delivers our state
         and solicits the peer's full Reply. A push-only sync would let
         a member serve the fleet while staying stale itself — it would
         heal only when someone else's sync happened to land on it,
         which at fleet size n is an expected n/2 intervals away. *)
      t.actions.send ~dst:target
        (Payload.Exchange (Payload.Updates { full = true; entries = full_entries t }))
  end

(* Drop relay entries whose requester stopped waiting long ago. *)
let prune_relays t ~now =
  if Hashtbl.length t.relays > 0 then begin
    let stale = ref [] in
    Hashtbl.iter
      (fun target pending ->
        if List.for_all (fun r -> now > r.expiry) pending then stale := target :: !stale
        else
          Hashtbl.replace t.relays target (List.filter (fun r -> now <= r.expiry) pending))
      t.relays;
    List.iter (Hashtbl.remove t.relays) !stale
  end

let step t ~now =
  (match t.bootstrap with
  | Some (contacts, idx, backoff, due) when now >= due ->
    (* re-aim at any live peer learned since; failing that, rotate the
       contact list — so one contact churning out mid-bootstrap cannot
       strand the joiner on a dead address forever *)
    let dst =
      match View.random_live t.view t.rng with
      | Some c -> c
      | None -> contacts.(idx mod Array.length contacts)
    in
    send_bootstrap t ~now ~dst contacts (idx + 1) backoff
  | Some _ | None -> ());
  if t.bootstrap = None then begin
    probe_timeouts t ~now;
    maybe_probe t ~now;
    maybe_full_sync t ~now;
    prune_relays t ~now
  end;
  gossip t

let apply_updates t ~relog (u : Payload.update array) =
  Array.iter (fun e -> observe t ~node:e.Payload.node ~version:e.version ~status:e.status ~relog) u

let share_entry t ~dst ~node ~version ~status =
  let entry = { Payload.node; version; status } in
  t.actions.send ~dst (Payload.Share (Payload.Updates { full = false; entries = [| entry |] }))

(* Answer every pending indirect-probe vouch for [target]: it just
   proved alive to us, so ack the requesters that asked us to check. *)
let fire_relays t ~target ~now =
  match Hashtbl.find_opt t.relays target with
  | None -> ()
  | Some pending ->
    Hashtbl.remove t.relays target;
    List.iter
      (fun r ->
        if now <= r.expiry then
          t.actions.send ~dst:r.requester (Payload.Probe_ack { target; nonce = r.nonce }))
      pending

let add_relay t ~target ~requester ~nonce ~now =
  let pending = Option.value (Hashtbl.find_opt t.relays target) ~default:[] in
  Hashtbl.replace t.relays target ({ requester; nonce; expiry = now +. relay_ttl } :: pending)

let deliver t ~src ~now payload =
  (* any message is proof of life: an answered probe improves local
     health, a refuted suspicion degrades it (we nearly convicted a
     live node) *)
  (match Hashtbl.find_opt t.probes src with
  | Some (Direct _ | Indirect _) -> improve t
  | Some (Suspected _) -> penalize t
  | None -> ());
  cancel_probe t ~target:src ~refuted:false;
  ignore (View.unsuspect t.view src);
  fire_relays t ~target:src ~now;
  (* a message from a node we hold down means our verdict is wrong (or
     stale): send the verdict back so the accused can refute it with a
     higher incarnation — the self-healing path for false positives *)
  (match View.status t.view src with
  | Some s when s = Payload.status_down ->
    share_entry t ~dst:src ~node:src ~version:(View.version t.view src)
      ~status:Payload.status_down
  | Some _ | None -> ());
  match (payload : Payload.t) with
  | Probe ->
    (* the reply is the ack; piggyback whatever the prober has not seen *)
    let entries = pending_entries t ~from:(cursor t src) in
    advance_cursor t src;
    t.actions.send ~dst:src (Payload.Reply (Payload.Updates { full = false; entries }))
  | Probe_req { target; nonce } ->
    if target = t.self then
      (* we are the accused and evidently alive: vouch for ourselves *)
      t.actions.send ~dst:src (Payload.Probe_ack { target; nonce })
    else if View.status t.view target = Some Payload.status_down then
      (* already convicted here: share the verdict instead of probing *)
      share_entry t ~dst:src ~node:target ~version:(View.version t.view target)
        ~status:Payload.status_down
    else if target >= 0 then begin
      add_relay t ~target ~requester:src ~nonce ~now;
      t.actions.send ~dst:target Payload.Probe
    end
  | Probe_ack { target; nonce } ->
    (* correlate by nonce: a stale ack from a previous round must not
       acquit the current hypothesis *)
    (match Hashtbl.find_opt t.probes target with
    | Some (Indirect i) when i.nonce = nonce ->
      improve t;
      cancel_probe t ~target ~refuted:false
    | Some (Suspected s) when s.nonce = nonce ->
      (* the vouch raced the window's expiry: acquit the suspicion *)
      cancel_probe t ~target ~refuted:true
    | Some _ | None -> ())
  | Suspicion { target; version } ->
    if target = t.self then
      (* observe handles self-accusations: bump our incarnation *)
      observe t ~node:t.self ~version ~status:Payload.status_suspect ~relog:true
    else begin
      match Hashtbl.find_opt t.probes target with
      | Some (Suspected s) when version = s.version && not (List.mem src s.confirmers) ->
        (* an independent corroboration: shrink the refutation window *)
        s.confirmers <- src :: s.confirmers;
        s.deadline <-
          s.started +. suspicion_timeout t ~confirmations:(List.length s.confirmers)
      | Some _ -> ()
      | None ->
        if View.status t.view target = Some Payload.status_down then
          share_entry t ~dst:src ~node:target ~version:(View.version t.view target)
            ~status:Payload.status_down
        else if version < View.version t.view target && View.is_live t.view target then
          (* stale accusation: quash it with the newer alive incarnation *)
          share_entry t ~dst:src ~node:target ~version:(View.version t.view target)
            ~status:Payload.status_alive
        else if View.is_live t.view target && not (View.owner t.view = target) then begin
          (* corroborate only from our own evidence: probe the accused
             now and let the normal pipeline raise (and gossip) our own
             suspicion if it stays silent *)
          Hashtbl.replace t.probes target (Direct { deadline = now +. (suspect_after *. lhm t) });
          t.actions.send ~dst:target Payload.Probe
        end
    end
  | Exchange (Payload.Updates u) ->
    (* push-pull state exchange (a joiner's bootstrap, or a peer's
       periodic full sync): learn what the sender knows — spreading any
       news — and answer with our whole view *)
    apply_updates t ~relog:true u.entries;
    advance_cursor t src;
    t.actions.send ~dst:src (Payload.Reply (Payload.Updates { full = true; entries = full_entries t }))
  | Reply (Payload.Updates u) when u.full ->
    apply_updates t ~relog:false u.entries;
    if t.bootstrap <> None then begin
      t.bootstrap <- None;
      t.next_full_sync <- now +. full_sync_interval
    end
  | Share (Payload.Updates u) | Reply (Payload.Updates u) -> apply_updates t ~relog:true u.entries
  | Share _ | Exchange _ | Reply _ | Halt ->
    (* one-shot discovery payloads are not part of the service protocol *)
    ()

let leave t =
  let entry =
    { Payload.node = t.self; version = t.incarnation; status = Payload.status_down }
  in
  log_append t ~node:t.self ~version:t.incarnation ~status:Payload.status_down;
  let targets = Knowledge.random_known_among (View.knowledge t.view) t.rng ~k:leave_fanout in
  let payload = Payload.Share (Payload.Updates { full = false; entries = [| entry |] }) in
  let sent = ref 0 in
  Array.iter
    (fun target ->
      if View.is_live t.view target then begin
        t.actions.send ~dst:target payload;
        incr sent
      end)
    targets;
  if !sent = 0 then
    (* no live peer in the sample: fall back to anyone live *)
    match View.random_live t.view t.rng with
    | Some target -> t.actions.send ~dst:target payload
    | None -> ()
