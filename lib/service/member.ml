open Repro_util
open Repro_discovery

(* Timing constants, in virtual ticks. A probe round-trip is ~1.3 ticks
   under the runtime's latency model, so [suspect_after] tolerates two
   full RTTs before suspicion and a confirmed death takes ~13 ticks end
   to end (probe draw + suspicion + confirmation) — far inside the
   convergence-lag bound. *)
let probe_interval = 4.0
let suspect_after = 3.0
let dead_after = 6.0
let full_sync_interval = 64.0
let leave_fanout = 3

type actions = {
  send : dst:int -> Payload.t -> unit;
  on_suspect : target:int -> unit;
  on_retire : target:int -> unit;
  on_view_change : target:int -> alive:bool -> unit;
}

type probe_state = Waiting of float | Suspected of float

type t = {
  self : int;
  rng : Rng.t;
  view : View.t;
  mutable incarnation : int;
  (* Append-only update log, structure-of-arrays: node, version, status
     and the entry's remaining transmission budget. *)
  log_nodes : Intvec.t;
  log_versions : Intvec.t;
  log_statuses : Intvec.t;
  log_budgets : Intvec.t;
  cursors : (int, int) Hashtbl.t;  (* target -> log prefix already pushed *)
  probes : (int, probe_state) Hashtbl.t;
  mutable next_probe : float;
  mutable bootstrap : (int array * int * Repro_net.Node.Backoff.t * float) option;
      (* contacts, rotation index, backoff, due *)
  mutable next_full_sync : float;
  full_sync : bool;
  actions : actions;
}

let self t = t.self
let view t = t.view
let incarnation t = t.incarnation
let bootstrapping t = t.bootstrap <> None
let log_length t = Intvec.length t.log_nodes

(* Each entry is pushed O(log live) times fleet-wide per member — the
   classic rumor-mongering budget that makes total dissemination cost
   O(n log n) per change instead of O(n^2). *)
let budget_for t =
  let live = max 2 (View.live_count t.view) in
  let lg = int_of_float (ceil (log (float_of_int live) /. log 2.0)) in
  3 * max 1 lg

let log_append t ~node ~version ~status =
  Intvec.push t.log_nodes node;
  Intvec.push t.log_versions version;
  Intvec.push t.log_statuses status;
  Intvec.push t.log_budgets (budget_for t)

let make_member ~cap ~self ~labels ~rng ~full_sync actions =
  if cap <= 0 then invalid_arg "Member.create: cap must be positive";
  if self < 0 || self >= cap then invalid_arg "Member.create: self out of range";
  {
    self;
    rng;
    view = View.create ~cap ~owner:self ~labels;
    incarnation = 1;
    log_nodes = Intvec.create ();
    log_versions = Intvec.create ();
    log_statuses = Intvec.create ();
    log_budgets = Intvec.create ();
    cursors = Hashtbl.create 16;
    probes = Hashtbl.create 4;
    next_probe = 0.0;
    bootstrap = None;
    next_full_sync = full_sync_interval;
    full_sync;
    actions;
  }

let create_genesis ~cap ~self ~labels ~peers ~rng ~full_sync actions =
  let t = make_member ~cap ~self ~labels ~rng ~full_sync actions in
  Array.iter
    (fun peer ->
      if peer <> self then
        ignore (View.apply t.view ~node:peer ~version:1 ~status:Payload.status_alive))
    peers;
  t

let create_joiner ~cap ~self ~labels ~contacts ~rng ~full_sync actions =
  if Array.length contacts = 0 then invalid_arg "Member.create_joiner: no contacts";
  Array.iter
    (fun contact ->
      if contact < 0 || contact >= cap || contact = self then
        invalid_arg "Member.create_joiner: bad contact")
    contacts;
  let t = make_member ~cap ~self ~labels ~rng ~full_sync actions in
  log_append t ~node:self ~version:1 ~status:Payload.status_alive;
  let backoff = Repro_net.Node.Backoff.create ~rng ~base:2.0 ~cap:16.0 in
  t.bootstrap <- Some (contacts, 0, backoff, 0.0);
  t

(* Merge one remote observation. [relog] gates re-broadcast: gossip and
   join announcements spread further, bootstrap replies do not (the
   joiner must not re-announce the whole fleet). *)
let observe t ~node ~version ~status ~relog =
  if node = t.self && status <> Payload.status_alive && version >= t.incarnation then begin
    (* someone thinks we are gone: refute with a higher incarnation *)
    t.incarnation <- version + 1;
    ignore (View.apply t.view ~node:t.self ~version:t.incarnation ~status:Payload.status_alive);
    log_append t ~node:t.self ~version:t.incarnation ~status:Payload.status_alive
  end
  else
    match View.apply t.view ~node ~version ~status with
    | View.Stale -> ()
    | View.Updated -> if relog then log_append t ~node ~version ~status
    | View.Changed alive ->
      if relog then log_append t ~node ~version ~status;
      t.actions.on_view_change ~target:node ~alive

(* The canonical batch of log entries in [from, len) that still have
   transmission budget: latest observation per node, ascending by node.
   Decrements the budget of every entry it includes. *)
let pending_entries t ~from =
  let len = Intvec.length t.log_nodes in
  if from >= len then [||]
  else begin
    let latest = Hashtbl.create 8 in
    for i = from to len - 1 do
      if Intvec.get t.log_budgets i > 0 then begin
        Intvec.set t.log_budgets i (Intvec.get t.log_budgets i - 1);
        (* later entries for the same node supersede earlier ones *)
        Hashtbl.replace latest (Intvec.get t.log_nodes i)
          { Payload.node = Intvec.get t.log_nodes i;
            version = Intvec.get t.log_versions i;
            status = Intvec.get t.log_statuses i }
      end
    done;
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) latest [] in
    let entries = Array.of_list entries in
    Array.sort (fun a b -> compare a.Payload.node b.Payload.node) entries;
    entries
  end

let advance_cursor t target = Hashtbl.replace t.cursors target (Intvec.length t.log_nodes)

let cursor t target = Option.value (Hashtbl.find_opt t.cursors target) ~default:0

(* Every known node at its current (version, status) — the full-state
   payload for bootstrap replies and the lossy-network backstop. *)
let full_entries t =
  let acc = ref [] in
  View.iter_known t.view (fun node ->
      let status =
        match View.status t.view node with
        | Some s when s = Payload.status_suspect ->
          (* suspicion is local: export the lattice status, not the hunch *)
          Payload.status_alive
        | Some s -> s
        | None -> assert false
      in
      acc := { Payload.node; version = View.version t.view node; status } :: !acc);
  let entries = Array.of_list !acc in
  Array.sort (fun a b -> compare a.Payload.node b.Payload.node) entries;
  entries

let gossip t =
  match View.random_live t.view t.rng with
  | None -> ()
  | Some target ->
    let entries = pending_entries t ~from:(cursor t target) in
    advance_cursor t target;
    if Array.length entries > 0 then
      t.actions.send ~dst:target (Payload.Share (Payload.Updates { full = false; entries }))

let send_bootstrap t ~now ~dst contacts idx backoff =
  (* [full = false]: the payload is the joiner's lone self-announcement,
     not a full state — which also lets the runtime's traffic classifier
     tell bootstrap requests from periodic full-sync pushes *)
  let entries =
    [| { Payload.node = t.self; version = t.incarnation; status = Payload.status_alive } |]
  in
  t.actions.send ~dst (Payload.Exchange (Payload.Updates { full = false; entries }));
  t.bootstrap <- Some (contacts, idx, backoff, now +. Repro_net.Node.Backoff.next backoff)

let probe_timeouts t ~now =
  let suspects = ref [] and deaths = ref [] and reprobes = ref [] in
  Hashtbl.iter
    (fun target state ->
      match state with
      | Waiting deadline when now > deadline -> suspects := target :: !suspects
      | Suspected deadline when now > deadline -> deaths := target :: !deaths
      | Suspected _ -> reprobes := target :: !reprobes
      | Waiting _ -> ())
    t.probes;
  (* keep probing through the suspicion window: confirming a death then
     requires every probe of the window to go unanswered, so a single
     lost ack cannot produce a false verdict *)
  List.iter (fun target -> t.actions.send ~dst:target Payload.Probe) !reprobes;
  List.iter
    (fun target ->
      Hashtbl.replace t.probes target (Suspected (now +. dead_after));
      t.actions.send ~dst:target Payload.Probe;
      if View.suspect t.view target then t.actions.on_suspect ~target)
    !suspects;
  List.iter
    (fun target ->
      Hashtbl.remove t.probes target;
      let version = View.version t.view target in
      observe t ~node:target ~version ~status:Payload.status_down ~relog:true;
      t.actions.on_retire ~target)
    !deaths

let maybe_probe t ~now =
  if now >= t.next_probe then begin
    t.next_probe <- now +. probe_interval;
    match View.random_live t.view t.rng with
    | Some target when not (Hashtbl.mem t.probes target) ->
      Hashtbl.replace t.probes target (Waiting (now +. suspect_after));
      t.actions.send ~dst:target Payload.Probe
    | Some _ | None -> ()
  end

let maybe_full_sync t ~now =
  if t.full_sync && now >= t.next_full_sync then begin
    t.next_full_sync <- now +. full_sync_interval;
    match View.random_live t.view t.rng with
    | None -> ()
    | Some target ->
      advance_cursor t target;
      (* push-pull, like bootstrap: the Exchange both delivers our state
         and solicits the peer's full Reply. A push-only sync would let
         a member serve the fleet while staying stale itself — it would
         heal only when someone else's sync happened to land on it,
         which at fleet size n is an expected n/2 intervals away. *)
      t.actions.send ~dst:target
        (Payload.Exchange (Payload.Updates { full = true; entries = full_entries t }))
  end

let step t ~now =
  (match t.bootstrap with
  | Some (contacts, idx, backoff, due) when now >= due ->
    (* re-aim at any live peer learned since; failing that, rotate the
       contact list — so one contact churning out mid-bootstrap cannot
       strand the joiner on a dead address forever *)
    let dst =
      match View.random_live t.view t.rng with
      | Some c -> c
      | None -> contacts.(idx mod Array.length contacts)
    in
    send_bootstrap t ~now ~dst contacts (idx + 1) backoff
  | Some _ | None -> ());
  if t.bootstrap = None then begin
    probe_timeouts t ~now;
    maybe_probe t ~now;
    maybe_full_sync t ~now
  end;
  gossip t

let apply_updates t ~relog (u : Payload.update array) =
  Array.iter (fun e -> observe t ~node:e.Payload.node ~version:e.version ~status:e.status ~relog) u

let deliver t ~src ~now payload =
  (* any message is proof of life *)
  Hashtbl.remove t.probes src;
  ignore (View.unsuspect t.view src);
  (* a message from a node we hold down means our verdict is wrong (or
     stale): send the verdict back so the accused can refute it with a
     higher incarnation — the self-healing path for false positives *)
  (match View.status t.view src with
  | Some s when s = Payload.status_down ->
    let entry =
      { Payload.node = src; version = View.version t.view src; status = Payload.status_down }
    in
    t.actions.send ~dst:src (Payload.Share (Payload.Updates { full = false; entries = [| entry |] }))
  | Some _ | None -> ());
  match (payload : Payload.t) with
  | Probe ->
    (* the reply is the ack; piggyback whatever the prober has not seen *)
    let entries = pending_entries t ~from:(cursor t src) in
    advance_cursor t src;
    t.actions.send ~dst:src (Payload.Reply (Payload.Updates { full = false; entries }))
  | Exchange (Payload.Updates u) ->
    (* push-pull state exchange (a joiner's bootstrap, or a peer's
       periodic full sync): learn what the sender knows — spreading any
       news — and answer with our whole view *)
    apply_updates t ~relog:true u.entries;
    advance_cursor t src;
    t.actions.send ~dst:src (Payload.Reply (Payload.Updates { full = true; entries = full_entries t }))
  | Reply (Payload.Updates u) when u.full ->
    apply_updates t ~relog:false u.entries;
    if t.bootstrap <> None then begin
      t.bootstrap <- None;
      t.next_full_sync <- now +. full_sync_interval
    end
  | Share (Payload.Updates u) | Reply (Payload.Updates u) -> apply_updates t ~relog:true u.entries
  | Share _ | Exchange _ | Reply _ | Halt ->
    (* one-shot discovery payloads are not part of the service protocol *)
    ()

let leave t =
  let entry =
    { Payload.node = t.self; version = t.incarnation; status = Payload.status_down }
  in
  log_append t ~node:t.self ~version:t.incarnation ~status:Payload.status_down;
  let targets = Knowledge.random_known_among (View.knowledge t.view) t.rng ~k:leave_fanout in
  let payload = Payload.Share (Payload.Updates { full = false; entries = [| entry |] }) in
  let sent = ref 0 in
  Array.iter
    (fun target ->
      if View.is_live t.view target then begin
        t.actions.send ~dst:target payload;
        incr sent
      end)
    targets;
  if !sent = 0 then
    (* no live peer in the sample: fall back to anyone live *)
    match View.random_live t.view t.rng with
    | Some target -> t.actions.send ~dst:target payload
    | None -> ()
