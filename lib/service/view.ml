open Repro_util
open Repro_discovery

(* Status bytes mirror the wire encoding; 255 marks never-observed so
   the whole array initialises with one Bytes.make. *)
let unknown = 255

type t = {
  knowledge : Knowledge.t;
  statuses : Bytes.t;
  mutable live : int;  (* known nodes whose status is alive or suspect *)
}

type applied = Stale | Updated | Changed of bool

let create ~cap ~owner ~labels =
  let knowledge = Knowledge.create ~n:cap ~owner ~labels () in
  ignore (Knowledge.observe_version knowledge ~node:owner ~version:1);
  let statuses = Bytes.make cap (Char.chr unknown) in
  Bytes.set statuses owner (Char.chr Payload.status_alive);
  { knowledge; statuses; live = 1 }

let knowledge t = t.knowledge
let owner t = Knowledge.owner t.knowledge

let raw_status t node =
  if node < 0 || node >= Bytes.length t.statuses then invalid_arg "View.status: out of range";
  Char.code (Bytes.get t.statuses node)

let status t node =
  let s = raw_status t node in
  if s = unknown then None else Some s

let version t node = Knowledge.node_version t.knowledge node
let live_status s = s = Payload.status_alive || s = Payload.status_suspect
let is_live t node = live_status (raw_status t node)
let live_count t = t.live

let set_status t node status =
  let was = live_status (raw_status t node) in
  let now = live_status status in
  Bytes.set t.statuses node (Char.chr status);
  if was && not now then t.live <- t.live - 1
  else if now && not was then t.live <- t.live + 1;
  if was = now then Updated else Changed now

let apply t ~node ~version ~status =
  if node < 0 || node >= Bytes.length t.statuses then invalid_arg "View.apply: node out of range";
  if version < 0 then invalid_arg "View.apply: negative version";
  if status < 0 || status > Payload.status_down then invalid_arg "View.apply: unknown status";
  let cur_v = Knowledge.node_version t.knowledge node in
  let cur_s = raw_status t node in
  let stronger =
    if cur_s = unknown then true
    else version > cur_v || (version = cur_v && status > cur_s)
  in
  if not stronger then Stale
  else begin
    ignore (Knowledge.add t.knowledge node);
    ignore (Knowledge.observe_version t.knowledge ~node ~version);
    set_status t node status
  end

let suspect t node =
  raw_status t node = Payload.status_alive
  && (Bytes.set t.statuses node (Char.chr Payload.status_suspect);
      true)

let unsuspect t node =
  raw_status t node = Payload.status_suspect
  && (Bytes.set t.statuses node (Char.chr Payload.status_alive);
      true)

let random_live t rng =
  if t.live <= 1 then None
  else begin
    (* the known set is mostly live in steady state, so rejection
       sampling almost always lands within a draw or two *)
    let found = ref (-1) in
    let attempts = ref 0 in
    while !found < 0 && !attempts < 8 do
      incr attempts;
      match Knowledge.random_known t.knowledge rng with
      | Some v when is_live t v -> found := v
      | Some _ | None -> ()
    done;
    if !found >= 0 then Some !found
    else begin
      (* retirement-heavy view: fall back to a uniform choice over an
         explicit enumeration of the live non-owners *)
      let self = owner t in
      let live = ref [] in
      let count = ref 0 in
      Knowledge.iter_known t.knowledge (fun v ->
          if v <> self && is_live t v then begin
            live := v :: !live;
            incr count
          end);
      if !count = 0 then None
      else begin
        let k = Rng.int rng !count in
        let rec nth l i = match l with [] -> assert false | x :: tl -> if i = 0 then x else nth tl (i - 1) in
        Some (nth !live k)
      end
    end
  end

(* Up to [k] distinct live nodes, excluding the owner and [exclude] —
   the intermediary sample of an indirect-probe round. Rejection
   sampling first (the known set is mostly live in steady state), then
   a linear enumeration fallback like [random_live]. *)
let random_live_sample t rng ~k ~exclude =
  if k <= 0 || t.live <= 1 then [||]
  else begin
    let self = owner t in
    let picked = Array.make k (-1) in
    let count = ref 0 in
    let mem v =
      let rec go i = i < !count && (picked.(i) = v || go (i + 1)) in
      go 0
    in
    let attempts = ref 0 in
    while !count < k && !attempts < 8 * k do
      incr attempts;
      match Knowledge.random_known t.knowledge rng with
      | Some v when v <> self && v <> exclude && is_live t v && not (mem v) ->
        picked.(!count) <- v;
        incr count
      | Some _ | None -> ()
    done;
    if !count < k then begin
      (* sparse live set: enumerate the candidates and take a uniform
         draw-without-replacement over what the sampler missed *)
      let rest = ref [] in
      let rest_n = ref 0 in
      Knowledge.iter_known t.knowledge (fun v ->
          if v <> self && v <> exclude && is_live t v && not (mem v) then begin
            rest := v :: !rest;
            incr rest_n
          end);
      let rest = Array.of_list !rest in
      (* Fisher-Yates over the remainder, stopping once [picked] fills *)
      let n = !rest_n in
      let i = ref 0 in
      while !count < k && !i < n do
        let j = !i + Rng.int rng (n - !i) in
        let v = rest.(j) in
        rest.(j) <- rest.(!i);
        rest.(!i) <- v;
        incr i;
        picked.(!count) <- v;
        incr count
      done
    end;
    Array.sub picked 0 !count
  end

let iter_known t f = Knowledge.iter_known t.knowledge f
