(** One participant of the continuous discovery service.

    A member generalises the one-shot discovery node into a long-lived
    SWIM-style process with three interleaved duties, all driven by
    {!step} (once per virtual tick) and {!deliver} (per message):

    - {b anti-entropy gossip}: every local membership observation is
      appended to an append-only update log; each tick the member picks
      a random live peer and pushes it the log suffix that peer has not
      seen (a per-target cursor), as a versioned
      {!Repro_discovery.Payload.Updates} batch. Each entry carries a
      transmission budget of [O(log live)] sends, so a change costs
      [O(log n)] messages per member in total and a quiet fleet sends
      {e nothing} — steady-state traffic scales with the churn rate,
      not the fleet size.
    - {b liveness probing}: a periodic probe to a random live peer. An
      unanswered direct probe escalates to an {e indirect-probe round}
      ([Probe_req] to up to [indirect_k] random live intermediaries,
      answered by nonce-correlated [Probe_ack]s), so one lost link no
      longer convicts a healthy node. Only when the indirect round also
      goes silent does the member open the {e suspicion sub-protocol}:
      the target is marked suspect locally, a [Suspicion] claim is sent
      to a few peers — each corroborates only from its own probe
      evidence — and the refutation window starts {e wide}
      ([dead_after] ticks), shrinking toward a floor as independent
      confirmations arrive. Expiry convicts the target [down] at the
      incarnation that was suspected — the one verdict that is
      gossiped; a fresher incarnation makes it stale. A falsely accused
      member refutes by bumping its incarnation ({e self-refutation}),
      which outranks the accusation on the [(version, status)] lattice.
    - {b local health} (lifeguard-style): a saturating counter of
      recent evidence that the member's {e own} probes fail broadly
      (timeouts, refuted suspicions); the multiplier it induces
      (1x..3x) widens all of that member's liveness timeouts. A node on
      the minority side of a partition sees every probe fail, saturates
      its health counter, and slows its convictions instead of spraying
      down verdicts at the unreachable majority.
    - {b bootstrap}: a joiner knows a few live contacts; it retries a
      state exchange (decorrelated-jitter backoff), rotating through the
      contact list — so one contact churning out mid-bootstrap cannot
      strand it — and re-aiming at any live peer it has learned of
      meanwhile, until a full reply arrives. Bootstrap replies are
      merged without re-logging: the joiner must not re-broadcast the
      whole fleet.

    An optional push-pull full-state sync every {!full_sync_interval}
    ticks (enabled whenever an update could die in flight: lossy
    networks, or any churn at all) repairs any update whose every
    transmission was unlucky — including facts that finished
    disseminating while a joiner's bootstrap snapshot was in flight. *)

open Repro_util
open Repro_discovery

type actions = {
  send : dst:int -> Payload.t -> unit;  (** hand a message to the runtime *)
  on_suspect : target:int -> unit;
  on_retire : target:int -> unit;
  on_view_change : target:int -> alive:bool -> unit;
      (** the membership {e classification} of [target] flipped — the
          hook the runtime's convergence observer keys on *)
}

type t

val probe_interval : float

val suspect_after : float
(** Direct-probe window (base, before the local-health multiplier):
    silence past it escalates to the indirect round. *)

val indirect_after : float
(** Indirect-round window (base): silence past it opens suspicion. *)

val dead_after : float
(** The uncorroborated suspicion window (base) — the refutation window
    starts here and shrinks toward a floor of [suspicion_min] as
    independent confirmations arrive. *)

val full_sync_interval : float

val create_genesis :
  cap:int -> self:int -> labels:int array -> peers:int array -> rng:Rng.t ->
  full_sync:bool -> ?indirect_k:int -> ?lifeguard:bool -> actions -> t
(** A founding member: starts with every [peer] (and itself) alive at
    version 1 and an empty log — the genesis membership is common
    knowledge, not news. [indirect_k] (default 2) is the number of
    intermediaries asked per indirect-probe round; 0 disables the round
    (a direct timeout suspects immediately, the pre-lifeguard
    behaviour). [lifeguard] (default true) enables the local-health
    multiplier; off, all timeouts stay at their base values. *)

val create_joiner :
  cap:int -> self:int -> labels:int array -> contacts:int array -> rng:Rng.t ->
  full_sync:bool -> ?indirect_k:int -> ?lifeguard:bool -> actions -> t
(** A late joiner: knows only itself (incarnation 1) and the addresses
    of a few [contacts] to bootstrap from (tried in rotation). Its own
    join announcement is the first entry of its log.
    @raise Invalid_argument if [contacts] is empty or contains [self]
    or an out-of-range id. *)

val self : t -> int
val view : t -> View.t
val incarnation : t -> int
val bootstrapping : t -> bool

val health : t -> int
(** Current local-health score, 0 (healthy) to 4 (every recent probe
    failed); always 0 with [lifeguard:false]. The induced timeout
    multiplier is [1 + health/2]. *)

val step : t -> now:float -> unit
(** One activation at virtual time [now]: fire due bootstrap retries,
    probe timeouts (indirect escalation / suspicion / retirement), the
    periodic probe, the full-sync backstop, and one gossip push. *)

val deliver : t -> src:int -> now:float -> Payload.t -> unit
(** Handle one message. Any message from [src] doubles as proof of life:
    it cancels an outstanding probe or suspicion of [src], clears local
    suspicion, and answers any pending indirect-probe vouches for
    [src]. *)

val leave : t -> unit
(** Graceful departure: push a [down] verdict at the member's own
    incarnation to up to three live peers, so the fleet learns of the
    departure without waiting for failure detection. The member must
    not be stepped afterwards. *)

val log_length : t -> int
(** Update-log length (diagnostics). *)
