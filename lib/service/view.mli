(** A member's view of the fleet: knowledge plus per-node liveness.

    The view extends a {!Repro_discovery.Knowledge.t} (which contributes
    the known-id set, the per-node version vector and uniform sampling)
    with a status byte per node. Remote observations go through
    {!apply}, which resolves conflicts on the [(version, status)]
    lattice of {!Repro_discovery.Payload}: a higher version always wins,
    and at equal versions the more pessimistic status does, so a down
    verdict sticks until the node itself refutes it with a higher
    incarnation.

    Failure-detector suspicion is deliberately {e not} on that lattice:
    {!suspect}/{!unsuspect} flip a node between alive and suspect
    locally without touching its version, so an unanswered probe never
    poisons the gossip stream — only a confirmed [down] (applied at the
    suspect's version) is shared. A suspected node still counts as live
    ({!is_live}): suspicion is a hypothesis, not a verdict. *)

open Repro_util
open Repro_discovery

type t

type applied =
  | Stale  (** the view already holds something at least as strong *)
  | Updated  (** recorded, liveness class unchanged *)
  | Changed of bool  (** recorded, and the node is now live iff [true] *)

val create : cap:int -> owner:int -> labels:int array -> t
(** A fresh view over the id universe [0 .. cap-1] knowing only its
    owner, alive at version 1. [labels] is shared across the fleet (see
    {!Repro_discovery.Knowledge.create}). *)

val knowledge : t -> Knowledge.t
val owner : t -> int

val status : t -> int -> int option
(** Wire status of a node ({!Repro_discovery.Payload.status_alive} /
    [status_suspect] / [status_down]), or [None] when never observed. *)

val version : t -> int -> int
(** Highest observed incarnation of a node; 0 when never observed. *)

val is_live : t -> int -> bool
(** Known and not down — the membership classification the convergence
    invariant compares against the true fleet. *)

val live_count : t -> int

val apply : t -> node:int -> version:int -> status:int -> applied
(** Merge one remote observation under the [(version, status)]
    lattice. Adds the node to the knowledge set and records its version
    when accepted.
    @raise Invalid_argument on an out-of-range node, negative version
    or unknown status. *)

val suspect : t -> int -> bool
(** Locally mark an alive node as suspected; [true] iff it changed.
    No-op (false) on unknown, down or already-suspect nodes. *)

val unsuspect : t -> int -> bool
(** Clear a local suspicion (the node answered); [true] iff it was
    suspect. *)

val random_live : t -> Rng.t -> int option
(** A uniformly random live node other than the owner; [None] when the
    owner is the only live node it knows. A few rejection-sampling
    draws over the known set, then a linear scan fallback when the view
    is dominated by retired nodes. *)

val random_live_sample : t -> Rng.t -> k:int -> exclude:int -> int array
(** Up to [k] {e distinct} live nodes, excluding the owner and
    [exclude] — the intermediary sample of an indirect-probe round.
    Shorter than [k] (possibly empty) when the view does not hold that
    many other live nodes. *)

val iter_known : t -> (int -> unit) -> unit
(** Iterate every known id (including down nodes and the owner). *)
