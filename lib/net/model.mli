(** Bounded exhaustive exploration of {!Node_core} interleavings.

    The live-path protocol core is a pure state machine over an abstract
    clock, which makes it model-checkable: this module drives [n] cores
    (flooding on a path topology, so completion requires genuine
    multi-hop relay) with every frame captured into explicit per-link
    in-flight queues, and enumerates {e all} schedules of a bounded
    length over the moves

    - [Tick v] — one algorithm activation on node [v],
    - [Deliver (s,d,i)] — hand node [d] the [i]-th frame in flight from
      [s] (an [i > 0] models reordering, up to [reorder_width]),
    - [Pump v] — fire [v]'s due retransmission timeouts (offered only
      when a deadline has passed; the clock advances one unit per move),
    - [Crash v] / [Restart v] — kill a core and later boot a fresh
      incarnation ([announce] set, stale frames still deliverable),
      offered only while fewer than [max_crashes] crashes happened.

    After {e every} move of {e every} schedule the go-back-N window
    invariants are asserted (sequence numbering starts at 1, the
    out-of-order set sits strictly above the cumulative mark without
    duplicates, and — when no crash can have reset a link — a sender's
    [base_seq] never leads the peer's acknowledged mark by more than
    one). Each complete schedule then gets a deterministic drain
    (revive, deliver everything, tick and pump fairly) after which every
    node must reach complete knowledge — so lost completions, handshake
    deadlocks and window corruption all surface as a named violation
    with the offending move sequence attached.

    Cores are not forkable, so the DFS replays each path from a fresh
    boot; with the bounded depths and budgets used by the test suite
    this enumerates tens of thousands of interleavings in seconds. *)

type move =
  | Tick of int
  | Deliver of { src : int; dst : int; index : int }
  | Pump of int
  | Crash of int
  | Restart of int

val pp_move : Format.formatter -> move -> unit

type config = {
  n : int;  (** fleet size (path topology); at least 2 *)
  depth : int;  (** moves per explored schedule *)
  reorder_width : int;  (** how deep into a queue [Deliver] may reach *)
  max_crashes : int;  (** crash moves allowed per schedule; 0 disables *)
  max_leaves : int;  (** budget: stop after this many complete schedules *)
  seed : int;
}

val default : config
(** [n = 2], depth 8, reorder width 2, no crashes, 4000-leaf budget. *)

type stats = {
  interleavings : int;  (** complete schedules explored (and drained) *)
  moves : int;  (** total moves applied, including replay *)
  truncated : bool;  (** the leaf budget cut the tree short *)
}

val explore : config -> (stats, string) result
(** Run the exploration. [Error msg] carries the violated invariant and
    the move sequence that reached it.
    @raise Invalid_argument on a nonsensical config. *)
