(** The execution backend of the live path, as a first-class type.

    Every way of running a discovery deployment "for real" — in-process
    against the async oracle, one OS process per node over sockets, or
    thousands of multiplexed node instances inside one process — is one
    constructor here. {!Cluster}, {!Chaos} and the CLIs consume this
    type directly; the only string forms are {!of_string}/{!to_string},
    so adding a backend is a one-variant change instead of a hunt
    through scattered [--transport] plumbing.

    - {!Loopback}: in-process and deterministic; scheduling delegates to
      {!Repro_engine.Async_sim}, so a loopback run is byte-identical
      (trace-diff clean) to the simulator.
    - [Process Uds] / [Process Tcp]: one forked OS process per node,
      real sockets, wall-clock time ({!Node}).
    - {!Mux}: every node hosted as a {!Node_core} instance inside one
      process ({!Mux}) — full wire stack (codec, envelope, go-back-N,
      fault shim) on a deterministic virtual clock, so it scales to
      thousands of nodes {e and} is trace-identical to [Loopback]. *)

type proto = Uds | Tcp  (** address family of the process-per-node backend *)

type t = Loopback | Process of proto | Mux

val all : t list
(** Every backend, in [of_string] spelling order. *)

val to_string : t -> string
(** ["loopback"], ["uds"], ["tcp"] or ["mux"] — the CLI spelling. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; also accepts a few aliases ([unix],
    [process:uds], …). The error message lists the canonical names. *)

val is_live : t -> bool
(** Does the backend exercise the real wire stack (envelope framing,
    go-back-N, fault shim)? [false] only for {!Loopback}. *)

val description : t -> string
(** One-line human description (the README backend matrix). *)
