open Repro_util
open Repro_engine
open Repro_discovery

let hello_interval = 50
let done_interval = 5

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;
  neighbors : int array;
  tick_period : float;
  rto : float;
  fault : Fault.t;
  announce : bool;
  encoding : Wire.encoding;
  fleet_halt : bool;
}

type actions = {
  emit : now:float -> Trace.event -> unit;
  xmit : now:float -> dst:int -> bytes -> unit;
  notify_complete : now:float -> tick:int -> unit;
  wake : dst:int -> unit;
}

type status = Up | Down | Dead

(* Outgoing link to one peer. Data payloads live in [sendbuf] from the
   moment they are sent until the peer's cumulative ack covers them;
   frames are (re)encoded at transmission time so sequence numbers and
   piggybacked acks are always current. [base_seq] is the sequence number
   of the frame at the queue's front. *)
type frame = { stamp : int; body : bytes; mutable txed : bool }

type link = {
  mutable status : status;
  sendbuf : frame Queue.t;
  mutable base_seq : int;
  mutable rto_at : float;
  mutable recv_cum : int;  (** highest contiguous data seq received from this peer *)
  mutable recv_early : int list;  (** seqs above [recv_cum + 1] already delivered (gap pending) *)
  mutable ack_owed : bool;
  mutable hello_owed : bool;
  mutable done_owed : bool;
  mutable peer_done : bool;  (** peer has signalled complete knowledge *)
}

type t = {
  cfg : config;
  acts : actions;
  inst : Algorithm.instance;
  links : link array;
  fn : Faultnet.t option;
  byz : int list;  (** ids this node fabricates into every data payload *)
  auditing : bool;
  mutable tick_count : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pointers : int;
  mutable bytes : int;
  mutable decode_errors : int;
  mutable retransmits : int;
  mutable corrupt_frames : int;
  mutable complete_tick : int option;
  mutable complete_announced : bool;
  mutable done_known : int;  (** peers currently marked [peer_done] *)
  mutable last_activity : float;
}

let tick_count t = t.tick_count
let instance t = t.inst
let is_complete t = t.complete_announced
let last_activity t = t.last_activity
let fleet_done t = t.complete_announced && t.done_known = t.cfg.n - 1
let link_status t ~dst = t.links.(dst).status

let wants_link t ~dst =
  let link = t.links.(dst) in
  (not (Queue.is_empty link.sendbuf)) || link.ack_owed || link.hello_owed || link.done_owed

let note_corrupt_frame t = t.corrupt_frames <- t.corrupt_frames + 1
let note_decode_error t = t.decode_errors <- t.decode_errors + 1

(* Every encoded frame to a peer passes through the fault shim when one
   is active; the shim calls [queue] zero, one or two times. *)
let queue_frame t ~now ~dst frame =
  match t.fn with
  | None -> t.acts.xmit ~now ~dst frame
  | Some fn -> Faultnet.send fn ~now ~dst frame ~queue:(fun f -> t.acts.xmit ~now ~dst f)

(* (Re)transmit data frames on an up link: all of them when [resend]
   (fresh connection or retransmission timeout), otherwise only frames
   never yet put on the wire. Acks ride along for free. *)
let transmit_data t ~now dst ~resend =
  let link = t.links.(dst) in
  match link.status with
  | Up ->
    let any = ref false in
    let seq = ref link.base_seq in
    Queue.iter
      (fun f ->
        if resend || not f.txed then begin
          if f.txed then t.retransmits <- t.retransmits + 1;
          queue_frame t ~now ~dst
            (Envelope.encode
               {
                 Envelope.kind = Envelope.Data;
                 src = t.cfg.node;
                 stamp = f.stamp;
                 seq = !seq;
                 ack = link.recv_cum;
                 comp = t.complete_announced;
                 body = f.body;
               });
          f.txed <- true;
          any := true
        end;
        incr seq)
      link.sendbuf;
    if !any then begin
      link.ack_owed <- false;
      link.rto_at <- now +. t.cfg.rto
    end
  | Down | Dead -> ()

let send_bare t ~now ~dst kind ~ack =
  let link = t.links.(dst) in
  match link.status with
  | Up ->
    queue_frame t ~now ~dst
      (Envelope.encode
         {
           Envelope.kind;
           src = t.cfg.node;
           stamp = t.tick_count;
           seq = 0;
           ack;
           comp = t.complete_announced;
           body = Bytes.empty;
         })
  | Down | Dead -> ()

(* Termination gossip: a bare frame saying "my knowledge is complete".
   It doubles as a cumulative ack (it carries one for free). *)
let send_done t ~now ~dst =
  let link = t.links.(dst) in
  match link.status with
  | Up ->
    send_bare t ~now ~dst Envelope.Done ~ack:link.recv_cum;
    link.done_owed <- false;
    link.ack_owed <- false
  | Down ->
    link.done_owed <- true;
    t.acts.wake ~dst
  | Dead -> ()

let drop_link_frames t ~now dst count =
  for _ = 1 to count do
    t.dropped <- t.dropped + 1;
    t.acts.emit ~now (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
  done

(* The runtime has given up reaching [dst]: everything queued for it is
   accounted as dropped and the link stops accepting traffic. *)
let link_dead t ~now ~dst =
  let link = t.links.(dst) in
  drop_link_frames t ~now dst (Queue.length link.sendbuf);
  Queue.clear link.sendbuf;
  link.ack_owed <- false;
  link.hello_owed <- false;
  link.done_owed <- false;
  link.status <- Dead

let link_down t ~dst =
  let link = t.links.(dst) in
  match link.status with Up | Down -> link.status <- Down | Dead -> ()

(* The transport (re)established the path to [dst]: greet if owed, then
   assume anything unacked died in transit and resend the lot. *)
let link_up t ~now ~dst =
  let link = t.links.(dst) in
  link.status <- Up;
  if link.hello_owed then begin
    send_bare t ~now ~dst Envelope.Hello ~ack:0;
    link.hello_owed <- false
  end;
  transmit_data t ~now dst ~resend:true;
  if link.done_owed then send_done t ~now ~dst;
  if link.ack_owed then begin
    send_bare t ~now ~dst Envelope.Ack ~ack:link.recv_cum;
    link.ack_owed <- false
  end

(* deliver a payload locally (self-sends skip the network entirely) *)
let deliver t ~now ~src payload =
  t.delivered <- t.delivered + 1;
  t.last_activity <- now;
  t.acts.emit ~now (Trace.Deliver { src; dst = t.cfg.node });
  (if t.auditing then
     match Adversary.payload_ids payload with
     | Some ids -> t.acts.emit ~now (Trace.Content { src; dst = t.cfg.node; ids })
     | None -> ());
  t.inst.Algorithm.receive ~src payload

let announce_if_complete t ~now =
  if (not t.complete_announced) && Knowledge.is_complete t.inst.Algorithm.knowledge then begin
    t.complete_announced <- true;
    t.complete_tick <- Some t.tick_count;
    t.acts.notify_complete ~now ~tick:t.tick_count
  end

let send_payload t ~now ~dst payload =
  if dst < 0 || dst >= t.cfg.n then invalid_arg "Node_core.send: destination out of range";
  let payload =
    match t.byz with [] -> payload | ids -> Adversary.inject ~universe:t.cfg.n payload ids
  in
  let pointers = Payload.measure payload in
  let body = Wire.encode t.cfg.encoding ~universe:t.cfg.n payload in
  t.sent <- t.sent + 1;
  t.pointers <- t.pointers + pointers;
  t.bytes <- t.bytes + Bytes.length body;
  t.acts.emit ~now (Trace.Send { src = t.cfg.node; dst; pointers; bytes = Bytes.length body });
  if dst = t.cfg.node then deliver t ~now ~src:t.cfg.node payload
  else begin
    let link = t.links.(dst) in
    match link.status with
    | Dead ->
      t.dropped <- t.dropped + 1;
      t.acts.emit ~now (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
    | Up ->
      Queue.push { stamp = t.tick_count; body; txed = false } link.sendbuf;
      transmit_data t ~now dst ~resend:false
    | Down ->
      Queue.push { stamp = t.tick_count; body; txed = false } link.sendbuf;
      t.acts.wake ~dst
  end

(* One unsolicited hello to [dst]: announce this (possibly fresh)
   incarnation so the peer voids any go-back-N state it still holds
   from a predecessor of this node id. Revives a link this side had
   written off — the peer evidently matters again. *)
let greet t ~now ~dst =
  if dst <> t.cfg.node then begin
    let link = t.links.(dst) in
    (match link.status with
    | Dead ->
      link.status <- Down;
      t.acts.wake ~dst
    | Up | Down -> ());
    match link.status with
    | Up ->
      send_bare t ~now ~dst Envelope.Hello ~ack:0;
      link.hello_owed <- false
    | Down ->
      link.hello_owed <- true;
      t.acts.wake ~dst
    | Dead -> ()
  end

let send = send_payload

let request_hellos t ~now =
  Array.iter
    (fun dst ->
      if dst <> t.cfg.node then begin
        let link = t.links.(dst) in
        match link.status with
        | Up ->
          send_bare t ~now ~dst Envelope.Hello ~ack:0;
          link.hello_owed <- false
        | Down ->
          link.hello_owed <- true;
          t.acts.wake ~dst
        | Dead -> ()
      end)
    t.cfg.neighbors

let tick t ~now =
  if not (t.cfg.fleet_halt && fleet_done t) then begin
    t.tick_count <- t.tick_count + 1;
    t.acts.emit ~now (Trace.Tick { node = t.cfg.node; time = now; count = t.tick_count });
    (* a restarted node keeps announcing itself until its knowledge is
       whole again, in case an earlier hello (or its reply) was lost *)
    if t.cfg.announce && (not t.complete_announced) && t.tick_count mod hello_interval = 0 then
      request_hellos t ~now;
    t.inst.Algorithm.round ~round:t.tick_count
      ~send:(fun ~dst payload -> send_payload t ~now ~dst payload);
    announce_if_complete t ~now;
    (* termination gossip: a complete node periodically probes the peers
       it has not yet heard completion from, until the whole fleet is
       known complete (and this node may stop ticking) *)
    if
      t.cfg.fleet_halt && t.complete_announced
      && (not (fleet_done t))
      && t.tick_count mod done_interval = 0
    then
      for dst = 0 to t.cfg.n - 1 do
        if dst <> t.cfg.node && not t.links.(dst).peer_done then send_done t ~now ~dst
      done
  end

(* Pop everything the peer's cumulative ack covers. *)
let apply_ack t ~now ~src ack =
  let link = t.links.(src) in
  let advanced = ref false in
  while (not (Queue.is_empty link.sendbuf)) && link.base_seq <= ack do
    ignore (Queue.pop link.sendbuf);
    link.base_seq <- link.base_seq + 1;
    advanced := true
  done;
  if Queue.is_empty link.sendbuf then link.rto_at <- infinity
  else if !advanced then link.rto_at <- now +. t.cfg.rto

let clear_peer_done t link =
  if link.peer_done then begin
    link.peer_done <- false;
    t.done_known <- t.done_known - 1
  end

(* [src] has evidence of complete knowledge. First news from a peer that
   arrived as an explicit Done probe gets one Done reply (if we are
   complete ourselves), so both sides learn of each other even when
   neither has data traffic left; re-probing covers lost replies. *)
let mark_peer_done t ~now ~src ~probe =
  let link = t.links.(src) in
  if not link.peer_done then begin
    link.peer_done <- true;
    t.done_known <- t.done_known + 1;
    if probe && t.cfg.fleet_halt && t.complete_announced then send_done t ~now ~dst:src
  end

(* A hello announces a fresh incarnation of [src]: whatever sequence
   state we shared with the previous one is void. Reset both directions,
   revive the link if we had written the peer off, and hand the newcomer
   our whole identifier set so it can rebuild its knowledge. *)
let handle_hello t ~now ~src =
  let link = t.links.(src) in
  (match link.status with
  | Dead ->
    link.status <- Down;
    t.acts.wake ~dst:src
  | Up | Down -> ());
  link.base_seq <- 1;
  Queue.iter (fun f -> f.txed <- false) link.sendbuf;
  link.rto_at <- (if Queue.is_empty link.sendbuf then infinity else 0.0);
  link.recv_cum <- 0;
  link.recv_early <- [];
  link.ack_owed <- false;
  (* the fresh incarnation starts from scratch: its predecessor's
     completion claim no longer stands *)
  clear_peer_done t link;
  send_payload t ~now ~dst:src
    (Payload.Share (Payload.Bits (Knowledge.snapshot t.inst.Algorithm.knowledge)))

let handle_frame t ~now (env : Envelope.t) =
  if env.Envelope.src < 0 || env.Envelope.src >= t.cfg.n || env.Envelope.src = t.cfg.node then
    t.decode_errors <- t.decode_errors + 1
  else begin
    let src = env.Envelope.src in
    let link = t.links.(src) in
    (match env.Envelope.kind with
    | Envelope.Hello -> ()  (* a hello resets peer state below; its comp flag is moot *)
    | Envelope.Data | Envelope.Ack | Envelope.Done ->
      if env.Envelope.comp then
        mark_peer_done t ~now ~src ~probe:(env.Envelope.kind = Envelope.Done));
    match env.Envelope.kind with
    | Envelope.Ack | Envelope.Done -> apply_ack t ~now ~src env.Envelope.ack
    | Envelope.Hello -> handle_hello t ~now ~src
    | Envelope.Data ->
      apply_ack t ~now ~src env.Envelope.ack;
      link.ack_owed <- true;
      (* Deliver-on-arrival with dedup: the discovery channel model is
         non-FIFO (the async oracle draws an independent latency per
         message), so a frame that overtakes its predecessor is handed
         to the algorithm immediately — holding it for in-order delivery
         would make the live runtimes observably more ordered than the
         semantics they certify against. [recv_cum] still only advances
         contiguously: it is the cumulative ack mark, and the sender's
         go-back-N retransmission fills the gaps, deduplicated here. *)
      let seq = env.Envelope.seq in
      let fresh = seq > link.recv_cum && not (List.mem seq link.recv_early) in
      if fresh then begin
        link.recv_early <- seq :: link.recv_early;
        while List.mem (link.recv_cum + 1) link.recv_early do
          link.recv_cum <- link.recv_cum + 1;
          link.recv_early <- List.filter (fun s -> s > link.recv_cum) link.recv_early
        done;
        match Wire.decode t.cfg.encoding ~universe:t.cfg.n env.Envelope.body with
        | Error _ -> t.decode_errors <- t.decode_errors + 1
        | Ok payload ->
          deliver t ~now ~src payload;
          announce_if_complete t ~now
      end
  end

(* Retransmission timeouts and owed bare frames, over every up link. *)
let pump t ~now =
  Array.iteri
    (fun dst link ->
      match link.status with
      | Up ->
        if (not (Queue.is_empty link.sendbuf)) && now >= link.rto_at then
          transmit_data t ~now dst ~resend:true;
        if link.hello_owed then begin
          send_bare t ~now ~dst Envelope.Hello ~ack:0;
          link.hello_owed <- false
        end;
        if link.done_owed then send_done t ~now ~dst;
        if link.ack_owed then begin
          send_bare t ~now ~dst Envelope.Ack ~ack:link.recv_cum;
          link.ack_owed <- false
        end
      | Down | Dead -> ())
    t.links

(* release frames the fault shim held back for delay/reorder *)
let flush_faults t ~now =
  match t.fn with
  | Some fn when Faultnet.pending fn ->
    Faultnet.flush_due fn ~now ~queue:(fun ~dst frame ->
        match t.links.(dst).status with
        | Up -> t.acts.xmit ~now ~dst frame
        | Down | Dead -> ())
  | _ -> ()

let next_rto_deadline t =
  let deadline = ref infinity in
  Array.iter
    (fun link ->
      match link.status with
      | Up when not (Queue.is_empty link.sendbuf) -> deadline := Float.min !deadline link.rto_at
      | _ -> ())
    t.links;
  !deadline

let final t =
  {
    Control.ticks = t.tick_count;
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    pointers = t.pointers;
    bytes = t.bytes;
    complete_tick = t.complete_tick;
    decode_errors = t.decode_errors;
    retransmits = t.retransmits;
    corrupt_frames = t.corrupt_frames;
  }

let create (cfg : config) (acts : actions) ~links_up ~now =
  if cfg.n <= 0 then invalid_arg "Node_core.create: n must be positive";
  if cfg.node < 0 || cfg.node >= cfg.n then invalid_arg "Node_core.create: node out of range";
  if cfg.tick_period <= 0.0 then invalid_arg "Node_core.create: tick period must be positive";
  if cfg.rto <= 0.0 then invalid_arg "Node_core.create: rto must be positive";
  let labels = Exec.labels_of ~seed:cfg.seed cfg.n in
  let ctx =
    {
      Algorithm.n = cfg.n;
      node = cfg.node;
      neighbors = cfg.neighbors;
      labels;
      rng = Rng.substream ~seed:cfg.seed ~index:(cfg.node + 1);
      params = Params.default;
    }
  in
  let t =
    {
      cfg;
      acts;
      inst = cfg.algo.Algorithm.make ctx;
      links =
        Array.init cfg.n (fun _ ->
            {
              status = (if links_up then Up else Down);
              sendbuf = Queue.create ();
              base_seq = 1;
              rto_at = infinity;
              recv_cum = 0;
              recv_early = [];
              ack_owed = false;
              hello_owed = false;
              done_owed = false;
              peer_done = false;
            });
      fn =
        (if Faultnet.active cfg.fault then
           Some
             (Faultnet.create ~plan:cfg.fault ~seed:cfg.seed ~node:cfg.node ~epoch:0.0
                ~tick_period:cfg.tick_period)
         else None);
      byz = Fault.fabricated_ids cfg.fault ~node:cfg.node;
      auditing = Fault.audit cfg.fault;
      tick_count = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      pointers = 0;
      bytes = 0;
      decode_errors = 0;
      retransmits = 0;
      corrupt_frames = 0;
      complete_tick = None;
      complete_announced = false;
      done_known = 0;
      last_activity = now;
    }
  in
  acts.emit ~now (Trace.Join { node = cfg.node });
  (* a re-created (restarted) core re-emits its genesis, resetting its
     provenance to initial knowledge *)
  if t.auditing then
    acts.emit ~now (Adversary.genesis_event ~node:cfg.node t.inst.Algorithm.knowledge);
  announce_if_complete t ~now;
  if cfg.announce then request_hellos t ~now;
  t

type link_view = {
  view_status : status;
  view_base_seq : int;
  view_inflight : int;
  view_recv_cum : int;
  view_recv_early : int list;
  view_peer_done : bool;
}

let link_view t ~dst =
  let l = t.links.(dst) in
  {
    view_status = l.status;
    view_base_seq = l.base_seq;
    view_inflight = Queue.length l.sendbuf;
    view_recv_cum = l.recv_cum;
    view_recv_early = List.sort compare l.recv_early;
    view_peer_done = l.peer_done;
  }
