open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  algo : Algorithm.t;
  n : int;
  family : Generate.family;
  trials : int;
  seed : int;
  backend : Backend.t;
  tick_period : float;
  timeout : float;
  loss_max : float;
  encoding : Wire.encoding;
  dir : string option;
}

let default_spec algo =
  {
    algo;
    n = 8;
    family = Generate.K_out 3;
    trials = 10;
    seed = 0;
    backend = Backend.Process Backend.Uds;
    tick_period = Node.default_tick_period;
    timeout = 10.0;
    loss_max = 0.2;
    encoding = Wire.Adaptive;
    dir = None;
  }

type trial = { index : int; seed : int; plan : Fault.t; result : Cluster.result; passed : bool }

type report = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  base_seed : int;
  loss_max : float;
  trials : trial list;
  passed : int;
}

let all_passed r = r.passed = List.length r.trials

(* One randomized-but-seeded plan per trial: some base link noise
   (quantized to whole percents so plans print compactly), one scheduled
   partition that heals, and one crash that restarts. Every trial
   therefore exercises the reliability layer, the partition window and
   the rejoin handshake at once. *)
let random_plan ~rng ~n ~loss_max =
  let pct p = float_of_int p /. 100.0 in
  let max_pct = int_of_float ((loss_max *. 100.0) +. 0.5) in
  let plan = Fault.none in
  let plan =
    Fault.with_loss plan ~p:(pct (if max_pct <= 0 then 0 else Rng.int rng (max_pct + 1)))
  in
  let plan = Fault.with_dup plan ~p:(pct (Rng.int rng 6)) in
  let plan = Fault.with_reorder plan ~p:(pct (Rng.int rng 11)) in
  let plan = Fault.with_corrupt plan ~p:(pct (Rng.int rng 3)) in
  let split = 1 + Rng.int rng (n - 1) in
  let group lo hi = List.init (hi - lo) (fun i -> lo + i) in
  let start = 3 + Rng.int rng 8 in
  let heal = start + 5 + Rng.int rng 11 in
  let plan = Fault.with_partition plan ~groups:[ group 0 split; group split n ] ~start ~heal in
  let victim = Rng.int rng n in
  let crash = 3 + Rng.int rng 6 in
  let restart = crash + 4 + Rng.int rng 7 in
  let plan = Fault.with_crash plan ~node:victim ~round:crash in
  Fault.with_restart plan ~node:victim ~round:restart

let run ?(progress = fun _ -> ()) (spec : spec) =
  if spec.trials < 1 then invalid_arg "Chaos.run: trials must be positive";
  if spec.n < 2 then invalid_arg "Chaos.run: n must be at least 2";
  (match spec.backend with
  | Backend.Loopback -> invalid_arg "Chaos.run: chaos needs a live backend (uds|tcp|mux)"
  | Backend.Process _ | Backend.Mux -> ());
  let trials =
    List.init spec.trials (fun index ->
        let seed = spec.seed + index in
        let rng = Rng.substream ~seed ~index:0xc405 in
        let plan = random_plan ~rng ~n:spec.n ~loss_max:spec.loss_max in
        let result =
          Cluster.run
            {
              (Cluster.default_spec spec.algo) with
              Cluster.n = spec.n;
              family = spec.family;
              seed;
              backend = spec.backend;
              tick_period = spec.tick_period;
              timeout = spec.timeout;
              encoding = spec.encoding;
              dir = spec.dir;
              fault = plan;
            }
        in
        let invariants_ok =
          match result.Cluster.invariants with
          | Cluster.Failed _ -> false
          | Cluster.Passed _ | Cluster.Skipped _ -> true
        in
        let trial = { index; seed; plan; result; passed = result.Cluster.converged && invariants_ok } in
        progress trial;
        trial)
  in
  let passed = List.length (List.filter (fun (t : trial) -> t.passed) trials) in
  {
    algorithm = spec.algo.Algorithm.name;
    family = Generate.family_name spec.family;
    backend = spec.backend;
    n = spec.n;
    base_seed = spec.seed;
    loss_max = spec.loss_max;
    trials;
    passed;
  }

(* --- JSON soak report ----------------------------------------------- *)

let trial_to_json t =
  let invariants =
    match t.result.Cluster.invariants with
    | Cluster.Passed _ -> "passed"
    | Cluster.Failed _ -> "failed"
    | Cluster.Skipped _ -> "skipped"
  in
  let retransmits, corrupt_frames =
    match t.result.Cluster.totals with
    | Some f -> (f.Control.retransmits, f.Control.corrupt_frames)
    | None -> (0, 0)
  in
  Printf.sprintf
    {|{"trial":%d,"seed":%d,"plan":"%s","converged":%b,"invariants":"%s","passed":%b,"wall_time":%.6f,"events":%d,"crashed":[%s],"retransmits":%d,"corrupt_frames":%d}|}
    t.index t.seed (Fault.to_string t.plan) t.result.Cluster.converged invariants t.passed
    t.result.Cluster.wall_time t.result.Cluster.events
    (String.concat "," (List.map string_of_int t.result.Cluster.crashed))
    retransmits corrupt_frames

let report_to_json r =
  Printf.sprintf
    {|{"algorithm":"%s","family":"%s","backend":"%s","n":%d,"seed":%d,"loss_max":%g,"trials":%d,"passed":%d,"failed":%d,"results":[%s]}|}
    r.algorithm r.family
    (Backend.to_string r.backend)
    r.n r.base_seed r.loss_max (List.length r.trials) r.passed
    (List.length r.trials - r.passed)
    (String.concat "," (List.map trial_to_json r.trials))
