open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  algo : Algorithm.t;
  n : int;
  family : Generate.family;
  trials : int;
  seed : int;
  backend : Backend.t;
  tick_period : float;
  timeout : float;
  loss_max : float;
  encoding : Wire.encoding;
  dir : string option;
}

let default_spec algo =
  {
    algo;
    n = 8;
    family = Generate.K_out 3;
    trials = 10;
    seed = 0;
    backend = Backend.Process Backend.Uds;
    tick_period = Node.default_tick_period;
    timeout = 10.0;
    loss_max = 0.2;
    encoding = Wire.Adaptive;
    dir = None;
  }

type trial = { index : int; seed : int; plan : Fault.t; result : Cluster.result; passed : bool }

type report = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  base_seed : int;
  loss_max : float;
  trials : trial list;
  passed : int;
}

let all_passed r = r.passed = List.length r.trials

(* One randomized-but-seeded plan per trial: some base link noise
   (quantized to whole percents so plans print compactly), one scheduled
   partition that heals, and one crash that restarts. Every trial
   therefore exercises the reliability layer, the partition window and
   the rejoin handshake at once. *)
let random_plan ~rng ~n ~loss_max =
  let pct p = float_of_int p /. 100.0 in
  let max_pct = int_of_float ((loss_max *. 100.0) +. 0.5) in
  let plan = Fault.none in
  let plan =
    Fault.with_loss plan ~p:(pct (if max_pct <= 0 then 0 else Rng.int rng (max_pct + 1)))
  in
  let plan = Fault.with_dup plan ~p:(pct (Rng.int rng 6)) in
  let plan = Fault.with_reorder plan ~p:(pct (Rng.int rng 11)) in
  let plan = Fault.with_corrupt plan ~p:(pct (Rng.int rng 3)) in
  let split = 1 + Rng.int rng (n - 1) in
  let group lo hi = List.init (hi - lo) (fun i -> lo + i) in
  let start = 3 + Rng.int rng 8 in
  let heal = start + 5 + Rng.int rng 11 in
  let plan = Fault.with_partition plan ~groups:[ group 0 split; group split n ] ~start ~heal in
  let victim = Rng.int rng n in
  let crash = 3 + Rng.int rng 6 in
  let restart = crash + 4 + Rng.int rng 7 in
  let plan = Fault.with_crash plan ~node:victim ~round:crash in
  Fault.with_restart plan ~node:victim ~round:restart

let run ?(progress = fun _ -> ()) (spec : spec) =
  if spec.trials < 1 then invalid_arg "Chaos.run: trials must be positive";
  if spec.n < 2 then invalid_arg "Chaos.run: n must be at least 2";
  (match spec.backend with
  | Backend.Loopback -> invalid_arg "Chaos.run: chaos needs a live backend (uds|tcp|mux)"
  | Backend.Process _ | Backend.Mux -> ());
  let trials =
    List.init spec.trials (fun index ->
        let seed = spec.seed + index in
        let rng = Rng.substream ~seed ~index:0xc405 in
        let plan = random_plan ~rng ~n:spec.n ~loss_max:spec.loss_max in
        let result =
          Cluster.run
            {
              (Cluster.default_spec spec.algo) with
              Cluster.n = spec.n;
              family = spec.family;
              seed;
              backend = spec.backend;
              tick_period = spec.tick_period;
              timeout = spec.timeout;
              encoding = spec.encoding;
              dir = spec.dir;
              fault = plan;
            }
        in
        let invariants_ok =
          match result.Cluster.invariants with
          | Cluster.Failed _ -> false
          | Cluster.Passed _ | Cluster.Skipped _ -> true
        in
        let trial = { index; seed; plan; result; passed = result.Cluster.converged && invariants_ok } in
        progress trial;
        trial)
  in
  let passed = List.length (List.filter (fun (t : trial) -> t.passed) trials) in
  {
    algorithm = spec.algo.Algorithm.name;
    family = Generate.family_name spec.family;
    backend = spec.backend;
    n = spec.n;
    base_seed = spec.seed;
    loss_max = spec.loss_max;
    trials;
    passed;
  }

(* --- plan families and the chaos matrix ------------------------------ *)

let plan_families = [ "links"; "partition"; "crash"; "wan" ]

let group lo hi = List.init (hi - lo) (fun i -> lo + i)

let plan_of_family name ~rng ~n ~loss_max =
  let pct p = float_of_int p /. 100.0 in
  match name with
  | "links" ->
    let max_pct = int_of_float ((loss_max *. 100.0) +. 0.5) in
    let plan =
      Fault.with_loss Fault.none ~p:(pct (if max_pct <= 0 then 0 else Rng.int rng (max_pct + 1)))
    in
    let plan = Fault.with_dup plan ~p:(pct (Rng.int rng 6)) in
    let plan = Fault.with_reorder plan ~p:(pct (Rng.int rng 11)) in
    Fault.with_corrupt plan ~p:(pct (Rng.int rng 3))
  | "partition" ->
    let split = 1 + Rng.int rng (n - 1) in
    let start = 2 + Rng.int rng 4 in
    let heal = start + 4 + Rng.int rng 8 in
    Fault.with_partition Fault.none ~groups:[ group 0 split; group split n ] ~start ~heal
  | "crash" ->
    let victim = Rng.int rng n in
    let crash = 2 + Rng.int rng 4 in
    let restart = crash + 3 + Rng.int rng 6 in
    Fault.with_restart
      (Fault.with_crash Fault.none ~node:victim ~round:crash)
      ~node:victim ~round:restart
  | "wan" ->
    let split = 1 + Rng.int rng (n - 1) in
    let delay = 1 + Rng.int rng 2 in
    let loss = pct (Rng.int rng 11) in
    Fault.with_wan Fault.none
      ~regions:[ group 0 split; group split n ]
      ~cross:{ Fault.default_link with Fault.delay; loss; cap = 2 }
  | other -> invalid_arg (Printf.sprintf "Chaos.plan_of_family: unknown plan family %S" other)

type cell = {
  cell_algo : string;
  cell_topology : string;
  cell_plan : string;
  cell_n : int;
  cell_trials : int;
  cell_passed : int;
}

let cell_to_json c =
  Printf.sprintf
    {|{"algo":"%s","topology":"%s","plan_family":"%s","n":%d,"trials":%d,"passed":%d,"failed":%d}|}
    c.cell_algo c.cell_topology c.cell_plan c.cell_n c.cell_trials c.cell_passed
    (c.cell_trials - c.cell_passed)

let matrix_to_json cells = String.concat "\n" (List.map cell_to_json cells) ^ "\n"

let matrix ?(progress = fun _ -> ()) ~algos ~families ~plans ~n ~trials ~seed ~backend ~timeout
    ~loss_max () =
  if trials < 1 then invalid_arg "Chaos.matrix: trials must be positive";
  if n < 2 then invalid_arg "Chaos.matrix: n must be at least 2";
  (match backend with
  | Backend.Loopback -> invalid_arg "Chaos.matrix: chaos needs a live backend (uds|tcp|mux)"
  | Backend.Process _ | Backend.Mux -> ());
  let indexed = List.mapi (fun i p -> (p, i)) plan_families in
  let plans =
    List.map
      (fun p ->
        match List.assoc_opt p indexed with
        | Some i -> (p, i)
        | None -> invalid_arg (Printf.sprintf "Chaos.matrix: unknown plan family %S" p))
      plans
  in
  List.concat_map
    (fun algo ->
      List.concat_map
        (fun family ->
          List.map
            (fun (plan_name, plan_index) ->
              let passed = ref 0 in
              for index = 0 to trials - 1 do
                let trial_seed = seed + index in
                (* One substream per (plan family, trial): the same plan
                   therefore stresses every (algorithm, topology) cell,
                   which makes cell-to-cell comparisons meaningful. *)
                let rng = Rng.substream ~seed:trial_seed ~index:(0xc406 + plan_index) in
                let plan = plan_of_family plan_name ~rng ~n ~loss_max in
                let result =
                  Cluster.run
                    {
                      (Cluster.default_spec algo) with
                      Cluster.n;
                      family;
                      seed = trial_seed;
                      backend;
                      timeout;
                      fault = plan;
                    }
                in
                let invariants_ok =
                  match result.Cluster.invariants with
                  | Cluster.Failed _ -> false
                  | Cluster.Passed _ | Cluster.Skipped _ -> true
                in
                if result.Cluster.converged && invariants_ok then incr passed
              done;
              let cell =
                {
                  cell_algo = algo.Algorithm.name;
                  cell_topology = Generate.family_name family;
                  cell_plan = plan_name;
                  cell_n = n;
                  cell_trials = trials;
                  cell_passed = !passed;
                }
              in
              progress cell;
              cell)
            plans)
        families)
    algos

(* --- trace-level diagnosis of a failing cell ------------------------- *)

type diagnosis = {
  diag_seed : int;
  diag_plan : Fault.t;
  diag_heal_time : float;
  diag_quiet_pre_heal : int list;
  diag_never_completed : int list;
  diag_converged : bool;
}

let diagnose ~algo ~family ~plan_family ~n ~trial ~seed ~backend ~timeout ~loss_max () =
  let plan_index =
    match List.find_index (String.equal plan_family) plan_families with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Chaos.diagnose: unknown plan family %S" plan_family)
  in
  let trial_seed = seed + trial in
  let rng = Rng.substream ~seed:trial_seed ~index:(0xc406 + plan_index) in
  let plan = plan_of_family plan_family ~rng ~n ~loss_max in
  let last_send = Array.make n neg_infinity in
  let clock = ref 0.0 in
  let sink =
    Trace.callback (function
      | Trace.Tick { time; _ } -> clock := Float.max !clock time
      | Trace.Send { src; _ } -> if !clock > last_send.(src) then last_send.(src) <- !clock
      | _ -> ())
  in
  let result =
    Cluster.run
      {
        (Cluster.default_spec algo) with
        Cluster.n;
        family;
        seed = trial_seed;
        backend;
        timeout;
        fault = plan;
        trace = sink;
      }
  in
  (* in-process backends run on the virtual round clock (one unit per
     round); the socket backends tie rounds to the real tick period *)
  let round_period =
    match backend with
    | Backend.Mux | Backend.Loopback -> 1.0
    | Backend.Process _ -> (Cluster.default_spec algo).Cluster.tick_period
  in
  let heal_time =
    List.fold_left
      (fun acc (p : Fault.partition) -> Float.max acc (float_of_int p.Fault.heal *. round_period))
      0.0 (Fault.partitions plan)
  in
  let quiet =
    List.filter (fun id -> last_send.(id) < heal_time) (List.init n (fun i -> i))
  in
  let never =
    Array.to_list result.Cluster.nodes
    |> List.filter (fun (r : Cluster.node_report) -> not r.Cluster.completed)
    |> List.map (fun (r : Cluster.node_report) -> r.Cluster.id)
  in
  {
    diag_seed = trial_seed;
    diag_plan = plan;
    diag_heal_time = heal_time;
    diag_quiet_pre_heal = quiet;
    diag_never_completed = never;
    diag_converged = result.Cluster.converged;
  }

let diagnosis_to_json d =
  let ints l = String.concat "," (List.map string_of_int l) in
  Printf.sprintf
    {|{"seed":%d,"plan":"%s","heal_time":%g,"quiet_pre_heal":[%s],"never_completed":[%s],"converged":%b}|}
    d.diag_seed (Fault.to_string d.diag_plan) d.diag_heal_time (ints d.diag_quiet_pre_heal)
    (ints d.diag_never_completed) d.diag_converged

(* --- JSON soak report ----------------------------------------------- *)

let trial_to_json t =
  let invariants =
    match t.result.Cluster.invariants with
    | Cluster.Passed _ -> "passed"
    | Cluster.Failed _ -> "failed"
    | Cluster.Skipped _ -> "skipped"
  in
  let retransmits, corrupt_frames =
    match t.result.Cluster.totals with
    | Some f -> (f.Control.retransmits, f.Control.corrupt_frames)
    | None -> (0, 0)
  in
  Printf.sprintf
    {|{"trial":%d,"seed":%d,"plan":"%s","converged":%b,"invariants":"%s","passed":%b,"wall_time":%.6f,"events":%d,"crashed":[%s],"retransmits":%d,"corrupt_frames":%d}|}
    t.index t.seed (Fault.to_string t.plan) t.result.Cluster.converged invariants t.passed
    t.result.Cluster.wall_time t.result.Cluster.events
    (String.concat "," (List.map string_of_int t.result.Cluster.crashed))
    retransmits corrupt_frames

let report_to_json r =
  Printf.sprintf
    {|{"algorithm":"%s","family":"%s","backend":"%s","n":%d,"seed":%d,"loss_max":%g,"trials":%d,"passed":%d,"failed":%d,"results":[%s]}|}
    r.algorithm r.family
    (Backend.to_string r.backend)
    r.n r.base_seed r.loss_max (List.length r.trials) r.passed
    (List.length r.trials - r.passed)
    (String.concat "," (List.map trial_to_json r.trials))
