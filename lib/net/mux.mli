(** Multiplexed live backend: the whole deployment's {!Node_core}s in
    one process, on a deterministic virtual clock.

    Every node is the same protocol machine a socket process runs — real
    {!Envelope} frames, go-back-N reliable delivery, hello handshakes,
    the {!Faultnet} shim — but frames travel through an in-process event
    heap whose scheduling replicates {!Repro_engine.Async_sim} draw for
    draw. That buys two things at once:

    - {b scale}: thousands of live nodes fit in one process (no fork,
      no fd pressure, no wall-clock tick timers), so the live protocol
      stack can be exercised at [n] far beyond what process-per-node
      reaches; and
    - {b certifiability}: a fault-free mux run is {e trace-identical} —
      byte for byte under [trace-diff] — to the loopback oracle with the
      same (algorithm, topology, spec, seed). Bare frames the oracle
      does not model (acks, hellos, termination probes) draw their
      transit latency from a private RNG substream, so they never
      perturb the shared draw sequence.

    The identity claim stops where live mechanics diverge from the
    oracle by design: under link faults the shim (not the engine)
    decides each frame's fate, retransmissions draw fresh latencies, and
    crash/restart accounting follows the live rules (drops are charged
    when a peer is written off, not per undelivered frame) — those runs
    are validated by the online invariant checker instead.

    Cores run with [fleet_halt = false]: the run's completion monitor is
    the single authority, sampling {!Repro_discovery.Exec.satisfied}
    once per virtual time unit exactly like the async engine. *)

open Repro_graph
open Repro_discovery

val exec_spec :
  Run_async.spec -> Algorithm.t -> Topology.t -> Run_async.result * Control.final array
(** Run the multiplexed deployment; same shape as {!Loopback.exec_spec}:
    the overall result plus each node's own protocol counters (the
    final incarnation's, as a socket cluster would aggregate). The
    result's [metrics] are rebuilt from those counters, so the caller's
    invariant [final_check] is a genuine cross-check of the trace
    against the cores' bookkeeping. *)
