(* Framed message envelope for the socket transports. Layout (all
   multi-byte fields little-endian):

     offset  size  field
     0       2     magic "RD"
     2       1     version (currently 3)
     3       1     kind (low 7 bits: 0 = data, 1 = ack, 2 = hello,
                   3 = done; bit 7: sender's knowledge is complete)
     4       4     src node id
     8       4     stamp (sender's tick count when the message left)
     12      4     sequence number (per-link, 1-based; 0 on bare frames)
     16      4     cumulative ack (highest in-order seq received from dst)
     20      4     body length
     24      4     CRC-32 (IEEE) of bytes [0, 24) ++ body
     28      ...   body ([Wire]-encoded payload)

   The header carries its own integrity evidence: magic + version gate
   resynchronisation bugs, the length field is bounded before any
   allocation, and the CRC — seeded over the first 24 header bytes and
   continued over the body — catches corruption of the addressing and
   reliability fields as well as the payload.

   Version 2 added the kind/seq/ack fields for the reliability layer;
   version 3 added the Done kind and the completion flag bit for
   fleet-wide termination gossip. Older frames are rejected as an
   unsupported version (live fleets are always spawned from one build,
   so no cross-version traffic exists). *)

let magic0 = 'R'
let magic1 = 'D'
let version = 3
let header_size = 28

(* generous per-message bound: a bitmap body for n = 2^24 nodes is 2 MiB *)
let max_body = 16 * 1024 * 1024

type kind = Data | Ack | Hello | Done

type t = { kind : kind; src : int; stamp : int; seq : int; ack : int; comp : bool; body : bytes }

let kind_code = function Data -> 0 | Ack -> 1 | Hello -> 2 | Done -> 3
let kind_name = function Data -> "data" | Ack -> "ack" | Hello -> "hello" | Done -> "done"
let comp_bit = 0x80
let crc_mismatch = "CRC mismatch"

(* --- CRC-32 (IEEE 802.3), table-driven --- *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_init = 0xFFFFFFFF

let crc_update c buf off len =
  let table = Lazy.force crc_table in
  let c = ref c in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let crc_finish c = c lxor 0xFFFFFFFF
let crc32 buf off len = crc_finish (crc_update crc_init buf off len)

(* --- little-endian u32 helpers --- *)

let put_u32 buf off v =
  Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set buf (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set buf (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set buf (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let get_u32 buf off =
  Char.code (Bytes.unsafe_get buf off)
  lor (Char.code (Bytes.unsafe_get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get buf (off + 3)) lsl 24)

let encoded_size t = header_size + Bytes.length t.body

let check_u31 name v =
  if v < 0 || v > 0x7FFFFFFF then invalid_arg (Printf.sprintf "Envelope.encode: %s out of range" name)

let encode t =
  check_u31 "src" t.src;
  check_u31 "stamp" t.stamp;
  check_u31 "seq" t.seq;
  check_u31 "ack" t.ack;
  let blen = Bytes.length t.body in
  if blen > max_body then invalid_arg "Envelope.encode: body too large";
  let out = Bytes.create (header_size + blen) in
  Bytes.set out 0 magic0;
  Bytes.set out 1 magic1;
  Bytes.set out 2 (Char.chr version);
  Bytes.set out 3 (Char.chr (kind_code t.kind lor if t.comp then comp_bit else 0));
  put_u32 out 4 t.src;
  put_u32 out 8 t.stamp;
  put_u32 out 12 t.seq;
  put_u32 out 16 t.ack;
  put_u32 out 20 blen;
  Bytes.blit t.body 0 out header_size blen;
  (* CRC spans the 24 addressing bytes plus the body (the CRC field
     itself is excluded) *)
  put_u32 out 24 (crc_finish (crc_update (crc_update crc_init out 0 24) t.body 0 blen));
  out

(* The mux runtime classifies frames it is about to "transmit" without
   a full decode: data frames get simulator-aligned latency draws. *)
let peek_kind buf =
  if Bytes.length buf < 4 then None
  else
    match Char.code (Bytes.get buf 3) land lnot comp_bit with
    | 0 -> Some Data
    | 1 -> Some Ack
    | 2 -> Some Hello
    | 3 -> Some Done
    | _ -> None

let decode buf ~off ~len =
  if len < header_size then `Need_more
  else if Bytes.get buf off <> magic0 || Bytes.get buf (off + 1) <> magic1 then
    `Corrupt "bad magic"
  else if Char.code (Bytes.get buf (off + 2)) <> version then
    `Corrupt
      (Printf.sprintf "unsupported envelope version %d (this build speaks %d)"
         (Char.code (Bytes.get buf (off + 2)))
         version)
  else begin
    let kind_byte = Char.code (Bytes.get buf (off + 3)) in
    let comp = kind_byte land comp_bit <> 0 in
    let kind_byte = kind_byte land lnot comp_bit in
    if kind_byte > 3 then `Corrupt (Printf.sprintf "unknown frame kind %d" kind_byte)
    else begin
      let src = get_u32 buf (off + 4) in
      let stamp = get_u32 buf (off + 8) in
      let seq = get_u32 buf (off + 12) in
      let ack = get_u32 buf (off + 16) in
      let blen = get_u32 buf (off + 20) in
      if blen < 0 || blen > max_body then
        `Corrupt (Printf.sprintf "body length %d out of bounds" blen)
      else if len < header_size + blen then `Need_more
      else begin
        let crc = get_u32 buf (off + 24) in
        let actual =
          crc_finish (crc_update (crc_update crc_init buf off 24) buf (off + header_size) blen)
        in
        if crc <> actual then `Corrupt crc_mismatch
        else begin
          let kind = match kind_byte with 0 -> Data | 1 -> Ack | 2 -> Hello | _ -> Done in
          `Frame
            ( { kind; src; stamp; seq; ack; comp; body = Bytes.sub buf (off + header_size) blen },
              header_size + blen )
        end
      end
    end
  end
