(* Framed message envelope for the socket transports. Layout (all
   multi-byte fields little-endian):

     offset  size  field
     0       2     magic "RD"
     2       1     version (currently 1)
     3       1     reserved (must be 0)
     4       4     src node id
     8       4     stamp (sender's tick count when the message left)
     12      4     body length
     16      4     CRC-32 (IEEE) of bytes [0, 16) ++ body
     20      ...   body ([Wire]-encoded payload)

   The header carries its own integrity evidence: magic + version gate
   resynchronisation bugs, the length field is bounded before any
   allocation, and the CRC — seeded over the first 16 header bytes and
   continued over the body — catches corruption of the addressing
   fields as well as the payload. *)

let magic0 = 'R'
let magic1 = 'D'
let version = 1
let header_size = 20

(* generous per-message bound: a bitmap body for n = 2^24 nodes is 2 MiB *)
let max_body = 16 * 1024 * 1024

type t = { src : int; stamp : int; body : bytes }

(* --- CRC-32 (IEEE 802.3), table-driven --- *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_init = 0xFFFFFFFF

let crc_update c buf off len =
  let table = Lazy.force crc_table in
  let c = ref c in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let crc_finish c = c lxor 0xFFFFFFFF
let crc32 buf off len = crc_finish (crc_update crc_init buf off len)

(* --- little-endian u32 helpers --- *)

let put_u32 buf off v =
  Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set buf (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set buf (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set buf (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let get_u32 buf off =
  Char.code (Bytes.unsafe_get buf off)
  lor (Char.code (Bytes.unsafe_get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get buf (off + 3)) lsl 24)

let encoded_size t = header_size + Bytes.length t.body

let encode t =
  if t.src < 0 || t.src > 0x7FFFFFFF then invalid_arg "Envelope.encode: src out of range";
  if t.stamp < 0 || t.stamp > 0x7FFFFFFF then invalid_arg "Envelope.encode: stamp out of range";
  let blen = Bytes.length t.body in
  if blen > max_body then invalid_arg "Envelope.encode: body too large";
  let out = Bytes.create (header_size + blen) in
  Bytes.set out 0 magic0;
  Bytes.set out 1 magic1;
  Bytes.set out 2 (Char.chr version);
  Bytes.set out 3 '\000';
  put_u32 out 4 t.src;
  put_u32 out 8 t.stamp;
  put_u32 out 12 blen;
  Bytes.blit t.body 0 out header_size blen;
  (* CRC spans the 16 addressing bytes plus the body (the CRC field
     itself is excluded) *)
  put_u32 out 16 (crc_finish (crc_update (crc_update crc_init out 0 16) t.body 0 blen));
  out

let decode buf ~off ~len =
  if len < header_size then `Need_more
  else if Bytes.get buf off <> magic0 || Bytes.get buf (off + 1) <> magic1 then
    `Corrupt "bad magic"
  else if Char.code (Bytes.get buf (off + 2)) <> version then
    `Corrupt
      (Printf.sprintf "unsupported envelope version %d (this build speaks %d)"
         (Char.code (Bytes.get buf (off + 2)))
         version)
  else if Bytes.get buf (off + 3) <> '\000' then `Corrupt "nonzero reserved byte"
  else begin
    let src = get_u32 buf (off + 4) in
    let stamp = get_u32 buf (off + 8) in
    let blen = get_u32 buf (off + 12) in
    if blen < 0 || blen > max_body then `Corrupt (Printf.sprintf "body length %d out of bounds" blen)
    else if len < header_size + blen then `Need_more
    else begin
      let crc = get_u32 buf (off + 16) in
      let actual =
        crc_finish (crc_update (crc_update crc_init buf off 16) buf (off + header_size) blen)
      in
      if crc <> actual then `Corrupt "CRC mismatch"
      else
        `Frame ({ src; stamp; body = Bytes.sub buf (off + header_size) blen }, header_size + blen)
    end
  end
