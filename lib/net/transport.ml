type backend = Loopback | Uds | Tcp

let backend_name = function Loopback -> "loopback" | Uds -> "uds" | Tcp -> "tcp"

let backend_of_string = function
  | "loopback" -> Ok Loopback
  | "uds" | "unix" -> Ok Uds
  | "tcp" -> Ok Tcp
  | s -> Error (Printf.sprintf "unknown transport %S (loopback|uds|tcp)" s)

let all_backends = [ Loopback; Uds; Tcp ]

let backend_to_t = function
  | Loopback -> Backend.Loopback
  | Uds -> Backend.Process Backend.Uds
  | Tcp -> Backend.Process Backend.Tcp

type scheme =
  | Dir of string  (** UDS: node [i] listens on [<dir>/node-<i>.sock] *)
  | Ports of int array  (** TCP: node [i] listens on [127.0.0.1:ports.(i)] *)
  | Table of Unix.sockaddr array  (** explicit per-node address table *)

let socket_path dir node = Filename.concat dir (Printf.sprintf "node-%d.sock" node)

let sockaddr scheme node =
  match scheme with
  | Dir dir -> Unix.ADDR_UNIX (socket_path dir node)
  | Ports ports ->
    if node < 0 || node >= Array.length ports then
      invalid_arg "Transport.sockaddr: node out of range";
    Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(node))
  | Table addrs ->
    if node < 0 || node >= Array.length addrs then
      invalid_arg "Transport.sockaddr: node out of range";
    addrs.(node)

let domain = function
  | Dir _ -> Unix.PF_UNIX
  | Ports _ -> Unix.PF_INET
  | Table addrs ->
    if Array.length addrs = 0 then invalid_arg "Transport.domain: empty address table"
    else Unix.domain_of_sockaddr addrs.(0)

let listen_socket scheme node =
  let addr = sockaddr scheme node in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.set_close_on_exec fd;
     (match addr with
     | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
     | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd addr;
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  fd

(* TCP listeners are bound to an OS-assigned port (bind to 0) before any
   process starts, so the address map is exact and collision-free: the
   harness binds all n listeners first, reads the ports back, and only
   then forks — children inherit their listener, eliminating the
   connect-before-listen startup race entirely. *)
let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Transport.bound_port: not an inet socket"

(* --- framed connections ------------------------------------------- *)

module Conn = struct
  type t = {
    fd : Unix.file_descr;
    mutable rbuf : Bytes.t;  (* read accumulator *)
    mutable rlen : int;
    mutable wbuf : Bytes.t;  (* write backlog, [wpos, wlen) pending *)
    mutable wpos : int;
    mutable wlen : int;
    mutable queued_frames : int;  (* frames accepted but not yet fully written *)
    mutable closed : bool;  (* stream dead: EOF, hard error, or corrupt framing *)
    mutable fd_closed : bool;
  }

  let create fd =
    Unix.set_nonblock fd;
    {
      fd;
      rbuf = Bytes.create 4096;
      rlen = 0;
      wbuf = Bytes.create 4096;
      wpos = 0;
      wlen = 0;
      queued_frames = 0;
      closed = false;
      fd_closed = false;
    }

  let fd t = t.fd
  let pending_out t = t.wlen > t.wpos
  let queued_frames t = t.queued_frames

  let ensure_write_room t extra =
    (* compact first, then grow *)
    if t.wpos > 0 then begin
      Bytes.blit t.wbuf t.wpos t.wbuf 0 (t.wlen - t.wpos);
      t.wlen <- t.wlen - t.wpos;
      t.wpos <- 0
    end;
    if t.wlen + extra > Bytes.length t.wbuf then begin
      let cap = ref (2 * Bytes.length t.wbuf) in
      while t.wlen + extra > !cap do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.wbuf 0 nb 0 t.wlen;
      t.wbuf <- nb
    end

  let queue t frame =
    let len = Bytes.length frame in
    ensure_write_room t len;
    Bytes.blit frame 0 t.wbuf t.wlen len;
    t.wlen <- t.wlen + len;
    t.queued_frames <- t.queued_frames + 1

  (* Nonblocking drain of the write backlog. [`Closed] on a hard error
     (peer gone); progress resets the queued-frame count once the
     backlog empties. *)
  let flush t =
    if t.closed then `Closed
    else begin
      let result = ref `Ok in
      let continue = ref (pending_out t) in
      while !continue do
        match Unix.write t.fd t.wbuf t.wpos (t.wlen - t.wpos) with
        | 0 -> continue := false
        | k ->
          t.wpos <- t.wpos + k;
          if t.wpos >= t.wlen then begin
            t.wpos <- 0;
            t.wlen <- 0;
            t.queued_frames <- 0;
            continue := false
          end
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> continue := false
        | exception Unix.Unix_error _ ->
          t.closed <- true;
          result := `Closed;
          continue := false
      done;
      !result
    end

  let ensure_read_room t =
    if t.rlen = Bytes.length t.rbuf then begin
      let nb = Bytes.create (2 * Bytes.length t.rbuf) in
      Bytes.blit t.rbuf 0 nb 0 t.rlen;
      t.rbuf <- nb
    end

  (* Read whatever the socket has and hand every complete envelope to
     [handle]. [`Closed] on EOF or hard error, [`Corrupt] if the stream
     framing broke (caller should drop the connection). *)
  let read t ~handle =
    if t.closed then `Closed
    else begin
      let state = ref `Ok in
      let continue = ref true in
      while !continue do
        ensure_read_room t;
        match Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
        | 0 ->
          t.closed <- true;
          state := `Closed;
          continue := false
        | k -> t.rlen <- t.rlen + k
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> continue := false
        | exception Unix.Unix_error _ ->
          t.closed <- true;
          state := `Closed;
          continue := false
      done;
      (* extract complete frames *)
      let off = ref 0 in
      let extracting = ref true in
      while !extracting do
        match Envelope.decode t.rbuf ~off:!off ~len:(t.rlen - !off) with
        | `Frame (env, consumed) ->
          off := !off + consumed;
          handle env
        | `Need_more -> extracting := false
        | `Corrupt reason ->
          t.closed <- true;
          state := `Corrupt reason;
          extracting := false
      done;
      if !off > 0 then begin
        Bytes.blit t.rbuf !off t.rbuf 0 (t.rlen - !off);
        t.rlen <- t.rlen - !off
      end;
      !state
    end

  let close t =
    t.closed <- true;
    if not t.fd_closed then begin
      t.fd_closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end
