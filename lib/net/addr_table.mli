(** The deployment address table: the static name service of a live
    fleet. Position in the table is the node id, so every node must be
    started with the {e same} table (and the same seed) for the
    deployment to agree on who is who.

    Entry spellings: a unix-domain socket path (anything containing
    ['/']), a bare [PORT] (TCP on the loopback interface), or
    [HOST:PORT] with a numeric IP or a hostname (resolved once, at
    parse time, so the table in memory is always concrete addresses).

    The textual form is one entry per line; blank lines and
    [#]-comments are ignored, and [to_string]/[of_string] round-trip
    (modulo comments and hostname resolution). *)

type t = Unix.sockaddr array

val parse_entry : string -> (Unix.sockaddr, string) result
val entry_to_string : Unix.sockaddr -> string
(** Canonical spelling: the socket path, or [IP:PORT]. *)

val of_entries : string list -> (t, string) result
(** Parse an already-split list (e.g. a comma-separated [--peers]
    value); errors name the offending index. *)

val of_string : string -> (t, string) result
(** Parse the file format (entry per line, [#] comments). *)

val to_string : t -> string
(** One canonical entry per line, trailing newline included. *)

val load : string -> (t, string) result
(** Read a table file; errors are prefixed with the path. *)

val save : string -> t -> unit

val scheme : t -> Transport.scheme
(** The table as a {!Transport.scheme} for {!Node.run}. *)

val index_of : t -> string -> int option
(** Which node id a [--listen] spelling denotes: the first entry equal
    to its parse ([None] if absent or unparseable). *)
