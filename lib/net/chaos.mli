(** Chaos soak harness: repeated live cluster runs under randomized —
    but fully seeded — fault plans.

    Each trial derives a fault plan from [seed + trial_index]: a
    quantized base loss rate up to [loss_max], small duplication /
    reordering / corruption probabilities, one scheduled partition that
    heals, and one crash with a later restart. The trial runs the
    algorithm over a live {!Cluster} (socket or mux backends) under that
    plan; it passes when the cluster converges and the online invariant
    checker did not flag a violation. The same seed therefore always
    replays the same soak — a failing trial can be re-run alone by
    passing its reported seed with [trials = 1]. *)

open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  algo : Algorithm.t;
  n : int;
  family : Generate.family;
  trials : int;
  seed : int;  (** trial [i] uses [seed + i] for topology, labels and plan *)
  backend : Backend.t;  (** any live backend; loopback is rejected *)
  tick_period : float;
  timeout : float;  (** per-trial wall-clock budget *)
  loss_max : float;  (** upper bound on each trial's base loss rate *)
  encoding : Wire.encoding;
  dir : string option;
}

val default_spec : Algorithm.t -> spec
(** n = 8, 10 trials, seed 0, UDS, 10 s per trial, loss ≤ 0.2. *)

type trial = {
  index : int;
  seed : int;
  plan : Fault.t;
  result : Cluster.result;
  passed : bool;  (** converged with no invariant violation *)
}

type report = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  base_seed : int;
  loss_max : float;
  trials : trial list;
  passed : int;
}

val all_passed : report -> bool

val random_plan : rng:Repro_util.Rng.t -> n:int -> loss_max:float -> Fault.t
(** The per-trial plan generator — exposed so tests can pin its shape. *)

val run : ?progress:(trial -> unit) -> spec -> report
(** Run the soak; [progress] is called after each trial (for live
    status lines).
    @raise Invalid_argument if [trials < 1], [n < 2] or the backend is
    loopback. *)

val report_to_json : report -> string
(** One-line JSON soak report (stable field order, no trailing
    newline). *)
