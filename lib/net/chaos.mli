(** Chaos soak harness: repeated live cluster runs under randomized —
    but fully seeded — fault plans.

    Each trial derives a fault plan from [seed + trial_index]: a
    quantized base loss rate up to [loss_max], small duplication /
    reordering / corruption probabilities, one scheduled partition that
    heals, and one crash with a later restart. The trial runs the
    algorithm over a live {!Cluster} (socket or mux backends) under that
    plan; it passes when the cluster converges and the online invariant
    checker did not flag a violation. The same seed therefore always
    replays the same soak — a failing trial can be re-run alone by
    passing its reported seed with [trials = 1]. *)

open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  algo : Algorithm.t;
  n : int;
  family : Generate.family;
  trials : int;
  seed : int;  (** trial [i] uses [seed + i] for topology, labels and plan *)
  backend : Backend.t;  (** any live backend; loopback is rejected *)
  tick_period : float;
  timeout : float;  (** per-trial wall-clock budget *)
  loss_max : float;  (** upper bound on each trial's base loss rate *)
  encoding : Wire.encoding;
  dir : string option;
}

val default_spec : Algorithm.t -> spec
(** n = 8, 10 trials, seed 0, UDS, 10 s per trial, loss ≤ 0.2. *)

type trial = {
  index : int;
  seed : int;
  plan : Fault.t;
  result : Cluster.result;
  passed : bool;  (** converged with no invariant violation *)
}

type report = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  base_seed : int;
  loss_max : float;
  trials : trial list;
  passed : int;
}

val all_passed : report -> bool

val random_plan : rng:Repro_util.Rng.t -> n:int -> loss_max:float -> Fault.t
(** The per-trial plan generator — exposed so tests can pin its shape. *)

val run : ?progress:(trial -> unit) -> spec -> report
(** Run the soak; [progress] is called after each trial (for live
    status lines).
    @raise Invalid_argument if [trials < 1], [n < 2] or the backend is
    loopback. *)

val report_to_json : report -> string
(** One-line JSON soak report (stable field order, no trailing
    newline). *)

(** {2 The chaos matrix}

    Where {!run} soaks one (algorithm, topology) pair under kitchen-sink
    plans, the matrix sweeps a grid of algorithms × topologies × named
    {e plan families} — each family isolating one fault dimension — and
    reduces every cell to a deterministic pass count. On the mux backend
    (virtual clock) the JSON summary is byte-reproducible, so CI can
    diff it against a pinned baseline. *)

val plan_families : string list
(** [["links"; "partition"; "crash"; "wan"]] — base link noise
    (loss / duplication / reordering / corruption); a healing two-group
    partition; a crash with a later restart; a two-region WAN profile
    (cross-region delay, loss and a bandwidth cap). Fabrication is
    deliberately excluded: an audited fabrication must fail, so it has
    its own negative tests instead of a pass-count cell. *)

val plan_of_family :
  string -> rng:Repro_util.Rng.t -> n:int -> loss_max:float -> Fault.t
(** The seeded plan generator behind each family name.
    @raise Invalid_argument on an unknown name. *)

(** {2 Trace-level diagnosis of a failing cell}

    A pinned failing cell records {e that} a configuration loses trials;
    [diagnose] replays one trial with a tracing sink to show {e why}.
    For partition plans the interesting signal is which nodes stopped
    transmitting before the cut healed: a node that went quiet pre-heal
    concluded (or starved) inside its side of the partition, so nothing
    it knew could reach the other side afterwards. *)

type diagnosis = {
  diag_seed : int;  (** the trial's seed ([seed + trial]) *)
  diag_plan : Fault.t;  (** the exact replayed plan *)
  diag_heal_time : float;
      (** virtual time at which the last scheduled partition healed;
          0 if the plan has no partition *)
  diag_quiet_pre_heal : int list;
      (** nodes whose last transmission predates [diag_heal_time] —
          whatever they knew never crossed the healed cut *)
  diag_never_completed : int list;  (** nodes that never announced completion *)
  diag_converged : bool;
}

val diagnose :
  algo:Repro_discovery.Algorithm.t ->
  family:Generate.family ->
  plan_family:string ->
  n:int ->
  trial:int ->
  seed:int ->
  backend:Backend.t ->
  timeout:float ->
  loss_max:float ->
  unit ->
  diagnosis
(** Replay trial [trial] of the given matrix cell — same substream as
    {!matrix}, so the plan is identical — with a {!Repro_engine.Trace}
    callback recording per-node last-transmission times.
    @raise Invalid_argument on an unknown plan family. *)

val diagnosis_to_json : diagnosis -> string
(** One line, stable field order — printable from tests and tools. *)

type cell = {
  cell_algo : string;
  cell_topology : string;
  cell_plan : string;
  cell_n : int;
  cell_trials : int;
  cell_passed : int;
}

val cell_to_json : cell -> string
(** One line, stable field order, no wall-clock fields — safe to pin. *)

val matrix_to_json : cell list -> string
(** One {!cell_to_json} line per cell, newline-terminated. *)

val matrix :
  ?progress:(cell -> unit) ->
  algos:Repro_discovery.Algorithm.t list ->
  families:Generate.family list ->
  plans:string list ->
  n:int ->
  trials:int ->
  seed:int ->
  backend:Backend.t ->
  timeout:float ->
  loss_max:float ->
  unit ->
  cell list
(** Run every (algorithm, topology, plan family) cell for [trials]
    seeded trials; trial [i] of a given plan family uses the same plan
    in every cell, so cells are comparable. Cells appear in
    deterministic grid order (algorithms outermost, plan families
    innermost).
    @raise Invalid_argument if [trials < 1], [n < 2], the backend is
    loopback, or a plan name is unknown. *)
