open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  n : int;
  algo : Algorithm.t;
  family : Generate.family;
  seed : int;
  backend : Backend.t;
  tick_period : float;
  timeout : float;
  encoding : Wire.encoding;
  dir : string option;
  trace : Trace.sink;
  check_invariants : bool;
  kill_node : int option;
  fault : Fault.t;
}

let default_spec algo =
  {
    n = 8;
    algo;
    family = Generate.K_out 3;
    seed = 0;
    backend = Backend.Process Backend.Uds;
    tick_period = Node.default_tick_period;
    timeout = 30.0;
    encoding = Wire.Adaptive;
    dir = None;
    trace = Trace.null;
    check_invariants = true;
    kill_node = None;
    fault = Fault.none;
  }

type node_outcome = Finished of Control.final | Crashed of string | Unresponsive

type node_report = { id : int; outcome : node_outcome; completed : bool }

type invariant_status = Passed of int | Failed of string | Skipped of string

type result = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  seed : int;
  converged : bool;
  wall_time : float;
  events : int;
  crashed : int list;
  killed : int option;
  invariants : invariant_status;
  nodes : node_report array;
  totals : Control.final option;  (** aggregate, when every node reported *)
}

(* Crash/restart accounting makes strict event-conservation unreliable
   on the live path (a payload delivered just before its ack was lost to
   a kill is later counted as dropped too), so any plan that can crash a
   process checks under the relaxed rules. *)
let lenient_for (spec : spec) =
  spec.kill_node <> None || Fault.crashed_nodes spec.fault <> []

let zero_final =
  {
    Control.ticks = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    pointers = 0;
    bytes = 0;
    complete_tick = None;
    decode_errors = 0;
    retransmits = 0;
    corrupt_frames = 0;
  }

let add_final (acc : Control.final) (f : Control.final) =
  {
    acc with
    Control.ticks = acc.Control.ticks + f.Control.ticks;
    sent = acc.Control.sent + f.Control.sent;
    delivered = acc.Control.delivered + f.Control.delivered;
    dropped = acc.Control.dropped + f.Control.dropped;
    pointers = acc.Control.pointers + f.Control.pointers;
    bytes = acc.Control.bytes + f.Control.bytes;
    decode_errors = acc.Control.decode_errors + f.Control.decode_errors;
    retransmits = acc.Control.retransmits + f.Control.retransmits;
    corrupt_frames = acc.Control.corrupt_frames + f.Control.corrupt_frames;
  }

(* --- loopback: delegate to the async oracle ------------------------ *)

let run_loopback (spec : spec) =
  let topology =
    Generate.build spec.family ~rng:(Rng.substream ~seed:spec.seed ~index:0x70b0) ~n:spec.n
  in
  let checker =
    if spec.check_invariants then
      Some (Trace.Invariants.create ~lenient:(Fault.has_restarts spec.fault) ())
    else None
  in
  let trace =
    match checker with
    | None -> spec.trace
    | Some inv -> Trace.tee (Trace.Invariants.sink inv) spec.trace
  in
  let run_spec =
    {
      Run_async.default_spec with
      seed = spec.seed;
      fault = spec.fault;
      encoding = spec.encoding;
      trace;
    }
  in
  let sim, finals = Loopback.exec_spec run_spec spec.algo topology in
  let invariants =
    match checker with
    | None -> Skipped "disabled"
    | Some inv -> (
      match Trace.Invariants.final_check inv sim.Run_async.metrics with
      | () -> Passed (Trace.Invariants.events_seen inv)
      | exception Trace.Invariants.Violation msg -> Failed msg)
  in
  let totals = Array.fold_left add_final zero_final finals in
  (* same accounting as the mux path: a node that ended the run dead is
     reported crashed, whichever backend hosted it *)
  let crashed = ref [] in
  for v = spec.n - 1 downto 0 do
    if not sim.Run_async.alive.(v) then crashed := v :: !crashed
  done;
  {
    algorithm = spec.algo.Algorithm.name;
    family = Generate.family_name spec.family;
    backend = Backend.Loopback;
    n = spec.n;
    seed = spec.seed;
    converged = sim.Run_async.completed;
    wall_time = sim.Run_async.time;
    events = (match checker with Some inv -> Trace.Invariants.events_seen inv | None -> 0);
    crashed = !crashed;
    killed = None;
    invariants;
    nodes =
      Array.mapi
        (fun id f -> { id; outcome = Finished f; completed = sim.Run_async.completed })
        finals;
    totals = Some totals;
  }

(* --- mux: every node a live Node_core, one process, virtual time ---- *)

let run_mux (spec : spec) =
  if spec.n < 1 then invalid_arg "Cluster.run: n must be positive";
  let topology =
    Generate.build spec.family ~rng:(Rng.substream ~seed:spec.seed ~index:0x70b0) ~n:spec.n
  in
  (* crash accounting follows the live rules (a payload can be counted
     delivered by the victim and dropped by the sender), so any plan
     that kills a node checks under the relaxed rules, like the socket
     path *)
  let checker =
    if spec.check_invariants then
      Some
        (Trace.Invariants.create
           ~lenient:(Fault.crashed_nodes spec.fault <> [] || Fault.has_restarts spec.fault)
           ())
    else None
  in
  let trace =
    match checker with
    | None -> spec.trace
    | Some inv -> Trace.tee (Trace.Invariants.sink inv) spec.trace
  in
  let run_spec =
    {
      Run_async.default_spec with
      seed = spec.seed;
      fault = spec.fault;
      encoding = spec.encoding;
      trace;
    }
  in
  let sim, finals = Mux.exec_spec run_spec spec.algo topology in
  let invariants =
    match checker with
    | None -> Skipped "disabled"
    | Some inv -> (
      match Trace.Invariants.final_check inv sim.Run_async.metrics with
      | () -> Passed (Trace.Invariants.events_seen inv)
      | exception Trace.Invariants.Violation msg -> Failed msg)
  in
  let totals = Array.fold_left add_final zero_final finals in
  let crashed = ref [] in
  for v = spec.n - 1 downto 0 do
    if not sim.Run_async.alive.(v) then crashed := v :: !crashed
  done;
  {
    algorithm = spec.algo.Algorithm.name;
    family = Generate.family_name spec.family;
    backend = Backend.Mux;
    n = spec.n;
    seed = spec.seed;
    converged = sim.Run_async.completed;
    wall_time = sim.Run_async.time;
    events = (match checker with Some inv -> Trace.Invariants.events_seen inv | None -> 0);
    crashed = !crashed;
    killed = None;
    invariants;
    nodes =
      Array.mapi
        (fun id f ->
          { id; outcome = Finished f; completed = f.Control.complete_tick <> None })
        finals;
    totals = Some totals;
  }

(* --- socket backends: one forked process per node ------------------ *)

type child = {
  id : int;
  pid : int;
  fd : Unix.file_descr;  (* parent side of the control socketpair *)
  buf : Buffer.t;  (* partial control line *)
  mutable events : (float * Trace.event) list;  (* newest first *)
  mutable completed : bool;
  mutable final : Control.final option;
  mutable eof : bool;
  mutable exit_status : Unix.process_status option;
  mutable killed : bool;  (* sabotaged / force-killed by the harness *)
}

let event_rank (ev : Trace.event) =
  match ev with
  | Trace.Join _ | Trace.Genesis _ -> 0
  | Trace.Crash _ | Trace.Leave _ -> 1
  | Trace.Round_begin _ | Trace.Tick _ -> 2
  | Trace.Send _ -> 3
  | Trace.Deliver _ | Trace.Content _ -> 4
  | Trace.Drop _ | Trace.Suspect _ | Trace.Retire _ | Trace.Converge _ -> 5
  | Trace.Complete | Trace.Give_up -> 6

let handle_line child line =
  match Control.parse line with
  | Error _ -> ()  (* tolerate garbage: a crashing child may truncate a line *)
  | Ok (Control.Event (time, ev)) -> child.events <- (time, ev) :: child.events
  | Ok (Control.Completed (_, _)) -> child.completed <- true
  | Ok (Control.Final f) -> child.final <- Some f

let drain_child child =
  let buf = Bytes.create 4096 in
  let reading = ref true in
  while !reading do
    match Unix.read child.fd buf 0 4096 with
    | 0 ->
      child.eof <- true;
      reading := false
    | k ->
      for i = 0 to k - 1 do
        let c = Bytes.get buf i in
        if c = '\n' then begin
          handle_line child (Buffer.contents child.buf);
          Buffer.clear child.buf
        end
        else Buffer.add_char child.buf c
      done
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> reading := false
    | exception Unix.Unix_error _ ->
      child.eof <- true;
      reading := false
  done

let status_string = function
  | Unix.WEXITED 0 -> "exit 0"
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let run_sockets (spec : spec) =
  if spec.n < 1 then invalid_arg "Cluster.run: n must be positive";
  (match spec.kill_node with
  | Some v when v < 0 || v >= spec.n -> invalid_arg "Cluster.run: kill_node out of range"
  | _ -> ());
  List.iter
    (fun (v, _) ->
      if v >= spec.n then invalid_arg "Cluster.run: fault schedules a node outside the cluster")
    (Fault.crashed_nodes spec.fault);
  (* writes to a crashed child's control socket must surface as EPIPE,
     not kill the harness *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let topology =
    Generate.build spec.family ~rng:(Rng.substream ~seed:spec.seed ~index:0x70b0) ~n:spec.n
  in
  (* the id→address map: a socket directory for UDS, a port table for
     TCP (bound to port 0 now, real ports read back before any fork) *)
  let cleanup_dir = ref None in
  let scheme =
    match spec.backend with
    | Backend.Process Backend.Uds ->
      let dir =
        match spec.dir with
        | Some d -> d
        | None ->
          (* /tmp, not cwd: sun_path is 108 bytes and sandboxed cwds are long *)
          let d = Filename.temp_dir ~temp_dir:"/tmp" "discovery-" ".cluster" in
          cleanup_dir := Some d;
          d
      in
      Transport.Dir dir
    | Backend.Process Backend.Tcp -> Transport.Ports (Array.make spec.n 0)
    | Backend.Loopback | Backend.Mux -> assert false
  in
  let listeners = Array.init spec.n (fun v -> Transport.listen_socket scheme v) in
  (match scheme with
  | Transport.Ports ports -> Array.iteri (fun v fd -> ports.(v) <- Transport.bound_port fd) listeners
  | Transport.Dir _ | Transport.Table _ -> ());
  let epoch = Unix.gettimeofday () in
  let max_ticks =
    max
      (int_of_float (spec.timeout /. spec.tick_period) + 16)
      (Fault.last_scheduled_round spec.fault + 16)
  in
  (* parent-side control fds every later fork must close, and the
     listeners the parent still holds (kept open for nodes scheduled to
     restart, so a re-forked incarnation inherits the same socket) *)
  let control_fds = ref [] in
  let open_listeners = ref (List.init spec.n (fun v -> (v, listeners.(v)))) in
  let spawn ~announce v =
    (* buffered output must not be duplicated into the child *)
    flush stdout;
    flush stderr;
    let parent_fd, child_fd = Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
      let code =
        try
          (try Unix.close parent_fd with Unix.Unix_error _ -> ());
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !control_fds;
          List.iter
            (fun (u, fd) -> if u <> v then try Unix.close fd with Unix.Unix_error _ -> ())
            !open_listeners;
          let report =
            Node.run
              {
                Node.node = v;
                n = spec.n;
                algo = spec.algo;
                seed = spec.seed;
                neighbors = Topology.out_neighbors topology v;
                scheme;
                listen_fd = Some listeners.(v);
                control_fd = Some child_fd;
                epoch;
                tick_period = spec.tick_period;
                idle_timeout = Node.default_idle_timeout;
                max_ticks;
                connect_retries = Node.default_connect_retries;
                backoff = Node.default_backoff;
                backoff_cap = Node.default_backoff_cap;
                rto = Node.default_rto;
                fault = spec.fault;
                announce;
                encoding = spec.encoding;
                fleet_halt = true;
              }
          in
          ignore report;
          0
        with _ -> 70
      in
      (* the child shares the parent's runtime state: exit without
         flushing inherited channels or running at_exit handlers *)
      Unix._exit code
    | pid ->
      (try Unix.close child_fd with Unix.Unix_error _ -> ());
      Unix.set_nonblock parent_fd;
      control_fds := parent_fd :: !control_fds;
      {
        id = v;
        pid;
        fd = parent_fd;
        buf = Buffer.create 256;
        events = [];
        completed = false;
        final = None;
        eof = false;
        exit_status = None;
        killed = false;
      }
  in
  let children = Array.init spec.n (fun v -> spawn ~announce:false v) in
  let retired = ref [] in
  (* the parent only keeps listeners it will hand to a restarted child *)
  open_listeners :=
    List.filter
      (fun (v, fd) ->
        if Fault.restart_round spec.fault ~node:v <> None then true
        else begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          false
        end)
      !open_listeners;
  (* sabotage: kill one node outright to exercise the failure path *)
  (match spec.kill_node with
  | Some v ->
    children.(v).killed <- true;
    (try Unix.kill children.(v).pid Sys.sigkill with Unix.Unix_error _ -> ())
  | None -> ());
  (* the fault plan's crash/restart schedule, on the shared round clock:
     round r's tick fires about r*tick_period after the epoch, so acting
     at (r - 0.5) ticks lands between the victim's rounds r-1 and r *)
  let schedule =
    ref
      (List.stable_sort compare
         (List.map
            (fun (v, r) -> ((float_of_int r -. 0.5) *. spec.tick_period, `Kill, v))
            (Fault.crashed_nodes spec.fault)
         @ List.map
             (fun (v, r) -> ((float_of_int r -. 0.5) *. spec.tick_period, `Respawn, v))
             (Fault.restarting_nodes spec.fault)))
  in
  let expects_respawn v = List.exists (fun (_, act, u) -> act = `Respawn && u = v) !schedule in
  let fatal_kill = ref false in
  let start = Unix.gettimeofday () in
  let deadline = start +. spec.timeout in
  let crash_events = ref [] in
  let halt_sent = ref false in
  let grace_deadline = ref infinity in
  let term_deadline = ref infinity in
  let timed_out = ref false in
  let iter_all f =
    Array.iter f children;
    List.iter f !retired
  in
  let for_all_all p = Array.for_all p children && List.for_all p !retired in
  let broadcast_halt () =
    if not !halt_sent then begin
      halt_sent := true;
      schedule := [];  (* no point maiming a cluster that is tearing down *)
      grace_deadline := Unix.gettimeofday () +. 2.0;
      term_deadline := !grace_deadline +. 0.5;
      let line = Bytes.of_string Control.halt_line in
      iter_all (fun c ->
          if not c.eof then
            try ignore (Unix.write c.fd line 0 (Bytes.length line)) with Unix.Unix_error _ -> ())
    end
  in
  let signal_all signal =
    iter_all (fun c ->
        if c.exit_status = None then begin
          c.killed <- c.killed || signal = Sys.sigkill;
          try Unix.kill c.pid signal with Unix.Unix_error _ -> ()
        end)
  in
  let crashed_child c =
    match c.exit_status with
    | Some (Unix.WEXITED 0) -> false
    | Some _ -> true
    | None -> false
  in
  let all_reaped () = for_all_all (fun c -> c.exit_status <> None) in
  let all_eof () = for_all_all (fun c -> c.eof) in
  while not (all_reaped () && all_eof ()) do
    let now = Unix.gettimeofday () in
    (* play out the fault plan's schedule *)
    let rec run_due () =
      match !schedule with
      | (at, act, v) :: rest when Unix.gettimeofday () -. epoch >= at ->
        schedule := rest;
        (match act with
        | `Kill ->
          (* a plan kill with no later respawn is fatal to convergence
             even if the victim slipped its completion report out before
             the signal landed — the cluster did not END converged *)
          if not (expects_respawn v) then fatal_kill := true;
          let c = children.(v) in
          if c.exit_status = None then begin
            c.killed <- true;
            try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ()
          end
        | `Respawn ->
          retired := children.(v) :: !retired;
          children.(v) <- spawn ~announce:true v;
          (* the fresh incarnation inherited the listener; drop our copy *)
          open_listeners :=
            List.filter
              (fun (u, fd) ->
                if u = v then begin
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  false
                end
                else true)
              !open_listeners);
        run_due ()
      | _ -> ()
    in
    run_due ();
    (* reap exits; a non-zero status is a crash (scheduled kills and
       teardown kills included — still crashes from the protocol's point
       of view, just not surprises) *)
    iter_all (fun c ->
        if c.exit_status = None then
          match Unix.waitpid [ Unix.WNOHANG ] c.pid with
          | 0, _ -> ()
          | _, status ->
            c.exit_status <- Some status;
            if crashed_child c then
              crash_events :=
                (Unix.gettimeofday () -. epoch, Trace.Crash { node = c.id }) :: !crash_events
          | exception Unix.Unix_error (ECHILD, _, _) -> c.exit_status <- Some (Unix.WEXITED 0));
    let converged_now = !schedule = [] && Array.for_all (fun c -> c.completed) children in
    (* a crash makes convergence impossible (the dead node can never
       announce) — unless the plan revives it later, in which case the
       outage is part of the experiment *)
    let fatal_crash =
      Array.exists (fun c -> crashed_child c && not (expects_respawn c.id)) children
    in
    if (not !halt_sent) && (converged_now || fatal_crash) then broadcast_halt ();
    if (not !halt_sent) && now >= deadline then begin
      timed_out := true;
      broadcast_halt ()
    end;
    if !halt_sent && now >= !grace_deadline && not (all_reaped ()) then signal_all Sys.sigterm;
    if !halt_sent && now >= !term_deadline && not (all_reaped ()) then signal_all Sys.sigkill;
    let rfds = ref [] in
    iter_all (fun c -> if not c.eof then rfds := c.fd :: !rfds);
    if !rfds = [] then (
      if not (all_reaped ()) then ignore (Unix.select [] [] [] 0.02))
    else begin
      let readable, _, _ =
        try Unix.select !rfds [] [] 0.05 with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      iter_all (fun c -> if List.mem c.fd readable then drain_child c)
    end
  done;
  let wall_time = Unix.gettimeofday () -. start in
  iter_all (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ());
  List.iter (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ()) !open_listeners;
  (match !cleanup_dir with
  | Some dir ->
    for v = 0 to spec.n - 1 do
      try Unix.unlink (Transport.socket_path dir v) with Unix.Unix_error _ -> ()
    done;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | None -> ());
  let crashed =
    Array.to_list children |> List.filter crashed_child |> List.map (fun c -> c.id)
  in
  (* [crashed] also lists teardown kills (stragglers reaped after the
     halt), which must not void convergence — only a plan kill that was
     never respawned does, via [fatal_kill] *)
  let converged =
    Array.for_all (fun c -> c.completed) children && (not !timed_out) && not !fatal_kill
  in
  (* merge the per-node streams (every incarnation's) into one
     time-ordered trace; stable sort keeps each node's own order for
     equal (time, rank) keys *)
  let merged =
    Array.to_list children @ !retired
    |> List.concat_map (fun c -> List.rev c.events)
    |> List.append (List.rev !crash_events)
    |> List.stable_sort (fun (t1, e1) (t2, e2) ->
           match compare (t1 : float) t2 with
           | 0 -> compare (event_rank e1) (event_rank e2)
           | c -> c)
  in
  let terminal = if converged then Trace.Complete else Trace.Give_up in
  let checker =
    if spec.check_invariants then
      Some (Trace.Invariants.create ~lenient:(lenient_for spec) ())
    else None
  in
  let check_failure = ref None in
  let emit_checked ev =
    (match checker with
    | Some inv when !check_failure = None -> (
      try Trace.emit (Trace.Invariants.sink inv) ev
      with Trace.Invariants.Violation msg -> check_failure := Some msg)
    | _ -> ());
    Trace.emit spec.trace ev
  in
  List.iter (fun (_, ev) -> emit_checked ev) merged;
  emit_checked terminal;
  Trace.flush spec.trace;
  let totals =
    if Array.for_all (fun c -> c.final <> None) children then
      Some
        (Array.fold_left
           (fun acc c -> add_final acc (Option.get c.final))
           zero_final children)
    else None
  in
  let invariants =
    match (checker, !check_failure) with
    | None, _ -> Skipped "disabled"
    | Some _, Some msg -> Failed msg
    | Some inv, None -> (
      match (crashed, totals) with
      | [], Some t -> (
        (* end-to-end agreement between the merged trace and the nodes'
           own counters, via the same final_check the engines use *)
        let metrics = Metrics.create () in
        Metrics.absorb metrics ~retransmits:t.Control.retransmits
          ~corrupt_frames:t.Control.corrupt_frames ~sent:t.Control.sent
          ~delivered:t.Control.delivered ~dropped:t.Control.dropped ~pointers:t.Control.pointers
          ~bytes:t.Control.bytes ();
        match Trace.Invariants.final_check inv metrics with
        | () -> Passed (Trace.Invariants.events_seen inv)
        | exception Trace.Invariants.Violation msg -> Failed msg)
      | _ :: _, _ -> Skipped "crashed nodes: totals are partial"
      | [], None -> Skipped "missing final reports")
  in
  let nodes =
    Array.map
      (fun c ->
        let outcome =
          match (c.final, c.exit_status) with
          | Some f, Some (Unix.WEXITED 0) -> Finished f
          | _, Some (Unix.WEXITED 0) -> Unresponsive
          | _, Some status -> Crashed (status_string status)
          | _, None -> Unresponsive
        in
        { id = c.id; outcome; completed = c.completed })
      children
  in
  {
    algorithm = spec.algo.Algorithm.name;
    family = Generate.family_name spec.family;
    backend = spec.backend;
    n = spec.n;
    seed = spec.seed;
    converged;
    wall_time;
    events = List.length merged + 1;
    crashed;
    killed = spec.kill_node;
    invariants;
    nodes;
    totals;
  }

let run (spec : spec) =
  match spec.backend with
  | Backend.Loopback | Backend.Mux ->
    if spec.kill_node <> None then
      invalid_arg "Cluster.run: kill_node requires a socket backend (uds|tcp)";
    if spec.backend = Backend.Mux then run_mux spec else run_loopback spec
  | Backend.Process _ -> run_sockets spec

(* --- JSON report ---------------------------------------------------- *)

let json_final (f : Control.final) =
  Printf.sprintf
    {|{"ticks":%d,"sent":%d,"delivered":%d,"dropped":%d,"pointers":%d,"bytes":%d,"complete_tick":%s,"decode_errors":%d,"retransmits":%d,"corrupt_frames":%d}|}
    f.Control.ticks f.Control.sent f.Control.delivered f.Control.dropped f.Control.pointers
    f.Control.bytes
    (match f.Control.complete_tick with Some t -> string_of_int t | None -> "null")
    f.Control.decode_errors f.Control.retransmits f.Control.corrupt_frames

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let result_to_json r =
  let node_json nr =
    let outcome, detail =
      match nr.outcome with
      | Finished f -> ("finished", json_final f)
      | Crashed s -> ("crashed", Printf.sprintf {|"%s"|} (json_escape s))
      | Unresponsive -> ("unresponsive", "null")
    in
    Printf.sprintf {|{"id":%d,"outcome":"%s","completed":%b,"detail":%s}|} nr.id outcome
      nr.completed detail
  in
  let invariants =
    match r.invariants with
    | Passed k -> Printf.sprintf {|{"status":"passed","events":%d}|} k
    | Failed msg -> Printf.sprintf {|{"status":"failed","reason":"%s"}|} (json_escape msg)
    | Skipped why -> Printf.sprintf {|{"status":"skipped","reason":"%s"}|} (json_escape why)
  in
  Printf.sprintf
    {|{"algorithm":"%s","family":"%s","backend":"%s","n":%d,"seed":%d,"converged":%b,"wall_time":%.6f,"events":%d,"crashed":[%s],"killed":%s,"invariants":%s,"totals":%s,"nodes":[%s]}|}
    (json_escape r.algorithm) (json_escape r.family)
    (Backend.to_string r.backend)
    r.n r.seed r.converged r.wall_time r.events
    (String.concat "," (List.map string_of_int r.crashed))
    (match r.killed with Some v -> string_of_int v | None -> "null")
    invariants
    (match r.totals with Some t -> json_final t | None -> "null")
    (String.concat "," (Array.to_list (Array.map node_json r.nodes)))
