open Repro_engine

type final = {
  ticks : int;
  sent : int;
  delivered : int;
  dropped : int;
  pointers : int;
  bytes : int;
  complete_tick : int option;
  decode_errors : int;
  retransmits : int;
  corrupt_frames : int;
}

type msg = Event of float * Trace.event | Completed of float * int | Final of final

(* Times are printed with the same "%.12g" convention as the trace JSON
   so a re-serialised merged stream is byte-stable. *)
let time_str t = Printf.sprintf "%.12g" t

(* Id lists travel as one comma-joined word ("-" when empty) so event
   lines stay space-separated with a fixed arity per kind. *)
let ids_str ids =
  if Array.length ids = 0 then "-"
  else String.concat "," (Array.to_list (Array.map string_of_int ids))

let parse_ids = function
  | "-" -> [||]
  | s -> Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let event_line ~time (ev : Trace.event) =
  let body =
    match ev with
    | Trace.Tick { node; count; _ } -> Printf.sprintf "tick %d %d" node count
    | Trace.Send { src; dst; pointers; bytes } ->
      Printf.sprintf "send %d %d %d %d" src dst pointers bytes
    | Trace.Deliver { src; dst } -> Printf.sprintf "deliver %d %d" src dst
    | Trace.Drop { src; dst; reason } ->
      Printf.sprintf "drop %d %d %s" src dst (Trace.drop_reason_name reason)
    | Trace.Join { node } -> Printf.sprintf "join %d" node
    | Trace.Crash { node } -> Printf.sprintf "crash %d" node
    | Trace.Genesis { node; ids } -> Printf.sprintf "genesis %d %s" node (ids_str ids)
    | Trace.Content { src; dst; ids } -> Printf.sprintf "content %d %d %s" src dst (ids_str ids)
    | Trace.Leave { node } -> Printf.sprintf "leave %d" node
    | Trace.Suspect { node; target } -> Printf.sprintf "suspect %d %d" node target
    | Trace.Retire { node; target } -> Printf.sprintf "retire %d %d" node target
    | Trace.Converge { node; epoch } -> Printf.sprintf "converge %d %d" node epoch
    | Trace.Complete -> "complete"
    | Trace.Give_up -> "give_up"
    | Trace.Round_begin { round } -> Printf.sprintf "round_begin %d" round
  in
  Printf.sprintf "E %s %s\n" (time_str time) body

let completed_line ~time ~tick = Printf.sprintf "C %s %d\n" (time_str time) tick

let final_line f =
  Printf.sprintf "F %d %d %d %d %d %d %d %d %d %d\n" f.ticks f.sent f.delivered f.dropped
    f.pointers f.bytes
    (match f.complete_tick with Some t -> t | None -> -1)
    f.decode_errors f.retransmits f.corrupt_frames

let halt_line = "H\n"

let parse_event ~time = function
  | [ "tick"; node; count ] ->
    Ok (Trace.Tick { node = int_of_string node; time; count = int_of_string count })
  | [ "send"; src; dst; pointers; bytes ] ->
    Ok
      (Trace.Send
         {
           src = int_of_string src;
           dst = int_of_string dst;
           pointers = int_of_string pointers;
           bytes = int_of_string bytes;
         })
  | [ "deliver"; src; dst ] -> Ok (Trace.Deliver { src = int_of_string src; dst = int_of_string dst })
  | [ "drop"; src; dst; reason ] ->
    let reason =
      match reason with
      | "loss" -> Trace.Loss
      | "dead_dst" -> Trace.Dead_dst
      | "partitioned" -> Trace.Partitioned
      | "throttled" -> Trace.Throttled
      | _ -> Trace.Unjoined_dst
    in
    Ok (Trace.Drop { src = int_of_string src; dst = int_of_string dst; reason })
  | [ "join"; node ] -> Ok (Trace.Join { node = int_of_string node })
  | [ "crash"; node ] -> Ok (Trace.Crash { node = int_of_string node })
  | [ "genesis"; node; ids ] ->
    Ok (Trace.Genesis { node = int_of_string node; ids = parse_ids ids })
  | [ "content"; src; dst; ids ] ->
    Ok
      (Trace.Content { src = int_of_string src; dst = int_of_string dst; ids = parse_ids ids })
  | [ "leave"; node ] -> Ok (Trace.Leave { node = int_of_string node })
  | [ "suspect"; node; target ] ->
    Ok (Trace.Suspect { node = int_of_string node; target = int_of_string target })
  | [ "retire"; node; target ] ->
    Ok (Trace.Retire { node = int_of_string node; target = int_of_string target })
  | [ "converge"; node; epoch ] ->
    Ok (Trace.Converge { node = int_of_string node; epoch = int_of_string epoch })
  | [ "complete" ] -> Ok Trace.Complete
  | [ "give_up" ] -> Ok Trace.Give_up
  | [ "round_begin"; round ] -> Ok (Trace.Round_begin { round = int_of_string round })
  | words -> Error (Printf.sprintf "unknown event %S" (String.concat " " words))

let parse line =
  let fail () = Error (Printf.sprintf "malformed control line %S" line) in
  match String.split_on_char ' ' (String.trim line) with
  | "E" :: time :: rest -> (
    match float_of_string_opt time with
    | None -> fail ()
    | Some t -> (
      try Result.map (fun ev -> Event (t, ev)) (parse_event ~time:t rest)
      with Failure _ -> fail ()))
  | [ "C"; time; tick ] -> (
    match (float_of_string_opt time, int_of_string_opt tick) with
    | Some t, Some k -> Ok (Completed (t, k))
    | _ -> fail ())
  | [
      "F"; ticks; sent; delivered; dropped; pointers; bytes; complete_tick; decode_errors;
      retransmits; corrupt_frames;
    ] -> (
    try
      let i = int_of_string in
      Ok
        (Final
           {
             ticks = i ticks;
             sent = i sent;
             delivered = i delivered;
             dropped = i dropped;
             pointers = i pointers;
             bytes = i bytes;
             complete_tick = (if i complete_tick < 0 then None else Some (i complete_tick));
             decode_errors = i decode_errors;
             retransmits = i retransmits;
             corrupt_frames = i corrupt_frames;
           })
    with Failure _ -> fail ())
  | _ -> fail ()
