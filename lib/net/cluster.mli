(** Multi-process cluster harness.

    Runs one discovery algorithm over [n] live node processes and
    reports whether the deployment converged (every node learned all [n]
    identifiers). The harness owns the whole lifecycle:

    - builds the topology from [(family, seed)] exactly as the
      simulators do (same RNG substream), so a cluster run is comparable
      to a simulated run of the same parameters;
    - binds {e every} node's listening socket before forking — children
      inherit their listener, so there is no connect-before-listen
      startup race and, for TCP, no port collision (listeners bind port
      0 and the kernel-assigned ports are read back into the address
      map pre-fork);
    - forks one child per node, each connected by a control socketpair
      ({!Control} protocol) over which it streams trace events,
      completion announcements and its final counters;
    - plays out the {!spec.fault} plan's crash/restart schedule on the
      shared round clock: a scheduled crash SIGKILLs the victim between
      its rounds, a scheduled restart re-forks it on the {e same}
      inherited listening socket with [announce] set, so the fresh
      incarnation rejoins via the hello handshake and rebuilds its
      knowledge from its peers' replies;
    - declares convergence when the schedule has fully played out and
      every current incarnation has announced completion; a child that
      dies early (crash, or {!spec.kill_node} sabotage) with no
      scheduled restart is detected by [waitpid], reported as crashed —
      never hung — and the survivors are halted; unresponsive children
      are escalated SIGTERM → SIGKILL so teardown always finishes within
      the grace window;
    - merges the per-node event streams into one time-ordered trace,
      feeds it to [spec.trace] and (healthy runs) to the online
      {!Repro_engine.Trace.Invariants} checker, closing with the same
      [final_check] totals-agreement the engines use.

    Process-per-node is one of three implementations of the {!Backend}
    API. [Backend.Loopback] short-circuits all of the above to
    {!Loopback.exec_spec}: in-process, deterministic, trace-identical to
    {!Repro_discovery.Run_async}. [Backend.Mux] runs the same live
    protocol stack as the processes — every node a {!Node_core} — but
    multiplexed into this one process on a virtual clock
    ({!Mux.exec_spec}), scaling to thousands of live nodes while staying
    trace-identical to loopback on fault-free runs. *)

open Repro_graph
open Repro_engine
open Repro_discovery

type spec = {
  n : int;
  algo : Algorithm.t;
  family : Generate.family;
  seed : int;
  backend : Backend.t;
  tick_period : float;
  timeout : float;  (** overall wall-clock budget; exceeding it = non-convergence *)
  encoding : Wire.encoding;
  dir : string option;  (** UDS socket directory; default: fresh dir under /tmp *)
  trace : Trace.sink;  (** receives the merged, time-ordered event stream *)
  check_invariants : bool;
  kill_node : int option;
      (** sabotage: SIGKILL this node right after spawn (socket backends only) *)
  fault : Fault.t;
      (** unified fault plan: link faults and partitions are applied in
          the nodes via {!Faultnet}; crash/restart schedules are
          executed by the harness (socket backends), the mux scheduler,
          or the simulator (loopback). Runs that can crash a node are
          checked with the invariant checker's relaxed ([lenient])
          rules. *)
}

val default_spec : Algorithm.t -> spec

type node_outcome =
  | Finished of Control.final  (** exited 0 with a final report *)
  | Crashed of string  (** non-zero exit or signal (description) *)
  | Unresponsive  (** exited 0 but never delivered a final report *)

type node_report = { id : int; outcome : node_outcome; completed : bool }

type invariant_status = Passed of int  (** events checked *) | Failed of string | Skipped of string

type result = {
  algorithm : string;
  family : string;
  backend : Backend.t;
  n : int;
  seed : int;
  converged : bool;
  wall_time : float;  (** seconds (loopback/mux: virtual time) *)
  events : int;
  crashed : int list;  (** nodes whose {e current} incarnation died abnormally *)
  killed : int option;  (** echo of [spec.kill_node]: the sabotaged node, if any *)
  invariants : invariant_status;
  nodes : node_report array;
  totals : Control.final option;  (** aggregate, when every node reported *)
}

val run : spec -> result
(** Execute the cluster and tear everything down before returning: all
    children reaped, control sockets closed, any harness-created UDS
    directory removed.
    @raise Invalid_argument on a nonsensical spec ([n < 1], [kill_node]
    out of range or combined with an in-process backend). *)

val result_to_json : result -> string
(** One-line JSON report (stable field order, no trailing newline). *)
