(** Deterministic frame-level fault injection for the live path.

    The simulators apply a {!Repro_engine.Fault.t} inside their delivery
    loop; live UDS/TCP fleets have no such chokepoint, so each node
    routes every {e outgoing} encoded frame through this shim instead.
    The shim applies the plan's link faults — loss, fixed delay,
    duplication, reordering, single-byte corruption, per-link bandwidth
    caps (including WAN cross-region profiles) — and partition
    cuts, seeded per node from the run's master seed: given the same
    frame sequence, the same frames are dropped/held/corrupted,
    independent of wall clock or process interleaving.

    Suppressed frames vanish {e silently}: no [Drop] trace event and no
    drop counter, because the node's reliability layer retransmits
    unacknowledged frames and a later copy (usually) gets through —
    exactly like a lossy kernel buffer. Corrupted frames are detected by
    the receiver's CRC and surface there as [corrupt_frames].

    Partition windows are expressed in rounds; the shim maps wall time
    onto the round clock via the cluster epoch and tick period, so a
    [part=0-3|4-7@5..20] plan cuts live traffic during (roughly) the
    same protocol phase as in the simulator. *)

open Repro_engine

type t

val active : Fault.t -> bool
(** Does the plan contain anything this shim applies (link faults or
    partitions)? When [false], nodes skip the shim entirely and the live
    path is byte-identical to a plan-free run. *)

val create : plan:Fault.t -> seed:int -> node:int -> epoch:float -> tick_period:float -> t
(** Per-node shim; [seed] is the run's master seed (the shim derives a
    private substream), [epoch]/[tick_period] anchor the round clock.
    @raise Invalid_argument if [tick_period <= 0]. *)

val send : t -> now:float -> dst:int -> bytes -> queue:(bytes -> unit) -> unit
(** Route one encoded frame: either pass it (possibly corrupted, and
    possibly twice) to [queue] now, hold it for later release, or drop
    it. [queue] must copy or consume the bytes synchronously (the
    transport's write buffer does). *)

val pending : t -> bool
(** Frames currently held by delay/reorder faults. *)

val flush_due : t -> now:float -> queue:(dst:int -> bytes -> unit) -> unit
(** Release held frames whose time has come. The caller queues them on
    the (current) connection to [dst], or drops them if the link is not
    ready — retransmission covers the loss. *)
