(** Length-prefixed wire envelope for the socket transports.

    The {!Repro_discovery.Wire} codecs serialise a payload's identifier
    set; a live byte stream additionally needs framing and integrity.
    Every message on a UDS/TCP connection travels as one envelope:
    a 20-byte header — magic, version, sender node id, the sender's tick
    stamp, body length, CRC-32 covering the addressing header and the
    body — followed by the [Wire]-encoded payload body.

    Decoding is incremental (a TCP read may deliver half a frame) and
    defensive: truncation is [`Need_more], while corruption — bad magic,
    unknown version, out-of-bounds length, CRC mismatch — is [`Corrupt]
    with a reason, and a hostile length field is bounded {e before} any
    allocation depends on it. *)

type t = {
  src : int;  (** sender's node id *)
  stamp : int;  (** sender's tick count when the message was sent *)
  body : bytes;  (** [Wire]-encoded payload *)
}

val header_size : int
(** 20 bytes. *)

val max_body : int
(** Upper bound on [Bytes.length body] accepted by both directions. *)

val encoded_size : t -> int
(** [header_size + length body]. *)

val encode : t -> bytes
(** @raise Invalid_argument on a negative/overflowing [src] or [stamp],
    or a body larger than {!max_body}. *)

val decode : bytes -> off:int -> len:int -> [ `Frame of t * int | `Need_more | `Corrupt of string ]
(** [decode buf ~off ~len] inspects the [len] bytes at [off].
    [`Frame (env, consumed)] hands back one complete envelope and how
    many bytes it occupied; [`Need_more] means the buffer holds only a
    frame prefix; [`Corrupt] means the stream can no longer be trusted
    (the connection should be dropped — there is no resynchronisation). *)

val crc32 : bytes -> int -> int -> int
(** [crc32 buf off len]: CRC-32 (IEEE) of a byte range — exposed for
    tests. *)
