(** Length-prefixed wire envelope for the socket transports.

    The {!Repro_discovery.Wire} codecs serialise a payload's identifier
    set; a live byte stream additionally needs framing, integrity and —
    since the reliability layer — delivery bookkeeping. Every message on
    a UDS/TCP connection travels as one envelope: a 28-byte header —
    magic, version, frame {!kind}, sender node id, the sender's tick
    stamp, a per-link sequence number, a cumulative ack, body length,
    CRC-32 covering the whole header and the body — followed by the
    [Wire]-encoded payload body.

    Frame kinds: [Data] carries an algorithm payload and occupies one
    slot in the per-link sequence space; [Ack] is a pure cumulative
    acknowledgement (empty body, [seq = 0]); [Hello] announces a fresh
    incarnation after a restart and asks the receiver to reset its link
    state for the sender (empty body, [seq = 0]); [Done] is termination
    gossip — a bare probe/confirmation that the sender's knowledge is
    complete. Every frame additionally carries a completion flag
    ([comp]), so any traffic at all doubles as termination gossip.

    Decoding is incremental (a TCP read may deliver half a frame) and
    defensive: truncation is [`Need_more], while corruption — bad magic,
    unknown version or kind, out-of-bounds length, CRC mismatch — is
    [`Corrupt] with a reason, and a hostile length field is bounded
    {e before} any allocation depends on it. *)

type kind = Data | Ack | Hello | Done

type t = {
  kind : kind;
  src : int;  (** sender's node id *)
  stamp : int;  (** sender's tick count when the message was sent *)
  seq : int;  (** per-link data sequence number (1-based; 0 for bare frames) *)
  ack : int;  (** cumulative: highest in-order seq received from the destination *)
  comp : bool;  (** the sender's knowledge was complete when this frame left *)
  body : bytes;  (** [Wire]-encoded payload (empty for bare frames) *)
}

val header_size : int
(** 28 bytes. *)

val max_body : int
(** Upper bound on [Bytes.length body] accepted by both directions. *)

val kind_name : kind -> string
(** ["data"], ["ack"], ["hello"] or ["done"]. *)

val peek_kind : bytes -> kind option
(** The frame kind of an encoded envelope, read from the header without
    a full decode (no CRC check) — used by the mux runtime to classify a
    frame it is about to transmit. [None] if the buffer is too short or
    the kind byte is unknown. *)

val crc_mismatch : string
(** The exact [`Corrupt] reason produced by a CRC failure — receivers
    key the [corrupt_frames] counter on it (all other corruption counts
    as a decode error). *)

val encoded_size : t -> int
(** [header_size + length body]. *)

val encode : t -> bytes
(** @raise Invalid_argument on a negative/overflowing [src], [stamp],
    [seq] or [ack], or a body larger than {!max_body}. *)

val decode : bytes -> off:int -> len:int -> [ `Frame of t * int | `Need_more | `Corrupt of string ]
(** [decode buf ~off ~len] inspects the [len] bytes at [off].
    [`Frame (env, consumed)] hands back one complete envelope and how
    many bytes it occupied; [`Need_more] means the buffer holds only a
    frame prefix; [`Corrupt] means the stream can no longer be trusted
    (the connection should be dropped — there is no resynchronisation). *)

val crc32 : bytes -> int -> int -> int
(** [crc32 buf off len]: CRC-32 (IEEE) of a byte range — exposed for
    tests. *)
