(* The deployment address table: index = node id, entry = where that
   node listens. Three entry spellings:

     /path/to/node.sock   unix-domain socket (anything containing '/')
     PORT                 TCP on the loopback interface
     HOST:PORT            TCP on an explicit host (numeric IP, or a name
                          resolved at parse time)

   The textual table is either a comma-separated list (the --peers
   flag) or a file with one entry per line, where blank lines and
   '#'-comments are ignored — a fleet's table can live next to its
   launch scripts and be passed around verbatim. *)

type t = Unix.sockaddr array

let parse_entry s =
  if String.contains s '/' then Ok (Unix.ADDR_UNIX s)
  else
    match int_of_string_opt s with
    | Some port when port > 0 && port < 65536 ->
      Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    | Some _ -> Error (Printf.sprintf "port %S out of range" s)
    | None -> (
      match String.rindex_opt s ':' with
      | None -> Error (Printf.sprintf "bad address %S (want a socket path, PORT or HOST:PORT)" s)
      | Some i -> (
        let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> (
          match Unix.inet_addr_of_string host with
          | a -> Ok (Unix.ADDR_INET (a, p))
          | exception Failure _ -> (
            (* not a literal IP: resolve the name once, at parse time *)
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
              Error (Printf.sprintf "host %S has no address" host)
            | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), p))
            | exception Not_found -> Error (Printf.sprintf "cannot resolve host %S" host)))
        | _ -> Error (Printf.sprintf "bad address %S" s)))

let entry_to_string = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let of_entries entries =
  let rec go acc idx = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | e :: rest -> (
      match parse_entry e with
      | Ok a -> go (a :: acc) (idx + 1) rest
      | Error msg -> Error (Printf.sprintf "entry %d: %s" idx msg))
  in
  go [] 0 entries

let significant line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None else Some line

let of_string text =
  of_entries (List.filter_map significant (String.split_on_char '\n' text))

let to_string table =
  String.concat "" (List.map (fun a -> entry_to_string a ^ "\n") (Array.to_list table))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
    match of_string text with
    | Ok table -> Ok table
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

let save path table = Out_channel.with_open_text path (fun oc -> output_string oc (to_string table))

let scheme table = Transport.Table table

let index_of table addr =
  match parse_entry addr with
  | Error _ -> None
  | Ok target ->
    let found = ref None in
    Array.iteri (fun i a -> if !found = None && a = target then found := Some i) table;
    !found
