open Repro_util
open Repro_engine

(* Frames held back by delay/reorder faults, awaiting their release
   time. The list is tiny (bounded by in-flight frames on faulted
   links), so a plain list beats a heap here. *)
type held = { release : float; dst : int; frame : bytes }

type t = {
  plan : Fault.t;
  rng : Rng.t;
  node : int;
  epoch : float;
  tick_period : float;
  mutable held : held list;
  (* per-destination bandwidth windows: dst -> (window, frames sent) *)
  caps : (int, int * int) Hashtbl.t;
}

let active plan = Fault.has_link_faults plan || Fault.partitions plan <> []

let create ~plan ~seed ~node ~epoch ~tick_period =
  if tick_period <= 0.0 then invalid_arg "Faultnet.create: tick_period must be positive";
  {
    plan;
    (* one private substream per node: outcomes depend only on the seed
       and this node's frame sequence, not on wall clock or siblings *)
    rng = Rng.substream ~seed ~index:(0xfa00 + node);
    node;
    epoch;
    tick_period;
    held = [];
    caps = Hashtbl.create (if Fault.has_caps plan then 8 else 1);
  }

(* Map wall time to the simulator's round clock so partition windows
   mean the same thing on both paths: tick k fires ~k*tick_period after
   the epoch, so (now - epoch) / tick_period is the current "round". *)
let round_now t ~now = (now -. t.epoch) /. t.tick_period

let corrupt_copy t frame =
  let b = Bytes.copy frame in
  let i = Rng.int t.rng (Bytes.length b) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  b

let pending t = t.held <> []

let over_cap t ~now ~dst cap =
  (* cap frames per tick-period window per destination; like loss and
     partitions the excess is silently swallowed and retransmission
     recovers, modelling a saturated WAN link *)
  let window = int_of_float (round_now t ~now) in
  let used =
    match Hashtbl.find_opt t.caps dst with Some (w, u) when w = window -> u | _ -> 0
  in
  Hashtbl.replace t.caps dst (window, used + 1);
  used >= cap

let send t ~now ~dst frame ~queue =
  let lk = Fault.link_between t.plan ~src:t.node ~dst in
  if Fault.cut t.plan ~src:t.node ~dst ~time:(round_now t ~now) then ()
    (* partitioned: silently swallowed — the reliability layer's
       retransmission delivers it after the heal *)
  else if lk.Fault.cap > 0 && over_cap t ~now ~dst lk.Fault.cap then ()
  else if lk.Fault.loss > 0.0 && Rng.bernoulli t.rng ~p:lk.Fault.loss then ()
  else begin
    let frame =
      if lk.Fault.corrupt > 0.0 && Rng.bernoulli t.rng ~p:lk.Fault.corrupt then
        corrupt_copy t frame
      else frame
    in
    let emit frame =
      if lk.Fault.delay > 0 then
        t.held <-
          { release = now +. (float_of_int lk.Fault.delay *. t.tick_period); dst; frame }
          :: t.held
      else if lk.Fault.reorder > 0.0 && Rng.bernoulli t.rng ~p:lk.Fault.reorder then
        (* reorder: hold one tick so later frames overtake this one *)
        t.held <- { release = now +. t.tick_period; dst; frame } :: t.held
      else queue frame
    in
    emit frame;
    if lk.Fault.dup > 0.0 && Rng.bernoulli t.rng ~p:lk.Fault.dup then emit (Bytes.copy frame)
  end

let flush_due t ~now ~queue =
  if t.held <> [] then begin
    let due, still = List.partition (fun h -> h.release <= now) t.held in
    t.held <- still;
    (* oldest first: held frames were consed newest-first *)
    List.iter (fun h -> queue ~dst:h.dst h.frame) (List.rev due)
  end
