(** Harness ⇄ node control protocol.

    Each node process holds one duplex control channel (a socketpair
    inherited across the fork) to the {!Cluster} harness. The node
    streams its lifecycle upward as plain text lines; the harness sends
    a single-byte command down. Line formats:

    - ["E <time> <event...>"] — one {!Repro_engine.Trace.event},
      timestamped against the cluster epoch. The harness merges all
      nodes' event streams by time and feeds them to the trace sinks and
      the online invariant checker.
    - ["C <time> <tick>"] — the node's knowledge just became complete
      (it knows all [n] identifiers), at its local tick [tick]. The
      harness declares convergence when every surviving node has said
      this.
    - ["F <totals...>"] — final report on graceful shutdown: tick count
      and message counters ({!final}).
    - ["H"] (harness → node) — halt: finish up, emit the final report,
      exit. *)

open Repro_engine

type final = {
  ticks : int;
  sent : int;
  delivered : int;
  dropped : int;
  pointers : int;
  bytes : int;
  complete_tick : int option;  (** local tick at which knowledge became complete *)
  decode_errors : int;  (** malformed envelopes/payloads received (0 on a healthy link) *)
  retransmits : int;  (** frames re-sent by the reliability layer *)
  corrupt_frames : int;  (** received frames rejected by their CRC *)
}

type msg = Event of float * Trace.event | Completed of float * int | Final of final

val event_line : time:float -> Trace.event -> string
val completed_line : time:float -> tick:int -> string
val final_line : final -> string

val halt_line : string
(** The halt command, as a line. *)

val parse : string -> (msg, string) result
(** Parse one node→harness line (without requiring the trailing
    newline). *)
