open Repro_engine
open Repro_discovery

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
  control_fd : Unix.file_descr option;
  epoch : float;
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;
  connect_retries : int;
  backoff : float;
  encoding : Wire.encoding;
}

let default_tick_period = 0.01
let default_idle_timeout = 1.0
let default_connect_retries = 8
let default_backoff = 0.02

type report = { final : Control.final; halted : bool }

(* Outgoing link to one peer. Frames queued while no connection is
   established wait in [pending] (newest first) and are moved onto the
   connection once it is writable; every failed attempt backs off
   exponentially until the retry budget is spent, after which the peer
   is declared dead and queued frames are dropped. *)
type link_state =
  | No_conn  (** nothing in flight; connect on next send / retry slot *)
  | Connecting of Transport.Conn.t
  | Ready of Transport.Conn.t
  | Dead

type link = {
  mutable state : link_state;
  mutable pending : bytes list;
  mutable pending_count : int;
  mutable attempt : int;
  mutable retry_at : float;
}

type t = {
  cfg : config;
  inst : Algorithm.instance;
  links : link array;
  mutable incoming : Transport.Conn.t list;
  listen_fd : Unix.file_descr;
  own_listener : bool;  (** we bound it ourselves, so we unlink/close it *)
  control : Transport.Conn.t option;  (** write side of the control channel *)
  mutable tick_count : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pointers : int;
  mutable bytes : int;
  mutable decode_errors : int;
  mutable complete_tick : int option;
  mutable complete_announced : bool;
  mutable last_activity : float;
  mutable halted : bool;
  mutable running : bool;
}

let now_rel t = Unix.gettimeofday () -. t.cfg.epoch

let emit t (ev : Trace.event) =
  match t.control with
  | None -> ()
  | Some c -> Transport.Conn.queue c (Bytes.of_string (Control.event_line ~time:(now_rel t) ev))

let control_send t line =
  match t.control with
  | None -> ()
  | Some c -> Transport.Conn.queue c (Bytes.of_string line)

(* --- connection management ----------------------------------------- *)

let drop_link_frames t dst count =
  for _ = 1 to count do
    t.dropped <- t.dropped + 1;
    emit t (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
  done

let declare_dead t dst =
  let link = t.links.(dst) in
  (match link.state with
  | Connecting c | Ready c ->
    drop_link_frames t dst (Transport.Conn.queued_frames c);
    Transport.Conn.close c
  | No_conn | Dead -> ());
  drop_link_frames t dst link.pending_count;
  link.pending <- [];
  link.pending_count <- 0;
  link.state <- Dead

let connect_failed t dst =
  let link = t.links.(dst) in
  (match link.state with
  | Connecting c -> Transport.Conn.close c
  | No_conn | Ready _ | Dead -> ());
  link.state <- No_conn;
  link.attempt <- link.attempt + 1;
  if link.attempt > t.cfg.connect_retries then declare_dead t dst
  else
    (* exponential backoff: base, 2·base, 4·base, ... *)
    link.retry_at <-
      Unix.gettimeofday () +. (t.cfg.backoff *. float_of_int (1 lsl min (link.attempt - 1) 10))

let promote_ready t dst conn =
  let link = t.links.(dst) in
  link.state <- Ready conn;
  link.attempt <- 0;
  List.iter (Transport.Conn.queue conn) (List.rev link.pending);
  link.pending <- [];
  link.pending_count <- 0

let start_connect t dst =
  let link = t.links.(dst) in
  let fd = Unix.socket (Transport.domain t.cfg.scheme) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.set_nonblock fd;
  match Unix.connect fd (Transport.sockaddr t.cfg.scheme dst) with
  | () -> promote_ready t dst (Transport.Conn.create fd)
  | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _) ->
    link.state <- Connecting (Transport.Conn.create fd)
  | exception Unix.Unix_error (_, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    connect_failed t dst

let maybe_connect t dst =
  let link = t.links.(dst) in
  match link.state with
  | No_conn when (link.pending_count > 0 || link.attempt = 0) && Unix.gettimeofday () >= link.retry_at
    ->
    start_connect t dst
  | _ -> ()

(* deliver a payload locally (self-sends skip the network entirely) *)
let deliver t ~src payload =
  t.delivered <- t.delivered + 1;
  t.last_activity <- Unix.gettimeofday ();
  emit t (Trace.Deliver { src; dst = t.cfg.node });
  t.inst.Algorithm.receive ~src payload

let announce_if_complete t =
  if (not t.complete_announced) && Knowledge.is_complete t.inst.Algorithm.knowledge then begin
    t.complete_announced <- true;
    t.complete_tick <- Some t.tick_count;
    control_send t (Control.completed_line ~time:(now_rel t) ~tick:t.tick_count)
  end

let send_payload t ~dst payload =
  if dst < 0 || dst >= t.cfg.n then invalid_arg "Node.send: destination out of range";
  let pointers = Payload.measure payload in
  let body = Wire.encode t.cfg.encoding ~universe:t.cfg.n payload in
  t.sent <- t.sent + 1;
  t.pointers <- t.pointers + pointers;
  t.bytes <- t.bytes + Bytes.length body;
  emit t (Trace.Send { src = t.cfg.node; dst; pointers; bytes = Bytes.length body });
  if dst = t.cfg.node then deliver t ~src:t.cfg.node payload
  else begin
    let link = t.links.(dst) in
    match link.state with
    | Dead ->
      t.dropped <- t.dropped + 1;
      emit t (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
    | Ready conn ->
      Transport.Conn.queue conn
        (Envelope.encode { Envelope.src = t.cfg.node; stamp = t.tick_count; body })
    | No_conn | Connecting _ ->
      link.pending <-
        Envelope.encode { Envelope.src = t.cfg.node; stamp = t.tick_count; body } :: link.pending;
      link.pending_count <- link.pending_count + 1;
      maybe_connect t dst
  end

let do_tick t =
  t.tick_count <- t.tick_count + 1;
  emit t (Trace.Tick { node = t.cfg.node; time = now_rel t; count = t.tick_count });
  t.inst.Algorithm.round ~round:t.tick_count ~send:(fun ~dst payload -> send_payload t ~dst payload);
  announce_if_complete t

let handle_envelope t (env : Envelope.t) =
  if env.Envelope.src < 0 || env.Envelope.src >= t.cfg.n || env.Envelope.src = t.cfg.node then
    t.decode_errors <- t.decode_errors + 1
  else
    match Wire.decode t.cfg.encoding ~universe:t.cfg.n env.Envelope.body with
    | Error _ -> t.decode_errors <- t.decode_errors + 1
    | Ok payload ->
      deliver t ~src:env.Envelope.src payload;
      announce_if_complete t

(* --- the event loop ------------------------------------------------- *)

let restarting_select rfds wfds timeout =
  try Unix.select rfds wfds [] timeout
  with Unix.Unix_error (EINTR, _, _) -> ([], [], [])

let final_report t =
  {
    Control.ticks = t.tick_count;
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    pointers = t.pointers;
    bytes = t.bytes;
    complete_tick = t.complete_tick;
    decode_errors = t.decode_errors;
  }

let flush_control t ~deadline =
  match t.control with
  | None -> ()
  | Some c ->
    let rec go () =
      match Transport.Conn.flush c with
      | `Closed -> ()
      | `Ok ->
        if Transport.Conn.pending_out c && Unix.gettimeofday () < deadline then begin
          ignore
            (restarting_select [] [ Transport.Conn.fd c ]
               (max 0.01 (deadline -. Unix.gettimeofday ())));
          go ()
        end
    in
    go ()

let shutdown t =
  (* best-effort: push any queued data frames out, then the final report *)
  let deadline = Unix.gettimeofday () +. 0.5 in
  Array.iter
    (fun link ->
      match link.state with
      | Ready conn ->
        ignore (Transport.Conn.flush conn);
        Transport.Conn.close conn
      | Connecting conn -> Transport.Conn.close conn
      | No_conn | Dead -> ())
    t.links;
  List.iter Transport.Conn.close t.incoming;
  control_send t (Control.final_line (final_report t));
  flush_control t ~deadline;
  (match t.control with Some c -> Transport.Conn.close c | None -> ());
  if t.own_listener then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match Transport.sockaddr t.cfg.scheme t.cfg.node with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end

let run cfg =
  if cfg.n <= 0 then invalid_arg "Node.run: n must be positive";
  if cfg.node < 0 || cfg.node >= cfg.n then invalid_arg "Node.run: node out of range";
  if cfg.tick_period <= 0.0 then invalid_arg "Node.run: tick period must be positive";
  (* a write to a freshly-dead peer must surface as EPIPE, not a signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let labels = Exec.labels_of ~seed:cfg.seed cfg.n in
  let ctx =
    {
      Algorithm.n = cfg.n;
      node = cfg.node;
      neighbors = cfg.neighbors;
      labels;
      rng = Repro_util.Rng.substream ~seed:cfg.seed ~index:(cfg.node + 1);
      params = Params.default;
    }
  in
  let listen_fd, own_listener =
    match cfg.listen_fd with
    | Some fd -> (fd, false)
    | None -> (Transport.listen_socket cfg.scheme cfg.node, true)
  in
  let t =
    {
      cfg;
      inst = cfg.algo.Algorithm.make ctx;
      links =
        Array.init cfg.n (fun _ ->
            { state = No_conn; pending = []; pending_count = 0; attempt = 0; retry_at = 0.0 });
      incoming = [];
      listen_fd;
      own_listener;
      control = Option.map Transport.Conn.create cfg.control_fd;
      tick_count = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      pointers = 0;
      bytes = 0;
      decode_errors = 0;
      complete_tick = None;
      complete_announced = false;
      last_activity = Unix.gettimeofday ();
      halted = false;
      running = true;
    }
  in
  emit t (Trace.Join { node = cfg.node });
  announce_if_complete t;
  let next_tick = ref (Unix.gettimeofday () +. cfg.tick_period) in
  while t.running do
    let now = Unix.gettimeofday () in
    (* fire the tick timer *)
    if now >= !next_tick then begin
      if t.tick_count < cfg.max_ticks then do_tick t
      else if t.control = None then t.running <- false;
      (* re-arm relative to now: a stalled process must not burst *)
      next_tick := Unix.gettimeofday () +. cfg.tick_period
    end;
    (* retry slots for links in backoff *)
    for dst = 0 to cfg.n - 1 do
      maybe_connect t dst
    done;
    (* opportunistic flush of every ready link *)
    Array.iteri
      (fun dst link ->
        match link.state with
        | Ready conn -> if Transport.Conn.flush conn = `Closed then connect_failed t dst
        | No_conn | Connecting _ | Dead -> ())
      t.links;
    (match t.control with Some c -> ignore (Transport.Conn.flush c) | None -> ());
    (* assemble the select sets *)
    let rfds = ref [ t.listen_fd ] in
    List.iter (fun c -> rfds := Transport.Conn.fd c :: !rfds) t.incoming;
    (match cfg.control_fd with Some fd -> rfds := fd :: !rfds | None -> ());
    let wfds = ref [] in
    Array.iter
      (fun link ->
        match link.state with
        | Connecting c -> wfds := Transport.Conn.fd c :: !wfds
        | Ready c -> if Transport.Conn.pending_out c then wfds := Transport.Conn.fd c :: !wfds
        | No_conn | Dead -> ())
      t.links;
    (match t.control with
    | Some c -> if Transport.Conn.pending_out c then wfds := Transport.Conn.fd c :: !wfds
    | None -> ());
    let now = Unix.gettimeofday () in
    let timeout = ref (!next_tick -. now) in
    Array.iter
      (fun link ->
        match link.state with
        | No_conn when link.pending_count > 0 -> timeout := min !timeout (link.retry_at -. now)
        | _ -> ())
      t.links;
    let timeout = max 0.0 (min !timeout cfg.tick_period) in
    let readable, writable, _ = restarting_select !rfds !wfds timeout in
    (* connect completions and write progress *)
    Array.iteri
      (fun dst link ->
        match link.state with
        | Connecting c when List.mem (Transport.Conn.fd c) writable -> (
          match Unix.getsockopt_error (Transport.Conn.fd c) with
          | None -> promote_ready t dst c
          | Some _ -> connect_failed t dst)
        | Ready c when List.mem (Transport.Conn.fd c) writable ->
          if Transport.Conn.flush c = `Closed then connect_failed t dst
        | _ -> ())
      t.links;
    (* accept new incoming connections *)
    if List.mem t.listen_fd readable then begin
      let accepting = ref true in
      while !accepting do
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> t.incoming <- Transport.Conn.create fd :: t.incoming
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done
    end;
    (* drain incoming data *)
    t.incoming <-
      List.filter
        (fun c ->
          if List.mem (Transport.Conn.fd c) readable then begin
            match Transport.Conn.read c ~handle:(handle_envelope t) with
            | `Ok -> true
            | `Closed ->
              Transport.Conn.close c;
              false
            | `Corrupt _ ->
              t.decode_errors <- t.decode_errors + 1;
              Transport.Conn.close c;
              false
          end
          else true)
        t.incoming;
    (* control commands from the harness *)
    (match cfg.control_fd with
    | Some fd when List.mem fd readable ->
      let buf = Bytes.create 64 in
      let reading = ref true in
      while !reading do
        match Unix.read fd buf 0 64 with
        | 0 ->
          (* harness is gone: shut down rather than run orphaned *)
          t.running <- false;
          reading := false
        | k ->
          for i = 0 to k - 1 do
            if Bytes.get buf i = 'H' then begin
              t.halted <- true;
              t.running <- false
            end
          done
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> reading := false
        | exception Unix.Unix_error _ ->
          t.running <- false;
          reading := false
      done
    | _ -> ());
    (* standalone convergence: complete and quiet for the idle window *)
    if
      t.running && cfg.control_fd = None && t.complete_announced
      && Unix.gettimeofday () -. t.last_activity >= cfg.idle_timeout
    then t.running <- false
  done;
  shutdown t;
  { final = final_report t; halted = t.halted }
