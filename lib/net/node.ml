open Repro_util
open Repro_engine
open Repro_discovery

(* Decorrelated-jitter backoff (the AWS variant): the first delay is
   [base]; each subsequent delay is uniform in [base, min cap (3 * prev)].
   Retries desynchronise instead of thundering in lockstep, and the draw
   comes from a seeded RNG rather than wall clock so a run's retry
   schedule is reproducible. *)
module Backoff = struct
  type t = { rng : Rng.t; base : float; cap : float; mutable current : float }

  let create ~rng ~base ~cap =
    if base <= 0.0 then invalid_arg "Node.Backoff.create: base must be positive";
    if cap < base then invalid_arg "Node.Backoff.create: cap must be at least base";
    { rng; base; cap; current = 0.0 }

  let next t =
    let hi = Float.min t.cap (t.current *. 3.0) in
    let d = if hi <= t.base then t.base else t.base +. Rng.float t.rng (hi -. t.base) in
    t.current <- d;
    d

  let reset t = t.current <- 0.0
end

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
  control_fd : Unix.file_descr option;
  epoch : float;
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;
  connect_retries : int;
  backoff : float;
  backoff_cap : float;
  rto : float;
  fault : Fault.t;
  announce : bool;
  encoding : Wire.encoding;
}

let default_tick_period = 0.01
let default_idle_timeout = 1.0
let default_connect_retries = 8
let default_backoff = 0.02
let default_backoff_cap = 0.5
let default_rto = 0.05
let hello_interval = 50

type report = { final : Control.final; halted : bool }

(* Outgoing link to one peer. Data payloads live in [sendbuf] from the
   moment they are sent until the peer's cumulative ack covers them;
   frames are (re)encoded at transmission time so sequence numbers and
   piggybacked acks are always current. [base_seq] is the sequence number
   of the frame at the queue's front. *)
type link_state =
  | No_conn  (** nothing in flight; connect on next send / retry slot *)
  | Connecting of Transport.Conn.t
  | Ready of Transport.Conn.t
  | Dead

type frame = { stamp : int; body : bytes; mutable txed : bool }

type link = {
  mutable state : link_state;
  mutable attempt : int;
  mutable retry_at : float;
  sendbuf : frame Queue.t;
  mutable base_seq : int;
  mutable rto_at : float;
  mutable recv_cum : int;  (** highest in-order data seq received from this peer *)
  mutable ack_owed : bool;
  mutable hello_owed : bool;
  backoff : Backoff.t;
}

type t = {
  cfg : config;
  inst : Algorithm.instance;
  links : link array;
  fn : Faultnet.t option;
  mutable incoming : Transport.Conn.t list;
  listen_fd : Unix.file_descr;
  own_listener : bool;  (** we bound it ourselves, so we unlink/close it *)
  control : Transport.Conn.t option;  (** write side of the control channel *)
  mutable tick_count : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pointers : int;
  mutable bytes : int;
  mutable decode_errors : int;
  mutable retransmits : int;
  mutable corrupt_frames : int;
  mutable complete_tick : int option;
  mutable complete_announced : bool;
  mutable last_activity : float;
  mutable halted : bool;
  mutable running : bool;
}

let now_rel t = Unix.gettimeofday () -. t.cfg.epoch

let emit t (ev : Trace.event) =
  match t.control with
  | None -> ()
  | Some c -> Transport.Conn.queue c (Bytes.of_string (Control.event_line ~time:(now_rel t) ev))

let control_send t line =
  match t.control with
  | None -> ()
  | Some c -> Transport.Conn.queue c (Bytes.of_string line)

(* --- connection management ----------------------------------------- *)

let need_traffic link =
  (not (Queue.is_empty link.sendbuf)) || link.ack_owed || link.hello_owed

(* Every encoded frame to a peer passes through the fault shim when one
   is active; the shim calls [queue] zero, one or two times. *)
let queue_frame t ~dst conn frame =
  match t.fn with
  | None -> Transport.Conn.queue conn frame
  | Some fn ->
    Faultnet.send fn ~now:(Unix.gettimeofday ()) ~dst frame ~queue:(Transport.Conn.queue conn)

let drop_link_frames t dst count =
  for _ = 1 to count do
    t.dropped <- t.dropped + 1;
    emit t (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
  done

let declare_dead t dst =
  let link = t.links.(dst) in
  (match link.state with
  | Connecting c | Ready c -> Transport.Conn.close c
  | No_conn | Dead -> ());
  drop_link_frames t dst (Queue.length link.sendbuf);
  Queue.clear link.sendbuf;
  link.ack_owed <- false;
  link.hello_owed <- false;
  link.state <- Dead

(* A peer that the plan revives is worth waiting for: cap the attempt
   counter instead of declaring it dead, and let the capped backoff keep
   probing until the supervisor re-forks it. *)
let will_return t dst = Fault.restart_round t.cfg.fault ~node:dst <> None

let connect_failed t dst =
  let link = t.links.(dst) in
  (match link.state with
  | Connecting c | Ready c -> Transport.Conn.close c
  | No_conn | Dead -> ());
  link.state <- No_conn;
  link.attempt <- link.attempt + 1;
  if link.attempt > t.cfg.connect_retries && not (will_return t dst) then declare_dead t dst
  else begin
    if link.attempt > t.cfg.connect_retries then link.attempt <- t.cfg.connect_retries + 1;
    link.retry_at <- Unix.gettimeofday () +. Backoff.next link.backoff
  end

(* (Re)transmit data frames on a ready link: all of them when [resend]
   (fresh connection or retransmission timeout), otherwise only frames
   never yet put on the wire. Acks ride along for free. *)
let transmit_data t dst ~resend =
  let link = t.links.(dst) in
  match link.state with
  | Ready conn ->
    let any = ref false in
    let seq = ref link.base_seq in
    Queue.iter
      (fun f ->
        if resend || not f.txed then begin
          if f.txed then t.retransmits <- t.retransmits + 1;
          queue_frame t ~dst conn
            (Envelope.encode
               {
                 Envelope.kind = Envelope.Data;
                 src = t.cfg.node;
                 stamp = f.stamp;
                 seq = !seq;
                 ack = link.recv_cum;
                 body = f.body;
               });
          f.txed <- true;
          any := true
        end;
        incr seq)
      link.sendbuf;
    if !any then begin
      link.ack_owed <- false;
      link.rto_at <- Unix.gettimeofday () +. t.cfg.rto
    end
  | No_conn | Connecting _ | Dead -> ()

let send_bare t ~dst kind ~ack =
  let link = t.links.(dst) in
  match link.state with
  | Ready conn ->
    queue_frame t ~dst conn
      (Envelope.encode
         {
           Envelope.kind;
           src = t.cfg.node;
           stamp = t.tick_count;
           seq = 0;
           ack;
           body = Bytes.empty;
         })
  | No_conn | Connecting _ | Dead -> ()

let promote_ready t dst conn =
  let link = t.links.(dst) in
  link.state <- Ready conn;
  link.attempt <- 0;
  Backoff.reset link.backoff;
  if link.hello_owed then begin
    send_bare t ~dst Envelope.Hello ~ack:0;
    link.hello_owed <- false
  end;
  (* anything unacked may have died with the previous connection *)
  transmit_data t dst ~resend:true;
  if link.ack_owed then begin
    send_bare t ~dst Envelope.Ack ~ack:link.recv_cum;
    link.ack_owed <- false
  end

let start_connect t dst =
  let link = t.links.(dst) in
  let fd = Unix.socket (Transport.domain t.cfg.scheme) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.set_nonblock fd;
  match Unix.connect fd (Transport.sockaddr t.cfg.scheme dst) with
  | () -> promote_ready t dst (Transport.Conn.create fd)
  | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _) ->
    link.state <- Connecting (Transport.Conn.create fd)
  | exception Unix.Unix_error (_, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    connect_failed t dst

let maybe_connect t dst =
  if dst <> t.cfg.node then
    let link = t.links.(dst) in
    match link.state with
    | No_conn
      when (need_traffic link || link.attempt = 0) && Unix.gettimeofday () >= link.retry_at ->
      start_connect t dst
    | _ -> ()

(* deliver a payload locally (self-sends skip the network entirely) *)
let deliver t ~src payload =
  t.delivered <- t.delivered + 1;
  t.last_activity <- Unix.gettimeofday ();
  emit t (Trace.Deliver { src; dst = t.cfg.node });
  t.inst.Algorithm.receive ~src payload

let announce_if_complete t =
  if (not t.complete_announced) && Knowledge.is_complete t.inst.Algorithm.knowledge then begin
    t.complete_announced <- true;
    t.complete_tick <- Some t.tick_count;
    control_send t (Control.completed_line ~time:(now_rel t) ~tick:t.tick_count)
  end

let send_payload t ~dst payload =
  if dst < 0 || dst >= t.cfg.n then invalid_arg "Node.send: destination out of range";
  let pointers = Payload.measure payload in
  let body = Wire.encode t.cfg.encoding ~universe:t.cfg.n payload in
  t.sent <- t.sent + 1;
  t.pointers <- t.pointers + pointers;
  t.bytes <- t.bytes + Bytes.length body;
  emit t (Trace.Send { src = t.cfg.node; dst; pointers; bytes = Bytes.length body });
  if dst = t.cfg.node then deliver t ~src:t.cfg.node payload
  else begin
    let link = t.links.(dst) in
    match link.state with
    | Dead ->
      t.dropped <- t.dropped + 1;
      emit t (Trace.Drop { src = t.cfg.node; dst; reason = Trace.Dead_dst })
    | Ready _ ->
      Queue.push { stamp = t.tick_count; body; txed = false } link.sendbuf;
      transmit_data t dst ~resend:false
    | No_conn | Connecting _ ->
      Queue.push { stamp = t.tick_count; body; txed = false } link.sendbuf;
      maybe_connect t dst
  end

let request_hellos t =
  Array.iter
    (fun dst ->
      if dst <> t.cfg.node then begin
        t.links.(dst).hello_owed <- true;
        maybe_connect t dst
      end)
    t.cfg.neighbors

let do_tick t =
  t.tick_count <- t.tick_count + 1;
  emit t (Trace.Tick { node = t.cfg.node; time = now_rel t; count = t.tick_count });
  (* a restarted node keeps announcing itself until its knowledge is
     whole again, in case an earlier hello (or its reply) was lost *)
  if t.cfg.announce && (not t.complete_announced) && t.tick_count mod hello_interval = 0 then
    request_hellos t;
  t.inst.Algorithm.round ~round:t.tick_count ~send:(fun ~dst payload -> send_payload t ~dst payload);
  announce_if_complete t

(* Pop everything the peer's cumulative ack covers. *)
let apply_ack t ~src ack =
  let link = t.links.(src) in
  let advanced = ref false in
  while (not (Queue.is_empty link.sendbuf)) && link.base_seq <= ack do
    ignore (Queue.pop link.sendbuf);
    link.base_seq <- link.base_seq + 1;
    advanced := true
  done;
  if Queue.is_empty link.sendbuf then link.rto_at <- infinity
  else if !advanced then link.rto_at <- Unix.gettimeofday () +. t.cfg.rto

(* A hello announces a fresh incarnation of [src]: whatever sequence
   state we shared with the previous one is void. Reset both directions,
   revive the link if we had written the peer off, and hand the newcomer
   our whole identifier set so it can rebuild its knowledge. *)
let handle_hello t ~src =
  let link = t.links.(src) in
  (match link.state with
  | Dead ->
    link.state <- No_conn;
    link.attempt <- 0;
    link.retry_at <- 0.0;
    Backoff.reset link.backoff
  | No_conn | Connecting _ | Ready _ -> ());
  link.base_seq <- 1;
  Queue.iter (fun f -> f.txed <- false) link.sendbuf;
  link.rto_at <- (if Queue.is_empty link.sendbuf then infinity else 0.0);
  link.recv_cum <- 0;
  link.ack_owed <- false;
  send_payload t ~dst:src
    (Payload.Share (Payload.Bits (Knowledge.snapshot t.inst.Algorithm.knowledge)))

let handle_envelope t (env : Envelope.t) =
  if env.Envelope.src < 0 || env.Envelope.src >= t.cfg.n || env.Envelope.src = t.cfg.node then
    t.decode_errors <- t.decode_errors + 1
  else begin
    let link = t.links.(env.Envelope.src) in
    match env.Envelope.kind with
    | Envelope.Ack -> apply_ack t ~src:env.Envelope.src env.Envelope.ack
    | Envelope.Hello -> handle_hello t ~src:env.Envelope.src
    | Envelope.Data ->
      apply_ack t ~src:env.Envelope.src env.Envelope.ack;
      if env.Envelope.seq = link.recv_cum + 1 then begin
        link.recv_cum <- env.Envelope.seq;
        link.ack_owed <- true;
        match Wire.decode t.cfg.encoding ~universe:t.cfg.n env.Envelope.body with
        | Error _ -> t.decode_errors <- t.decode_errors + 1
        | Ok payload ->
          deliver t ~src:env.Envelope.src payload;
          announce_if_complete t
      end
      else
        (* duplicate (retransmission of something we have) or a gap
           (something before it was lost): either way, re-ack what we
           hold and let go-back-N retransmission fill in the rest *)
        link.ack_owed <- true
  end

(* --- the event loop ------------------------------------------------- *)

let restarting_select rfds wfds timeout =
  try Unix.select rfds wfds [] timeout
  with Unix.Unix_error (EINTR, _, _) -> ([], [], [])

let final_report t =
  {
    Control.ticks = t.tick_count;
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    pointers = t.pointers;
    bytes = t.bytes;
    complete_tick = t.complete_tick;
    decode_errors = t.decode_errors;
    retransmits = t.retransmits;
    corrupt_frames = t.corrupt_frames;
  }

let flush_control t ~deadline =
  match t.control with
  | None -> ()
  | Some c ->
    let rec go () =
      match Transport.Conn.flush c with
      | `Closed -> ()
      | `Ok ->
        if Transport.Conn.pending_out c && Unix.gettimeofday () < deadline then begin
          ignore
            (restarting_select [] [ Transport.Conn.fd c ]
               (max 0.01 (deadline -. Unix.gettimeofday ())));
          go ()
        end
    in
    go ()

let shutdown t =
  (* best-effort: push any queued data frames out, then the final report *)
  let deadline = Unix.gettimeofday () +. 0.5 in
  Array.iter
    (fun link ->
      match link.state with
      | Ready conn ->
        ignore (Transport.Conn.flush conn);
        Transport.Conn.close conn
      | Connecting conn -> Transport.Conn.close conn
      | No_conn | Dead -> ())
    t.links;
  List.iter Transport.Conn.close t.incoming;
  control_send t (Control.final_line (final_report t));
  flush_control t ~deadline;
  (match t.control with Some c -> Transport.Conn.close c | None -> ());
  if t.own_listener then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match Transport.sockaddr t.cfg.scheme t.cfg.node with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end

let run cfg =
  if cfg.n <= 0 then invalid_arg "Node.run: n must be positive";
  if cfg.node < 0 || cfg.node >= cfg.n then invalid_arg "Node.run: node out of range";
  if cfg.tick_period <= 0.0 then invalid_arg "Node.run: tick period must be positive";
  if cfg.rto <= 0.0 then invalid_arg "Node.run: rto must be positive";
  (* a write to a freshly-dead peer must surface as EPIPE, not a signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let labels = Exec.labels_of ~seed:cfg.seed cfg.n in
  let ctx =
    {
      Algorithm.n = cfg.n;
      node = cfg.node;
      neighbors = cfg.neighbors;
      labels;
      rng = Rng.substream ~seed:cfg.seed ~index:(cfg.node + 1);
      params = Params.default;
    }
  in
  let listen_fd, own_listener =
    match cfg.listen_fd with
    | Some fd -> (fd, false)
    | None -> (Transport.listen_socket cfg.scheme cfg.node, true)
  in
  let backoff_rng = Rng.substream ~seed:cfg.seed ~index:(0xb0ff + cfg.node) in
  let t =
    {
      cfg;
      inst = cfg.algo.Algorithm.make ctx;
      links =
        Array.init cfg.n (fun _ ->
            {
              state = No_conn;
              attempt = 0;
              retry_at = 0.0;
              sendbuf = Queue.create ();
              base_seq = 1;
              rto_at = infinity;
              recv_cum = 0;
              ack_owed = false;
              hello_owed = false;
              backoff =
                Backoff.create ~rng:(Rng.split backoff_rng) ~base:cfg.backoff
                  ~cap:cfg.backoff_cap;
            });
      fn =
        (if Faultnet.active cfg.fault then
           Some
             (Faultnet.create ~plan:cfg.fault ~seed:cfg.seed ~node:cfg.node ~epoch:cfg.epoch
                ~tick_period:cfg.tick_period)
         else None);
      incoming = [];
      listen_fd;
      own_listener;
      control = Option.map Transport.Conn.create cfg.control_fd;
      tick_count = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      pointers = 0;
      bytes = 0;
      decode_errors = 0;
      retransmits = 0;
      corrupt_frames = 0;
      complete_tick = None;
      complete_announced = false;
      last_activity = Unix.gettimeofday ();
      halted = false;
      running = true;
    }
  in
  emit t (Trace.Join { node = cfg.node });
  announce_if_complete t;
  if cfg.announce then request_hellos t;
  let next_tick = ref (Unix.gettimeofday () +. cfg.tick_period) in
  while t.running do
    let now = Unix.gettimeofday () in
    (* fire the tick timer *)
    if now >= !next_tick then begin
      if t.tick_count < cfg.max_ticks then do_tick t
      else if t.control = None then t.running <- false;
      (* re-arm relative to now: a stalled process must not burst *)
      next_tick := Unix.gettimeofday () +. cfg.tick_period
    end;
    (* release frames the fault shim held back for delay/reorder *)
    (match t.fn with
    | Some fn when Faultnet.pending fn ->
      Faultnet.flush_due fn ~now:(Unix.gettimeofday ())
        ~queue:(fun ~dst frame ->
          match t.links.(dst).state with
          | Ready conn -> Transport.Conn.queue conn frame
          | No_conn | Connecting _ | Dead -> ())
    | _ -> ());
    (* retry slots for links in backoff *)
    for dst = 0 to cfg.n - 1 do
      maybe_connect t dst
    done;
    (* retransmission timeouts and owed bare acks / hellos *)
    let now = Unix.gettimeofday () in
    Array.iteri
      (fun dst link ->
        match link.state with
        | Ready _ ->
          if (not (Queue.is_empty link.sendbuf)) && now >= link.rto_at then
            transmit_data t dst ~resend:true;
          if link.hello_owed then begin
            send_bare t ~dst Envelope.Hello ~ack:0;
            link.hello_owed <- false
          end;
          if link.ack_owed then begin
            send_bare t ~dst Envelope.Ack ~ack:link.recv_cum;
            link.ack_owed <- false
          end
        | No_conn | Connecting _ | Dead -> ())
      t.links;
    (* opportunistic flush of every ready link *)
    Array.iteri
      (fun dst link ->
        match link.state with
        | Ready conn -> if Transport.Conn.flush conn = `Closed then connect_failed t dst
        | No_conn | Connecting _ | Dead -> ())
      t.links;
    (match t.control with Some c -> ignore (Transport.Conn.flush c) | None -> ());
    (* assemble the select sets *)
    let rfds = ref [ t.listen_fd ] in
    List.iter (fun c -> rfds := Transport.Conn.fd c :: !rfds) t.incoming;
    (match cfg.control_fd with Some fd -> rfds := fd :: !rfds | None -> ());
    let wfds = ref [] in
    Array.iter
      (fun link ->
        match link.state with
        | Connecting c -> wfds := Transport.Conn.fd c :: !wfds
        | Ready c -> if Transport.Conn.pending_out c then wfds := Transport.Conn.fd c :: !wfds
        | No_conn | Dead -> ())
      t.links;
    (match t.control with
    | Some c -> if Transport.Conn.pending_out c then wfds := Transport.Conn.fd c :: !wfds
    | None -> ());
    let now = Unix.gettimeofday () in
    let timeout = ref (!next_tick -. now) in
    Array.iter
      (fun link ->
        match link.state with
        | No_conn when need_traffic link -> timeout := min !timeout (link.retry_at -. now)
        | Ready _ when not (Queue.is_empty link.sendbuf) ->
          timeout := min !timeout (link.rto_at -. now)
        | _ -> ())
      t.links;
    let timeout = max 0.0 (min !timeout cfg.tick_period) in
    let readable, writable, _ = restarting_select !rfds !wfds timeout in
    (* connect completions and write progress *)
    Array.iteri
      (fun dst link ->
        match link.state with
        | Connecting c when List.mem (Transport.Conn.fd c) writable -> (
          match Unix.getsockopt_error (Transport.Conn.fd c) with
          | None -> promote_ready t dst c
          | Some _ -> connect_failed t dst)
        | Ready c when List.mem (Transport.Conn.fd c) writable ->
          if Transport.Conn.flush c = `Closed then connect_failed t dst
        | _ -> ())
      t.links;
    (* accept new incoming connections *)
    if List.mem t.listen_fd readable then begin
      let accepting = ref true in
      while !accepting do
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> t.incoming <- Transport.Conn.create fd :: t.incoming
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done
    end;
    (* drain incoming data *)
    t.incoming <-
      List.filter
        (fun c ->
          if List.mem (Transport.Conn.fd c) readable then begin
            match Transport.Conn.read c ~handle:(handle_envelope t) with
            | `Ok -> true
            | `Closed ->
              Transport.Conn.close c;
              false
            | `Corrupt reason ->
              if String.equal reason Envelope.crc_mismatch then
                t.corrupt_frames <- t.corrupt_frames + 1
              else t.decode_errors <- t.decode_errors + 1;
              Transport.Conn.close c;
              false
          end
          else true)
        t.incoming;
    (* control commands from the harness *)
    (match cfg.control_fd with
    | Some fd when List.mem fd readable ->
      let buf = Bytes.create 64 in
      let reading = ref true in
      while !reading do
        match Unix.read fd buf 0 64 with
        | 0 ->
          (* harness is gone: shut down rather than run orphaned *)
          t.running <- false;
          reading := false
        | k ->
          for i = 0 to k - 1 do
            if Bytes.get buf i = 'H' then begin
              t.halted <- true;
              t.running <- false
            end
          done
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> reading := false
        | exception Unix.Unix_error _ ->
          t.running <- false;
          reading := false
      done
    | _ -> ());
    (* standalone convergence: complete and quiet for the idle window *)
    if
      t.running && cfg.control_fd = None && t.complete_announced
      && Unix.gettimeofday () -. t.last_activity >= cfg.idle_timeout
    then t.running <- false
  done;
  shutdown t;
  { final = final_report t; halted = t.halted }
