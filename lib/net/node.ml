open Repro_util
open Repro_engine
open Repro_discovery

(* Decorrelated-jitter backoff (the AWS variant): the first delay is
   [base]; each subsequent delay is uniform in [base, min cap (3 * prev)].
   Retries desynchronise instead of thundering in lockstep, and the draw
   comes from a seeded RNG rather than wall clock so a run's retry
   schedule is reproducible. *)
module Backoff = struct
  type t = { rng : Rng.t; base : float; cap : float; mutable current : float }

  let create ~rng ~base ~cap =
    if base <= 0.0 then invalid_arg "Node.Backoff.create: base must be positive";
    if cap < base then invalid_arg "Node.Backoff.create: cap must be at least base";
    { rng; base; cap; current = 0.0 }

  let next t =
    let hi = Float.min t.cap (t.current *. 3.0) in
    let d = if hi <= t.base then t.base else t.base +. Rng.float t.rng (hi -. t.base) in
    t.current <- d;
    d

  let reset t = t.current <- 0.0
end

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
  control_fd : Unix.file_descr option;
  epoch : float;
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;
  connect_retries : int;
  backoff : float;
  backoff_cap : float;
  rto : float;
  fault : Fault.t;
  announce : bool;
  encoding : Wire.encoding;
  fleet_halt : bool;
}

let default_tick_period = 0.01
let default_idle_timeout = 1.0
let default_connect_retries = 8
let default_backoff = 0.02
let default_backoff_cap = 0.5
let default_rto = 0.05

type report = { final : Control.final; halted : bool }

(* The transport-side life of one outgoing path. The protocol truth
   (send buffer, sequence state, liveness verdict) lives in the
   {!Node_core} link; this record only tracks the socket and its retry
   budget. [given_up] mirrors the core's [Dead] status — it is cleared
   when a hello revives the link (the core flips Dead back to Down). *)
type conn_state = No_conn | Connecting of Transport.Conn.t | Ready of Transport.Conn.t

type conn = {
  mutable state : conn_state;
  mutable attempt : int;
  mutable retry_at : float;  (* absolute wall-clock *)
  mutable given_up : bool;
  backoff : Backoff.t;
}

type t = {
  cfg : config;
  core : Node_core.t;
  conns : conn array;
  mutable incoming : Transport.Conn.t list;
  listen_fd : Unix.file_descr;
  own_listener : bool;  (** we bound it ourselves, so we unlink/close it *)
  control : Transport.Conn.t option;  (** write side of the control channel *)
  mutable fleet_exit_at : float;  (* absolute; infinity until fleet_done observed *)
  mutable halted : bool;
  mutable running : bool;
}

(* the core runs on epoch-relative time; the runtime's own timers
   (retries, tick scheduling, deadlines) stay on the wall clock *)
let rel cfg = Unix.gettimeofday () -. cfg.epoch

(* --- connection management ----------------------------------------- *)

let promote_ready t dst conn =
  let c = t.conns.(dst) in
  c.state <- Ready conn;
  c.attempt <- 0;
  Backoff.reset c.backoff;
  Node_core.link_up t.core ~now:(rel t.cfg) ~dst

(* A peer that the plan revives is worth waiting for: cap the attempt
   counter instead of declaring it dead, and let the capped backoff keep
   probing until the supervisor re-forks it. *)
let will_return t dst = Fault.restart_round t.cfg.fault ~node:dst <> None

let connect_failed t dst =
  let c = t.conns.(dst) in
  (match c.state with
  | Connecting conn | Ready conn -> Transport.Conn.close conn
  | No_conn -> ());
  c.state <- No_conn;
  Node_core.link_down t.core ~dst;
  c.attempt <- c.attempt + 1;
  if c.attempt > t.cfg.connect_retries && not (will_return t dst) then begin
    c.given_up <- true;
    Node_core.link_dead t.core ~now:(rel t.cfg) ~dst
  end
  else begin
    if c.attempt > t.cfg.connect_retries then c.attempt <- t.cfg.connect_retries + 1;
    c.retry_at <- Unix.gettimeofday () +. Backoff.next c.backoff
  end

let start_connect t dst =
  let fd = Unix.socket (Transport.domain t.cfg.scheme) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.set_nonblock fd;
  match Unix.connect fd (Transport.sockaddr t.cfg.scheme dst) with
  | () -> promote_ready t dst (Transport.Conn.create fd)
  | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _) ->
    t.conns.(dst).state <- Connecting (Transport.Conn.create fd)
  | exception Unix.Unix_error (_, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    connect_failed t dst

let maybe_connect t dst =
  if dst <> t.cfg.node then begin
    let c = t.conns.(dst) in
    (* the core revived a written-off peer (hello handshake): restore
       the retry budget so we actually try to reach it again *)
    if c.given_up && Node_core.link_status t.core ~dst <> Node_core.Dead then begin
      c.given_up <- false;
      c.attempt <- 0;
      c.retry_at <- 0.0;
      Backoff.reset c.backoff
    end;
    match c.state with
    | No_conn
      when (not c.given_up)
           && (Node_core.wants_link t.core ~dst || c.attempt = 0)
           && Unix.gettimeofday () >= c.retry_at ->
      start_connect t dst
    | _ -> ()
  end

(* --- the event loop ------------------------------------------------- *)

let restarting_select rfds wfds timeout =
  try Unix.select rfds wfds [] timeout
  with Unix.Unix_error (EINTR, _, _) -> ([], [], [])

let control_send t line =
  match t.control with
  | None -> ()
  | Some c -> Transport.Conn.queue c (Bytes.of_string line)

let flush_control t ~deadline =
  match t.control with
  | None -> ()
  | Some c ->
    let rec go () =
      match Transport.Conn.flush c with
      | `Closed -> ()
      | `Ok ->
        if Transport.Conn.pending_out c && Unix.gettimeofday () < deadline then begin
          ignore
            (restarting_select [] [ Transport.Conn.fd c ]
               (max 0.01 (deadline -. Unix.gettimeofday ())));
          go ()
        end
    in
    go ()

let shutdown t =
  (* best-effort: push any queued data frames out, then the final report *)
  let deadline = Unix.gettimeofday () +. 0.5 in
  Array.iter
    (fun c ->
      match c.state with
      | Ready conn ->
        ignore (Transport.Conn.flush conn);
        Transport.Conn.close conn
      | Connecting conn -> Transport.Conn.close conn
      | No_conn -> ())
    t.conns;
  List.iter Transport.Conn.close t.incoming;
  control_send t (Control.final_line (Node_core.final t.core));
  flush_control t ~deadline;
  (match t.control with Some c -> Transport.Conn.close c | None -> ());
  if t.own_listener then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match Transport.sockaddr t.cfg.scheme t.cfg.node with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end

let run cfg =
  if cfg.n <= 0 then invalid_arg "Node.run: n must be positive";
  if cfg.node < 0 || cfg.node >= cfg.n then invalid_arg "Node.run: node out of range";
  if cfg.tick_period <= 0.0 then invalid_arg "Node.run: tick period must be positive";
  if cfg.rto <= 0.0 then invalid_arg "Node.run: rto must be positive";
  (* a write to a freshly-dead peer must surface as EPIPE, not a signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let listen_fd, own_listener =
    match cfg.listen_fd with
    | Some fd -> (fd, false)
    | None -> (Transport.listen_socket cfg.scheme cfg.node, true)
  in
  let backoff_rng = Rng.substream ~seed:cfg.seed ~index:(0xb0ff + cfg.node) in
  let conns =
    Array.init cfg.n (fun _ ->
        {
          state = No_conn;
          attempt = 0;
          retry_at = 0.0;
          given_up = false;
          backoff =
            Backoff.create ~rng:(Rng.split backoff_rng) ~base:cfg.backoff ~cap:cfg.backoff_cap;
        })
  in
  let control = Option.map Transport.Conn.create cfg.control_fd in
  let actions =
    {
      Node_core.emit =
        (fun ~now ev ->
          match control with
          | None -> ()
          | Some c -> Transport.Conn.queue c (Bytes.of_string (Control.event_line ~time:now ev)));
      xmit =
        (fun ~now:_ ~dst frame ->
          match conns.(dst).state with
          | Ready conn -> Transport.Conn.queue conn frame
          | No_conn | Connecting _ -> ());
      notify_complete =
        (fun ~now ~tick ->
          match control with
          | None -> ()
          | Some c ->
            Transport.Conn.queue c (Bytes.of_string (Control.completed_line ~time:now ~tick)));
      (* connection establishment is polled every loop iteration, so a
         wake needs no immediate action in this runtime *)
      wake = (fun ~dst:_ -> ());
    }
  in
  let core =
    Node_core.create
      {
        Node_core.node = cfg.node;
        n = cfg.n;
        algo = cfg.algo;
        seed = cfg.seed;
        neighbors = cfg.neighbors;
        tick_period = cfg.tick_period;
        rto = cfg.rto;
        fault = cfg.fault;
        announce = cfg.announce;
        encoding = cfg.encoding;
        fleet_halt = cfg.fleet_halt;
      }
      actions ~links_up:false ~now:(rel cfg)
  in
  let t =
    {
      cfg;
      core;
      conns;
      incoming = [];
      listen_fd;
      own_listener;
      control;
      fleet_exit_at = infinity;
      halted = false;
      running = true;
    }
  in
  let next_tick = ref (Unix.gettimeofday () +. cfg.tick_period) in
  while t.running do
    let now = Unix.gettimeofday () in
    (* fire the tick timer *)
    if now >= !next_tick then begin
      if Node_core.tick_count core < cfg.max_ticks then Node_core.tick core ~now:(rel cfg)
      else if t.control = None then t.running <- false;
      (* re-arm relative to now: a stalled process must not burst *)
      next_tick := Unix.gettimeofday () +. cfg.tick_period
    end;
    Node_core.flush_faults core ~now:(rel cfg);
    (* retry slots for links in backoff *)
    for dst = 0 to cfg.n - 1 do
      maybe_connect t dst
    done;
    (* retransmission timeouts and owed bare acks / hellos / probes *)
    Node_core.pump core ~now:(rel cfg);
    (* opportunistic flush of every ready link *)
    Array.iteri
      (fun dst c ->
        match c.state with
        | Ready conn -> if Transport.Conn.flush conn = `Closed then connect_failed t dst
        | No_conn | Connecting _ -> ())
      t.conns;
    (match t.control with Some c -> ignore (Transport.Conn.flush c) | None -> ());
    (* assemble the select sets *)
    let rfds = ref [ t.listen_fd ] in
    List.iter (fun c -> rfds := Transport.Conn.fd c :: !rfds) t.incoming;
    (match cfg.control_fd with Some fd -> rfds := fd :: !rfds | None -> ());
    let wfds = ref [] in
    Array.iter
      (fun c ->
        match c.state with
        | Connecting conn -> wfds := Transport.Conn.fd conn :: !wfds
        | Ready conn -> if Transport.Conn.pending_out conn then wfds := Transport.Conn.fd conn :: !wfds
        | No_conn -> ())
      t.conns;
    (match t.control with
    | Some c -> if Transport.Conn.pending_out c then wfds := Transport.Conn.fd c :: !wfds
    | None -> ());
    let now = Unix.gettimeofday () in
    let timeout = ref (!next_tick -. now) in
    Array.iteri
      (fun dst c ->
        match c.state with
        | No_conn when (not c.given_up) && Node_core.wants_link core ~dst ->
          timeout := min !timeout (c.retry_at -. now)
        | _ -> ())
      t.conns;
    let rto = Node_core.next_rto_deadline core in
    if rto < infinity then timeout := min !timeout (rto +. cfg.epoch -. now);
    let timeout = max 0.0 (min !timeout cfg.tick_period) in
    let readable, writable, _ = restarting_select !rfds !wfds timeout in
    (* connect completions and write progress *)
    Array.iteri
      (fun dst c ->
        match c.state with
        | Connecting conn when List.mem (Transport.Conn.fd conn) writable -> (
          match Unix.getsockopt_error (Transport.Conn.fd conn) with
          | None -> promote_ready t dst conn
          | Some _ -> connect_failed t dst)
        | Ready conn when List.mem (Transport.Conn.fd conn) writable ->
          if Transport.Conn.flush conn = `Closed then connect_failed t dst
        | _ -> ())
      t.conns;
    (* accept new incoming connections *)
    if List.mem t.listen_fd readable then begin
      let accepting = ref true in
      while !accepting do
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> t.incoming <- Transport.Conn.create fd :: t.incoming
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done
    end;
    (* drain incoming data *)
    t.incoming <-
      List.filter
        (fun c ->
          if List.mem (Transport.Conn.fd c) readable then begin
            match
              Transport.Conn.read c ~handle:(fun env ->
                  Node_core.handle_frame core ~now:(rel cfg) env)
            with
            | `Ok -> true
            | `Closed ->
              Transport.Conn.close c;
              false
            | `Corrupt reason ->
              if String.equal reason Envelope.crc_mismatch then Node_core.note_corrupt_frame core
              else Node_core.note_decode_error core;
              Transport.Conn.close c;
              false
          end
          else true)
        t.incoming;
    (* control commands from the harness *)
    (match cfg.control_fd with
    | Some fd when List.mem fd readable ->
      let buf = Bytes.create 64 in
      let reading = ref true in
      while !reading do
        match Unix.read fd buf 0 64 with
        | 0 ->
          (* harness is gone: shut down rather than run orphaned *)
          t.running <- false;
          reading := false
        | k ->
          for i = 0 to k - 1 do
            if Bytes.get buf i = 'H' then begin
              t.halted <- true;
              t.running <- false
            end
          done
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> reading := false
        | exception Unix.Unix_error _ ->
          t.running <- false;
          reading := false
      done
    | _ -> ());
    (* fleet-wide completion detected by gossip: stop promptly (after a
       short linger so final acks and done replies drain) instead of
       chattering until an external halt or the idle window *)
    if cfg.fleet_halt && Node_core.fleet_done core then begin
      let now = Unix.gettimeofday () in
      if t.fleet_exit_at = infinity then t.fleet_exit_at <- now +. (2.0 *. cfg.rto);
      if t.running && now >= t.fleet_exit_at then t.running <- false
    end;
    (* standalone convergence: complete and quiet for the idle window *)
    if
      t.running && cfg.control_fd = None
      && Node_core.is_complete core
      && rel cfg -. Node_core.last_activity core >= cfg.idle_timeout
    then t.running <- false
  done;
  shutdown t;
  { final = Node_core.final t.core; halted = t.halted }
