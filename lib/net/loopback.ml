open Repro_graph
open Repro_engine
open Repro_discovery

(* Per-node tallies are reconstructed from the trace stream with a
   callback sink teed in front of the caller's sink, so enabling them
   cannot perturb the run (tracing is observational by contract). *)
let exec_spec (spec : Run_async.spec) (algo : Algorithm.t) topology =
  let n = Topology.n topology in
  let ticks = Array.make n 0 in
  let sent = Array.make n 0 in
  let delivered = Array.make n 0 in
  let dropped = Array.make n 0 in
  let pointers = Array.make n 0 in
  let bytes = Array.make n 0 in
  let tally (ev : Trace.event) =
    match ev with
    | Trace.Tick { node; _ } -> ticks.(node) <- ticks.(node) + 1
    | Trace.Send { src; pointers = p; bytes = b; _ } ->
      sent.(src) <- sent.(src) + 1;
      pointers.(src) <- pointers.(src) + p;
      bytes.(src) <- bytes.(src) + b
    | Trace.Deliver { dst; _ } -> delivered.(dst) <- delivered.(dst) + 1
    | Trace.Drop { src; _ } -> dropped.(src) <- dropped.(src) + 1
    | Trace.Round_begin _ | Trace.Crash _ | Trace.Join _ | Trace.Genesis _ | Trace.Content _
    | Trace.Leave _ | Trace.Suspect _ | Trace.Retire _ | Trace.Converge _
    | Trace.Complete | Trace.Give_up -> ()
  in
  let spec = { spec with Run_async.trace = Trace.tee (Trace.callback tally) spec.Run_async.trace } in
  let result = Run_async.exec_spec spec algo topology in
  let reports =
    Array.init n (fun v ->
        {
          Control.ticks = ticks.(v);
          sent = sent.(v);
          delivered = delivered.(v);
          dropped = dropped.(v);
          pointers = pointers.(v);
          bytes = bytes.(v);
          complete_tick = None;
          decode_errors = 0;
          retransmits = 0;
          corrupt_frames = 0;
        })
  in
  (result, reports)
