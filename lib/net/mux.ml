open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

(* The multiplexed runtime: every node of the deployment is a live
   {!Node_core} — real envelopes, go-back-N, hellos, fault shim — but
   all of them live in this one process and frames travel through a
   virtual-time event heap instead of sockets.

   The scheduler is a faithful replica of {!Async_sim}'s: the same
   engine RNG substream, the same draw order (per-node period jitter,
   first-tick phase, then one transit latency per data frame at
   transmission time), the same lazy crash/join/restart application, the
   same monitor cadence. Frames the async oracle does not have — bare
   acks, hellos, done probes — draw their latency from a private
   substream, so their extra heap events never perturb the shared
   sequence of draws. That is what makes a fault-free mux run
   trace-identical to the loopback oracle (see mux.mli for the exact
   claim and its boundaries). *)

let rto = 3.0
(* One virtual round trip is at worst latency_max + one tick period +
   latency_max ≈ 2.9 with the default spec, so 3.0 never fires a
   spurious retransmission on a healthy link. *)

type ev = Tick of int | Frame of { dst : int; frame : bytes } | Monitor

(* Binary min-heap on (time, insertion seq) — the same ordering contract
   as the async engine's, so identical event times resolve identically. *)
module Heap = struct
  type entry = { time : float; seq : int; ev : ev }
  type t = { mutable arr : entry array; mutable len : int; mutable seq : int }

  let dummy = { time = 0.0; seq = 0; ev = Monitor }
  let create () = { arr = Array.make 256 dummy; len = 0; seq = 0 }
  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h time ev =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    let e = { time; seq = h.seq; ev } in
    h.seq <- h.seq + 1;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- e;
    while !i > 0 && lt h.arr.(!i) h.arr.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      h.arr.(!i) <- h.arr.(p);
      h.arr.(p) <- e;
      i := p
    done

  let is_empty h = h.len = 0
  let peek h = h.arr.(0)

  let drop h =
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!i) in
          h.arr.(!i) <- h.arr.(!smallest);
          h.arr.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end
end

let zero_final =
  {
    Control.ticks = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    pointers = 0;
    bytes = 0;
    complete_tick = None;
    decode_errors = 0;
    retransmits = 0;
    corrupt_frames = 0;
  }

let exec_spec (spec : Run_async.spec) (algo : Algorithm.t) topology =
  let n = Topology.n topology in
  let horizon =
    match spec.Run_async.horizon with Some h -> h | None -> (4.0 *. float_of_int n) +. 64.0
  in
  if horizon <= 0.0 then invalid_arg "Mux.exec_spec: horizon must be positive";
  if spec.Run_async.tick_jitter < 0.0 || spec.Run_async.tick_jitter >= 1.0 then
    invalid_arg "Mux.exec_spec: jitter must be in [0, 1)";
  let lmin, lmax = spec.Run_async.latency in
  if lmin < 0.0 || lmax < lmin then invalid_arg "Mux.exec_spec: invalid latency interval";
  let seed = spec.Run_async.seed in
  let fault = spec.Run_async.fault in
  let trace = spec.Run_async.trace in
  (* the engine stream: every draw below must stay in lockstep with
     Async_sim.run for the fault-free trace-identity guarantee *)
  let rng = Rng.substream ~seed ~index:0xa5f1 in
  (* bare frames (acks, hellos, done probes) have no async counterpart:
     their transit draws come from a private stream *)
  let aux = Rng.substream ~seed ~index:0xba2e in
  (* the canonical per-run instantiation; each slot is replaced by the
     owning core's live instance at creation time, so these also serve
     as well-typed placeholders for nodes that have not joined yet (the
     completion predicate only dereferences alive — hence created —
     nodes) *)
  let labels, instances = Exec.instances ~seed algo topology in
  let last_join = float_of_int (Exec.last_join_round fault) in
  let is_alive_ref = ref (fun _ -> false) in
  let stop ~time =
    time >= last_join
    && Exec.satisfied spec.Run_async.completion ~labels ~instances ~alive:!is_alive_ref
  in
  let alive = Array.make n true in
  let crash_time = Array.make n infinity in
  List.iter
    (fun (node, round) -> if node < n then crash_time.(node) <- float_of_int round)
    (Fault.crashed_nodes fault);
  let restart_time = Array.make n infinity in
  List.iter
    (fun (node, round) -> if node < n then restart_time.(node) <- float_of_int round)
    (Fault.restarting_nodes fault);
  let join_time = Array.make n 0.0 in
  List.iter
    (fun (node, round) -> if node < n then join_time.(node) <- float_of_int round)
    (Fault.joining_nodes fault);
  let is_alive v = v >= 0 && v < n && alive.(v) in
  is_alive_ref := is_alive;
  let period =
    Array.init n (fun _ ->
        1.0 -. spec.Run_async.tick_jitter +. Rng.float rng (2.0 *. spec.Run_async.tick_jitter))
  in
  let heap = Heap.create () in
  let now = ref 0.0 in
  let latency () = lmin +. Rng.float rng (lmax -. lmin) in
  let aux_latency () = lmin +. Rng.float aux (lmax -. lmin) in
  let cores : Node_core.t option array = Array.make n None in
  let crash_emitted = Array.make n false in
  let make_core v ~announce =
    let actions =
      {
        Node_core.emit = (fun ~now:_ ev -> Trace.emit trace ev);
        xmit =
          (fun ~now ~dst frame ->
            (* data frames take the oracle's latency draw; everything
               else rides the private stream *)
            let lat =
              match Envelope.peek_kind frame with
              | Some Envelope.Data -> latency ()
              | Some (Envelope.Ack | Envelope.Hello | Envelope.Done) | None -> aux_latency ()
            in
            Heap.push heap (now +. lat) (Frame { dst; frame }));
        notify_complete = (fun ~now:_ ~tick:_ -> ());
        (* "establishing a connection" is instantaneous here *)
        wake =
          (fun ~dst ->
            match cores.(v) with
            | Some core -> Node_core.link_up core ~now:!now ~dst
            | None -> ());
      }
    in
    let core =
      Node_core.create
        {
          Node_core.node = v;
          n;
          algo;
          seed;
          neighbors = Topology.out_neighbors topology v;
          tick_period = 1.0;  (* virtual time advances one unit per round *)
          rto;
          fault;
          announce;
          encoding = spec.Run_async.encoding;
          fleet_halt = false;  (* the monitor is the authority on completion *)
        }
        actions ~links_up:true ~now:!now
    in
    cores.(v) <- Some core;
    instances.(v) <- Node_core.instance core;
    core
  in
  let emit_crash v =
    crash_emitted.(v) <- true;
    Trace.emit trace (Trace.Crash { node = v });
    (* a peer that will never return is written off by every transport
       at once (the socket runtime reaches the same verdict through its
       retry budget); one that restarts later keeps its links, exactly
       like the probing a live runtime does for a will-return peer *)
    if restart_time.(v) = infinity then
      Array.iteri
        (fun u core ->
          match core with
          | Some c when u <> v -> Node_core.link_dead c ~now:!now ~dst:v
          | _ -> ())
        cores
  in
  let apply_restart v =
    if (not alive.(v)) && !now >= crash_time.(v) && !now >= restart_time.(v) then begin
      if not crash_emitted.(v) then emit_crash v;
      alive.(v) <- true;
      crash_time.(v) <- infinity;
      restart_time.(v) <- infinity;
      (* a fresh incarnation: new instance, tick count reset, and an
         announce so peers void the old sequence state *)
      ignore (make_core v ~announce:true)
    end
  in
  (* setup mirrors the oracle's: periods drawn above, then per node a
     Join (for round-0 joiners) and a first-tick phase draw *)
  for v = 0 to n - 1 do
    if join_time.(v) > 0.0 then alive.(v) <- false else ignore (make_core v ~announce:false);
    Heap.push heap (join_time.(v) +. Rng.float rng period.(v)) (Tick v)
  done;
  Heap.push heap 1.0 Monitor;
  let ticks = ref 0 in
  let completed = ref (stop ~time:0.0) in
  let continue = ref true in
  while !continue && not !completed do
    if Heap.is_empty heap then continue := false
    else begin
      let e = Heap.peek heap in
      if e.Heap.time > horizon then continue := false
      else begin
        now := e.Heap.time;
        Heap.drop heap;
        match e.Heap.ev with
        | Tick v ->
          if alive.(v) && !now >= crash_time.(v) then begin
            alive.(v) <- false;
            emit_crash v
          end;
          if (not alive.(v)) && !now >= join_time.(v) && !now < crash_time.(v) then begin
            alive.(v) <- true;
            ignore (make_core v ~announce:false)
          end;
          apply_restart v;
          (match cores.(v) with
          | Some core when alive.(v) ->
            incr ticks;
            Node_core.flush_faults core ~now:!now;
            Node_core.tick core ~now:!now;
            (* owed bare acks and retransmission timeouts ride the tick
               cadence: the round trip budgeted by [rto] accounts for it *)
            Node_core.pump core ~now:!now
          | _ -> ());
          if !now < crash_time.(v) || restart_time.(v) < infinity then
            Heap.push heap (!now +. period.(v)) (Tick v)
        | Frame { dst; frame } -> (
          if alive.(dst) && !now >= crash_time.(dst) then begin
            alive.(dst) <- false;
            emit_crash dst
          end;
          apply_restart dst;
          match cores.(dst) with
          | Some core when alive.(dst) -> (
            match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
            | `Frame (env, _) -> Node_core.handle_frame core ~now:!now env
            | `Corrupt reason ->
              if String.equal reason Envelope.crc_mismatch then Node_core.note_corrupt_frame core
              else Node_core.note_decode_error core
            | `Need_more -> Node_core.note_decode_error core)
          | _ ->
            (* a wire into a dead or unborn node: the frame vanishes, as
               it would on a real socket; the sender's go-back-N either
               redelivers it after a revival or accounts it when the
               link is declared dead *)
            ())
        | Monitor ->
          if stop ~time:!now then completed := true else Heap.push heap (!now +. 1.0) Monitor
      end
    end
  done;
  Trace.emit trace (if !completed then Trace.Complete else Trace.Give_up);
  Trace.flush trace;
  for v = 0 to n - 1 do
    if alive.(v) && !now >= crash_time.(v) then alive.(v) <- false
  done;
  (* per-node counters come from the cores themselves (the final
     incarnation's, matching what a socket cluster aggregates) *)
  let finals =
    Array.init n (fun v ->
        match cores.(v) with Some core -> Node_core.final core | None -> zero_final)
  in
  let totals = ref zero_final in
  Array.iter
    (fun (f : Control.final) ->
      totals :=
        {
          !totals with
          Control.sent = !totals.Control.sent + f.Control.sent;
          delivered = !totals.Control.delivered + f.Control.delivered;
          dropped = !totals.Control.dropped + f.Control.dropped;
          pointers = !totals.Control.pointers + f.Control.pointers;
          bytes = !totals.Control.bytes + f.Control.bytes;
          retransmits = !totals.Control.retransmits + f.Control.retransmits;
          corrupt_frames = !totals.Control.corrupt_frames + f.Control.corrupt_frames;
        })
    finals;
  let metrics = Metrics.create () in
  let t = !totals in
  Metrics.absorb metrics ~retransmits:t.Control.retransmits
    ~corrupt_frames:t.Control.corrupt_frames ~sent:t.Control.sent ~delivered:t.Control.delivered
    ~dropped:t.Control.dropped ~pointers:t.Control.pointers ~bytes:t.Control.bytes ();
  ( {
      Run_async.algorithm = algo.Algorithm.name;
      n;
      seed;
      completed = !completed;
      time = !now;
      ticks = !ticks;
      messages = Metrics.messages_sent metrics;
      pointers = Metrics.pointers_sent metrics;
      dropped = Metrics.messages_dropped metrics;
      metrics;
      alive;
    },
    finals )
