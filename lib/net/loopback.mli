(** In-process deterministic backend.

    Scheduling delegates wholesale to {!Repro_engine.Async_sim} through
    the shared {!Repro_discovery.Exec} plumbing, so a loopback "cluster"
    run is trace-identical — byte for byte under [trace-diff] — to the
    simulator run with the same (algorithm, topology, spec, seed). The
    only addition is a per-node tally pass over the event stream, which
    is observational and cannot perturb the execution. *)

open Repro_graph
open Repro_discovery

val exec_spec :
  Run_async.spec -> Algorithm.t -> Topology.t -> Run_async.result * Control.final array
(** Run under the async oracle; also return per-node counters in the
    same shape the socket backends report ([complete_tick] and
    [decode_errors] are not applicable in-process and read [None]/[0]). *)
