(* The first-class execution backend of the live path. Replaces the
   string `--transport` plumbing: every consumer (Cluster, Chaos, the
   CLIs, tests) dispatches on this one variant, and the string forms
   live in exactly one of_string/to_string pair. *)

type proto = Uds | Tcp

type t = Loopback | Process of proto | Mux

let all = [ Loopback; Process Uds; Process Tcp; Mux ]

let to_string = function
  | Loopback -> "loopback"
  | Process Uds -> "uds"
  | Process Tcp -> "tcp"
  | Mux -> "mux"

let of_string = function
  | "loopback" | "sim" -> Ok Loopback
  | "uds" | "unix" | "process" | "process:uds" -> Ok (Process Uds)
  | "tcp" | "process:tcp" -> Ok (Process Tcp)
  | "mux" | "multiplexed" -> Ok Mux
  | s -> Error (Printf.sprintf "unknown backend %S (loopback|uds|tcp|mux)" s)

let is_live = function Loopback -> false | Process _ | Mux -> true

let description = function
  | Loopback -> "in-process, delegates scheduling to the async simulator"
  | Process Uds -> "one OS process per node over unix-domain sockets"
  | Process Tcp -> "one OS process per node over TCP (127.0.0.1)"
  | Mux -> "every node multiplexed into one process, full wire stack, virtual time"
