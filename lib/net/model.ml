open Repro_engine
open Repro_discovery

type move =
  | Tick of int
  | Deliver of { src : int; dst : int; index : int }
  | Pump of int
  | Crash of int
  | Restart of int

let pp_move ppf = function
  | Tick v -> Format.fprintf ppf "tick %d" v
  | Deliver { src; dst; index } -> Format.fprintf ppf "deliver %d>%d[%d]" src dst index
  | Pump v -> Format.fprintf ppf "pump %d" v
  | Crash v -> Format.fprintf ppf "crash %d" v
  | Restart v -> Format.fprintf ppf "restart %d" v

type config = {
  n : int;
  depth : int;
  reorder_width : int;
  max_crashes : int;
  max_leaves : int;
  seed : int;
}

let default =
  { n = 2; depth = 8; reorder_width = 2; max_crashes = 0; max_leaves = 4000; seed = 0 }

type stats = { interleavings : int; moves : int; truncated : bool }

exception Violation of string

let fail fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

(* The system under test runs flooding on a path: the sparsest connected
   topology, so initial knowledge is incomplete and every completion
   depends on multi-hop relay through the reliability layer (a complete
   graph would be satisfied by each node's initial knowledge alone). *)
let path_neighbors n v =
  Array.of_list (List.filter (fun u -> u >= 0 && u < n) [ v - 1; v + 1 ])

type sys = {
  cores : Node_core.t option array;  (** [None] = crashed *)
  queues : bytes Queue.t array array;
      (** [queues.(src).(dst)]: encoded frames in flight, FIFO *)
  mutable now : float;
  mutable crashes : int;  (** crash moves taken on this path *)
}

let actions sys v =
  {
    Node_core.emit = (fun ~now:_ _ -> ());
    xmit = (fun ~now:_ ~dst frame -> Queue.push frame sys.queues.(v).(dst));
    notify_complete = (fun ~now:_ ~tick:_ -> ());
    wake = (fun ~dst:_ -> ());
  }

let core_config cfg v ~announce =
  {
    Node_core.node = v;
    n = cfg.n;
    algo = Flooding.algorithm;
    seed = cfg.seed;
    neighbors = path_neighbors cfg.n v;
    tick_period = 1.0;
    rto = 3.0;
    fault = Fault.none;
    announce;
    encoding = Wire.Adaptive;
    fleet_halt = false;
  }

let boot cfg =
  let sys =
    {
      cores = Array.make cfg.n None;
      queues = Array.init cfg.n (fun _ -> Array.init cfg.n (fun _ -> Queue.create ()));
      now = 0.0;
      crashes = 0;
    }
  in
  for v = 0 to cfg.n - 1 do
    sys.cores.(v) <-
      Some (Node_core.create (core_config cfg v ~announce:false) (actions sys v) ~links_up:true ~now:sys.now)
  done;
  sys

(* Remove the [i]-th frame of a queue, preserving the order of the rest. *)
let take_nth q i =
  let rec split acc i = function
    | [] -> fail "model: deliver index out of range"
    | x :: rest -> if i = 0 then (x, List.rev_append acc rest) else split (x :: acc) (i - 1) rest
  in
  let x, rest = split [] i (List.of_seq (Queue.to_seq q)) in
  Queue.clear q;
  List.iter (fun e -> Queue.push e q) rest;
  x

(* Every move advances the virtual clock by one unit, so retransmission
   timeouts become reachable a bounded number of moves after a send. *)
let apply cfg sys move =
  sys.now <- sys.now +. 1.0;
  match move with
  | Tick v -> (
    match sys.cores.(v) with Some c -> Node_core.tick c ~now:sys.now | None -> ())
  | Pump v -> (
    match sys.cores.(v) with Some c -> Node_core.pump c ~now:sys.now | None -> ())
  | Deliver { src; dst; index } -> (
    let frame = take_nth sys.queues.(src).(dst) index in
    match sys.cores.(dst) with
    | None -> ()  (* the receiver is down: the frame dies with it *)
    | Some c -> (
      match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
      | `Frame (env, _) -> Node_core.handle_frame c ~now:sys.now env
      | `Need_more -> fail "model: frame in flight truncated"
      | `Corrupt reason -> fail "model: frame in flight undecodable (%s)" reason))
  | Crash v ->
    sys.cores.(v) <- None;
    sys.crashes <- sys.crashes + 1
  | Restart v ->
    (* a fresh incarnation announces itself; stale frames from and to the
       previous incarnation stay in flight and remain deliverable *)
    sys.cores.(v) <-
      Some (Node_core.create (core_config cfg v ~announce:true) (actions sys v) ~links_up:true ~now:sys.now)

(* All moves enabled in a state, in a fixed deterministic order. [Pump]
   is offered only when it would act (a retransmission timeout is due) —
   a no-op pump branch would duplicate its sibling subtree verbatim. *)
let enabled cfg sys =
  let acc = ref [] in
  let add m = acc := m :: !acc in
  for v = 0 to cfg.n - 1 do
    if Option.is_some sys.cores.(v) then add (Tick v)
  done;
  for v = 0 to cfg.n - 1 do
    match sys.cores.(v) with
    | Some c when Node_core.next_rto_deadline c <= sys.now -> add (Pump v)
    | _ -> ()
  done;
  for src = 0 to cfg.n - 1 do
    for dst = 0 to cfg.n - 1 do
      let avail = min (Queue.length sys.queues.(src).(dst)) cfg.reorder_width in
      for index = 0 to avail - 1 do
        add (Deliver { src; dst; index })
      done
    done
  done;
  if sys.crashes < cfg.max_crashes then
    for v = 0 to cfg.n - 1 do
      if Option.is_some sys.cores.(v) then add (Crash v)
    done;
  for v = 0 to cfg.n - 1 do
    if Option.is_none sys.cores.(v) then add (Restart v)
  done;
  List.rev !acc

let rec ascending_distinct = function
  | a :: (b :: _ as rest) -> a < b && ascending_distinct rest
  | _ -> true

(* The go-back-N window invariants, over every live directed link.
   Locally: sequence numbering starts at 1 and the out-of-order set sits
   strictly above the cumulative mark, without duplicates. Across a link
   (only meaningful when no crash can have reset either end): a sender
   never slides its window past what the receiver acknowledged, so
   [base_seq] leads the peer's cumulative mark by at most one. *)
let check cfg sys =
  for v = 0 to cfg.n - 1 do
    match sys.cores.(v) with
    | None -> ()
    | Some c ->
      for dst = 0 to cfg.n - 1 do
        if dst <> v then begin
          let lv = Node_core.link_view c ~dst in
          if lv.Node_core.view_base_seq < 1 then
            fail "node %d link to %d: base_seq %d < 1" v dst lv.Node_core.view_base_seq;
          if not (ascending_distinct lv.Node_core.view_recv_early) then
            fail "node %d link to %d: recv_early not strictly ascending" v dst;
          List.iter
            (fun s ->
              if s <= lv.Node_core.view_recv_cum then
                fail "node %d link to %d: early seq %d <= recv_cum %d" v dst s
                  lv.Node_core.view_recv_cum)
            lv.Node_core.view_recv_early
        end
      done
  done;
  if cfg.max_crashes = 0 then
    for a = 0 to cfg.n - 1 do
      for b = 0 to cfg.n - 1 do
        if a <> b then
          match (sys.cores.(a), sys.cores.(b)) with
          | Some ca, Some cb ->
            let out = Node_core.link_view ca ~dst:b in
            let back = Node_core.link_view cb ~dst:a in
            if out.Node_core.view_base_seq > back.Node_core.view_recv_cum + 1 then
              fail "window overrun %d>%d: base_seq %d > peer recv_cum %d + 1" a b
                out.Node_core.view_base_seq back.Node_core.view_recv_cum
          | _ -> ()
      done
    done

(* After a complete interleaving, the adversary goes home: revive any
   crashed node, deliver everything in flight in order, and give the
   fleet fair ticks and pumps. Whatever the explored prefix did to the
   link state, every node must still reach complete knowledge. *)
let drain_and_converge cfg sys =
  for v = 0 to cfg.n - 1 do
    if Option.is_none sys.cores.(v) then apply cfg sys (Restart v)
  done;
  let all_complete () =
    Array.for_all
      (function Some c -> Node_core.is_complete c | None -> false)
      sys.cores
  in
  let deliver_all () =
    let again = ref true in
    while !again do
      again := false;
      for src = 0 to cfg.n - 1 do
        for dst = 0 to cfg.n - 1 do
          while not (Queue.is_empty sys.queues.(src).(dst)) do
            again := true;
            apply cfg sys (Deliver { src; dst; index = 0 })
          done
        done
      done
    done
  in
  deliver_all ();
  let budget = ref ((20 * cfg.n) + 100) in
  while (not (all_complete ())) && !budget > 0 do
    decr budget;
    for v = 0 to cfg.n - 1 do
      apply cfg sys (Tick v)
    done;
    sys.now <- sys.now +. 4.0;  (* past any retransmission deadline *)
    for v = 0 to cfg.n - 1 do
      apply cfg sys (Pump v)
    done;
    deliver_all ()
  done;
  if not (all_complete ()) then fail "knowledge did not converge after drain"

let explore cfg =
  if cfg.n < 2 then invalid_arg "Model.explore: need at least two nodes";
  if cfg.depth < 1 then invalid_arg "Model.explore: depth must be positive";
  if cfg.reorder_width < 1 then invalid_arg "Model.explore: reorder_width must be positive";
  let leaves = ref 0 in
  let applied = ref 0 in
  let truncated = ref false in
  (* Node_core state is mutable and cannot be forked, so the DFS replays
     each path from a fresh boot — O(depth) rebuilt moves per tree node,
     trivially affordable at these sizes and immune to state bleed. *)
  let replay path =
    let sys = boot cfg in
    List.iter
      (fun m ->
        apply cfg sys m;
        incr applied;
        check cfg sys)
      path;
    sys
  in
  let render path = String.concat "; " (List.map (Format.asprintf "%a" pp_move) path) in
  let rec go rev_path remaining =
    if !leaves >= cfg.max_leaves then truncated := true
    else begin
      let path = List.rev rev_path in
      (* attach the offending path at the point of violation only — the
         recursive calls below must not re-wrap it with their prefixes *)
      let guarded f =
        try f ()
        with Violation msg -> raise (Violation (Printf.sprintf "%s [path: %s]" msg (render path)))
      in
      if remaining = 0 then
        guarded (fun () ->
            let sys = replay path in
            drain_and_converge cfg sys;
            check cfg sys;
            incr leaves)
      else begin
        let moves = guarded (fun () -> enabled cfg (replay path)) in
        List.iter (fun m -> go (m :: rev_path) (remaining - 1)) moves
      end
    end
  in
  try
    go [] cfg.depth;
    Ok { interleavings = !leaves; moves = !applied; truncated = !truncated }
  with Violation msg -> Error msg
