(** A live node process: one {!Node_core} protocol instance driven by a
    socket event loop on wall-clock time.

    This is the [Process] backend's runtime. All protocol decisions —
    go-back-N reliable delivery, the hello handshake, fault-shim
    routing, completion detection and termination gossip — live in the
    transport-agnostic {!Node_core}; this module owns what a real
    deployment owns: sockets, [select], connection establishment with
    bounded retry and decorrelated-jitter backoff ("connect-on-learn":
    the id→address map is static, so learning an id is enough to reach
    it), the tick timer, and process lifetime. Once the retry budget for
    a peer is spent the peer is declared dead to the core and frames to
    it are counted as drops — unless the fault plan schedules the peer
    to restart, in which case the node keeps probing. A hello from a
    written-off peer revives the link and restores the retry budget.

    Under a {!Cluster} harness ([control_fd] set) the node streams
    {!Control} lines upward and exits on the halt command. Standalone
    ([control_fd = None]) it exits once its knowledge is complete and
    the link has been idle for [idle_timeout] seconds. With [fleet_halt]
    (the default for live fleets) the core's termination gossip lets the
    node wind down within a couple of RTOs of fleet-wide completion,
    instead of chattering until an external halt or the idle window. *)

open Repro_engine
open Repro_discovery

(** Decorrelated-jitter retry backoff: the first delay is [base], each
    later delay is uniform in [base, min cap (3 * previous)], drawn from
    a caller-supplied seeded RNG (never wall clock) so retry schedules
    are reproducible. Exposed for tests. *)
module Backoff : sig
  type t

  val create : rng:Repro_util.Rng.t -> base:float -> cap:float -> t
  (** @raise Invalid_argument if [base <= 0] or [cap < base]. *)

  val next : t -> float
  (** The next delay; advances the state. *)

  val reset : t -> unit
  (** Back to the cold state (next delay = [base]). *)
end

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;  (** must match the cluster seed: labels derive from it *)
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
      (** listener inherited from the harness; [None] = bind our own *)
  control_fd : Unix.file_descr option;
  epoch : float;  (** wall-clock origin shared by every node of the run *)
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;  (** give up after this many ticks without halt *)
  connect_retries : int;
  backoff : float;  (** base retry delay (seconds) *)
  backoff_cap : float;  (** upper bound on any single retry delay *)
  rto : float;  (** retransmission timeout (seconds) *)
  fault : Fault.t;  (** link faults/partitions applied via {!Faultnet} *)
  announce : bool;  (** hello the neighbours on startup (set for restarts) *)
  encoding : Wire.encoding;
  fleet_halt : bool;
      (** termination gossip: carry completion flags, probe quiet peers,
          and exit shortly after the whole fleet is known complete *)
}

val default_tick_period : float
val default_idle_timeout : float
val default_connect_retries : int
val default_backoff : float
val default_backoff_cap : float
val default_rto : float

type report = { final : Control.final; halted : bool }

val run : config -> report
(** Run the event loop to completion. Returns after graceful shutdown
    (halt command, standalone idle convergence, or tick budget
    exhausted). Sockets are closed and, if we bound our own UDS
    listener, its path unlinked. *)
