(** A live node process: one discovery-algorithm instance driven by a
    socket event loop instead of the simulator scheduler.

    The node ticks its algorithm every [tick_period] seconds, encodes
    outgoing payloads with the {!Repro_discovery.Wire} codec inside an
    {!Envelope} frame, and maintains one outgoing connection per peer it
    has sent to ("connect-on-learn": the id→address map is static, so
    learning an id is enough to reach it). Connections are established
    lazily with bounded retry and decorrelated-jitter backoff; once the
    retry budget for a peer is spent the peer is declared dead and frames
    to it are counted as drops — unless the fault plan schedules the peer
    to restart, in which case the node keeps probing.

    {b Reliable delivery.} Each directed link runs a go-back-N protocol:
    data frames carry per-link sequence numbers and every frame (data or
    bare ack) carries a cumulative acknowledgement. Unacknowledged
    payloads are retransmitted after [rto] seconds and whenever the
    connection is re-established; the receiver delivers in order exactly
    once and re-acks duplicates. Retransmissions surface in the final
    report as [retransmits]; frames rejected by the envelope CRC as
    [corrupt_frames]. A node started with [announce] greets its
    neighbours with a hello frame; a hello resets the receiver's link
    state for that peer (fresh incarnation) and is answered with the
    receiver's full identifier set, which is how a restarted node
    rebuilds its knowledge.

    When the run's {!Repro_engine.Fault} plan carries link faults or
    partitions, every outgoing frame is routed through a seeded
    {!Faultnet} shim, so loss/delay/duplication/reordering/corruption
    afflict the live wire deterministically.

    Under a {!Cluster} harness ([control_fd] set) the node streams
    {!Control} lines upward and exits on the halt command. Standalone
    ([control_fd = None]) it exits once its knowledge is complete and
    the link has been idle for [idle_timeout] seconds. *)

open Repro_engine
open Repro_discovery

(** Decorrelated-jitter retry backoff: the first delay is [base], each
    later delay is uniform in [base, min cap (3 * previous)], drawn from
    a caller-supplied seeded RNG (never wall clock) so retry schedules
    are reproducible. Exposed for tests. *)
module Backoff : sig
  type t

  val create : rng:Repro_util.Rng.t -> base:float -> cap:float -> t
  (** @raise Invalid_argument if [base <= 0] or [cap < base]. *)

  val next : t -> float
  (** The next delay; advances the state. *)

  val reset : t -> unit
  (** Back to the cold state (next delay = [base]). *)
end

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;  (** must match the cluster seed: labels derive from it *)
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
      (** listener inherited from the harness; [None] = bind our own *)
  control_fd : Unix.file_descr option;
  epoch : float;  (** wall-clock origin shared by every node of the run *)
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;  (** give up after this many ticks without halt *)
  connect_retries : int;
  backoff : float;  (** base retry delay (seconds) *)
  backoff_cap : float;  (** upper bound on any single retry delay *)
  rto : float;  (** retransmission timeout (seconds) *)
  fault : Fault.t;  (** link faults/partitions applied via {!Faultnet} *)
  announce : bool;  (** hello the neighbours on startup (set for restarts) *)
  encoding : Wire.encoding;
}

val default_tick_period : float
val default_idle_timeout : float
val default_connect_retries : int
val default_backoff : float
val default_backoff_cap : float
val default_rto : float

type report = { final : Control.final; halted : bool }

val run : config -> report
(** Run the event loop to completion. Returns after graceful shutdown
    (halt command, standalone idle convergence, or tick budget
    exhausted). Sockets are closed and, if we bound our own UDS
    listener, its path unlinked. *)
