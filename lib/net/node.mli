(** A live node process: one discovery-algorithm instance driven by a
    socket event loop instead of the simulator scheduler.

    The node ticks its algorithm every [tick_period] seconds, encodes
    outgoing payloads with the {!Repro_discovery.Wire} codec inside an
    {!Envelope} frame, and maintains one outgoing connection per peer it
    has sent to ("connect-on-learn": the id→address map is static, so
    learning an id is enough to reach it). Connections are established
    lazily with bounded retry and exponential backoff; once the retry
    budget for a peer is spent the peer is declared dead and frames to
    it are counted as drops.

    Under a {!Cluster} harness ([control_fd] set) the node streams
    {!Control} lines upward and exits on the halt command. Standalone
    ([control_fd = None]) it exits once its knowledge is complete and
    the link has been idle for [idle_timeout] seconds. *)

open Repro_discovery

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;  (** must match the cluster seed: labels derive from it *)
  neighbors : int array;
  scheme : Transport.scheme;
  listen_fd : Unix.file_descr option;
      (** listener inherited from the harness; [None] = bind our own *)
  control_fd : Unix.file_descr option;
  epoch : float;  (** wall-clock origin shared by every node of the run *)
  tick_period : float;
  idle_timeout : float;
  max_ticks : int;  (** give up after this many ticks without halt *)
  connect_retries : int;
  backoff : float;  (** base backoff; attempt [k] waits [backoff * 2^(k-1)] *)
  encoding : Wire.encoding;
}

val default_tick_period : float
val default_idle_timeout : float
val default_connect_retries : int
val default_backoff : float

type report = { final : Control.final; halted : bool }

val run : config -> report
(** Run the event loop to completion. Returns after graceful shutdown
    (halt command, standalone idle convergence, or tick budget
    exhausted). Sockets are closed and, if we bound our own UDS
    listener, its path unlinked. *)
