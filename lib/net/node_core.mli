(** The transport-agnostic protocol core of a live discovery node.

    Everything a node {e decides} — when to tick its algorithm, what to
    put on the wire, go-back-N reliable delivery per directed link, the
    hello handshake that rebuilds state across restarts, the fault-shim
    routing, completion detection and termination gossip — lives here as
    a pure state machine over an abstract clock. Everything a node
    {e does} to the outside world goes through the four {!actions}
    callbacks, so the same core drives

    - {!Node}: one OS process per core, real sockets, wall-clock time
      (the callbacks write to {!Transport.Conn}s), and
    - {!Mux}: thousands of cores in one process on a deterministic
      virtual clock (the callbacks push heap events).

    Time is always {e relative}: the runtime passes the same [now] it
    uses for its own clocks (seconds since the run epoch for sockets,
    virtual time for the mux), and the core never reads a wall clock.

    {b Link model.} The core sees each peer as [Up] (the transport can
    deliver frames now), [Down] (not currently reachable; the core
    buffers and calls {!actions.wake} so the transport may establish the
    path) or [Dead] (the transport gave up; traffic is dropped and
    counted). The process runtime maps its connection lifecycle onto
    these with {!link_up}/{!link_down}/{!link_dead}; the mux simply
    keeps every link [Up].

    {b Termination gossip} ([fleet_halt]): every outgoing frame carries
    a "my knowledge is complete" flag, and a complete node periodically
    probes peers it has not heard completion from with a bare [Done]
    frame (first news arriving as a probe gets one reply, so quiet pairs
    converge). Once a node knows the {e whole fleet} is complete
    ({!fleet_done}) it stops ticking — this is what lets idle live nodes
    stop re-sending instead of chattering until an external halt. *)

open Repro_engine
open Repro_discovery

type config = {
  node : int;
  n : int;
  algo : Algorithm.t;
  seed : int;  (** must match the deployment seed: labels derive from it *)
  neighbors : int array;
  tick_period : float;  (** the round clock's unit, for the fault shim *)
  rto : float;  (** retransmission timeout, in [now] units *)
  fault : Fault.t;  (** link faults/partitions applied via {!Faultnet} *)
  announce : bool;  (** hello the neighbours on startup (set for restarts) *)
  encoding : Wire.encoding;
  fleet_halt : bool;  (** termination gossip + stop ticking on fleet completion *)
}

(** How the core acts on the world. All callbacks receive the same
    relative [now] the runtime passed in. *)
type actions = {
  emit : now:float -> Trace.event -> unit;  (** lifecycle trace events *)
  xmit : now:float -> dst:int -> bytes -> unit;
      (** put one encoded envelope on the wire to [dst]; only invoked
          while the link is [Up] *)
  notify_complete : now:float -> tick:int -> unit;
      (** local knowledge just became complete *)
  wake : dst:int -> unit;
      (** the core wants the path to [dst] established (it has traffic,
          or a hello revived a dead link) *)
}

type status = Up | Down | Dead

type t

val create : config -> actions -> links_up:bool -> now:float -> t
(** Build the algorithm instance (same derivation as the simulators:
    shared label permutation, per-node RNG substream), emit the [Join]
    event, and greet the neighbours if [announce]. [links_up] is the
    initial status of every link: [true] for the mux (always reachable),
    [false] for socket runtimes (paths start unestablished).
    @raise Invalid_argument on a nonsensical config. *)

val tick : t -> now:float -> unit
(** One algorithm activation: emits the [Tick] event, runs the round,
    checks completion, and drives re-hello and termination gossip.
    A no-op once [fleet_halt] has detected fleet-wide completion. *)

val handle_frame : t -> now:float -> Envelope.t -> unit
(** Process one decoded envelope from the wire (any kind). *)

val send : t -> now:float -> dst:int -> Payload.t -> unit
(** Put one payload on the reliable channel to [dst] — the same path
    the algorithm's [round] callback uses (go-back-N sendbuf, fault
    shim, counters). Exposed for runtimes whose protocol logic emits
    messages outside the round callback (the continuous service's
    members reply from their delivery handler).
    @raise Invalid_argument when [dst] is out of range. *)

val greet : t -> now:float -> dst:int -> unit
(** Send one unsolicited hello to [dst], announcing this (possibly
    fresh) incarnation so the peer voids any go-back-N sequence state
    it still holds from a predecessor of this node id; revives the
    local link if it had been declared dead. The service runtime calls
    this when a node id from the retired pool is reborn. *)

val pump : t -> now:float -> unit
(** Retransmission timeouts and owed bare acks/hellos/done probes, over
    every [Up] link. Call once per event-loop iteration. *)

val flush_faults : t -> now:float -> unit
(** Release frames the fault shim held back for delay/reorder faults. *)

val link_up : t -> now:float -> dst:int -> unit
(** The transport (re)established the path to [dst]: flushes owed bare
    frames and resends everything unacknowledged. *)

val link_down : t -> dst:int -> unit
(** The path to [dst] is gone (connection lost / not yet established);
    traffic buffers until {!link_up} or {!link_dead}. *)

val link_dead : t -> now:float -> dst:int -> unit
(** The transport gave up on [dst]: queued frames are dropped (with
    [Drop] events) and future sends are counted as drops. *)

val wants_link : t -> dst:int -> bool
(** Does the core have traffic (data, owed acks/hellos/probes) for
    [dst]? The runtime's connect policy keys on this. *)

val link_status : t -> dst:int -> status

val next_rto_deadline : t -> float
(** Earliest retransmission deadline over the up links (infinity when
    nothing is in flight) — for the runtime's poll timeout. *)

val note_corrupt_frame : t -> unit
(** A frame from the stream failed the envelope CRC (counted here
    because the core owns the final counters). *)

val note_decode_error : t -> unit
(** The stream produced an undecodable non-CRC error. *)

val tick_count : t -> int

val instance : t -> Algorithm.instance
(** The live algorithm instance — exposed so the mux's completion
    monitor can evaluate {!Exec.satisfied} over the whole fleet the way
    the simulators do. Treat it as read-only. *)

val is_complete : t -> bool
val last_activity : t -> float
(** Time of the most recent local delivery (idle detection). *)

val fleet_done : t -> bool
(** This node is complete {e and} has heard completion from every peer.
    With [fleet_halt] the runtime should wind the node down. *)

val final : t -> Control.final
(** The node's final counters. *)

(** {2 Introspection for the model checker}

    A read-only snapshot of one directed link's reliability state, so an
    exhaustive test driver ({!Model}) can assert the go-back-N window
    invariants between moves without reaching into the representation. *)
type link_view = {
  view_status : status;
  view_base_seq : int;  (** sequence number of the sendbuf's front frame *)
  view_inflight : int;  (** unacknowledged data frames queued *)
  view_recv_cum : int;  (** highest contiguous data seq received *)
  view_recv_early : int list;  (** out-of-order seqs already delivered, ascending *)
  view_peer_done : bool;
}

val link_view : t -> dst:int -> link_view
