(** Socket address schemes and framed connections for the live
    execution path.

    Which runtime hosts the nodes is the {!Backend} module's business;
    this module owns how the socket-backed runtimes address and talk to
    each other. Discovery is about learning {e identifiers}; the
    id→address map ({!scheme}) is the deployment's static name service
    (a directory layout for UDS, a port table for TCP, an explicit
    table for hand-built fleets), so "connect-on-learn" needs no
    out-of-band address exchange. *)

type backend = Loopback | Uds | Tcp
[@@deprecated "use Backend.t, which distinguishes process and mux runtimes"]

[@@@alert "-deprecated"]

val backend_name : backend -> string
[@@deprecated "use Backend.to_string"]

val backend_of_string : string -> (backend, string) result
[@@deprecated "use Backend.of_string"]

val all_backends : backend list
[@@deprecated "use Backend.all"]

val backend_to_t : backend -> Backend.t
[@@deprecated "migration shim for the legacy string-keyed plumbing"]

[@@@alert "+deprecated"]

(** Address scheme of a socket-backed deployment. *)
type scheme =
  | Dir of string  (** UDS: node [i] listens on [<dir>/node-<i>.sock] *)
  | Ports of int array  (** TCP: node [i] listens on [127.0.0.1:ports.(i)] *)
  | Table of Unix.sockaddr array
      (** explicit per-node address table (the standalone
          [discovery_node] binary builds one from its [--peers] list) *)

val socket_path : string -> int -> string
val sockaddr : scheme -> int -> Unix.sockaddr
val domain : scheme -> Unix.socket_domain

val listen_socket : scheme -> int -> Unix.file_descr
(** Create, bind and listen node [i]'s endpoint (nonblocking,
    close-on-exec). A stale UDS path is unlinked first. The cluster
    harness binds every node's listener {e before} forking — children
    inherit them — so no node can try to connect to a peer that is not
    yet listening. *)

val bound_port : Unix.file_descr -> int
(** The actual port of a TCP listener bound to port 0.
    @raise Invalid_argument on a non-inet socket. *)

(** A nonblocking stream connection carrying {!Envelope} frames, with an
    elastic read accumulator and write backlog. Never blocks: reads
    drain what the kernel has, writes stop at [EWOULDBLOCK] and resume
    on the next {!Conn.flush}. *)
module Conn : sig
  type t

  val create : Unix.file_descr -> t
  (** Takes ownership of [fd] and makes it nonblocking. *)

  val fd : t -> Unix.file_descr
  val queue : t -> bytes -> unit
  (** Append one encoded frame to the write backlog. *)

  val pending_out : t -> bool
  val queued_frames : t -> int
  (** Frames queued since the backlog last fully drained — what is lost
      if the connection dies now. *)

  val flush : t -> [ `Ok | `Closed ]
  val read : t -> handle:(Envelope.t -> unit) -> [ `Ok | `Closed | `Corrupt of string ]
  val close : t -> unit
end
