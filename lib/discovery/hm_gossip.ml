open Repro_util

type broadcast = All | Cap of int | Off

type upward = Delta | Full

type state = {
  knowledge : Knowledge.t;
  pending_replies : Intvec.t;  (* exchange senders owed a reply *)
  mutable acked_upto : int;  (* knowledge mark acknowledged by the target *)
  mutable prev_sent : int;  (* mark carried by the report one round ago *)
  mutable last_sent : int;  (* mark carried by the latest report *)
  mutable report_target : int;  (* current head candidate, -1 before the first report *)
  upward_done : Cset.t;  (* identifiers that need not flow upward again *)
  mutable last_custody : Knowledge.snap option;
      (* compact regime: physical identity of the last snapshot absorbed
         into [upward_done]. A head's reply and broadcast of one version
         are the same cached snapshot, so cluster members see every view
         twice per round — the second absorption is skipped. Never set in
         tracked mode, where the golden traces pin the re-union (and the
         re-marking of ids a [remove] had cleared in between). *)
  suspects : Cset.t;  (* nodes suspected crashed (silent head candidates) *)
  mutable silence : int;  (* rounds since the current target last answered *)
  mutable halted : bool;  (* local termination decision reached *)
  mutable quiet_rounds : int;  (* consecutive uninformative rounds (heads) *)
  mutable last_card : int;  (* knowledge size at the previous round *)
  mutable saw_new_info : bool;  (* a non-empty report arrived this round *)
}

(* A head candidate that stays silent for this many report rounds is
   suspected crashed and skipped when choosing where to report. A healthy
   target answers every report within two rounds, so only loss or crashes
   trigger this; a suspected node that speaks again is rehabilitated. *)
let patience = 5

(* the steady-state report (empty delta), shared by every node and round *)
let exchange_empty = Payload.Exchange Payload.empty_delta

(* A head whose knowledge has been stable and whose reporters have all
   been sending empty deltas for this many consecutive rounds decides the
   protocol is finished, broadcasts [Halt], and quiesces. This is a
   heuristic (an identifier could still be in flight up a long report
   chain), so experiment T11 measures both the termination lag and the
   safety of the decision empirically. *)
let halt_patience = 5

(* Soundness of the delta reports rests on a custody argument: every
   identifier a node learns is either echoed upward in its next report or
   is already held by a node of strictly smaller rank (its report target,
   which taught it the identifier). Two rules keep the custody chain
   descending all the way to the global minimum:

   - introduction: when a node abandons head m1 for a smaller-ranked m2,
     it tells m1 about m2. An abandoned head therefore always learns of a
     smaller rank, stops being a head, and forwards its entire backlog
     (heads never advance their report mark, so their first report after
     retiring carries everything they ever aggregated);

   - no-echo filtering: identifiers taught by the current head are marked
     in [upward_done] and skipped by later reports — they are already in
     smaller-ranked custody, and echoing them would make the upward
     traffic quadratic.

   Under message loss the custody argument needs delivery, not just
   sending, so reports are retransmitted until acknowledged: each report
   carries everything unacknowledged, and the window only advances when a
   [Reply] (never a broadcast [Share] — a head broadcasts to every node
   it has merely heard of, which proves nothing about report receipt)
   arrives from the current target. A reply received in round r answers
   the report sent in round r-1, hence the two-deep mark queue. *)
let make_with ~broadcast ~upward (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st =
    {
      knowledge;
      pending_replies = Intvec.create ();
      acked_upto = 0;
      prev_sent = 0;
      last_sent = 0;
      report_target = -1;
      upward_done = Cset.create ctx.n;
      last_custody = None;
      suspects = Cset.create ctx.n;
      silence = 0;
      halted = false;
      quiet_rounds = 0;
      last_card = 0;
      saw_new_info = false;
    }
  in
  let self = ctx.node in
  (* O(1) frozen view of the live knowledge; at most two per round (the
     reply to reporters and the head broadcast), so no laziness needed *)
  let snap () = Payload.Bits (Knowledge.snapshot st.knowledge) in
  (* Steady-state heads re-send the same full view every round (the
     broadcast and the reply to reporters): cache the whole message per
     knowledge version so an unchanged view costs zero allocation. *)
  let share_msg = ref exchange_empty in
  let share_version = ref (-1) in
  let reply_msg = ref exchange_empty in
  let reply_version = ref (-1) in
  let share_snap () =
    let v = Knowledge.version st.knowledge in
    if !share_version <> v then begin
      share_msg := Payload.Share (snap ());
      share_version := v
    end;
    !share_msg
  in
  let reply_snap () =
    let v = Knowledge.version st.knowledge in
    if !reply_version <> v then begin
      reply_msg := Payload.Reply (snap ());
      reply_version := v
    end;
    !reply_msg
  in
  (* Broadcast suppression (compact regime): a head whose knowledge is
     unchanged since its last broadcast would re-send the identical view
     to the identical audience — the known set is a function of the
     version — so the quiet tail between convergence and the halt
     decision is pure redundancy. It is safe to skip even under loss:
     every reporter pulls the full view through its reply each round, so
     a node that missed a broadcast still completes; the broadcast only
     accelerates the spread of *new* information, and anything new bumps
     the version and re-arms it. Tracked mode keeps the historic
     always-broadcast behaviour that the golden traces pin down. *)
  let bcast_version = ref (-1) in
  let tracked = Knowledge.is_tracked knowledge in
  let round ~round:_ ~send =
    if st.halted then begin
      (* Quiescent: answer any straggling reporter with the full view
         (it may be a late joiner whose identifier everyone already knew
         but whose own knowledge is stale) followed by Halt, so it both
         completes and stops. Flow still decays to zero: each straggler
         report costs exactly two replies. *)
      if not (Intvec.is_empty st.pending_replies) then begin
        let reply = reply_snap () in
        Intvec.iter
          (fun dst ->
            send ~dst reply;
            send ~dst Payload.Halt)
          st.pending_replies;
        Intvec.clear st.pending_replies
      end
    end
    else begin
    (* Answer last round's reporters with the current full view (one
       shared snapshot): this is the downward half of the exchange. *)
    if not (Intvec.is_empty st.pending_replies) then begin
      let reply = reply_snap () in
      Intvec.iter (fun dst -> send ~dst reply) st.pending_replies;
      Intvec.clear st.pending_replies
    end;
    let head =
      if Cset.is_empty st.suspects then Knowledge.min_known st.knowledge
      else Knowledge.min_known_excluding st.knowledge ~suspects:st.suspects
    in
    (* local termination detection (heads only): nothing new learned and
       only empty reports for several consecutive rounds *)
    if head = self then begin
      if Knowledge.cardinal st.knowledge = st.last_card && not st.saw_new_info then
        st.quiet_rounds <- st.quiet_rounds + 1
      else st.quiet_rounds <- 0
    end
    else st.quiet_rounds <- 0;
    st.last_card <- Knowledge.cardinal st.knowledge;
    st.saw_new_info <- false;
    if head = self && st.quiet_rounds >= halt_patience then begin
      st.halted <- true;
      Knowledge.iter_known st.knowledge (fun dst -> if dst <> self then send ~dst Payload.Halt)
    end
    else if head <> self then begin
      if st.report_target <> head then begin
        if st.report_target >= 0 then
          send ~dst:st.report_target (Payload.Share (Payload.Ids [| head |]));
        st.report_target <- head;
        st.silence <- 0;
        (* marks refer to the old target's reply stream *)
        st.prev_sent <- st.acked_upto;
        st.last_sent <- st.acked_upto
      end
      else begin
        st.silence <- st.silence + 1;
        if st.silence > patience then begin
          ignore (Cset.add st.suspects head);
          st.silence <- 0
        end
      end;
      (* Report to the head candidate. An empty report still goes out —
         it doubles as the pull request for the head's reply. *)
      let msg =
        match upward with
        | Delta ->
          (* The unacknowledged window, minus identifiers already in
             smaller-ranked custody. The common steady-state cases are
             allocation-free: an empty window reuses the shared empty
             report, and a window with nothing filtered out goes as a
             zero-copy slice of the learn order. *)
          let acked = st.acked_upto in
          st.prev_sent <- st.last_sent;
          st.last_sent <- Knowledge.mark st.knowledge;
          if st.last_sent = acked then exchange_empty
          else begin
            let recent = Knowledge.since_slice st.knowledge ~mark:acked in
            let total = Intvec.slice_length recent in
            let keep = ref 0 in
            for i = 0 to total - 1 do
              if not (Cset.mem st.upward_done (Intvec.slice_get recent i)) then incr keep
            done;
            if !keep = 0 then exchange_empty
            else if !keep = total then Payload.Exchange (Payload.Delta recent)
            else begin
              let fresh = Array.make !keep 0 in
              let j = ref 0 in
              for i = 0 to total - 1 do
                let v = Intvec.slice_get recent i in
                if not (Cset.mem st.upward_done v) then begin
                  fresh.(!j) <- v;
                  incr j
                end
              done;
              Payload.Exchange (Payload.Ids fresh)
            end
          end
        | Full -> Payload.Exchange (snap ())
      in
      send ~dst:head msg
    end
    else begin
      (* Head: broadcast the full view to the cluster and to every foreign
         node this head has heard of — the growing-fan-out exchange. *)
      match broadcast with
      | Off -> ()
      | All ->
        if Knowledge.cardinal st.knowledge > 1 then begin
          let v = Knowledge.version st.knowledge in
          if tracked || v <> !bcast_version then begin
            bcast_version := v;
            let msg = share_snap () in
            Knowledge.iter_known st.knowledge (fun dst -> if dst <> self then send ~dst msg)
          end
        end
      | Cap k ->
        let targets = Knowledge.random_known_among st.knowledge ctx.rng ~k in
        if Array.length targets > 0 then begin
          let msg = share_snap () in
          Array.iter (fun dst -> send ~dst msg) targets
        end
    end
    end
  in
  (* A full snapshot's contents stay in the sharer's custody — the
     sharer either reports them down-rank itself or, if it is a head,
     hands over its backlog when it retires. Only the sharer's own
     existence must keep flowing upward, so its done-bit is cleared when
     the snapshot came from a foreign node. Small explicit lists
     (introductions) are head identifiers that must propagate and are
     never marked done. *)
  let absorb_custody (b : Knowledge.snap) =
    if tracked then ignore (Cset.union_into ~dst:st.upward_done ~src:b.set)
    else begin
      match st.last_custody with
      | Some p when p == b -> ()
      | _ ->
        ignore (Cset.union_into ~dst:st.upward_done ~src:b.set);
        st.last_custody <- Some b
    end
  in
  let note_custody ~src d =
    match (d : Payload.data) with
    | Payload.Bits b ->
      absorb_custody b;
      if src <> st.report_target then begin
        ignore (Cset.remove st.upward_done src);
        (* Compact knowledge does not enter bulk-merged ids into the
           learn order, but the sharer's own existence is now in our
           custody and must flow upward: make it an explicit learn. *)
        Knowledge.note_explicit st.knowledge src
      end
    | Payload.Ids _ | Payload.Delta _ | Payload.Updates _ -> ()
  in
  (* Quiescence is reversible: a message that teaches anything new, or
     contact from a node we have never heard of (a late joiner), wakes a
     halted node so the system re-converges and re-halts — without this,
     churn arriving after the Halt wave would be stranded. *)
  let wake () =
    if st.halted then begin
      st.halted <- false;
      st.quiet_rounds <- 0
    end
  in
  let receive ~src payload =
    if Cset.mem st.suspects src then ignore (Cset.remove st.suspects src);
    if src = st.report_target then st.silence <- 0;
    match (payload : Payload.t) with
    | Exchange d ->
      if Payload.data_size d > 0 then st.saw_new_info <- true;
      if not (Knowledge.knows st.knowledge src) then wake ();
      if Payload.merge_data st.knowledge d > 0 then wake ();
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Reply d ->
      if Payload.merge_data st.knowledge d > 0 then wake ();
      if src = st.report_target then begin
        (if st.prev_sent > st.acked_upto then st.acked_upto <- st.prev_sent);
        match d with
        | Payload.Bits b -> absorb_custody b
        | Payload.Ids ids -> Array.iter (fun v -> ignore (Cset.add st.upward_done v)) ids
        | Payload.Delta s -> Intvec.slice_iter (fun v -> ignore (Cset.add st.upward_done v)) s
        | Payload.Updates u ->
          Array.iter (fun e -> ignore (Cset.add st.upward_done e.Payload.node)) u.entries
      end
      else note_custody ~src d
    | Share d ->
      if Payload.merge_data st.knowledge d > 0 then wake ();
      note_custody ~src d
    | Probe ->
      if not (Knowledge.knows st.knowledge src) then wake ();
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Halt -> st.halted <- true
    | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = (fun () -> st.halted) }

let variant_name ~broadcast ~upward =
  let b =
    match broadcast with All -> "" | Cap k -> Printf.sprintf ":cap:%d" k | Off -> ":nobroadcast"
  in
  let u =
    match upward with Delta -> "" | Full -> ( match broadcast with All -> ":full" | _ -> "/full")
  in
  "hm" ^ b ^ u

let with_variant ?(broadcast = All) ?(upward = Delta) () =
  (match broadcast with
  | Cap k when k < 1 -> invalid_arg "Hm_gossip.with_variant: cap must be >= 1"
  | _ -> ());
  {
    Algorithm.name = variant_name ~broadcast ~upward;
    description = "Haeupler-Malkhi sub-logarithmic discovery (ablation variant)";
    make = make_with ~broadcast ~upward;
  }

let algorithm =
  {
    Algorithm.name = "hm";
    description =
      "Haeupler-Malkhi sub-logarithmic discovery: rank-based cluster convergecast with head \
       broadcast";
    make = make_with ~broadcast:All ~upward:Delta;
  }
