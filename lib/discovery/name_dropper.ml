type state = { knowledge : Knowledge.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge } in
  let round ~round:_ ~send =
    match Knowledge.random_known st.knowledge ctx.rng with
    | Some dst -> send ~dst (Payload.Share (Payload.Bits (Knowledge.snapshot st.knowledge)))
    | None -> ()
  in
  let receive ~src:_ payload =
    match (payload : Payload.t) with
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "name_dropper";
    description = "HLL99 Name-Dropper: push full knowledge to one random known node";
    make;
  }
