open Repro_util

type state = {
  knowledge : Knowledge.t;
  pending_replies : Intvec.t;  (* exchange/probe senders owed a reply *)
  mutable pushed_upto : int;  (* high-water mark for delta pushes *)
}

let partners (ctx : Algorithm.ctx) st =
  match ctx.params.partner with
  | Params.Uniform_known -> Knowledge.random_known_among st.knowledge ctx.rng ~k:ctx.params.fanout
  | Params.Initial_neighbor ->
    if Array.length ctx.neighbors = 0 then [||]
    else
      Array.init (min ctx.params.fanout (Array.length ctx.neighbors)) (fun _ ->
          Rng.pick ctx.rng ctx.neighbors)

let make_with params (ctx : Algorithm.ctx) =
  let ctx = { ctx with Algorithm.params = params } in
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge; pending_replies = Intvec.create (); pushed_upto = 0 } in
  let push_data () =
    if params.Params.delta then begin
      let mark = st.pushed_upto in
      st.pushed_upto <- Knowledge.mark st.knowledge;
      if st.pushed_upto = mark then Payload.empty_delta
      else Payload.Delta (Knowledge.since_slice st.knowledge ~mark)
    end
    else Payload.Bits (Knowledge.snapshot st.knowledge)
  in
  let round ~round:_ ~send =
    (* Replies first: full knowledge, one shared reply message. Replies
       do not themselves trigger replies. *)
    if not (Intvec.is_empty st.pending_replies) then begin
      let reply = Payload.Reply (Payload.Bits (Knowledge.snapshot st.knowledge)) in
      Intvec.iter (fun dst -> send ~dst reply) st.pending_replies;
      Intvec.clear st.pending_replies
    end;
    let targets = partners ctx st in
    if Array.length targets > 0 then begin
      match params.Params.mode with
      | Params.Push ->
        let msg = Payload.Share (push_data ()) in
        Array.iter (fun dst -> send ~dst msg) targets
      | Params.Pull -> Array.iter (fun dst -> send ~dst Payload.Probe) targets
      | Params.Push_pull ->
        let msg = Payload.Exchange (push_data ()) in
        Array.iter (fun dst -> send ~dst msg) targets
    end
  in
  let receive ~src payload =
    match (payload : Payload.t) with
    | Share d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Exchange d ->
      ignore (Payload.merge_data st.knowledge d);
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Probe ->
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let with_params params =
  match Params.validate params with
  | Error msg -> invalid_arg ("Rand_gossip.with_params: " ^ msg)
  | Ok params ->
    {
      Algorithm.name = Printf.sprintf "rand:%s" (Params.describe params);
      description = "flat direct-addressing gossip (ablation variant)";
      make = make_with params;
    }

let algorithm =
  {
    Algorithm.name = "rand_gossip";
    description =
      "flat push-pull gossip with direct addressing (log-n comparison point)";
    make = make_with Params.default;
  }
