open Repro_util
open Repro_graph
open Repro_engine

type completion = Strong | Survivors_strong | Leader | Quiescent

let completion_name = function
  | Strong -> "strong"
  | Survivors_strong -> "survivors"
  | Leader -> "leader"
  | Quiescent -> "quiescent"

let labels_of ~seed n = Rng.permutation (Rng.substream ~seed ~index:0) n

let instances ~seed (algo : Algorithm.t) topology =
  let n = Topology.n topology in
  let labels = labels_of ~seed n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        algo.Algorithm.make ctx)
  in
  (labels, instances)

let strong_done instances ~alive n =
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    if alive !v && not (Knowledge.is_complete instances.(!v).Algorithm.knowledge) then ok := false;
    incr v
  done;
  !ok

let survivors_done instances ~alive n =
  (* every alive node's knowledge must cover the alive set *)
  let alive_set = Cset.create n in
  for v = 0 to n - 1 do
    if alive v then ignore (Cset.add alive_set v)
  done;
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    if alive !v && not (Cset.subset alive_set (Knowledge.contents instances.(!v).Algorithm.knowledge))
    then ok := false;
    incr v
  done;
  !ok

let leader_done instances ~alive n ~labels =
  (* candidate leader: the alive node with the globally smallest label *)
  let leader = ref (-1) in
  for v = 0 to n - 1 do
    if alive v && (!leader < 0 || labels.(v) < labels.(!leader)) then leader := v
  done;
  if !leader < 0 then true
  else if not (Knowledge.is_complete instances.(!leader).Algorithm.knowledge) then false
  else begin
    let ok = ref true in
    let v = ref 0 in
    while !ok && !v < n do
      if alive !v && not (Knowledge.knows instances.(!v).Algorithm.knowledge !leader) then
        ok := false;
      incr v
    done;
    !ok
  end

let quiescent_done instances ~alive n =
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    if alive !v && not (instances.(!v).Algorithm.is_quiescent ()) then ok := false;
    incr v
  done;
  !ok

let satisfied completion ~labels ~instances ~alive =
  let n = Array.length instances in
  match completion with
  | Strong -> strong_done instances ~alive n
  | Survivors_strong -> survivors_done instances ~alive n
  | Leader -> leader_done instances ~alive n ~labels
  | Quiescent -> quiescent_done instances ~alive n

let last_join_round fault =
  (* restarts re-activate a node just like a late join: completion must
     not be declared while the plan still owes the network a node *)
  let m = List.fold_left (fun acc (_, round) -> max acc round) 0 (Fault.joining_nodes fault) in
  List.fold_left (fun acc (_, round) -> max acc round) m (Fault.restarting_nodes fault)

let restart_instance ~seed (algo : Algorithm.t) topology instances ~node =
  let n = Topology.n topology in
  let ctx =
    {
      Algorithm.n;
      node;
      neighbors = Topology.out_neighbors topology node;
      labels = labels_of ~seed n;
      rng = Rng.substream ~seed ~index:(node + 1);
      params = Params.default;
    }
  in
  instances.(node) <- algo.Algorithm.make ctx

let handlers instances =
  {
    Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
    deliver = (fun ~node ~src ~round:_ payload -> instances.(node).Algorithm.receive ~src payload);
  }
