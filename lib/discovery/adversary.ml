open Repro_util
open Repro_engine

let data_ids (d : Payload.data) =
  match d with
  | Payload.Bits b -> Cset.to_array b.Knowledge.set
  | Payload.Ids ids ->
    let a = Array.copy ids in
    Array.sort compare a;
    a
  | Payload.Delta s ->
    let a = Intvec.slice_to_array s in
    Array.sort compare a;
    a
  | Payload.Updates u ->
    (* entries are canonically sorted by node already *)
    Array.map (fun e -> e.Payload.node) u.entries

let payload_ids (p : Payload.t) =
  match p with
  | Payload.Share d | Payload.Exchange d | Payload.Reply d -> Some (data_ids d)
  | Payload.Probe | Payload.Halt | Payload.Probe_req _ | Payload.Probe_ack _
  | Payload.Suspicion _ -> None

let inject_data ~universe ids (d : Payload.data) =
  let fresh = List.filter (fun id -> id >= 0 && id < universe) ids in
  if fresh = [] then d
  else
    match d with
    | Payload.Bits b ->
      let s' = Cset.copy b.Knowledge.set in
      List.iter (fun id -> ignore (Cset.add s' id)) fresh;
      (* injected ids invalidate the carried minima: mark them unknown *)
      Payload.Bits (Knowledge.external_snapshot s')
    | Payload.Ids arr ->
      let extra = List.filter (fun id -> not (Array.exists (Int.equal id) arr)) fresh in
      if extra = [] then d else Payload.Ids (Array.append arr (Array.of_list extra))
    | Payload.Delta s ->
      let arr = Intvec.slice_to_array s in
      let extra = List.filter (fun id -> not (Array.exists (Int.equal id) arr)) fresh in
      if extra = [] then d else Payload.Ids (Array.append arr (Array.of_list extra))
    | Payload.Updates u ->
      let known id = Array.exists (fun e -> e.Payload.node = id) u.entries in
      let extra = List.filter (fun id -> not (known id)) fresh in
      if extra = [] then d
      else begin
        (* fabricated members appear as never-versioned alive entries,
           re-sorted to keep the batch canonical *)
        let fab =
          List.map
            (fun id -> { Payload.node = id; version = 0; status = Payload.status_alive })
            extra
        in
        let entries = Array.append u.entries (Array.of_list fab) in
        Array.sort (fun a b -> compare a.Payload.node b.Payload.node) entries;
        Payload.Updates { u with entries }
      end

let inject ~universe (p : Payload.t) ids =
  match p with
  | Payload.Share d -> Payload.Share (inject_data ~universe ids d)
  | Payload.Exchange d -> Payload.Exchange (inject_data ~universe ids d)
  | Payload.Reply d -> Payload.Reply (inject_data ~universe ids d)
  | Payload.Probe | Payload.Halt | Payload.Probe_req _ | Payload.Probe_ack _
  | Payload.Suspicion _ -> p

let genesis_event ~node knowledge =
  Trace.Genesis { node; ids = Cset.to_array (Knowledge.contents knowledge) }

let wrap ~fault ~n ~trace (h : Payload.t Sim.handlers) : Payload.t Sim.handlers =
  let fab_by_node = Array.make (max n 1) [] in
  let has_fabs = ref false in
  List.iter
    (fun (node, ids) ->
      if node < n then begin
        fab_by_node.(node) <- ids;
        has_fabs := true
      end)
    (Fault.fabrications fault);
  let audit = Fault.audit fault && not (Trace.is_null trace) in
  if (not !has_fabs) && not audit then h
  else
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          match fab_by_node.(node) with
          | [] -> h.Sim.round_begin ~node ~round ~send
          | ids ->
            h.Sim.round_begin ~node ~round ~send:(fun ~dst p ->
                send ~dst (inject ~universe:n p ids)));
      deliver =
        (fun ~node ~src ~round payload ->
          (if audit then
             match payload_ids payload with
             | Some ids -> Trace.emit trace (Trace.Content { src; dst = node; ids })
             | None -> ());
          h.Sim.deliver ~node ~src ~round payload);
    }
