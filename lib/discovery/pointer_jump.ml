open Repro_util

type state = { knowledge : Knowledge.t; pending_replies : Intvec.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge; pending_replies = Intvec.create () } in
  let round ~round:_ ~send =
    (* answer last round's probes first; one shared reply message *)
    if not (Intvec.is_empty st.pending_replies) then begin
      let reply = Payload.Reply (Payload.Bits (Knowledge.snapshot st.knowledge)) in
      Intvec.iter (fun dst -> send ~dst reply) st.pending_replies;
      Intvec.clear st.pending_replies
    end;
    match Knowledge.random_known st.knowledge ctx.rng with
    | Some dst -> send ~dst Payload.Probe
    | None -> ()
  in
  let receive ~src payload =
    match (payload : Payload.t) with
    | Probe ->
      (* The probed node answers but does not incorporate the prober:
         HLL99's rule is Γ(v) ← Γ(v) ∪ Γ(u), one-directional — this is
         what makes RPJ degenerate (Θ(n)) on directed cycles. *)
      Intvec.push st.pending_replies src
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "pointer_jump";
    description = "HLL99 random pointer jump: pull full knowledge from one random known node";
    make;
  }
