(** A machine's knowledge set.

    Combines three views that the algorithms need at different costs:

    - an adaptive compressed set ({!Repro_util.Cset.t}) for O(1)
      membership and container-level whole-set merges — O(1) per
      saturated container, the dominant case once discovery converges;
    - a learn-order element vector, giving O(1) "what did I learn since
      round r" deltas and uniform random choice over the known set;
    - the running argmin of the (label-permuted) identifiers, for
      min-pointer style algorithms.

    Two regimes share this API, switched on the universe size at
    {!create} (threshold {!tracked_max}):

    - {b tracked} (small [n]): the learn order holds {e every} known
      identifier, and every merge enumerates its fresh ids — the
      historic behaviour that golden traces and live-backend
      certification pin down.
    - {b compact} (large [n]): bulk snapshot merges are container-level
      unions with O(1) argmin maintenance from payload-carried minima;
      the learn order holds only {e explicitly} learned identifiers
      (singletons and id-list batches) — exactly the ones custody-style
      protocols must forward — so per-node memory stays O(containers +
      explicit learns) instead of Θ(n) words.

    A knowledge set always contains its owner. *)

open Repro_util

type t

type snap = {
  set : Cset.t;  (** frozen contents *)
  sbest : int;  (** label-argmin over [set], or [-1] when unknown *)
  sbest_raw : int;  (** min raw id over [set], or [-1] when unknown *)
  mutable vbytes : int;
      (** {!Wire}'s cached varint body size for [set]; [-1] until computed.
          Written only from the serialisation path (single-threaded). *)
}
(** An immutable snapshot of a knowledge set, used as a message payload
    shared across a whole fan-out. Carrying the minima lets a compact
    receiver merge in O(containers) without enumerating elements; the
    frozen contents are immutable once published, so snapshots stay safe
    to share across domains. *)

val tracked_max : int ref
(** Universe-size threshold for the tracked regime (default 16384).
    Mutable so tests and experiments can force either regime; set it
    before creating knowledge sets, never while they are live. *)

val create : ?tracked:bool -> n:int -> owner:int -> labels:int array -> unit -> t
(** [create ~n ~owner ~labels ()] is the singleton knowledge {owner}.
    [labels] is the shared label permutation: [labels.(v)] is the
    comparison identifier of node [v] (see DESIGN.md §7). The array is
    captured by reference and must not be mutated. [?tracked] overrides
    the regime choice ([n <= !tracked_max] by default).
    @raise Invalid_argument if [owner] is out of range or [labels] has
    length ≠ [n]. *)

val owner : t -> int
val universe : t -> int
(** The [n] the set was created with. *)

val cardinal : t -> int
val knows : t -> int -> bool
val is_complete : t -> bool
(** Knows all [n] nodes. *)

val is_tracked : t -> bool
(** Whether this set is in the tracked (full learn order) regime. *)

val version : t -> int
(** A counter bumped on every change to the known set (and nothing
    else): callers may cache values derived from the contents — an
    encoded payload, a whole message — and reuse them while the version
    is unchanged. *)

val add : t -> int -> bool
(** Learn one identifier explicitly; [true] iff it was new. In compact
    mode an explicitly learned id enters the learn order even when it
    was already known through a bulk snapshot (so custody deltas forward
    it); the return value still reports set-membership freshness. *)

val note_explicit : t -> int -> unit
(** Compact-mode only (no-op when tracked): record that an
    already-known identifier was just learned {e explicitly}, entering
    it into the learn order if not already there. Used by custody
    protocols when responsibility for an id is transferred. *)

val merge_bits : t -> Cset.t -> int
(** Merge a raw set of identifiers; returns the number learned. The
    compact regime enumerates only the {e fresh} elements (to maintain
    the argmin); prefer {!merge_snapshot} where a payload is at hand. *)

val merge_snapshot : t -> snap -> int
(** Merge a snapshot payload; returns the number learned. Tracked:
    identical to {!merge_bits} on [snap.set]. Compact: a container-level
    union plus O(1) argmin update from the carried minima — no element
    enumeration (unless the minima are unknown, e.g. wire-decoded). *)

val merge_ids : t -> int array -> int
(** Merge an explicit identifier list; returns the number learned.
    New members enter the learn order in ascending id order regardless
    of the array's order: a batch is semantically a set, and its
    serialisation order is a transport artefact (wire codecs sort, an
    in-memory delta arrives in the sender's learn order). Canonicalising
    here keeps every order-derived behaviour — broadcast fan-outs,
    sampling, delta windows — a function of the delivery sequence alone,
    so live backends stay trace-identical to the in-memory engines. *)

val merge_slice : t -> Intvec.slice -> int
(** Merge the identifiers of a zero-copy slice (a delta payload);
    returns the number learned. Same ascending-order canonicalisation as
    {!merge_ids}. *)

val snapshot : t -> snap
(** An immutable snapshot of the current contents with its minima,
    suitable for sharing across a whole fan-out. O(containers) the first
    time after a change, O(1) (cached) while the {!version} is stable —
    a steady-state broadcaster re-sends the same snapshot value with no
    allocation. The underlying set is a {!Repro_util.Cset.freeze} of the
    live set, which privatises its storage on its next write, so no
    payload words are copied here. *)

val external_snapshot : Cset.t -> snap
(** Wrap a set not derived from a knowledge value (wire decode,
    adversarial injection) as a snapshot with unknown minima; compact
    receivers fall back to enumerating its fresh elements on merge. *)

val contents : t -> Cset.t
(** The live set — read-only alias for completion checks; callers must
    not mutate it. *)

val mark : t -> int
(** An opaque high-water mark: the current length of the learn order. *)

val since : t -> mark:int -> int array
(** Identifiers learned after [mark] was taken, oldest first.
    @raise Invalid_argument for a stale/invalid mark. *)

val since_slice : t -> mark:int -> Intvec.slice
(** Like {!since} but as a zero-copy slice of the learn order — the
    allocation-free payload for steady-state delta resends. Valid
    indefinitely (the learn order is append-only).
    @raise Invalid_argument for a stale/invalid mark. *)

val iter_known : t -> (int -> unit) -> unit
(** Iterate the known identifiers without materialising an array.
    Tracked: learn order (starting with the owner). Compact: ascending
    id order. The knowledge set must not be mutated during iteration. *)

val random_known : t -> Rng.t -> int option
(** A uniformly random known identifier excluding the owner; [None] when
    the owner knows only itself. *)

val random_known_among : t -> Rng.t -> k:int -> int array
(** Up to [k] distinct uniform known identifiers excluding the owner
    (fewer when the set is small). Virtual partial Fisher–Yates over the
    non-owner ranks: exactly [min k (cardinal - 1)] RNG draws, even when
    [k] approaches the number of known nodes, and no allocation beyond
    the result (the displaced ranks live in a reused scratch, scanned in
    O(k) per draw). Tracked mode ranks over the learn order; compact
    mode over ascending ids — the distribution is uniform either way. *)

val min_known : t -> int
(** The known node with the smallest label (possibly the owner). *)

val min_known_raw : t -> int
(** The known node with the smallest raw index, ignoring labels — the
    comparison key of the deterministic baseline, which cannot assume
    randomly-placed identifiers. *)

val min_known_excluding : t -> suspects:Cset.t -> int
(** The known node with the smallest label not in [suspects]. The owner
    competes like any other known node — a suspected owner is skipped
    too — and is returned only as the last-resort fallback when every
    known node is suspected. O(cardinal) — used only on the
    failure-handling path.
    @raise Invalid_argument if [suspects] has the wrong capacity. *)

val elements_in_learn_order : t -> int array
(** Tracked: the learn order. Compact: ascending id order (the learn
    order is partial there). *)

(** {2 Per-node versions}

    A version-vector-style annotation over the known set, used by the
    continuous discovery service: each node carries a monotonically
    increasing version (its incarnation counter), and a knowledge set
    records the highest version it has observed per node. Orthogonal to
    set membership — observing a version does not add the node to the
    set — and lazily allocated, so one-shot runs pay nothing. *)

val node_version : t -> int -> int
(** The highest version observed for a node; 0 when never observed.
    @raise Invalid_argument if the node is out of range. *)

val observe_version : t -> node:int -> version:int -> bool
(** [observe_version t ~node ~version] records [version] for [node] if
    it exceeds the current record; [true] iff it advanced. Observing
    version 0 (the universal initial version) is a no-op.
    @raise Invalid_argument if [node] is out of range or [version]
    negative. *)
