(** A machine's knowledge set.

    Combines three views that the algorithms need at different costs:

    - a dense {!Repro_util.Bitset.t} for O(1) membership and O(n/64)
      whole-set merges;
    - an insertion-ordered element vector, giving O(1) uniform random
      choice over the known set and O(1) "what did I learn since round r"
      deltas;
    - the running argmin of the (label-permuted) identifiers, for
      min-pointer style algorithms.

    A knowledge set always contains its owner. *)

open Repro_util

type t

val create : n:int -> owner:int -> labels:int array -> t
(** [create ~n ~owner ~labels] is the singleton knowledge {owner}.
    [labels] is the shared label permutation: [labels.(v)] is the
    comparison identifier of node [v] (see DESIGN.md §7). The array is
    captured by reference and must not be mutated.
    @raise Invalid_argument if [owner] is out of range or [labels] has
    length ≠ [n]. *)

val owner : t -> int
val universe : t -> int
(** The [n] the set was created with. *)

val cardinal : t -> int
val knows : t -> int -> bool
val is_complete : t -> bool
(** Knows all [n] nodes. *)

val add : t -> int -> bool
(** Learn one identifier; [true] iff it was new. *)

val merge_bits : t -> Bitset.t -> int
(** Merge a bitset of identifiers; returns the number learned. *)

val merge_ids : t -> int array -> int
(** Merge an explicit identifier list; returns the number learned.
    New members enter the learn order in ascending id order regardless
    of the array's order: a batch is semantically a set, and its
    serialisation order is a transport artefact (wire codecs sort, an
    in-memory delta arrives in the sender's learn order). Canonicalising
    here keeps every order-derived behaviour — broadcast fan-outs,
    sampling, delta windows — a function of the delivery sequence alone,
    so live backends stay trace-identical to the in-memory engines. *)

val merge_slice : t -> Intvec.slice -> int
(** Merge the identifiers of a zero-copy slice (a delta payload);
    returns the number learned. Same ascending-order canonicalisation as
    {!merge_ids}. *)

val snapshot : t -> Bitset.t
(** An immutable view of the current bitset, suitable for use as a
    message payload shared across a whole fan-out. O(1): the view is a
    {!Repro_util.Bitset.freeze} of the live set, which privatises its
    storage on its next write, so no words are copied here. *)

val contents : t -> Bitset.t
(** The live bitset — read-only alias for completion checks; callers must
    not mutate it. *)

val mark : t -> int
(** An opaque high-water mark: the current length of the learn order. *)

val since : t -> mark:int -> int array
(** Identifiers learned after [mark] was taken, oldest first.
    @raise Invalid_argument for a stale/invalid mark. *)

val since_slice : t -> mark:int -> Intvec.slice
(** Like {!since} but as a zero-copy slice of the learn order — the
    allocation-free payload for steady-state delta resends. Valid
    indefinitely (the learn order is append-only).
    @raise Invalid_argument for a stale/invalid mark. *)

val iter_known : t -> (int -> unit) -> unit
(** Iterate the known identifiers in learn order (starting with the
    owner) without materialising an array — the allocation-free
    counterpart of {!elements_in_learn_order} for broadcast fan-outs.
    The knowledge set must not be mutated during iteration. *)

val random_known : t -> Rng.t -> int option
(** A uniformly random known identifier excluding the owner; [None] when
    the owner knows only itself. *)

val random_known_among : t -> Rng.t -> k:int -> int array
(** Up to [k] distinct uniform known identifiers excluding the owner
    (fewer when the set is small). Virtual partial Fisher–Yates over the
    learn order's ranks: exactly [min k (cardinal - 1)] RNG draws, even
    when [k] approaches the number of known nodes, and no allocation
    beyond the result (the displaced ranks live in a reused scratch,
    scanned in O(k) per draw). *)

val min_known : t -> int
(** The known node with the smallest label (possibly the owner). *)

val min_known_raw : t -> int
(** The known node with the smallest raw index, ignoring labels — the
    comparison key of the deterministic baseline, which cannot assume
    randomly-placed identifiers. *)

val min_known_excluding : t -> suspects:Bitset.t -> int
(** The known node with the smallest label whose bit is not set in
    [suspects]. The owner competes like any other known node — a
    suspected owner is skipped too — and is returned only as the
    last-resort fallback when every known node is suspected.
    O(cardinal) — used only on the failure-handling path.
    @raise Invalid_argument if [suspects] has the wrong capacity. *)

val elements_in_learn_order : t -> int array
