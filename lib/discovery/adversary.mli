(** Content adversaries and the audit instrumentation that catches them.

    The CRC/sequence layer of the live path detects {e transport}
    corruption, but nothing below this module audits {e content}: a node
    advertising a stale or fabricated identifier produces perfectly
    well-formed messages. A fault plan can schedule exactly that
    ({!Repro_engine.Fault.with_fabrication}), and this module provides

    - the injection primitive ({!inject}) that adds the scheduled ids to
      every data payload a fabricating node sends, and
    - the audit instrumentation ({!wrap}, {!genesis_event},
      {!payload_ids}) that lets {!Repro_engine.Trace.Invariants} verify
      the provenance invariant "every advertised id was genuinely
      learned" and flag the fabricator. *)

open Repro_engine

val data_ids : Payload.data -> int array
(** The identifiers a data payload advertises, ascending. Allocates; used
    only on audited runs. *)

val payload_ids : Payload.t -> int array option
(** {!data_ids} of a data-bearing payload; [None] for [Probe]/[Halt]
    (they advertise nothing beyond the sender's own address, which the
    checker credits from the [Deliver] event itself). *)

val inject : universe:int -> Payload.t -> int list -> Payload.t
(** [inject ~universe p ids] returns [p] with [ids] added to its data
    (ids outside [0, universe) are ignored — they would not fit the
    receiver's bitset). [Probe]/[Halt] pass through. A [Delta] with
    additions becomes an [Ids] payload: the wire shape may change, but
    receivers treat both identically. *)

val genesis_event : node:int -> Knowledge.t -> Trace.event
(** The [Genesis] audit event for a node's current knowledge — emit at
    birth (initial knowledge = self + out-neighbors) and after a restart
    re-initialises the instance. *)

val wrap : fault:Fault.t -> n:int -> trace:Trace.sink -> Payload.t Sim.handlers -> Payload.t Sim.handlers
(** Wrap engine handlers with the plan's content behaviour: fabricating
    nodes have every outgoing payload pass through {!inject}, and — when
    the plan's audit flag is on and tracing is enabled — every delivered
    data payload emits a [Content] event (adjacent to its [Deliver])
    naming the ids it advertises. Returns the handlers unchanged when the
    plan schedules neither, so unaudited runs stay on the untouched hot
    path. *)
