open Repro_graph
open Repro_engine

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  time : float;
  ticks : int;
  messages : int;
  pointers : int;
  dropped : int;
  metrics : Metrics.t;
  alive : bool array;
}

type spec = {
  seed : int;
  fault : Fault.t;
  completion : Run.completion;
  horizon : float option;
  tick_jitter : float;
  latency : float * float;
  encoding : Wire.encoding;
  trace : Trace.sink;
}

let default_spec =
  {
    seed = 0;
    fault = Fault.none;
    completion = Run.Strong;
    horizon = None;
    tick_jitter = 0.1;
    latency = (0.1, 0.9);
    encoding = Wire.Adaptive;
    trace = Trace.null;
  }

let exec_spec spec (algo : Algorithm.t) topology =
  let { seed; fault; completion; horizon; tick_jitter; latency; encoding; trace } = spec in
  let n = Topology.n topology in
  let horizon = match horizon with Some h -> h | None -> (4.0 *. float_of_int n) +. 64.0 in
  let labels, instances = Exec.instances ~seed algo topology in
  let handlers = Adversary.wrap ~fault ~n ~trace (Exec.handlers instances) in
  let auditing = Fault.audit fault && not (Trace.is_null trace) in
  let emit_genesis node =
    Trace.emit trace (Adversary.genesis_event ~node instances.(node).Algorithm.knowledge)
  in
  if auditing then Array.iteri (fun node _ -> emit_genesis node) instances;
  let last_join = float_of_int (Exec.last_join_round fault) in
  let stop ~time ~alive =
    time >= last_join && Exec.satisfied completion ~labels ~instances ~alive
  in
  let lmin, lmax = latency in
  let config =
    {
      Async_sim.horizon;
      tick_jitter;
      latency_min = lmin;
      latency_max = lmax;
      fault;
      engine_seed = seed;
      trace;
    }
  in
  let on_restart ~node =
    Exec.restart_instance ~seed algo topology instances ~node;
    if auditing then emit_genesis node
  in
  let measure_bytes = Wire.encoded_size encoding ~universe:n in
  let outcome =
    Async_sim.run ~n ~config ~handlers ~measure:Payload.measure ~measure_bytes ~stop
      ~on_restart ()
  in
  {
    algorithm = algo.Algorithm.name;
    n;
    seed;
    completed = outcome.Async_sim.completed;
    time = outcome.Async_sim.time;
    ticks = outcome.Async_sim.ticks;
    messages = Metrics.messages_sent outcome.Async_sim.metrics;
    pointers = Metrics.pointers_sent outcome.Async_sim.metrics;
    dropped = Metrics.messages_dropped outcome.Async_sim.metrics;
    metrics = outcome.Async_sim.metrics;
    alive = outcome.Async_sim.alive;
  }
