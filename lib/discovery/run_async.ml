open Repro_util
open Repro_graph
open Repro_engine

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  time : float;
  ticks : int;
  messages : int;
  pointers : int;
  dropped : int;
  metrics : Metrics.t;
  alive : bool array;
}

type spec = {
  seed : int;
  fault : Fault.t;
  completion : Run.completion;
  horizon : float option;
  tick_jitter : float;
  latency : float * float;
  trace : Trace.sink;
}

let default_spec =
  {
    seed = 0;
    fault = Fault.none;
    completion = Run.Strong;
    horizon = None;
    tick_jitter = 0.1;
    latency = (0.1, 0.9);
    trace = Trace.null;
  }

let exec_spec spec (algo : Algorithm.t) topology =
  let { seed; fault; completion; horizon; tick_jitter; latency; trace } = spec in
  let n = Topology.n topology in
  let horizon = match horizon with Some h -> h | None -> (4.0 *. float_of_int n) +. 64.0 in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        algo.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ payload -> instances.(node).Algorithm.receive ~src payload);
    }
  in
  let last_join =
    List.fold_left (fun acc (_, round) -> max acc (float_of_int round)) 0.0
      (Fault.joining_nodes fault)
  in
  let stop ~time ~alive =
    time >= last_join
    &&
    match completion with
    | Run.Strong ->
      let ok = ref true in
      Array.iteri
        (fun v inst ->
          if alive v && not (Knowledge.is_complete inst.Algorithm.knowledge) then ok := false)
        instances;
      !ok
    | Run.Survivors_strong ->
      let alive_set = Bitset.create n in
      for v = 0 to n - 1 do
        if alive v then ignore (Bitset.add alive_set v)
      done;
      let ok = ref true in
      Array.iteri
        (fun v inst ->
          if alive v && not (Bitset.subset alive_set (Knowledge.contents inst.Algorithm.knowledge))
          then ok := false)
        instances;
      !ok
    | Run.Quiescent ->
      let ok = ref true in
      Array.iteri
        (fun v inst -> if alive v && not (inst.Algorithm.is_quiescent ()) then ok := false)
        instances;
      !ok
    | Run.Leader ->
      let leader = ref (-1) in
      for v = 0 to n - 1 do
        if alive v && (!leader < 0 || labels.(v) < labels.(!leader)) then leader := v
      done;
      !leader < 0
      || Knowledge.is_complete instances.(!leader).Algorithm.knowledge
         &&
         let ok = ref true in
         for v = 0 to n - 1 do
           if alive v && not (Knowledge.knows instances.(v).Algorithm.knowledge !leader) then
             ok := false
         done;
         !ok
  in
  let lmin, lmax = latency in
  let config =
    {
      Async_sim.horizon;
      tick_jitter;
      latency_min = lmin;
      latency_max = lmax;
      fault;
      engine_seed = seed;
      trace;
    }
  in
  let outcome = Async_sim.run ~n ~config ~handlers ~measure:Payload.measure ~stop () in
  {
    algorithm = algo.Algorithm.name;
    n;
    seed;
    completed = outcome.Async_sim.completed;
    time = outcome.Async_sim.time;
    ticks = outcome.Async_sim.ticks;
    messages = Metrics.messages_sent outcome.Async_sim.metrics;
    pointers = Metrics.pointers_sent outcome.Async_sim.metrics;
    dropped = Metrics.messages_dropped outcome.Async_sim.metrics;
    metrics = outcome.Async_sim.metrics;
    alive = outcome.Async_sim.alive;
  }

let exec ?(seed = 0) ?(fault = Fault.none) ?(completion = Run.Strong) ?horizon
    ?(tick_jitter = 0.1) ?(latency = (0.1, 0.9)) algo topology =
  exec_spec
    { seed; fault; completion; horizon; tick_jitter; latency; trace = Trace.null }
    algo topology
[@@deprecated "use Run_async.exec_spec with a Run_async.spec record"]
