open Repro_util

type encoding = Raw32 | Varint_delta | Bitmap | Adaptive

let encoding_name = function
  | Raw32 -> "raw32"
  | Varint_delta -> "varint"
  | Bitmap -> "bitmap"
  | Adaptive -> "adaptive"

let all_encodings = [ Raw32; Varint_delta; Bitmap; Adaptive ]

(* --- primitive writers/readers --- *)

let varint_size v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go (max v 0) 1

let write_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let read_varint bytes pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length bytes then invalid_arg "Wire.decode: truncated varint";
    let b = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v := !v lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
    else if !shift > 62 then invalid_arg "Wire.decode: varint overflow"
  done;
  !v

(* canonical identifier list of a data payload: sorted, deduplicated *)
let ids_of_data = function
  | Payload.Bits b -> Cset.elements b.Knowledge.set
  | Payload.Ids a -> List.sort_uniq Int.compare (Array.to_list a)
  | Payload.Delta s -> List.sort_uniq Int.compare (Array.to_list (Intvec.slice_to_array s))
  | Payload.Updates u -> Array.to_list (Array.map (fun e -> e.Payload.node) u.entries)

let ids_of_payload = function
  | Payload.Share d | Payload.Exchange d | Payload.Reply d -> ids_of_data d
  | Payload.Probe | Payload.Halt | Payload.Probe_req _ | Payload.Probe_ack _
  | Payload.Suspicion _ -> []

let check_range ~universe ids =
  List.iter
    (fun v ->
      if v < 0 || v >= universe then invalid_arg "Wire.encode: identifier out of range")
    ids

(* --- id-set codecs (byte bodies, excluding the message kind byte) --- *)

let raw32_body ids =
  let buf = Buffer.create (4 * List.length ids) in
  write_varint buf (List.length ids);
  List.iter
    (fun v ->
      Buffer.add_char buf (Char.chr (v land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF)))
    ids;
  buf

let varint_body ids =
  let buf = Buffer.create 64 in
  write_varint buf (List.length ids);
  let prev = ref (-1) in
  List.iter
    (fun v ->
      write_varint buf (v - !prev - 1);
      prev := v)
    ids;
  buf

let varint_size_of ids =
  let total = ref (varint_size (List.length ids)) in
  let prev = ref (-1) in
  List.iter
    (fun v ->
      total := !total + varint_size (v - !prev - 1);
      prev := v)
    ids;
  !total

let bitmap_body ~universe ids =
  let width = (universe + 7) / 8 in
  let body = Bytes.make width '\000' in
  List.iter
    (fun v ->
      let byte = v lsr 3 and bit = v land 7 in
      Bytes.set body byte (Char.chr (Char.code (Bytes.get body byte) lor (1 lsl bit))))
    ids;
  let buf = Buffer.create (width + 1) in
  Buffer.add_bytes buf body;
  buf

let bitmap_size ~universe = (universe + 7) / 8

(* --- update-batch codec (body codec 3) ---

   Canonical form required of the payload: entries sorted by node,
   strictly ascending (one entry per node). Body: varint count, then per
   entry a varint node gap (node - prev - 1), a varint version and one
   status byte. The 0x40 bit of the codec byte carries the batch's
   [full] flag. *)

let updates_full_flag = 0x40

let check_updates ~universe (entries : Payload.update array) =
  let prev = ref (-1) in
  Array.iter
    (fun (e : Payload.update) ->
      if e.Payload.node <= !prev then invalid_arg "Wire.encode: updates not strictly ascending";
      if e.Payload.node >= universe then invalid_arg "Wire.encode: identifier out of range";
      if e.Payload.version < 0 then invalid_arg "Wire.encode: negative version";
      if e.Payload.status < 0 || e.Payload.status > Payload.status_down then
        invalid_arg "Wire.encode: unknown update status";
      prev := e.Payload.node)
    entries

let updates_body (entries : Payload.update array) =
  let buf = Buffer.create (8 + (3 * Array.length entries)) in
  write_varint buf (Array.length entries);
  let prev = ref (-1) in
  Array.iter
    (fun (e : Payload.update) ->
      write_varint buf (e.Payload.node - !prev - 1);
      write_varint buf e.Payload.version;
      Buffer.add_char buf (Char.chr e.Payload.status);
      prev := e.Payload.node)
    entries;
  buf

let updates_body_size (entries : Payload.update array) =
  let total = ref (varint_size (Array.length entries)) in
  let prev = ref (-1) in
  Array.iter
    (fun (e : Payload.update) ->
      total := !total + varint_size (e.Payload.node - !prev - 1) + varint_size e.Payload.version + 1;
      prev := e.Payload.node)
    entries;
  !total

(* --- message framing ---

   byte 0: message kind (0 Share, 1 Exchange, 2 Reply, 3 Probe, 4 Halt,
     5 Probe_req, 6 Probe_ack, 7 Suspicion)
   byte 1 (data payloads only): body codec (0 raw32, 1 varint, 2 bitmap,
     3 updates) in the low bits, plus the snapshot-form flag (0x80) in
     the top bit and — update batches only — the full-state flag (0x40)
   rest: codec body. [Adaptive] picks the smaller of varint/bitmap.
   Update batches always use codec 3: the versions make them
   incompressible into the id-set codecs, and their encoding is
   independent of the [encoding] choice.

   The snapshot flag preserves the payload's in-memory form across the
   wire: algorithms distinguish a full-knowledge snapshot ([Bits]) from
   a small explicit list ([Ids]) — e.g. custody marking in hm — and the
   codec choice is a size decision that must not leak into protocol
   semantics. A decoded [Bits] means the sender passed [Bits],
   regardless of which body codec won. *)

let snapshot_flag = 0x80

let kind_tag = function
  | Payload.Share _ -> 0
  | Payload.Exchange _ -> 1
  | Payload.Reply _ -> 2
  | Payload.Probe -> 3
  | Payload.Halt -> 4
  | Payload.Probe_req _ -> 5
  | Payload.Probe_ack _ -> 6
  | Payload.Suspicion _ -> 7

(* Liveness control messages (kinds 5-7) carry two varints after the
   kind byte: the target identifier and a correlation value (the probe
   nonce or the suspected incarnation). No codec byte: the body shape is
   fixed by the kind, and canonical form is exactly the two varints with
   no trailing bytes. *)
let check_liveness ~universe ~target ~aux =
  if target < 0 || target >= universe then invalid_arg "Wire.encode: identifier out of range";
  if aux < 0 then invalid_arg "Wire.encode: negative correlation value"

let body_choice encoding ~universe ids =
  match encoding with
  | Raw32 -> `Raw
  | Varint_delta -> `Varint
  | Bitmap -> `Bitmap
  | Adaptive -> if varint_size_of ids <= bitmap_size ~universe then `Varint else `Bitmap

let encode encoding ~universe payload =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (kind_tag payload));
  (match payload with
  | Payload.Probe | Payload.Halt -> ()
  | Payload.Probe_req { target; nonce } | Payload.Probe_ack { target; nonce } ->
    check_liveness ~universe ~target ~aux:nonce;
    write_varint buf target;
    write_varint buf nonce
  | Payload.Suspicion { target; version } ->
    check_liveness ~universe ~target ~aux:version;
    write_varint buf target;
    write_varint buf version
  | Payload.Share (Payload.Updates u)
  | Payload.Exchange (Payload.Updates u)
  | Payload.Reply (Payload.Updates u) ->
    check_updates ~universe u.entries;
    Buffer.add_char buf (Char.chr (3 lor if u.full then updates_full_flag else 0));
    Buffer.add_buffer buf (updates_body u.entries)
  | Payload.Share d | Payload.Exchange d | Payload.Reply d ->
    let ids = ids_of_data d in
    check_range ~universe ids;
    let form =
      match d with
      | Payload.Bits _ -> snapshot_flag
      | Payload.Ids _ | Payload.Delta _ | Payload.Updates _ -> 0
    in
    (match body_choice encoding ~universe ids with
    | `Raw ->
      Buffer.add_char buf (Char.chr form);
      Buffer.add_buffer buf (raw32_body ids)
    | `Varint ->
      Buffer.add_char buf (Char.chr (1 lor form));
      Buffer.add_buffer buf (varint_body ids)
    | `Bitmap ->
      Buffer.add_char buf (Char.chr (2 lor form));
      Buffer.add_buffer buf (bitmap_body ~universe ids)));
  Buffer.to_bytes buf

(* Size-only fast paths: computing the exact encoded size must not cost
   more than the encoding decision itself. For [Bits] payloads the
   identifier list is never materialised — the varint body size is
   accumulated by iterating the set, and when the cardinality already
   reaches the bitmap width the varint body (>= 1 byte per identifier
   plus the count prefix) provably exceeds the bitmap, so [Adaptive] can
   choose the bitmap in O(1). The size is memoised in the snapshot's
   [vbytes] slot: a snapshot is shared across a whole fan-out (and, via
   {!Knowledge.snapshot}'s version cache, across rounds in the steady
   state), so each distinct knowledge state is walked once, not once per
   recipient per round. *)
(* Fold step for the set walk, with (prev + 1, running total) packed
   into one int so the accumulator stays immediate. Top-level so passing
   it to [Cset.fold] costs no closure. *)
let varint_bits_step acc v =
  let prev = (acc lsr 31) - 1 in
  ((v + 1) lsl 31) lor ((acc land 0x7FFFFFFF) + varint_size (v - prev - 1))

let varint_size_of_bits (b : Knowledge.snap) =
  if b.Knowledge.vbytes >= 0 then b.Knowledge.vbytes
  else begin
    let size =
      varint_size (Cset.cardinal b.Knowledge.set)
      + (Cset.fold varint_bits_step 0 b.Knowledge.set land 0x7FFFFFFF)
    in
    b.Knowledge.vbytes <- size;
    size
  end

(* For [Ids]/[Delta] payloads the canonical form is sorted and
   deduplicated, but materialising it as a list per sized message is the
   dominant allocator of a full run (delta windows are re-sent every
   round until acknowledged). Instead the identifiers are copied into a
   grow-only scratch array, sorted in place, and walked once — domain-
   local because parallel sweeps size messages concurrently. *)
let size_scratch : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])

(* In-place heapsort of [arr.(0..m-1)]: [Array.sort] cannot sort a
   prefix of a longer scratch without an allocating copy. [sift] and the
   swaps are top-level so the sort builds no closures. *)
let rec sift arr i len =
  let l = (2 * i) + 1 in
  if l < len then begin
    let c = if l + 1 < len && arr.(l + 1) > arr.(l) then l + 1 else l in
    if arr.(c) > arr.(i) then begin
      let t = arr.(i) in
      arr.(i) <- arr.(c);
      arr.(c) <- t;
      sift arr c len
    end
  end

let sort_prefix arr m =
  for i = (m / 2) - 1 downto 0 do
    sift arr i m
  done;
  for len = m - 1 downto 1 do
    let t = arr.(0) in
    arr.(0) <- arr.(len);
    arr.(len) <- t;
    sift arr 0 len
  done

(* Distinct count and varint body size of a sorted scratch prefix,
   skipping duplicates exactly as the canonical list form would. Packed
   as [count lsl 31 lor bytes] — returning a pair would put a tuple on
   the minor heap for every sized message. *)
let sorted_prefix_sizes arr m =
  let distinct = ref 0 in
  let vbytes = ref 0 in
  let prev = ref (-1) in
  for i = 0 to m - 1 do
    let v = arr.(i) in
    if v <> !prev then begin
      incr distinct;
      vbytes := !vbytes + varint_size (v - !prev - 1);
      prev := v
    end
  done;
  (!distinct lsl 31) lor !vbytes

let ids_sizes d =
  let scratch = Domain.DLS.get size_scratch in
  let m =
    match d with
    | Payload.Ids a -> Array.length a
    | Payload.Delta s -> Intvec.slice_length s
    | Payload.Bits _ | Payload.Updates _ -> invalid_arg "Wire.ids_sizes: non-id payload"
  in
  if Array.length !scratch < m then scratch := Array.make (max m (2 * Array.length !scratch)) 0;
  let arr = !scratch in
  (match d with
  | Payload.Ids a -> Array.blit a 0 arr 0 m
  | Payload.Delta s ->
    for i = 0 to m - 1 do
      arr.(i) <- Intvec.slice_get s i
    done
  | Payload.Bits _ | Payload.Updates _ -> ());
  sort_prefix arr m;
  sorted_prefix_sizes arr m

let encoded_size encoding ~universe payload =
  match payload with
  | Payload.Probe | Payload.Halt -> 1
  | Payload.Probe_req { target; nonce } | Payload.Probe_ack { target; nonce } ->
    1 + varint_size target + varint_size nonce
  | Payload.Suspicion { target; version } -> 1 + varint_size target + varint_size version
  | Payload.Share d | Payload.Exchange d | Payload.Reply d ->
    let body =
      match (encoding, d) with
      | _, Payload.Updates u -> updates_body_size u.entries
      | Raw32, Payload.Bits b ->
        let card = Cset.cardinal b.Knowledge.set in
        varint_size card + (4 * card)
      | Varint_delta, Payload.Bits b -> varint_size_of_bits b
      | Bitmap, _ -> bitmap_size ~universe
      | Adaptive, Payload.Bits b ->
        if Cset.cardinal b.Knowledge.set >= bitmap_size ~universe then bitmap_size ~universe
        else min (varint_size_of_bits b) (bitmap_size ~universe)
      | (Raw32 | Varint_delta | Adaptive), (Payload.Ids _ | Payload.Delta _) ->
        let packed = ids_sizes d in
        let distinct = packed lsr 31 and vbytes = packed land 0x7FFFFFFF in
        let vsize = varint_size distinct + vbytes in
        (match encoding with
        | Raw32 -> varint_size distinct + (4 * distinct)
        | Varint_delta -> vsize
        | Bitmap | Adaptive -> min vsize (bitmap_size ~universe))
    in
    2 + body

(* Decoding is defensive: the input may come off a socket, so every
   malformed buffer — truncation, corruption, hostile lengths — must be
   reported as [Error], never raised, and must never trigger a large
   allocation (claimed element counts are validated against the bytes
   actually present before any array is sized from them). The raising
   internal form is wrapped once at the bottom. *)
let decode_exn ~universe bytes =
  if Bytes.length bytes < 1 then invalid_arg "Wire.decode: empty message";
  let kind = Char.code (Bytes.get bytes 0) in
  if kind = 3 || kind = 4 then begin
    if Bytes.length bytes <> 1 then invalid_arg "Wire.decode: oversized probe/halt";
    if kind = 3 then Payload.Probe else Payload.Halt
  end
  else if kind >= 5 && kind <= 7 then begin
    let pos = ref 1 in
    let target = read_varint bytes pos in
    if target < 0 || target >= universe then invalid_arg "Wire.decode: identifier out of range";
    let aux = read_varint bytes pos in
    if aux < 0 then invalid_arg "Wire.decode: correlation value overflow";
    (* canonical form is exactly two varints: trailing bytes are noise *)
    if !pos <> Bytes.length bytes then invalid_arg "Wire.decode: trailing bytes";
    match kind with
    | 5 -> Payload.Probe_req { target; nonce = aux }
    | 6 -> Payload.Probe_ack { target; nonce = aux }
    | _ -> Payload.Suspicion { target; version = aux }
  end
  else begin
    if kind > 2 then invalid_arg "Wire.decode: unknown message kind";
    if Bytes.length bytes < 2 then invalid_arg "Wire.decode: truncated header";
    let codec_byte = Char.code (Bytes.get bytes 1) in
    let snapshot = codec_byte land snapshot_flag <> 0 in
    let full = codec_byte land updates_full_flag <> 0 in
    let codec = codec_byte land 0x3F in
    if full && codec <> 3 then invalid_arg "Wire.decode: full flag on a non-update codec";
    if snapshot && codec = 3 then invalid_arg "Wire.decode: snapshot flag on an update batch";
    let pos = ref 2 in
    let data =
      match codec with
      | 0 ->
        let count = read_varint bytes pos in
        (* exact-length check before sizing the array: a hostile count
           cannot make us allocate more than the buffer itself implies *)
        if count < 0 || count > (Bytes.length bytes - !pos) / 4 then
          invalid_arg "Wire.decode: raw32 length mismatch";
        if Bytes.length bytes - !pos <> 4 * count then
          invalid_arg "Wire.decode: raw32 length mismatch";
        let out = Array.make count 0 in
        for i = 0 to count - 1 do
          let b k = Char.code (Bytes.get bytes (!pos + k)) in
          out.(i) <- b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24);
          pos := !pos + 4
        done;
        Payload.Ids out
      | 1 ->
        let count = read_varint bytes pos in
        (* each gap varint is at least one byte, so a valid count never
           exceeds the remaining length *)
        if count < 0 || count > Bytes.length bytes - !pos then
          invalid_arg "Wire.decode: varint count exceeds buffer";
        let out = Array.make count 0 in
        let prev = ref (-1) in
        for i = 0 to count - 1 do
          let gap = read_varint bytes pos in
          let v = !prev + 1 + gap in
          (* checked per element: gap-sum overflow would otherwise wrap
             negative and slip past a final >= universe test *)
          if v < 0 || v >= universe then invalid_arg "Wire.decode: identifier out of range";
          out.(i) <- v;
          prev := v
        done;
        if !pos <> Bytes.length bytes then invalid_arg "Wire.decode: trailing bytes";
        Payload.Ids out
      | 2 ->
        let width = (universe + 7) / 8 in
        if Bytes.length bytes - 2 <> width then invalid_arg "Wire.decode: bitmap width mismatch";
        let bits = Cset.create universe in
        for v = 0 to universe - 1 do
          let byte = Char.code (Bytes.get bytes (2 + (v lsr 3))) in
          if byte land (1 lsl (v land 7)) <> 0 then ignore (Cset.add bits v)
        done;
        (* bits of the final partial byte beyond [universe) would be
           silently dropped; reject them as corruption instead *)
        if universe land 7 <> 0 then begin
          let last = Char.code (Bytes.get bytes (Bytes.length bytes - 1)) in
          if last lsr (universe land 7) <> 0 then
            invalid_arg "Wire.decode: bitmap has bits beyond the universe"
        end;
        Payload.Bits (Knowledge.external_snapshot bits)
      | 3 ->
        let count = read_varint bytes pos in
        (* each entry is at least three bytes (gap, version, status), so
           a valid count never exceeds a third of the remaining length *)
        if count < 0 || count > (Bytes.length bytes - !pos) / 3 then
          invalid_arg "Wire.decode: updates count exceeds buffer";
        let entries = Array.make count { Payload.node = 0; version = 0; status = 0 } in
        let prev = ref (-1) in
        for i = 0 to count - 1 do
          let gap = read_varint bytes pos in
          let node = !prev + 1 + gap in
          if node < 0 || node >= universe then invalid_arg "Wire.decode: identifier out of range";
          let version = read_varint bytes pos in
          if version < 0 then invalid_arg "Wire.decode: version overflow";
          if !pos >= Bytes.length bytes then invalid_arg "Wire.decode: truncated update status";
          let status = Char.code (Bytes.get bytes !pos) in
          incr pos;
          if status > Payload.status_down then invalid_arg "Wire.decode: unknown update status";
          entries.(i) <- { Payload.node; version; status };
          prev := node
        done;
        if !pos <> Bytes.length bytes then invalid_arg "Wire.decode: trailing bytes";
        Payload.Updates { full; entries }
      | _ -> invalid_arg "Wire.decode: unknown body codec"
    in
    (match data with
    | Payload.Ids out ->
      Array.iter
        (fun v -> if v < 0 || v >= universe then invalid_arg "Wire.decode: identifier out of range")
        out
    | Payload.Bits _ | Payload.Delta _ | Payload.Updates _ -> ());
    (* restore the sender's form: the body codec was a size decision *)
    let data =
      match (data, snapshot) with
      | Payload.Ids out, true ->
        let bits = Cset.create universe in
        Array.iter (fun v -> ignore (Cset.add bits v)) out;
        Payload.Bits (Knowledge.external_snapshot bits)
      | Payload.Bits b, false -> Payload.Ids (Cset.to_array b.Knowledge.set)
      | (Payload.Ids _ | Payload.Bits _ | Payload.Delta _ | Payload.Updates _), _ -> data
    in
    match kind with
    | 0 -> Payload.Share data
    | 1 -> Payload.Exchange data
    | 2 -> Payload.Reply data
    | _ -> invalid_arg "Wire.decode: unknown message kind"
  end

let decode _encoding ~universe bytes =
  if universe < 0 then Error "Wire.decode: negative universe"
  else match decode_exn ~universe bytes with
    | payload -> Ok payload
    | exception Invalid_argument msg -> Error msg
