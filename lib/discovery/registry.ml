let all =
  [
    Flooding.algorithm;
    Swamping.algorithm;
    Pointer_jump.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let baselines = List.filter (fun a -> a.Algorithm.name <> "hm") all

let parse_rand_spec spec =
  (* spec grammar: MODE "/f" INT ["/delta"] ["/nbr"], as produced by
     Params.describe. *)
  let parts = String.split_on_char '/' spec in
  let init = { Params.default with Params.delta = false; partner = Params.Uniform_known } in
  let step acc part =
    match acc with
    | Error _ -> acc
    | Ok p -> (
      match part with
      | "push" -> Ok { p with Params.mode = Params.Push }
      | "pull" -> Ok { p with Params.mode = Params.Pull }
      | "push_pull" -> Ok { p with Params.mode = Params.Push_pull }
      | "delta" -> Ok { p with Params.delta = true }
      | "nbr" -> Ok { p with Params.partner = Params.Initial_neighbor }
      | _ when String.length part > 1 && part.[0] = 'f' -> (
        match int_of_string_opt (String.sub part 1 (String.length part - 1)) with
        | Some f when f >= 1 -> Ok { p with Params.fanout = f }
        | _ -> Error (Printf.sprintf "bad fanout %S" part))
      | _ -> Error (Printf.sprintf "unknown rand_gossip parameter %S" part))
  in
  List.fold_left step (Ok init) parts

let parse_hm_spec spec =
  (* spec grammar: ("cap:" INT | "nobroadcast") ["/full"] | "full" *)
  match String.split_on_char '/' spec with
  | [ "full" ] -> Ok (Hm_gossip.with_variant ~upward:Hm_gossip.Full ())
  | [ head ] | [ head; "full" ] as parts -> (
    let upward = if List.length parts = 2 then Hm_gossip.Full else Hm_gossip.Delta in
    match String.split_on_char ':' head with
    | [ "nobroadcast" ] -> Ok (Hm_gossip.with_variant ~broadcast:Hm_gossip.Off ~upward ())
    | [ "cap"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Hm_gossip.with_variant ~broadcast:(Hm_gossip.Cap k) ~upward ())
      | _ -> Error (Printf.sprintf "bad hm cap %S" k))
    | _ -> Error (Printf.sprintf "unknown hm variant %S" spec))
  | _ -> Error (Printf.sprintf "unknown hm variant %S" spec)

let prefixed ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl))
  else None

let names () = List.map (fun a -> a.Algorithm.name) all

let parse_doc () =
  Printf.sprintf
    "%s — or an ablation spec: rand:MODE[/fK][/delta][/nbr] with MODE push|pull|push_pull \
     (e.g. rand:push/f2/delta), hm:cap:K, hm:nobroadcast, hm:full, hm:cap:K/full (e.g. \
     hm:cap:4)."
    (String.concat ", " (names ()))

(* Classic two-row Levenshtein; the catalogue is tiny, so O(|a|·|b|) per
   candidate is nothing. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let is_substring ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec at i = i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1)) in
  lsub > 0 && at 0

(* Near-miss candidates for an unknown name: a known name within edit
   distance 2 (catches typos like "floding"), or one that contains /is
   contained in the query (catches aliases like "hm_gossip" -> "hm" and
   truncations like "rand" -> "rand_gossip"). Spec-shaped names keep
   their prefix head as a hint. *)
let suggestions name =
  let scored =
    List.filter_map
      (fun cand ->
        let d = edit_distance name cand in
        if d = 0 then None
        else if d <= 2 then Some (cand, d)
        else if is_substring ~sub:cand name || is_substring ~sub:name cand then
          Some (cand, 3 + abs (String.length cand - String.length name))
        else None)
      (names ())
  in
  let sorted = List.sort (fun (a, da) (b, db) -> compare (da, a) (db, b)) scored in
  List.filteri (fun i _ -> i < 2) (List.map fst sorted)

let did_you_mean name =
  match suggestions name with
  | [] -> ""
  | cands ->
    Printf.sprintf " — did you mean %s?"
      (String.concat " or " (List.map (Printf.sprintf "%S") cands))

(* Module-style aliases accepted anywhere an algorithm name is: the
   library modules are named after the papers, the registry after the
   catalogue's short names. *)
let aliases = [ ("hm_gossip", "hm"); ("haeupler_malkhi", "hm") ]

let find name =
  let name = Option.value (List.assoc_opt name aliases) ~default:name in
  match List.find_opt (fun a -> a.Algorithm.name = name) all with
  | Some a -> Ok a
  | None -> (
    match prefixed ~prefix:"rand:" name with
    | Some spec -> Result.map Rand_gossip.with_params (parse_rand_spec spec)
    | None -> (
      match prefixed ~prefix:"hm:" name with
      | Some spec -> parse_hm_spec spec
      | None ->
        Error
          (Printf.sprintf "unknown algorithm %S%s (known: %s)" name (did_you_mean name)
             (parse_doc ()))))
