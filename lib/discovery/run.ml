open Repro_graph
open Repro_engine

type completion = Exec.completion = Strong | Survivors_strong | Leader | Quiescent

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  rounds : int;
  messages : int;
  pointers : int;
  bytes : int;
  delivered : int;
  dropped : int;
  max_round_messages : int;
  mean_knowledge_series : float array;
  metrics : Metrics.t;
  alive : bool array;
}

type spec = {
  seed : int;
  fault : Fault.t;
  completion : completion;
  max_rounds : int option;
  track_growth : bool;
  encoding : Wire.encoding;
  trace : Trace.sink;
  jobs : int;
}

let default_spec =
  {
    seed = 0;
    fault = Fault.none;
    completion = Strong;
    max_rounds = None;
    track_growth = false;
    encoding = Wire.Adaptive;
    trace = Trace.null;
    jobs = 1;
  }

let exec_spec spec (algo : Algorithm.t) topology =
  let { seed; fault; completion; max_rounds; track_growth; encoding; trace; jobs } = spec in
  let n = Topology.n topology in
  let max_rounds = match max_rounds with Some m -> m | None -> (4 * n) + 64 in
  let labels, instances = Exec.instances ~seed algo topology in
  let handlers = Adversary.wrap ~fault ~n ~trace (Exec.handlers instances) in
  let auditing = Fault.audit fault && not (Trace.is_null trace) in
  let emit_genesis node =
    Trace.emit trace (Adversary.genesis_event ~node instances.(node).Algorithm.knowledge)
  in
  if auditing then Array.iteri (fun node _ -> emit_genesis node) instances;
  (* Completion predicates quantify over alive nodes, so they could fire
     while scheduled joiners are still offline; gate them on the last
     join having happened. *)
  let last_join = Exec.last_join_round fault in
  let stop ~round ~alive =
    round >= last_join && Exec.satisfied completion ~labels ~instances ~alive
  in
  let growth = ref [] in
  let on_round_end ~round:_ =
    if track_growth then begin
      let total = ref 0 in
      Array.iter
        (fun inst -> total := !total + Knowledge.cardinal inst.Algorithm.knowledge)
        instances;
      growth := (float_of_int !total /. float_of_int (max 1 n)) :: !growth
    end
  in
  (* Content auditing emits a trace event from inside the deliver
     handler, which would interleave with the engine's canonical event
     order on the parallel path: audited runs are clamped sequential. *)
  let jobs = if auditing then 1 else jobs in
  let config = { Sim.max_rounds; fault; engine_seed = seed; trace; jobs } in
  let measure_bytes = Wire.encoded_size encoding ~universe:n in
  let on_restart ~node =
    Exec.restart_instance ~seed algo topology instances ~node;
    (* a restart resets the node's provenance to its initial knowledge *)
    if auditing then emit_genesis node
  in
  let outcome =
    Sim.run ~n ~config ~handlers ~measure:Payload.measure ~measure_bytes ~stop ~on_round_end
      ~on_restart ()
  in
  {
    algorithm = algo.Algorithm.name;
    n;
    seed;
    completed = outcome.Sim.completed;
    rounds = outcome.Sim.rounds;
    messages = Metrics.messages_sent outcome.Sim.metrics;
    pointers = Metrics.pointers_sent outcome.Sim.metrics;
    bytes = Metrics.bytes_sent outcome.Sim.metrics;
    delivered = Metrics.messages_delivered outcome.Sim.metrics;
    dropped = Metrics.messages_dropped outcome.Sim.metrics;
    max_round_messages = Metrics.max_messages_in_round outcome.Sim.metrics;
    mean_knowledge_series = Array.of_list (List.rev !growth);
    metrics = outcome.Sim.metrics;
    alive = outcome.Sim.alive;
  }
