open Repro_util
open Repro_graph
open Repro_engine

type completion = Strong | Survivors_strong | Leader | Quiescent

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  rounds : int;
  messages : int;
  pointers : int;
  bytes : int;
  delivered : int;
  dropped : int;
  max_round_messages : int;
  mean_knowledge_series : float array;
  metrics : Metrics.t;
  alive : bool array;
}

let strong_done instances ~alive n =
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    if alive !v && not (Knowledge.is_complete instances.(!v).Algorithm.knowledge) then ok := false;
    incr v
  done;
  !ok

let survivors_done instances ~alive n =
  (* every alive node's knowledge must cover the alive set *)
  let alive_set = Bitset.create n in
  for v = 0 to n - 1 do
    if alive v then ignore (Bitset.add alive_set v)
  done;
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    if alive !v && not (Bitset.subset alive_set (Knowledge.contents instances.(!v).Algorithm.knowledge))
    then ok := false;
    incr v
  done;
  !ok

let leader_done instances ~alive n ~labels =
  (* candidate leader: the alive node with the globally smallest label *)
  let leader = ref (-1) in
  for v = 0 to n - 1 do
    if alive v && (!leader < 0 || labels.(v) < labels.(!leader)) then leader := v
  done;
  if !leader < 0 then true
  else if not (Knowledge.is_complete instances.(!leader).Algorithm.knowledge) then false
  else begin
    let ok = ref true in
    let v = ref 0 in
    while !ok && !v < n do
      if alive !v && not (Knowledge.knows instances.(!v).Algorithm.knowledge !leader) then
        ok := false;
      incr v
    done;
    !ok
  end

type spec = {
  seed : int;
  fault : Fault.t;
  completion : completion;
  max_rounds : int option;
  track_growth : bool;
  encoding : Wire.encoding;
  trace : Trace.sink;
}

let default_spec =
  {
    seed = 0;
    fault = Fault.none;
    completion = Strong;
    max_rounds = None;
    track_growth = false;
    encoding = Wire.Adaptive;
    trace = Trace.null;
  }

let exec_spec spec (algo : Algorithm.t) topology =
  let { seed; fault; completion; max_rounds; track_growth; encoding; trace } = spec in
  let n = Topology.n topology in
  let max_rounds = match max_rounds with Some m -> m | None -> (4 * n) + 64 in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        algo.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ payload -> instances.(node).Algorithm.receive ~src payload);
    }
  in
  (* Completion predicates quantify over alive nodes, so they could fire
     while scheduled joiners are still offline; gate them on the last
     join having happened. *)
  let last_join =
    List.fold_left (fun acc (_, round) -> max acc round) 0 (Fault.joining_nodes fault)
  in
  let stop ~round ~alive =
    round >= last_join
    &&
    match completion with
    | Strong -> strong_done instances ~alive n
    | Survivors_strong -> survivors_done instances ~alive n
    | Leader -> leader_done instances ~alive n ~labels
    | Quiescent ->
      let ok = ref true in
      Array.iteri
        (fun v inst -> if alive v && not (inst.Algorithm.is_quiescent ()) then ok := false)
        instances;
      !ok
  in
  let growth = ref [] in
  let on_round_end ~round:_ =
    if track_growth then begin
      let total = ref 0 in
      Array.iter
        (fun inst -> total := !total + Knowledge.cardinal inst.Algorithm.knowledge)
        instances;
      growth := (float_of_int !total /. float_of_int (max 1 n)) :: !growth
    end
  in
  let config = { Sim.max_rounds; fault; engine_seed = seed; trace } in
  let measure_bytes = Wire.encoded_size encoding ~universe:n in
  let outcome = Sim.run ~n ~config ~handlers ~measure:Payload.measure ~measure_bytes ~stop ~on_round_end () in
  {
    algorithm = algo.Algorithm.name;
    n;
    seed;
    completed = outcome.Sim.completed;
    rounds = outcome.Sim.rounds;
    messages = Metrics.messages_sent outcome.Sim.metrics;
    pointers = Metrics.pointers_sent outcome.Sim.metrics;
    bytes = Metrics.bytes_sent outcome.Sim.metrics;
    delivered = Metrics.messages_delivered outcome.Sim.metrics;
    dropped = Metrics.messages_dropped outcome.Sim.metrics;
    max_round_messages = Metrics.max_messages_in_round outcome.Sim.metrics;
    mean_knowledge_series = Array.of_list (List.rev !growth);
    metrics = outcome.Sim.metrics;
    alive = outcome.Sim.alive;
  }

let exec ?(seed = 0) ?(fault = Fault.none) ?(completion = Strong) ?max_rounds
    ?(track_growth = false) ?(encoding = Wire.Adaptive) algo topology =
  exec_spec
    { seed; fault; completion; max_rounds; track_growth; encoding; trace = Trace.null }
    algo topology
[@@deprecated "use Run.exec_spec with a Run.spec record"]
