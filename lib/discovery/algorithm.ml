open Repro_util

type ctx = {
  n : int;
  node : int;
  neighbors : int array;
  labels : int array;
  rng : Rng.t;
  params : Params.t;
}

type instance = {
  knowledge : Knowledge.t;
  round : round:int -> send:(dst:int -> Payload.t -> unit) -> unit;
  receive : src:int -> Payload.t -> unit;
  is_quiescent : unit -> bool;
}

let never_quiescent () = false

type t = { name : string; description : string; make : ctx -> instance }

let initial_knowledge ctx =
  let k = Knowledge.create ~n:ctx.n ~owner:ctx.node ~labels:ctx.labels () in
  Array.iter (fun v -> ignore (Knowledge.add k v)) ctx.neighbors;
  k
