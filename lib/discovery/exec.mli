(** Shared run-spec plumbing for every executor of a discovery run.

    A run — simulated ({!Run}, {!Run_async}) or live
    ({!Repro_net.Cluster}) — is parameterised the same way: a master
    seed determines the shared label permutation and every node's
    private RNG stream, an {!Algorithm.t} is instantiated once per node
    from the topology's initial out-neighbors, and a {!completion}
    predicate decides when discovery is finished. This module is the
    single definition of that derivation, so the deterministic engines
    and the network transport layer cannot drift apart: a node process
    and a simulated node with the same (seed, node) see bit-identical
    initial state. *)

open Repro_graph
open Repro_engine

(** When is an execution considered finished? (See {!Run.completion}
    for the per-variant discussion; [Run.completion] is an alias of
    this type.) *)
type completion = Strong | Survivors_strong | Leader | Quiescent

val completion_name : completion -> string
(** ["strong"], ["survivors"], ["leader"] or ["quiescent"] — the CLI
    spelling. *)

val labels_of : seed:int -> int -> int array
(** The shared label permutation of a run with this master seed
    (see DESIGN.md §7): substream 0 of the seed. *)

val instances : seed:int -> Algorithm.t -> Topology.t -> int array * Algorithm.instance array
(** [(labels, instances)] — the canonical per-run instantiation: labels
    from {!labels_of}, node [v]'s private RNG from substream [v + 1].
    Every executor must build its nodes through this function (the
    golden traces pin the resulting RNG draw order). *)

val satisfied :
  completion ->
  labels:int array ->
  instances:Algorithm.instance array ->
  alive:(int -> bool) ->
  bool
(** Evaluate a completion predicate over the current instance states.
    Predicates quantify over currently-alive nodes only; callers gate on
    {!last_join_round} so scheduled joiners are not vacuously skipped. *)

val last_join_round : Fault.t -> int
(** The latest scheduled join {e or restart} round (0 when none):
    completion must not be declared before this round/time. *)

val restart_instance :
  seed:int -> Algorithm.t -> Topology.t -> Algorithm.instance array -> node:int -> unit
(** Reset [instances.(node)] to its initial state — the same derivation
    as {!instances} (same labels, same RNG substream), mirroring a live
    restart where the supervisor re-forks the node process from scratch.
    Pass it as the engines' [on_restart] callback. *)

val handlers : Algorithm.instance array -> Payload.t Sim.handlers
(** Engine handlers that drive [instances]: poll [round] on round begin,
    route deliveries to [receive]. *)
