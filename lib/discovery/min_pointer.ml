open Repro_util

type state = { knowledge : Knowledge.t; pending_replies : Intvec.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge; pending_replies = Intvec.create () } in
  let self = ctx.node in
  let round ~round:_ ~send =
    let snap = Payload.Bits (Knowledge.snapshot st.knowledge) in
    if not (Intvec.is_empty st.pending_replies) then begin
      let reply = Payload.Reply snap in
      Intvec.iter (fun dst -> send ~dst reply) st.pending_replies;
      Intvec.clear st.pending_replies
    end;
    let leader = Knowledge.min_known_raw st.knowledge in
    if leader <> self then send ~dst:leader (Payload.Exchange snap)
    else if Knowledge.cardinal st.knowledge > 1 then begin
      (* This node is a root (local minimum of its knowledge). Roots never
         have a smaller node to report to, so they do the spreading work
         instead: broadcast to everything they know. This both merges
         "min islands" that are only weakly connected (a root that learns
         of a foreign node introduces itself, letting knowledge of a
         smaller root flow back) and performs the final dissemination once
         the global minimum knows everyone. *)
      let msg = Payload.Share snap in
      Knowledge.iter_known st.knowledge (fun dst -> if dst <> self then send ~dst msg)
    end
  in
  let receive ~src payload =
    match (payload : Payload.t) with
    | Exchange d ->
      ignore (Payload.merge_data st.knowledge d);
      Intvec.push st.pending_replies src
    | Share d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe -> Intvec.push st.pending_replies src
    | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "min_pointer";
    description =
      "deterministic KPV-style convergecast: knowledge flows to the minimum known label, roots \
       broadcast";
    make;
  }
