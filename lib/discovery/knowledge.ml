open Repro_util

type t = {
  owner : int;
  bits : Bitset.t;
  order : Intvec.t;  (* known ids in learn order; order.(0) = owner *)
  labels : int array;
  mutable best : int;  (* argmin of labels over the known set *)
  mutable best_raw : int;  (* min raw index over the known set *)
  fy_pos : Intvec.t;  (* sampling scratch: positions displaced this call *)
  fy_val : Intvec.t;  (* sampling scratch: their current values *)
}

let create ~n ~owner ~labels =
  if owner < 0 || owner >= n then invalid_arg "Knowledge.create: owner out of range";
  if Array.length labels <> n then invalid_arg "Knowledge.create: labels length mismatch";
  let bits = Bitset.create n in
  ignore (Bitset.add bits owner);
  (* The learn order grows to the full cardinality on completed runs, so
     doubling from a small capacity would pay every intermediate size in
     minor-heap allocations; starting at min n 512 words the vector is
     either exactly sized (small n) or born on the major heap. *)
  let order = Intvec.create ~capacity:(min n 512) () in
  Intvec.push order owner;
  {
    owner;
    bits;
    order;
    labels;
    best = owner;
    best_raw = owner;
    fy_pos = Intvec.create ~capacity:1 ();
    fy_val = Intvec.create ~capacity:1 ();
  }

let owner t = t.owner
let universe t = Bitset.capacity t.bits
let cardinal t = Bitset.cardinal t.bits
let knows t v = Bitset.mem t.bits v
let is_complete t = Bitset.is_full t.bits

let note t v =
  Intvec.push t.order v;
  if t.labels.(v) < t.labels.(t.best) then t.best <- v;
  if v < t.best_raw then t.best_raw <- v

let add t v =
  let fresh = Bitset.add t.bits v in
  if fresh then note t v;
  fresh

let merge_bits t src = Bitset.union_into_with ~dst:t.bits ~src (note t)

(* Identifier batches are semantically sets: the order a sender happened
   to serialise them in is a transport artefact (an in-memory delta
   arrives in the sender's learn order, the wire codecs deliver sorted
   ids, bitset unions walk ascending). Folding members in ascending id
   order makes the learn order — and everything derived from it:
   broadcast fan-out order, sampling, delta windows — a function of the
   delivery sequence alone, which is what lets the live backends certify
   trace-identity against the in-memory engines. Already-ascending
   batches (wire-decoded lists, singletons) merge without allocating. *)
let merge_seq t ~len ~get =
  let ascending = ref true in
  for i = 1 to len - 1 do
    if get (i - 1) > get i then ascending := false
  done;
  let learned = ref 0 in
  let absorb v =
    if Bitset.add t.bits v then begin
      note t v;
      incr learned
    end
  in
  if !ascending then
    for i = 0 to len - 1 do
      absorb (get i)
    done
  else begin
    let a = Array.init len get in
    Array.sort (fun (x : int) y -> compare x y) a;
    Array.iter absorb a
  end;
  !learned

let merge_ids t ids = merge_seq t ~len:(Array.length ids) ~get:(Array.get ids)
let merge_slice t s = merge_seq t ~len:(Intvec.slice_length s) ~get:(Intvec.slice_get s)

(* O(1): an immutable view of the live bitset. The live set privatises
   its storage on the next write (copy-on-write), so the snapshot is a
   stable value even though no words were copied here. *)
let snapshot t = Bitset.freeze t.bits
let contents t = t.bits

let mark t = Intvec.length t.order

let since t ~mark =
  if mark < 0 || mark > Intvec.length t.order then invalid_arg "Knowledge.since: invalid mark";
  Intvec.sub t.order ~pos:mark ~len:(Intvec.length t.order - mark)

let since_slice t ~mark =
  if mark < 0 || mark > Intvec.length t.order then
    invalid_arg "Knowledge.since_slice: invalid mark";
  Intvec.slice t.order ~pos:mark ~len:(Intvec.length t.order - mark)

let iter_known t f = Intvec.iter f t.order

let random_known t rng =
  let len = Intvec.length t.order in
  if len <= 1 then None
  else begin
    (* The owner sits somewhere in the order vector; draw until we miss
       it. With ≥ 2 elements each draw succeeds with probability ≥ 1/2. *)
    let rec draw () =
      let v = Intvec.get t.order (Rng.int rng len) in
      if v = t.owner then draw () else v
    in
    Some (draw ())
  end

(* Virtual partial Fisher–Yates over the non-owner ranks (the owner is
   always order.(0), so the eligible ranks are 1 .. len-1). The rank
   permutation is conceptually the identity at the start of every call,
   and a k-draw sample displaces at most k positions, so instead of
   materialising an [avail]-sized rank array — whose repeated growth
   would be a major-heap allocation per knowledge-growth event — we
   record just the displaced (position, value) pairs in two reused
   scratch vectors. A lookup scans the ≤ k entries backwards (latest
   write wins), keeping the call allocation-free beyond the result
   array while still issuing exactly [min k (cardinal-1)] RNG draws. *)
let rank_at t x =
  let n = Intvec.length t.fy_pos in
  let rec scan i = if i < 0 then x + 1 else if Intvec.get t.fy_pos i = x then Intvec.get t.fy_val i else scan (i - 1) in
  scan (n - 1)

let random_known_among t rng ~k =
  let len = Intvec.length t.order in
  let avail = len - 1 in
  let k = min k avail in
  if k <= 0 then [||]
  else if k = 1 then
    (* Scratch-free fast path; identical RNG stream and result to the
       general loop's first iteration (ranks are the identity here). *)
    [| Intvec.get t.order (Rng.int rng avail + 1) |]
  else begin
    Intvec.clear t.fy_pos;
    Intvec.clear t.fy_val;
    let out = Array.make k 0 in
    for i = 0 to k - 1 do
      let j = i + Rng.int rng (avail - i) in
      let vj = rank_at t j in
      let vi = rank_at t i in
      out.(i) <- Intvec.get t.order vj;
      (* Position [i] is never read again; only [j]'s displacement must
         be visible to later iterations. *)
      Intvec.push t.fy_pos j;
      Intvec.push t.fy_val vi
    done;
    out
  end

let min_known t = t.best
let min_known_raw t = t.best_raw

let min_known_excluding t ~suspects =
  if Bitset.capacity suspects <> Bitset.capacity t.bits then
    invalid_arg "Knowledge.min_known_excluding: capacity mismatch";
  if not (Bitset.mem suspects t.best) then t.best
  else begin
    (* A suspected owner competes like any other node: it is skipped
       while an unsuspected candidate exists and is only returned as the
       last-resort fallback when every known node (including the owner)
       is suspected. *)
    let best = ref (-1) in
    Intvec.iter
      (fun v ->
        if (not (Bitset.mem suspects v)) && (!best < 0 || t.labels.(v) < t.labels.(!best)) then
          best := v)
      t.order;
    if !best < 0 then t.owner else !best
  end
let elements_in_learn_order t = Intvec.to_array t.order
