open Repro_util

(* Two regimes over the same API (see the .mli):

   - tracked (small n): per-identifier learn order, exactly the historic
     behaviour — every merge enumerates its fresh identifiers into
     [order], so delta windows, broadcast fan-out order and sampling are
     all functions of the delivery sequence. This is the regime the
     golden traces and live-backend certification pin down.

   - compact (large n): bulk merges are container-level set unions with
     O(1) argmin maintenance from the payload's carried minima — no
     per-identifier work, which is what makes a full-knowledge run
     O(total containers merged) instead of Θ(n²) learn events. [order]
     then holds only *explicitly* learned identifiers (singletons and
     id-list batches): exactly the ones hm-style custody must forward
     upward, while snapshot contents stay in the sharer's custody. *)

type snap = {
  set : Cset.t;
  sbest : int;
  sbest_raw : int;
  mutable vbytes : int;  (* Wire's cached varint body size; -1 until computed *)
}

type t = {
  owner : int;
  bits : Cset.t;
  order : Intvec.t;  (* tracked: known ids in learn order; compact: explicit learns *)
  noted : Cset.t;  (* compact only: membership of [order] *)
  tracked : bool;
  labels : int array;
  mutable best : int;  (* argmin of labels over the known set *)
  mutable best_raw : int;  (* min raw index over the known set *)
  mutable version : int;  (* bumped on every change; keys the snapshot cache *)
  mutable snap_cache : snap option;
  mutable snap_version : int;
  mutable last_merged : snap option;
      (* physical identity of the last fully-absorbed snapshot: merging
         it again is a no-op (frozen snapshots are immutable and [bits]
         never shrinks), so the broadcast steady state — every round the
         head re-sends the same cached snapshot — skips the set union
         entirely *)
  fy_pos : Intvec.t;  (* sampling scratch: positions displaced this call *)
  fy_val : Intvec.t;  (* sampling scratch: their current values *)
  mutable versions : int array;
      (* per-node observed versions (version-vector style), allocated on
         first observation: one-shot runs never pay the O(n) words. An
         empty array means every version is 0. *)
}

(* Regime boundary, overridable for tests (and experiments comparing the
   two regimes at equal n). Below or at the threshold a node's order
   vector is at worst [tracked_max] words, so per-node memory stays
   bounded; above it the compact regime keeps knowledge O(containers)
   once saturated. *)
let tracked_max = ref 16384

let create ?tracked ~n ~owner ~labels () =
  if owner < 0 || owner >= n then invalid_arg "Knowledge.create: owner out of range";
  if Array.length labels <> n then invalid_arg "Knowledge.create: labels length mismatch";
  let tracked = match tracked with Some b -> b | None -> n <= !tracked_max in
  let bits = Cset.create n in
  ignore (Cset.add bits owner);
  (* Tracked learn orders grow to the full cardinality on completed
     runs: starting at min n 512 words the vector is either exactly
     sized (small n) or born on the major heap. Compact orders hold only
     explicit learns — a handful per node — so they start tiny. *)
  let order = Intvec.create ~capacity:(if tracked then min n 512 else 8) () in
  Intvec.push order owner;
  let noted = if tracked then Cset.create 0 else Cset.create n in
  if not tracked then ignore (Cset.add noted owner);
  {
    owner;
    bits;
    order;
    noted;
    tracked;
    labels;
    best = owner;
    best_raw = owner;
    version = 0;
    snap_cache = None;
    snap_version = -1;
    last_merged = None;
    fy_pos = Intvec.create ~capacity:1 ();
    fy_val = Intvec.create ~capacity:1 ();
    versions = [||];
  }

let owner t = t.owner
let universe t = Cset.capacity t.bits
let cardinal t = Cset.cardinal t.bits
let knows t v = Cset.mem t.bits v
let is_complete t = Cset.is_full t.bits
let is_tracked t = t.tracked
let version t = t.version

let bump_best t v =
  if t.labels.(v) < t.labels.(t.best) then t.best <- v;
  if v < t.best_raw then t.best_raw <- v

(* tracked: a fresh identifier enters the learn order *)
let note t v =
  Intvec.push t.order v;
  bump_best t v

(* compact: best maintenance without order growth (bulk merges) *)
let note_best t v = bump_best t v

(* compact: a fresh *explicitly* learned identifier *)
let note_explicit_fresh t v =
  Intvec.push t.order v;
  ignore (Cset.add t.noted v);
  bump_best t v

let add t v =
  let fresh = Cset.add t.bits v in
  if fresh then begin
    if t.tracked then note t v else note_explicit_fresh t v;
    t.version <- t.version + 1
  end
  else if (not t.tracked) && not (Cset.mem t.noted v) then begin
    (* Already known through a bulk snapshot, but now learned explicitly:
       enter the explicit stream so custody-style delta reports forward
       it upward. Tracked mode needs no equivalent — the id is already
       somewhere in the full learn order. *)
    Intvec.push t.order v;
    ignore (Cset.add t.noted v)
  end;
  fresh

let note_explicit t v =
  if (not t.tracked) && Cset.mem t.bits v && not (Cset.mem t.noted v) then begin
    Intvec.push t.order v;
    ignore (Cset.add t.noted v)
  end

let merge_bits t src =
  let added =
    if t.tracked then Cset.union_into_with ~dst:t.bits ~src (note t)
    else Cset.union_into_with ~dst:t.bits ~src (note_best t)
  in
  if added > 0 then t.version <- t.version + 1;
  added

let merge_snapshot t (s : snap) =
  match t.last_merged with
  | Some prev when prev == s -> 0
  | _ ->
    let added =
      if t.tracked then Cset.union_into_with ~dst:t.bits ~src:s.set (note t)
      else if s.sbest >= 0 then begin
        (* O(containers): the argmin over the union is the smaller of the
           two argmins, carried by the snapshot — no element enumeration *)
        let a = Cset.union_into ~dst:t.bits ~src:s.set in
        if a > 0 then begin
          if t.labels.(s.sbest) < t.labels.(t.best) then t.best <- s.sbest;
          let raw = if s.sbest_raw >= 0 then s.sbest_raw else Cset.min_elt s.set in
          if raw < t.best_raw then t.best_raw <- raw
        end;
        a
      end
      else
        (* snapshot of unknown minima (wire-decoded or adversarial):
           enumerate the fresh identifiers to maintain the argmin *)
        Cset.union_into_with ~dst:t.bits ~src:s.set (note_best t)
    in
    if added > 0 then t.version <- t.version + 1;
    t.last_merged <- Some s;
    added

(* Identifier batches are semantically sets: the order a sender happened
   to serialise them in is a transport artefact (an in-memory delta
   arrives in the sender's learn order, the wire codecs deliver sorted
   ids, set unions walk ascending). Folding members in ascending id
   order makes the learn order — and everything derived from it:
   broadcast fan-out order, sampling, delta windows — a function of the
   delivery sequence alone, which is what lets the live backends certify
   trace-identity against the in-memory engines. Already-ascending
   batches (wire-decoded lists, singletons) merge without allocating. *)
let merge_seq t ~len ~get =
  let ascending = ref true in
  for i = 1 to len - 1 do
    if get (i - 1) > get i then ascending := false
  done;
  let learned = ref 0 in
  let absorb v =
    if Cset.add t.bits v then begin
      if t.tracked then note t v else note_explicit_fresh t v;
      incr learned
    end
  in
  if !ascending then
    for i = 0 to len - 1 do
      absorb (get i)
    done
  else begin
    let a = Array.init len get in
    Array.sort (fun (x : int) y -> compare x y) a;
    Array.iter absorb a
  end;
  if !learned > 0 then t.version <- t.version + 1;
  !learned

let merge_ids t ids = merge_seq t ~len:(Array.length ids) ~get:(Array.get ids)
let merge_slice t s = merge_seq t ~len:(Intvec.slice_length s) ~get:(Intvec.slice_get s)

(* O(containers): an immutable view of the live set plus its carried
   minima. The live set privatises its storage on the next write
   (copy-on-write), so the snapshot is a stable value even though
   nothing was copied here. Cached per [version] so a node whose
   knowledge is stable (the broadcast steady state) re-sends the same
   snapshot value with no allocation at all. *)
let snapshot t =
  match t.snap_cache with
  | Some s when t.snap_version = t.version -> s
  | _ ->
    let s = { set = Cset.freeze t.bits; sbest = t.best; sbest_raw = t.best_raw; vbytes = -1 } in
    t.snap_cache <- Some s;
    t.snap_version <- t.version;
    s

let external_snapshot set = { set; sbest = -1; sbest_raw = -1; vbytes = -1 }

let contents t = t.bits

let mark t = Intvec.length t.order

let since t ~mark =
  if mark < 0 || mark > Intvec.length t.order then invalid_arg "Knowledge.since: invalid mark";
  Intvec.sub t.order ~pos:mark ~len:(Intvec.length t.order - mark)

let since_slice t ~mark =
  if mark < 0 || mark > Intvec.length t.order then
    invalid_arg "Knowledge.since_slice: invalid mark";
  Intvec.slice t.order ~pos:mark ~len:(Intvec.length t.order - mark)

let iter_known t f = if t.tracked then Intvec.iter f t.order else Cset.iter f t.bits

let random_known t rng =
  if t.tracked then begin
    let len = Intvec.length t.order in
    if len <= 1 then None
    else begin
      (* The owner sits somewhere in the order vector; draw until we miss
         it. With ≥ 2 elements each draw succeeds with probability ≥ 1/2. *)
      let rec draw () =
        let v = Intvec.get t.order (Rng.int rng len) in
        if v = t.owner then draw () else v
      in
      Some (draw ())
    end
  end
  else begin
    let card = Cset.cardinal t.bits in
    if card <= 1 then None
    else begin
      (* rank-space draw over the set minus the owner: one RNG draw *)
      let orank = Cset.rank t.bits t.owner in
      let r = Rng.int rng (card - 1) in
      Some (Cset.choose_nth t.bits (if r >= orank then r + 1 else r))
    end
  end

(* Virtual partial Fisher–Yates over the non-owner ranks. The rank
   permutation is conceptually the identity at the start of every call,
   and a k-draw sample displaces at most k positions, so instead of
   materialising an [avail]-sized rank array — whose repeated growth
   would be a major-heap allocation per knowledge-growth event — we
   record just the displaced (position, value) pairs in two reused
   scratch vectors. A lookup scans the ≤ k entries backwards (latest
   write wins), keeping the call allocation-free beyond the result
   array while still issuing exactly [min k (cardinal-1)] RNG draws.

   Tracked mode ranks over the learn order (owner at rank 0, eligible
   ranks 1..len-1); compact mode ranks over the set in ascending id
   order with the owner's rank spliced out. *)
let rank_at t x =
  let n = Intvec.length t.fy_pos in
  let rec scan i = if i < 0 then x + 1 else if Intvec.get t.fy_pos i = x then Intvec.get t.fy_val i else scan (i - 1) in
  scan (n - 1)

let rank_at0 t x =
  let n = Intvec.length t.fy_pos in
  let rec scan i = if i < 0 then x else if Intvec.get t.fy_pos i = x then Intvec.get t.fy_val i else scan (i - 1) in
  scan (n - 1)

let random_known_among t rng ~k =
  if t.tracked then begin
    let len = Intvec.length t.order in
    let avail = len - 1 in
    let k = min k avail in
    if k <= 0 then [||]
    else if k = 1 then
      (* Scratch-free fast path; identical RNG stream and result to the
         general loop's first iteration (ranks are the identity here). *)
      [| Intvec.get t.order (Rng.int rng avail + 1) |]
    else begin
      Intvec.clear t.fy_pos;
      Intvec.clear t.fy_val;
      let out = Array.make k 0 in
      for i = 0 to k - 1 do
        let j = i + Rng.int rng (avail - i) in
        let vj = rank_at t j in
        let vi = rank_at t i in
        out.(i) <- Intvec.get t.order vj;
        (* Position [i] is never read again; only [j]'s displacement must
           be visible to later iterations. *)
        Intvec.push t.fy_pos j;
        Intvec.push t.fy_val vi
      done;
      out
    end
  end
  else begin
    let avail = Cset.cardinal t.bits - 1 in
    let k = min k avail in
    if k <= 0 then [||]
    else begin
      let orank = Cset.rank t.bits t.owner in
      let select e = Cset.choose_nth t.bits (if e >= orank then e + 1 else e) in
      if k = 1 then [| select (Rng.int rng avail) |]
      else begin
        Intvec.clear t.fy_pos;
        Intvec.clear t.fy_val;
        let out = Array.make k 0 in
        for i = 0 to k - 1 do
          let j = i + Rng.int rng (avail - i) in
          let vj = rank_at0 t j in
          let vi = rank_at0 t i in
          out.(i) <- select vj;
          Intvec.push t.fy_pos j;
          Intvec.push t.fy_val vi
        done;
        out
      end
    end
  end

let min_known t = t.best
let min_known_raw t = t.best_raw

let min_known_excluding t ~suspects =
  if Cset.capacity suspects <> Cset.capacity t.bits then
    invalid_arg "Knowledge.min_known_excluding: capacity mismatch";
  if not (Cset.mem suspects t.best) then t.best
  else begin
    (* A suspected owner competes like any other node: it is skipped
       while an unsuspected candidate exists and is only returned as the
       last-resort fallback when every known node (including the owner)
       is suspected. *)
    let best = ref (-1) in
    let consider v =
      if (not (Cset.mem suspects v)) && (!best < 0 || t.labels.(v) < t.labels.(!best)) then
        best := v
    in
    if t.tracked then Intvec.iter consider t.order else Cset.iter consider t.bits;
    if !best < 0 then t.owner else !best
  end

let elements_in_learn_order t =
  if t.tracked then Intvec.to_array t.order else Cset.to_array t.bits

(* --- per-node versions (version-vector style) ------------------------ *)

let node_version t v =
  if v < 0 || v >= Cset.capacity t.bits then invalid_arg "Knowledge.node_version: out of range";
  if Array.length t.versions = 0 then 0 else t.versions.(v)

let observe_version t ~node ~version =
  if node < 0 || node >= Cset.capacity t.bits then
    invalid_arg "Knowledge.observe_version: out of range";
  if version < 0 then invalid_arg "Knowledge.observe_version: negative version";
  if version = 0 then false
  else begin
    if Array.length t.versions = 0 then t.versions <- Array.make (Cset.capacity t.bits) 0;
    if version > t.versions.(node) then begin
      t.versions.(node) <- version;
      true
    end
    else false
  end
