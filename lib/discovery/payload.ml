open Repro_util

type data = Bits of Knowledge.snap | Ids of int array | Delta of Intvec.slice

type t = Share of data | Exchange of data | Reply of data | Probe | Halt

let data_size = function
  | Bits b -> Cset.cardinal b.Knowledge.set
  | Ids a -> Array.length a
  | Delta s -> Intvec.slice_length s

let measure = function Share d | Exchange d | Reply d -> data_size d | Probe | Halt -> 1

let merge_data knowledge = function
  | Bits b -> Knowledge.merge_snapshot knowledge b
  | Ids a -> Knowledge.merge_ids knowledge a
  | Delta s -> Knowledge.merge_slice knowledge s

(* Preallocated empty delta: steady-state "I learned nothing since my
   last send" resends are the hot case and should not allocate. *)
let empty_delta = Delta (Intvec.slice (Intvec.create ()) ~pos:0 ~len:0)

let pp ppf = function
  | Share d -> Format.fprintf ppf "share(%d)" (data_size d)
  | Exchange d -> Format.fprintf ppf "exchange(%d)" (data_size d)
  | Reply d -> Format.fprintf ppf "reply(%d)" (data_size d)
  | Probe -> Format.fprintf ppf "probe"
  | Halt -> Format.fprintf ppf "halt"
