open Repro_util

type update = { node : int; version : int; status : int }

type data =
  | Bits of Knowledge.snap
  | Ids of int array
  | Delta of Intvec.slice
  | Updates of { full : bool; entries : update array }

type t =
  | Share of data
  | Exchange of data
  | Reply of data
  | Probe
  | Halt
  | Probe_req of { target : int; nonce : int }
  | Probe_ack of { target : int; nonce : int }
  | Suspicion of { target : int; version : int }

let status_alive = 0
let status_suspect = 1
let status_down = 2

let data_size = function
  | Bits b -> Cset.cardinal b.Knowledge.set
  | Ids a -> Array.length a
  | Delta s -> Intvec.slice_length s
  | Updates u -> Array.length u.entries

let measure = function
  | Share d | Exchange d | Reply d ->
    (* an update batch always costs at least the sender's own address,
       like a Probe: empty full-state requests are real messages *)
    (match d with Updates _ -> max 1 (data_size d) | Bits _ | Ids _ | Delta _ -> data_size d)
  | Probe | Halt -> 1
  (* indirect-probe and suspicion traffic names a second node: the
     implicit sender address plus the target pointer *)
  | Probe_req _ | Probe_ack _ | Suspicion _ -> 2

let merge_data knowledge = function
  | Bits b -> Knowledge.merge_snapshot knowledge b
  | Ids a -> Knowledge.merge_ids knowledge a
  | Delta s -> Knowledge.merge_slice knowledge s
  | Updates u ->
    (* an update teaches the receiver the node's id and its version; the
       status annotation is protocol state, applied by the service's
       membership view, not by the knowledge set *)
    Array.fold_left
      (fun acc e ->
        let fresh = Knowledge.add knowledge e.node in
        ignore (Knowledge.observe_version knowledge ~node:e.node ~version:e.version);
        if fresh then acc + 1 else acc)
      0 u.entries

(* Preallocated empty delta: steady-state "I learned nothing since my
   last send" resends are the hot case and should not allocate. *)
let empty_delta = Delta (Intvec.slice (Intvec.create ()) ~pos:0 ~len:0)

let pp ppf = function
  | Share d -> Format.fprintf ppf "share(%d)" (data_size d)
  | Exchange d -> Format.fprintf ppf "exchange(%d)" (data_size d)
  | Reply d -> Format.fprintf ppf "reply(%d)" (data_size d)
  | Probe -> Format.fprintf ppf "probe"
  | Halt -> Format.fprintf ppf "halt"
  | Probe_req p -> Format.fprintf ppf "probe-req(%d#%d)" p.target p.nonce
  | Probe_ack p -> Format.fprintf ppf "probe-ack(%d#%d)" p.target p.nonce
  | Suspicion s -> Format.fprintf ppf "suspicion(%d@%d)" s.target s.version
