(** End-to-end execution of a discovery algorithm on a topology.

    Wires an {!Algorithm.t} into the synchronous engine, watches for
    completion, and collects the cost measures the experiments report. A
    run is fully determined by [(algorithm, topology, seed, fault
    model)]. *)

open Repro_graph
open Repro_engine

(** When is an execution considered finished? (Alias of
    {!Exec.completion}, the definition shared with the asynchronous and
    live executors.) *)
type completion = Exec.completion =
  | Strong
      (** every alive node knows all [n] nodes — the paper's "complete
          resource discovery" *)
  | Survivors_strong
      (** every alive node knows at least every other alive node; the
          right predicate under crash faults, where dead nodes'
          identifiers may legitimately never spread *)
  | Leader
      (** weak discovery: some node knows everyone, and every alive node
          knows that node (the leader-election form of the problem) *)
  | Quiescent
      (** every alive node has locally decided it is finished
          ({!Algorithm.instance.is_quiescent}) — only meaningful for
          algorithms with termination detection; the run is judged by
          the nodes themselves rather than by the omniscient observer *)

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  rounds : int;
  messages : int;  (** total messages sent (connection complexity) *)
  pointers : int;  (** total identifiers transferred *)
  bytes : int;
      (** wire bytes under {!Wire.Adaptive} encoding (the realistic
          serialisation; per-encoding comparisons are experiment T8) *)
  delivered : int;
  dropped : int;
  max_round_messages : int;  (** peak per-round message budget *)
  mean_knowledge_series : float array;
      (** mean knowledge-set size after each round; non-empty only when
          [track_growth] was set *)
  metrics : Metrics.t;
  alive : bool array;
}

type spec = {
  seed : int;  (** master seed; labels, per-node RNGs and the engine derive from it *)
  fault : Fault.t;
  completion : completion;
  max_rounds : int option;
      (** round budget; [None] means [4·n + 64] (generous for every
          terminating algorithm in the suite; flooding on a path needs
          ≈ n) *)
  track_growth : bool;
      (** record the mean knowledge size per round, at O(n) cost per
          round *)
  encoding : Wire.encoding;
      (** wire codec used for byte accounting — does not change the
          execution, only the [bytes] measure *)
  trace : Trace.sink;
      (** structured event trace of the run (see {!Repro_engine.Trace}).
          Observational only: the default {!Repro_engine.Trace.null}
          sink costs nothing and every sink leaves the execution — RNG
          draws, delivery order, metrics — unchanged. *)
  jobs : int;
      (** domains sharding this single run's nodes (see
          {!Repro_engine.Sim.config}); any value produces a
          byte-identical trace and result. Clamped to 1 when the fault
          model requests content auditing (the audit wrapper emits trace
          events from the deliver handler). *)
}
(** Everything that parameterises a run besides the algorithm and the
    topology. One immutable value per run: this is what the parallel
    sweep executor passes to each {!Repro_util.Pool} work item. *)

val default_spec : spec
(** [{ seed = 0; fault = Fault.none; completion = Strong; max_rounds =
    None; track_growth = false; encoding = Wire.Adaptive; trace =
    Trace.null; jobs = 1 }] — override fields with
    [{ default_spec with seed; … }]. *)

val exec_spec : spec -> Algorithm.t -> Topology.t -> result
(** [exec_spec spec algo topo] simulates until completion or the round
    budget runs out. Under a fault model with late joins, completion is
    additionally gated on every scheduled join having happened (the
    predicates quantify over currently-active nodes). A run is a pure
    function of [(spec, algo, topo)] and touches no global state, so
    independent runs may execute on concurrent domains. *)
