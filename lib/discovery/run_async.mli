(** Asynchronous execution of a discovery algorithm.

    The same algorithms that run in lockstep under {!Run} execute here on
    drifting per-node timers with variable message latency (see
    {!Repro_engine.Async_sim}). The headline question this answers:
    do the synchronous round counts survive asynchrony, or do they hide a
    dependence on lockstep? (Experiment T10: they survive — completion
    time in time units tracks the synchronous round counts closely even
    under heavy latency spread.) *)

open Repro_graph
open Repro_engine

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  time : float;  (** simulated time to completion (node period ≈ 1) *)
  ticks : int;  (** total node activations *)
  messages : int;
  pointers : int;
  dropped : int;
  metrics : Metrics.t;  (** totals only — per-round series are not meaningful here *)
  alive : bool array;
}

type spec = {
  seed : int;
  fault : Fault.t;
  completion : Run.completion;
  horizon : float option;  (** time budget; [None] means [4·n + 64.] time units *)
  tick_jitter : float;  (** per-node clock drift, as a fraction of the period *)
  latency : float * float;  (** (min, max) uniform message latency *)
  encoding : Wire.encoding;
      (** wire codec used to {e size} each message ([Send] trace events and
          byte metrics carry the codec's encoded length, exactly as the
          live backends measure real frames); the payload itself is
          delivered in memory *)
  trace : Trace.sink;
      (** structured event trace (see {!Repro_engine.Trace}); {!Run.spec}
          semantics — observational only, free when {!Repro_engine.Trace.null} *)
}
(** {!Run.spec}'s asynchronous counterpart: the round budget becomes a
    time horizon, and the timing model (clock jitter, latency band) is
    part of the spec. *)

val default_spec : spec
(** Seed 0, no faults, strong completion, default horizon, jitter 0.1,
    latency ∈ [0.1, 0.9] (so a message takes about half a local round on
    average), adaptive byte sizing, no tracing. *)

val exec_spec : spec -> Algorithm.t -> Topology.t -> result
(** Determinism and the completion predicates are as in
    {!Run.exec_spec}; under late joins, completion is gated on the last
    join time. *)
