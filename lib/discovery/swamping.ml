type state = { knowledge : Knowledge.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge } in
  let self = ctx.node in
  let round ~round:_ ~send =
    (* One message per round, shared across the whole fan-out: the
       snapshot is an O(1) frozen view of the live bitset, and the
       learn order is walked in place — a broadcast round allocates
       nothing proportional to the fan-out. *)
    if Knowledge.cardinal st.knowledge > 1 then begin
      let msg = Payload.Share (Payload.Bits (Knowledge.snapshot st.knowledge)) in
      Knowledge.iter_known st.knowledge (fun dst -> if dst <> self then send ~dst msg)
    end
  in
  let receive ~src:_ payload =
    match (payload : Payload.t) with
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe | Halt -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "swamping";
    description = "HLL99 swamping: full knowledge to all current neighbors (graph squaring)";
    make;
  }
