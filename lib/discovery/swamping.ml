type state = { knowledge : Knowledge.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge } in
  let self = ctx.node in
  (* One message per knowledge state, shared across the whole fan-out
     and across rounds: the snapshot is an O(1) frozen view of the live
     set, and re-wrapping it is skipped while the knowledge version is
     stable — a steady-state broadcast round allocates nothing at all. *)
  let msg = ref (Payload.Share Payload.empty_delta) in
  let msg_version = ref (-1) in
  let round ~round:_ ~send =
    if Knowledge.cardinal st.knowledge > 1 then begin
      let v = Knowledge.version st.knowledge in
      if !msg_version <> v then begin
        msg := Payload.Share (Payload.Bits (Knowledge.snapshot st.knowledge));
        msg_version := v
      end;
      let msg = !msg in
      Knowledge.iter_known st.knowledge (fun dst -> if dst <> self then send ~dst msg)
    end
  in
  let receive ~src:_ payload =
    match (payload : Payload.t) with
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "swamping";
    description = "HLL99 swamping: full knowledge to all current neighbors (graph squaring)";
    make;
  }
