(** Message payloads shared by every discovery algorithm.

    A message either carries knowledge (as a bitset snapshot or an
    explicit identifier list) or is a content-free pull request. The
    [Exchange] / [Share] distinction encodes whether the receiver owes a
    reply — the only protocol-level metadata the algorithms need. *)

open Repro_util

type update = { node : int; version : int; status : int }
(** One membership observation: [node] was seen at [version] (its
    incarnation counter, see {!Knowledge.observe_version}) with
    [status] — {!status_alive}, {!status_suspect} or {!status_down}.
    Conflicts resolve by [(version, status)] lexicographically: a higher
    version always wins, and at equal versions the more pessimistic
    status does (down > suspect > alive), so an incarnation can only be
    refuted by the node itself bumping its version. *)

type data =
  | Bits of Knowledge.snap
      (** Full-knowledge snapshot with carried minima. Payload snapshots
          are immutable by convention and may be shared across fan-out
          (senders pass {!Knowledge.snapshot}, a copy-on-write freeze of
          their live set). *)
  | Ids of int array  (** Explicit identifier list (small sets). *)
  | Delta of Intvec.slice
      (** Zero-copy window into the sender's learn order — the
          allocation-free form of a "what I learned since my last send"
          delta (see {!Knowledge.since_slice}). Carries the same
          identifiers as the equivalent [Ids] array: identical
          {!measure}, merge result, and wire encoding. *)
  | Updates of { full : bool; entries : update array }
      (** Versioned membership delta — the anti-entropy currency of the
          continuous discovery service. [entries] must be canonical:
          sorted by node, one entry per node. [full] marks a full-state
          sync rather than an incremental delta: on an [Exchange] it is
          a bootstrap request (the receiver should answer with its whole
          view), on a [Reply]/[Share] it announces that the entries are
          the sender's complete view. *)

type t =
  | Share of data  (** One-way knowledge transfer. *)
  | Exchange of data  (** Knowledge transfer expecting a reply. *)
  | Reply of data
      (** The answer to an [Exchange] or [Probe]. Carries knowledge like
          [Share], but additionally acknowledges receipt of the
          triggering message — loss-tolerant protocols key their
          retransmission windows off it. *)
  | Probe  (** Pull request: "send me what you know". *)
  | Halt
      (** Termination announcement: the sender has locally decided that
          discovery is finished and will stop transmitting; receivers
          should quiesce too (see {!Hm_gossip} on detection). *)
  | Probe_req of { target : int; nonce : int }
      (** Indirect-probe request: "probe [target] on my behalf". The
          intermediary probes [target] and, on any sign of life, answers
          the requester with a [Probe_ack] echoing the same [nonce]
          (SWIM's ping-req). *)
  | Probe_ack of { target : int; nonce : int }
      (** Indirect-probe answer: the sender vouches that [target] was
          alive for the [Probe_req] correlated by [nonce]. *)
  | Suspicion of { target : int; version : int }
      (** Suspicion claim: the sender currently suspects [target] at
          incarnation [version]. Receivers that independently suspect
          the same (target, version) count it as a confirmation and
          shrink their suspicion timeout; the target itself refutes by
          bumping its incarnation. *)

val status_alive : int
val status_suspect : int
val status_down : int
(** The three wire statuses of an {!update}: 0, 1 and 2. [status_down]
    covers both graceful leaves and confirmed crashes — either way the
    node is retired from the membership view until a higher incarnation
    refutes it. *)

val data_size : data -> int
(** Number of identifiers carried. *)

val measure : t -> int
(** Pointer complexity of a message. Every message implicitly carries its
    sender's address, so [Probe] costs 1; data messages cost their
    identifier count (the sender is always an element of its own
    knowledge). An empty [Updates] batch costs 1 like a probe.
    [Probe_req]/[Probe_ack]/[Suspicion] name a second node and cost
    2. *)

val merge_data : Knowledge.t -> data -> int
(** Merge carried identifiers into a knowledge set; returns the number of
    identifiers learned. [Updates] entries additionally record their
    versions ({!Knowledge.observe_version}); their statuses are protocol
    state for the service's membership view and are not interpreted
    here. *)

val empty_delta : data
(** A preallocated empty [Delta] for steady-state "nothing new since my
    last send" resends, shared so the hot path allocates no payload
    body. *)

val pp : Format.formatter -> t -> unit
