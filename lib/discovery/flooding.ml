
type state = { knowledge : Knowledge.t; neighbors : int array; mutable sent_upto : int }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge; neighbors = ctx.neighbors; sent_upto = 0 } in
  let round ~round:_ ~send =
    (* Send only fresh knowledge; silence once there is nothing new.
       [sent_upto] starts at 0 so the first round floods the full initial
       knowledge (self + neighbors). The mark comparison makes the
       steady-state round allocation-free, and the delta itself is a
       zero-copy slice of the learn order, shared across all neighbors. *)
    let m = Knowledge.mark st.knowledge in
    if m > st.sent_upto then begin
      let msg =
        Payload.Share (Payload.Delta (Knowledge.since_slice st.knowledge ~mark:st.sent_upto))
      in
      st.sent_upto <- m;
      Array.iter (fun dst -> send ~dst msg) st.neighbors
    end
  in
  let receive ~src:_ payload =
    match (payload : Payload.t) with
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe | Halt | Probe_req _ | Probe_ack _ | Suspicion _ -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "flooding";
    description = "HLL99 flooding: forward new knowledge along initial edges";
    make;
  }
