(** Wire encoding of discovery messages.

    Pointer complexity (identifiers transferred) is the literature's
    abstract measure; what a deployment pays is bytes. This module
    provides real, invertible codecs for knowledge payloads so the
    harness can report wire bytes (experiment T8) and so the choice of
    identifier-set representation can be ablated:

    - {!Raw32}: 4 bytes per identifier — the naive wire format;
    - {!Varint_delta}: identifiers sorted, gap-encoded, LEB128 varints —
      compact for both sparse and dense sets (dense sets have small
      gaps);
    - {!Bitmap}: ⌈universe/8⌉ bytes regardless of cardinality — cheap
      for near-full snapshots, wasteful for small deltas;
    - {!Adaptive}: whichever of varint/bitmap is smaller for the payload
      at hand, at the cost of a one-byte discriminator.

    Every message additionally carries one kind byte ([Share] /
    [Exchange] / [Reply] / [Probe]) and, for identifier lists, a varint
    length prefix. *)

type encoding = Raw32 | Varint_delta | Bitmap | Adaptive

val encoding_name : encoding -> string
val all_encodings : encoding list

val encode : encoding -> universe:int -> Payload.t -> bytes
(** Serialise a message. [universe] is the id space size [n] (needed for
    bitmap width); identifiers must lie in [0, universe).
    @raise Invalid_argument on out-of-range identifiers. *)

val decode : encoding -> universe:int -> bytes -> (Payload.t, string) result
(** Inverse of {!encode} up to the set-of-identifiers semantics of the
    payload: identifier lists come back sorted and deduplicated, and a
    [Delta] slice comes back as [Ids]. The snapshot form is preserved
    exactly — a payload sent as [Bits] decodes as [Bits] and one sent as
    [Ids]/[Delta] never does, whichever body codec won the size contest.
    Algorithms read meaning into that distinction (a full-knowledge
    snapshot vs a small explicit list), so it must survive the wire for
    the live backends to be trace-identical to the in-memory ones.
    Total on arbitrary input: every malformed buffer —
    truncated, corrupted, hostile length fields — is reported as
    [Error], never an exception, and claimed element counts are
    validated against the bytes actually present before any allocation
    is sized from them (a 5-byte buffer cannot demand a billion-element
    array). The network transport layer decodes socket input through
    this function. *)

val encoded_size : encoding -> universe:int -> Payload.t -> int
(** [encoded_size e ~universe p] = [Bytes.length (encode e ~universe p)],
    computed without materialising the buffer. *)

val ids_of_payload : Payload.t -> int list
(** The sorted identifier set a payload carries (empty for [Probe]) —
    the equality used by the codec round-trip laws. *)
