(** Central catalogue of the implemented discovery algorithms. *)

val all : Algorithm.t list
(** The seven primary algorithms, baseline-to-contribution order:
    flooding, swamping, pointer_jump, name_dropper, min_pointer,
    rand_gossip, hm. *)

val baselines : Algorithm.t list
(** [all] without [hm]. *)

val find : string -> (Algorithm.t, string) result
(** Look up by [name]. Module-style aliases resolve to their catalogue
    names (["hm_gossip"] and ["haeupler_malkhi"] → ["hm"]). Also
    resolves ablation specs:
    - ["rand:push/f2/delta"], ["rand:pull/f1/nbr"] … — flat-gossip
      variants via {!Rand_gossip.with_params};
    - ["hm:cap:4"], ["hm:nobroadcast"], ["hm:full"], ["hm:cap:4/full"] —
      {!Hm_gossip.with_variant} ablations.

    Unknown names get near-miss suggestions in the error message
    (["floding"] → did you mean ["flooding"]?) plus the full
    {!parse_doc} grammar. *)

val names : unit -> string list

val parse_doc : unit -> string
(** One-line human description of everything {!find} accepts — the
    algorithm names and the ablation-spec grammar. The CLIs embed this
    in their [--algo] help and error text instead of hand-maintaining
    copies. *)
