(* Experiment T4 (topology sensitivity) and figure F3 (the log D term on
   path graphs). *)

open Repro_util
open Repro_graph
open Repro_discovery

let t4_n ~quick = if quick then 256 else 1024
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

let algorithms =
  [
    Flooding.algorithm;
    Swamping.algorithm;
    Pointer_jump.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let t4 report ~quick ~jobs =
  let n = t4_n ~quick in
  Report.section report ~id:"T4"
    ~title:(Printf.sprintf "Rounds by initial topology (n = %d; DNF = over %d rounds)" n ((3 * n) + 64));
  let names = List.map (fun a -> a.Algorithm.name) algorithms in
  let table =
    Table.create
      ~columns:
        (("topology", Table.Left) :: ("diam", Table.Right)
        :: List.map (fun a -> (a, Table.Right)) names)
  in
  let csv_rows = ref [] in
  let all_cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun family ->
           List.map
             (fun algo ->
               Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick)
                 ~max_rounds:((3 * n) + 64) ())
             algorithms)
         Generate.all_families)
  in
  List.iter2
    (fun family cells ->
      let topo = Sweepcell.topology_of ~family ~n ~seed:1 in
      let diam =
        Analyze.weak_diameter_estimate ~rng:(Rng.substream ~seed:1 ~index:99) topo
      in
      List.iter
        (fun (c : Sweepcell.t) ->
          csv_rows :=
            [
              Generate.family_name family;
              c.Sweepcell.algo;
              string_of_int n;
              (match c.Sweepcell.rounds with
              | None -> "DNF"
              | Some s -> Printf.sprintf "%.1f" s.Stats.mean);
            ]
            :: !csv_rows)
        cells;
      Table.add_row table
        (Generate.family_name family :: string_of_int diam
        :: List.map Sweepcell.rounds_cell cells))
    Generate.all_families
    (Sweepcell.chunks (List.length algorithms) all_cells);
  Report.emit report (Table.render table);
  Report.emit report
    "Notes: flooding cannot finish on weakly-but-not-strongly connected inputs (dpath, instar);\n\
     pull-only pointer_jump cannot spread identifiers of nodes nobody knows (dpath, instar) —\n\
     both DNFs reproduce the qualitative claims of HLL99.\n";
  Report.csv report ~name:"t4_topology"
    ~header:[ "topology"; "algorithm"; "n"; "rounds" ]
    ~rows:(List.rev !csv_rows)

let f3_sizes ~quick = if quick then [ 128; 256; 512 ] else [ 128; 256; 512; 1024; 2048; 4096; 8192 ]

let f3 report ~quick ~jobs =
  Report.section report ~id:"F3"
    ~title:"Rounds vs n on path graphs (diameter n-1): the O(log D) mixing term";
  let algos =
    [ Name_dropper.algorithm; Min_pointer.algorithm; Rand_gossip.algorithm; Hm_gossip.algorithm ]
  in
  let cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun algo ->
           List.map
             (fun n ->
               Sweepcell.request ~algo ~family:Generate.Path ~n ~seeds:(seeds ~quick)
                 ~max_rounds:1000 ())
             (f3_sizes ~quick))
         algos)
  in
  let series =
    List.map
      (fun (a : Algorithm.t) ->
        {
          Plot.label = a.Algorithm.name;
          points =
            List.filter_map
              (fun (c : Sweepcell.t) ->
                if c.Sweepcell.algo = a.Algorithm.name then
                  Option.map
                    (fun (s : Stats.summary) -> (float_of_int c.Sweepcell.n, s.Stats.mean))
                    c.Sweepcell.rounds
                else None)
              cells;
        })
      algos
  in
  Report.emit report
    (Plot.render ~logx:true ~title:"rounds on a path (worst-case diameter)" ~xlabel:"n"
       ~ylabel:"rounds" series);
  Report.emit report
    "Every algorithm pays the Ω(log D) knowledge-composition lower bound on a path; hm tracks\n\
     c·log2 n with a small constant, while flat gossip and Name-Dropper pay extra factors.\n";
  Report.csv report ~name:"f3_path_rounds"
    ~header:[ "algorithm"; "n"; "rounds" ]
    ~rows:
      (List.filter_map
         (fun (c : Sweepcell.t) ->
           Option.map
             (fun (s : Stats.summary) ->
               [ c.Sweepcell.algo; string_of_int c.Sweepcell.n; Printf.sprintf "%.1f" s.Stats.mean ])
             c.Sweepcell.rounds)
         cells)
