(** One aggregated measurement: an (algorithm, topology, size, fault)
    configuration replicated across seeds. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type t = {
  algo : string;
  family : Generate.family;
  n : int;
  attempts : int;
  completions : int;
  rounds : Stats.summary option;  (** over completed runs; [None] if all DNF *)
  messages : Stats.summary option;
  pointers : Stats.summary option;
  bytes : Stats.summary option;  (** wire bytes, {!Repro_discovery.Wire.Adaptive} codec *)
  peak_round_messages : Stats.summary option;
  dropped : Stats.summary option;
      (** messages the fault model destroyed in flight (loss, corruption
          past detection, or a bandwidth-cap throttle) *)
}

val topology_of : family:Generate.family -> n:int -> seed:int -> Topology.t
(** The topology a given seed produces — shared with the CLI so that
    [discovery_cli run] reproduces any experiment cell exactly. *)

val crash_fault : seed:int -> n:int -> count:int -> Fault.t
(** [count] uniform victims crashing at uniform rounds in [1..5]. *)

type request
(** One cell to measure: an (algorithm, family, n, fault) configuration
    with its seed list. Built with {!request}, executed with
    {!run_batch}. *)

val request :
  algo:Algorithm.t ->
  family:Generate.family ->
  n:int ->
  seeds:int list ->
  ?max_rounds:int ->
  ?fault:(int -> Fault.t) ->
  ?completion:Run.completion ->
  unit ->
  request
(** [fault] maps a seed to its fault model (so crash victims vary
    across seeds). *)

val run_batch : ?jobs:int -> request list -> t list
(** Execute every (request, seed) pair — the full cross product — as
    one flat work batch on a {!Repro_util.Pool} of [jobs] workers
    (default {!Repro_util.Pool.default_jobs}), then aggregate per
    request. Results are merged in (request, seed) order, so the
    output is byte-identical to a sequential sweep regardless of
    [jobs].

    When the [REPRO_TRACE_INVARIANTS] environment variable is set (to
    anything but [""] or ["0"]), every run executes under the
    {!Repro_engine.Trace.Invariants} online checker and raises
    [Violation] on the first offending event — [make check] runs the
    quick suite this way. Off by default (tracing stays on the
    allocation-free null sink). *)

val run :
  ?jobs:int ->
  algo:Algorithm.t ->
  family:Generate.family ->
  n:int ->
  seeds:int list ->
  ?max_rounds:int ->
  ?fault:(int -> Fault.t) ->
  ?completion:Run.completion ->
  unit ->
  t
(** [run_batch] for a single request: one run per seed (replicates
    sharded across [jobs] workers), aggregated. *)

val chunks : int -> 'a list -> 'a list list
(** [chunks k xs] splits [xs] into consecutive groups of [k] — the
    inverse of flattening a per-request grid into a batch.
    @raise Invalid_argument if [List.length xs] is not a multiple of [k]. *)

(** {2 Table-cell formatting} *)

val rounds_cell : t -> string
(** ["12.4 ± 0.8"], or ["DNF"] when nothing completed, or
    ["9.0 ± 1.0 (1/5 DNF)"] on partial completion. *)

val messages_cell : t -> string
val pointers_cell : t -> string
val bytes_cell : t -> string

val approx_int : float -> string
(** Human-scaled count: ["2.1k"], ["37M"], … *)
