type entry = { id : string; title : string; run : Report.t -> quick:bool -> jobs:int -> unit }

let all =
  [
    {
      id = "T1";
      title = "rounds vs n, all algorithms";
      run = (fun r ~quick ~jobs -> Exp_scaling.t1 r ~quick ~jobs);
    };
    {
      id = "T2";
      title = "message complexity vs n";
      run = (fun r ~quick ~jobs -> Exp_scaling.t2 r ~quick ~jobs);
    };
    {
      id = "T3";
      title = "pointer complexity vs n";
      run = (fun r ~quick ~jobs -> Exp_scaling.t3 r ~quick ~jobs);
    };
    { id = "F1"; title = "rounds-vs-n curves"; run = (fun r ~quick ~jobs -> Exp_scaling.f1 r ~quick ~jobs) };
    { id = "T4"; title = "topology sensitivity"; run = (fun r ~quick ~jobs -> Exp_topology.t4 r ~quick ~jobs) };
    {
      id = "F3";
      title = "rounds vs diameter (paths)";
      run = (fun r ~quick ~jobs -> Exp_topology.f3 r ~quick ~jobs);
    };
    { id = "T5"; title = "message-loss robustness"; run = (fun r ~quick ~jobs -> Exp_faults.t5 r ~quick ~jobs) };
    { id = "T6"; title = "crash-stop failures"; run = (fun r ~quick ~jobs -> Exp_faults.t6 r ~quick ~jobs) };
    { id = "T7"; title = "design ablations"; run = (fun r ~quick ~jobs -> Exp_ablation.t7 r ~quick ~jobs) };
    { id = "T8"; title = "wire-byte complexity"; run = (fun r ~quick ~jobs -> Exp_wire.t8 r ~quick ~jobs) };
    { id = "T9"; title = "discovery under churn"; run = (fun r ~quick ~jobs -> Exp_churn.t9 r ~quick ~jobs) };
    {
      id = "T10";
      title = "asynchronous execution";
      run = (fun r ~quick ~jobs -> Exp_async.t10 r ~quick ~jobs);
    };
    {
      id = "T11";
      title = "local termination detection";
      run = (fun r ~quick ~jobs -> Exp_termination.t11 r ~quick ~jobs);
    };
    {
      id = "T12";
      title = "adversarial scenario matrix";
      run = (fun r ~quick ~jobs -> Exp_adversarial.t12 r ~quick ~jobs);
    };
    {
      id = "T13";
      title = "continuous service steady state";
      run = (fun r ~quick ~jobs -> Exp_churn.t13 r ~quick ~jobs);
    };
    {
      id = "T14";
      title = "failure-detector precision under loss";
      run = (fun r ~quick ~jobs -> Exp_churn.t14 r ~quick ~jobs);
    };
    {
      id = "F2";
      title = "knowledge-growth dynamics";
      run = (fun r ~quick ~jobs -> Exp_dynamics.f2 r ~quick ~jobs);
    };
    {
      id = "F4";
      title = "per-round message budget";
      run = (fun r ~quick ~jobs -> Exp_dynamics.f4 r ~quick ~jobs);
    };
    {
      id = "F5";
      title = "cluster-head population dynamics";
      run = (fun r ~quick ~jobs -> Exp_dynamics.f5 r ~quick ~jobs);
    };
  ]

let ids () = List.map (fun e -> e.id) all

(* [jobs] shards the seed replicates and sweep cells of every entry
   across domains (see Sweepcell.run_batch / Repro_util.Pool). Results
   are merged in deterministic (cell, seed) order, so report.md and the
   CSVs are byte-identical at any [jobs]. *)
let run ?only ?(quick = false) ?(jobs = Repro_util.Pool.default_jobs ()) ~results_dir () =
  let selected =
    match only with
    | None -> Ok all
    | Some wanted ->
      let unknown = List.filter (fun id -> not (List.exists (fun e -> e.id = id) all)) wanted in
      if unknown <> [] then
        Error
          (Printf.sprintf "unknown experiment id(s): %s (known: %s)" (String.concat ", " unknown)
             (String.concat ", " (ids ())))
      else Ok (List.filter (fun e -> List.mem e.id wanted) all)
  in
  match selected with
  | Error _ as e -> e
  | Ok entries ->
    let report = Report.create ~results_dir in
    Report.emit report
      (Printf.sprintf
         "# Experiment report — Distributed Resource Discovery in Sub-Logarithmic Time\n\
          (mode: %s; every cell is reproducible with `discovery run --algo A --topology T -n N \
          --seed S`)\n"
         (if quick then "quick" else "full"));
    List.iter (fun e -> e.run report ~quick ~jobs) entries;
    let path = Filename.concat results_dir "report.md" in
    Repro_util.Csvio.ensure_dir results_dir;
    let oc = open_out path in
    output_string oc (Report.captured report);
    close_out oc;
    Report.emit report (Printf.sprintf "\nreport written to %s\n" path);
    Ok ()
