(* Experiment T7: ablations of the design choices called out in
   DESIGN.md §5, for both the hm algorithm and flat random gossip. *)

open Repro_util
open Repro_graph
open Repro_discovery

let n ~quick = if quick then 512 else 4096
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]
let family = Generate.K_out 3

let variants () =
  let hm ?broadcast ?upward note = (Hm_gossip.with_variant ?broadcast ?upward (), note) in
  let rand spec note =
    match Registry.find ("rand:" ^ spec) with
    | Ok a -> (a, note)
    | Error e -> invalid_arg ("exp_ablation: " ^ e)
  in
  [
    (Hm_gossip.algorithm, "the full algorithm");
    hm ~upward:Hm_gossip.Full "reports carry full snapshots (pointer-cost ablation)";
    hm ~broadcast:(Hm_gossip.Cap 1) "head fan-out capped at 1 (no growing exchange)";
    hm ~broadcast:(Hm_gossip.Cap 4) "head fan-out capped at 4";
    hm ~broadcast:(Hm_gossip.Cap 16) "head fan-out capped at 16";
    hm ~broadcast:Hm_gossip.Off "heads stay silent (island stalemate)";
    (Min_pointer.algorithm, "no random ranks (deterministic ids)");
    rand "push_pull/f1" "flat gossip, push-pull, fanout 1";
    rand "push/f1" "flat gossip, push only";
    rand "pull/f1" "flat gossip, pull only";
    rand "push_pull/f4" "flat gossip, fanout 4";
    rand "push/f1/delta" "flat push gossip with unacked deltas (unsound under churn)";
    rand "push_pull/f1/nbr" "partners restricted to initial neighbors (no direct addressing)";
  ]

let t7 report ~quick ~jobs =
  let n = n ~quick in
  Report.section report ~id:"T7"
    ~title:(Printf.sprintf "Design ablations (k-out, n = %d; DNF = over 300 rounds)" n);
  let table =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("rounds", Table.Right);
          ("messages", Table.Right);
          ("pointers", Table.Right);
          ("what it isolates", Table.Left);
        ]
  in
  let csv_rows = ref [] in
  let variants = variants () in
  let cells =
    Sweepcell.run_batch ~jobs
      (List.map
         (fun ((algo : Algorithm.t), _) ->
           Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:300 ())
         variants)
  in
  List.iter2
    (fun ((algo : Algorithm.t), note) c ->
      Table.add_row table
        [
          algo.Algorithm.name;
          Sweepcell.rounds_cell c;
          Sweepcell.messages_cell c;
          Sweepcell.pointers_cell c;
          note;
        ];
      csv_rows :=
        [
          algo.Algorithm.name;
          Sweepcell.rounds_cell c;
          Sweepcell.messages_cell c;
          Sweepcell.pointers_cell c;
        ]
        :: !csv_rows)
    variants cells;
  Report.emit report (Table.render table);
  Report.csv report ~name:"t7_ablations"
    ~header:[ "variant"; "rounds"; "messages"; "pointers" ]
    ~rows:(List.rev !csv_rows)
