(* Figures F2 (knowledge-growth dynamics) and F4 (per-round message
   budget): the mechanics behind the headline numbers. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let family = Generate.K_out 3

let f2 report ~quick ~jobs =
  let n = if quick then 1024 else 8192 in
  Report.section report ~id:"F2"
    ~title:
      (Printf.sprintf
         "Mean knowledge-set size per round (k-out, n = %d): doubly-exponential growth" n);
  let algos = [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ] in
  let spec = { Run.default_spec with Run.seed = 1; track_growth = true; max_rounds = Some 500 } in
  let runs =
    Pool.map ~jobs
      (fun (algo : Algorithm.t) ->
        let topology = Sweepcell.topology_of ~family ~n ~seed:1 in
        (algo.Algorithm.name, Run.exec_spec spec algo topology))
      algos
  in
  let series =
    List.map
      (fun (name, r) ->
        {
          Plot.label = name;
          points =
            Array.to_list
              (Array.mapi (fun i v -> (float_of_int (i + 1), v)) r.Run.mean_knowledge_series);
        })
      runs
  in
  Report.emit report
    (Plot.render ~logy:true ~title:"mean knowledge size by round" ~xlabel:"round"
       ~ylabel:"|K|" series);
  Report.emit report
    "On a log scale, hm's slope steepens round over round (set sizes square via the growing\n\
     head exchanges) while Name-Dropper's stays straight (geometric doubling at best).\n";
  Report.csv report ~name:"f2_growth"
    ~header:[ "algorithm"; "round"; "mean_knowledge" ]
    ~rows:
      (List.concat_map
         (fun (name, r) ->
           Array.to_list
             (Array.mapi
                (fun i v -> [ name; string_of_int (i + 1); Printf.sprintf "%.1f" v ])
                r.Run.mean_knowledge_series))
         runs)

let f4 report ~quick ~jobs =
  let n = if quick then 256 else 1024 in
  Report.section report ~id:"F4"
    ~title:
      (Printf.sprintf
         "Messages sent per round (k-out, n = %d): hm stays near the optimal n budget" n);
  let algos =
    [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm; Swamping.algorithm ]
  in
  let spec = { Run.default_spec with Run.seed = 1; max_rounds = Some 500 } in
  let runs =
    Pool.map ~jobs
      (fun (algo : Algorithm.t) ->
        let topology = Sweepcell.topology_of ~family ~n ~seed:1 in
        (algo.Algorithm.name, Run.exec_spec spec algo topology))
      algos
  in
  let series =
    List.map
      (fun (name, r) ->
        {
          Plot.label = name;
          points =
            Array.to_list
              (Array.mapi
                 (fun i v -> (float_of_int (i + 1), float_of_int v))
                 (Metrics.sent_series r.Run.metrics));
        })
      runs
  in
  Report.emit report
    (Plot.render ~logy:true ~title:"messages per round" ~xlabel:"round" ~ylabel:"msgs" series);
  Report.emit report
    (Printf.sprintf
       "Reference: the optimal per-round budget is n = %d messages. Swamping peaks near n^2 =\n\
        %s; hm's peak stays within a small constant of n.\n"
       n
       (Sweepcell.approx_int (float_of_int (n * n))));
  Report.csv report ~name:"f4_msgs_per_round"
    ~header:[ "algorithm"; "round"; "messages" ]
    ~rows:
      (List.concat_map
         (fun (name, r) ->
           Array.to_list
             (Array.mapi
                (fun i v -> [ name; string_of_int (i + 1); string_of_int v ])
                (Metrics.sent_series r.Run.metrics)))
         runs)

(* Figure F5: the mechanism itself — the head population per round. A
   node acts as a head while it is the minimum rank of its own
   knowledge; the paper's sub-logarithmic behaviour is the collapse of
   this population under the growing exchanges. *)
(* F5 instruments a single run's internal state (head counts per round),
   so there is nothing to shard — [jobs] is unused by design. *)
let f5 report ~quick ~jobs:_ =
  let n = if quick then 1024 else 8192 in
  Report.section report ~id:"F5"
    ~title:
      (Printf.sprintf
         "Cluster-head population per round (hm, k-out, n = %d): the collapsing-heads mechanism"
         n);
  let seed = 1 in
  let topology = Sweepcell.topology_of ~family ~n ~seed in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        Hm_gossip.algorithm.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ p -> instances.(node).Algorithm.receive ~src p);
    }
  in
  let head_counts = ref [] in
  let stop ~round:_ ~alive:_ =
    let heads = ref 0 in
    Array.iter
      (fun i ->
        let k = i.Algorithm.knowledge in
        if Knowledge.min_known k = Knowledge.owner k then incr heads)
      instances;
    head_counts := !heads :: !head_counts;
    Array.for_all (fun i -> Knowledge.is_complete i.Algorithm.knowledge) instances
  in
  let _ =
    Sim.run ~n
      ~config:{ Sim.default_config with Sim.max_rounds = 500; engine_seed = seed }
      ~handlers ~measure:Payload.measure ~stop ()
  in
  let series = List.rev !head_counts in
  let points = List.mapi (fun i h -> (float_of_int (i + 1), float_of_int (max h 1))) series in
  Report.emit report
    (Plot.render ~logy:true ~title:"cluster heads by round" ~xlabel:"round" ~ylabel:"heads"
       [ { Plot.label = "hm heads"; points } ]);
  Report.emit report
    (Printf.sprintf
       "Head counts: %s. Initially ~n/(k+2) local rank minima act as heads; each exchange round\n\
        collapses the population super-geometrically until only the global minimum remains —\n\
        the population is the visible form of the doubly-exponential argument.\n"
       (String.concat " → " (List.map string_of_int series)));
  Report.csv report ~name:"f5_head_population" ~header:[ "round"; "heads" ]
    ~rows:(List.mapi (fun i h -> [ string_of_int (i + 1); string_of_int h ]) series)
