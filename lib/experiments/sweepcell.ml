open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type t = {
  algo : string;
  family : Generate.family;
  n : int;
  attempts : int;
  completions : int;
  rounds : Stats.summary option;
  messages : Stats.summary option;
  pointers : Stats.summary option;
  bytes : Stats.summary option;
  peak_round_messages : Stats.summary option;
  dropped : Stats.summary option;
}

(* Must stay in sync with discovery_cli so `discovery run --seed s`
   reproduces an experiment cell bit-for-bit. *)
let topology_of ~family ~n ~seed =
  let rng = Rng.substream ~seed ~index:0x70b0 in
  Generate.build family ~rng ~n

let crash_fault ~seed ~n ~count =
  if count <= 0 then Fault.none
  else begin
    let rng = Rng.substream ~seed ~index:0xdead in
    let victims = Rng.sample_distinct rng ~n ~k:(min count n) ~avoid:(-1) in
    Array.fold_left
      (fun f node -> Fault.with_crash f ~node ~round:(1 + Rng.int rng 5))
      Fault.none victims
  end

(* One cell of a sweep before execution: the algorithm, the topology
   family, and the per-seed run spec. [fault] maps each seed to its
   fault model so seed replicates stay independent work items. *)
type request = {
  req_algo : Algorithm.t;
  req_family : Generate.family;
  req_n : int;
  req_seeds : int list;
  req_max_rounds : int option;
  req_fault : int -> Fault.t;
  req_completion : Run.completion;
}

let request ~algo ~family ~n ~seeds ?max_rounds ?(fault = fun _ -> Fault.none)
    ?(completion = Run.Strong) () =
  {
    req_algo = algo;
    req_family = family;
    req_n = n;
    req_seeds = seeds;
    req_max_rounds = max_rounds;
    req_fault = fault;
    req_completion = completion;
  }

(* With REPRO_TRACE_INVARIANTS set (the `make check` suite sets it),
   every sweep run executes under the online trace invariant checker —
   free certification of conservation, liveness discipline and metrics
   agreement across whole experiment grids. Off by default: the null
   sink keeps production sweeps allocation-free. *)
let check_invariants =
  lazy (match Sys.getenv_opt "REPRO_TRACE_INVARIANTS" with None | Some "" | Some "0" -> false | Some _ -> true)

(* The immutable work item the pool hands to a domain: topology
   generation and the run itself both happen on the worker, driven only
   by the spec. *)
let exec_cell req seed =
  let spec =
    {
      Run.default_spec with
      Run.seed;
      fault = req.req_fault seed;
      completion = req.req_completion;
      max_rounds = req.req_max_rounds;
    }
  in
  let topology = topology_of ~family:req.req_family ~n:req.req_n ~seed in
  if Lazy.force check_invariants then begin
    (* delayed links legitimately carry messages across round boundaries *)
    let inv = Trace.Invariants.create ~allow_inflight:(Fault.has_delays spec.Run.fault) () in
    let r =
      Run.exec_spec { spec with Run.trace = Trace.Invariants.sink inv } req.req_algo topology
    in
    Trace.Invariants.final_check inv r.Run.metrics;
    r
  end
  else Run.exec_spec spec req.req_algo topology

let summarize req results =
  let completed = List.filter (fun r -> r.Run.completed) results in
  let summarize f = match completed with [] -> None | _ -> Some (Stats.summarize_ints (List.map f completed)) in
  {
    algo = req.req_algo.Algorithm.name;
    family = req.req_family;
    n = req.req_n;
    attempts = List.length results;
    completions = List.length completed;
    rounds = summarize (fun r -> r.Run.rounds);
    messages = summarize (fun r -> r.Run.messages);
    pointers = summarize (fun r -> r.Run.pointers);
    bytes = summarize (fun r -> r.Run.bytes);
    peak_round_messages = summarize (fun r -> r.Run.max_round_messages);
    dropped = summarize (fun r -> r.Run.dropped);
  }

(* Shard every (cell, seed) replicate of [requests] across [jobs]
   domains in one flat pool invocation (never nested), then fold the
   results back per cell in request order — aggregation only ever sees
   the deterministic (cell, seed) order, so reports are byte-identical
   at any [jobs]. *)
let run_batch ?(jobs = Pool.default_jobs ()) requests =
  let items =
    List.concat_map (fun req -> List.map (fun seed -> (req, seed)) req.req_seeds) requests
  in
  let tasks = Array.of_list (List.map (fun (req, seed) () -> exec_cell req seed) items) in
  let results = Pool.run ~jobs tasks in
  let cells, last =
    List.fold_left
      (fun (acc, offset) req ->
        let k = List.length req.req_seeds in
        let rs = Array.to_list (Array.sub results offset k) in
        (summarize req rs :: acc, offset + k))
      ([], 0) requests
  in
  assert (last = Array.length results);
  List.rev cells

(* Split a flat run_batch result back into consecutive chunks of [k],
   matching a nested (outer loop × k requests) build order. *)
let chunks k cells =
  let rec take i l =
    if i = 0 then ([], l)
    else
      match l with
      | [] -> invalid_arg "Sweepcell.chunks: ragged input"
      | x :: tl ->
        let a, b = take (i - 1) tl in
        (x :: a, b)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
      let chunk, rest = take k rest in
      go (chunk :: acc) rest
  in
  go [] cells

let run ?jobs ~algo ~family ~n ~seeds ?max_rounds ?fault ?completion () =
  match run_batch ?jobs [ request ~algo ~family ~n ~seeds ?max_rounds ?fault ?completion () ] with
  | [ cell ] -> cell
  | _ -> assert false

let approx_int x =
  let abs = Float.abs x in
  if abs >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.1fM" (x /. 1e6)
  else if abs >= 1e4 then Printf.sprintf "%.0fk" (x /. 1e3)
  else if abs >= 1e3 then Printf.sprintf "%.1fk" (x /. 1e3)
  else Printf.sprintf "%.0f" x

let with_dnf t s =
  if t.completions = t.attempts then s
  else Printf.sprintf "%s (%d/%d DNF)" s (t.attempts - t.completions) t.attempts

let rounds_cell t =
  match t.rounds with
  | None -> "DNF"
  | Some s ->
    with_dnf t
      (if s.Stats.stddev < 0.05 then Printf.sprintf "%.1f" s.Stats.mean else Table.cell_mean_std s)

let count_cell field t =
  match field t with None -> "DNF" | Some s -> with_dnf t (approx_int s.Stats.mean)

let messages_cell = count_cell (fun t -> t.messages)
let pointers_cell = count_cell (fun t -> t.pointers)
let bytes_cell = count_cell (fun t -> t.bytes)
