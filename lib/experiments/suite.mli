(** The experiment suite: every table and figure of EXPERIMENTS.md.

    Each entry regenerates one deliverable; [run] executes a selection
    and persists the combined report plus per-experiment CSVs under the
    results directory. *)

type entry = {
  id : string;  (** stable identifier: "T1" … "T11", "F1" … "F5" *)
  title : string;
  run : Report.t -> quick:bool -> jobs:int -> unit;
}

val all : entry list

val ids : unit -> string list

val run :
  ?only:string list ->
  ?quick:bool ->
  ?jobs:int ->
  results_dir:string ->
  unit ->
  (unit, string) result
(** Run the selected experiments (default: all) in suite order. [quick]
    shrinks sizes and seed counts for smoke-testing. [jobs] (default
    {!Repro_util.Pool.default_jobs}) shards each experiment's
    independent runs across that many worker domains; the report and
    CSV bytes are identical for every value of [jobs]. Returns [Error]
    for an unknown id. The combined report is written to
    [results_dir/report.md]. *)
