(* Experiment T9: discovery under churn. Half of the fleet is present
   from the start; the rest joins in waves while discovery is already
   running. Strong completion (everyone knows all n) is only reachable
   once the last wave has joined, so the interesting number is the
   stabilisation time: rounds elapsed after the final join. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let family = Generate.K_out 3
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

type schedule = { label : string; last_join : int; joins : n:int -> seed:int -> (int * int) list }

let schedules =
  [
    { label = "no churn"; last_join = 1; joins = (fun ~n:_ ~seed:_ -> []) };
    {
      label = "half join at round 5";
      last_join = 5;
      joins =
        (fun ~n ~seed ->
          let rng = Rng.substream ~seed ~index:0x901d in
          Array.to_list (Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1))
          |> List.map (fun v -> (v, 5)));
    };
    {
      label = "waves at rounds 4/8/12/16";
      last_join = 16;
      joins =
        (fun ~n ~seed ->
          let rng = Rng.substream ~seed ~index:0x901d in
          let late = Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1) in
          List.mapi (fun i v -> (v, 4 + (4 * (i mod 4)))) (Array.to_list late));
    };
  ]

let algorithms = [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let t9 report ~quick ~jobs =
  let n = if quick then 256 else 1024 in
  Report.section report ~id:"T9"
    ~title:
      (Printf.sprintf
         "Discovery under churn (k-out, n = %d): rounds to strong completion, with the \
          stabilisation time after the last join in parentheses"
         n);
  let table =
    Table.create
      ~columns:
        (("join schedule", Table.Left)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algorithms)
  in
  let csv_rows = ref [] in
  (* one flat work item per (schedule, algorithm, seed); the join
     schedule becomes part of the run spec's fault model *)
  let groups =
    List.concat_map (fun s -> List.map (fun a -> (s, a)) algorithms) schedules
  in
  let k = List.length (seeds ~quick) in
  let all_rounds =
    Pool.map ~jobs
      (fun (schedule, (algo : Algorithm.t), seed) ->
        let topology = Sweepcell.topology_of ~family ~n ~seed in
        let fault = Fault.with_joins Fault.none (schedule.joins ~n ~seed) in
        let spec = { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 } in
        let r = Run.exec_spec spec algo topology in
        if not r.Run.completed then
          failwith (Printf.sprintf "%s did not stabilise under churn" algo.Algorithm.name);
        r.Run.rounds)
      (List.concat_map
         (fun (s, a) -> List.map (fun seed -> (s, a, seed)) (seeds ~quick))
         groups)
  in
  let summaries =
    List.map2
      (fun (schedule, (algo : Algorithm.t)) rounds ->
        ((schedule.label, algo.Algorithm.name), Stats.summarize_ints rounds))
      groups
      (Sweepcell.chunks k all_rounds)
  in
  List.iter
    (fun schedule ->
      let cells =
        List.map
          (fun (algo : Algorithm.t) ->
            let s = List.assoc (schedule.label, algo.Algorithm.name) summaries in
            csv_rows :=
              [ schedule.label; algo.Algorithm.name; Printf.sprintf "%.1f" s.Stats.mean ]
              :: !csv_rows;
            Printf.sprintf "%.1f (+%.1f)" s.Stats.mean
              (Float.max 0.0 (s.Stats.mean -. float_of_int schedule.last_join)))
          algorithms
      in
      Table.add_row table (schedule.label :: cells))
    schedules;
  Report.emit report (Table.render table);
  Report.emit report
    "hm re-stabilises within a handful of rounds of the last join: joiners pull the full view\n\
     from the cluster head they discover, and heads learn the joiners through the same report\n\
     path as any other identifier. Nodes that point at a not-yet-joined minimum suspect it and\n\
     re-point; the suspicion is lifted the moment the joiner speaks.\n";
  Report.csv report ~name:"t9_churn" ~header:[ "schedule"; "algorithm"; "rounds" ]
    ~rows:(List.rev !csv_rows)
