(* Experiment T9: discovery under churn. Half of the fleet is present
   from the start; the rest joins in waves while discovery is already
   running. Strong completion (everyone knows all n) is only reachable
   once the last wave has joined, so the interesting number is the
   stabilisation time: rounds elapsed after the final join. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let family = Generate.K_out 3
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

type schedule = { label : string; last_join : int; joins : n:int -> seed:int -> (int * int) list }

let schedules =
  [
    { label = "no churn"; last_join = 1; joins = (fun ~n:_ ~seed:_ -> []) };
    {
      label = "half join at round 5";
      last_join = 5;
      joins =
        (fun ~n ~seed ->
          let rng = Rng.substream ~seed ~index:0x901d in
          Array.to_list (Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1))
          |> List.map (fun v -> (v, 5)));
    };
    {
      label = "waves at rounds 4/8/12/16";
      last_join = 16;
      joins =
        (fun ~n ~seed ->
          let rng = Rng.substream ~seed ~index:0x901d in
          let late = Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1) in
          List.mapi (fun i v -> (v, 4 + (4 * (i mod 4)))) (Array.to_list late));
    };
  ]

let algorithms = [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let t9 report ~quick ~jobs =
  let n = if quick then 256 else 1024 in
  Report.section report ~id:"T9"
    ~title:
      (Printf.sprintf
         "Discovery under churn (k-out, n = %d): rounds to strong completion, with the \
          stabilisation time after the last join in parentheses"
         n);
  let table =
    Table.create
      ~columns:
        (("join schedule", Table.Left)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algorithms)
  in
  let csv_rows = ref [] in
  (* one flat work item per (schedule, algorithm, seed); the join
     schedule becomes part of the run spec's fault model *)
  let groups =
    List.concat_map (fun s -> List.map (fun a -> (s, a)) algorithms) schedules
  in
  let k = List.length (seeds ~quick) in
  let all_rounds =
    Pool.map ~jobs
      (fun (schedule, (algo : Algorithm.t), seed) ->
        let topology = Sweepcell.topology_of ~family ~n ~seed in
        let fault = Fault.with_joins Fault.none (schedule.joins ~n ~seed) in
        let spec = { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 } in
        let r = Run.exec_spec spec algo topology in
        if not r.Run.completed then
          failwith (Printf.sprintf "%s did not stabilise under churn" algo.Algorithm.name);
        r.Run.rounds)
      (List.concat_map
         (fun (s, a) -> List.map (fun seed -> (s, a, seed)) (seeds ~quick))
         groups)
  in
  let summaries =
    List.map2
      (fun (schedule, (algo : Algorithm.t)) rounds ->
        ((schedule.label, algo.Algorithm.name), Stats.summarize_ints rounds))
      groups
      (Sweepcell.chunks k all_rounds)
  in
  List.iter
    (fun schedule ->
      let cells =
        List.map
          (fun (algo : Algorithm.t) ->
            let s = List.assoc (schedule.label, algo.Algorithm.name) summaries in
            csv_rows :=
              [ schedule.label; algo.Algorithm.name; Printf.sprintf "%.1f" s.Stats.mean ]
              :: !csv_rows;
            Printf.sprintf "%.1f (+%.1f)" s.Stats.mean
              (Float.max 0.0 (s.Stats.mean -. float_of_int schedule.last_join)))
          algorithms
      in
      Table.add_row table (schedule.label :: cells))
    schedules;
  Report.emit report (Table.render table);
  Report.emit report
    "hm re-stabilises within a handful of rounds of the last join: joiners pull the full view\n\
     from the cluster head they discover, and heads learn the joiners through the same report\n\
     path as any other identifier. Nodes that point at a not-yet-joined minimum suspect it and\n\
     re-point; the suspicion is lifted the moment the joiner speaks.\n";
  Report.csv report ~name:"t9_churn" ~header:[ "schedule"; "algorithm"; "rounds" ]
    ~rows:(List.rev !csv_rows)

(* Experiment T13: the continuous service at steady state. One-shot
   discovery (T9) measures time-to-complete; here the fleet never
   stops. The service's anti-entropy claim is that steady-state traffic
   is churn-proportional: per-member load is a flat probe floor plus an
   update stream that scales with the membership-change rate, not with
   the fleet size. Each cell is one long soak — itself an aggregate
   over thousands of ticks — with the convergence-lag invariant checked
   online throughout, so every number in the table is from a run in
   which the fleet provably kept up. *)

let t13_rates = [ 0.0; 0.01; 0.05; 0.2 ]

let t13 report ~quick ~jobs =
  let ns = if quick then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let ticks = if quick then 1500 else 3000 in
  Report.section report ~id:"T13"
    ~title:
      (Printf.sprintf
         "Continuous service at steady state (%d ticks/cell): per-member messages per tick, \
          with update entries per tick in parentheses"
         ticks);
  let table =
    Table.create
      ~columns:
        (("n", Table.Right)
        :: List.map (fun r -> (Printf.sprintf "churn %g" r, Table.Right)) t13_rates)
  in
  let cells = List.concat_map (fun n -> List.map (fun r -> (n, r)) t13_rates) ns in
  let stats =
    Pool.map ~jobs
      (fun (n, rate) ->
        let cap = n + (n / 4) in
        let bound = Repro_service.Service.default_lag_bound ~cap in
        let cooldown = int_of_float bound + 16 in
        let churn =
          if rate = 0.0 then None
          else Some { Repro_service.Service.rate; min_live = n / 2; until = ticks - cooldown }
        in
        Repro_service.Service.run
          {
            Repro_service.Service.n;
            cap;
            seed = 1;
            ticks;
            churn;
            fault = Fault.none;
            lag_bound = None;
            full_sync = None;
            backend = None;
            indirect_k = 2;
            lifeguard = true;
            trace = Trace.null;
          })
      cells
  in
  let csv_rows = ref [] in
  List.iter
    (fun n ->
      let row =
        List.map
          (fun rate ->
            let s =
              List.assoc (n, rate)
                (List.map2 (fun cell s -> (cell, s)) cells stats)
            in
            let per_member v =
              float_of_int v /. float_of_int s.Repro_service.Service.ticks_run /. float_of_int n
            in
            let msgs = per_member s.Repro_service.Service.msgs in
            let entries = per_member s.Repro_service.Service.update_entries in
            csv_rows :=
              [
                string_of_int n;
                Printf.sprintf "%g" rate;
                Printf.sprintf "%.3f" msgs;
                Printf.sprintf "%.3f" entries;
                string_of_int s.Repro_service.Service.epochs;
                string_of_int s.Repro_service.Service.epochs_closed;
                Printf.sprintf "%.0f" s.Repro_service.Service.max_lag;
              ]
              :: !csv_rows;
            Printf.sprintf "%.2f (%.2f)" msgs entries)
          t13_rates
      in
      Table.add_row table (string_of_int n :: row))
    ns;
  Report.emit report (Table.render table);
  Report.emit report
    "The zero-churn column is the probe floor (one probe + one ack per probe interval),\n\
     identical at every fleet size. Under churn the per-member message rate stays flat in n\n\
     while the update-entry stream tracks the churn rate: dissemination budgets cap each\n\
     membership change at O(log n) retransmissions per member, so a 16x larger fleet pays\n\
     the same per-member rate for the same relative churn. Every cell's soak closed all of\n\
     its convergence epochs within the lag bound.\n";
  Report.csv report ~name:"t13_service"
    ~header:[ "n"; "churn"; "msgs_per_member_tick"; "entries_per_member_tick"; "epochs"; "epochs_closed"; "max_lag" ]
    ~rows:(List.rev !csv_rows)

(* Experiment T14: failure-detector precision under message loss. The
   fleet is perfectly healthy — nobody joins, leaves or crashes — so
   every suspicion and every down conviction is by construction a false
   positive caused purely by lost probes/acks. The detector pipeline is
   toggled between its naive form (a direct-probe timeout suspects
   immediately; fixed conviction window) and the full one (indirect
   probes through intermediaries, local-health timeout scaling,
   confirmation-scaled suspicion windows), across loss rates. *)

let t14_losses = [ 0.0; 0.05; 0.1; 0.2 ]

let t14 report ~quick ~jobs =
  let n = if quick then 48 else 64 in
  let ticks = if quick then 1500 else 3000 in
  let cap = n + (n / 4) in
  Report.section report ~id:"T14"
    ~title:
      (Printf.sprintf
         "Failure-detector precision on a healthy fleet (n = %d, %d ticks): false suspicions \
          per 1000 member-ticks, with false down convictions in parentheses"
         n ticks);
  let table =
    Table.create
      ~columns:
        (("detector", Table.Left)
        :: List.map (fun p -> (Printf.sprintf "loss %g" p, Table.Right)) t14_losses)
  in
  let variants =
    [ ("direct only", 0, false); ("indirect + lifeguard", 2, true) ]
  in
  let cells =
    List.concat_map (fun v -> List.map (fun p -> (v, p)) t14_losses) variants
  in
  let stats =
    Pool.map ~jobs
      (fun ((_, indirect_k, lifeguard), p) ->
        (* a generous lag bound: the experiment measures the false-
           positive rate, and the naive detector's wrong verdicts take
           a few refutation round-trips to heal under heavy loss *)
        let bound = 4.0 *. Repro_service.Service.default_lag_bound ~cap in
        Repro_service.Service.run
          {
            Repro_service.Service.n;
            cap;
            seed = 1;
            ticks;
            churn = None;
            fault = (if p = 0.0 then Fault.none else Fault.with_loss Fault.none ~p);
            lag_bound = Some bound;
            full_sync = None;
            backend = None;
            indirect_k;
            lifeguard;
            trace = Trace.null;
          })
      cells
  in
  let lookup = List.map2 (fun cell s -> (cell, s)) cells stats in
  let csv_rows = ref [] in
  List.iter
    (fun ((label, _, _) as v) ->
      let row =
        List.map
          (fun p ->
            let s = List.assoc (v, p) lookup in
            let per_kmt x =
              1000.0 *. float_of_int x /. float_of_int (ticks * n)
            in
            let fs = per_kmt s.Repro_service.Service.false_suspicions in
            let fr = per_kmt s.Repro_service.Service.false_retirements in
            csv_rows :=
              [
                label;
                Printf.sprintf "%g" p;
                string_of_int s.Repro_service.Service.false_suspicions;
                string_of_int s.Repro_service.Service.false_retirements;
                Printf.sprintf "%.4f" fs;
                Printf.sprintf "%.4f" fr;
              ]
              :: !csv_rows;
            Printf.sprintf "%.3f (%.3f)" fs fr)
          t14_losses
      in
      Table.add_row table (label :: row))
    variants;
  Report.emit report (Table.render table);
  Report.emit report
    "With the pipeline off, every lost probe reply opens a suspicion and a burst of loss\n\
     convicts a live node; the conviction then has to be refuted through an incarnation bump\n\
     and re-disseminated — wasted traffic and a window in which the fleet is wrong. Indirect\n\
     probes give each verdict k independent network paths, local health widens a struggling\n\
     observer's own timeouts, and confirmation-scaled windows make lone accusers wait — \n\
     together they cut false convictions by well over an order of magnitude at every loss\n\
     rate, at the cost of a slightly longer (still bounded) detection delay.\n";
  Report.csv report ~name:"t14_detector"
    ~header:[ "detector"; "loss"; "false_suspicions"; "false_retirements"; "fs_per_1k_member_ticks"; "fr_per_1k_member_ticks" ]
    ~rows:(List.rev !csv_rows)
