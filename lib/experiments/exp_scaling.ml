(* Experiments T1/T2/T3 and figure F1: cost scaling with n on the
   canonical k-out random knowledge graphs. The four outputs share one
   sweep, memoised per (quick) mode within a process. *)

open Repro_util
open Repro_graph
open Repro_discovery

let family = Generate.K_out 3

let sizes ~quick =
  if quick then [ 128; 256; 512; 1024 ] else [ 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

(* Swamping's Θ(n²) messages make large sizes pointless to simulate; the
   quadratic shape is unambiguous long before that. *)
let swamping_limit = 1024

let algorithms () =
  [
    Flooding.algorithm;
    Swamping.algorithm;
    Pointer_jump.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let sweep_cache : (bool, Sweepcell.t list) Hashtbl.t = Hashtbl.create 2

(* The cache key ignores [jobs]: cell results are deterministic in the
   seeds, so the worker count cannot change what is memoised. *)
let sweep ~quick ~jobs =
  match Hashtbl.find_opt sweep_cache quick with
  | Some cells -> cells
  | None ->
    let requests =
      List.concat_map
        (fun algo ->
          List.filter_map
            (fun n ->
              if algo.Algorithm.name = "swamping" && n > swamping_limit then None
              else
                Some (Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:500 ()))
            (sizes ~quick))
        (algorithms ())
    in
    let cells = Sweepcell.run_batch ~jobs requests in
    Hashtbl.replace sweep_cache quick cells;
    cells

let cell cells ~algo ~n =
  List.find_opt (fun (c : Sweepcell.t) -> c.Sweepcell.algo = algo && c.Sweepcell.n = n) cells

let algo_names () = List.map (fun a -> a.Algorithm.name) (algorithms ())

let metric_table report ~quick ~jobs ~title ~id ~cell_of ~csv_name ~csv_value =
  let cells = sweep ~quick ~jobs in
  Report.section report ~id ~title;
  let names = algo_names () in
  let table =
    Table.create ~columns:(("n", Table.Right) :: List.map (fun a -> (a, Table.Right)) names)
  in
  List.iter
    (fun n ->
      Table.add_row table
        (string_of_int n
        :: List.map
             (fun a ->
               match cell cells ~algo:a ~n with None -> "—" | Some c -> cell_of c)
             names))
    (sizes ~quick);
  Report.emit report (Table.render table);
  let rows =
    List.concat_map
      (fun (c : Sweepcell.t) ->
        match csv_value c with
        | None -> []
        | Some v ->
          [ [ c.Sweepcell.algo; string_of_int c.Sweepcell.n; Printf.sprintf "%.3f" v ] ])
      cells
  in
  Report.csv report ~name:csv_name ~header:[ "algorithm"; "n"; "value" ] ~rows

(* Least-squares shape check: which reference curve best explains the
   measured rounds of each algorithm? *)
let fit_summary report ~quick ~jobs =
  let cells = sweep ~quick ~jobs in
  let curves =
    [
      ("log log n", fun n -> Stats.loglog2 n);
      ("log n", fun n -> Stats.log2 n);
      ("log^2 n", fun n -> Stats.log2 n ** 2.0);
    ]
  in
  Report.emit report "\nShape fit (normalised RMS residual of best c*f(n) fit; lower = better):\n";
  let table =
    Table.create
      ~columns:
        (("algorithm", Table.Left)
        :: (List.map (fun (name, _) -> (name, Table.Right)) curves @ [ ("best", Table.Left) ]))
  in
  List.iter
    (fun a ->
      let points =
        List.filter_map
          (fun (c : Sweepcell.t) ->
            if c.Sweepcell.algo = a && c.Sweepcell.completions = c.Sweepcell.attempts then
              Option.map (fun (s : Stats.summary) -> (float_of_int c.Sweepcell.n, s.Stats.mean)) c.Sweepcell.rounds
            else None)
          cells
      in
      if List.length points >= 4 then begin
        let xs = List.map fst points and ys = List.map snd points in
        let residuals =
          List.map (fun (name, f) -> (name, Stats.fit_residual ~xs ~ys ~f)) curves
        in
        let best =
          List.fold_left (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
            ("?", infinity) residuals
        in
        Table.add_row table
          (a :: (List.map (fun (_, v) -> Printf.sprintf "%.3f" v) residuals @ [ fst best ]))
      end)
    (algo_names ());
  Report.emit report (Table.render table)

let t1 report ~quick ~jobs =
  metric_table report ~quick ~jobs ~id:"T1"
    ~title:"Rounds to complete discovery vs n (k-out graphs, k=3)"
    ~cell_of:Sweepcell.rounds_cell ~csv_name:"t1_rounds_vs_n"
    ~csv_value:(fun c -> Option.map (fun (s : Stats.summary) -> s.Stats.mean) c.Sweepcell.rounds);
  fit_summary report ~quick ~jobs

let t2 report ~quick ~jobs =
  metric_table report ~quick ~jobs ~id:"T2" ~title:"Message complexity vs n"
    ~cell_of:Sweepcell.messages_cell ~csv_name:"t2_messages_vs_n"
    ~csv_value:(fun c -> Option.map (fun (s : Stats.summary) -> s.Stats.mean) c.Sweepcell.messages)

let t3 report ~quick ~jobs =
  metric_table report ~quick ~jobs ~id:"T3" ~title:"Pointer complexity vs n"
    ~cell_of:Sweepcell.pointers_cell ~csv_name:"t3_pointers_vs_n"
    ~csv_value:(fun c -> Option.map (fun (s : Stats.summary) -> s.Stats.mean) c.Sweepcell.pointers)

let f1 report ~quick ~jobs =
  let cells = sweep ~quick ~jobs in
  Report.section report ~id:"F1" ~title:"Rounds vs n (the sub-logarithmic headline)";
  let series =
    List.filter_map
      (fun a ->
        let points =
          List.filter_map
            (fun (c : Sweepcell.t) ->
              if c.Sweepcell.algo = a then
                Option.map
                  (fun (s : Stats.summary) -> (float_of_int c.Sweepcell.n, s.Stats.mean))
                  c.Sweepcell.rounds
              else None)
            cells
        in
        if points = [] then None else Some { Plot.label = a; points })
      [ "name_dropper"; "rand_gossip"; "min_pointer"; "hm" ]
  in
  Report.emit report
    (Plot.render ~logx:true ~title:"rounds to complete discovery" ~xlabel:"n" ~ylabel:"rounds"
       series)
