(* Experiment T8: wire-byte complexity. Two views:

   (a) total bytes on the wire per algorithm under the realistic
       Adaptive codec, at two sizes — the deployable analogue of the
       pointer-complexity table;
   (b) a codec comparison for the paper's algorithm and Name-Dropper —
       how much the identifier-set representation matters. *)

open Repro_util
open Repro_graph
open Repro_discovery

let family = Generate.K_out 3
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

let t8_algorithms =
  [
    Flooding.algorithm;
    Pointer_jump.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let t8 report ~quick ~jobs =
  let sizes = if quick then [ 256; 1024 ] else [ 1024; 4096 ] in
  Report.section report ~id:"T8"
    ~title:"Wire bytes (adaptive varint/bitmap codec) — the deployable cost";
  let names = List.map (fun (a : Algorithm.t) -> a.Algorithm.name) t8_algorithms in
  let table =
    Table.create ~columns:(("n", Table.Right) :: List.map (fun a -> (a, Table.Right)) names)
  in
  let csv_rows = ref [] in
  let all_cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun n ->
           List.map
             (fun algo ->
               Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:500 ())
             t8_algorithms)
         sizes)
  in
  List.iter2
    (fun n cells ->
      List.iter
        (fun (c : Sweepcell.t) ->
          csv_rows :=
            [
              string_of_int n;
              c.Sweepcell.algo;
              (match c.Sweepcell.bytes with
              | None -> "DNF"
              | Some s -> Printf.sprintf "%.0f" s.Stats.mean);
            ]
            :: !csv_rows)
        cells;
      Table.add_row table (string_of_int n :: List.map Sweepcell.bytes_cell cells))
    sizes
    (Sweepcell.chunks (List.length t8_algorithms) all_cells);
  Report.emit report (Table.render table);
  (* codec ablation at the larger size: the same deterministic run,
     re-measured under each codec *)
  let n = List.nth sizes 1 in
  Report.emit report (Printf.sprintf "\nCodec comparison (n = %d, seed 1, same runs re-measured):\n" n);
  let codec_table =
    Table.create
      ~columns:
        (("algorithm", Table.Left)
        :: List.map (fun e -> (Wire.encoding_name e, Table.Right)) Wire.all_encodings)
  in
  let codec_algos = [ Hm_gossip.algorithm; Name_dropper.algorithm ] in
  let codec_bytes =
    Pool.map ~jobs
      (fun ((algo : Algorithm.t), encoding) ->
        let spec = { Run.default_spec with Run.seed = 1; encoding; max_rounds = Some 500 } in
        (Run.exec_spec spec algo (Sweepcell.topology_of ~family ~n ~seed:1)).Run.bytes)
      (List.concat_map
         (fun algo -> List.map (fun e -> (algo, e)) Wire.all_encodings)
         codec_algos)
  in
  List.iter2
    (fun (algo : Algorithm.t) bytes ->
      let cells = List.map (fun b -> Sweepcell.approx_int (float_of_int b)) bytes in
      Table.add_row codec_table (algo.Algorithm.name :: cells);
      csv_rows :=
        List.map2
          (fun e cell -> [ "codec:" ^ Wire.encoding_name e; algo.Algorithm.name; cell ])
          Wire.all_encodings cells
        @ !csv_rows)
    codec_algos
    (Sweepcell.chunks (List.length Wire.all_encodings) codec_bytes);
  Report.emit report
    "Snapshot-heavy traffic compresses to near the bitmap bound (n/8 bytes per full\n\
     snapshot); hm's delta reports make it the cheapest in bytes as well as pointers. Raw\n\
     32-bit identifiers cost ~4x the adaptive codec.\n";
  Report.csv report ~name:"t8_wire_bytes" ~header:[ "n_or_codec"; "algorithm"; "bytes" ]
    ~rows:(List.rev !csv_rows)
