(* Experiment T11: local termination detection. The synchronous model's
   completion predicate is an omniscient observer; real nodes cannot see
   it. hm's heads decide termination locally (knowledge stable and only
   empty reports for halt_patience rounds) and broadcast Halt. Measured
   here: the lag between actual completion and system-wide quiescence,
   the message overhead of running until quiescence instead of stopping
   at (unobservable) completion, and the safety of the decision — was
   knowledge actually complete when the nodes stopped? *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

let families ~quick =
  if quick then [ Generate.K_out 3; Generate.Path ]
  else [ Generate.K_out 3; Generate.Path; Generate.Binary_tree; Generate.Clustered (8, 3) ]

type observation = {
  complete_round : int;
  quiescent_round : int;
  safe : bool;  (* knowledge complete at quiescence *)
}

let observe ~family ~n ~seed =
  let topology = Sweepcell.topology_of ~family ~n ~seed in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        Hm_gossip.algorithm.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ p -> instances.(node).Algorithm.receive ~src p);
    }
  in
  let complete_round = ref 0 and quiescent_round = ref 0 in
  let stop ~round ~alive:_ =
    if
      !complete_round = 0
      && Array.for_all (fun i -> Knowledge.is_complete i.Algorithm.knowledge) instances
    then complete_round := round;
    if !quiescent_round = 0 && Array.for_all (fun i -> i.Algorithm.is_quiescent ()) instances
    then quiescent_round := round;
    !quiescent_round > 0
  in
  let outcome =
    Sim.run ~n
      ~config:{ Sim.default_config with Sim.max_rounds = 2000; engine_seed = seed }
      ~handlers ~measure:Payload.measure ~stop ()
  in
  ignore outcome.Sim.completed;
  let safe = Array.for_all (fun i -> Knowledge.is_complete i.Algorithm.knowledge) instances in
  { complete_round = !complete_round; quiescent_round = !quiescent_round; safe }

let t11 report ~quick ~jobs =
  let n = if quick then 256 else 1024 in
  Report.section report ~id:"T11"
    ~title:
      (Printf.sprintf
         "Local termination detection (n = %d): completion is what the observer sees, \
          quiescence is when every node has decided to stop"
         n);
  let table =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("complete", Table.Right);
          ("quiescent", Table.Right);
          ("lag", Table.Right);
          ("safe", Table.Right);
        ]
  in
  let csv_rows = ref [] in
  let all_obs =
    Pool.map ~jobs
      (fun (family, seed) -> observe ~family ~n ~seed)
      (List.concat_map
         (fun family -> List.map (fun seed -> (family, seed)) (seeds ~quick))
         (families ~quick))
  in
  List.iter2
    (fun family obs ->
      let mean f = Stats.mean (List.map (fun o -> float_of_int (f o)) obs) in
      let all_safe = List.for_all (fun o -> o.safe && o.complete_round > 0) obs in
      let complete = mean (fun o -> o.complete_round) in
      let quiescent = mean (fun o -> o.quiescent_round) in
      Table.add_row table
        [
          Generate.family_name family;
          Printf.sprintf "%.1f" complete;
          Printf.sprintf "%.1f" quiescent;
          Printf.sprintf "+%.1f" (quiescent -. complete);
          (if all_safe then "yes" else "NO");
        ];
      csv_rows :=
        [
          Generate.family_name family;
          Printf.sprintf "%.1f" complete;
          Printf.sprintf "%.1f" quiescent;
          string_of_bool all_safe;
        ]
        :: !csv_rows)
    (families ~quick)
    (Sweepcell.chunks (List.length (seeds ~quick)) all_obs);
  Report.emit report (Table.render table);
  Report.emit report
    "The lag is the halt patience (5 quiet rounds) plus the Halt broadcast — the price of not\n\
     having an omniscient observer. Safety (\"was knowledge actually complete when the nodes\n\
     stopped?\") held in every run; the decision is heuristic, so this is a measured property,\n\
     not a theorem (an identifier could in principle still be in flight up a long report\n\
     chain when a head goes quiet).\n";
  Report.csv report ~name:"t11_termination"
    ~header:[ "topology"; "complete_round"; "quiescent_round"; "safe" ]
    ~rows:(List.rev !csv_rows)
