(* Experiments T5 (message loss) and T6 (crash-stop failures). *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let n ~quick = if quick then 256 else 1024
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]
let family = Generate.K_out 3

let loss_levels = [ 0.0; 0.05; 0.1; 0.2; 0.4 ]

let t5_algorithms () =
  [
    Hm_gossip.algorithm;
    Hm_gossip.with_variant ~upward:Hm_gossip.Full ();
    Rand_gossip.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
  ]

let t5 report ~quick ~jobs =
  let n = n ~quick in
  Report.section report ~id:"T5"
    ~title:(Printf.sprintf "Rounds under message loss (k-out, n = %d)" n);
  let algos = t5_algorithms () in
  let table =
    Table.create
      ~columns:
        (("loss" , Table.Right)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algos)
  in
  let csv_rows = ref [] in
  let all_cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun p ->
           List.map
             (fun algo ->
               Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:2000
                 ~fault:(fun _ -> Fault.with_loss Fault.none ~p)
                 ())
             algos)
         loss_levels)
  in
  List.iter2
    (fun p cells ->
      List.iter
        (fun (c : Sweepcell.t) ->
          csv_rows :=
            [ Printf.sprintf "%.2f" p; c.Sweepcell.algo; Sweepcell.rounds_cell c ] :: !csv_rows)
        cells;
      Table.add_row table (Printf.sprintf "%.0f%%" (100.0 *. p) :: List.map Sweepcell.rounds_cell cells))
    loss_levels
    (Sweepcell.chunks (List.length algos) all_cells);
  Report.emit report (Table.render table);
  Report.emit report
    "hm's delta reports are retransmitted until the head's Reply acknowledges them, so loss\n\
     costs rounds, never correctness; hm:full converges slightly faster under heavy loss at a\n\
     much higher pointer cost.\n";
  Report.csv report ~name:"t5_loss" ~header:[ "loss"; "algorithm"; "rounds" ]
    ~rows:(List.rev !csv_rows)

let crash_fractions = [ 0.0; 0.01; 0.05; 0.10 ]

let t6_algorithms () =
  [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm; Min_pointer.algorithm ]

let t6 report ~quick ~jobs =
  let n = n ~quick in
  Report.section report ~id:"T6"
    ~title:
      (Printf.sprintf
         "Crash-stop failures during rounds 1-5 (k-out, n = %d; completion = every survivor \
          knows every survivor)"
         n);
  let algos = t6_algorithms () in
  let table =
    Table.create
      ~columns:
        (("crashed", Table.Right)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algos)
  in
  let csv_rows = ref [] in
  let count_of frac = int_of_float (Float.round (frac *. float_of_int n)) in
  let all_cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun frac ->
           let count = count_of frac in
           List.map
             (fun algo ->
               Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:2000
                 ~fault:(fun seed -> Sweepcell.crash_fault ~seed ~n ~count)
                 ~completion:Run.Survivors_strong ())
             algos)
         crash_fractions)
  in
  List.iter2
    (fun frac cells ->
      let count = count_of frac in
      List.iter
        (fun (c : Sweepcell.t) ->
          csv_rows :=
            [ string_of_int count; c.Sweepcell.algo; Sweepcell.rounds_cell c ] :: !csv_rows)
        cells;
      Table.add_row table
        (Printf.sprintf "%d (%.0f%%)" count (100.0 *. frac)
        :: List.map Sweepcell.rounds_cell cells))
    crash_fractions
    (Sweepcell.chunks (List.length algos) all_cells);
  Report.emit report (Table.render table);
  (* Uniform victims rarely include the aggregation sink, so also crash
     it deliberately — and at the worst possible moment. The node with
     the smallest rank (hm's sink) and the node with the smallest raw
     identifier (min_pointer's sink) both die at round 5, when nearly
     every node has already converged on reporting to them; earlier
     crashes lose the race against the surviving roots and are survivable
     even without failure detection. *)
  let adversarial_fault seed =
    let labels = Repro_util.Rng.permutation (Repro_util.Rng.substream ~seed ~index:0) n in
    let rank_min = ref 0 in
    Array.iteri (fun v l -> if l < labels.(!rank_min) then rank_min := v) labels;
    Fault.with_crashes Fault.none [ (0, 5); (!rank_min, 5) ]
  in
  let adv =
    Sweepcell.run_batch ~jobs
      (List.map
         (fun algo ->
           Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:2000
             ~fault:adversarial_fault ~completion:Run.Survivors_strong ())
         algos)
  in
  let adv_table =
    Table.create
      ~columns:
        (("scenario", Table.Left)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algos)
  in
  Table.add_row adv_table
    ("both aggregation sinks crash at round 5 (endgame)" :: List.map Sweepcell.rounds_cell adv);
  Report.emit report "\n";
  Report.emit report (Table.render adv_table);
  List.iter
    (fun (c : Sweepcell.t) ->
      csv_rows := [ "sinks"; c.Sweepcell.algo; Sweepcell.rounds_cell c ] :: !csv_rows)
    adv;
  Report.emit report
    "hm suspects its silent head candidate after a few unanswered reports and re-clusters\n\
     around the smallest surviving rank; min_pointer has no failure detection, so once the\n\
     minimum identifier crashes the survivors report to it forever — the deterministic\n\
     baseline survives random churn only as long as its sink does.\n";
  Report.csv report ~name:"t6_crashes" ~header:[ "crashed"; "algorithm"; "rounds" ]
    ~rows:(List.rev !csv_rows)
