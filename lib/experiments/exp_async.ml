(* Experiment T10: does the synchronous analysis survive asynchrony?
   The same algorithms run event-driven with drifting node clocks and
   variable message latency; completion times (in units of the mean node
   period) are compared against the synchronous round counts. *)

open Repro_util
open Repro_graph
open Repro_discovery

let family = Generate.K_out 3
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

let algorithms = [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

type regime = { label : string; jitter : float; latency : float * float }

let regimes =
  [
    { label = "mild (j=0.1, lat 0.1-0.9)"; jitter = 0.1; latency = (0.1, 0.9) };
    { label = "spread (j=0.2, lat 0.1-2.0)"; jitter = 0.2; latency = (0.1, 2.0) };
    { label = "harsh (j=0.3, lat 0.5-4.0)"; jitter = 0.3; latency = (0.5, 4.0) };
  ]

let t10 report ~quick ~jobs =
  let n = if quick then 256 else 1024 in
  Report.section report ~id:"T10"
    ~title:
      (Printf.sprintf
         "Asynchronous execution (k-out, n = %d): completion time in node periods; \"sync\" is \
          the synchronous round count"
         n);
  let table =
    Table.create
      ~columns:
        (("regime", Table.Left)
        :: List.map (fun (a : Algorithm.t) -> (a.Algorithm.name, Table.Right)) algorithms)
  in
  let csv_rows = ref [] in
  let sync_cells =
    List.map
      (fun c ->
        csv_rows := [ "sync"; c.Sweepcell.algo; Sweepcell.rounds_cell c ] :: !csv_rows;
        Sweepcell.rounds_cell c)
      (Sweepcell.run_batch ~jobs
         (List.map
            (fun algo ->
              Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:500 ())
            algorithms))
  in
  Table.add_row table ("sync (rounds)" :: sync_cells);
  Table.add_separator table;
  (* the asynchronous grid, sharded per (regime, algorithm, seed) *)
  let groups =
    List.concat_map (fun r -> List.map (fun a -> (r, a)) algorithms) regimes
  in
  let k = List.length (seeds ~quick) in
  let all_times =
    Pool.map ~jobs
      (fun (regime, (algo : Algorithm.t), seed) ->
        let topology = Sweepcell.topology_of ~family ~n ~seed in
        let spec =
          {
            Run_async.default_spec with
            Run_async.seed;
            tick_jitter = regime.jitter;
            latency = regime.latency;
          }
        in
        let r = Run_async.exec_spec spec algo topology in
        if not r.Run_async.completed then
          failwith (Printf.sprintf "%s did not complete asynchronously" algo.Algorithm.name);
        r.Run_async.time)
      (List.concat_map
         (fun (r, a) -> List.map (fun seed -> (r, a, seed)) (seeds ~quick))
         groups)
  in
  let summaries =
    List.map2
      (fun (regime, (algo : Algorithm.t)) times ->
        ((regime.label, algo.Algorithm.name), Stats.summarize times))
      groups
      (Sweepcell.chunks k all_times)
  in
  List.iter
    (fun regime ->
      let cells =
        List.map
          (fun (algo : Algorithm.t) ->
            let s = List.assoc (regime.label, algo.Algorithm.name) summaries in
            csv_rows :=
              [ regime.label; algo.Algorithm.name; Printf.sprintf "%.1f" s.Stats.mean ]
              :: !csv_rows;
            Table.cell_mean_std s)
          algorithms
      in
      Table.add_row table (regime.label :: cells))
    regimes;
  Report.emit report (Table.render table);
  Report.emit report
    "Completion times track the synchronous round counts within a small constant even under\n\
     harsh latency spread — the algorithms rely on acknowledgement and retransmission, never\n\
     on lockstep rounds, so the synchronous analysis carries over.\n";
  Report.csv report ~name:"t10_async" ~header:[ "regime"; "algorithm"; "time" ]
    ~rows:(List.rev !csv_rows)
