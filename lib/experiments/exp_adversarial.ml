(* Experiment T12: the adversarial scenario matrix — named worst-case
   topologies crossed with WAN link profiles. Complements T4 (which
   asks how fast discovery is per topology on clean links) by asking
   whether the round/message budgets survive when the topology is
   chosen adversarially AND the links degrade in correlated,
   region-shaped ways. *)

open Repro_util
open Repro_engine
open Repro_discovery
open Repro_graph

let t12_n ~quick = if quick then 64 else 256
let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3 ]

let algorithms =
  [ Hm_gossip.algorithm; Min_pointer.algorithm; Name_dropper.algorithm; Rand_gossip.algorithm ]

(* Two latency regions (an even split), every cross-region link degraded.
   [wan]: transatlantic-ish — extra delay plus mild loss. [saturated]:
   the crossing's bandwidth collapses to a trickle per link. *)
let profiles ~n =
  let regions =
    [ List.init (n / 2) Fun.id; List.init (n - (n / 2)) (fun i -> (n / 2) + i) ]
  in
  [
    ("none", Fault.none);
    ("wan", Fault.with_wan Fault.none ~regions ~cross:{ Fault.default_link with Fault.delay = 2; loss = 0.1 });
    ("saturated", Fault.with_wan Fault.none ~regions ~cross:{ Fault.default_link with Fault.cap = 1 });
  ]

let t12 report ~quick ~jobs =
  let n = t12_n ~quick in
  Report.section report ~id:"T12"
    ~title:
      (Printf.sprintf "Adversarial scenario matrix (n = %d; DNF = over %d rounds)" n (8 * n));
  let names = List.map (fun a -> a.Algorithm.name) algorithms in
  let table =
    Table.create
      ~columns:
        (("topology", Table.Left) :: ("links", Table.Left)
        :: List.map (fun a -> (a, Table.Right)) names)
  in
  let grid =
    List.concat_map
      (fun family -> List.map (fun profile -> (family, profile)) (profiles ~n))
      Generate.adversarial_families
  in
  let csv_rows = ref [] in
  let all_cells =
    Sweepcell.run_batch ~jobs
      (List.concat_map
         (fun (family, (_, fault)) ->
           List.map
             (fun algo ->
               Sweepcell.request ~algo ~family ~n ~seeds:(seeds ~quick) ~max_rounds:(8 * n)
                 ~fault:(fun _ -> fault)
                 ())
             algorithms)
         grid)
  in
  List.iter2
    (fun (family, (profile, _)) cells ->
      List.iter
        (fun (c : Sweepcell.t) ->
          csv_rows :=
            [
              Generate.family_name family;
              profile;
              c.Sweepcell.algo;
              string_of_int n;
              (match c.Sweepcell.rounds with
              | None -> "DNF"
              | Some s -> Printf.sprintf "%.1f" s.Stats.mean);
              (match c.Sweepcell.messages with
              | None -> ""
              | Some s -> Printf.sprintf "%.0f" s.Stats.mean);
              (match c.Sweepcell.dropped with
              | None -> ""
              | Some s -> Printf.sprintf "%.1f" s.Stats.mean);
            ]
            :: !csv_rows)
        cells;
      Table.add_row table
        (Generate.family_name family :: profile :: List.map Sweepcell.rounds_cell cells))
    grid
    (Sweepcell.chunks (List.length algorithms) all_cells);
  Report.emit report (Table.render table);
  Report.emit report
    "Notes: the sorted chain is min_pointer's deterministic worst case (see the regression test\n\
     in test_adversarial.ml — its pointer cost separates from hm's there); kniesburges is the\n\
     sorted low-weft instance from the KPV analysis. WAN crossings slow every algorithm by a\n\
     few rounds. The saturated profile throttles every cross-region link to one message per\n\
     round; the resulting drops show up in the CSV's dropped column, yet rounds and send counts\n\
     stay at their clean-link values — the extra sends these gossips make over a hot link are\n\
     duplicates of state the receiver gets elsewhere, so throttling them costs nothing. The\n\
     deterministic cap accounting itself is pinned by test_adversarial.ml's cap tests.\n";
  Report.csv report ~name:"t12_adversarial"
    ~header:[ "topology"; "links"; "algorithm"; "n"; "rounds"; "messages"; "dropped" ]
    ~rows:(List.rev !csv_rows)
