(* A small fork/join pool over OCaml 5 domains for embarrassingly
   parallel work.

   Tasks are pulled from a shared queue guarded by a mutex: the first
   idle worker takes the lowest unstarted index, which load-balances
   uneven task costs (a 16k-node cell next to a 128-node cell) without
   static partitioning. Results land in a slot array indexed by task, so
   the merged output is in task order and independent of scheduling — the
   property the experiment harness relies on for byte-identical reports
   at any [jobs]. A condition variable signals the caller when the last
   in-flight task has finished. *)

type 'a slot = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

(* Per-domain marker for nested-use detection. Worker domains (and the
   calling domain while it participates) set it; a parallel [run] from
   inside a task would deadlock-prone oversubscribe, so it is refused. *)
let inside_key = Domain.DLS.new_key (fun () -> false)

let env_var = "REPRO_JOBS"

(* Domains are real OS threads with 8-ish MB stacks; cap runaway
   REPRO_JOBS values rather than letting spawn fail. *)
let hard_cap = 64

let default_jobs () =
  match Sys.getenv_opt env_var with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> min j hard_cap
    | _ ->
      invalid_arg (Printf.sprintf "Pool.default_jobs: %s=%S is not a positive integer" env_var s))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let sequential tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let first = tasks.(0) () in
    let out = Array.make n first in
    for i = 1 to n - 1 do
      out.(i) <- tasks.(i) ()
    done;
    out
  end

let run ~jobs (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let jobs = min (min jobs n) hard_cap in
  if jobs > 1 && Domain.DLS.get inside_key then
    invalid_arg "Pool.run: nested parallel region (flatten the work into one task array)";
  if jobs <= 1 || n <= 1 then sequential tasks
  else begin
    let slots = Array.make n Pending in
    let lock = Mutex.create () in
    let finished = Condition.create () in
    let next = ref 0 in
    let completed = ref 0 in
    let take () =
      Mutex.lock lock;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock lock;
      if i < n then Some i else None
    in
    let mark_done () =
      Mutex.lock lock;
      incr completed;
      if !completed = n then Condition.broadcast finished;
      Mutex.unlock lock
    in
    let rec work () =
      match take () with
      | None -> ()
      | Some i ->
        (* Every task runs even if an earlier one failed, so the slot
           array is always fully populated and the re-raised exception
           (lowest failing index, below) is deterministic. *)
        slots.(i) <- (try Done (tasks.(i) ()) with e -> Failed (e, Printexc.get_raw_backtrace ()));
        mark_done ();
        work ()
    in
    let worker () =
      Domain.DLS.set inside_key true;
      work ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too: [jobs] counts busy domains,
       not helpers on top of an idle coordinator. *)
    Domain.DLS.set inside_key true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set inside_key false) work;
    Mutex.lock lock;
    while !completed < n do
      Condition.wait finished lock
    done;
    Mutex.unlock lock;
    Array.iter Domain.join spawned;
    for i = 0 to n - 1 do
      match slots.(i) with
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ()
    done;
    Array.map (function Done v -> v | Pending | Failed _ -> assert false) slots
  end

let map ~jobs f items =
  Array.to_list (run ~jobs (Array.of_list (List.map (fun x -> fun () -> f x) items)))

(* Persistent worker team for phase-parallel work: [run] above spawns
   and joins domains per call, which is fine for coarse sweep cells but
   ~100x too expensive for a per-round barrier inside a single simulated
   run. A team spawns its domains once; each [Team.run] is one
   barrier-to-barrier phase in which every member (the caller
   participates as member 0) executes the same closure on its own shard
   index. Coordination is a mutex/condvar epoch: posting a phase bumps
   the epoch and wakes the workers, and the call returns when the last
   member checks in — so phase N's writes happen-before phase N+1's
   reads on every member, which is what lets the engine hand frozen
   snapshots across shards without further synchronisation. *)
module Team = struct
  type t = {
    members : int;
    lock : Mutex.t;
    wake : Condition.t;
    done_ : Condition.t;
    mutable epoch : int;  (* bumped per phase; workers run when it advances *)
    mutable task : int -> unit;  (* the current phase's body, given the member index *)
    mutable pending : int;  (* members still inside the current phase *)
    mutable stopping : bool;
    mutable failures : (exn * Printexc.raw_backtrace) option array;  (* per member *)
    mutable domains : unit Domain.t array;
  }

  let worker t me () =
    Domain.DLS.set inside_key true;
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock t.lock;
      while t.epoch = !seen && not t.stopping do
        Condition.wait t.wake t.lock
      done;
      if t.stopping then begin
        continue := false;
        Mutex.unlock t.lock
      end
      else begin
        seen := t.epoch;
        let task = t.task in
        Mutex.unlock t.lock;
        (try task me
         with e -> t.failures.(me) <- Some (e, Printexc.get_raw_backtrace ()));
        Mutex.lock t.lock;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.done_;
        Mutex.unlock t.lock
      end
    done

  let create ~members =
    if members < 1 then invalid_arg "Pool.Team.create: members must be >= 1";
    if members > 1 && Domain.DLS.get inside_key then
      invalid_arg "Pool.Team.create: nested parallel region";
    let members = min members hard_cap in
    let t =
      {
        members;
        lock = Mutex.create ();
        wake = Condition.create ();
        done_ = Condition.create ();
        epoch = 0;
        task = ignore;
        pending = 0;
        stopping = false;
        failures = Array.make members None;
        domains = [||];
      }
    in
    t.domains <- Array.init (members - 1) (fun i -> Domain.spawn (worker t (i + 1)));
    t

  let members t = t.members

  let run t f =
    if t.stopping then invalid_arg "Pool.Team.run: team is shut down";
    Array.fill t.failures 0 t.members None;
    Mutex.lock t.lock;
    t.task <- f;
    t.pending <- t.members;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    (* the caller is member 0 *)
    (try f 0 with e -> t.failures.(0) <- Some (e, Printexc.get_raw_backtrace ()));
    Mutex.lock t.lock;
    t.pending <- t.pending - 1;
    if t.pending > 0 then
      while t.pending > 0 do
        Condition.wait t.done_ t.lock
      done
    else Condition.broadcast t.done_;
    Mutex.unlock t.lock;
    (* deterministic failure: re-raise the lowest member's exception *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      t.failures

  let shutdown t =
    if not t.stopping then begin
      Mutex.lock t.lock;
      t.stopping <- true;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      Array.iter Domain.join t.domains
    end
end
