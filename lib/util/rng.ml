(* xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Chosen over
   Stdlib.Random for cross-version reproducibility: experiment outputs are
   a pure function of the integer seed.

   The 64-bit state words are stored as (hi, lo) pairs of 32-bit halves in
   tagged OCaml ints rather than as [int64] fields: without flambda every
   [Int64] operation boxes its result, which made each draw allocate ~20
   minor words — enough to dominate the allocation profile of a whole
   simulation. All arithmetic below is exact 64-bit arithmetic carried out
   on the halves, so the output stream is bit-identical to the boxed
   implementation. *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* last output word, written by [next] (avoids returning a pair) *)
  mutable rh : int;
  mutable rl : int;
}

let m32 = 0xFFFFFFFF

(* low 32 bits of (a * b) where a, b < 2^32: split [a] into 16-bit limbs
   so no intermediate product exceeds 2^48 *)
let mul_lo32 a b = (((a land 0xFFFF) * b) + ((((a lsr 16) * b) land 0xFFFF) lsl 16)) land m32

(* 64-bit scratch word for the (cold) seeding path: carrying (hi, lo)
   pairs through continuations or tuples would allocate per step *)
type w64 = { mutable wh : int; mutable wl : int }

(* w <- low 64 bits of (ah:al) * (bh:bl) *)
let mul64_into w ah al bh bl =
  let a0 = al land 0xFFFF and a1 = al lsr 16 in
  let b0 = bl land 0xFFFF and b1 = bl lsr 16 in
  let p00 = a0 * b0 in
  let mid = (p00 lsr 16) + (a0 * b1) + (a1 * b0) in
  w.wl <- (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16);
  w.wh <- ((a1 * b1) + (mid lsr 16) + mul_lo32 al bh + mul_lo32 ah bl) land m32

(* one xoshiro256** step: advances the state and leaves the output word
   in [rh]/[rl]; everything is immediate ints, so no allocation *)
let next t =
  let s1h = t.s1h and s1l = t.s1l in
  (* x5 = s1 * 5 *)
  let l5 = (s1l lsl 2) + s1l in
  let h5 = ((s1h lsl 2) + s1h + (l5 lsr 32)) land m32 in
  let l5 = l5 land m32 in
  (* r = rotl x5 7 *)
  let rh = ((h5 lsl 7) lor (l5 lsr 25)) land m32 in
  let rl = ((l5 lsl 7) lor (h5 lsr 25)) land m32 in
  (* result = r * 9 *)
  let l9 = (rl lsl 3) + rl in
  t.rh <- ((rh lsl 3) + rh + (l9 lsr 32)) land m32;
  t.rl <- l9 land m32;
  (* state update: t2 = s1 << 17; s2 ^= s0; s3 ^= s1; s1 ^= s2; s0 ^= s3;
     s2 ^= t2; s3 = rotl s3 45 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land m32 in
  let tl = (s1l lsl 17) land m32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor s1h and s3l = t.s3l lxor s1l in
  t.s1h <- s1h lxor s2h;
  t.s1l <- s1l lxor s2l;
  t.s0h <- t.s0h lxor s3h;
  t.s0l <- t.s0l lxor s3l;
  t.s2h <- s2h lxor th;
  t.s2l <- s2l lxor tl;
  (* rotl 45 swaps the halves (45 >= 32), then rotates by 13 *)
  t.s3h <- ((s3l lsl 13) land m32) lor (s3h lsr 19);
  t.s3l <- ((s3h lsl 13) land m32) lor (s3l lsr 19)

(* (hi, lo) halves of the sign-extended 64-bit image of an OCaml int *)
let hi_of_int v = (v asr 32) land m32
let lo_of_int v = v land m32

(* splitmix64 step: [st] holds the state, the output lands in [z] *)
let splitmix_next st z =
  (* state += 0x9E3779B97F4A7C15 *)
  let l = st.wl + 0x7F4A7C15 in
  let h = (st.wh + 0x9E3779B9 + (l lsr 32)) land m32 in
  let l = l land m32 in
  st.wh <- h;
  st.wl <- l;
  (* z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 *)
  let zh = h lxor (h lsr 30) and zl = l lxor (((h lsl 2) lor (l lsr 30)) land m32) in
  mul64_into z zh zl 0xBF58476D 0x1CE4E5B9;
  (* z = (z ^ (z >> 27)) * 0x94D049BB133111EB *)
  let zh = z.wh lxor (z.wh lsr 27)
  and zl = z.wl lxor (((z.wh lsl 5) lor (z.wl lsr 27)) land m32) in
  mul64_into z zh zl 0x94D049BB 0x133111EB;
  (* z ^ (z >> 31) *)
  let zh = z.wh and zl = z.wl in
  z.wh <- zh lxor (zh lsr 31);
  z.wl <- zl lxor (((zh lsl 1) lor (zl lsr 31)) land m32)

let of_splitmix h l =
  let st = { wh = h; wl = l } and z = { wh = 0; wl = 0 } in
  splitmix_next st z;
  let s0h = z.wh and s0l = z.wl in
  splitmix_next st z;
  let s1h = z.wh and s1l = z.wl in
  splitmix_next st z;
  let s2h = z.wh and s2l = z.wl in
  splitmix_next st z;
  let s3h = z.wh and s3l = z.wl in
  (* xoshiro state must not be all-zero; splitmix output makes this
     astronomically unlikely, but guard anyway *)
  if s0h lor s0l lor s1h lor s1l lor s2h lor s2l lor s3h lor s3l = 0 then
    { s0h = 0; s0l = 1; s1h = 0; s1l = 2; s2h = 0; s2l = 3; s3h = 0; s3l = 4; rh = 0; rl = 0 }
  else { s0h; s0l; s1h; s1l; s2h; s2l; s3h; s3l; rh = 0; rl = 0 }

let create ~seed = of_splitmix (hi_of_int seed) (lo_of_int seed)

let bits64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl)

let split t =
  next t;
  of_splitmix t.rh t.rl

let substream ~seed ~index =
  (* state = seed ^ (index * 0xD1342543DE82EF95) *)
  let w = { wh = 0; wl = 0 } in
  mul64_into w (hi_of_int index) (lo_of_int index) 0xD1342543 0xDE82EF95;
  of_splitmix (hi_of_int seed lxor w.wh) (lo_of_int seed lxor w.wl)

(* Unbiased bounded sampling by rejection on the top 62 bits (staying in
   OCaml's nativeint-friendly positive range). *)
let top62 t =
  next t;
  (t.rh lsl 30) lor (t.rl lsr 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = top62 t in
  if bound land (bound - 1) = 0 then mask land (bound - 1)
  else begin
    let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
    let rec draw v = if v < limit then v mod bound else draw (top62 t) in
    draw mask
  end

let float t bound =
  (* 53 random mantissa bits *)
  next t;
  let x = (t.rh lsl 21) lor (t.rl lsr 11) in
  float_of_int x *. (1.0 /. 9007199254740992.0) *. bound

let bool t =
  next t;
  t.rl land 1 = 1

let bernoulli t ~p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_distinct t ~n ~k ~avoid =
  let eligible = if avoid >= 0 && avoid < n then n - 1 else n in
  if k < 0 || k > eligible then invalid_arg "Rng.sample_distinct: unsatisfiable request";
  (* Floyd-style rejection keeps this O(k) in expectation for k << n; fall
     back to a shuffle when k is a large fraction of n. *)
  if k * 3 >= eligible then begin
    let pool = Array.make eligible 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if v <> avoid then begin
        pool.(!j) <- v;
        incr j
      end
    done;
    shuffle_in_place t pool;
    Array.sub pool 0 k
  end
  else begin
    (* distinctness by linear scan of the sample built so far: [k] is a
       small fan-out on this path, and the scan spares the per-call hash
       table the previous implementation allocated *)
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      let fresh = ref (v <> avoid) in
      for i = 0 to !filled - 1 do
        if out.(i) = v then fresh := false
      done;
      if !fresh then begin
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
