(** Fork/join execution of independent tasks on OCaml 5 domains.

    The experiment harness shards seed replicates and sweep cells across
    cores through this module. Scheduling is dynamic (idle workers take
    the next unstarted task from a shared queue), but results are merged
    in task order, so any aggregation over them is deterministic — a
    suite run produces byte-identical output at [jobs = 1] and
    [jobs = 64].

    Tasks must be self-contained: no shared mutable state, no printing.
    Every run of the discovery engine already satisfies this (private
    RNG streams, per-run metrics). *)

val default_jobs : unit -> int
(** Worker count used when the CLI gives no [--jobs]: the [REPRO_JOBS]
    environment variable if set (a positive integer), otherwise
    [Domain.recommended_domain_count () - 1], floored at 1. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] executes every task on up to [jobs] domains (the
    calling domain participates as a worker) and returns the results in
    task order.

    - [jobs <= 1], or fewer than two tasks: a plain sequential loop on
      the calling domain; no domains are spawned.
    - Exceptions: every task runs to completion regardless of other
      tasks' failures; afterwards the exception of the lowest-indexed
      failing task is re-raised, so failure behaviour is deterministic.
    - Nested use: calling [run ~jobs] with [jobs > 1] from inside a pool
      task raises [Invalid_argument] — flatten the work into a single
      task array instead (see {!Repro_experiments.Sweepcell.run_batch}).
      The [jobs <= 1] sequential path is allowed anywhere. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is {!run} over [fun () -> f item], preserving
    list order. *)

(** Persistent worker team for phase-parallel work inside one
    computation (e.g. the engine's sharded round loop). Where {!run}
    spawns and joins domains per call, a team spawns its domains once
    and then executes an arbitrary number of barrier-delimited phases,
    so the per-phase cost is a mutex/condvar round-trip rather than a
    domain spawn. *)
module Team : sig
  type t

  val create : members:int -> t
  (** [create ~members] spawns [members - 1] worker domains (the caller
      participates as member 0). Workers count against the same
      oversubscription guard as {!run}: creating a team with
      [members > 1] from inside a pool task or another team raises
      [Invalid_argument], and team members may not start nested
      parallel regions. Shut the team down with {!shutdown}. *)

  val members : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f member] on every member (0 inclusive) and
      returns when all have finished — one barrier-to-barrier phase.
      Everything written before [run] returns happens-before the next
      phase's reads on every member. If members raise, every member
      still finishes its phase and the lowest member's exception is
      re-raised (deterministic failure). *)

  val shutdown : t -> unit
  (** Join the worker domains. Idempotent; the team is unusable after. *)
end
