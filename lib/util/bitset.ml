(* Bits are packed 32 per native [int] word (bit [v] lives in word
   [v lsr 5] at position [v land 31]). Native ints keep every operation
   unboxed — an [Int64 array] representation measured ~50x slower because
   each element access allocates. Cardinality is maintained incrementally
   so completion checks in the simulator are O(1) per node.

   Sharing. [freeze] hands out O(1) immutable views that alias the
   owner's word array; the owner stays mutable through copy-on-write.
   The invariant is that a [Frozen] record's word array is never written:
   an owner whose words are aliased is marked [Shared] and re-materialises
   a private copy the first time a mutation actually needs to write. A
   union that learns nothing therefore never copies — the dominant case
   for saturated knowledge sets in steady state. *)

type status =
  | Owned  (* words are private and writable *)
  | Shared  (* words are aliased by at least one frozen view: copy before write *)
  | Frozen  (* immutable view: writes are errors *)

type t = { n : int; mutable words : int array; mutable card : int; mutable status : status }

let bits_per_word = 32

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0; card = 0; status = Owned }

let capacity t = t.n
let cardinal t = t.card
let is_empty t = t.card = 0
let is_frozen t = t.status = Frozen

let freeze t =
  if t.status = Frozen then t
  else begin
    t.status <- Shared;
    { n = t.n; words = t.words; card = t.card; status = Frozen }
  end

let frozen_error () = invalid_arg "Bitset: mutation of a frozen view"

(* Called when a mutator is about to write. Frozen views reject the
   write; a shared owner privatises its words first. *)
let unshare t =
  match t.status with
  | Owned -> ()
  | Shared ->
    t.words <- Array.copy t.words;
    t.status <- Owned
  | Frozen -> frozen_error ()

let check t v = if v < 0 || v >= t.n then invalid_arg "Bitset: element out of range"

let mem t v =
  check t v;
  t.words.(v lsr 5) land (1 lsl (v land 31)) <> 0

let add t v =
  check t v;
  if t.status = Frozen then frozen_error ();
  let w = v lsr 5 and bit = 1 lsl (v land 31) in
  if t.words.(w) land bit <> 0 then false
  else begin
    unshare t;
    t.words.(w) <- t.words.(w) lor bit;
    t.card <- t.card + 1;
    true
  end

let remove t v =
  check t v;
  if t.status = Frozen then frozen_error ();
  let w = v lsr 5 and bit = 1 lsl (v land 31) in
  if t.words.(w) land bit = 0 then false
  else begin
    unshare t;
    t.words.(w) <- t.words.(w) land lnot bit;
    t.card <- t.card - 1;
    true
  end

let copy t = { n = t.n; words = Array.copy t.words; card = t.card; status = Owned }

(* SWAR popcount; inputs are 32-bit values held in native ints. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let same_capacity a b = if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

(* Index of the first word of [src] carrying a bit absent from [dst], or
   -1 when [src] is a subset — the write-free pre-scan that lets a
   copy-on-write destination stay shared across no-op unions. *)
let rec first_fresh_from dw sw w nw =
  if w >= nw then -1
  else if Array.unsafe_get sw w land lnot (Array.unsafe_get dw w) <> 0 then w
  else first_fresh_from dw sw (w + 1) nw

let first_fresh_word dw sw = first_fresh_from dw sw 0 (Array.length dw)

(* The merge loops recurse rather than accumulate through a [ref]: these
   run once per delivered message, and a 3-word ref cell per merge is
   visible in whole-run allocation profiles. *)
let rec union_words dw sw w acc =
  if w >= Array.length dw then acc
  else begin
    let d = Array.unsafe_get dw w and s = Array.unsafe_get sw w in
    let fresh = s land lnot d in
    if fresh = 0 then union_words dw sw (w + 1) acc
    else begin
      Array.unsafe_set dw w (d lor s);
      union_words dw sw (w + 1) (acc + popcount fresh)
    end
  end

let union_into ~dst ~src =
  same_capacity dst src;
  if dst.status = Frozen then frozen_error ();
  if dst.card = dst.n || src.card = 0 then 0
  else begin
    let first = first_fresh_word dst.words src.words in
    if first < 0 then 0
    else begin
      unshare dst;
      let added = union_words dst.words src.words first 0 in
      dst.card <- dst.card + added;
      added
    end
  end

let rec iter_word_bits base bits f =
  if bits <> 0 then begin
    let low = bits land (-bits) in
    f (base + popcount (low - 1));
    iter_word_bits base (bits lxor low) f
  end

let rec union_words_with dw sw w acc f =
  if w >= Array.length dw then acc
  else begin
    let d = Array.unsafe_get dw w and s = Array.unsafe_get sw w in
    let fresh = s land lnot d in
    if fresh = 0 then union_words_with dw sw (w + 1) acc f
    else begin
      Array.unsafe_set dw w (d lor s);
      iter_word_bits (w lsl 5) fresh f;
      union_words_with dw sw (w + 1) (acc + popcount fresh) f
    end
  end

let union_into_with ~dst ~src f =
  same_capacity dst src;
  if dst.status = Frozen then frozen_error ();
  if dst.card = dst.n || src.card = 0 then 0
  else begin
    let first = first_fresh_word dst.words src.words in
    if first < 0 then 0
    else begin
      unshare dst;
      let added = union_words_with dst.words src.words first 0 f in
      dst.card <- dst.card + added;
      added
    end
  end

let inter_cardinal a b =
  same_capacity a b;
  let total = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    total := !total + popcount (a.words.(w) land b.words.(w))
  done;
  !total

let equal a b = a.n = b.n && a.card = b.card && a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  let w = ref 0 in
  let nw = Array.length a.words in
  while !ok && !w < nw do
    if a.words.(!w) land lnot b.words.(!w) <> 0 then ok := false;
    incr w
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    if t.words.(w) <> 0 then iter_word_bits (w lsl 5) t.words.(w) f
  done

(* [fold] threads the accumulator through top-level recursion instead of
   a ref cell so that callers passing a statically-allocated function
   (e.g. encoded-size accumulation in [Wire]) fold without allocating. *)
let rec fold_word_bits f base bits acc =
  if bits = 0 then acc
  else begin
    let low = bits land (-bits) in
    fold_word_bits f base (bits lxor low) (f acc (base + popcount (low - 1)))
  end

let rec fold_words f words w acc =
  if w >= Array.length words then acc
  else begin
    let bits = Array.unsafe_get words w in
    if bits = 0 then fold_words f words (w + 1) acc
    else fold_words f words (w + 1) (fold_word_bits f (w lsl 5) bits acc)
  end

let fold f init t = fold_words f t.words 0 init

let elements t = List.rev (fold (fun acc v -> v :: acc) [] t)

let to_array t =
  let out = Array.make t.card 0 in
  let i = ref 0 in
  iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    t;
  out

let of_array n vs =
  let t = create n in
  Array.iter (fun v -> ignore (add t v)) vs;
  t

let is_full t = t.card = t.n

let choose_nth t k =
  if k < 0 || k >= t.card then invalid_arg "Bitset.choose_nth: rank out of range";
  let remaining = ref k in
  let result = ref (-1) in
  (try
     for w = 0 to Array.length t.words - 1 do
       let c = popcount t.words.(w) in
       if !remaining < c then begin
         iter_word_bits (w lsl 5) t.words.(w) (fun v ->
             if !remaining = 0 && !result < 0 then result := v
             else decr remaining);
         raise Exit
       end
       else remaining := !remaining - c
     done
   with Exit -> ());
  assert (!result >= 0);
  !result

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" v)
    t;
  Format.fprintf ppf "}"
