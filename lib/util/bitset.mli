(** Dense, fixed-capacity bitsets over the integer universe [0 .. n-1].

    This is the workhorse representation for knowledge sets: membership,
    insertion and whole-set union are the hot operations of every
    discovery algorithm, so the implementation packs bits into 64-bit
    words and keeps the cardinality incrementally. *)

type t
(** Mutable bitset. *)

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** Universe size the set was created with. *)

val cardinal : t -> int
(** Number of elements, maintained in O(1). *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Membership test. @raise Invalid_argument if out of range. *)

val add : t -> int -> bool
(** [add t v] inserts [v]; returns [true] iff [v] was not already present.
    @raise Invalid_argument if out of range. *)

val remove : t -> int -> bool
(** [remove t v] deletes [v]; returns [true] iff [v] was present. *)

val copy : t -> t
(** Independent (deep, always-mutable) copy. *)

val freeze : t -> t
(** [freeze t] is an immutable view of [t]'s current contents, in O(1):
    the view aliases [t]'s storage instead of copying it. Calling a
    mutator ({!add}, {!remove}, {!union_into}, {!union_into_with}) on the
    view raises [Invalid_argument]. [t] itself stays mutable: its first
    subsequent write re-materialises private storage (copy-on-write), so
    existing views never change. Freezing an already-frozen view returns
    it unchanged. This is the zero-copy path for payload snapshots that
    are shared across a fan-out. *)

val is_frozen : t -> bool
(** [true] on views returned by {!freeze}. *)

val union_into : dst:t -> src:t -> int
(** [union_into ~dst ~src] adds every element of [src] to [dst] and
    returns the number of newly-added elements.
    @raise Invalid_argument if capacities differ. *)

val union_into_with : dst:t -> src:t -> (int -> unit) -> int
(** [union_into_with ~dst ~src f] behaves like {!union_into} but also
    calls [f v] for every element [v] newly added to [dst], in increasing
    order. Used to keep companion element vectors in sync. *)

val inter_cardinal : t -> t -> int
(** Cardinality of the intersection, without materialising it. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val elements : t -> int list
(** Elements in increasing order. *)

val to_array : t -> int array
val of_array : int -> int array -> t
(** [of_array n vs] is the set over universe [n] containing [vs]. *)

val is_full : t -> bool
(** [is_full t] iff the set contains its whole universe. *)

val choose_nth : t -> int -> int
(** [choose_nth t k] is the [k]-th smallest element (0-based).
    @raise Invalid_argument if [k < 0 || k >= cardinal t]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [{0, 3, 17}]. *)
