(** Growable arrays of integers.

    Used for the insertion-ordered element lists that accompany knowledge
    bitsets (uniform random choice over a knowledge set needs O(1) access
    by rank) and for per-round metric series. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
(** @raise Invalid_argument if the index is out of bounds. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument if the index is out of bounds. *)

val push : t -> int -> unit
val pop : t -> int
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val clear : t -> unit
val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_array : t -> int array
val sub : t -> pos:int -> len:int -> int array
(** [sub t ~pos ~len] copies the slice [pos .. pos+len-1].
    @raise Invalid_argument on an invalid slice. *)

val of_array : int array -> t
val last : t -> int
(** @raise Invalid_argument if empty. *)

(** {2 Zero-copy slices}

    A slice is a read-only window into a vector's backing storage,
    taken without copying. It remains valid across later [push]es (the
    elements it covers are captured by reference), but its contents are
    unspecified if the covered range is mutated with {!set} or recycled
    via {!clear} followed by pushes. Intended for append-only vectors
    such as knowledge learn orders, where neither happens. *)

type slice

val slice : t -> pos:int -> len:int -> slice
(** [slice t ~pos ~len] is the window [pos .. pos+len-1], in O(1).
    @raise Invalid_argument on an invalid range. *)

val slice_length : slice -> int

val slice_get : slice -> int -> int
(** @raise Invalid_argument if the index is out of bounds. *)

val slice_iter : (int -> unit) -> slice -> unit
val slice_fold : ('a -> int -> 'a) -> 'a -> slice -> 'a

val slice_to_array : slice -> int array
(** Copies the window out. *)
