(** Adaptive compressed integer sets (Roaring-style).

    Drop-in companion to {!Bitset} for knowledge-scale universes: the
    universe [0 .. n-1] is split into containers of 65,536 consecutive
    ids, and each container independently picks a sorted array (sparse),
    a bitmap (dense) or run-length form (saturated) — so a set costs
    O(members) when sparse and O(1) per container once full, instead of
    O(n) bits always. Saturated containers also merge in O(1): the
    dominant case for converged knowledge sets.

    The {!freeze} / copy-on-write contract is identical to
    {!Bitset.freeze}: a frozen view is immutable and aliases the owner's
    storage; the owner privatises on its first subsequent write. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val create_unbounded : unit -> t
(** An empty set over an unbounded universe: [add]/[mem] accept any
    non-negative id and storage grows with the high-water container.
    Unbounded sets support point and query operations but not the
    binary set operations ({!union_into}, {!subset}, …), which require
    matching bounded capacities. Used by the trace invariant checker,
    whose per-node bookkeeping must not cost O(n) per node. *)

val capacity : t -> int
(** Universe size ([create]) or current high-water id + 1 (unbounded). *)

val cardinal : t -> int
(** Number of elements, maintained in O(1). *)

val is_empty : t -> bool

val is_full : t -> bool
(** [is_full t] iff a bounded set contains its whole universe. *)

val mem : t -> int -> bool
(** Membership test. @raise Invalid_argument if out of range. *)

val add : t -> int -> bool
(** [add t v] inserts [v]; returns [true] iff [v] was not already
    present. @raise Invalid_argument if out of range. *)

val remove : t -> int -> bool
(** [remove t v] deletes [v]; returns [true] iff [v] was present. *)

val copy : t -> t
(** Independent (deep, always-mutable) copy. *)

val freeze : t -> t
(** O(containers) immutable view aliasing the owner's storage; the
    owner stays mutable through copy-on-write. Same contract as
    {!Bitset.freeze}. *)

val is_frozen : t -> bool

val union_into : dst:t -> src:t -> int
(** [union_into ~dst ~src] adds every element of [src] to [dst] and
    returns the number of newly-added elements. O(containers) when the
    source containers are saturated — no per-element work.
    @raise Invalid_argument if capacities differ. *)

val union_into_with : dst:t -> src:t -> (int -> unit) -> int
(** Like {!union_into} but calls [f v] for every element newly added,
    in increasing order. This forces per-element enumeration, so it is
    the tracked-knowledge (small n) path; large-n merges use
    {!union_into}. *)

val inter_cardinal : t -> t -> int
val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val elements : t -> int list
val to_array : t -> int array
val of_array : int -> int array -> t

val choose_nth : t -> int -> int
(** [choose_nth t k] is the [k]-th smallest element (0-based), in
    O(containers + in-container select).
    @raise Invalid_argument if [k < 0 || k >= cardinal t]. *)

val rank : t -> int -> int
(** [rank t v] is the number of elements strictly below [v].
    @raise Invalid_argument if [v] is out of range. *)

val min_elt : t -> int
(** Smallest element. @raise Invalid_argument if the set is empty. *)

val memory_words : t -> int
(** Approximate heap words held by the set's payload (reporting aid). *)

val pp : Format.formatter -> t -> unit
