type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Intvec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Intvec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0
let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_array t = Array.sub t.data 0 t.len

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Intvec.sub: invalid slice";
  Array.sub t.data pos len

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

(* Zero-copy slices. A slice captures the backing array by reference, so
   it stays valid across later [push]es (including ones that grow and
   replace [t.data] — the captured array keeps the old elements) as long
   as the sliced range itself is not overwritten via [set]/[clear]+push.
   The append-only vectors this is used for (knowledge learn orders)
   satisfy that by construction. *)
type slice = { sdata : int array; spos : int; slen : int }

let slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Intvec.slice: invalid slice";
  { sdata = t.data; spos = pos; slen = len }

let slice_length s = s.slen

let slice_get s i =
  if i < 0 || i >= s.slen then invalid_arg "Intvec.slice_get: index out of bounds";
  s.sdata.(s.spos + i)

let slice_iter f s =
  for i = s.spos to s.spos + s.slen - 1 do
    f s.sdata.(i)
  done

let slice_fold f init s =
  let acc = ref init in
  slice_iter (fun v -> acc := f !acc v) s;
  !acc

let slice_to_array s = Array.sub s.sdata s.spos s.slen

let last t =
  if t.len = 0 then invalid_arg "Intvec.last: empty";
  t.data.(t.len - 1)
