(* Adaptive compressed integer sets (Roaring-style).

   The universe is split into containers of 2^16 consecutive ids; each
   container picks the cheapest of three representations for its local
   density and promotes itself as it fills:

   - [Arr]: a sorted array of the member ids' low 16 bits. O(members)
     memory — a node that knows 12 of 65,536 ids pays 12 words, not a
     2 KB bitmap. Promoted to [Bmp] past [arr_max] (= range/32, the
     memory crossover between 1 word/member and 1 bit/member).
   - [Bmp]: a dense bitmap, 32 bits per word (same packing and SWAR
     popcount as {!Bitset}).
   - [Run]: sorted disjoint (start, length) pairs. Containers collapse
     to a single full run the moment they saturate, which makes the
     dominant steady state of discovery runs — every node knows
     everyone — O(1) memory per container and O(1) to merge: a union
     whose source container is full replaces the destination container
     outright, and a union into a full destination is a no-op.

   Sharing mirrors {!Bitset}: [freeze] is an O(containers) immutable
   view; the owner keeps mutating through copy-on-write. Two levels:
   the frozen view aliases the owner's container-pointer array (the
   owner re-materialises private container records on its first write
   after a freeze), and each re-materialised record initially aliases
   the old payload array, copying it only when an in-place write lands
   (a representation change allocates a fresh payload anyway). A merge
   that learns nothing therefore never copies. *)

(* container kinds *)
let arr_kind = 0
let bmp_kind = 1
let run_kind = 2

type container = {
  mutable kind : int;
  mutable data : int array;
      (* Arr: sorted low-16 ids in [0..card-1];
         Bmp: 32-bit words; Run: [s0; l0; s1; l1; ..] over 2*nruns *)
  mutable ccard : int;
  mutable nruns : int;  (* Run only *)
  mutable cshared : bool;  (* [data] is aliased: copy before in-place write *)
}

type status = Owned | Shared | Frozen

type t = {
  mutable n : int;  (* universe for bounded sets; high-water capacity when unbounded *)
  unbounded : bool;
  mutable containers : container array;
  mutable card : int;
  mutable status : status;
}

(* Span of one container, 2^16 ids as in classic Roaring: a container's
   payload is at most 2048 words (one 64 KiB bitmap). Smaller spans were
   measured and rejected — 2^12 spans multiply the container count by
   16, and during a gossip flood every merge touches most containers, so
   the per-container bookkeeping (kind dispatch, copy-on-write record
   churn, subset prechecks) outweighs what the smaller payload copies
   save: deliver-phase time at n = 65,536 rose ~30% versus 2^16. *)
let container_bits = 16
let container_span = 1 lsl container_bits
let low_mask = container_span - 1

(* Stdlib.min/max are polymorphic (a C call per comparison); these show
   up in every hot path, so specialise them to ints. *)
let imin (a : int) b = if a < b then a else b
let imax (a : int) b = if a > b then a else b

(* One shared sentinel for "this container is empty": per-node knowledge
   sets at n = 1M would otherwise pay a fresh record per container per
   set. Mutators must replace it with a private record before writing
   ([writable] below); nothing ever mutates the sentinel itself. *)
let empty_c = { kind = arr_kind; data = [||]; ccard = 0; nruns = 0; cshared = true }

let containers_for n = (n + container_span - 1) lsr container_bits

let create n =
  if n < 0 then invalid_arg "Cset.create: negative capacity";
  {
    n;
    unbounded = false;
    containers = Array.make (containers_for n) empty_c;
    card = 0;
    status = Owned;
  }

let create_unbounded () =
  { n = 0; unbounded = true; containers = [||]; card = 0; status = Owned }

let capacity t = t.n
let cardinal t = t.card
let is_empty t = t.card = 0
let is_full t = (not t.unbounded) && t.card = t.n
let is_frozen t = t.status = Frozen

(* span of ids covered by container [ci] *)
let range_of t ci =
  if t.unbounded then container_span else imin container_span (t.n - (ci lsl container_bits))

let frozen_error () = invalid_arg "Cset: mutation of a frozen view"

let freeze t =
  if t.status = Frozen then t
  else begin
    t.status <- Shared;
    { n = t.n; unbounded = t.unbounded; containers = t.containers; card = t.card; status = Frozen }
  end

(* First write after a freeze: private container records over the shared
   payload arrays. O(containers), i.e. O(n / 65536). *)
let unshare_set t =
  match t.status with
  | Owned -> ()
  | Shared ->
    t.containers <-
      Array.map
        (fun c ->
          if c == empty_c then c
          else { kind = c.kind; data = c.data; ccard = c.ccard; nruns = c.nruns; cshared = true })
        t.containers;
    t.status <- Owned
  | Frozen -> frozen_error ()

(* Writable container record at [ci]; call only with [t.status = Owned]. *)
let writable t ci =
  let c = t.containers.(ci) in
  if c == empty_c then begin
    let c' = { kind = arr_kind; data = [||]; ccard = 0; nruns = 0; cshared = false } in
    t.containers.(ci) <- c';
    c'
  end
  else c

(* data array about to be written in place: privatise if aliased *)
let own_data c =
  if c.cshared then begin
    c.data <- Array.copy c.data;
    c.cshared <- false
  end

(* SWAR popcount over 32-bit values held in native ints (see Bitset). *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let words_for range = (range + 31) lsr 5

(* Arr -> Bmp promotion threshold: the memory crossover (1 word/member
   vs 1 bit/member), floored so tiny containers still start as arrays. *)
let arr_max range = imax 8 (range lsr 5)

(* ---- per-kind membership ---- *)

let arr_rank data card v =
  (* number of elements < v; also the insertion point *)
  let lo = ref 0 and hi = ref card in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if data.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let arr_mem data card v =
  let i = arr_rank data card v in
  i < card && data.(i) = v

let run_index_mem data nruns v =
  let lo = ref 0 and hi = ref (nruns - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let s = data.(2 * mid) and l = data.((2 * mid) + 1) in
    if v < s then hi := mid - 1 else if v >= s + l then lo := mid + 1 else found := true
  done;
  !found

let cmem c v =
  if c.ccard = 0 then false
  else if c.kind = arr_kind then arr_mem c.data c.ccard v
  else if c.kind = bmp_kind then c.data.(v lsr 5) land (1 lsl (v land 31)) <> 0
  else run_index_mem c.data c.nruns v

let check t v =
  if v < 0 || ((not t.unbounded) && v >= t.n) then invalid_arg "Cset: element out of range"

let mem t v =
  check t v;
  let ci = v lsr container_bits in
  if ci >= Array.length t.containers then false
  else cmem t.containers.(ci) (v land low_mask)

(* ---- representation changes (always produce a private payload) ---- *)

let to_bmp c range =
  if c.kind <> bmp_kind then begin
    let words = Array.make (words_for range) 0 in
    (if c.kind = arr_kind then
       for i = 0 to c.ccard - 1 do
         let v = c.data.(i) in
         words.(v lsr 5) <- words.(v lsr 5) lor (1 lsl (v land 31))
       done
     else
       for r = 0 to c.nruns - 1 do
         let s = c.data.(2 * r) and l = c.data.((2 * r) + 1) in
         for v = s to s + l - 1 do
           words.(v lsr 5) <- words.(v lsr 5) lor (1 lsl (v land 31))
         done
       done);
    c.kind <- bmp_kind;
    c.data <- words;
    c.nruns <- 0;
    c.cshared <- false
  end

let make_full c range =
  c.kind <- run_kind;
  c.data <- [| 0; range |];
  c.nruns <- 1;
  c.ccard <- range;
  c.cshared <- false

(* collapse a just-saturated container to the O(1) full-run form *)
let maybe_collapse c range = if c.ccard = range then make_full c range

(* ---- add / remove ---- *)

let ensure_containers t ci =
  if ci >= Array.length t.containers then begin
    let len = imax (ci + 1) (imax 1 (2 * Array.length t.containers)) in
    let a = Array.make len empty_c in
    Array.blit t.containers 0 a 0 (Array.length t.containers);
    t.containers <- a
  end

let add t v =
  check t v;
  if t.status = Frozen then frozen_error ();
  let ci = v lsr container_bits in
  let low = v land low_mask in
  if ci < Array.length t.containers && cmem t.containers.(ci) low then false
  else begin
    unshare_set t;
    if t.unbounded then begin
      ensure_containers t ci;
      if v >= t.n then t.n <- v + 1
    end;
    let range = range_of t ci in
    let c = writable t ci in
    (if c.kind = arr_kind then begin
       if c.ccard >= arr_max range then begin
         to_bmp c range;
         own_data c;
         c.data.(low lsr 5) <- c.data.(low lsr 5) lor (1 lsl (low land 31))
       end
       else begin
         let pos = arr_rank c.data c.ccard low in
         if c.ccard = Array.length c.data then begin
           (* grow (always produces a private array, so no own_data) *)
           let cap = imax 8 (2 * Array.length c.data) in
           let a = Array.make cap 0 in
           Array.blit c.data 0 a 0 pos;
           Array.blit c.data pos a (pos + 1) (c.ccard - pos);
           a.(pos) <- low;
           c.data <- a;
           c.cshared <- false
         end
         else begin
           own_data c;
           Array.blit c.data pos c.data (pos + 1) (c.ccard - pos);
           c.data.(pos) <- low
         end
       end
     end
     else if c.kind = bmp_kind then begin
       own_data c;
       c.data.(low lsr 5) <- c.data.(low lsr 5) lor (1 lsl (low land 31))
     end
     else begin
       (* non-full run container gaining a member: go through the bitmap *)
       to_bmp c range;
       c.data.(low lsr 5) <- c.data.(low lsr 5) lor (1 lsl (low land 31))
     end);
    c.ccard <- c.ccard + 1;
    t.card <- t.card + 1;
    maybe_collapse c range;
    true
  end

let remove t v =
  check t v;
  if t.status = Frozen then frozen_error ();
  let ci = v lsr container_bits in
  let low = v land low_mask in
  if ci >= Array.length t.containers || not (cmem t.containers.(ci) low) then false
  else begin
    unshare_set t;
    let c = writable t ci in
    (if c.kind = run_kind then to_bmp c (range_of t ci);
     if c.kind = bmp_kind then begin
       own_data c;
       c.data.(low lsr 5) <- c.data.(low lsr 5) land lnot (1 lsl (low land 31))
     end
     else begin
       own_data c;
       let pos = arr_rank c.data c.ccard low in
       Array.blit c.data (pos + 1) c.data pos (c.ccard - pos - 1)
     end);
    c.ccard <- c.ccard - 1;
    t.card <- t.card - 1;
    true
  end

(* ---- iteration ---- *)

let rec iter_word_bits base bits f =
  if bits <> 0 then begin
    let low = bits land -bits in
    f (base + popcount (low - 1));
    iter_word_bits base (bits lxor low) f
  end

let citer c base f =
  if c.ccard > 0 then
    if c.kind = arr_kind then
      for i = 0 to c.ccard - 1 do
        f (base + c.data.(i))
      done
    else if c.kind = bmp_kind then
      for w = 0 to Array.length c.data - 1 do
        let bits = Array.unsafe_get c.data w in
        if bits <> 0 then iter_word_bits (base + (w lsl 5)) bits f
      done
    else
      for r = 0 to c.nruns - 1 do
        let s = c.data.(2 * r) and l = c.data.((2 * r) + 1) in
        for v = base + s to base + s + l - 1 do
          f v
        done
      done

let iter f t =
  for ci = 0 to Array.length t.containers - 1 do
    citer t.containers.(ci) (ci lsl container_bits) f
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let elements t = List.rev (fold (fun acc v -> v :: acc) [] t)

let to_array t =
  let out = Array.make t.card 0 in
  let i = ref 0 in
  iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    t;
  out

let of_array n vs =
  let t = create n in
  Array.iter (fun v -> ignore (add t v)) vs;
  t

(* ---- rank / select ---- *)

let choose_nth t k =
  if k < 0 || k >= t.card then invalid_arg "Cset.choose_nth: rank out of range";
  let remaining = ref k in
  let ci = ref 0 in
  while !remaining >= t.containers.(!ci).ccard do
    remaining := !remaining - t.containers.(!ci).ccard;
    incr ci
  done;
  let c = t.containers.(!ci) in
  let base = !ci lsl container_bits in
  let k = !remaining in
  if c.kind = arr_kind then base + c.data.(k)
  else if c.kind = run_kind then begin
    let k = ref k in
    let r = ref 0 in
    while !k >= c.data.((2 * !r) + 1) do
      k := !k - c.data.((2 * !r) + 1);
      incr r
    done;
    base + c.data.(2 * !r) + !k
  end
  else begin
    let k = ref k in
    let w = ref 0 in
    let pc = ref (popcount c.data.(0)) in
    while !k >= !pc do
      k := !k - !pc;
      incr w;
      pc := popcount c.data.(!w)
    done;
    (* k-th set bit of word w *)
    let bits = ref c.data.(!w) in
    for _ = 1 to !k do
      bits := !bits land (!bits - 1)
    done;
    let low = !bits land - !bits in
    base + (!w lsl 5) + popcount (low - 1)
  end

let rank t v =
  check t v;
  let ci = v lsr container_bits in
  let low = v land low_mask in
  let acc = ref 0 in
  for i = 0 to imin ci (Array.length t.containers) - 1 do
    acc := !acc + t.containers.(i).ccard
  done;
  if ci < Array.length t.containers then begin
    let c = t.containers.(ci) in
    if c.ccard > 0 then
      if c.kind = arr_kind then acc := !acc + arr_rank c.data c.ccard low
      else if c.kind = bmp_kind then begin
        for w = 0 to (low lsr 5) - 1 do
          acc := !acc + popcount c.data.(w)
        done;
        acc := !acc + popcount (c.data.(low lsr 5) land ((1 lsl (low land 31)) - 1))
      end
      else begin
        let r = ref 0 in
        let stop = ref false in
        while (not !stop) && !r < c.nruns do
          let s = c.data.(2 * !r) and l = c.data.((2 * !r) + 1) in
          if low < s then stop := true
          else if low < s + l then begin
            acc := !acc + (low - s);
            stop := true
          end
          else begin
            acc := !acc + l;
            incr r
          end
        done
      end
  end;
  !acc

let min_elt t =
  if t.card = 0 then invalid_arg "Cset.min_elt: empty set";
  let ci = ref 0 in
  while t.containers.(!ci).ccard = 0 do
    incr ci
  done;
  let c = t.containers.(!ci) in
  let base = !ci lsl container_bits in
  if c.kind = arr_kind then base + c.data.(0)
  else if c.kind = run_kind then base + c.data.(0)
  else begin
    let w = ref 0 in
    while c.data.(!w) = 0 do
      incr w
    done;
    let low = c.data.(!w) land -c.data.(!w) in
    base + (!w lsl 5) + popcount (low - 1)
  end

(* ---- union ---- *)

let same_capacity a b =
  if a.unbounded || b.unbounded || a.n <> b.n then invalid_arg "Cset: capacity mismatch"

(* every member of container [a] present in container [b]? Word-parallel
   for bitmap pairs; containers are checked smallest-representation
   first, so the per-element fallback only ever walks small arrays. *)
let csubset a b range =
  if a.ccard = 0 then true
  else if a.ccard > b.ccard then false
  else if b.ccard = range then true
  else if a.kind = bmp_kind && b.kind = bmp_kind then begin
    let ok = ref true in
    let w = ref 0 in
    let nw = Array.length a.data in
    while !ok && !w < nw do
      if a.data.(!w) land lnot b.data.(!w) <> 0 then ok := false;
      incr w
    done;
    !ok
  end
  else begin
    let ok = ref true in
    (try citer a 0 (fun v -> if not (cmem b v) then (ok := false; raise Exit)) with Exit -> ());
    !ok
  end

(* merge sorted arrays [a] (na) and [b] (nb) into fresh [out]; calls [f]
   on members of [b] absent from [a], ascending; returns union size *)
let merge_sorted a na b nb out f base =
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      out.(!k) <- x;
      incr i
    end
    else if x > y then begin
      out.(!k) <- y;
      (match f with Some f -> f (base + y) | None -> ());
      incr j
    end
    else begin
      out.(!k) <- x;
      incr i;
      incr j
    end;
    incr k
  done;
  while !i < na do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < nb do
    out.(!k) <- b.(!j);
    (match f with Some f -> f (base + b.(!j)) | None -> ());
    incr j;
    incr k
  done;
  !k

(* count of the union of two sorted arrays, without writing *)
let count_union a na b nb =
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    incr k
  done;
  !k + (na - !i) + (nb - !j)

let rec union_words_with dw sw w stop acc base f =
  if w >= stop then acc
  else begin
    let d = Array.unsafe_get dw w and s = Array.unsafe_get sw w in
    let fresh = s land lnot d in
    if fresh = 0 then union_words_with dw sw (w + 1) stop acc base f
    else begin
      Array.unsafe_set dw w (d lor s);
      (match f with Some f -> iter_word_bits (base + (w lsl 5)) fresh f | None -> ());
      union_words_with dw sw (w + 1) stop (acc + popcount fresh) base f
    end
  end

(* add every member of [src] absent from [dst-container c]; [c] must be
   writable. Returns the number added; calls [f] per fresh id ascending. *)
let cunion t ci c (src : container) base f =
  let range = range_of t ci in
  if src.ccard = range then begin
    (* full source: the destination becomes full outright *)
    let added = range - c.ccard in
    (match f with
    | Some f ->
      (* enumerate the complement of c, ascending (tracked mode only) *)
      if c.ccard = 0 then
        for v = 0 to range - 1 do
          f (base + v)
        done
      else
        for v = 0 to range - 1 do
          if not (cmem c v) then f (base + v)
        done
    | None -> ());
    make_full c range;
    added
  end
  else if c.kind = arr_kind && src.kind = arr_kind then begin
    let un = count_union c.data c.ccard src.data src.ccard in
    if un <= arr_max range then begin
      let out = Array.make (imax 8 un) 0 in
      let k = merge_sorted c.data c.ccard src.data src.ccard out f base in
      let added = k - c.ccard in
      c.data <- out;
      c.cshared <- false;
      c.ccard <- k;
      added
    end
    else begin
      (* merged array would cross the promotion threshold: go dense *)
      to_bmp c range;
      let before = c.ccard in
      for i = 0 to src.ccard - 1 do
        let v = src.data.(i) in
        let w = v lsr 5 and bit = 1 lsl (v land 31) in
        if c.data.(w) land bit = 0 then begin
          c.data.(w) <- c.data.(w) lor bit;
          c.ccard <- c.ccard + 1;
          match f with Some f -> f (base + v) | None -> ()
        end
      done;
      maybe_collapse c range;
      c.ccard - before
    end
  end
  else begin
    (* general path: destination as bitmap, absorb the source *)
    to_bmp c range;
    own_data c;
    let before = c.ccard in
    (if src.kind = arr_kind then
       for i = 0 to src.ccard - 1 do
         let v = src.data.(i) in
         let w = v lsr 5 and bit = 1 lsl (v land 31) in
         if c.data.(w) land bit = 0 then begin
           c.data.(w) <- c.data.(w) lor bit;
           c.ccard <- c.ccard + 1;
           match f with Some f -> f (base + v) | None -> ()
         end
       done
     else if src.kind = bmp_kind then begin
       let nw = Array.length src.data in
       c.ccard <- c.ccard + union_words_with c.data src.data 0 nw 0 base f
     end
     else
       for r = 0 to src.nruns - 1 do
         let s = src.data.(2 * r) and l = src.data.((2 * r) + 1) in
         for v = s to s + l - 1 do
           let w = v lsr 5 and bit = 1 lsl (v land 31) in
           if c.data.(w) land bit = 0 then begin
             c.data.(w) <- c.data.(w) lor bit;
             c.ccard <- c.ccard + 1;
             match f with Some f -> f (base + v) | None -> ()
           end
         done
       done);
    maybe_collapse c range;
    c.ccard - before
  end

let union_gen ~dst ~src f =
  same_capacity dst src;
  if dst.status = Frozen then frozen_error ();
  if src.card = 0 || dst.card = dst.n then 0
  else begin
    (* A frozen source's payload arrays are immutable (the owner
       re-materialises on its first post-freeze write), so an empty
       destination container can alias them outright — the common "first
       big merge" of a snapshot into a near-empty set costs O(1) per
       container instead of an allocate-and-copy. *)
    let alias_ok = (match f with None -> true | Some _ -> false) && src.status = Frozen in
    let added = ref 0 in
    for ci = 0 to Array.length dst.containers - 1 do
      let sc = src.containers.(ci) in
      if sc.ccard > 0 && dst.containers.(ci).ccard < range_of dst ci then begin
        (* write-free pre-check: a no-op union must keep sharing. The
           subset test is word-parallel for bitmap pairs — never the
           per-element probe the hot no-op case (re-delivered snapshots)
           used to pay. *)
        let dc0 = dst.containers.(ci) in
        if alias_ok && dc0.ccard = 0 then begin
          unshare_set dst;
          dst.containers.(ci) <-
            { kind = sc.kind; data = sc.data; ccard = sc.ccard; nruns = sc.nruns; cshared = true };
          added := !added + sc.ccard
        end
        else if alias_ok && dc0.kind = arr_kind && sc.kind = bmp_kind then begin
          (* Small-array destination vs big frozen bitmap: probe the
             array's members against the bitmap instead of materialising
             a destination bitmap and scanning the source. The typical
             first delivery of a head's view — to a node that learned
             most of what it knows *from* that head — is a subset, and
             then the container aliases the source payload outright;
             otherwise one copy of the source absorbs the leftovers,
             still one pass cheaper than promote-and-scan. *)
          let miss = ref 0 in
          for i = 0 to dc0.ccard - 1 do
            if not (cmem sc dc0.data.(i)) then incr miss
          done;
          unshare_set dst;
          if !miss = 0 then begin
            dst.containers.(ci) <-
              { kind = sc.kind; data = sc.data; ccard = sc.ccard; nruns = sc.nruns;
                cshared = true };
            added := !added + (sc.ccard - dc0.ccard)
          end
          else begin
            (* [writable] may return [dc0] itself (already-owned set):
               capture the array payload before repurposing the record *)
            let avals = dc0.data and acard = dc0.ccard in
            let c = writable dst ci in
            c.kind <- bmp_kind;
            c.data <- Array.copy sc.data;
            c.nruns <- 0;
            c.cshared <- false;
            c.ccard <- sc.ccard;
            for i = 0 to acard - 1 do
              let v = avals.(i) in
              let w = v lsr 5 and bit = 1 lsl (v land 31) in
              if c.data.(w) land bit = 0 then begin
                c.data.(w) <- c.data.(w) lor bit;
                c.ccard <- c.ccard + 1
              end
            done;
            added := !added + (c.ccard - acard);
            maybe_collapse c (range_of dst ci)
          end
        end
        else begin
          let fresh_exists =
            sc.ccard > dc0.ccard || not (csubset sc dc0 (range_of dst ci))
          in
          if fresh_exists then begin
            unshare_set dst;
            let c = writable dst ci in
            added := !added + cunion dst ci c sc (ci lsl container_bits) f
          end
        end
      end
    done;
    dst.card <- dst.card + !added;
    !added
  end

let union_into ~dst ~src = union_gen ~dst ~src None
let union_into_with ~dst ~src f = union_gen ~dst ~src (Some f)

(* ---- set predicates ---- *)

let subset a b =
  same_capacity a b;
  a.card <= b.card
  &&
  let ok = ref true in
  let nc = Array.length a.containers in
  let ci = ref 0 in
  while !ok && !ci < nc do
    if not (csubset a.containers.(!ci) b.containers.(!ci) (range_of a !ci)) then ok := false;
    incr ci
  done;
  !ok

let equal a b =
  (not a.unbounded) && (not b.unbounded) && a.n = b.n && a.card = b.card && subset a b

let inter_cardinal a b =
  same_capacity a b;
  let total = ref 0 in
  for ci = 0 to Array.length a.containers - 1 do
    let ca = a.containers.(ci) and cb = b.containers.(ci) in
    if ca.ccard > 0 && cb.ccard > 0 then begin
      let range = range_of a ci in
      if ca.ccard = range then total := !total + cb.ccard
      else if cb.ccard = range then total := !total + ca.ccard
      else if ca.kind = bmp_kind && cb.kind = bmp_kind then
        for w = 0 to Array.length ca.data - 1 do
          total := !total + popcount (ca.data.(w) land cb.data.(w))
        done
      else begin
        (* iterate the smaller, probe the larger *)
        let small, big = if ca.ccard <= cb.ccard then (ca, cb) else (cb, ca) in
        citer small 0 (fun v -> if cmem big v then incr total)
      end
    end
  done;
  !total

let copy t =
  {
    n = t.n;
    unbounded = t.unbounded;
    containers =
      Array.map
        (fun c ->
          if c.ccard = 0 then empty_c
          else
            { kind = c.kind; data = Array.copy c.data; ccard = c.ccard; nruns = c.nruns;
              cshared = false })
        t.containers;
    card = t.card;
    status = Owned;
  }

(* Words of heap payload held by the set (container payloads plus the
   pointer array); used by the scaling experiments to report knowledge
   memory without OS-level noise. Shared payloads are counted once per
   alias, which over-reports frozen views — fine for a ballpark. *)
let memory_words t =
  let total = ref (Array.length t.containers + 4) in
  Array.iter (fun c -> if c != empty_c then total := !total + Array.length c.data + 6) t.containers;
  !total

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" v)
    t;
  Format.fprintf ppf "}"
