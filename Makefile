# Convenience entry points; everything below is plain dune.

.PHONY: all build test check quick experiments bench clean

all: build

build:
	dune build

test:
	dune runtest

# The PR gate: build, full test suite, then the quick experiment suite
# end-to-end on a 2-worker pool (exercises the parallel executor and the
# determinism guarantee on a real run).
check:
	dune build
	dune runtest
	REPRO_JOBS=2 dune exec bin/experiments.exe -- --quick --results-dir _build/check-results

quick:
	dune exec bin/experiments.exe -- --quick

experiments:
	dune exec bin/experiments.exe

bench:
	dune exec bench/main.exe

clean:
	dune clean
