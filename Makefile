# Convenience entry points; everything below is plain dune.

.PHONY: all build test check quick experiments bench bench-json trace-golden clean

all: build

build:
	dune build

test:
	dune runtest

# The PR gate: build, full test suite, then the quick experiment suite
# end-to-end on a 2-worker pool with the online trace invariant checker
# attached to every run (exercises the parallel executor, the
# determinism guarantee, and the event-stream invariants on a real run).
check:
	dune build
	dune runtest
	REPRO_JOBS=2 REPRO_TRACE_INVARIANTS=1 dune exec bin/experiments.exe -- --quick --results-dir _build/check-results

# Regenerate the golden traces test/test_trace.ml compares against.
# Only needed when the engines' event streams intentionally change;
# review the diff before committing.
trace-golden:
	dune build bin/discovery_cli.exe
	for a in flooding swamping pointer_jump name_dropper min_pointer rand_gossip hm; do \
	  dune exec bin/discovery_cli.exe -- trace --algo $$a --topology kout:3 -n 8 --seed 1 --check \
	    -o test/golden/$$a.jsonl || exit 1; \
	done
	dune exec bin/discovery_cli.exe -- trace --async --algo hm --topology kout:3 -n 8 --seed 1 --check \
	  -o test/golden/hm_async.jsonl

quick:
	dune exec bin/experiments.exe -- --quick

experiments:
	dune exec bin/experiments.exe

bench:
	dune exec bench/main.exe

# Machine-readable benchmark trajectory: microbenchmarks only, written
# to BENCH_results.json (ns/run and minor words/run per subject).
bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
