(* End-to-end correctness of every algorithm: completion on the topology
   families where completion is guaranteed, documented non-completion
   elsewhere, and the knowledge-soundness invariants. *)

open Repro_util
open Repro_graph
open Repro_discovery

let build family ~n ~seed =
  let rng = Rng.substream ~seed ~index:0x70b0 in
  Generate.build family ~rng ~n

let exec ?(n = 96) ?(seed = 1) ?max_rounds algo family =
  Run.exec_spec { Run.default_spec with Run.seed; max_rounds } algo (build family ~n ~seed)

let check_completes ?(n = 96) ?max_rounds algo family () =
  let r = exec ~n ?max_rounds algo family in
  if not r.Run.completed then
    Alcotest.failf "%s did not complete on %s within %d rounds" r.Run.algorithm
      (Generate.family_name family) r.Run.rounds

let check_dnf ?(n = 64) ~max_rounds algo family () =
  let r = exec ~n ~max_rounds algo family in
  if r.Run.completed then
    Alcotest.failf "%s unexpectedly completed on %s in %d rounds" r.Run.algorithm
      (Generate.family_name family) r.Run.rounds

(* The families on which complete discovery is achievable by every
   algorithm class (symmetric, or strongly connected). *)
let universal_families =
  [
    Generate.Path;
    Generate.Cycle;
    Generate.Directed_cycle;
    Generate.Star;
    Generate.Binary_tree;
    Generate.Grid;
    Generate.Hypercube;
    Generate.Lollipop;
    Generate.K_out 3;
    Generate.Clustered (4, 2);
  ]

(* Families that are only weakly connected: push-capable algorithms
   complete, flooding and pull-only RPJ provably cannot. *)
let weak_only_families = [ Generate.Inward_star; Generate.Seeded_directory (8, 2) ]

let completion_cases (algo : Algorithm.t) =
  List.map
    (fun family ->
      Alcotest.test_case
        (Printf.sprintf "%s on %s" algo.Algorithm.name (Generate.family_name family))
        `Quick
        (check_completes ~max_rounds:2000 algo family))
    universal_families

let push_algorithms =
  [
    Swamping.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let weak_only_cases =
  List.concat_map
    (fun family ->
      List.map
        (fun (algo : Algorithm.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" algo.Algorithm.name (Generate.family_name family))
            `Quick
            (check_completes ~max_rounds:2000 algo family))
        push_algorithms
      @ [
          Alcotest.test_case
            (Printf.sprintf "flooding cannot finish on %s" (Generate.family_name family))
            `Quick
            (check_dnf ~max_rounds:400 Flooding.algorithm family);
          Alcotest.test_case
            (Printf.sprintf "pointer_jump cannot finish on %s" (Generate.family_name family))
            `Quick
            (check_dnf ~max_rounds:400 Pointer_jump.algorithm family);
        ])
    weak_only_families

(* Invariant harness: run an algorithm with a wrapper that checks
   per-round invariants. *)
let check_invariants (algo : Algorithm.t) family () =
  let n = 64 and seed = 2 in
  let topology = build family ~n ~seed in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        algo.Algorithm.make ctx)
  in
  let prev_card = Array.make n 0 in
  let handlers =
    {
      Repro_engine.Sim.round_begin =
        (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver =
        (fun ~node ~src ~round:_ payload -> instances.(node).Algorithm.receive ~src payload);
    }
  in
  let stop ~round:_ ~alive:_ =
    Array.iteri
      (fun v inst ->
        let k = inst.Algorithm.knowledge in
        let card = Knowledge.cardinal k in
        (* monotone growth *)
        if card < prev_card.(v) then Alcotest.failf "node %d knowledge shrank" v;
        prev_card.(v) <- card;
        (* self-knowledge and initial neighbors never lost *)
        if not (Knowledge.knows k v) then Alcotest.failf "node %d forgot itself" v;
        Array.iter
          (fun u ->
            if not (Knowledge.knows k u) then Alcotest.failf "node %d forgot a neighbor" v)
          (Topology.out_neighbors topology v))
      instances;
    Array.for_all (fun i -> Knowledge.is_complete i.Algorithm.knowledge) instances
  in
  let outcome =
    Repro_engine.Sim.run ~n
      ~config:{ Repro_engine.Sim.default_config with Repro_engine.Sim.max_rounds = 2000 }
      ~handlers ~measure:Payload.measure ~stop ()
  in
  Alcotest.(check bool) "completed" true outcome.Repro_engine.Sim.completed

let invariant_cases =
  List.concat_map
    (fun (algo : Algorithm.t) ->
      List.map
        (fun family ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" algo.Algorithm.name (Generate.family_name family))
            `Quick (check_invariants algo family))
        [ Generate.K_out 3; Generate.Path; Generate.Directed_cycle ])
    Registry.all

(* hm ablation sanity *)
let test_hm_nobroadcast_stalls () =
  check_dnf ~n:96 ~max_rounds:300 (Hm_gossip.with_variant ~broadcast:Hm_gossip.Off ()) (Generate.K_out 3) ()

let test_hm_full_completes () =
  check_completes ~n:96 ~max_rounds:100 (Hm_gossip.with_variant ~upward:Hm_gossip.Full ())
    (Generate.K_out 3) ()

let test_hm_cap_completes_slowly () =
  (* a generous cap still completes, just not quickly *)
  let capped = Hm_gossip.with_variant ~broadcast:(Hm_gossip.Cap 32) () in
  let r_cap = exec ~n:96 ~max_rounds:2000 capped (Generate.K_out 3) in
  let r_full = exec ~n:96 ~max_rounds:2000 Hm_gossip.algorithm (Generate.K_out 3) in
  Alcotest.(check bool) "capped completes" true r_cap.Run.completed;
  Alcotest.(check bool) "uncapped no slower" true (r_full.Run.rounds <= r_cap.Run.rounds)

let test_rand_modes_complete () =
  List.iter
    (fun spec ->
      match Registry.find spec with
      | Error e -> Alcotest.fail e
      | Ok algo -> check_completes ~n:96 ~max_rounds:500 algo (Generate.K_out 3) ())
    [ "rand:push/f1"; "rand:pull/f1"; "rand:push_pull/f2"; "rand:push_pull/f1/nbr" ]

(* Complexity shape guards: cheap regression tests asserting the
   qualitative ordering the paper claims, on a mid-size instance. *)
let test_round_ordering () =
  let n = 1024 in
  let rounds algo =
    let r = exec ~n ~max_rounds:2000 algo (Generate.K_out 3) in
    Alcotest.(check bool) (algo.Algorithm.name ^ " completed") true r.Run.completed;
    r.Run.rounds
  in
  let hm = rounds Hm_gossip.algorithm in
  let rand = rounds Rand_gossip.algorithm in
  let nd = rounds Name_dropper.algorithm in
  if not (hm < rand && rand < nd) then
    Alcotest.failf "expected hm (%d) < rand_gossip (%d) < name_dropper (%d)" hm rand nd;
  if hm > 12 then Alcotest.failf "hm took %d rounds at n=%d — sub-logarithmic claim broken" hm n

let test_swamping_message_blowup () =
  let n = 256 in
  let r_sw = exec ~n Swamping.algorithm (Generate.K_out 3) in
  let r_hm = exec ~n Hm_gossip.algorithm (Generate.K_out 3) in
  Alcotest.(check bool) "swamping quadratic vs hm near-linear" true
    (r_sw.Run.messages > 10 * r_hm.Run.messages)

let () =
  Alcotest.run "algorithms"
    [
      ("flooding completes", completion_cases Flooding.algorithm);
      ("swamping completes", completion_cases Swamping.algorithm);
      ("pointer_jump completes", completion_cases Pointer_jump.algorithm);
      ("name_dropper completes", completion_cases Name_dropper.algorithm);
      ("min_pointer completes", completion_cases Min_pointer.algorithm);
      ("rand_gossip completes", completion_cases Rand_gossip.algorithm);
      ("hm completes", completion_cases Hm_gossip.algorithm);
      ("weakly-connected-only inputs", weak_only_cases);
      ("per-round invariants", invariant_cases);
      ( "variants",
        [
          Alcotest.test_case "hm without broadcast stalls" `Quick test_hm_nobroadcast_stalls;
          Alcotest.test_case "hm full reports complete" `Quick test_hm_full_completes;
          Alcotest.test_case "hm capped broadcast completes" `Quick test_hm_cap_completes_slowly;
          Alcotest.test_case "rand_gossip modes complete" `Quick test_rand_modes_complete;
        ] );
      ( "complexity shapes",
        [
          Alcotest.test_case "round ordering hm < rand < nd" `Slow test_round_ordering;
          Alcotest.test_case "swamping message blowup" `Quick test_swamping_message_blowup;
        ] );
    ]
