(* Tests for the domain pool: result ordering, exception propagation,
   nested-use refusal, and the sequential fallback. *)

open Repro_util

exception Boom of int

let indices n = Array.init n (fun i -> fun () -> i)

let test_ordering () =
  (* results come back in task order regardless of scheduling *)
  let tasks =
    Array.init 64 (fun i ->
        fun () ->
         (* stagger task costs so domains genuinely interleave *)
         let acc = ref 0 in
         for k = 1 to (i mod 7) * 10_000 do
           acc := !acc + k
         done;
         ignore !acc;
         i * i)
  in
  let expected = Array.init 64 (fun i -> i * i) in
  Alcotest.(check (array int)) "jobs=4 in order" expected (Pool.run ~jobs:4 tasks);
  Alcotest.(check (array int)) "jobs=1 same" expected (Pool.run ~jobs:1 tasks)

let test_jobs_exceed_tasks () =
  Alcotest.(check (array int))
    "more workers than tasks" (Array.init 3 Fun.id)
    (Pool.run ~jobs:16 (indices 3))

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.run ~jobs:4 [||]);
  Alcotest.(check (array int)) "singleton" [| 0 |] (Pool.run ~jobs:4 (indices 1))

let test_exception_propagates () =
  (* the lowest failing index is re-raised, deterministically *)
  let tasks =
    Array.init 16 (fun i -> fun () -> if i mod 5 = 2 then raise (Boom i) else i)
  in
  List.iter
    (fun jobs ->
      match Pool.run ~jobs tasks with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i -> Alcotest.(check int) (Printf.sprintf "jobs=%d lowest" jobs) 2 i)
    [ 1; 4 ]

let test_nested_refused () =
  (* a parallel region inside a pool task is refused... *)
  (match Pool.run ~jobs:2 [| (fun () -> Pool.run ~jobs:2 (indices 4)); (fun () -> [||]) |] with
  | _ -> Alcotest.fail "nested parallel run unexpectedly succeeded"
  | exception Invalid_argument _ -> ());
  (* ...but a sequential (jobs=1) sub-run anywhere is fine *)
  let nested =
    Pool.run ~jobs:2
      (Array.init 4 (fun i -> fun () -> Array.to_list (Pool.run ~jobs:1 (indices (i + 1)))))
  in
  Alcotest.(check int) "sequential sub-runs allowed" 4 (Array.length nested);
  Array.iteri
    (fun i l -> Alcotest.(check (list int)) "sub-result" (List.init (i + 1) Fun.id) l)
    nested

let test_map () =
  Alcotest.(check (list int))
    "map keeps list order" [ 1; 4; 9; 16; 25 ]
    (Pool.map ~jobs:3 (fun x -> x * x) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list int)) "map on empty" [] (Pool.map ~jobs:3 Fun.id [])

let test_parallel_matches_sequential () =
  (* a mini workload shaped like the harness: per-task private rng *)
  let work seed =
    let rng = Rng.create ~seed in
    let acc = ref 0 in
    for _ = 1 to 1000 do
      acc := !acc + Rng.int rng 1000
    done;
    !acc
  in
  let seeds = List.init 20 (fun i -> i + 1) in
  Alcotest.(check (list int))
    "jobs=8 equals jobs=1"
    (Pool.map ~jobs:1 work seeds)
    (Pool.map ~jobs:8 work seeds)

let test_default_jobs_env () =
  Unix.putenv "REPRO_JOBS" "3";
  Alcotest.(check int) "REPRO_JOBS honoured" 3 (Pool.default_jobs ());
  Unix.putenv "REPRO_JOBS" "nope";
  (match Pool.default_jobs () with
  | _ -> Alcotest.fail "expected Invalid_argument for bad REPRO_JOBS"
  | exception Invalid_argument _ -> ());
  Unix.putenv "REPRO_JOBS" "1";
  Alcotest.(check int) "restored" 1 (Pool.default_jobs ())

let () =
  Alcotest.run "pool"
    [
      ( "run",
        [
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested use refused" `Quick test_nested_refused;
        ] );
      ( "map",
        [
          Alcotest.test_case "order" `Quick test_map;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential;
        ] );
      ( "defaults", [ Alcotest.test_case "REPRO_JOBS" `Quick test_default_jobs_env ] );
    ]
