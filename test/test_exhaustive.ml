(* Exhaustive verification on small universes: every weakly-connected
   directed knowledge graph on 3 and 4 nodes (there are 4,096 edge
   subsets on 4 nodes alone), every push-capable algorithm, two seeds —
   a miniature model checker for completion. Small worlds are where
   structural corner cases (islands, one-way sinks, asymmetric pockets)
   actually live; the custody bug fixed during development shows up on a
   1,024-node path but has 4-node analogues. *)

open Repro_graph
open Repro_discovery

let all_digraphs n =
  let pairs =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u <> v then Some (u, v) else None) (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let m = List.length pairs in
  List.init (1 lsl m) (fun mask ->
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) pairs)

let connected_topologies n =
  List.filter_map
    (fun edges ->
      let t = Topology.create ~n ~edges in
      if Analyze.is_weakly_connected t then Some t else None)
    (all_digraphs n)

let algorithms =
  [
    Swamping.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

(* The model checker doubles as a stress test for the trace invariants:
   every one of the thousands of runs below executes under the online
   checker. *)
let checked_exec spec algo topo =
  let inv = Repro_engine.Trace.Invariants.create () in
  let r =
    Run.exec_spec { spec with Run.trace = Repro_engine.Trace.Invariants.sink inv } algo topo
  in
  Repro_engine.Trace.Invariants.final_check inv r.Run.metrics;
  r

let exhaustive n () =
  let topologies = connected_topologies n in
  Alcotest.(check bool)
    (Printf.sprintf "many connected digraphs on %d nodes" n)
    true
    (List.length topologies > (1 lsl (n * (n - 1))) / 4);
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iteri
        (fun i topology ->
          List.iter
            (fun seed ->
              let r =
                checked_exec
                  { Run.default_spec with Run.seed; max_rounds = Some 300 }
                  algo topology
              in
              if not r.Run.completed then
                Alcotest.failf "%s failed on %d-node digraph #%d seed=%d (edges: %s)"
                  algo.Algorithm.name n i seed
                  (String.concat ","
                     (List.map (fun (u, v) -> Printf.sprintf "%d>%d" u v) (Topology.edges topology))))
            [ 1; 2 ])
        topologies)
    algorithms

(* Flooding pushes knowledge along initial out-edges only, and an
   identifier u starts out held by u and by every in-neighbour of u (they
   know u). So flooding completes exactly when, for every pair (u, w),
   node w is out-reachable from some initial holder of u — a precise
   characterisation we can check exhaustively. *)
let flooding_characterisation () =
  let flooding_can_complete t =
    let n = Topology.n t in
    let reach = Array.make n [||] in
    for s = 0 to n - 1 do
      let seen = Array.make n false in
      let rec go v =
        if not seen.(v) then begin
          seen.(v) <- true;
          Array.iter go (Topology.out_neighbors t v)
        end
      in
      go s;
      reach.(s) <- Array.copy seen
    done;
    let holders u =
      u :: List.filter (fun v -> Topology.mem_edge t v u) (List.init n Fun.id)
    in
    List.for_all
      (fun u ->
        List.for_all
          (fun w -> List.exists (fun h -> reach.(h).(w)) (holders u))
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  List.iteri
    (fun i topology ->
      let r =
        checked_exec
          { Run.default_spec with Run.seed = 1; max_rounds = Some 100 }
          Flooding.algorithm topology
      in
      let expected = flooding_can_complete topology in
      if r.Run.completed <> expected then
        Alcotest.failf "flooding on 3-node digraph #%d: completed=%b but reachability says %b" i
          r.Run.completed expected)
    (connected_topologies 3)

let () =
  Alcotest.run "exhaustive"
    [
      ( "completion on all small digraphs",
        [
          Alcotest.test_case "3-node universe" `Quick (exhaustive 3);
          Alcotest.test_case "4-node universe" `Slow (exhaustive 4);
        ] );
      ( "flooding characterisation",
        [ Alcotest.test_case "completes iff holder-reachability holds" `Quick flooding_characterisation ]
      );
    ]
