(* Smoke and unit tests for the experiment harness. *)

open Repro_util
open Repro_graph
open Repro_discovery
open Repro_experiments

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro_exp_%d" (Unix.getpid ()))
  in
  Csvio.ensure_dir dir;
  dir

let test_sweepcell_aggregates () =
  let c =
    Sweepcell.run ~algo:Hm_gossip.algorithm ~family:(Generate.K_out 3) ~n:64
      ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "attempts" 3 c.Sweepcell.attempts;
  Alcotest.(check int) "completions" 3 c.Sweepcell.completions;
  (match c.Sweepcell.rounds with
  | None -> Alcotest.fail "expected rounds summary"
  | Some s -> Alcotest.(check int) "three samples" 3 s.Stats.count);
  Alcotest.(check string) "algo" "hm" c.Sweepcell.algo

let test_sweepcell_dnf () =
  let c =
    Sweepcell.run
      ~algo:(Hm_gossip.with_variant ~broadcast:Hm_gossip.Off ())
      ~family:(Generate.K_out 3) ~n:64 ~seeds:[ 1 ] ~max_rounds:50 ()
  in
  Alcotest.(check int) "no completions" 0 c.Sweepcell.completions;
  Alcotest.(check string) "cell renders DNF" "DNF" (Sweepcell.rounds_cell c);
  Alcotest.(check string) "messages DNF" "DNF" (Sweepcell.messages_cell c)

let test_topology_of_matches_cli_convention () =
  let a = Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:50 ~seed:5 in
  let rng = Rng.substream ~seed:5 ~index:0x70b0 in
  let b = Generate.build (Generate.K_out 3) ~rng ~n:50 in
  Alcotest.(check bool) "same topology" true (Topology.edges a = Topology.edges b)

let test_crash_fault_shape () =
  let f = Sweepcell.crash_fault ~seed:1 ~n:100 ~count:10 in
  let crashes = Repro_engine.Fault.crashed_nodes f in
  Alcotest.(check int) "ten victims" 10 (List.length crashes);
  List.iter
    (fun (node, round) ->
      if node < 0 || node >= 100 then Alcotest.failf "victim out of range: %d" node;
      if round < 1 || round > 5 then Alcotest.failf "crash round out of window: %d" round)
    crashes;
  Alcotest.(check int) "count 0 means no faults" 0
    (List.length (Repro_engine.Fault.crashed_nodes (Sweepcell.crash_fault ~seed:1 ~n:100 ~count:0)))

let test_approx_int () =
  Alcotest.(check string) "small" "950" (Sweepcell.approx_int 950.0);
  Alcotest.(check string) "k" "2.1k" (Sweepcell.approx_int 2100.0);
  Alcotest.(check string) "10k+" "37k" (Sweepcell.approx_int 37000.0);
  Alcotest.(check string) "M" "3.5M" (Sweepcell.approx_int 3_500_000.0);
  Alcotest.(check string) "G" "2.10G" (Sweepcell.approx_int 2.1e9)

let test_report_capture_and_csv () =
  let dir = tmpdir () in
  let r = Report.create ~results_dir:dir in
  Report.section r ~id:"TX" ~title:"smoke";
  Report.emit r "hello\n";
  Report.csv r ~name:"smoke" ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let captured = Report.captured r in
  Alcotest.(check bool) "section captured" true
    (String.length captured > 0 && Report.results_dir r = dir);
  Alcotest.(check bool) "csv exists" true (Sys.file_exists (Filename.concat dir "smoke.csv"))

let test_suite_ids () =
  Alcotest.(check (list string)) "experiment ids"
    [ "T1"; "T2"; "T3"; "F1"; "T4"; "F3"; "T5"; "T6"; "T7"; "T8"; "T9"; "T10"; "T11"; "T12"; "T13"; "T14"; "F2"; "F4"; "F5" ]
    (Suite.ids ())

let test_suite_unknown_id () =
  match Suite.run ~only:[ "T99" ] ~results_dir:(tmpdir ()) () with
  | Ok () -> Alcotest.fail "expected error for unknown id"
  | Error msg -> Alcotest.(check bool) "mentions the id" true (String.length msg > 0)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_jobs_determinism () =
  (* the tentpole guarantee: a parallel suite run produces byte-identical
     output. Run the same selection twice into the same directory (the
     report embeds the results path) with jobs=1 and jobs=4 and compare
     bytes. T5 and F3 are used because they are cheap and, unlike
     T1-T3/F1, not served from the memoised scaling sweep on the second
     run. *)
  let dir = tmpdir () in
  let files = [ "report.md"; "t5_loss.csv"; "f3_path_rounds.csv" ] in
  let snapshot jobs =
    match Suite.run ~only:[ "T5"; "F3" ] ~quick:true ~jobs ~results_dir:dir () with
    | Error msg -> Alcotest.fail msg
    | Ok () -> List.map (fun f -> read_file (Filename.concat dir f)) files
  in
  let seq = snapshot 1 in
  let par = snapshot 4 in
  List.iter2
    (fun f (a, b) ->
      if a <> b then Alcotest.failf "%s differs between jobs=1 and jobs=4" f)
    files (List.combine seq par)

let test_run_batch_groups () =
  (* run_batch aggregates exactly like per-request run, in request order *)
  let req algo =
    Sweepcell.request ~algo ~family:(Generate.K_out 3) ~n:64 ~seeds:[ 1; 2 ] ()
  in
  let batch = Sweepcell.run_batch ~jobs:3 [ req Hm_gossip.algorithm; req Name_dropper.algorithm ] in
  let solo =
    List.map
      (fun algo -> Sweepcell.run ~jobs:1 ~algo ~family:(Generate.K_out 3) ~n:64 ~seeds:[ 1; 2 ] ())
      [ Hm_gossip.algorithm; Name_dropper.algorithm ]
  in
  Alcotest.(check (list string)) "same cells in request order"
    (List.map Sweepcell.rounds_cell solo)
    (List.map Sweepcell.rounds_cell batch);
  Alcotest.(check (list string)) "algo order preserved" [ "hm"; "name_dropper" ]
    (List.map (fun c -> c.Sweepcell.algo) batch)

let test_chunks () =
  Alcotest.(check (list (list int))) "even split" [ [ 1; 2 ]; [ 3; 4 ] ]
    (Sweepcell.chunks 2 [ 1; 2; 3; 4 ]);
  Alcotest.(check (list (list int))) "empty" [] (Sweepcell.chunks 3 []);
  match Sweepcell.chunks 2 [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "ragged chunks accepted"
  | exception Invalid_argument _ -> ()

let test_suite_quick_selection () =
  (* run the two cheapest entries end-to-end in quick mode *)
  let dir = tmpdir () in
  match Suite.run ~only:[ "F4"; "T7" ] ~quick:true ~results_dir:dir () with
  | Error msg -> Alcotest.fail msg
  | Ok () ->
    Alcotest.(check bool) "report written" true
      (Sys.file_exists (Filename.concat dir "report.md"));
    Alcotest.(check bool) "t7 csv" true (Sys.file_exists (Filename.concat dir "t7_ablations.csv"));
    Alcotest.(check bool) "f4 csv" true
      (Sys.file_exists (Filename.concat dir "f4_msgs_per_round.csv"))

let () =
  Alcotest.run "experiments"
    [
      ( "sweepcell",
        [
          Alcotest.test_case "aggregates" `Quick test_sweepcell_aggregates;
          Alcotest.test_case "DNF rendering" `Quick test_sweepcell_dnf;
          Alcotest.test_case "topology convention" `Quick test_topology_of_matches_cli_convention;
          Alcotest.test_case "crash fault shape" `Quick test_crash_fault_shape;
          Alcotest.test_case "approx_int" `Quick test_approx_int;
          Alcotest.test_case "run_batch groups" `Quick test_run_batch_groups;
          Alcotest.test_case "chunks" `Quick test_chunks;
        ] );
      ( "report",
        [ Alcotest.test_case "capture and csv" `Quick test_report_capture_and_csv ] );
      ( "suite",
        [
          Alcotest.test_case "ids" `Quick test_suite_ids;
          Alcotest.test_case "unknown id" `Quick test_suite_unknown_id;
          Alcotest.test_case "quick selection runs" `Slow test_suite_quick_selection;
          Alcotest.test_case "jobs determinism" `Slow test_jobs_determinism;
        ] );
    ]
