(* Cross-cutting property tests: random weakly-connected knowledge
   graphs, arbitrary seeds, every push-capable algorithm — discovery must
   always complete, and the cost accounting must balance. Also pins the
   regression cases discovered during development. *)

open Repro_util
open Repro_graph
open Repro_discovery

(* Generator: a uniformly-random directed spanning structure (each node
   i>0 gets one edge touching an earlier node, in a random direction)
   plus extra random edges — weakly connected by construction, with
   arbitrary edge directions. *)
let random_weak_topology_gen =
  QCheck2.Gen.(
    let* n = int_range 2 120 in
    let* spine =
      flatten_l
        (List.init (n - 1) (fun i ->
             let v = i + 1 in
             let* u = int_range 0 i in
             let* forward = bool in
             return (if forward then (u, v) else (v, u))))
    in
    let* extra =
      list_size (int_range 0 (2 * n)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    let* seed = int_range 0 5000 in
    return (n, spine @ extra, seed))

(* Every run in this suite executes under the online trace invariant
   checker: conservation, liveness discipline, monotonicity and final
   metrics agreement are asserted event-by-event, for free, across all
   the random instances below. *)
let checked_exec spec algo topo =
  let inv = Repro_engine.Trace.Invariants.create () in
  let r =
    Run.exec_spec
      { spec with Run.trace = Repro_engine.Trace.Invariants.sink inv }
      algo topo
  in
  Repro_engine.Trace.Invariants.final_check inv r.Run.metrics;
  r

let push_algorithms =
  [
    Swamping.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
    Hm_gossip.with_variant ~upward:Hm_gossip.Full ();
  ]

let completes_on_random_weak (algo : Algorithm.t) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s completes on random weakly-connected graphs" algo.Algorithm.name)
    ~count:60 random_weak_topology_gen
    (fun (n, edges, seed) ->
      let topology = Topology.create ~n ~edges in
      assert (Analyze.is_weakly_connected topology);
      let r =
        checked_exec { Run.default_spec with Run.seed; max_rounds = Some 3000 } algo topology
      in
      r.Run.completed)

let accounting_balances =
  QCheck2.Test.make ~name:"message accounting balances under loss" ~count:40
    QCheck2.Gen.(
      let* seed = int_range 0 1000 in
      let* p10 = int_range 0 5 in
      return (seed, float_of_int p10 /. 10.0))
    (fun (seed, p) ->
      let topology = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:64 ~seed in
      let fault = Repro_engine.Fault.with_loss Repro_engine.Fault.none ~p in
      let r =
        checked_exec
          { Run.default_spec with Run.seed; fault; max_rounds = Some 3000 }
          Hm_gossip.algorithm topology
      in
      r.Run.completed && r.Run.messages = r.Run.delivered + r.Run.dropped)

let final_knowledge_exact =
  (* On completion, every node's knowledge must be exactly the universe:
     nothing missing, nothing fabricated (capacity enforces the latter,
     cardinality the former). *)
  QCheck2.Test.make ~name:"completed knowledge is exactly the universe" ~count:40
    random_weak_topology_gen
    (fun (n, edges, seed) ->
      let topology = Topology.create ~n ~edges in
      let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
      let instances =
        Array.init n (fun node ->
            let ctx =
              {
                Algorithm.n;
                node;
                neighbors = Topology.out_neighbors topology node;
                labels;
                rng = Rng.substream ~seed ~index:(node + 1);
                params = Params.default;
              }
            in
            Hm_gossip.algorithm.Algorithm.make ctx)
      in
      let handlers =
        {
          Repro_engine.Sim.round_begin =
            (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
          deliver = (fun ~node ~src ~round:_ p -> instances.(node).Algorithm.receive ~src p);
        }
      in
      let inv = Repro_engine.Trace.Invariants.create () in
      let outcome =
        Repro_engine.Sim.run ~n
          ~config:
            {
              Repro_engine.Sim.default_config with
              Repro_engine.Sim.max_rounds = 3000;
              trace = Repro_engine.Trace.Invariants.sink inv;
            }
          ~handlers ~measure:Payload.measure
          ~stop:(fun ~round:_ ~alive:_ ->
            Array.for_all (fun i -> Knowledge.is_complete i.Algorithm.knowledge) instances)
          ()
      in
      Repro_engine.Trace.Invariants.final_check inv outcome.Repro_engine.Sim.metrics;
      outcome.Repro_engine.Sim.completed
      && Array.for_all
           (fun i ->
             let k = i.Algorithm.knowledge in
             Knowledge.cardinal k = n
             && Array.length (Knowledge.elements_in_learn_order k) = n)
           instances)

(* --- regression cases --- *)

(* During development, hm's delta reports stranded knowledge at a
   peripheral head pocket on long paths (a two-node pocket at the path
   end never learned the global minimum, and vice versa). This exact
   instance stalled forever before the custody rules were added. *)
let test_path_pocket_regression () =
  let r =
    checked_exec
      { Run.default_spec with Run.seed = 3; max_rounds = Some 200 }
      Hm_gossip.algorithm (Generate.path 1024)
  in
  Alcotest.(check bool) "completed" true r.Run.completed;
  Alcotest.(check bool) "well under the old stall" true (r.Run.rounds < 60)

(* The faithful HLL99 pointer-jump must still fail where pull-only
   transfer is hopeless: a node whose identifier nobody holds can never
   be discovered. *)
let test_pull_only_hopeless_regression () =
  let r =
    checked_exec
      { Run.default_spec with Run.seed = 1; max_rounds = Some 300 }
      Pointer_jump.algorithm (Generate.inward_star 64)
  in
  Alcotest.(check bool) "pull-only cannot finish" false r.Run.completed

(* rand_gossip with unacknowledged push deltas is unsound: rumors can go
   extinct. Keep the ablation honestly broken. *)
let test_unacked_delta_unsound () =
  let algo =
    match Registry.find "rand:push/f1/delta" with Ok a -> a | Error e -> Alcotest.fail e
  in
  let failures =
    List.length
      (List.filter
         (fun seed ->
           let topo = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:256 ~seed in
           not
             (checked_exec { Run.default_spec with Run.seed; max_rounds = Some 400 } algo topo)
               .Run.completed)
         [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "stalls on some seeds" true (failures > 0)

let () =
  Alcotest.run "props"
    [
      ( "random weak topologies",
        List.map QCheck_alcotest.to_alcotest
          (List.map completes_on_random_weak push_algorithms) );
      ( "global invariants",
        List.map QCheck_alcotest.to_alcotest [ accounting_balances; final_knowledge_exact ] );
      ( "regressions",
        [
          Alcotest.test_case "path pocket custody bug" `Quick test_path_pocket_regression;
          Alcotest.test_case "pull-only hopeless input" `Quick test_pull_only_hopeless_regression;
          Alcotest.test_case "unacked delta gossip unsound" `Quick test_unacked_delta_unsound;
        ] );
    ]
