(* Unit and property tests for Repro_util.Bitset, checked against a
   reference model (sorted int lists). *)

open Repro_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let t = Bitset.create 100 in
  check_int "cardinal" 0 (Bitset.cardinal t);
  check_bool "is_empty" true (Bitset.is_empty t);
  check_bool "is_full" false (Bitset.is_full t);
  check_bool "mem" false (Bitset.mem t 0);
  check_int "capacity" 100 (Bitset.capacity t)

let test_zero_capacity () =
  let t = Bitset.create 0 in
  check_int "cardinal" 0 (Bitset.cardinal t);
  check_bool "is_full on empty universe" true (Bitset.is_full t);
  Alcotest.check_raises "mem out of range" (Invalid_argument "Bitset: element out of range")
    (fun () -> ignore (Bitset.mem t 0))

let test_add_remove () =
  let t = Bitset.create 70 in
  check_bool "first add" true (Bitset.add t 5);
  check_bool "duplicate add" false (Bitset.add t 5);
  check_bool "mem" true (Bitset.mem t 5);
  check_int "cardinal" 1 (Bitset.cardinal t);
  (* word-boundary elements *)
  List.iter (fun v -> ignore (Bitset.add t v)) [ 0; 31; 32; 33; 63; 64; 69 ];
  check_int "cardinal after boundary adds" 8 (Bitset.cardinal t);
  check_bool "remove present" true (Bitset.remove t 32);
  check_bool "remove absent" false (Bitset.remove t 32);
  check_bool "mem removed" false (Bitset.mem t 32);
  check_int "cardinal after remove" 7 (Bitset.cardinal t)

let test_bounds () =
  let t = Bitset.create 10 in
  List.iter
    (fun v ->
      Alcotest.check_raises "out of range" (Invalid_argument "Bitset: element out of range")
        (fun () -> ignore (Bitset.add t v)))
    [ -1; 10; 11 ]

let test_union () =
  let a = Bitset.of_array 100 [| 1; 2; 3; 40; 64 |] in
  let b = Bitset.of_array 100 [| 3; 40; 77; 99 |] in
  let added = Bitset.union_into ~dst:a ~src:b in
  check_int "added" 2 added;
  check_int "cardinal" 7 (Bitset.cardinal a);
  check_bool "mem 77" true (Bitset.mem a 77);
  check_bool "subset" true (Bitset.subset b a);
  check_bool "not subset" false (Bitset.subset a b);
  Alcotest.check_raises "capacity mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.union_into ~dst:a ~src:(Bitset.create 10)))

let test_union_with_callback () =
  let a = Bitset.of_array 200 [| 5; 150 |] in
  let b = Bitset.of_array 200 [| 5; 6; 7; 151 |] in
  let seen = ref [] in
  let added = Bitset.union_into_with ~dst:a ~src:b (fun v -> seen := v :: !seen) in
  check_int "added" 3 added;
  Alcotest.(check (list int)) "fresh elements in increasing order" [ 6; 7; 151 ] (List.rev !seen)

let test_iter_order () =
  let vs = [| 99; 0; 31; 32; 64; 17 |] in
  let t = Bitset.of_array 100 vs in
  Alcotest.(check (list int)) "elements sorted" [ 0; 17; 31; 32; 64; 99 ] (Bitset.elements t);
  Alcotest.(check (array int)) "to_array" [| 0; 17; 31; 32; 64; 99 |] (Bitset.to_array t)

let test_choose_nth () =
  let t = Bitset.of_array 100 [| 10; 20; 30; 95 |] in
  check_int "0th" 10 (Bitset.choose_nth t 0);
  check_int "2nd" 30 (Bitset.choose_nth t 2);
  check_int "3rd" 95 (Bitset.choose_nth t 3);
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Bitset.choose_nth: rank out of range") (fun () ->
      ignore (Bitset.choose_nth t 4))

let test_inter_cardinal () =
  let a = Bitset.of_array 128 [| 0; 1; 2; 64; 100 |] in
  let b = Bitset.of_array 128 [| 1; 64; 127 |] in
  check_int "intersection" 2 (Bitset.inter_cardinal a b)

let test_equal_copy () =
  let a = Bitset.of_array 64 [| 1; 33; 63 |] in
  let b = Bitset.copy a in
  check_bool "copy equal" true (Bitset.equal a b);
  ignore (Bitset.add b 2);
  check_bool "copy independent" false (Bitset.equal a b);
  check_int "original untouched" 3 (Bitset.cardinal a)

let frozen_exn = Invalid_argument "Bitset: mutation of a frozen view"

let test_freeze_immutable () =
  let t = Bitset.of_array 100 [| 1; 40; 64 |] in
  let v = Bitset.freeze t in
  check_bool "view is frozen" true (Bitset.is_frozen v);
  check_bool "source is not frozen" false (Bitset.is_frozen t);
  check_bool "view equals source" true (Bitset.equal t v);
  Alcotest.check_raises "add on view" frozen_exn (fun () -> ignore (Bitset.add v 2));
  Alcotest.check_raises "no-op add on view" frozen_exn (fun () -> ignore (Bitset.add v 1));
  Alcotest.check_raises "remove on view" frozen_exn (fun () -> ignore (Bitset.remove v 1));
  Alcotest.check_raises "union into view" frozen_exn (fun () ->
      ignore (Bitset.union_into ~dst:v ~src:t));
  Alcotest.check_raises "union_into_with into view" frozen_exn (fun () ->
      ignore (Bitset.union_into_with ~dst:v ~src:t (fun _ -> ())));
  (* reads still work on the view *)
  check_bool "mem" true (Bitset.mem v 40);
  check_int "cardinal" 3 (Bitset.cardinal v);
  Alcotest.(check (list int)) "elements" [ 1; 40; 64 ] (Bitset.elements v)

let test_freeze_copy_on_write () =
  let t = Bitset.of_array 100 [| 1; 40 |] in
  let v = Bitset.freeze t in
  (* mutating the source must not be visible through the view *)
  check_bool "source add" true (Bitset.add t 7);
  check_bool "source remove" true (Bitset.remove t 40);
  check_int "source cardinal" 2 (Bitset.cardinal t);
  check_int "view cardinal unchanged" 2 (Bitset.cardinal v);
  check_bool "view does not see add" false (Bitset.mem v 7);
  check_bool "view still sees removed" true (Bitset.mem v 40);
  (* union into a shared source privatises it first *)
  let t2 = Bitset.of_array 100 [| 3 |] in
  let v2 = Bitset.freeze t2 in
  ignore (Bitset.union_into ~dst:t2 ~src:(Bitset.of_array 100 [| 3; 9 |]));
  check_bool "union visible in source" true (Bitset.mem t2 9);
  check_bool "union invisible in view" false (Bitset.mem v2 9);
  (* a union that learns nothing leaves the sharing intact and both
     sides untouched *)
  let t3 = Bitset.of_array 100 [| 5; 6 |] in
  let v3 = Bitset.freeze t3 in
  check_int "subset union adds nothing" 0
    (Bitset.union_into ~dst:t3 ~src:(Bitset.of_array 100 [| 5 |]));
  check_bool "still equal" true (Bitset.equal t3 v3)

let test_freeze_idempotent () =
  let t = Bitset.of_array 10 [| 2 |] in
  let v = Bitset.freeze t in
  check_bool "freeze of frozen is itself" true (Bitset.freeze v == v);
  (* repeated freezes of the source share storage and stay consistent *)
  let v2 = Bitset.freeze t in
  check_bool "second view equal" true (Bitset.equal v v2);
  (* a copy of a frozen view is mutable again *)
  let c = Bitset.copy v in
  check_bool "copy not frozen" false (Bitset.is_frozen c);
  check_bool "copy mutable" true (Bitset.add c 3);
  check_bool "view untouched" false (Bitset.mem v 3)

let test_is_full () =
  let t = Bitset.create 33 in
  for v = 0 to 32 do
    ignore (Bitset.add t v)
  done;
  check_bool "full" true (Bitset.is_full t);
  ignore (Bitset.remove t 32);
  check_bool "not full" false (Bitset.is_full t)

(* ---- properties against a reference model ---- *)

let model_gen =
  QCheck2.Gen.(
    let* n = int_range 1 300 in
    let* vs = list_size (int_range 0 200) (int_range 0 (n - 1)) in
    return (n, vs))

let prop_matches_model =
  QCheck2.Test.make ~name:"bitset matches sorted-list model" ~count:300 model_gen
    (fun (n, vs) ->
      let t = Bitset.create n in
      List.iter (fun v -> ignore (Bitset.add t v)) vs;
      let model = List.sort_uniq compare vs in
      Bitset.elements t = model
      && Bitset.cardinal t = List.length model
      && List.for_all (fun v -> Bitset.mem t v) model)

let prop_union_is_set_union =
  QCheck2.Test.make ~name:"union_into computes set union" ~count:300
    QCheck2.Gen.(
      let* n = int_range 1 200 in
      let* xs = list_size (int_range 0 100) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 100) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let a = Bitset.of_array n (Array.of_list xs) in
      let b = Bitset.of_array n (Array.of_list ys) in
      let before = Bitset.cardinal a in
      let added = Bitset.union_into ~dst:a ~src:b in
      let expected = List.sort_uniq compare (xs @ ys) in
      Bitset.elements a = expected && added = Bitset.cardinal a - before)

let prop_choose_nth_consistent =
  QCheck2.Test.make ~name:"choose_nth agrees with elements" ~count:200 model_gen
    (fun (n, vs) ->
      let t = Bitset.create n in
      List.iter (fun v -> ignore (Bitset.add t v)) vs;
      let elems = Array.of_list (Bitset.elements t) in
      Array.for_all (fun x -> x) (Array.mapi (fun i v -> Bitset.choose_nth t i = v) elems))

let prop_subset_reflexive_after_union =
  QCheck2.Test.make ~name:"src is subset of dst after union" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 200 in
      let* xs = list_size (int_range 0 100) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 100) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let a = Bitset.of_array n (Array.of_list xs) in
      let b = Bitset.of_array n (Array.of_list ys) in
      ignore (Bitset.union_into ~dst:a ~src:b);
      Bitset.subset b a)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union callback" `Quick test_union_with_callback;
          Alcotest.test_case "iteration order" `Quick test_iter_order;
          Alcotest.test_case "choose_nth" `Quick test_choose_nth;
          Alcotest.test_case "inter_cardinal" `Quick test_inter_cardinal;
          Alcotest.test_case "equal/copy" `Quick test_equal_copy;
          Alcotest.test_case "freeze is immutable" `Quick test_freeze_immutable;
          Alcotest.test_case "freeze copy-on-write" `Quick test_freeze_copy_on_write;
          Alcotest.test_case "freeze idempotent" `Quick test_freeze_idempotent;
          Alcotest.test_case "is_full" `Quick test_is_full;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_model;
            prop_union_is_set_union;
            prop_choose_nth_consistent;
            prop_subset_reflexive_after_union;
          ] );
    ]
