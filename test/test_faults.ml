(* Fault-injection tests: message loss and crash-stop failures against
   the loss-tolerant algorithms and the completion predicates. *)

open Repro_engine
open Repro_graph
open Repro_discovery

let topology ~n ~seed =
  Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed

(* every run here injects a fault and needs headroom over the default
   round budget *)
let spec ~seed ~fault = { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 }

(* Fault injection is exactly where the trace invariants bite (drop
   reasons, liveness discipline under crashes and late joins), so every
   run in this suite executes under the online checker. *)
let checked_exec spec algo topo =
  let inv = Trace.Invariants.create () in
  let r = Run.exec_spec { spec with Run.trace = Trace.Invariants.sink inv } algo topo in
  Trace.Invariants.final_check inv r.Run.metrics;
  r

let test_loss_tolerance () =
  (* every retransmitting algorithm must finish under 30% loss *)
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let fault = Fault.with_loss Fault.none ~p:0.3 in
          let r = checked_exec (spec ~seed ~fault) algo (topology ~n:128 ~seed) in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d did not survive 30%% loss" algo.Algorithm.name seed)
        [ 1; 2; 3 ])
    [
      Hm_gossip.algorithm;
      Hm_gossip.with_variant ~upward:Hm_gossip.Full ();
      Rand_gossip.algorithm;
      Name_dropper.algorithm;
      Min_pointer.algorithm;
      Swamping.algorithm;
    ]

let test_loss_slows_but_never_breaks_hm () =
  let rounds p =
    let fault = if p > 0.0 then Fault.with_loss Fault.none ~p else Fault.none in
    let r = checked_exec (spec ~seed:3 ~fault) Hm_gossip.algorithm (topology ~n:256 ~seed:3) in
    Alcotest.(check bool) (Printf.sprintf "completed at loss %.1f" p) true r.Run.completed;
    r.Run.rounds
  in
  let clean = rounds 0.0 in
  let lossy = rounds 0.4 in
  Alcotest.(check bool) "loss costs rounds" true (lossy >= clean)

let test_crash_survivors_complete () =
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let n = 128 in
          let fault = Repro_experiments.Sweepcell.crash_fault ~seed ~n ~count:12 in
          let r =
            checked_exec
              { (spec ~seed ~fault) with Run.completion = Run.Survivors_strong }
              algo (topology ~n ~seed)
          in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d: survivors did not complete" algo.Algorithm.name seed;
          let crashed = Array.length (Array.of_seq (Seq.filter (fun b -> not b) (Array.to_seq r.Run.alive))) in
          Alcotest.(check int) "all scheduled crashes happened" 12 crashed)
        [ 1; 2 ])
    [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let test_hm_survives_sink_crash () =
  (* crash the rank minimum in the endgame: hm must suspect and recover *)
  let n = 256 and seed = 1 in
  let labels = Repro_util.Rng.permutation (Repro_util.Rng.substream ~seed ~index:0) n in
  let rank_min = ref 0 in
  Array.iteri (fun v l -> if l < labels.(!rank_min) then rank_min := v) labels;
  let fault = Fault.with_crash Fault.none ~node:!rank_min ~round:4 in
  let r =
    checked_exec
      { (spec ~seed ~fault) with Run.completion = Run.Survivors_strong }
      Hm_gossip.algorithm (topology ~n ~seed)
  in
  Alcotest.(check bool) "recovered from sink crash" true r.Run.completed

let test_min_pointer_stalls_on_late_sink_crash () =
  (* the deterministic baseline has no failure detection: killing node 0
     once everyone points at it wedges the run *)
  let n = 1024 and seed = 1 in
  let fault = Fault.with_crash Fault.none ~node:0 ~round:5 in
  let r =
    checked_exec
      {
        (spec ~seed ~fault) with
        Run.completion = Run.Survivors_strong;
        max_rounds = Some 400;
      }
      Min_pointer.algorithm (topology ~n ~seed)
  in
  Alcotest.(check bool) "stalled" false r.Run.completed

let test_crash_all_but_one () =
  let n = 16 and seed = 2 in
  let fault = Fault.with_crashes Fault.none (List.init 15 (fun i -> (i + 1, 1))) in
  let r =
    checked_exec
      {
        (spec ~seed ~fault) with
        Run.completion = Run.Survivors_strong;
        max_rounds = Some 50;
      }
      Hm_gossip.algorithm (topology ~n ~seed)
  in
  (* a single survivor trivially knows all survivors *)
  Alcotest.(check bool) "lone survivor completes" true r.Run.completed

let test_churn_stabilizes () =
  (* half the fleet joins late, in two waves; every gossip algorithm must
     still reach strong completion, which is gated on the last join *)
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let n = 128 in
          let rng = Repro_util.Rng.substream ~seed ~index:0x901d in
          let late = Repro_util.Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1) in
          let joins = List.mapi (fun i v -> (v, if i mod 2 = 0 then 4 else 9)) (Array.to_list late) in
          let fault = Fault.with_joins Fault.none joins in
          let r = checked_exec (spec ~seed ~fault) algo (topology ~n ~seed) in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d did not stabilise under churn" algo.Algorithm.name seed;
          if r.Run.rounds < 9 then
            Alcotest.failf "%s seed=%d completed before the last join" algo.Algorithm.name seed)
        [ 1; 2 ])
    [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let test_churn_with_loss () =
  (* churn and loss together: the stress test of the retransmission and
     suspicion machinery *)
  let n = 128 and seed = 5 in
  let rng = Repro_util.Rng.substream ~seed ~index:0x901d in
  let late = Repro_util.Rng.sample_distinct rng ~n ~k:32 ~avoid:(-1) in
  let fault =
    Fault.with_loss
      (Fault.with_joins Fault.none (List.map (fun v -> (v, 6)) (Array.to_list late)))
      ~p:0.2
  in
  let r = checked_exec (spec ~seed ~fault) Hm_gossip.algorithm (topology ~n ~seed) in
  Alcotest.(check bool) "completed" true r.Run.completed

let test_drops_accounted () =
  let fault = Fault.with_loss Fault.none ~p:0.5 in
  let r = checked_exec (spec ~seed:1 ~fault) Name_dropper.algorithm (topology ~n:64 ~seed:1) in
  Alcotest.(check int) "sent = delivered + dropped" r.Run.messages (r.Run.delivered + r.Run.dropped);
  Alcotest.(check bool) "some drops happened" true (r.Run.dropped > 0)

let () =
  Alcotest.run "faults"
    [
      ( "loss",
        [
          Alcotest.test_case "30% loss tolerated" `Slow test_loss_tolerance;
          Alcotest.test_case "loss slows hm" `Quick test_loss_slows_but_never_breaks_hm;
          Alcotest.test_case "drop accounting" `Quick test_drops_accounted;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "survivors complete" `Quick test_crash_survivors_complete;
          Alcotest.test_case "hm survives sink crash" `Quick test_hm_survives_sink_crash;
          Alcotest.test_case "min_pointer stalls on late sink crash" `Quick
            test_min_pointer_stalls_on_late_sink_crash;
          Alcotest.test_case "all but one crash" `Quick test_crash_all_but_one;
        ] );
      ( "churn",
        [
          Alcotest.test_case "late joins stabilise" `Quick test_churn_stabilizes;
          Alcotest.test_case "churn with loss" `Quick test_churn_with_loss;
        ] );
    ]
