(* Fault-injection tests: message loss and crash-stop failures against
   the loss-tolerant algorithms and the completion predicates. *)

open Repro_engine
open Repro_graph
open Repro_discovery

let topology ~n ~seed =
  Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed

(* every run here injects a fault and needs headroom over the default
   round budget *)
let spec ~seed ~fault = { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 }

(* Fault injection is exactly where the trace invariants bite (drop
   reasons, liveness discipline under crashes and late joins), so every
   run in this suite executes under the online checker. *)
let checked_exec spec algo topo =
  let inv = Trace.Invariants.create () in
  let r = Run.exec_spec { spec with Run.trace = Trace.Invariants.sink inv } algo topo in
  Trace.Invariants.final_check inv r.Run.metrics;
  r

let test_loss_tolerance () =
  (* every retransmitting algorithm must finish under 30% loss *)
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let fault = Fault.with_loss Fault.none ~p:0.3 in
          let r = checked_exec (spec ~seed ~fault) algo (topology ~n:128 ~seed) in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d did not survive 30%% loss" algo.Algorithm.name seed)
        [ 1; 2; 3 ])
    [
      Hm_gossip.algorithm;
      Hm_gossip.with_variant ~upward:Hm_gossip.Full ();
      Rand_gossip.algorithm;
      Name_dropper.algorithm;
      Min_pointer.algorithm;
      Swamping.algorithm;
    ]

let test_loss_slows_but_never_breaks_hm () =
  let rounds p =
    let fault = if p > 0.0 then Fault.with_loss Fault.none ~p else Fault.none in
    let r = checked_exec (spec ~seed:3 ~fault) Hm_gossip.algorithm (topology ~n:256 ~seed:3) in
    Alcotest.(check bool) (Printf.sprintf "completed at loss %.1f" p) true r.Run.completed;
    r.Run.rounds
  in
  let clean = rounds 0.0 in
  let lossy = rounds 0.4 in
  Alcotest.(check bool) "loss costs rounds" true (lossy >= clean)

let test_crash_survivors_complete () =
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let n = 128 in
          let fault = Repro_experiments.Sweepcell.crash_fault ~seed ~n ~count:12 in
          let r =
            checked_exec
              { (spec ~seed ~fault) with Run.completion = Run.Survivors_strong }
              algo (topology ~n ~seed)
          in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d: survivors did not complete" algo.Algorithm.name seed;
          let crashed = Array.length (Array.of_seq (Seq.filter (fun b -> not b) (Array.to_seq r.Run.alive))) in
          Alcotest.(check int) "all scheduled crashes happened" 12 crashed)
        [ 1; 2 ])
    [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let test_hm_survives_sink_crash () =
  (* crash the rank minimum in the endgame: hm must suspect and recover *)
  let n = 256 and seed = 1 in
  let labels = Repro_util.Rng.permutation (Repro_util.Rng.substream ~seed ~index:0) n in
  let rank_min = ref 0 in
  Array.iteri (fun v l -> if l < labels.(!rank_min) then rank_min := v) labels;
  let fault = Fault.with_crash Fault.none ~node:!rank_min ~round:4 in
  let r =
    checked_exec
      { (spec ~seed ~fault) with Run.completion = Run.Survivors_strong }
      Hm_gossip.algorithm (topology ~n ~seed)
  in
  Alcotest.(check bool) "recovered from sink crash" true r.Run.completed

let test_min_pointer_stalls_on_late_sink_crash () =
  (* the deterministic baseline has no failure detection: killing node 0
     once everyone points at it wedges the run *)
  let n = 1024 and seed = 1 in
  let fault = Fault.with_crash Fault.none ~node:0 ~round:5 in
  let r =
    checked_exec
      {
        (spec ~seed ~fault) with
        Run.completion = Run.Survivors_strong;
        max_rounds = Some 400;
      }
      Min_pointer.algorithm (topology ~n ~seed)
  in
  Alcotest.(check bool) "stalled" false r.Run.completed

let test_crash_all_but_one () =
  let n = 16 and seed = 2 in
  let fault = Fault.with_crashes Fault.none (List.init 15 (fun i -> (i + 1, 1))) in
  let r =
    checked_exec
      {
        (spec ~seed ~fault) with
        Run.completion = Run.Survivors_strong;
        max_rounds = Some 50;
      }
      Hm_gossip.algorithm (topology ~n ~seed)
  in
  (* a single survivor trivially knows all survivors *)
  Alcotest.(check bool) "lone survivor completes" true r.Run.completed

let test_churn_stabilizes () =
  (* half the fleet joins late, in two waves; every gossip algorithm must
     still reach strong completion, which is gated on the last join *)
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let n = 128 in
          let rng = Repro_util.Rng.substream ~seed ~index:0x901d in
          let late = Repro_util.Rng.sample_distinct rng ~n ~k:(n / 2) ~avoid:(-1) in
          let joins = List.mapi (fun i v -> (v, if i mod 2 = 0 then 4 else 9)) (Array.to_list late) in
          let fault = Fault.with_joins Fault.none joins in
          let r = checked_exec (spec ~seed ~fault) algo (topology ~n ~seed) in
          if not r.Run.completed then
            Alcotest.failf "%s seed=%d did not stabilise under churn" algo.Algorithm.name seed;
          if r.Run.rounds < 9 then
            Alcotest.failf "%s seed=%d completed before the last join" algo.Algorithm.name seed)
        [ 1; 2 ])
    [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]

let test_churn_with_loss () =
  (* churn and loss together: the stress test of the retransmission and
     suspicion machinery *)
  let n = 128 and seed = 5 in
  let rng = Repro_util.Rng.substream ~seed ~index:0x901d in
  let late = Repro_util.Rng.sample_distinct rng ~n ~k:32 ~avoid:(-1) in
  let fault =
    Fault.with_loss
      (Fault.with_joins Fault.none (List.map (fun v -> (v, 6)) (Array.to_list late)))
      ~p:0.2
  in
  let r = checked_exec (spec ~seed ~fault) Hm_gossip.algorithm (topology ~n ~seed) in
  Alcotest.(check bool) "completed" true r.Run.completed

let test_drops_accounted () =
  let fault = Fault.with_loss Fault.none ~p:0.5 in
  let r = checked_exec (spec ~seed:1 ~fault) Name_dropper.algorithm (topology ~n:64 ~seed:1) in
  Alcotest.(check int) "sent = delivered + dropped" r.Run.messages (r.Run.delivered + r.Run.dropped);
  Alcotest.(check bool) "some drops happened" true (r.Run.dropped > 0)

(* --- fault-plan DSL and schedule edge cases -------------------------- *)

let test_loss_edge_probabilities () =
  (* p = 0.0 is a no-op plan; p = 1.0 drops every message *)
  Alcotest.(check bool) "p=0 plan is none" true (Fault.is_none (Fault.with_loss Fault.none ~p:0.0));
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed = 1; fault = Fault.with_loss Fault.none ~p:1.0; max_rounds = Some 30 }
      Name_dropper.algorithm (topology ~n:16 ~seed:1)
  in
  Alcotest.(check bool) "total loss never completes" false r.Run.completed;
  Alcotest.(check int) "nothing delivered" 0 r.Run.delivered;
  Alcotest.(check int) "everything dropped" r.Run.messages r.Run.dropped;
  Alcotest.check_raises "p > 1 rejected" (Invalid_argument "Fault.with_loss: probability out of range")
    (fun () -> ignore (Fault.with_loss Fault.none ~p:1.5))

let test_crash_and_join_same_node () =
  (* a node can join late and crash later: active exactly during
     [join, crash) *)
  let fault = Fault.with_crash (Fault.with_join Fault.none ~node:3 ~round:3) ~node:3 ~round:5 in
  Alcotest.(check int) "join kept" 3 (Fault.join_round fault ~node:3);
  Alcotest.(check bool) "crash kept" true (Fault.crash_round fault ~node:3 = Some 5);
  let r =
    checked_exec
      { (spec ~seed:2 ~fault) with Run.completion = Run.Survivors_strong }
      Hm_gossip.algorithm (topology ~n:64 ~seed:2)
  in
  Alcotest.(check bool) "survivors complete" true r.Run.completed;
  Alcotest.(check bool) "node 3 ends dead" false r.Run.alive.(3)

let test_restart_requires_crash () =
  Alcotest.check_raises "restart without crash rejected"
    (Invalid_argument "Fault.with_restart: no crash scheduled for node") (fun () ->
      ignore (Fault.with_restart Fault.none ~node:4 ~round:9));
  Alcotest.check_raises "restart before crash rejected"
    (Invalid_argument "Fault.with_restart: restart must follow the crash") (fun () ->
      ignore (Fault.with_restart (Fault.with_crash Fault.none ~node:4 ~round:6) ~node:4 ~round:6));
  (* ... but the DSL may list restart= before crash= *)
  match Fault.of_string "restart=4@9,crash=4@6" with
  | Ok f -> Alcotest.(check bool) "parsed out of order" true (Fault.restart_round f ~node:4 = Some 9)
  | Error e -> Alcotest.fail e

let test_dsl_examples () =
  (* the README example parses and round-trips *)
  match Fault.of_string "loss=0.1,part=0-3|4-7@5..20,crash=5@8,restart=5@14" with
  | Error e -> Alcotest.fail e
  | Ok f ->
    Alcotest.(check (float 1e-9)) "loss" 0.1 (Fault.drop_probability f);
    Alcotest.(check bool) "partitioned at 7" true (Fault.cut f ~src:0 ~dst:5 ~time:7.0);
    Alcotest.(check bool) "healed at 20" false (Fault.cut f ~src:0 ~dst:5 ~time:20.0);
    Alcotest.(check bool) "same side never cut" false (Fault.cut f ~src:0 ~dst:3 ~time:7.0);
    (match Fault.of_string (Fault.to_string f) with
    | Ok f' -> Alcotest.(check bool) "round-trips" true (Fault.equal f f')
    | Error e -> Alcotest.fail e);
    (match Fault.of_string "loss=2.0" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "out-of-range probability parsed");
    match Fault.of_string "flux=0.1" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "unknown key parsed"

let test_duplicate_link_rejected () =
  (* two overrides for the same directed link would silently shadow each
     other depending on application order — the parser must refuse *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  (match Fault.of_string "link=1>2:loss=0.5,link=1>2:delay=2" with
  | Ok _ -> Alcotest.fail "duplicate link override parsed"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the link (%s)" e)
      true
      (contains e "duplicate link override for 1>2"));
  (* distinct links are of course fine *)
  (match Fault.of_string "link=1>2:loss=0.5,link=2>1:delay=2" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Fault.of_string "wan=0-3|4-7:delay=2,wan=0-1|2-7:delay=1" with
  | Ok _ -> Alcotest.fail "duplicate wan profile parsed"
  | Error _ -> ()

let test_wan_precedence () =
  (* per-link override > WAN cross profile > base link *)
  let base = Fault.with_loss Fault.none ~p:0.1 in
  let cross = { Fault.default_link with Fault.delay = 3; loss = 0.2 } in
  let f = Fault.with_wan base ~regions:[ [ 0; 1 ]; [ 2; 3 ] ] ~cross in
  let f = Fault.with_link f ~src:0 ~dst:2 { Fault.default_link with Fault.cap = 1 } in
  (* same region: base link *)
  let same = Fault.link_between f ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "intra-region loss is base" 0.1 same.Fault.loss;
  Alcotest.(check int) "intra-region delay is base" 0 same.Fault.delay;
  (* cross-region without override: the WAN profile *)
  let far = Fault.link_between f ~src:1 ~dst:3 in
  Alcotest.(check int) "cross-region delay" 3 far.Fault.delay;
  Alcotest.(check (float 1e-9)) "cross-region loss" 0.2 far.Fault.loss;
  (* cross-region with override: the override, whole record *)
  let ov = Fault.link_between f ~src:0 ~dst:2 in
  Alcotest.(check int) "override cap" 1 ov.Fault.cap;
  Alcotest.(check int) "override delay (not wan's)" 0 ov.Fault.delay;
  (* a node in no listed region forms the implicit region *)
  let f = Fault.with_wan base ~regions:[ [ 0; 1 ] ] ~cross in
  let implicit = Fault.link_between f ~src:0 ~dst:5 in
  Alcotest.(check int) "implicit region is cross" 3 implicit.Fault.delay;
  let implicit2 = Fault.link_between f ~src:5 ~dst:7 in
  Alcotest.(check int) "both unlisted share the implicit region" 0 implicit2.Fault.delay

let test_wan_dsl_example () =
  match Fault.of_string "wan=0-3|4-7:delay=2:loss=0.1:cap=5,cap=9" with
  | Error e -> Alcotest.fail e
  | Ok f ->
    let cross = Fault.link_between f ~src:0 ~dst:4 in
    Alcotest.(check int) "cross delay" 2 cross.Fault.delay;
    Alcotest.(check (float 1e-9)) "cross loss" 0.1 cross.Fault.loss;
    Alcotest.(check int) "cross cap" 5 cross.Fault.cap;
    Alcotest.(check int) "base cap" 9 (Fault.link_between f ~src:0 ~dst:1).Fault.cap;
    Alcotest.(check bool) "has_caps" true (Fault.has_caps f);
    Alcotest.(check bool) "has_delays" true (Fault.has_delays f);
    (match Fault.of_string (Fault.to_string f) with
    | Ok f' -> Alcotest.(check bool) "round-trips" true (Fault.equal f f')
    | Error e -> Alcotest.fail e);
    match Fault.of_string "fabricate=3@17,audit=1" with
    | Error e -> Alcotest.fail e
    | Ok f ->
      Alcotest.(check bool) "audit flag" true (Fault.audit f);
      Alcotest.(check (list (pair int (list int)))) "fabrications" [ (3, [ 17 ]) ]
        (Fault.fabrications f)

(* qcheck: random plans round-trip through the DSL. Probabilities are
   drawn as k/1000 so the %g printing is exact. *)
let plan_gen =
  QCheck2.Gen.(
    let prob = map (fun k -> float_of_int k /. 1000.0) (int_range 0 1000) in
    let* loss = prob and* dup = prob and* reorder = prob and* corrupt = prob in
    let* delay = int_range 0 3 in
    let* link =
      opt
        (let* src = int_range 0 9 and* dst = int_range 0 9 in
         let* l = prob and* d = int_range 0 2 and* c = int_range 0 2 in
         return (src, dst, { Fault.default_link with Fault.loss = l; delay = d; cap = c }))
    in
    let* part =
      opt
        (let* split = int_range 1 7 and* start = int_range 1 10 and* len = int_range 1 15 in
         return (split, start, start + len))
    in
    let* crash =
      opt
        (let* node = int_range 0 9 and* round = int_range 1 10 in
         let* restart = opt (int_range 1 10) in
         return (node, round, Option.map (fun d -> round + d) restart))
    in
    let* join = opt (pair (int_range 0 9) (int_range 1 12)) in
    let* cap = int_range 0 3 in
    let* wan =
      opt
        (let* split = int_range 1 7 in
         let* wloss = prob and* wdelay = int_range 0 2 and* wcap = int_range 0 2 in
         return (split, wloss, wdelay, wcap))
    in
    let* fab = opt (pair (int_range 0 9) (int_range 0 99)) in
    let* audit = bool in
    return ((loss, dup, reorder, corrupt, delay), link, part, crash, join, (cap, wan, fab, audit)))

let plan_of_gen ((loss, dup, reorder, corrupt, delay), link, part, crash, join, (cap, wan, fab, audit)) =
  let f = Fault.with_loss Fault.none ~p:loss in
  let f = Fault.with_dup f ~p:dup in
  let f = Fault.with_reorder f ~p:reorder in
  let f = Fault.with_corrupt f ~p:corrupt in
  let f = Fault.with_delay f ~ticks:delay in
  let f = Fault.with_cap f ~limit:cap in
  let f =
    match wan with
    | Some (split, wloss, wdelay, wcap) when wloss > 0.0 || wdelay > 0 || wcap > 0 ->
      Fault.with_wan f
        ~regions:[ List.init split Fun.id; List.init (8 - split) (fun i -> split + i) ]
        ~cross:{ Fault.default_link with Fault.loss = wloss; delay = wdelay; cap = wcap }
    | Some _ | None -> f
  in
  let f = match fab with None -> f | Some (node, id) -> Fault.with_fabrication f ~node ~id in
  let f = Fault.with_audit f audit in
  let f = match link with None -> f | Some (src, dst, lk) -> Fault.with_link f ~src ~dst lk in
  let f =
    match part with
    | None -> f
    | Some (split, start, heal) ->
      Fault.with_partition f
        ~groups:[ List.init split Fun.id; List.init (8 - split) (fun i -> split + i) ]
        ~start ~heal
  in
  let f =
    match crash with
    | None -> f
    | Some (node, round, restart) ->
      let f = Fault.with_crash f ~node ~round in
      (match restart with None -> f | Some r -> Fault.with_restart f ~node ~round:r)
  in
  match join with
  | None -> f
  | Some (node, round) ->
    (* joining a crashed node is allowed only if the join precedes it *)
    (match Fault.crash_round f ~node with
    | Some r when round >= r -> f
    | _ -> Fault.with_join f ~node ~round)

let dsl_roundtrip =
  QCheck2.Test.make ~name:"fault DSL round-trips" ~count:500 plan_gen (fun g ->
      let plan = plan_of_gen g in
      match Fault.of_string (Fault.to_string plan) with
      | Ok plan' ->
        if not (Fault.equal plan plan') then
          QCheck2.Test.fail_reportf "not equal after round-trip:@.%s@.%s" (Fault.to_string plan)
            (Fault.to_string plan');
        true
      | Error e -> QCheck2.Test.fail_reportf "%S did not parse back: %s" (Fault.to_string plan) e)

(* --- restart schedules in the simulators ----------------------------- *)

let checked_lenient_exec spec algo topo =
  let inv = Trace.Invariants.create ~lenient:true () in
  let r = Run.exec_spec { spec with Run.trace = Trace.Invariants.sink inv } algo topo in
  Trace.Invariants.final_check inv r.Run.metrics;
  r

let test_sim_crash_restart () =
  (* a crashed node that restarts rejoins with initial knowledge and the
     run still reaches Strong completion — all n nodes, not survivors *)
  let n = 128 and seed = 3 in
  let fault = Fault.with_restart (Fault.with_crash Fault.none ~node:5 ~round:3) ~node:5 ~round:6 in
  let r = checked_lenient_exec (spec ~seed ~fault) Hm_gossip.algorithm (topology ~n ~seed) in
  Alcotest.(check bool) "completed" true r.Run.completed;
  Alcotest.(check bool) "victim alive at the end" true r.Run.alive.(5);
  Alcotest.(check bool) "restart gates completion" true (r.Run.rounds >= 6)

let test_sim_restart_async () =
  let n = 48 and seed = 4 in
  let fault = Fault.with_restart (Fault.with_crash Fault.none ~node:7 ~round:3) ~node:7 ~round:9 in
  let inv = Trace.Invariants.create ~lenient:true () in
  let r =
    Run_async.exec_spec
      { Run_async.default_spec with Run_async.seed; fault; trace = Trace.Invariants.sink inv }
      Hm_gossip.algorithm (topology ~n ~seed)
  in
  Trace.Invariants.final_check inv r.Run_async.metrics;
  Alcotest.(check bool) "completed" true r.Run_async.completed

let () =
  Alcotest.run "faults"
    [
      ( "loss",
        [
          Alcotest.test_case "30% loss tolerated" `Slow test_loss_tolerance;
          Alcotest.test_case "loss slows hm" `Quick test_loss_slows_but_never_breaks_hm;
          Alcotest.test_case "drop accounting" `Quick test_drops_accounted;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "survivors complete" `Quick test_crash_survivors_complete;
          Alcotest.test_case "hm survives sink crash" `Quick test_hm_survives_sink_crash;
          Alcotest.test_case "min_pointer stalls on late sink crash" `Quick
            test_min_pointer_stalls_on_late_sink_crash;
          Alcotest.test_case "all but one crash" `Quick test_crash_all_but_one;
        ] );
      ( "churn",
        [
          Alcotest.test_case "late joins stabilise" `Quick test_churn_stabilizes;
          Alcotest.test_case "churn with loss" `Quick test_churn_with_loss;
        ] );
      ( "plans",
        [
          Alcotest.test_case "loss edge probabilities" `Quick test_loss_edge_probabilities;
          Alcotest.test_case "crash and join same node" `Quick test_crash_and_join_same_node;
          Alcotest.test_case "restart requires crash" `Quick test_restart_requires_crash;
          Alcotest.test_case "dsl examples" `Quick test_dsl_examples;
          Alcotest.test_case "duplicate link rejected" `Quick test_duplicate_link_rejected;
          Alcotest.test_case "wan precedence" `Quick test_wan_precedence;
          Alcotest.test_case "wan dsl example" `Quick test_wan_dsl_example;
          QCheck_alcotest.to_alcotest dsl_roundtrip;
        ] );
      ( "restarts",
        [
          Alcotest.test_case "sync crash+restart completes" `Quick test_sim_crash_restart;
          Alcotest.test_case "async crash+restart completes" `Quick test_sim_restart_async;
        ] );
    ]
