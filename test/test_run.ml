(* Tests for the Run driver: completion predicates, growth tracking,
   and result plumbing. *)

open Repro_graph
open Repro_discovery

let kout ~n ~seed = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed

let test_result_fields () =
  let r = Run.exec_spec { Run.default_spec with Run.seed = 4 } Hm_gossip.algorithm (kout ~n:64 ~seed:4) in
  Alcotest.(check string) "algorithm name" "hm" r.Run.algorithm;
  Alcotest.(check int) "n" 64 r.Run.n;
  Alcotest.(check int) "seed" 4 r.Run.seed;
  Alcotest.(check bool) "completed" true r.Run.completed;
  Alcotest.(check bool) "rounds positive" true (r.Run.rounds > 0);
  Alcotest.(check int) "delivered + dropped = sent" r.Run.messages (r.Run.delivered + r.Run.dropped);
  Alcotest.(check bool) "peak <= total" true (r.Run.max_round_messages <= r.Run.messages);
  Alcotest.(check int) "alive length" 64 (Array.length r.Run.alive);
  Alcotest.(check bool) "all alive" true (Array.for_all (fun b -> b) r.Run.alive);
  Alcotest.(check int) "no growth tracking by default" 0 (Array.length r.Run.mean_knowledge_series)

let test_growth_tracking () =
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed = 4; track_growth = true }
      Hm_gossip.algorithm (kout ~n:64 ~seed:4)
  in
  Alcotest.(check int) "one sample per round" r.Run.rounds (Array.length r.Run.mean_knowledge_series);
  let series = r.Run.mean_knowledge_series in
  Array.iteri
    (fun i v ->
      if i > 0 && v < series.(i - 1) -. 1e-9 then Alcotest.fail "growth series not monotone")
    series;
  Alcotest.(check (float 1e-6)) "ends complete" 64.0 series.(Array.length series - 1)

let test_trivial_instances () =
  (* n = 1: already complete, zero rounds *)
  let t1 = Repro_graph.Topology.create ~n:1 ~edges:[] in
  let r = Run.exec_spec Run.default_spec Hm_gossip.algorithm t1 in
  Alcotest.(check bool) "completed" true r.Run.completed;
  Alcotest.(check int) "zero rounds" 0 r.Run.rounds;
  (* complete graph: one round of any push algorithm suffices *)
  let r2 = Run.exec_spec Run.default_spec Name_dropper.algorithm (Generate.complete 8) in
  Alcotest.(check bool) "complete graph" true r2.Run.completed

let test_leader_completion_weaker () =
  (* leader completion can only be reached at or before strong completion *)
  List.iter
    (fun (algo : Algorithm.t) ->
      let topo = kout ~n:128 ~seed:9 in
      let spec = { Run.default_spec with Run.seed = 9 } in
      let strong = Run.exec_spec { spec with Run.completion = Run.Strong } algo topo in
      let leader = Run.exec_spec { spec with Run.completion = Run.Leader } algo topo in
      Alcotest.(check bool) "both complete" true (strong.Run.completed && leader.Run.completed);
      if leader.Run.rounds > strong.Run.rounds then
        Alcotest.failf "%s: leader completion (%d) later than strong (%d)" algo.Algorithm.name
          leader.Run.rounds strong.Run.rounds)
    [ Hm_gossip.algorithm; Min_pointer.algorithm; Name_dropper.algorithm ]

let test_survivors_predicate_ignores_dead_knowledge () =
  (* Survivors_strong must not require anyone to know crashed nodes that
     nobody ever heard of: crash a node at round 1 on a seeded-directory
     graph where only the node itself knows its id at the start. *)
  let n = 64 and seed = 3 in
  let rng = Repro_util.Rng.substream ~seed ~index:0x70b0 in
  let topo = Generate.seeded_directory ~rng ~n ~seeds:8 ~fanout:2 in
  (* victim: a client node, whose id only the client itself knows *)
  let fault = Repro_engine.Fault.with_crash Repro_engine.Fault.none ~node:(n - 1) ~round:1 in
  let r =
    Run.exec_spec
      {
        Run.default_spec with
        Run.seed;
        fault;
        completion = Run.Survivors_strong;
        max_rounds = Some 2000;
      }
      Hm_gossip.algorithm topo
  in
  Alcotest.(check bool) "survivors complete without the ghost" true r.Run.completed

let test_max_rounds_respected () =
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed = 1; max_rounds = Some 2 }
      Name_dropper.algorithm (kout ~n:256 ~seed:1)
  in
  Alcotest.(check bool) "did not finish in 2 rounds" false r.Run.completed;
  Alcotest.(check int) "stopped at budget" 2 r.Run.rounds

let () =
  Alcotest.run "run"
    [
      ( "driver",
        [
          Alcotest.test_case "result fields" `Quick test_result_fields;
          Alcotest.test_case "growth tracking" `Quick test_growth_tracking;
          Alcotest.test_case "trivial instances" `Quick test_trivial_instances;
          Alcotest.test_case "max rounds respected" `Quick test_max_rounds_respected;
        ] );
      ( "completion predicates",
        [
          Alcotest.test_case "leader is weaker than strong" `Quick test_leader_completion_weaker;
          Alcotest.test_case "survivors ignore unknown ghosts" `Quick
            test_survivors_predicate_ignores_dead_knowledge;
        ] );
    ]
