(* Tests for the synchronous engine: delivery semantics, accounting,
   faults, and determinism. *)

open Repro_engine

(* A tiny echo protocol: node 0 sends its round number to node 1 each
   round; receivers log what they see. *)
let log_handlers log =
  {
    Sim.round_begin =
      (fun ~node ~round ~send -> if node = 0 then send ~dst:1 round);
    deliver = (fun ~node ~src ~round msg -> log := (node, src, round, msg) :: !log);
  }

(* Alcotest has no quad testable by default; build one. *)
let quad a b c d =
  let pp ppf (w, x, y, z) =
    Format.fprintf ppf "(%a,%a,%a,%a)" (Alcotest.pp a) w (Alcotest.pp b) x (Alcotest.pp c) y
      (Alcotest.pp d) z
  in
  Alcotest.testable pp (fun (w1, x1, y1, z1) (w2, x2, y2, z2) ->
      Alcotest.equal a w1 w2 && Alcotest.equal b x1 x2 && Alcotest.equal c y1 y2
      && Alcotest.equal d z1 z2)

let test_synchrony () =
  (* A message sent in round r must not be visible to the receiver's
     round_begin of round r — only from round r+1 on. *)
  let received_before_round = ref [] in
  let inbox = ref 0 in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          if node = 1 then received_before_round := (round, !inbox) :: !received_before_round;
          if node = 0 then send ~dst:1 ());
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> incr inbox);
    }
  in
  let _ =
    Sim.run ~n:2 ~config:Sim.default_config ~handlers ~measure:(fun _ -> 0)
      ~stop:(fun ~round ~alive:_ -> round >= 3)
      ()
  in
  Alcotest.(check (list (pair int int)))
    "node 1 sees k-1 messages at the start of round k"
    [ (1, 0); (2, 1); (3, 2) ]
    (List.rev !received_before_round)

let test_metrics_accounting () =
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round:_ ~send ->
          if node = 0 then begin
            send ~dst:1 3;
            send ~dst:2 5
          end);
      deliver = (fun ~node:_ ~src:_ ~round:_ _ -> ());
    }
  in
  let outcome =
    Sim.run ~n:3 ~config:Sim.default_config ~handlers ~measure:(fun p -> p)
      ~stop:(fun ~round ~alive:_ -> round >= 2)
      ()
  in
  let m = outcome.Sim.metrics in
  Alcotest.(check int) "sent" 4 (Metrics.messages_sent m);
  Alcotest.(check int) "delivered" 4 (Metrics.messages_delivered m);
  Alcotest.(check int) "dropped" 0 (Metrics.messages_dropped m);
  Alcotest.(check int) "pointers" 16 (Metrics.pointers_sent m);
  Alcotest.(check (array int)) "per-round sends" [| 2; 2 |] (Metrics.sent_series m);
  Alcotest.(check (array int)) "per-round pointers" [| 8; 8 |] (Metrics.pointer_series m);
  Alcotest.(check int) "peak" 2 (Metrics.max_messages_in_round m)

(* The metrics recorder driven directly, without an engine: the per-round
   series, CSV projection and peak are pure functions of the recorded
   sequence. *)
let test_metrics_direct () =
  let m = Metrics.create () in
  Alcotest.(check int) "no rounds" 0 (Metrics.rounds m);
  Alcotest.(check (list (list string))) "no rows" [] (Metrics.to_csv_rows m);
  Alcotest.(check (array int)) "empty byte series" [||] (Metrics.byte_series m);
  Alcotest.(check int) "peak of nothing" 0 (Metrics.max_messages_in_round m);
  Metrics.begin_round m;
  Metrics.record_send m ~pointers:3 ~bytes:10;
  Metrics.record_send m ~pointers:1 ~bytes:4;
  Metrics.record_delivery m;
  Metrics.record_drop m;
  Metrics.begin_round m;
  (* a silent round stays in every series *)
  Metrics.begin_round m;
  Metrics.record_send m ~pointers:2 ~bytes:6;
  Alcotest.(check int) "rounds" 3 (Metrics.rounds m);
  Alcotest.(check int) "sent" 3 (Metrics.messages_sent m);
  Alcotest.(check int) "delivered" 1 (Metrics.messages_delivered m);
  Alcotest.(check int) "dropped" 1 (Metrics.messages_dropped m);
  Alcotest.(check int) "pointers" 6 (Metrics.pointers_sent m);
  Alcotest.(check int) "bytes" 20 (Metrics.bytes_sent m);
  Alcotest.(check (array int)) "byte series" [| 14; 0; 6 |] (Metrics.byte_series m);
  Alcotest.(check (array int)) "sent series" [| 2; 0; 1 |] (Metrics.sent_series m);
  Alcotest.(check int) "peak round" 2 (Metrics.max_messages_in_round m);
  Alcotest.(check (list (list string)))
    "csv rows are [round; messages; pointers; bytes]"
    [
      [ "1"; "2"; "4"; "14" ];
      [ "2"; "0"; "0"; "0" ];
      [ "3"; "1"; "2"; "6" ];
    ]
    (Metrics.to_csv_rows m)

let test_stop_before_first_round () =
  let outcome =
    Sim.run ~n:2 ~config:Sim.default_config
      ~handlers:
        {
          Sim.round_begin = (fun ~node:_ ~round:_ ~send:_ -> Alcotest.fail "should not run");
          deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
        }
      ~measure:(fun _ -> 0)
      ~stop:(fun ~round:_ ~alive:_ -> true)
      ()
  in
  Alcotest.(check bool) "completed" true outcome.Sim.completed;
  Alcotest.(check int) "no rounds" 0 outcome.Sim.rounds

let test_max_rounds () =
  let outcome =
    Sim.run ~n:1
      ~config:{ Sim.default_config with Sim.max_rounds = 7 }
      ~handlers:
        {
          Sim.round_begin = (fun ~node:_ ~round:_ ~send:_ -> ());
          deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
        }
      ~measure:(fun _ -> 0)
      ~stop:(fun ~round:_ ~alive:_ -> false)
      ()
  in
  Alcotest.(check bool) "incomplete" false outcome.Sim.completed;
  Alcotest.(check int) "round budget" 7 outcome.Sim.rounds

let test_send_validation () =
  let handlers =
    {
      Sim.round_begin = (fun ~node:_ ~round:_ ~send -> send ~dst:5 ());
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
    }
  in
  Alcotest.check_raises "bad destination"
    (Invalid_argument "Sim.send: destination out of range") (fun () ->
      ignore
        (Sim.run ~n:2 ~config:Sim.default_config ~handlers ~measure:(fun _ -> 0)
           ~stop:(fun ~round:_ ~alive:_ -> false)
           ()))

let test_crash_semantics () =
  (* node 1 crashes at round 3: it must send in rounds 1-2 and receive
     messages delivered in rounds 1-2, nothing after. *)
  let sent_by_1 = ref [] in
  let delivered_to_1 = ref [] in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          if node = 1 then sent_by_1 := round :: !sent_by_1;
          if node = 0 then send ~dst:1 round);
      deliver = (fun ~node ~src:_ ~round msg -> if node = 1 then delivered_to_1 := (round, msg) :: !delivered_to_1);
    }
  in
  let fault = Fault.with_crash Fault.none ~node:1 ~round:3 in
  let outcome =
    Sim.run ~n:2
      ~config:{ Sim.default_config with Sim.fault; max_rounds = 5 }
      ~handlers ~measure:(fun _ -> 1)
      ~stop:(fun ~round:_ ~alive:_ -> false)
      ()
  in
  Alcotest.(check (list int)) "sent rounds" [ 1; 2 ] (List.rev !sent_by_1);
  Alcotest.(check (list (pair int int))) "received rounds" [ (1, 1); (2, 2) ]
    (List.rev !delivered_to_1);
  Alcotest.(check bool) "marked dead" false outcome.Sim.alive.(1);
  Alcotest.(check bool) "others alive" true outcome.Sim.alive.(0);
  (* messages to the dead node count as drops *)
  Alcotest.(check int) "dropped" 3 (Metrics.messages_dropped outcome.Sim.metrics)

let count_drops ~seed ~p =
  let handlers =
    {
      Sim.round_begin = (fun ~node:_ ~round:_ ~send -> send ~dst:0 ());
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
    }
  in
  let fault = Fault.with_loss Fault.none ~p in
  let outcome =
    Sim.run ~n:50
      ~config:{ Sim.default_config with Sim.max_rounds = 40; fault; engine_seed = seed }
      ~handlers ~measure:(fun _ -> 0)
      ~stop:(fun ~round:_ ~alive:_ -> false)
      ()
  in
  Metrics.messages_dropped outcome.Sim.metrics

let test_loss_rate_and_determinism () =
  let d1 = count_drops ~seed:4 ~p:0.25 in
  let d2 = count_drops ~seed:4 ~p:0.25 in
  Alcotest.(check int) "loss is deterministic per seed" d1 d2;
  let total = 50 * 40 in
  let rate = float_of_int d1 /. float_of_int total in
  if Float.abs (rate -. 0.25) > 0.05 then Alcotest.failf "loss rate drifted: %f" rate;
  Alcotest.(check int) "p=0 drops nothing" 0 (count_drops ~seed:4 ~p:0.0)

let test_alive_callback () =
  let observed = ref [] in
  let fault = Fault.with_crash Fault.none ~node:0 ~round:2 in
  let _ =
    Sim.run ~n:2
      ~config:{ Sim.default_config with Sim.fault; max_rounds = 3 }
      ~handlers:
        {
          Sim.round_begin = (fun ~node:_ ~round:_ ~send:_ -> ());
          deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
        }
      ~measure:(fun _ -> 0)
      ~stop:(fun ~round ~alive ->
        observed := (round, alive 0) :: !observed;
        false)
      ()
  in
  (* round 0 pre-check, then after rounds 1..3 *)
  Alcotest.(check (list (pair int bool))) "alive transitions"
    [ (0, true); (1, true); (2, false); (3, false) ]
    (List.rev !observed)

let test_join_semantics () =
  (* node 1 joins at round 3: silent and deaf before, normal after *)
  let sent_by_1 = ref [] in
  let delivered_to_1 = ref [] in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          if node = 1 then sent_by_1 := round :: !sent_by_1;
          if node = 0 then send ~dst:1 round);
      deliver =
        (fun ~node ~src:_ ~round msg ->
          if node = 1 then delivered_to_1 := (round, msg) :: !delivered_to_1);
    }
  in
  let fault = Fault.with_join Fault.none ~node:1 ~round:3 in
  let outcome =
    Sim.run ~n:2
      ~config:{ Sim.default_config with Sim.fault; max_rounds = 5 }
      ~handlers ~measure:(fun _ -> 1)
      ~stop:(fun ~round:_ ~alive:_ -> false)
      ()
  in
  Alcotest.(check (list int)) "active rounds" [ 3; 4; 5 ] (List.rev !sent_by_1);
  Alcotest.(check (list (pair int int))) "received after joining"
    [ (3, 3); (4, 4); (5, 5) ]
    (List.rev !delivered_to_1);
  Alcotest.(check bool) "alive at end" true outcome.Sim.alive.(1);
  Alcotest.(check int) "pre-join messages dropped" 2
    (Metrics.messages_dropped outcome.Sim.metrics)

let test_join_then_crash () =
  (* a crash before the scheduled join wins: the node never activates *)
  let activity = ref 0 in
  let fault = Fault.with_crash (Fault.with_join Fault.none ~node:0 ~round:4) ~node:0 ~round:2 in
  let outcome =
    Sim.run ~n:1
      ~config:{ Sim.default_config with Sim.fault; max_rounds = 6 }
      ~handlers:
        {
          Sim.round_begin = (fun ~node:_ ~round:_ ~send:_ -> incr activity);
          deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
        }
      ~measure:(fun _ -> 0)
      ~stop:(fun ~round:_ ~alive:_ -> false)
      ()
  in
  Alcotest.(check int) "never active" 0 !activity;
  Alcotest.(check bool) "dead at end" false outcome.Sim.alive.(0)

let test_fault_model () =
  let f = Fault.with_crashes (Fault.with_loss Fault.none ~p:0.5) [ (3, 7); (1, 2) ] in
  Alcotest.(check (float 1e-9)) "loss" 0.5 (Fault.drop_probability f);
  Alcotest.(check (option int)) "crash round" (Some 7) (Fault.crash_round f ~node:3);
  Alcotest.(check (option int)) "no crash" None (Fault.crash_round f ~node:0);
  Alcotest.(check (list (pair int int))) "sorted crashes" [ (1, 2); (3, 7) ] (Fault.crashed_nodes f);
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Fault.with_loss: probability out of range") (fun () ->
      ignore (Fault.with_loss Fault.none ~p:1.5));
  Alcotest.check_raises "bad round" (Invalid_argument "Fault.with_crash: rounds are 1-based")
    (fun () -> ignore (Fault.with_crash Fault.none ~node:0 ~round:0))

let () =
  let test_basic_delivery () =
    let log = ref [] in
    let outcome =
      Sim.run ~n:2 ~config:Sim.default_config ~handlers:(log_handlers log) ~measure:(fun _ -> 1)
        ~stop:(fun ~round ~alive:_ -> round >= 3)
        ()
    in
    Alcotest.(check bool) "completed" true outcome.Sim.completed;
    Alcotest.(check int) "rounds" 3 outcome.Sim.rounds;
    Alcotest.(check (list (quad int int int int))) "deliveries in round order"
      [ (1, 0, 1, 1); (1, 0, 2, 2); (1, 0, 3, 3) ]
      (List.rev !log)
  in
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "synchrony" `Quick test_synchrony;
          Alcotest.test_case "stop before round 1" `Quick test_stop_before_first_round;
          Alcotest.test_case "max rounds" `Quick test_max_rounds;
          Alcotest.test_case "send validation" `Quick test_send_validation;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "metrics" `Quick test_metrics_accounting;
          Alcotest.test_case "metrics direct" `Quick test_metrics_direct;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
          Alcotest.test_case "loss rate + determinism" `Quick test_loss_rate_and_determinism;
          Alcotest.test_case "alive callback" `Quick test_alive_callback;
          Alcotest.test_case "join semantics" `Quick test_join_semantics;
          Alcotest.test_case "crash beats join" `Quick test_join_then_crash;
          Alcotest.test_case "fault model" `Quick test_fault_model;
        ] );
    ]
