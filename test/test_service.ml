(* Continuous discovery service: the convergence-lag invariant checker,
   the versioned-update wire codec, the membership view lattice, the
   graceful-leave fault schedule, and end-to-end soaks of the service
   runtime under churn. *)

open Repro_engine
open Repro_discovery
open Repro_service

(* --- Trace.Lag: the convergence-lag invariant ------------------------- *)

let feed lag events =
  let sink = Trace.Lag.sink lag in
  List.iter (Trace.emit sink) events

let tick time = Trace.Tick { node = 0; time; count = 1 }

let test_lag_clean_churn () =
  let lag = Trace.Lag.create ~bound:10.0 () in
  feed lag
    [
      (* genesis: pre-tick joins carry no deadline *)
      Trace.Join { node = 0 };
      Trace.Join { node = 1 };
      Trace.Join { node = 2 };
      tick 1.0;
      Trace.Crash { node = 2 };
      (* epoch 1 at t=1 *)
      tick 2.0;
      Trace.Converge { node = 0; epoch = 1 };
      Trace.Converge { node = 1; epoch = 1 };
      tick 3.0;
      Trace.Join { node = 3 };
      (* epoch 2 at t=3: nodes 0, 1 and the joiner itself must converge *)
      tick 5.0;
      Trace.Converge { node = 0; epoch = 2 };
      Trace.Converge { node = 1; epoch = 2 };
      Trace.Converge { node = 3; epoch = 2 };
      tick 6.0;
    ];
  Trace.Lag.final_check lag;
  Alcotest.(check int) "epochs" 2 (Trace.Lag.epochs lag);
  Alcotest.(check int) "closed" 2 (Trace.Lag.closed lag);
  Alcotest.(check bool) "max lag recorded" true (Trace.Lag.max_lag lag >= 1.0)

let test_lag_violation_rejected () =
  let lag = Trace.Lag.create ~bound:5.0 () in
  let violating () =
    feed lag
      [
        Trace.Join { node = 0 };
        Trace.Join { node = 1 };
        tick 1.0;
        Trace.Crash { node = 1 };
        (* node 0 never confirms the change; clock passes 1 + bound *)
        tick 4.0;
        tick 7.0;
      ]
  in
  Alcotest.check_raises "laggard rejected"
    (Trace.Lag.Violation
       "convergence lag exceeded: node 0 has not converged to epoch 1 (change at t=1) by t=7 \
        (bound 5)")
    violating

let test_lag_joiner_is_accountable () =
  let lag = Trace.Lag.create ~bound:5.0 () in
  Alcotest.check_raises "joiner must converge too"
    (Trace.Lag.Violation
       "convergence lag exceeded: node 2 has not converged to epoch 1 (change at t=1) by t=8 \
        (bound 5)")
    (fun () ->
      feed lag
        [
          Trace.Join { node = 0 };
          Trace.Join { node = 1 };
          tick 1.0;
          Trace.Join { node = 2 };
          Trace.Converge { node = 0; epoch = 1 };
          Trace.Converge { node = 1; epoch = 1 };
          tick 8.0;
        ])

let test_lag_departed_not_required () =
  (* a node that leaves mid-epoch is excused from converging to it *)
  let lag = Trace.Lag.create ~bound:5.0 () in
  feed lag
    [
      Trace.Join { node = 0 };
      Trace.Join { node = 1 };
      Trace.Join { node = 2 };
      tick 1.0;
      Trace.Crash { node = 2 };
      tick 2.0;
      Trace.Converge { node = 0; epoch = 1 };
      (* node 1 leaves before confirming epoch 1: that closes the epoch *)
      Trace.Leave { node = 1 };
      Trace.Converge { node = 0; epoch = 2 };
      tick 3.0;
    ];
  Trace.Lag.final_check lag;
  Alcotest.(check int) "both epochs closed" 2 (Trace.Lag.closed lag)

let test_lag_future_epoch_rejected () =
  let lag = Trace.Lag.create () in
  Alcotest.check_raises "cannot converge to the future"
    (Trace.Lag.Violation "node 0 converged to epoch 3, which has not happened (current epoch 0)")
    (fun () -> feed lag [ Trace.Join { node = 0 }; tick 1.0; Trace.Converge { node = 0; epoch = 3 } ])

let test_lag_open_epoch_within_bound_ok () =
  (* the run may end with an epoch still settling, as long as its
     deadline lies beyond the final clock reading *)
  let lag = Trace.Lag.create ~bound:100.0 () in
  feed lag [ Trace.Join { node = 0 }; Trace.Join { node = 1 }; tick 1.0; Trace.Crash { node = 1 }; tick 2.0 ];
  Trace.Lag.final_check lag;
  Alcotest.(check int) "epoch open" 0 (Trace.Lag.closed lag);
  Alcotest.(check int) "but counted" 1 (Trace.Lag.epochs lag)

(* --- Wire codec 3: versioned update batches --------------------------- *)

let updates ?(full = false) entries =
  Payload.Updates
    { full; entries = Array.of_list (List.map (fun (node, version, status) -> { Payload.node; version; status }) entries) }

let roundtrip p =
  let b = Wire.encode Wire.Adaptive ~universe:300 p in
  match Wire.decode Wire.Adaptive ~universe:300 b with
  | Ok p' -> p'
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_wire_updates_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip preserves payload" true (roundtrip p = p))
    [
      Payload.Share (updates [ (0, 1, 0); (7, 12, 2); (299, 1, 1) ]);
      Payload.Share (updates ~full:true [ (3, 1, 0); (4, 2, 0) ]);
      Payload.Exchange (updates ~full:true [ (42, 1, 0) ]);
      Payload.Reply (updates []);
      Payload.Reply (updates ~full:true []);
    ]

let test_wire_updates_canonical_enforced () =
  let check_invalid name p =
    Alcotest.check_raises name (Invalid_argument "Wire.encode: updates not strictly ascending")
      (fun () -> ignore (Wire.encode Wire.Adaptive ~universe:300 p))
  in
  check_invalid "unsorted rejected" (Payload.Share (updates [ (7, 1, 0); (3, 1, 0) ]));
  check_invalid "duplicate rejected" (Payload.Share (updates [ (3, 1, 0); (3, 2, 0) ]))

let test_wire_updates_bad_bytes_rejected () =
  let good = Wire.encode Wire.Adaptive ~universe:300 (Payload.Share (updates [ (5, 3, 1) ])) in
  (* flip the status byte (last byte) to an unknown value *)
  let bad = Bytes.copy good in
  Bytes.set bad (Bytes.length bad - 1) (Char.chr 7);
  (match Wire.decode Wire.Adaptive ~universe:300 bad with
  | Ok _ -> Alcotest.fail "unknown status accepted"
  | Error _ -> ());
  (* truncated body *)
  (match Wire.decode Wire.Adaptive ~universe:300 (Bytes.sub good 0 (Bytes.length good - 1)) with
  | Ok _ -> Alcotest.fail "truncated batch accepted"
  | Error _ -> ());
  (* the full flag is meaningless on a non-update codec *)
  let share = Wire.encode Wire.Adaptive ~universe:300 (Payload.Share (Payload.Ids [| 1; 2 |])) in
  let bad = Bytes.copy share in
  Bytes.set bad 1 (Char.chr (Char.code (Bytes.get share 1) lor 0x40));
  match Wire.decode Wire.Adaptive ~universe:300 bad with
  | Ok _ -> Alcotest.fail "stray full flag accepted"
  | Error _ -> ()

let test_wire_updates_size_exact () =
  let p = Payload.Share (updates [ (0, 1, 0); (150, 200, 2) ]) in
  let b = Wire.encode Wire.Adaptive ~universe:300 p in
  Alcotest.(check int) "encoded_size agrees" (Bytes.length b)
    (Wire.encoded_size Wire.Adaptive ~universe:300 p)

(* --- Wire: failure-detector payloads ----------------------------------- *)

let test_wire_probe_payloads_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip preserves payload" true (roundtrip p = p))
    [
      Payload.Probe_req { target = 0; nonce = 0 };
      Payload.Probe_req { target = 299; nonce = 0x3FFF_FFFF };
      Payload.Probe_ack { target = 17; nonce = 1 };
      Payload.Probe_ack { target = 299; nonce = 12345678 };
      Payload.Suspicion { target = 42; version = 0 };
      Payload.Suspicion { target = 0; version = 77 };
    ];
  (* the three kinds must stay distinct on the wire even with equal fields *)
  let enc p = Bytes.to_string (Wire.encode Wire.Adaptive ~universe:300 p) in
  Alcotest.(check bool) "req <> ack" true
    (enc (Payload.Probe_req { target = 5; nonce = 9 }) <> enc (Payload.Probe_ack { target = 5; nonce = 9 }));
  Alcotest.(check bool) "ack <> suspicion" true
    (enc (Payload.Probe_ack { target = 5; nonce = 9 }) <> enc (Payload.Suspicion { target = 5; version = 9 }))

let test_wire_probe_payloads_canonical_enforced () =
  (* out-of-range targets and negative correlation values must be
     refused at encode time, exactly like out-of-range update entries *)
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) name true
        (try
           ignore (Wire.encode Wire.Adaptive ~universe:300 p);
           false
         with Invalid_argument _ -> true))
    [
      ("target beyond universe", Payload.Probe_req { target = 300; nonce = 1 });
      ("negative target", Payload.Probe_ack { target = -1; nonce = 1 });
      ("negative nonce", Payload.Probe_req { target = 3; nonce = -1 });
      ("negative version", Payload.Suspicion { target = 3; version = -1 });
    ]

let test_wire_probe_payloads_bad_bytes_rejected () =
  let good = Wire.encode Wire.Adaptive ~universe:300 (Payload.Probe_req { target = 5; nonce = 9 }) in
  (* canonical form is exactly two varints: a trailing byte is noise *)
  let padded = Bytes.extend good 0 1 in
  Bytes.set padded (Bytes.length padded - 1) '\000';
  (match Wire.decode Wire.Adaptive ~universe:300 padded with
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error _ -> ());
  (* truncated body *)
  (match Wire.decode Wire.Adaptive ~universe:300 (Bytes.sub good 0 1) with
  | Ok _ -> Alcotest.fail "missing body accepted"
  | Error _ -> ());
  (* a decoded target is range-checked against the receiver's universe *)
  let wide = Wire.encode Wire.Adaptive ~universe:1000 (Payload.Suspicion { target = 750; version = 2 }) in
  match Wire.decode Wire.Adaptive ~universe:300 wide with
  | Ok _ -> Alcotest.fail "out-of-universe target accepted"
  | Error _ -> ()

let test_wire_probe_payloads_size_exact () =
  List.iter
    (fun p ->
      let b = Wire.encode Wire.Adaptive ~universe:300 p in
      Alcotest.(check int) "encoded_size agrees" (Bytes.length b)
        (Wire.encoded_size Wire.Adaptive ~universe:300 p))
    [
      Payload.Probe_req { target = 0; nonce = 0 };
      Payload.Probe_req { target = 299; nonce = 1 lsl 29 };
      Payload.Probe_ack { target = 128; nonce = 300 };
      Payload.Suspicion { target = 200; version = 16384 };
    ]

(* --- Knowledge versions / Payload updates ----------------------------- *)

let knowledge ~n ~owner = Knowledge.create ~n ~owner ~labels:(Array.init n Fun.id) ()

let test_knowledge_versions () =
  let k = knowledge ~n:32 ~owner:0 in
  Alcotest.(check int) "unobserved is 0" 0 (Knowledge.node_version k 5);
  Alcotest.(check bool) "first observation advances" true
    (Knowledge.observe_version k ~node:5 ~version:3);
  Alcotest.(check int) "recorded" 3 (Knowledge.node_version k 5);
  Alcotest.(check bool) "regression ignored" false (Knowledge.observe_version k ~node:5 ~version:2);
  Alcotest.(check bool) "equal ignored" false (Knowledge.observe_version k ~node:5 ~version:3);
  Alcotest.(check bool) "advance accepted" true (Knowledge.observe_version k ~node:5 ~version:9);
  Alcotest.(check bool) "zero is a no-op" false (Knowledge.observe_version k ~node:7 ~version:0);
  Alcotest.(check int) "still unobserved" 0 (Knowledge.node_version k 7);
  Alcotest.check_raises "range checked" (Invalid_argument "Knowledge.node_version: out of range")
    (fun () -> ignore (Knowledge.node_version k 32))

let test_payload_updates_merge () =
  let k = knowledge ~n:32 ~owner:0 in
  let d = updates [ (3, 2, 0); (4, 1, 2) ] in
  Alcotest.(check int) "both fresh" 2 (Payload.merge_data k d);
  Alcotest.(check bool) "ids learned" true (Knowledge.knows k 3 && Knowledge.knows k 4);
  Alcotest.(check int) "version recorded" 2 (Knowledge.node_version k 3);
  Alcotest.(check int) "nothing new twice" 0 (Payload.merge_data k d);
  Alcotest.(check int) "empty batch still costs a pointer" 1
    (Payload.measure (Payload.Share (updates [])))

(* --- Fault: graceful-leave schedules ---------------------------------- *)

let test_fault_leave_roundtrip () =
  let f = Fault.with_leaves Fault.none [ (3, 10); (5, 4) ] in
  Alcotest.(check string) "to_string" "leave=3@10,leave=5@4" (Fault.to_string f);
  (match Fault.of_string (Fault.to_string f) with
  | Ok f' -> Alcotest.(check bool) "roundtrip" true (Fault.equal f f')
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option int)) "leave_round" (Some 4) (Fault.leave_round f ~node:5);
  Alcotest.(check (option int)) "unscheduled" None (Fault.leave_round f ~node:9);
  Alcotest.(check int) "last_scheduled_round sees leaves" 10 (Fault.last_scheduled_round f)

let test_fault_leave_crash_exclusive () =
  let f = Fault.with_leave Fault.none ~node:3 ~round:5 in
  Alcotest.check_raises "crash after leave"
    (Invalid_argument "Fault.with_crash: node is scheduled to leave gracefully") (fun () ->
      ignore (Fault.with_crash f ~node:3 ~round:7));
  let g = Fault.with_crash Fault.none ~node:3 ~round:5 in
  Alcotest.check_raises "leave after crash"
    (Invalid_argument "Fault.with_leave: node is scheduled to crash") (fun () ->
      ignore (Fault.with_leave g ~node:3 ~round:7))

(* --- View: the (version, status) lattice ------------------------------ *)

let test_view_lattice () =
  let v = View.create ~cap:16 ~owner:0 ~labels:(Array.init 16 Fun.id) in
  Alcotest.(check bool) "owner live" true (View.is_live v 0);
  Alcotest.(check bool) "unknown not live" false (View.is_live v 3);
  (match View.apply v ~node:3 ~version:1 ~status:Payload.status_alive with
  | View.Changed true -> ()
  | _ -> Alcotest.fail "first observation should change liveness");
  (match View.apply v ~node:3 ~version:1 ~status:Payload.status_alive with
  | View.Stale -> ()
  | _ -> Alcotest.fail "same observation should be stale");
  (* at equal version the pessimistic status wins *)
  (match View.apply v ~node:3 ~version:1 ~status:Payload.status_down with
  | View.Changed false -> ()
  | _ -> Alcotest.fail "down at same version should win");
  (match View.apply v ~node:3 ~version:1 ~status:Payload.status_alive with
  | View.Stale -> ()
  | _ -> Alcotest.fail "alive cannot override down at the same version");
  (* only a higher incarnation refutes a down verdict *)
  (match View.apply v ~node:3 ~version:2 ~status:Payload.status_alive with
  | View.Changed true -> ()
  | _ -> Alcotest.fail "higher incarnation should refute");
  Alcotest.(check int) "live count" 2 (View.live_count v)

let test_view_suspicion_is_local () =
  let v = View.create ~cap:16 ~owner:0 ~labels:(Array.init 16 Fun.id) in
  ignore (View.apply v ~node:5 ~version:1 ~status:Payload.status_alive);
  Alcotest.(check bool) "suspect flips" true (View.suspect v 5);
  Alcotest.(check bool) "still live" true (View.is_live v 5);
  Alcotest.(check int) "live count unchanged" 2 (View.live_count v);
  Alcotest.(check bool) "unsuspect clears" true (View.unsuspect v 5);
  Alcotest.(check bool) "no double clear" false (View.unsuspect v 5);
  Alcotest.(check bool) "cannot suspect the unknown" false (View.suspect v 9)

(* --- Service: end-to-end soaks ---------------------------------------- *)

let soak_config ?(n = 16) ?(cap = 24) ?(ticks = 600) ?(seed = 11) ?churn ?(fault = Fault.none)
    ?backend ?(indirect_k = 2) ?(lifeguard = true) () =
  {
    Service.n;
    cap;
    seed;
    ticks;
    churn;
    fault;
    lag_bound = None;
    full_sync = None;
    backend;
    indirect_k;
    lifeguard;
    trace = Trace.null;
  }

let test_service_clean_churn_converges () =
  let churn = { Service.rate = 0.1; min_live = 8; until = 450 } in
  let stats = Service.run (soak_config ~churn ()) in
  Alcotest.(check bool) "some churn happened" true (stats.Service.epochs > 0);
  Alcotest.(check int) "every epoch closed" stats.Service.epochs stats.Service.epochs_closed;
  Alcotest.(check bool) "lag within bound" true
    (stats.Service.max_lag <= Service.default_lag_bound ~cap:24)

let test_service_quiet_fleet_sends_no_gossip () =
  let stats = Service.run (soak_config ~ticks:300 ()) in
  Alcotest.(check int) "no gossip without churn" 0 stats.Service.gossip;
  Alcotest.(check int) "no update entries" 0 stats.Service.update_entries;
  Alcotest.(check int) "no churn, no epochs" 0 stats.Service.epochs;
  Alcotest.(check bool) "probe floor only" true
    (stats.Service.msgs = stats.Service.probes + stats.Service.acks)

let test_service_lossy_churn_converges () =
  let churn = { Service.rate = 0.05; min_live = 8; until = 400 } in
  let fault = Fault.with_loss Fault.none ~p:0.05 in
  let stats = Service.run (soak_config ~churn ~fault ~seed:3 ()) in
  Alcotest.(check int) "every epoch closed" stats.Service.epochs stats.Service.epochs_closed;
  Alcotest.(check bool) "loss actually applied" true (stats.Service.dropped_loss > 0);
  Alcotest.(check bool) "backstop auto-enabled" true (stats.Service.full_syncs > 0)

let test_service_scheduled_churn () =
  let fault =
    Fault.with_leave (Fault.with_crash (Fault.with_join Fault.none ~node:20 ~round:100) ~node:2 ~round:50)
      ~node:5 ~round:150
  in
  let stats = Service.run (soak_config ~fault ~ticks:400 ()) in
  Alcotest.(check int) "three scheduled changes" 3 stats.Service.epochs;
  Alcotest.(check int) "all closed" 3 stats.Service.epochs_closed;
  Alcotest.(check int) "one join" 1 stats.Service.joins;
  Alcotest.(check int) "one leave" 1 stats.Service.leaves;
  Alcotest.(check int) "one crash" 1 stats.Service.crashes;
  Alcotest.(check int) "net population" 15 stats.Service.final_live

let test_service_deterministic () =
  let churn = { Service.rate = 0.08; min_live = 8; until = 400 } in
  let a = Service.run (soak_config ~churn ~seed:9 ()) in
  let b = Service.run (soak_config ~churn ~seed:9 ()) in
  Alcotest.(check string) "byte-identical reports" (Service.stats_to_json a)
    (Service.stats_to_json b);
  let c = Service.run (soak_config ~churn ~seed:10 ()) in
  Alcotest.(check bool) "seed matters" true (Service.stats_to_json a <> Service.stats_to_json c)

let test_service_traffic_scales_with_churn_not_n () =
  (* per-member steady-state traffic must be flat in fleet size and
     grow with the churn rate: the anti-entropy claim of the service *)
  let run ~n ~rate =
    let cap = n + n / 4 in
    let churn = if rate = 0.0 then None else Some { Service.rate; min_live = n / 2; until = 700 } in
    let stats = Service.run (soak_config ~n ~cap ~ticks:900 ~seed:5 ?churn ()) in
    float_of_int (stats.Service.gossip + stats.Service.probes + stats.Service.acks)
    /. float_of_int stats.Service.ticks_run /. float_of_int n
  in
  let small_quiet = run ~n:32 ~rate:0.0 in
  let small_churny = run ~n:32 ~rate:0.2 in
  let big_churny = run ~n:128 ~rate:0.2 in
  Alcotest.(check bool) "churn costs traffic" true (small_churny > small_quiet);
  (* quadrupling the fleet at fixed churn must not quadruple per-member
     traffic; allow 2x slack for the log-factor and noise *)
  Alcotest.(check bool) "per-member traffic flat in n" true (big_churny < 2.0 *. small_churny)

(* --- Service over a real backend -------------------------------------- *)

let test_service_mux_soak_converges () =
  (* members hosted inside node cores: envelope framing, go-back-N and
     the in-core fault shim on every hop. The run must close every
     churn epoch just like the virtual-network path does. *)
  let churn = { Service.rate = 0.05; min_live = 12; until = 400 } in
  let fault = Fault.with_loss Fault.none ~p:0.1 in
  let stats =
    Service.run (soak_config ~n:24 ~cap:32 ~ticks:600 ~churn ~fault ~seed:3 ~backend:Repro_net.Backend.Mux ())
  in
  Alcotest.(check bool) "churn happened" true (stats.Service.epochs > 0);
  Alcotest.(check int) "every epoch closed" stats.Service.epochs stats.Service.epochs_closed;
  (* loss lives in the core's fault shim on this path: the runtime must
     not double-apply it, and go-back-N must be doing real work *)
  Alcotest.(check int) "no service-level drops" 0 stats.Service.dropped_loss;
  Alcotest.(check bool) "go-back-N retransmitted" true (stats.Service.retransmits > 0)

let test_service_mux_deterministic () =
  let churn = { Service.rate = 0.08; min_live = 8; until = 300 } in
  let cfg = soak_config ~ticks:450 ~churn ~seed:9 ~backend:Repro_net.Backend.Mux in
  Alcotest.(check string) "byte-identical reports"
    (Service.stats_to_json (Service.run (cfg ())))
    (Service.stats_to_json (Service.run (cfg ())))

let test_service_process_backend_rejected () =
  Alcotest.check_raises "one-process runtime"
    (Invalid_argument
       "Service.run: process backends fork one OS process per node; the multiplexed service \
        runs on loopback or mux")
    (fun () ->
      ignore
        (Service.run (soak_config ~backend:(Repro_net.Backend.Process Repro_net.Backend.Uds) ())))

let test_service_mux_partition_heals () =
  (* a clean two-way cut: cross-partition probes all fail, so both
     sides wrongly convict the other (every conviction is false — no
     one actually died). After the heal, a scheduled join opens an
     epoch that every member must close; closing it requires having
     refuted every partition-era conviction, since a view still holding
     a live member down hashes to no true membership snapshot. *)
  let n = 24 and cap = 32 in
  let fault =
    Fault.with_join
      (Fault.with_partition Fault.none
         ~groups:[ List.init 12 Fun.id; List.init 12 (fun i -> 12 + i) ]
         ~start:100 ~heal:180)
      ~node:24 ~round:300
  in
  let stats = Service.run (soak_config ~n ~cap ~ticks:500 ~fault ~backend:Repro_net.Backend.Mux ()) in
  Alcotest.(check bool) "partition caused false convictions" true
    (stats.Service.false_retirements > 0);
  Alcotest.(check int) "join epoch" 1 stats.Service.epochs;
  Alcotest.(check int) "closed after heal" 1 stats.Service.epochs_closed;
  Alcotest.(check int) "everyone refuted and survived" 25 stats.Service.final_live

let test_service_detector_precision () =
  (* healthy fleet + heavy loss: every suspicion is false. The indirect
     round, local health and confirmation-scaled windows must cut false
     verdicts at least fivefold against the naive direct-probe detector
     (ISSUE acceptance; in practice they reach zero here). *)
  let fault = Fault.with_loss Fault.none ~p:0.2 in
  let run ~indirect_k ~lifeguard =
    Service.run (soak_config ~n:24 ~cap:32 ~ticks:800 ~fault ~seed:7 ~indirect_k ~lifeguard ())
  in
  let naive = run ~indirect_k:0 ~lifeguard:false in
  let full = run ~indirect_k:2 ~lifeguard:true in
  Alcotest.(check bool) "naive detector suspects the living" true
    (naive.Service.false_suspicions > 0);
  Alcotest.(check bool) "5x fewer false suspicions" true
    (5 * full.Service.false_suspicions <= naive.Service.false_suspicions);
  Alcotest.(check bool) "no more convictions than the naive detector" true
    (full.Service.false_retirements <= naive.Service.false_retirements)

let test_service_observer_tables_bounded () =
  (* satellite of the lag observer: its snapshot and epoch tables must
     stay O(bound), not O(changes), over a long churny soak. The peaks
     are deterministic for a fixed seed — pin them. *)
  let churn = { Service.rate = 0.1; min_live = 8; until = 1900 } in
  let stats = Service.run (soak_config ~ticks:2000 ~churn ~seed:4 ()) in
  Alcotest.(check bool) "many changes happened" true (stats.Service.epochs > 50);
  let bound = Service.default_lag_bound ~cap:24 in
  Alcotest.(check bool) "snapshot table bounded by expiry window" true
    (float_of_int stats.Service.snapshots_peak <= (2.0 *. bound) +. 1.0);
  Alcotest.(check bool) "epoch table bounded by open epochs" true
    (stats.Service.lag_table_peak < stats.Service.epochs);
  Alcotest.(check int) "snapshot high-water pinned" 25 stats.Service.snapshots_peak;
  Alcotest.(check int) "epoch-table high-water pinned" 10 stats.Service.lag_table_peak

(* --- chaos matrix: the known-failing cell stays pinned ---------------- *)

let test_chaos_known_failing_cell_pinned () =
  (* hm on a tree under the partition family: a real robustness gap
     tracked by ci/chaos-matrix-baseline.json. Pin the exact pass count
     so a fix (or a regression) surfaces here first. *)
  let open Repro_net in
  let cells =
    Chaos.matrix ~algos:[ Hm_gossip.algorithm ] ~families:[ Repro_graph.Generate.Binary_tree ]
      ~plans:[ "partition" ] ~n:8 ~trials:3 ~seed:0 ~backend:Backend.Mux ~timeout:10.0
      ~loss_max:0.2 ()
  in
  match cells with
  | [ cell ] ->
    Alcotest.(check string) "cell"
      "{\"algo\":\"hm\",\"topology\":\"tree\",\"plan_family\":\"partition\",\"n\":8,\"trials\":3,\"passed\":2,\"failed\":1}"
      (Chaos.cell_to_json cell)
  | _ -> Alcotest.fail "expected exactly one cell"

let test_chaos_failing_cell_diagnosed () =
  (* Trace-level replay of the cell's failing trial (trial 0): the cut
     0-2|3-7 lands while hm is mid-halt. Nodes 1 and 3 reach local
     termination inside their side of the partition and go silent
     before the heal, so the identifiers only they would have relayed
     never cross the healed cut and six nodes starve. The passing
     trials also have pre-heal-quiet nodes, but every one of those
     completes — quiet *and completed* before the heal is the fatal
     combination. *)
  let open Repro_net in
  let diagnose trial =
    Chaos.diagnose ~algo:Hm_gossip.algorithm ~family:Repro_graph.Generate.Binary_tree
      ~plan_family:"partition" ~n:8 ~trial ~seed:0 ~backend:Backend.Mux ~timeout:10.0
      ~loss_max:0.2 ()
  in
  let d = diagnose 0 in
  Alcotest.(check string) "failing trial diagnosis"
    "{\"seed\":0,\"plan\":\"part=0-2|3-7@2..9\",\"heal_time\":9,\"quiet_pre_heal\":[1,3,4,7],\"never_completed\":[0,2,4,5,6,7],\"converged\":false}"
    (Chaos.diagnosis_to_json d);
  let halted_pre_heal =
    List.filter (fun id -> not (List.mem id d.Chaos.diag_never_completed)) d.Chaos.diag_quiet_pre_heal
  in
  Alcotest.(check (list int)) "nodes that halted inside the partition" [ 1; 3 ] halted_pre_heal;
  (* the same replay of a passing trial shows no such node *)
  let ok = diagnose 1 in
  Alcotest.(check bool) "trial 1 converged" true ok.Chaos.diag_converged;
  Alcotest.(check (list int)) "nobody starved" [] ok.Chaos.diag_never_completed

let () =
  Alcotest.run "service"
    [
      ( "lag",
        [
          Alcotest.test_case "clean churn passes" `Quick test_lag_clean_churn;
          Alcotest.test_case "laggard rejected" `Quick test_lag_violation_rejected;
          Alcotest.test_case "joiner accountable" `Quick test_lag_joiner_is_accountable;
          Alcotest.test_case "departed excused" `Quick test_lag_departed_not_required;
          Alcotest.test_case "future epoch rejected" `Quick test_lag_future_epoch_rejected;
          Alcotest.test_case "open epoch within bound" `Quick test_lag_open_epoch_within_bound_ok;
        ] );
      ( "wire",
        [
          Alcotest.test_case "updates roundtrip" `Quick test_wire_updates_roundtrip;
          Alcotest.test_case "canonical form enforced" `Quick test_wire_updates_canonical_enforced;
          Alcotest.test_case "bad bytes rejected" `Quick test_wire_updates_bad_bytes_rejected;
          Alcotest.test_case "size exact" `Quick test_wire_updates_size_exact;
          Alcotest.test_case "probe payloads roundtrip" `Quick test_wire_probe_payloads_roundtrip;
          Alcotest.test_case "probe payloads canonical" `Quick
            test_wire_probe_payloads_canonical_enforced;
          Alcotest.test_case "probe payloads bad bytes" `Quick
            test_wire_probe_payloads_bad_bytes_rejected;
          Alcotest.test_case "probe payloads size exact" `Quick test_wire_probe_payloads_size_exact;
        ] );
      ( "versions",
        [
          Alcotest.test_case "knowledge versions" `Quick test_knowledge_versions;
          Alcotest.test_case "payload merge" `Quick test_payload_updates_merge;
        ] );
      ( "fault",
        [
          Alcotest.test_case "leave roundtrip" `Quick test_fault_leave_roundtrip;
          Alcotest.test_case "leave/crash exclusive" `Quick test_fault_leave_crash_exclusive;
        ] );
      ( "view",
        [
          Alcotest.test_case "lattice" `Quick test_view_lattice;
          Alcotest.test_case "suspicion local" `Quick test_view_suspicion_is_local;
        ] );
      ( "soak",
        [
          Alcotest.test_case "clean churn converges" `Quick test_service_clean_churn_converges;
          Alcotest.test_case "quiet fleet silent" `Quick test_service_quiet_fleet_sends_no_gossip;
          Alcotest.test_case "lossy churn converges" `Quick test_service_lossy_churn_converges;
          Alcotest.test_case "scheduled churn" `Quick test_service_scheduled_churn;
          Alcotest.test_case "deterministic" `Quick test_service_deterministic;
          Alcotest.test_case "traffic scales with churn" `Slow
            test_service_traffic_scales_with_churn_not_n;
          Alcotest.test_case "observer tables bounded" `Slow test_service_observer_tables_bounded;
        ] );
      ( "detector",
        [ Alcotest.test_case "precision under loss" `Slow test_service_detector_precision ] );
      ( "backend",
        [
          Alcotest.test_case "mux soak converges" `Slow test_service_mux_soak_converges;
          Alcotest.test_case "mux deterministic" `Slow test_service_mux_deterministic;
          Alcotest.test_case "mux partition heals" `Slow test_service_mux_partition_heals;
          Alcotest.test_case "process rejected" `Quick test_service_process_backend_rejected;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "known-failing cell pinned" `Slow test_chaos_known_failing_cell_pinned;
          Alcotest.test_case "failing cell diagnosed" `Slow test_chaos_failing_cell_diagnosed;
        ] );
    ]
