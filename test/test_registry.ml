open Repro_discovery

let names (l : Algorithm.t list) = List.map (fun a -> a.Algorithm.name) l

let test_all () =
  Alcotest.(check (list string)) "catalogue order"
    [ "flooding"; "swamping"; "pointer_jump"; "name_dropper"; "min_pointer"; "rand_gossip"; "hm" ]
    (names Registry.all);
  Alcotest.(check (list string)) "baselines exclude hm"
    [ "flooding"; "swamping"; "pointer_jump"; "name_dropper"; "min_pointer"; "rand_gossip" ]
    (names Registry.baselines);
  Alcotest.(check (list string)) "names()" (names Registry.all) (Registry.names ())

let find_ok name =
  match Registry.find name with
  | Ok a -> a
  | Error e -> Alcotest.failf "find %S failed: %s" name e

let test_find_primary () =
  List.iter
    (fun n -> Alcotest.(check string) "resolves" n (find_ok n).Algorithm.name)
    (Registry.names ())

let test_find_aliases () =
  List.iter
    (fun (alias, expected) ->
      Alcotest.(check string) alias expected (find_ok alias).Algorithm.name)
    [ ("hm_gossip", "hm"); ("haeupler_malkhi", "hm") ]

let test_find_rand_specs () =
  List.iter
    (fun (spec, expected) ->
      Alcotest.(check string) spec expected (find_ok spec).Algorithm.name)
    [
      ("rand:push/f1", "rand:push/f1");
      ("rand:push_pull/f4", "rand:push_pull/f4");
      ("rand:pull/f2/nbr", "rand:pull/f2/nbr");
      ("rand:push/f1/delta", "rand:push/f1/delta");
    ]

let test_find_hm_specs () =
  List.iter
    (fun (spec, expected) ->
      Alcotest.(check string) spec expected (find_ok spec).Algorithm.name)
    [
      ("hm:full", "hm:full");
      ("hm:cap:4", "hm:cap:4");
      ("hm:nobroadcast", "hm:nobroadcast");
      ("hm:cap:2/full", "hm:cap:2/full");
    ]

let test_find_errors () =
  List.iter
    (fun spec ->
      match Registry.find spec with
      | Ok a -> Alcotest.failf "expected failure for %S, got %s" spec a.Algorithm.name
      | Error _ -> ())
    [ "bogus"; "rand:warp/f1"; "rand:push/f0"; "hm:cap:0"; "hm:bogus"; "hm:" ]

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec at i = i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1)) in
  at 0

let test_near_miss_suggestions () =
  let error name =
    match Registry.find name with
    | Ok a -> Alcotest.failf "expected failure for %S, got %s" name a.Algorithm.name
    | Error e -> e
  in
  List.iter
    (fun (name, expected) ->
      let e = error name in
      if not (contains ~sub:(Printf.sprintf "did you mean %S" expected) e) then
        Alcotest.failf "error for %S does not suggest %S: %s" name expected e)
    [
      ("hmgossip", "hm");  (* mangled module-style name contains the real name *)
      ("floding", "flooding");  (* typo within edit distance 2 *)
      ("rand", "rand_gossip");  (* truncation *)
      ("name_droper", "name_dropper");
    ];
  (* hopeless queries get the catalogue but no bogus suggestion *)
  let e = error "warp" in
  if contains ~sub:"did you mean" e then Alcotest.failf "unexpected suggestion for warp: %s" e;
  if not (contains ~sub:"known:" e) then Alcotest.failf "catalogue missing from error: %s" e

let test_parse_doc () =
  let doc = Registry.parse_doc () in
  List.iter
    (fun sub ->
      if not (contains ~sub doc) then Alcotest.failf "parse_doc missing %S: %s" sub doc)
    (Registry.names () @ [ "rand:"; "hm:cap:" ])

let test_spec_algorithms_run () =
  (* every parseable spec must produce a runnable algorithm *)
  let topo = Repro_experiments.Sweepcell.topology_of ~family:(Repro_graph.Generate.K_out 3) ~n:48 ~seed:1 in
  List.iter
    (fun spec ->
      let algo = find_ok spec in
      let r =
        Run.exec_spec { Run.default_spec with Run.seed = 1; max_rounds = Some 500 } algo topo
      in
      Alcotest.(check bool) (spec ^ " runs") true (r.Run.rounds > 0))
    [ "rand:push/f2"; "hm:cap:8"; "hm:full" ]

let () =
  Alcotest.run "registry"
    [
      ( "catalogue",
        [
          Alcotest.test_case "all/baselines" `Quick test_all;
          Alcotest.test_case "find primary" `Quick test_find_primary;
          Alcotest.test_case "module-style aliases" `Quick test_find_aliases;
        ] );
      ( "specs",
        [
          Alcotest.test_case "rand specs" `Quick test_find_rand_specs;
          Alcotest.test_case "hm specs" `Quick test_find_hm_specs;
          Alcotest.test_case "errors" `Quick test_find_errors;
          Alcotest.test_case "near-miss suggestions" `Quick test_near_miss_suggestions;
          Alcotest.test_case "parse doc" `Quick test_parse_doc;
          Alcotest.test_case "spec algorithms run" `Quick test_spec_algorithms_run;
        ] );
    ]
