(* Tests for local termination detection: quiescence is reached, is safe
   (knowledge complete when the nodes stop), actually silences the
   system, and is reversible when late joiners arrive after the Halt
   wave. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let build family ~n ~seed = Repro_experiments.Sweepcell.topology_of ~family ~n ~seed

(* run hm with direct access to the instances *)
let drive ?(fault = Fault.none) ?(max_rounds = 2000) ~family ~n ~seed ~stop () =
  let topology = build family ~n ~seed in
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        Hm_gossip.algorithm.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ p -> instances.(node).Algorithm.receive ~src p);
    }
  in
  let outcome =
    Sim.run ~n
      ~config:{ Sim.default_config with Sim.max_rounds; fault; engine_seed = seed }
      ~handlers ~measure:Payload.measure ~stop:(stop instances) ()
  in
  (instances, outcome)

let all_quiescent instances ~alive =
  let ok = ref true in
  Array.iteri
    (fun v i -> if alive v && not (i.Algorithm.is_quiescent ()) then ok := false)
    instances;
  !ok

let test_quiescence_safe () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let instances, outcome =
            drive ~family ~n:128 ~seed
              ~stop:(fun instances ~round:_ ~alive -> all_quiescent instances ~alive)
              ()
          in
          if not outcome.Sim.completed then
            Alcotest.failf "quiescence not reached on %s seed=%d" (Generate.family_name family)
              seed;
          Array.iteri
            (fun v i ->
              if not (Knowledge.is_complete i.Algorithm.knowledge) then
                Alcotest.failf "%s seed=%d: node %d halted with incomplete knowledge"
                  (Generate.family_name family) seed v)
            instances)
        [ 1; 2; 3 ])
    [ Generate.K_out 3; Generate.Path; Generate.Binary_tree; Generate.Star ]

let test_system_goes_silent () =
  (* run well past quiescence: the per-round message series must decay to
     exactly zero and stay there *)
  let _, outcome =
    drive ~family:(Generate.K_out 3) ~n:128 ~seed:1 ~max_rounds:60
      ~stop:(fun _ ~round:_ ~alive:_ -> false)
      ()
  in
  let series = Metrics.sent_series outcome.Sim.metrics in
  let last_active = ref 0 in
  Array.iteri (fun i sent -> if sent > 0 then last_active := i + 1) series;
  if !last_active >= 40 then
    Alcotest.failf "messages still flowing at round %d" !last_active;
  Alcotest.(check int) "total rounds ran" 60 outcome.Sim.rounds

let test_quiescent_after_complete () =
  let spec = { Run.default_spec with Run.seed = 3 } in
  let r_strong =
    Run.exec_spec spec Hm_gossip.algorithm (build (Generate.K_out 3) ~n:256 ~seed:3)
  in
  let r_quiet =
    Run.exec_spec
      { spec with Run.completion = Run.Quiescent }
      Hm_gossip.algorithm
      (build (Generate.K_out 3) ~n:256 ~seed:3)
  in
  Alcotest.(check bool) "both complete" true (r_strong.Run.completed && r_quiet.Run.completed);
  Alcotest.(check bool) "quiescence after completion" true
    (r_quiet.Run.rounds >= r_strong.Run.rounds)

let test_baselines_never_quiescent () =
  List.iter
    (fun (algo : Algorithm.t) ->
      let r =
        Run.exec_spec
          {
            Run.default_spec with
            Run.seed = 1;
            completion = Run.Quiescent;
            max_rounds = Some 100;
          }
          algo
          (build (Generate.K_out 3) ~n:64 ~seed:1)
      in
      if r.Run.completed then
        Alcotest.failf "%s claims quiescence without termination detection" algo.Algorithm.name)
    Registry.baselines

let test_wakeup_on_late_join () =
  (* a straggler joins long after the Halt wave: the system must wake,
     integrate it, and re-halt with complete knowledge *)
  let n = 128 and seed = 2 in
  let fault = Fault.with_join Fault.none ~node:77 ~round:40 in
  let instances, outcome =
    drive ~family:(Generate.K_out 3) ~n ~seed ~fault ~max_rounds:2000
      ~stop:(fun instances ~round ~alive ->
        round >= 41 && all_quiescent instances ~alive)
      ()
  in
  Alcotest.(check bool) "re-quiesced after the join" true outcome.Sim.completed;
  Array.iteri
    (fun v i ->
      if not (Knowledge.is_complete i.Algorithm.knowledge) then
        Alcotest.failf "node %d incomplete after late join integration" v)
    instances;
  Alcotest.(check bool) "joiner integrated" true
    (Knowledge.is_complete instances.(77).Algorithm.knowledge)

let test_quiescent_cli_mode () =
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed = 5; completion = Run.Quiescent }
      Hm_gossip.algorithm
      (build (Generate.Clustered (4, 2)) ~n:96 ~seed:5)
  in
  Alcotest.(check bool) "quiescent completion works through Run" true r.Run.completed

let () =
  Alcotest.run "termination"
    [
      ( "safety",
        [
          Alcotest.test_case "quiescence is reached and safe" `Quick test_quiescence_safe;
          Alcotest.test_case "system goes silent" `Quick test_system_goes_silent;
          Alcotest.test_case "quiescence after completion" `Quick test_quiescent_after_complete;
        ] );
      ( "interface",
        [
          Alcotest.test_case "baselines never quiescent" `Quick test_baselines_never_quiescent;
          Alcotest.test_case "Run.Quiescent" `Quick test_quiescent_cli_mode;
        ] );
      ( "reversibility",
        [ Alcotest.test_case "late joiner wakes a halted system" `Quick test_wakeup_on_late_join ]
      );
    ]
