(* Live transport layer: envelope framing, control protocol, loopback
   trace-identity, and real multi-process UDS/TCP clusters. *)

open Repro_engine
open Repro_discovery
open Repro_net

let get_algo name =
  match Registry.find name with Ok a -> a | Error e -> Alcotest.fail e

(* --- Envelope ------------------------------------------------------- *)

let sample_body = Bytes.of_string "\001\000\003\000\000\000\005\000\000\000"

let encode_sample () =
  Envelope.encode
    {
      Envelope.kind = Envelope.Data;
      src = 7;
      stamp = 42;
      seq = 3;
      ack = 1;
      comp = false;
      body = sample_body;
    }

let test_envelope_roundtrip () =
  let frame = encode_sample () in
  match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
  | `Frame (env, consumed) ->
    Alcotest.(check int) "consumed" (Bytes.length frame) consumed;
    Alcotest.(check bool) "kind" true (env.Envelope.kind = Envelope.Data);
    Alcotest.(check int) "src" 7 env.Envelope.src;
    Alcotest.(check int) "stamp" 42 env.Envelope.stamp;
    Alcotest.(check int) "seq" 3 env.Envelope.seq;
    Alcotest.(check int) "ack" 1 env.Envelope.ack;
    Alcotest.(check bytes) "body" sample_body env.Envelope.body
  | `Need_more -> Alcotest.fail "decode wanted more bytes"
  | `Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason)

let test_envelope_kinds () =
  (* ack and hello frames: empty body, seq 0, cumulative ack carried *)
  List.iter
    (fun kind ->
      let frame =
        Envelope.encode
          { Envelope.kind; src = 2; stamp = 5; seq = 0; ack = 17; comp = false; body = Bytes.empty }
      in
      match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
      | `Frame (env, consumed) ->
        Alcotest.(check int) "consumed" Envelope.header_size consumed;
        Alcotest.(check bool) "kind survives" true (env.Envelope.kind = kind);
        Alcotest.(check int) "ack survives" 17 env.Envelope.ack;
        Alcotest.(check int) "empty body" 0 (Bytes.length env.Envelope.body)
      | `Need_more -> Alcotest.fail "decode wanted more bytes"
      | `Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason))
    [ Envelope.Ack; Envelope.Hello; Envelope.Done ]

let test_envelope_incremental () =
  let frame = encode_sample () in
  (* every strict prefix is Need_more, never Corrupt: framing is
     length-prefixed so partial reads are normal *)
  for len = 0 to Bytes.length frame - 1 do
    match Envelope.decode frame ~off:0 ~len with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "prefix of %d bytes decoded as a full frame" len
    | `Corrupt reason -> Alcotest.failf "prefix of %d bytes reported corrupt: %s" len reason
  done

let test_envelope_corruption () =
  let frame = encode_sample () in
  let corrupted = ref 0 in
  for i = 0 to Bytes.length frame - 1 do
    let mutated = Bytes.copy frame in
    Bytes.set mutated i (Char.chr (Char.code (Bytes.get mutated i) lxor 0xff));
    match Envelope.decode mutated ~off:0 ~len:(Bytes.length mutated) with
    | `Corrupt _ -> incr corrupted
    | `Need_more -> incr corrupted (* length field grew: frame looks unfinished *)
    | `Frame _ -> Alcotest.failf "single-byte corruption at offset %d went unnoticed" i
  done;
  Alcotest.(check bool) "every mutation detected" true (!corrupted = Bytes.length (encode_sample ()))

let test_envelope_comp_bit () =
  (* the completion-gossip bit survives encoding on every kind, and
     peek_kind classifies a raw frame without a CRC pass *)
  List.iter
    (fun kind ->
      List.iter
        (fun comp ->
          let env =
            { Envelope.kind; src = 3; stamp = 1; seq = 0; ack = 5; comp; body = Bytes.empty }
          in
          let frame = Envelope.encode env in
          Alcotest.(check bool) "peek_kind agrees" true (Envelope.peek_kind frame = Some kind);
          match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
          | `Frame (env', _) ->
            Alcotest.(check bool) "kind survives" true (env'.Envelope.kind = kind);
            Alcotest.(check bool) "comp survives" comp env'.Envelope.comp
          | `Need_more | `Corrupt _ -> Alcotest.fail "frame did not decode")
        [ false; true ])
    [ Envelope.Data; Envelope.Ack; Envelope.Hello; Envelope.Done ];
  Alcotest.(check bool) "short buffer peeks None" true (Envelope.peek_kind Bytes.empty = None)

let test_envelope_limits () =
  let base =
    {
      Envelope.kind = Envelope.Data;
      src = 0;
      stamp = 0;
      seq = 1;
      ack = 0;
      comp = false;
      body = Bytes.empty;
    }
  in
  Alcotest.check_raises "oversized body" (Invalid_argument "Envelope.encode: body too large")
    (fun () -> ignore (Envelope.encode { base with Envelope.body = Bytes.create (Envelope.max_body + 1) }));
  Alcotest.check_raises "negative src" (Invalid_argument "Envelope.encode: src out of range")
    (fun () -> ignore (Envelope.encode { base with Envelope.src = -1 }))

(* --- Control protocol ---------------------------------------------- *)

let test_control_roundtrip () =
  let events =
    [
      Trace.Tick { node = 3; time = 1.5; count = 2 };
      Trace.Send { src = 1; dst = 2; pointers = 4; bytes = 17 };
      Trace.Deliver { src = 1; dst = 2 };
      Trace.Drop { src = 0; dst = 5; reason = Trace.Dead_dst };
      Trace.Join { node = 0 };
      Trace.Crash { node = 9 };
      Trace.Complete;
      Trace.Give_up;
      Trace.Round_begin { round = 7 };
    ]
  in
  List.iter
    (fun ev ->
      let time = match ev with Trace.Tick { time; _ } -> time | _ -> 1.5 in
      match Control.parse (Control.event_line ~time ev) with
      | Ok (Control.Event (t, ev')) ->
        Alcotest.(check (float 0.0)) "time survives" time t;
        Alcotest.(check string) "event survives" (Trace.event_to_json ev) (Trace.event_to_json ev')
      | Ok _ -> Alcotest.fail "event line parsed as non-event"
      | Error e -> Alcotest.fail e)
    events;
  (match Control.parse (Control.completed_line ~time:2.25 ~tick:9) with
  | Ok (Control.Completed (t, k)) ->
    Alcotest.(check (float 0.0)) "completed time" 2.25 t;
    Alcotest.(check int) "completed tick" 9 k
  | _ -> Alcotest.fail "completed line did not parse");
  let final =
    {
      Control.ticks = 12;
      sent = 34;
      delivered = 30;
      dropped = 4;
      pointers = 99;
      bytes = 1024;
      complete_tick = Some 11;
      decode_errors = 0;
      retransmits = 6;
      corrupt_frames = 2;
    }
  in
  (match Control.parse (Control.final_line final) with
  | Ok (Control.Final f) -> Alcotest.(check bool) "final survives" true (f = final)
  | _ -> Alcotest.fail "final line did not parse");
  match Control.parse "E 1.0 bogus stuff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage line parsed"

(* --- Backoff: decorrelated jitter, deterministic per seed ------------ *)

let test_backoff_deterministic () =
  let draws seed =
    let rng = Repro_util.Rng.substream ~seed ~index:(0xb0ff + 3) in
    let b = Node.Backoff.create ~rng ~base:0.05 ~cap:0.5 in
    List.init 16 (fun _ -> Node.Backoff.next b)
  in
  (* same seed, same delay sequence: retry timing is replayable *)
  Alcotest.(check (list (float 0.0))) "replayable" (draws 7) (draws 7);
  Alcotest.(check bool) "seed matters" true (draws 7 <> draws 8)

let test_backoff_bounds () =
  let rng = Repro_util.Rng.substream ~seed:1 ~index:0xb0ff in
  let b = Node.Backoff.create ~rng ~base:0.05 ~cap:0.5 in
  Alcotest.(check (float 1e-9)) "cold start is base" 0.05 (Node.Backoff.next b);
  let prev = ref 0.05 in
  for _ = 1 to 100 do
    let d = Node.Backoff.next b in
    Alcotest.(check bool) "at least base" true (d >= 0.05);
    Alcotest.(check bool) "at most cap" true (d <= 0.5);
    Alcotest.(check bool) "decorrelated: at most 3x previous" true (d <= (3.0 *. !prev) +. 1e-9);
    prev := d
  done;
  Node.Backoff.reset b;
  Alcotest.(check (float 1e-9)) "reset returns to base" 0.05 (Node.Backoff.next b);
  Alcotest.check_raises "cap below base rejected"
    (Invalid_argument "Node.Backoff.create: cap must be at least base") (fun () ->
      ignore (Node.Backoff.create ~rng ~base:0.1 ~cap:0.05))

let test_backoff_extremes () =
  let rng = Repro_util.Rng.substream ~seed:3 ~index:0xb0ff in
  (* base = cap degenerates to a constant delay *)
  let flat = Node.Backoff.create ~rng ~base:0.25 ~cap:0.25 in
  for _ = 1 to 50 do
    Alcotest.(check (float 1e-9)) "base = cap is constant" 0.25 (Node.Backoff.next flat)
  done;
  (* a tiny base under a huge cap must stay inside [base, cap] and never
     jump past the decorrelated 3x envelope, even after many draws *)
  let wide = Node.Backoff.create ~rng ~base:1e-6 ~cap:1e6 in
  let prev = ref (Node.Backoff.next wide) in
  Alcotest.(check (float 1e-12)) "cold start is base" 1e-6 !prev;
  for _ = 1 to 200 do
    let d = Node.Backoff.next wide in
    Alcotest.(check bool) "at least base" true (d >= 1e-6);
    Alcotest.(check bool) "at most cap" true (d <= 1e6);
    Alcotest.(check bool) "at most 3x previous" true (d <= (3.0 *. !prev) +. 1e-9);
    prev := d
  done;
  (* reset really forgets the growth: the envelope restarts from base *)
  Node.Backoff.reset wide;
  Alcotest.(check (float 1e-12)) "reset forgets growth" 1e-6 (Node.Backoff.next wide);
  Alcotest.(check bool)
    "second draw after reset is re-bounded" true
    (Node.Backoff.next wide <= 3e-6 +. 1e-12);
  Alcotest.check_raises "zero base rejected"
    (Invalid_argument "Node.Backoff.create: base must be positive") (fun () ->
      ignore (Node.Backoff.create ~rng ~base:0.0 ~cap:1.0))

(* --- Loopback: trace-identical to the async simulator --------------- *)

let test_loopback_trace_identity () =
  let algo = get_algo "hm" in
  let sim_buf = Buffer.create 4096 and loop_buf = Buffer.create 4096 in
  let topology =
    Repro_graph.Generate.build (Repro_graph.Generate.K_out 3)
      ~rng:(Repro_util.Rng.substream ~seed:11 ~index:0x70b0)
      ~n:24
  in
  let sim_spec = { Run_async.default_spec with seed = 11; trace = Trace.buffer sim_buf } in
  let sim = Run_async.exec_spec sim_spec algo topology in
  let loop_spec = { Run_async.default_spec with seed = 11; trace = Trace.buffer loop_buf } in
  let loop, finals = Loopback.exec_spec loop_spec algo topology in
  Alcotest.(check bool) "sim completed" true sim.Run_async.completed;
  Alcotest.(check bool) "loopback completed" true loop.Run_async.completed;
  (* the tentpole identity: byte-for-byte equal event streams *)
  Alcotest.(check string) "traces byte-identical" (Buffer.contents sim_buf)
    (Buffer.contents loop_buf);
  (* and the per-node tallies sum to the run totals *)
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 finals in
  Alcotest.(check int) "sent total" sim.Run_async.messages (sum (fun f -> f.Control.sent));
  Alcotest.(check int) "pointer total" sim.Run_async.pointers (sum (fun f -> f.Control.pointers));
  Alcotest.(check int)
    "bytes total"
    (Metrics.bytes_sent sim.Run_async.metrics)
    (sum (fun f -> f.Control.bytes))

let test_cluster_loopback () =
  let algo = get_algo "hm" in
  let spec = { (Cluster.default_spec algo) with backend = Backend.Loopback; n = 16; seed = 3 } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  (match r.Cluster.invariants with
  | Cluster.Passed k -> Alcotest.(check bool) "checked events" true (k > 0)
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why))

(* --- live clusters -------------------------------------------------- *)

let run_cluster ?kill_node ?(fault = Fault.none) ?(n = 16) ?(check = true) backend =
  let algo = get_algo "hm" in
  let spec =
    {
      (Cluster.default_spec algo) with
      backend;
      n;
      seed = 5;
      timeout = 60.0;
      check_invariants = check;
      kill_node;
      fault;
    }
  in
  Cluster.run spec

let check_converged r =
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "no crashes" [] r.Cluster.crashed;
  Array.iter
    (fun nr ->
      match nr.Cluster.outcome with
      | Cluster.Finished f ->
        Alcotest.(check bool) "announced completion" true (f.Control.complete_tick <> None);
        Alcotest.(check int) "clean link" 0 f.Control.decode_errors
      | Cluster.Crashed s -> Alcotest.failf "node %d crashed: %s" nr.Cluster.id s
      | Cluster.Unresponsive -> Alcotest.failf "node %d unresponsive" nr.Cluster.id)
    r.Cluster.nodes;
  match r.Cluster.invariants with
  | Cluster.Passed k -> Alcotest.(check bool) "events checked" true (k > 0)
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why)

(* the acceptance-criterion run: 16 processes over unix-domain sockets,
   every node learns all 16 ids, merged trace passes the checker *)
let uds = Backend.Process Backend.Uds
let tcp = Backend.Process Backend.Tcp
let test_cluster_uds () = check_converged (run_cluster uds)
let test_cluster_tcp () = check_converged (run_cluster ~n:8 tcp)

let test_cluster_crash_detected () =
  let r = run_cluster ~kill_node:3 ~check:false uds in
  Alcotest.(check bool) "not converged" false r.Cluster.converged;
  Alcotest.(check (option int)) "killed node echoed" (Some 3) r.Cluster.killed;
  Alcotest.(check bool) "victim reported crashed" true (List.mem 3 r.Cluster.crashed);
  (match r.Cluster.nodes.(3).Cluster.outcome with
  | Cluster.Crashed _ -> ()
  | Cluster.Finished _ | Cluster.Unresponsive -> Alcotest.fail "victim not reported as crashed");
  (* survivors were halted, not left hanging: the harness returned and
     every surviving node wound down gracefully *)
  Array.iteri
    (fun i nr ->
      if i <> 3 then
        match nr.Cluster.outcome with
        | Cluster.Finished _ -> ()
        | Cluster.Crashed s -> Alcotest.failf "survivor %d crashed: %s" i s
        | Cluster.Unresponsive -> Alcotest.failf "survivor %d unresponsive" i)
    r.Cluster.nodes

let test_cluster_teardown_bounded () =
  let t0 = Unix.gettimeofday () in
  let r = run_cluster ~n:8 ~kill_node:0 ~check:false uds in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "not converged" false r.Cluster.converged;
  (* crash → halt → grace(2s) → SIGTERM(0.5s) → SIGKILL: well under 30s *)
  Alcotest.(check bool) "teardown bounded" true (elapsed < 30.0)

(* --- fault plans on the live path ----------------------------------- *)

let test_cluster_reliable_under_loss () =
  (* 30% frame loss: the live transport must still converge and the
     merged trace must satisfy the (strict) invariant checker. No
     retransmit-count assertion here: with completion gossip and
     deliver-on-arrival, a fast wall-clock run can recover every loss
     through the protocol's own redundancy before any RTO fires — the
     deterministic mux drill pins [retransmits > 0] instead. *)
  let fault = Fault.with_loss Fault.none ~p:0.3 in
  let r = run_cluster ~fault ~n:32 uds in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  (match r.Cluster.invariants with
  | Cluster.Passed _ -> ()
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why));
  match r.Cluster.totals with None -> Alcotest.fail "no totals" | Some _ -> ()

let test_cluster_partition_heals () =
  let fault = Fault.with_partition Fault.none ~groups:[ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ] ~start:2 ~heal:8 in
  let r = run_cluster ~fault ~n:8 uds in
  Alcotest.(check bool) "converged after heal" true r.Cluster.converged;
  match r.Cluster.invariants with
  | Cluster.Passed _ -> ()
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why)

let test_cluster_crash_restart () =
  (* the supervisor SIGKILLs node 2 at round 4 and re-forks it at round
     10; the fresh incarnation must rejoin via the hello handshake and
     the whole cluster still converges *)
  let fault = Fault.with_restart (Fault.with_crash Fault.none ~node:2 ~round:4) ~node:2 ~round:10 in
  let r = run_cluster ~fault ~n:8 uds in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "no incarnation left crashed" [] r.Cluster.crashed;
  match r.Cluster.invariants with
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Passed _ | Cluster.Skipped _ -> ()

let test_cluster_fatal_crash_without_restart () =
  (* a scheduled crash with no restart must be reported, not hang; round
     1 fires before the cluster can fully converge *)
  let fault = Fault.with_crash Fault.none ~node:1 ~round:1 in
  let r = run_cluster ~fault ~n:16 uds in
  Alcotest.(check bool) "not converged" false r.Cluster.converged;
  Alcotest.(check bool) "victim reported crashed" true (List.mem 1 r.Cluster.crashed);
  Alcotest.(check (option int)) "no sabotage kill" None r.Cluster.killed

let test_chaos_plan_shape () =
  (* the soak's plan generator: seeded, in-bounds, always heal + restart *)
  let rng = Repro_util.Rng.substream ~seed:42 ~index:0xc405 in
  for _ = 1 to 50 do
    let plan = Chaos.random_plan ~rng ~n:16 ~loss_max:0.2 in
    Alcotest.(check bool) "loss bounded" true (Fault.drop_probability plan <= 0.2);
    (match Fault.partitions plan with
    | [ p ] -> Alcotest.(check bool) "partition heals" true (p.Fault.heal > p.Fault.start)
    | ps -> Alcotest.failf "expected one partition, got %d" (List.length ps));
    match Fault.crashed_nodes plan with
    | [ (v, r) ] -> (
      Alcotest.(check bool) "victim in range" true (v >= 0 && v < 16);
      match Fault.restart_round plan ~node:v with
      | Some r' -> Alcotest.(check bool) "restart after crash" true (r' > r)
      | None -> Alcotest.fail "chaos plan crash has no restart")
    | cs -> Alcotest.failf "expected one crash, got %d" (List.length cs)
  done;
  (* replayable: the same seed yields the same plan *)
  let plan_of seed =
    Chaos.random_plan ~rng:(Repro_util.Rng.substream ~seed ~index:0xc405) ~n:16 ~loss_max:0.2
  in
  Alcotest.(check string) "seeded plans replay" (Fault.to_string (plan_of 9))
    (Fault.to_string (plan_of 9))

let test_chaos_matrix_deterministic () =
  (* a small slice of the nightly matrix on the mux backend: the JSON
     summary must be byte-identical across runs (it is diffed against a
     pinned baseline in CI), every plan family must produce a cell, and
     this slice is known-green *)
  let sweep () =
    Chaos.matrix
      ~algos:[ get_algo "hm" ]
      ~families:[ Repro_graph.Generate.Sorted_chain; Repro_graph.Generate.K_out 3 ]
      ~plans:Chaos.plan_families ~n:8 ~trials:2 ~seed:0 ~backend:Backend.Mux ~timeout:10.0
      ~loss_max:0.2 ()
  in
  let cells = sweep () in
  Alcotest.(check int) "one cell per (topology, plan family)"
    (2 * List.length Chaos.plan_families)
    (List.length cells);
  List.iter
    (fun (c : Chaos.cell) ->
      Alcotest.(check int)
        (Printf.sprintf "%s/%s/%s all trials pass" c.Chaos.cell_algo c.Chaos.cell_topology
           c.Chaos.cell_plan)
        c.Chaos.cell_trials c.Chaos.cell_passed)
    cells;
  Alcotest.(check string) "summary is byte-reproducible" (Chaos.matrix_to_json cells)
    (Chaos.matrix_to_json (sweep ()));
  Alcotest.check_raises "unknown plan family rejected"
    (Invalid_argument "Chaos.matrix: unknown plan family \"gamma-rays\"") (fun () ->
      ignore
        (Chaos.matrix ~algos:[ get_algo "hm" ]
           ~families:[ Repro_graph.Generate.K_out 3 ]
           ~plans:[ "gamma-rays" ] ~n:8 ~trials:1 ~seed:0 ~backend:Backend.Mux ~timeout:10.0
           ~loss_max:0.2 ()))

let test_cluster_report_json () =
  let r = run_cluster ~n:4 uds in
  let json = Cluster.result_to_json r in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec at i = i + nl <= hl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions backend" true (contains {|"backend":"uds"|});
  Alcotest.(check bool) "converged flag" true (contains {|"converged":true|});
  Alcotest.(check bool) "killed is null" true (contains {|"killed":null|});
  Alcotest.(check bool) "invariants passed" true (contains {|"status":"passed"|})

(* --- Backend: typed runtime selector -------------------------------- *)

let test_backend_roundtrip () =
  List.iter
    (fun b ->
      match Backend.of_string (Backend.to_string b) with
      | Ok b' -> Alcotest.(check bool) "round-trips" true (b = b')
      | Error e -> Alcotest.fail e)
    Backend.all;
  (* legacy spellings stay parseable *)
  List.iter
    (fun (s, expect) ->
      match Backend.of_string s with
      | Ok b -> Alcotest.(check bool) (s ^ " accepted") true (b = expect)
      | Error e -> Alcotest.fail e)
    [
      ("sim", Backend.Loopback);
      ("unix", uds);
      ("process", uds);
      ("process:tcp", tcp);
      ("multiplexed", Backend.Mux);
    ];
  match Backend.of_string "warp" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense backend parsed"

(* --- Addr_table: the deployment's static name service ---------------- *)

let test_addr_table_roundtrip () =
  let text = "# fleet of three\n/tmp/d/node-0.sock\n9001\n10.0.0.7:9002\n\n" in
  match Addr_table.of_string text with
  | Error e -> Alcotest.fail e
  | Ok table ->
    Alcotest.(check int) "three entries" 3 (Array.length table);
    Alcotest.(check bool) "uds entry" true (table.(0) = Unix.ADDR_UNIX "/tmp/d/node-0.sock");
    Alcotest.(check bool)
      "bare port binds loopback" true
      (table.(1) = Unix.ADDR_INET (Unix.inet_addr_loopback, 9001));
    Alcotest.(check bool)
      "host:port entry" true
      (table.(2) = Unix.ADDR_INET (Unix.inet_addr_of_string "10.0.0.7", 9002));
    (* canonical text re-parses to the same table: the round-trip law *)
    let canon = Addr_table.to_string table in
    (match Addr_table.of_string canon with
    | Ok table' ->
      Alcotest.(check bool) "text round-trips" true (table = table');
      Alcotest.(check string) "canonical form is a fixpoint" canon (Addr_table.to_string table')
    | Error e -> Alcotest.fail e);
    (* and through a file on disk *)
    let file = Filename.temp_file "addr_table" ".txt" in
    Addr_table.save file table;
    (match Addr_table.load file with
    | Ok table' -> Alcotest.(check bool) "file round-trips" true (table = table')
    | Error e -> Alcotest.fail e);
    Sys.remove file;
    Alcotest.(check (option int)) "listen lookup" (Some 2) (Addr_table.index_of table "10.0.0.7:9002");
    Alcotest.(check (option int)) "absent address" None (Addr_table.index_of table "10.0.0.8:9002")

let test_addr_table_rejects () =
  List.iter
    (fun bad ->
      match Addr_table.parse_entry bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad entry %S parsed" bad)
    [ "0"; "70000"; "host:99999"; "not an address" ]

let test_addr_table_host_edge_cases () =
  (* the host split is on the LAST ':', so an IPv6 literal's colons all
     land in the host field *)
  (match Addr_table.parse_entry "::1:9000" with
  | Error e -> Alcotest.failf "IPv6 loopback rejected: %s" e
  | Ok addr ->
    Alcotest.(check bool)
      "IPv6 host survives the split" true
      (addr = Unix.ADDR_INET (Unix.inet_addr_of_string "::1", 9000));
    (* the canonical spelling re-parses to the same address *)
    (match Addr_table.parse_entry (Addr_table.entry_to_string addr) with
    | Ok addr' -> Alcotest.(check bool) "canonical form round-trips" true (addr = addr')
    | Error e -> Alcotest.failf "canonical IPv6 form rejected: %s" e));
  (* an empty host falls into hostname resolution and must error, not
     silently bind something *)
  (match Addr_table.parse_entry ":9000" with
  | Error _ -> ()
  | Ok addr -> Alcotest.failf "empty host parsed as %s" (Addr_table.entry_to_string addr));
  (* a bare port canonicalizes to an explicit loopback HOST:PORT, and
     index_of treats both spellings as the same node *)
  (match Addr_table.parse_entry "9000" with
  | Error e -> Alcotest.failf "bare port rejected: %s" e
  | Ok addr ->
    Alcotest.(check string) "bare port canonical form" "127.0.0.1:9000"
      (Addr_table.entry_to_string addr);
    (match Addr_table.of_entries [ "9000"; "127.0.0.1:9001" ] with
    | Error e -> Alcotest.fail e
    | Ok table ->
      Alcotest.(check (option int)) "bare spelling resolves" (Some 0)
        (Addr_table.index_of table "9000");
      Alcotest.(check (option int))
        "explicit spelling resolves to the same id" (Some 0)
        (Addr_table.index_of table "127.0.0.1:9000");
      Alcotest.(check (option int))
        "unparseable listen spelling is None" None
        (Addr_table.index_of table "not an address")))

(* --- Mux: thousands of live nodes in one process --------------------- *)

let test_mux_trace_identity () =
  (* the tentpole identity at n=64: the mux's event stream is
     byte-for-byte the loopback's (itself certified against the async
     simulator), so every protocol-layer mechanism the mux adds —
     go-back-N, hellos, acks, completion gossip — is invisible at the
     discovery level *)
  let algo = get_algo "hm" in
  let topology =
    Repro_graph.Generate.build (Repro_graph.Generate.K_out 3)
      ~rng:(Repro_util.Rng.substream ~seed:11 ~index:0x70b0)
      ~n:64
  in
  let loop_buf = Buffer.create 65536 and mux_buf = Buffer.create 65536 in
  let loop, _ =
    Loopback.exec_spec
      { Run_async.default_spec with seed = 11; trace = Trace.buffer loop_buf }
      algo topology
  in
  let mux, finals =
    Mux.exec_spec
      { Run_async.default_spec with seed = 11; trace = Trace.buffer mux_buf }
      algo topology
  in
  Alcotest.(check bool) "loopback completed" true loop.Run_async.completed;
  Alcotest.(check bool) "mux completed" true mux.Run_async.completed;
  Alcotest.(check string) "traces byte-identical" (Buffer.contents loop_buf)
    (Buffer.contents mux_buf);
  Alcotest.(check (float 0.0)) "completion times agree" loop.Run_async.time mux.Run_async.time;
  (* per-core tallies cover the run totals *)
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 finals in
  Alcotest.(check bool)
    "cores sent at least the data messages" true
    (sum (fun f -> f.Control.sent) >= mux.Run_async.messages)

let test_mux_cluster_512 () =
  (* the scale the process backend cannot reach: 512 live protocol
     instances, full invariant check over the merged trace *)
  let algo = get_algo "hm" in
  let spec = { (Cluster.default_spec algo) with backend = Backend.Mux; n = 512; seed = 2 } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "no crashes" [] r.Cluster.crashed;
  (match r.Cluster.invariants with
  | Cluster.Passed k -> Alcotest.(check bool) "events checked" true (k > 0)
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why));
  Array.iter
    (fun nr ->
      match nr.Cluster.outcome with
      | Cluster.Finished f ->
        Alcotest.(check bool) "learned all ids" true (f.Control.complete_tick <> None)
      | Cluster.Crashed s -> Alcotest.failf "node %d crashed: %s" nr.Cluster.id s
      | Cluster.Unresponsive -> Alcotest.failf "node %d unresponsive" nr.Cluster.id)
    r.Cluster.nodes

let test_mux_reliable_under_loss () =
  (* 20% loss on every mux link: go-back-N must still converge and the
     strict checker must accept the trace *)
  let algo = get_algo "hm" in
  let fault = Fault.with_loss Fault.none ~p:0.2 in
  let spec = { (Cluster.default_spec algo) with backend = Backend.Mux; n = 48; seed = 5; fault } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  (match r.Cluster.invariants with
  | Cluster.Passed _ -> ()
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why));
  match r.Cluster.totals with
  | None -> Alcotest.fail "no totals"
  | Some f -> Alcotest.(check bool) "loss forced retransmissions" true (f.Control.retransmits > 0)

let test_mux_crash_restart () =
  (* node 2 crashes at round 1 and restarts at round 3, well before the
     rest of the network converges: the fresh incarnation must actually
     rejoin via the hello handshake and catch up, because the strong
     completion predicate counts it once it is alive again. (A restart
     scheduled after natural convergence never executes — completion is
     declared at the last-join gate before the node's first revival
     event — which is the engine-reference behaviour, not a mux drill.) *)
  let algo = get_algo "hm" in
  let fault = Fault.with_restart (Fault.with_crash Fault.none ~node:2 ~round:1) ~node:2 ~round:3 in
  let spec = { (Cluster.default_spec algo) with backend = Backend.Mux; n = 64; seed = 5; fault } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "no incarnation left crashed" [] r.Cluster.crashed;
  (* the revived node really ran: it completed its rebuilt knowledge *)
  (match r.Cluster.nodes.(2).Cluster.outcome with
  | Cluster.Finished f ->
    Alcotest.(check bool) "restarted node caught up" true (f.Control.complete_tick <> None)
  | Cluster.Crashed s -> Alcotest.failf "node 2 crashed: %s" s
  | Cluster.Unresponsive -> Alcotest.fail "node 2 unresponsive");
  match r.Cluster.invariants with
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Passed _ | Cluster.Skipped _ -> ()

let test_mux_fatal_crash_reported () =
  (* an unrestarted crash: survivors still converge (strong completion
     skips dead nodes, as in the in-memory engines) but the victim is
     reported crashed and incomplete *)
  let algo = get_algo "hm" in
  let fault = Fault.with_crash Fault.none ~node:1 ~round:1 in
  let spec = { (Cluster.default_spec algo) with backend = Backend.Mux; n = 24; seed = 5; fault } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "survivors converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "victim reported crashed" [ 1 ] r.Cluster.crashed;
  match r.Cluster.nodes.(1).Cluster.outcome with
  | Cluster.Finished f ->
    Alcotest.(check bool) "victim incomplete" true (f.Control.complete_tick = None)
  | Cluster.Crashed _ | Cluster.Unresponsive -> ()

let () =
  Alcotest.run "net"
    [
      ( "envelope",
        [
          Alcotest.test_case "roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "kinds" `Quick test_envelope_kinds;
          Alcotest.test_case "incremental" `Quick test_envelope_incremental;
          Alcotest.test_case "corruption" `Quick test_envelope_corruption;
          Alcotest.test_case "comp-bit" `Quick test_envelope_comp_bit;
          Alcotest.test_case "limits" `Quick test_envelope_limits;
        ] );
      ("backend", [ Alcotest.test_case "roundtrip" `Quick test_backend_roundtrip ]);
      ( "addr-table",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_table_roundtrip;
          Alcotest.test_case "rejects" `Quick test_addr_table_rejects;
          Alcotest.test_case "host-edge-cases" `Quick test_addr_table_host_edge_cases;
        ] );
      ("control", [ Alcotest.test_case "roundtrip" `Quick test_control_roundtrip ]);
      ( "backoff",
        [
          Alcotest.test_case "deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "extremes" `Quick test_backoff_extremes;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "trace-identity" `Quick test_loopback_trace_identity;
          Alcotest.test_case "cluster" `Quick test_cluster_loopback;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "uds-16" `Quick test_cluster_uds;
          Alcotest.test_case "tcp-8" `Quick test_cluster_tcp;
          Alcotest.test_case "crash-detected" `Quick test_cluster_crash_detected;
          Alcotest.test_case "teardown-bounded" `Quick test_cluster_teardown_bounded;
          Alcotest.test_case "report-json" `Quick test_cluster_report_json;
        ] );
      ( "mux",
        [
          Alcotest.test_case "trace-identity-64" `Quick test_mux_trace_identity;
          Alcotest.test_case "cluster-512" `Quick test_mux_cluster_512;
          Alcotest.test_case "reliable-under-loss" `Quick test_mux_reliable_under_loss;
          Alcotest.test_case "crash-restart" `Quick test_mux_crash_restart;
          Alcotest.test_case "fatal-crash-reported" `Quick test_mux_fatal_crash_reported;
        ] );
      ( "faultnet",
        [
          Alcotest.test_case "reliable-under-loss" `Quick test_cluster_reliable_under_loss;
          Alcotest.test_case "partition-heals" `Quick test_cluster_partition_heals;
          Alcotest.test_case "crash-restart" `Quick test_cluster_crash_restart;
          Alcotest.test_case "fatal-crash-reported" `Quick test_cluster_fatal_crash_without_restart;
          Alcotest.test_case "chaos-plan-shape" `Quick test_chaos_plan_shape;
          Alcotest.test_case "chaos-matrix-deterministic" `Quick test_chaos_matrix_deterministic;
        ] );
    ]
