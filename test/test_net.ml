(* Live transport layer: envelope framing, control protocol, loopback
   trace-identity, and real multi-process UDS/TCP clusters. *)

open Repro_engine
open Repro_discovery
open Repro_net

let get_algo name =
  match Registry.find name with Ok a -> a | Error e -> Alcotest.fail e

(* --- Envelope ------------------------------------------------------- *)

let sample_body = Bytes.of_string "\001\000\003\000\000\000\005\000\000\000"

let encode_sample () = Envelope.encode { Envelope.src = 7; stamp = 42; body = sample_body }

let test_envelope_roundtrip () =
  let frame = encode_sample () in
  match Envelope.decode frame ~off:0 ~len:(Bytes.length frame) with
  | `Frame (env, consumed) ->
    Alcotest.(check int) "consumed" (Bytes.length frame) consumed;
    Alcotest.(check int) "src" 7 env.Envelope.src;
    Alcotest.(check int) "stamp" 42 env.Envelope.stamp;
    Alcotest.(check bytes) "body" sample_body env.Envelope.body
  | `Need_more -> Alcotest.fail "decode wanted more bytes"
  | `Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason)

let test_envelope_incremental () =
  let frame = encode_sample () in
  (* every strict prefix is Need_more, never Corrupt: framing is
     length-prefixed so partial reads are normal *)
  for len = 0 to Bytes.length frame - 1 do
    match Envelope.decode frame ~off:0 ~len with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "prefix of %d bytes decoded as a full frame" len
    | `Corrupt reason -> Alcotest.failf "prefix of %d bytes reported corrupt: %s" len reason
  done

let test_envelope_corruption () =
  let frame = encode_sample () in
  let corrupted = ref 0 in
  for i = 0 to Bytes.length frame - 1 do
    let mutated = Bytes.copy frame in
    Bytes.set mutated i (Char.chr (Char.code (Bytes.get mutated i) lxor 0xff));
    match Envelope.decode mutated ~off:0 ~len:(Bytes.length mutated) with
    | `Corrupt _ -> incr corrupted
    | `Need_more -> incr corrupted (* length field grew: frame looks unfinished *)
    | `Frame _ -> Alcotest.failf "single-byte corruption at offset %d went unnoticed" i
  done;
  Alcotest.(check bool) "every mutation detected" true (!corrupted = Bytes.length (encode_sample ()))

let test_envelope_limits () =
  Alcotest.check_raises "oversized body" (Invalid_argument "Envelope.encode: body too large")
    (fun () ->
      ignore (Envelope.encode { Envelope.src = 0; stamp = 0; body = Bytes.create (Envelope.max_body + 1) }));
  Alcotest.check_raises "negative src" (Invalid_argument "Envelope.encode: src out of range")
    (fun () -> ignore (Envelope.encode { Envelope.src = -1; stamp = 0; body = Bytes.empty }))

(* --- Control protocol ---------------------------------------------- *)

let test_control_roundtrip () =
  let events =
    [
      Trace.Tick { node = 3; time = 1.5; count = 2 };
      Trace.Send { src = 1; dst = 2; pointers = 4; bytes = 17 };
      Trace.Deliver { src = 1; dst = 2 };
      Trace.Drop { src = 0; dst = 5; reason = Trace.Dead_dst };
      Trace.Join { node = 0 };
      Trace.Crash { node = 9 };
      Trace.Complete;
      Trace.Give_up;
      Trace.Round_begin { round = 7 };
    ]
  in
  List.iter
    (fun ev ->
      let time = match ev with Trace.Tick { time; _ } -> time | _ -> 1.5 in
      match Control.parse (Control.event_line ~time ev) with
      | Ok (Control.Event (t, ev')) ->
        Alcotest.(check (float 0.0)) "time survives" time t;
        Alcotest.(check string) "event survives" (Trace.event_to_json ev) (Trace.event_to_json ev')
      | Ok _ -> Alcotest.fail "event line parsed as non-event"
      | Error e -> Alcotest.fail e)
    events;
  (match Control.parse (Control.completed_line ~time:2.25 ~tick:9) with
  | Ok (Control.Completed (t, k)) ->
    Alcotest.(check (float 0.0)) "completed time" 2.25 t;
    Alcotest.(check int) "completed tick" 9 k
  | _ -> Alcotest.fail "completed line did not parse");
  let final =
    {
      Control.ticks = 12;
      sent = 34;
      delivered = 30;
      dropped = 4;
      pointers = 99;
      bytes = 1024;
      complete_tick = Some 11;
      decode_errors = 0;
    }
  in
  (match Control.parse (Control.final_line final) with
  | Ok (Control.Final f) -> Alcotest.(check bool) "final survives" true (f = final)
  | _ -> Alcotest.fail "final line did not parse");
  match Control.parse "E 1.0 bogus stuff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage line parsed"

(* --- Loopback: trace-identical to the async simulator --------------- *)

let test_loopback_trace_identity () =
  let algo = get_algo "hm" in
  let sim_buf = Buffer.create 4096 and loop_buf = Buffer.create 4096 in
  let topology =
    Repro_graph.Generate.build (Repro_graph.Generate.K_out 3)
      ~rng:(Repro_util.Rng.substream ~seed:11 ~index:0x70b0)
      ~n:24
  in
  let sim_spec = { Run_async.default_spec with seed = 11; trace = Trace.buffer sim_buf } in
  let sim = Run_async.exec_spec sim_spec algo topology in
  let loop_spec = { Run_async.default_spec with seed = 11; trace = Trace.buffer loop_buf } in
  let loop, finals = Loopback.exec_spec loop_spec algo topology in
  Alcotest.(check bool) "sim completed" true sim.Run_async.completed;
  Alcotest.(check bool) "loopback completed" true loop.Run_async.completed;
  (* the tentpole identity: byte-for-byte equal event streams *)
  Alcotest.(check string) "traces byte-identical" (Buffer.contents sim_buf)
    (Buffer.contents loop_buf);
  (* and the per-node tallies sum to the run totals *)
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 finals in
  Alcotest.(check int) "sent total" sim.Run_async.messages (sum (fun f -> f.Control.sent));
  Alcotest.(check int) "pointer total" sim.Run_async.pointers (sum (fun f -> f.Control.pointers));
  Alcotest.(check int)
    "bytes total"
    (Metrics.bytes_sent sim.Run_async.metrics)
    (sum (fun f -> f.Control.bytes))

let test_cluster_loopback () =
  let algo = get_algo "hm" in
  let spec = { (Cluster.default_spec algo) with backend = Transport.Loopback; n = 16; seed = 3 } in
  let r = Cluster.run spec in
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  (match r.Cluster.invariants with
  | Cluster.Passed k -> Alcotest.(check bool) "checked events" true (k > 0)
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why))

(* --- live clusters -------------------------------------------------- *)

let run_cluster ?kill_node ?(n = 16) ?(check = true) backend =
  let algo = get_algo "hm" in
  let spec =
    {
      (Cluster.default_spec algo) with
      backend;
      n;
      seed = 5;
      timeout = 60.0;
      check_invariants = check;
      kill_node;
    }
  in
  Cluster.run spec

let check_converged r =
  Alcotest.(check bool) "converged" true r.Cluster.converged;
  Alcotest.(check (list int)) "no crashes" [] r.Cluster.crashed;
  Array.iter
    (fun nr ->
      match nr.Cluster.outcome with
      | Cluster.Finished f ->
        Alcotest.(check bool) "announced completion" true (f.Control.complete_tick <> None);
        Alcotest.(check int) "clean link" 0 f.Control.decode_errors
      | Cluster.Crashed s -> Alcotest.failf "node %d crashed: %s" nr.Cluster.id s
      | Cluster.Unresponsive -> Alcotest.failf "node %d unresponsive" nr.Cluster.id)
    r.Cluster.nodes;
  match r.Cluster.invariants with
  | Cluster.Passed k -> Alcotest.(check bool) "events checked" true (k > 0)
  | Cluster.Failed msg -> Alcotest.fail ("invariants failed: " ^ msg)
  | Cluster.Skipped why -> Alcotest.fail ("invariants skipped: " ^ why)

(* the acceptance-criterion run: 16 processes over unix-domain sockets,
   every node learns all 16 ids, merged trace passes the checker *)
let test_cluster_uds () = check_converged (run_cluster Transport.Uds)
let test_cluster_tcp () = check_converged (run_cluster ~n:8 Transport.Tcp)

let test_cluster_crash_detected () =
  let r = run_cluster ~kill_node:3 ~check:false Transport.Uds in
  Alcotest.(check bool) "not converged" false r.Cluster.converged;
  Alcotest.(check bool) "victim reported crashed" true (List.mem 3 r.Cluster.crashed);
  (match r.Cluster.nodes.(3).Cluster.outcome with
  | Cluster.Crashed _ -> ()
  | Cluster.Finished _ | Cluster.Unresponsive -> Alcotest.fail "victim not reported as crashed");
  (* survivors were halted, not left hanging: the harness returned and
     every surviving node wound down gracefully *)
  Array.iteri
    (fun i nr ->
      if i <> 3 then
        match nr.Cluster.outcome with
        | Cluster.Finished _ -> ()
        | Cluster.Crashed s -> Alcotest.failf "survivor %d crashed: %s" i s
        | Cluster.Unresponsive -> Alcotest.failf "survivor %d unresponsive" i)
    r.Cluster.nodes

let test_cluster_teardown_bounded () =
  let t0 = Unix.gettimeofday () in
  let r = run_cluster ~n:8 ~kill_node:0 ~check:false Transport.Uds in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "not converged" false r.Cluster.converged;
  (* crash → halt → grace(2s) → SIGTERM(0.5s) → SIGKILL: well under 30s *)
  Alcotest.(check bool) "teardown bounded" true (elapsed < 30.0)

let test_cluster_report_json () =
  let r = run_cluster ~n:4 Transport.Uds in
  let json = Cluster.result_to_json r in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec at i = i + nl <= hl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions transport" true (contains {|"transport":"uds"|});
  Alcotest.(check bool) "converged flag" true (contains {|"converged":true|});
  Alcotest.(check bool) "invariants passed" true (contains {|"status":"passed"|})

let () =
  Alcotest.run "net"
    [
      ( "envelope",
        [
          Alcotest.test_case "roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "incremental" `Quick test_envelope_incremental;
          Alcotest.test_case "corruption" `Quick test_envelope_corruption;
          Alcotest.test_case "limits" `Quick test_envelope_limits;
        ] );
      ("control", [ Alcotest.test_case "roundtrip" `Quick test_control_roundtrip ]);
      ( "loopback",
        [
          Alcotest.test_case "trace-identity" `Quick test_loopback_trace_identity;
          Alcotest.test_case "cluster" `Quick test_cluster_loopback;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "uds-16" `Quick test_cluster_uds;
          Alcotest.test_case "tcp-8" `Quick test_cluster_tcp;
          Alcotest.test_case "crash-detected" `Quick test_cluster_crash_detected;
          Alcotest.test_case "teardown-bounded" `Quick test_cluster_teardown_bounded;
          Alcotest.test_case "report-json" `Quick test_cluster_report_json;
        ] );
    ]
