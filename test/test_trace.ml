(* Trace subsystem tests: golden JSONL regression traces (one per
   algorithm on a fixed 8-node topology), byte-stable reruns at any job
   count, the sink combinators, and the online invariant checker —
   positive runs under faults and hand-built violating event streams. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let topology ~n ~seed =
  Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed

let find name = match Registry.find name with Ok a -> a | Error e -> Alcotest.fail e

(* The trace of one synchronous run, as the JSONL string the CLI would
   write. Same spec shape as `discovery_cli trace`. *)
let sync_trace ?(fault = Fault.none) ?(completion = Run.Strong) ~seed algo topo =
  let buf = Buffer.create 4096 in
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed; fault; completion; trace = Trace.buffer buf }
      algo topo
  in
  (Buffer.contents buf, r)

let async_trace ?(fault = Fault.none) ?(completion = Run.Strong) ~seed algo topo =
  let buf = Buffer.create 4096 in
  let r =
    Run_async.exec_spec
      { Run_async.default_spec with Run_async.seed; fault; completion; trace = Trace.buffer buf }
      algo topo
  in
  (Buffer.contents buf, r)

(* --- golden traces ------------------------------------------------- *)

let golden_algos =
  [ "flooding"; "swamping"; "pointer_jump"; "name_dropper"; "min_pointer"; "rand_gossip"; "hm" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let first_divergence a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb when x = y -> go (i + 1) la lb
    | x :: _, y :: _ -> Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of trace>")
    | [], y :: _ -> Some (i, "<end of trace>", y)
  in
  go 0 la lb

let check_traces_equal what a b =
  match first_divergence a b with
  | None -> ()
  | Some (i, x, y) ->
    Alcotest.failf "%s: traces diverge at event %d:\n  got      %s\n  expected %s" what i x y

let test_goldens () =
  List.iter
    (fun name ->
      let got, r = sync_trace ~seed:1 (find name) (topology ~n:8 ~seed:1) in
      Alcotest.(check bool) (name ^ " completed") true r.Run.completed;
      check_traces_equal name got (read_file (Filename.concat "golden" (name ^ ".jsonl"))))
    golden_algos

(* The committed async golden pins the Async_sim event stream of hm, and
   the live loopback transport backend must reproduce it byte-for-byte —
   the trace-identity contract of lib/net. *)
let test_golden_async () =
  let topo = topology ~n:8 ~seed:1 in
  let golden = read_file (Filename.concat "golden" "hm_async.jsonl") in
  let got, r = async_trace ~seed:1 (find "hm") topo in
  Alcotest.(check bool) "hm async completed" true r.Run_async.completed;
  check_traces_equal "hm async" got golden;
  let buf = Buffer.create 4096 in
  let spec = { Run_async.default_spec with Run_async.seed = 1; trace = Trace.buffer buf } in
  let live, _ = Repro_net.Loopback.exec_spec spec (find "hm") topo in
  Alcotest.(check bool) "loopback completed" true live.Run_async.completed;
  check_traces_equal "loopback vs async golden" (Buffer.contents buf) golden

let test_rerun_byte_identical () =
  let topo = topology ~n:8 ~seed:1 in
  List.iter
    (fun name ->
      let a, _ = sync_trace ~seed:1 (find name) topo in
      let b, _ = sync_trace ~seed:1 (find name) topo in
      Alcotest.(check string) (name ^ " sync rerun") a b)
    [ "hm"; "rand_gossip" ];
  let a, _ = async_trace ~seed:1 (find "hm") topo in
  let b, _ = async_trace ~seed:1 (find "hm") topo in
  Alcotest.(check string) "hm async rerun" a b

let test_jobs_invariance () =
  (* tracing through the domain pool: the per-seed traces must not
     depend on the worker count *)
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let trace_of seed =
    fst (sync_trace ~seed (find "hm") (topology ~n:8 ~seed))
  in
  let sequential = Pool.map ~jobs:1 trace_of seeds in
  let parallel = Pool.map ~jobs:4 trace_of seeds in
  List.iteri
    (fun i (a, b) -> check_traces_equal (Printf.sprintf "seed %d" (List.nth seeds i)) b a)
    (List.combine sequential parallel)

(* --- sinks --------------------------------------------------------- *)

let ev_send i = Trace.Send { src = i; dst = i + 1; pointers = i; bytes = i }

let test_null_sink () =
  Alcotest.(check bool) "null is null" true (Trace.is_null Trace.null);
  Trace.emit Trace.null (ev_send 1);
  (* emit on null is a no-op *)
  Trace.flush Trace.null;
  let buf = Buffer.create 16 in
  Alcotest.(check bool) "buffer sink is not null" false (Trace.is_null (Trace.buffer buf))

let test_json_encoding () =
  let cases =
    [
      (Trace.Round_begin { round = 3 }, {|{"ev":"round_begin","round":3}|});
      (Trace.Tick { node = 2; time = 1.5; count = 7 }, {|{"ev":"tick","node":2,"time":1.5,"count":7}|});
      (Trace.Send { src = 0; dst = 4; pointers = 3; bytes = 9 },
       {|{"ev":"send","src":0,"dst":4,"pointers":3,"bytes":9}|});
      (Trace.Deliver { src = 0; dst = 4 }, {|{"ev":"deliver","src":0,"dst":4}|});
      (Trace.Drop { src = 1; dst = 2; reason = Trace.Loss },
       {|{"ev":"drop","src":1,"dst":2,"reason":"loss"}|});
      (Trace.Drop { src = 1; dst = 2; reason = Trace.Dead_dst },
       {|{"ev":"drop","src":1,"dst":2,"reason":"dead_dst"}|});
      (Trace.Drop { src = 1; dst = 2; reason = Trace.Unjoined_dst },
       {|{"ev":"drop","src":1,"dst":2,"reason":"unjoined_dst"}|});
      (Trace.Crash { node = 5 }, {|{"ev":"crash","node":5}|});
      (Trace.Join { node = 6 }, {|{"ev":"join","node":6}|});
      (Trace.Complete, {|{"ev":"complete"}|});
      (Trace.Give_up, {|{"ev":"give_up"}|});
    ]
  in
  List.iter
    (fun (ev, json) -> Alcotest.(check string) json json (Trace.event_to_json ev))
    cases;
  (* %.12g: compact, trailing-zero-free, byte-stable across reruns *)
  Alcotest.(check string) "float formatting"
    {|{"ev":"tick","node":0,"time":0.3,"count":1}|}
    (Trace.event_to_json (Trace.Tick { node = 0; time = 0.3; count = 1 }));
  let t1 = Trace.event_to_json (Trace.Tick { node = 0; time = 0.1 +. 0.2; count = 1 }) in
  let t2 = Trace.event_to_json (Trace.Tick { node = 0; time = 0.1 +. 0.2; count = 1 }) in
  Alcotest.(check string) "equal floats print identically" t1 t2

let test_tee_and_callback () =
  let b1 = Buffer.create 64 and b2 = Buffer.create 64 in
  let flushed = ref 0 in
  let count = ref 0 in
  let counting = Trace.callback ~flush:(fun () -> incr flushed) (fun _ -> incr count) in
  let sink = Trace.tee (Trace.buffer b1) (Trace.tee (Trace.buffer b2) counting) in
  List.iter (Trace.emit sink) [ ev_send 0; ev_send 1; Trace.Complete ];
  Trace.flush sink;
  Alcotest.(check string) "tee duplicates" (Buffer.contents b1) (Buffer.contents b2);
  Alcotest.(check int) "callback saw every event" 3 !count;
  Alcotest.(check int) "flush propagates" 1 !flushed;
  (* tee with null collapses *)
  let s = Trace.buffer b1 in
  Alcotest.(check bool) "tee null s = s" false (Trace.is_null (Trace.tee Trace.null s));
  Alcotest.(check bool) "tee null null = null" true (Trace.is_null (Trace.tee Trace.null Trace.null))

let test_ring () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.Ring.create: capacity must be positive") (fun () ->
      ignore (Trace.Ring.create ~capacity:0));
  let ring = Trace.Ring.create ~capacity:4 in
  let sink = Trace.Ring.sink ring in
  Alcotest.(check int) "empty length" 0 (Trace.Ring.length ring);
  Trace.emit sink (ev_send 0);
  Trace.emit sink (ev_send 1);
  Alcotest.(check int) "partial length" 2 (Trace.Ring.length ring);
  Alcotest.(check int) "no drops yet" 0 (Trace.Ring.dropped ring);
  for i = 2 to 9 do
    Trace.emit sink (ev_send i)
  done;
  Alcotest.(check int) "bounded length" 4 (Trace.Ring.length ring);
  Alcotest.(check int) "overwrites counted" 6 (Trace.Ring.dropped ring);
  Alcotest.(check (list string)) "last events, oldest first"
    (List.map (fun i -> Trace.event_to_json (ev_send i)) [ 6; 7; 8; 9 ])
    (Array.to_list (Array.map Trace.event_to_json (Trace.Ring.contents ring)))

let test_ring_flight_recorder () =
  (* a ring on a real run holds exactly the trailing window *)
  let full = Buffer.create 4096 in
  let ring = Trace.Ring.create ~capacity:16 in
  let r =
    Run.exec_spec
      {
        Run.default_spec with
        Run.seed = 1;
        trace = Trace.tee (Trace.buffer full) (Trace.Ring.sink ring);
      }
      (find "hm") (topology ~n:8 ~seed:1)
  in
  Alcotest.(check bool) "completed" true r.Run.completed;
  let all = String.split_on_char '\n' (String.trim (Buffer.contents full)) in
  let tail =
    List.filteri (fun i _ -> i >= List.length all - 16) all
  in
  Alcotest.(check (list string)) "ring = trailing window" tail
    (Array.to_list (Array.map Trace.event_to_json (Trace.Ring.contents ring)));
  Alcotest.(check int) "dropped = total - capacity" (List.length all - 16)
    (Trace.Ring.dropped ring)

(* --- invariant checker: real runs --------------------------------- *)

let checked_sync ?fault ?completion ~seed algo topo =
  let inv = Trace.Invariants.create () in
  let fault = Option.value fault ~default:Fault.none in
  let completion = Option.value completion ~default:Run.Strong in
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed; fault; completion; trace = Trace.Invariants.sink inv }
      algo topo
  in
  Trace.Invariants.final_check inv r.Run.metrics;
  (inv, r)

let test_invariants_clean_runs () =
  List.iter
    (fun name ->
      let inv, r = checked_sync ~seed:1 (find name) (topology ~n:8 ~seed:1) in
      Alcotest.(check bool) (name ^ " completed") true r.Run.completed;
      Alcotest.(check bool) (name ^ " saw events") true (Trace.Invariants.events_seen inv > 0))
    golden_algos

let test_invariants_under_faults () =
  let topo = topology ~n:32 ~seed:2 in
  (* loss *)
  let _, r = checked_sync ~fault:(Fault.with_loss Fault.none ~p:0.3) ~seed:2 (find "hm") topo in
  Alcotest.(check bool) "loss run completed" true r.Run.completed;
  Alcotest.(check bool) "some drops" true (r.Run.dropped > 0);
  (* crashes *)
  let fault = Repro_experiments.Sweepcell.crash_fault ~seed:2 ~n:32 ~count:5 in
  let _, r = checked_sync ~fault ~completion:Run.Survivors_strong ~seed:2 (find "hm") topo in
  Alcotest.(check bool) "crash run completed" true r.Run.completed;
  (* late joins *)
  let fault = Fault.with_joins Fault.none [ (3, 4); (7, 6); (11, 4) ] in
  let _, r = checked_sync ~fault ~seed:2 (find "hm") topo in
  Alcotest.(check bool) "churn run completed" true r.Run.completed;
  (* a run that gives up must still satisfy every invariant *)
  let inv = Trace.Invariants.create () in
  let r =
    Run.exec_spec
      {
        Run.default_spec with
        Run.seed = 1;
        max_rounds = Some 5;
        trace = Trace.Invariants.sink inv;
      }
      (find "flooding") (Generate.path 64)
  in
  Alcotest.(check bool) "budget exhausted" false r.Run.completed;
  Trace.Invariants.final_check inv r.Run.metrics

let test_invariants_async () =
  let topo = topology ~n:16 ~seed:3 in
  let check ?(fault = Fault.none) ?(completion = Run.Strong) name =
    let inv = Trace.Invariants.create () in
    let r =
      Run_async.exec_spec
        { Run_async.default_spec with Run_async.seed = 3; fault; completion;
          trace = Trace.Invariants.sink inv }
        (find "hm") topo
    in
    Alcotest.(check bool) (name ^ " completed") true r.Run_async.completed;
    Trace.Invariants.final_check inv r.Run_async.metrics
  in
  check "clean";
  check ~fault:(Fault.with_loss Fault.none ~p:0.2) "lossy";
  check
    ~fault:(Repro_experiments.Sweepcell.crash_fault ~seed:3 ~n:16 ~count:3)
    ~completion:Run.Survivors_strong "crashy";
  check ~fault:(Fault.with_joins Fault.none [ (2, 3); (9, 5) ]) "churny"

(* --- invariant checker: violations -------------------------------- *)

let expect_violation name events =
  let inv = Trace.Invariants.create () in
  let sink = Trace.Invariants.sink inv in
  match List.iter (Trace.emit sink) events with
  | () -> Alcotest.failf "%s: no violation raised" name
  | exception Trace.Invariants.Violation _ -> ()

let test_violations () =
  let open Trace in
  expect_violation "round skip" [ Round_begin { round = 2 } ];
  expect_violation "round repeat"
    [ Round_begin { round = 1 }; Round_begin { round = 2 }; Round_begin { round = 2 } ];
  expect_violation "unresolved messages at round boundary"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Join { node = 1 };
      Send { src = 0; dst = 1; pointers = 1; bytes = 1 };
      Round_begin { round = 2 };
    ];
  expect_violation "unresolved messages at completion"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Send { src = 0; dst = 0; pointers = 1; bytes = 1 };
      Complete;
    ];
  expect_violation "send from unjoined node"
    [ Round_begin { round = 1 }; Send { src = 0; dst = 1; pointers = 1; bytes = 1 } ];
  expect_violation "send from crashed node"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Crash { node = 0 };
      Send { src = 0; dst = 1; pointers = 1; bytes = 1 };
    ];
  expect_violation "delivery without a send"
    [ Round_begin { round = 1 }; Join { node = 1 }; Deliver { src = 0; dst = 1 } ];
  expect_violation "delivery to crashed node"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Join { node = 1 };
      Crash { node = 1 };
      Send { src = 0; dst = 1; pointers = 1; bytes = 1 };
      Deliver { src = 0; dst = 1 };
    ];
  expect_violation "drop blamed on a live destination"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Join { node = 1 };
      Send { src = 0; dst = 1; pointers = 1; bytes = 1 };
      Drop { src = 0; dst = 1; reason = Dead_dst };
    ];
  expect_violation "drop blamed on unjoined destination that joined"
    [
      Round_begin { round = 1 };
      Join { node = 0 };
      Join { node = 1 };
      Send { src = 0; dst = 1; pointers = 1; bytes = 1 };
      Drop { src = 0; dst = 1; reason = Unjoined_dst };
    ];
  expect_violation "double join" [ Join { node = 0 }; Join { node = 0 } ];
  expect_violation "double crash"
    [ Join { node = 0 }; Crash { node = 0 }; Crash { node = 0 } ];
  expect_violation "join after crash" [ Crash { node = 0 }; Join { node = 0 } ];
  expect_violation "event after completion" [ Complete; Round_begin { round = 1 } ];
  expect_violation "time goes backwards"
    [
      Join { node = 0 };
      Tick { node = 0; time = 1.0; count = 1 };
      Tick { node = 0; time = 0.5; count = 2 };
    ];
  expect_violation "tick counts must be consecutive"
    [ Join { node = 0 }; Tick { node = 0; time = 0.5; count = 2 } ];
  expect_violation "tick from crashed node"
    [ Join { node = 0 }; Crash { node = 0 }; Tick { node = 0; time = 1.0; count = 1 } ]

let test_final_check_violations () =
  let expect name f =
    match f () with
    | () -> Alcotest.failf "%s: no violation raised" name
    | exception Trace.Invariants.Violation _ -> ()
  in
  (* no termination event *)
  expect "unterminated run" (fun () ->
      Trace.Invariants.final_check (Trace.Invariants.create ()) (Metrics.create ()));
  (* trace and metrics disagree *)
  expect "metrics disagreement" (fun () ->
      let inv = Trace.Invariants.create () in
      List.iter (Trace.emit (Trace.Invariants.sink inv)) [ Trace.Round_begin { round = 1 }; Trace.Complete ];
      let m = Metrics.create () in
      Metrics.begin_round m;
      Metrics.record_send m ~pointers:1 ~bytes:1;
      Metrics.record_delivery m;
      Trace.Invariants.final_check inv m);
  (* the happy path really is happy *)
  let inv = Trace.Invariants.create () in
  List.iter (Trace.emit (Trace.Invariants.sink inv)) [ Trace.Round_begin { round = 1 }; Trace.Complete ];
  Trace.Invariants.final_check inv (Metrics.create ());
  Alcotest.(check int) "events counted" 2 (Trace.Invariants.events_seen inv)

let () =
  Alcotest.run "trace"
    [
      ( "golden traces",
        [
          Alcotest.test_case "match committed goldens" `Quick test_goldens;
          Alcotest.test_case "async golden and loopback identity" `Quick test_golden_async;
          Alcotest.test_case "reruns are byte-identical" `Quick test_rerun_byte_identical;
          Alcotest.test_case "jobs=1 and jobs=4 traces agree" `Quick test_jobs_invariance;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "json encoding" `Quick test_json_encoding;
          Alcotest.test_case "tee and callback" `Quick test_tee_and_callback;
          Alcotest.test_case "ring buffer" `Quick test_ring;
          Alcotest.test_case "ring as flight recorder" `Quick test_ring_flight_recorder;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean runs pass" `Quick test_invariants_clean_runs;
          Alcotest.test_case "fault runs pass" `Quick test_invariants_under_faults;
          Alcotest.test_case "async runs pass" `Quick test_invariants_async;
          Alcotest.test_case "violations detected" `Quick test_violations;
          Alcotest.test_case "final check" `Quick test_final_check_violations;
        ] );
    ]
