The algorithm catalogue is stable:

  $ ../../bin/discovery_cli.exe list
  flooding       HLL99 flooding: forward new knowledge along initial edges
  swamping       HLL99 swamping: full knowledge to all current neighbors (graph squaring)
  pointer_jump   HLL99 random pointer jump: pull full knowledge from one random known node
  name_dropper   HLL99 Name-Dropper: push full knowledge to one random known node
  min_pointer    deterministic KPV-style convergecast: knowledge flows to the minimum known label, roots broadcast
  rand_gossip    flat push-pull gossip with direct addressing (log-n comparison point)
  hm             Haeupler-Malkhi sub-logarithmic discovery: rank-based cluster convergecast with head broadcast

Runs are a pure function of (algorithm, topology, seed):

  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 256 --seed 1
  algorithm        : hm
  topology         : kout:3 (n=256, m=1522)
  seed             : 1
  completed        : true
  rounds           : 5
  messages         : 4550
  pointers         : 277451
  wire bytes       : 98915 (adaptive codec)
  dropped          : 0
  peak msgs/round  : 1373

Topology description:

  $ ../../bin/discovery_cli.exe topo --topology star -n 16
  family        : star
  nodes         : 16
  edges         : 30
  weakly conn.  : true
  diameter est. : 2
  out-degree    : mean 1.9, min 1, max 15

Seed replication shards the run over worker domains and aggregates;
the per-seed numbers are identical at any --jobs:

  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 128 --seed 1 --seeds 3 --jobs 2
  algorithm        : hm
  topology         : kout:3 (n=128)
  seeds            : 1..3 (3 replicates, jobs=2)
    seed 1   : rounds 5    messages 2167      pointers 91180       bytes 28898
    seed 2   : rounds 5    messages 2164      pointers 81623       bytes 28811
    seed 3   : rounds 5    messages 2231      pointers 92778       bytes 30171
  rounds           : 5.0 ± 0.0
  messages         : 2187.3 ± 37.8
  pointers         : 88527.0 ± 6032.2
  wire bytes       : 29293.3 ± 761.3 (adaptive codec)

Unknown algorithms are rejected with the catalogue:

  $ ../../bin/discovery_cli.exe run --algo warp -n 16 2>&1 | head -2
  discovery: option '--algo': unknown algorithm "warp" (known: flooding,
             swamping, pointer_jump, name_dropper, min_pointer, rand_gossip, hm

Near misses get a suggestion:

  $ ../../bin/discovery_cli.exe run --algo hm_gossip -n 16 2>&1 | head -2
  discovery: option '--algo': unknown algorithm "hm_gossip" — did you mean
             "hm"? (known: flooding, swamping, pointer_jump, name_dropper,

The experiments runner lists its deliverables:

  $ ../../bin/experiments.exe --list
  T1   rounds vs n, all algorithms
  T2   message complexity vs n
  T3   pointer complexity vs n
  F1   rounds-vs-n curves
  T4   topology sensitivity
  F3   rounds vs diameter (paths)
  T5   message-loss robustness
  T6   crash-stop failures
  T7   design ablations
  T8   wire-byte complexity
  T9   discovery under churn
  T10  asynchronous execution
  T11  local termination detection
  F2   knowledge-growth dynamics
  F4   per-round message budget
  F5   cluster-head population dynamics

  $ ../../bin/experiments.exe --only T99 2>&1
  experiments: unknown experiment id(s): T99 (known: T1, T2, T3, F1, T4, F3, T5, T6, T7, T8, T9, T10, T11, F2, F4, F5)
  [124]
