The algorithm catalogue is stable:

  $ ../../bin/discovery_cli.exe list
  flooding       HLL99 flooding: forward new knowledge along initial edges
  swamping       HLL99 swamping: full knowledge to all current neighbors (graph squaring)
  pointer_jump   HLL99 random pointer jump: pull full knowledge from one random known node
  name_dropper   HLL99 Name-Dropper: push full knowledge to one random known node
  min_pointer    deterministic KPV-style convergecast: knowledge flows to the minimum known label, roots broadcast
  rand_gossip    flat push-pull gossip with direct addressing (log-n comparison point)
  hm             Haeupler-Malkhi sub-logarithmic discovery: rank-based cluster convergecast with head broadcast

Runs are a pure function of (algorithm, topology, seed):

  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 256 --seed 1
  algorithm        : hm
  topology         : kout:3 (n=256, m=1522)
  seed             : 1
  completed        : true
  rounds           : 5
  messages         : 4550
  pointers         : 277451
  wire bytes       : 98915 (adaptive codec)
  dropped          : 0
  peak msgs/round  : 1373

Topology description:

  $ ../../bin/discovery_cli.exe topo --topology star -n 16
  family        : star
  nodes         : 16
  edges         : 30
  weakly conn.  : true
  diameter est. : 2
  out-degree    : mean 1.9, min 1, max 15

Seed replication shards the run over worker domains and aggregates;
the per-seed numbers are identical at any --jobs:

  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 128 --seed 1 --seeds 3 --jobs 2
  algorithm        : hm
  topology         : kout:3 (n=128)
  seeds            : 1..3 (3 replicates, jobs=2)
    seed 1   : rounds 5    messages 2167      pointers 91180       bytes 28898
    seed 2   : rounds 5    messages 2164      pointers 81623       bytes 28811
    seed 3   : rounds 5    messages 2231      pointers 92778       bytes 30171
  rounds           : 5.0 ± 0.0
  messages         : 2187.3 ± 37.8
  pointers         : 88527.0 ± 6032.2
  wire bytes       : 29293.3 ± 761.3 (adaptive codec)

Unknown algorithms are rejected with the catalogue:

  $ ../../bin/discovery_cli.exe run --algo warp -n 16 2>&1 | head -2
  discovery: option '--algo': unknown algorithm "warp" (known: flooding,
             swamping, pointer_jump, name_dropper, min_pointer, rand_gossip, hm

Near misses get a suggestion (module-style names like hm_gossip are
accepted outright as aliases):

  $ ../../bin/discovery_cli.exe run --algo floding -n 16 2>&1 | head -2
  discovery: option '--algo': unknown algorithm "floding" — did you mean
             "flooding"? (known: flooding, swamping, pointer_jump,

Structured event traces: one JSONL line per lifecycle event, reruns
byte-identical, the invariant checker certifying the stream online:

  $ ../../bin/discovery_cli.exe trace --algo hm_gossip --topology kout:3 -n 8 --seed 1 -o a.jsonl --check
  trace invariants ok (79 events)
  $ head -4 a.jsonl
  {"ev":"round_begin","round":1}
  {"ev":"join","node":0}
  {"ev":"join","node":1}
  {"ev":"join","node":2}
  $ tail -1 a.jsonl
  {"ev":"complete"}

  $ ../../bin/discovery_cli.exe trace --algo hm --topology kout:3 -n 8 --seed 1 -o b.jsonl
  $ cmp a.jsonl b.jsonl && echo byte-identical
  byte-identical

trace-diff certifies agreement, or pinpoints the first divergence:

  $ ../../bin/discovery_cli.exe trace-diff a.jsonl b.jsonl
  traces identical (79 events)

Divergence is an operational failure: exit 1, distinct from usage
errors (exit 2):

  $ ../../bin/discovery_cli.exe trace --algo hm --topology kout:3 -n 8 --seed 2 -o c.jsonl
  $ ../../bin/discovery_cli.exe trace-diff a.jsonl c.jsonl
  traces diverge at event 10:
    a.jsonl: {"ev":"send","src":0,"dst":7,"pointers":7,"bytes":3}
    c.jsonl: {"ev":"send","src":0,"dst":2,"pointers":5,"bytes":3}
  discovery: traces differ
  [1]

Usage errors are caught before any run and exit 2:

  $ ../../bin/discovery_cli.exe trace-diff a.jsonl 2>&1 | head -2
  discovery: required argument TRACE_B is missing
  Usage: discovery trace-diff [OPTION]… TRACE_A TRACE_B

  $ ../../bin/discovery_cli.exe trace-diff a.jsonl 2>/dev/null
  [2]

  $ ../../bin/discovery_cli.exe trace-diff a.jsonl no_such_file.jsonl 2>&1 | head -2
  discovery: TRACE_B argument: no 'no_such_file.jsonl' file
  Usage: discovery trace-diff [OPTION]… TRACE_A TRACE_B

Live execution: the cluster harness runs the same configuration as real
node processes over sockets. The loopback backend is in-process and
trace-identical to the async simulator; uds forks one process per node.
The JSON report's timings vary, so pin only the verdict fields:

  $ ../../bin/discovery_cli.exe cluster --backend loopback -n 8 --algo hm --seed 1 \
  >   | grep -c '"converged":true.*"invariants":{"status":"passed"'
  1

  $ ../../bin/discovery_cli.exe cluster --backend uds -n 8 --algo hm --seed 1 \
  >   | grep -c '"converged":true.*"invariants":{"status":"passed"'
  1

trace-diff certifies the loopback backend against the async simulator:
same (algorithm, topology, seed) — byte-identical event stream:

  $ ../../bin/discovery_cli.exe trace --async --algo hm --topology kout:3 -n 8 --seed 1 -o sim.jsonl
  $ ../../bin/discovery_cli.exe cluster --backend loopback -n 8 --algo hm --seed 1 \
  >   --trace-out live.jsonl > /dev/null
  $ ../../bin/discovery_cli.exe trace-diff sim.jsonl live.jsonl
  traces identical (87 events)

The mux backend hosts every node as a live protocol instance — full
wire stack, one process — and certifies against loopback the same way:

  $ ../../bin/discovery_cli.exe cluster --backend mux -n 8 --algo hm --seed 1 \
  >   --trace-out muxed.jsonl | grep -c '"converged":true.*"invariants":{"status":"passed"'
  1
  $ ../../bin/discovery_cli.exe trace-diff live.jsonl muxed.jsonl
  traces identical (87 events)

A node killed mid-run is reported as crashed — never hung — the JSON
verdict names the sabotaged node, and the run fails with exit 1:

  $ ../../bin/discovery_cli.exe cluster --backend uds -n 8 --algo hm --seed 1 --kill 3 --no-check 2>/dev/null \
  >   | grep -c '"converged":false.*"crashed":\[3\],"killed":3'
  1
  $ ../../bin/discovery_cli.exe cluster --backend uds -n 8 --algo hm --seed 1 --kill 3 --no-check >/dev/null 2>&1
  [1]

A healthy run reports no sabotage:

  $ ../../bin/discovery_cli.exe cluster --backend uds -n 4 --algo hm --seed 1 2>/dev/null \
  >   | grep -c '"killed":null'
  1

  $ ../../bin/discovery_cli.exe cluster --backend warp -n 8 2>&1 | head -1
  discovery: option '--backend': unknown backend "warp" (loopback|uds|tcp|mux)
  $ ../../bin/discovery_cli.exe cluster --backend warp -n 8 2>/dev/null
  [2]

Unified fault plans drive every execution path from one DSL string.
On the simulators the same plan replays deterministically:

  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 64 --seed 1 \
  >   --fault loss=0.2,crash=5@2,restart=5@6
  algorithm        : hm
  topology         : kout:3 (n=64, m=364)
  seed             : 1
  completed        : true
  rounds           : 6
  messages         : 1169
  pointers         : 33160
  wire bytes       : 9699 (adaptive codec)
  dropped          : 208
  peak msgs/round  : 250

A malformed plan is a usage error (exit 2), caught before any run:

  $ ../../bin/discovery_cli.exe run --fault loss=nope -n 8 2>&1 | head -1
  discovery: option '--fault': loss: not a number "nope"
  $ ../../bin/discovery_cli.exe run --fault loss=nope -n 8 2>/dev/null
  [2]
  $ ../../bin/discovery_cli.exe cluster --fault 'restart=3@9' -n 8 2>&1 | head -1
  discovery: option '--fault': Fault.with_restart: no crash scheduled for node

On the live path the plan is applied at frame level: the cluster below
converges through 10% loss plus a partition that heals, courtesy of
the reliability layer:

  $ ../../bin/discovery_cli.exe cluster --backend uds -n 8 --algo hm --seed 1 \
  >   --fault 'loss=0.1,part=0-3|4-7@2..8' 2>/dev/null \
  >   | grep -c '"converged":true.*"invariants":{"status":"passed"'
  1

The chaos soak runs seeded randomized plans (loss, duplication,
reordering, corruption, a healing partition, a crash with restart) and
verifies every trial with the invariant checker:

  $ ../../bin/discovery_cli.exe chaos --algo hm -n 8 --trials 3 --seed 42 --quiet \
  >   | grep -c '"trials":3,"passed":3,"failed":0'
  1
  $ ../../bin/discovery_cli.exe chaos --backend loopback 2>&1 | head -1
  discovery: option '--backend': chaos needs a live backend (uds|tcp|mux)

Adversarial scenarios: the named worst-case topologies are first-class
families. The sorted chain is min_pointer's deterministic worst case
(ids sorted against the rank order), and its numbers are a pure
function of the seed:

  $ ../../bin/discovery_cli.exe run --algo min_pointer --topology sorted_chain -n 64 --seed 1
  algorithm        : min_pointer
  topology         : sorted_chain (n=64, m=63)
  seed             : 1
  completed        : true
  rounds           : 10
  messages         : 1393
  pointers         : 39462
  wire bytes       : 12814 (adaptive codec)
  dropped          : 0
  peak msgs/round  : 189

  $ ../../bin/discovery_cli.exe topo --topology kniesburges:4 -n 16
  family        : kniesburges:4
  nodes         : 16
  edges         : 15
  weakly conn.  : true
  diameter est. : 9
  out-degree    : mean 0.9, min 0, max 1

WAN profiles put a per-link override on every cross-region link; a
conflicting pair of per-link overrides is rejected at parse time:

  $ ../../bin/discovery_cli.exe run --algo hm -n 8 \
  >   --fault 'link=1>2:loss=0.5,link=1>2:delay=1' 2>&1 | head -1
  discovery: option '--fault': duplicate link override for 1>2

The content audit arms a provenance invariant: a node injecting
fabricated identifiers is caught by the checker, as an operational
failure (exit 1, not a crash):

  $ ../../bin/discovery_cli.exe trace --algo hm --topology sorted_chain -n 64 --seed 1 \
  >   --fault 'fabricate=1@50,audit=1' -o fab.jsonl --check
  discovery: invariant violation: node 1 advertised id 50 it never genuinely learned (provenance violation)
  [1]

The chaos matrix sweeps algorithms x topologies x named plan families
over the mux backend's virtual clock, so its per-cell summary is
byte-reproducible (CI diffs the full grid against a pinned baseline):

  $ ../../bin/discovery_cli.exe chaos-matrix --algos hm --topologies sorted_chain \
  >   --plans crash,wan --trials 2 --seed 0 --quiet
  {"algo":"hm","topology":"sorted_chain","plan_family":"crash","n":8,"trials":2,"passed":2,"failed":0}
  {"algo":"hm","topology":"sorted_chain","plan_family":"wan","n":8,"trials":2,"passed":2,"failed":0}

The continuous service keeps discovery running as a long-lived fleet:
liveness probes, incremental anti-entropy, seeded churn, and an online
convergence-lag invariant. Same config, same report, byte for byte:

  $ ../../bin/discovery_cli.exe soak -n 32 --ticks 400 --churn 0.05 --seed 7 --quiet > s1.json
  $ ../../bin/discovery_cli.exe soak -n 32 --ticks 400 --churn 0.05 --seed 7 --quiet > s2.json
  $ cmp s1.json s2.json && echo byte-identical
  byte-identical
  $ grep -o '"epochs":[0-9]*,"epochs_closed":[0-9]*' s1.json
  "epochs":14,"epochs_closed":14

A quiet fleet pays only the probe floor — zero churn means zero
anti-entropy traffic:

  $ ../../bin/discovery_cli.exe soak -n 16 --ticks 200 --seed 1 --quiet \
  >   | grep -o '"gossip":0,"update_entries":0'
  "gossip":0,"update_entries":0

An unmeetable lag bound is an operational failure (exit 1), raised by
the online checker the moment the deadline passes:

  $ ../../bin/discovery_cli.exe soak -n 32 --ticks 300 --churn 0.1 --seed 7 --lag-bound 2 --quiet 2>&1 | head -1
  discovery soak: INVARIANT VIOLATION: convergence lag exceeded: node 20 has not converged to epoch 1 (change at t=3) by t=6 (bound 2)
  $ ../../bin/discovery_cli.exe soak -n 32 --ticks 300 --churn 0.1 --seed 7 --lag-bound 2 --quiet 2>/dev/null
  [1]

The standalone binary runs one live node per invocation: every process
gets the same address table (--peers; list position = node id) and
identifies itself by its --listen address. Three of them, each knowing
only its successor on a directed ring, discover all identifiers over
real unix-domain sockets and exit once complete and idle:

  $ D=$(mktemp -d /tmp/discovery-node-XXXXXX)
  $ P=$D/node-0.sock,$D/node-1.sock,$D/node-2.sock
  $ for i in 0 1 2; do
  >   ../../bin/discovery_node.exe --listen $D/node-$i.sock --peers $P \
  >     --algo hm --seed 1 --neighbors $(( (i+1) % 3 )) --idle-timeout 0.3 \
  >     > $D/out-$i.json &
  > done; wait
  $ cat $D/out-*.json | grep -c '"completed":true'
  3
  $ rm -rf $D

The experiments runner lists its deliverables:

  $ ../../bin/experiments.exe --list
  T1   rounds vs n, all algorithms
  T2   message complexity vs n
  T3   pointer complexity vs n
  F1   rounds-vs-n curves
  T4   topology sensitivity
  F3   rounds vs diameter (paths)
  T5   message-loss robustness
  T6   crash-stop failures
  T7   design ablations
  T8   wire-byte complexity
  T9   discovery under churn
  T10  asynchronous execution
  T11  local termination detection
  T12  adversarial scenario matrix
  T13  continuous service steady state
  T14  failure-detector precision under loss
  F2   knowledge-growth dynamics
  F4   per-round message budget
  F5   cluster-head population dynamics

  $ ../../bin/experiments.exe --only T99 2>&1
  experiments: unknown experiment id(s): T99 (known: T1, T2, T3, F1, T4, F3, T5, T6, T7, T8, T9, T10, T11, T12, T13, T14, F2, F4, F5)
  [124]
