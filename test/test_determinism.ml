(* A run is specified to be a pure function of (algorithm, topology,
   seed, fault model); these tests pin that down for every algorithm. *)

open Repro_engine
open Repro_graph
open Repro_discovery

let summary (r : Run.result) =
  (r.Run.completed, r.Run.rounds, r.Run.messages, r.Run.pointers, r.Run.dropped)

let run algo ~seed ?(fault = Fault.none) () =
  let topology = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:128 ~seed in
  Run.exec_spec { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 } algo topology

let test_same_seed (algo : Algorithm.t) () =
  let a = run algo ~seed:11 () and b = run algo ~seed:11 () in
  if summary a <> summary b then
    Alcotest.failf "%s not deterministic for fixed seed" algo.Algorithm.name

let test_seed_matters () =
  (* randomized algorithms should (almost surely) differ across seeds in
     at least one of the cost measures over a few seeds *)
  List.iter
    (fun (algo : Algorithm.t) ->
      let outcomes = List.map (fun seed -> summary (run algo ~seed ())) [ 1; 2; 3; 4 ] in
      let distinct = List.sort_uniq compare outcomes in
      if List.length distinct < 2 then
        Alcotest.failf "%s produced identical outcomes across seeds" algo.Algorithm.name)
    [ Name_dropper.algorithm; Rand_gossip.algorithm ]

let test_fault_determinism () =
  let fault = Fault.with_loss Fault.none ~p:0.2 in
  List.iter
    (fun (algo : Algorithm.t) ->
      let a = run algo ~seed:5 ~fault () and b = run algo ~seed:5 ~fault () in
      if summary a <> summary b then
        Alcotest.failf "%s not deterministic under loss" algo.Algorithm.name)
    [ Hm_gossip.algorithm; Name_dropper.algorithm ]

let test_min_pointer_uses_no_randomness () =
  (* the deterministic baseline must produce identical round counts on
     the same topology even when the run seed (hence label permutation
     and rng streams) changes — its decisions use raw ids only. To test
     this, fix the topology while varying the seed. *)
  let topology = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:128 ~seed:7 in
  let rounds =
    List.map
      (fun seed ->
        (Run.exec_spec
           { Run.default_spec with Run.seed; max_rounds = Some 2000 }
           Min_pointer.algorithm topology)
          .Run.rounds)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "identical rounds across seeds"
    [ List.hd rounds; List.hd rounds; List.hd rounds ]
    rounds

let test_sharded_run_trace_identical () =
  (* the domain-sharded engine is specified to replay the sequential
     event order exactly: the full structured trace — every send, drop,
     deliver, metric-bearing event, in order — must be byte-identical
     at any job count (see lib/engine/sim.ml). *)
  let traced ~seed ~jobs =
    let buf = Buffer.create (1 lsl 16) in
    let topology =
      Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n:1024 ~seed
    in
    let spec =
      {
        Run.default_spec with
        Run.seed;
        max_rounds = Some 2000;
        trace = Trace.buffer buf;
        jobs;
      }
    in
    let r = Run.exec_spec spec Hm_gossip.algorithm topology in
    (summary r, Buffer.contents buf)
  in
  List.iter
    (fun seed ->
      let s1, t1 = traced ~seed ~jobs:1 and s4, t4 = traced ~seed ~jobs:4 in
      if s1 <> s4 then Alcotest.failf "seed %d: sharded run result differs from sequential" seed;
      if not (String.equal t1 t4) then
        Alcotest.failf "seed %d: sharded run trace is not byte-identical (%d vs %d bytes)" seed
          (String.length t1) (String.length t4))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "determinism"
    [
      ( "fixed seed",
        List.map
          (fun (a : Algorithm.t) ->
            Alcotest.test_case a.Algorithm.name `Quick (test_same_seed a))
          Registry.all );
      ( "sensitivity",
        [
          Alcotest.test_case "randomized algorithms vary with seed" `Quick test_seed_matters;
          Alcotest.test_case "deterministic under loss" `Quick test_fault_determinism;
          Alcotest.test_case "min_pointer is seed-independent" `Quick
            test_min_pointer_uses_no_randomness;
          Alcotest.test_case "sharded run trace is byte-identical" `Quick
            test_sharded_run_trace_identical;
        ] );
    ]
