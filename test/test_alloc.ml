open Repro_util
open Repro_discovery

(* Regression guard for the allocation-free hot path: a steady-state
   flooding round at n = 4096 with tracing off must not allocate on the
   minor heap. Once a node's [sent_upto] mark has caught up with its
   knowledge, the round body is a single integer comparison — any
   reintroduced per-node or per-send allocation shows up here as at
   least one word per node, far above the measurement overhead of the
   [Gc.minor_words] calls themselves (which box their float results). *)

let n = 4096

let make_instances () =
  let labels = Array.init n (fun i -> i) in
  Array.init n (fun i ->
      Flooding.algorithm.make
        {
          Algorithm.n;
          node = i;
          neighbors = [| (i + 1) mod n |];
          labels;
          rng = Rng.create ~seed:i;
          params = Params.default;
        })

let send_sink ~dst:_ (_ : Payload.t) = ()

let run_round inst = inst.Algorithm.round ~round:2 ~send:send_sink

let test_steady_state_flooding_round_allocates_nothing () =
  let instances = make_instances () in
  (* saturate every node's knowledge, then flush the backlog once so the
     next round is the converged steady state *)
  let everyone = Payload.Share (Payload.Ids (Array.init n (fun i -> i))) in
  Array.iter (fun inst -> inst.Algorithm.receive ~src:0 everyone) instances;
  Array.iter (fun inst -> inst.Algorithm.round ~round:1 ~send:send_sink) instances;
  (* calibrate the overhead of the measurement window itself *)
  let cal_before = Gc.minor_words () in
  let cal_after = Gc.minor_words () in
  let overhead = cal_after -. cal_before in
  let before = Gc.minor_words () in
  Array.iter run_round instances;
  let after = Gc.minor_words () in
  let extra = after -. before -. overhead in
  if extra > 64.0 then
    Alcotest.failf "steady-state flooding round allocated %.0f minor words (expected 0)" extra

(* Same guard for the compact knowledge regime (large n): a steady-state
   swamping broadcast re-fans the version-cached message out of the
   compressed set, and each receiver's merge hits the same-snapshot
   memo — no payload rebuild, no enumeration, no minor allocation. This
   is what benchmark subject B9 (broadcast_round_65536) measures; the
   pin here runs at a reduced universe by forcing the regime switch. *)
let test_steady_state_broadcast_round_allocates_nothing () =
  let saved = !Knowledge.tracked_max in
  Knowledge.tracked_max := 512;
  Fun.protect
    ~finally:(fun () -> Knowledge.tracked_max := saved)
    (fun () ->
      let bn = 4096 in
      let labels = Array.init bn (fun i -> i) in
      let mk node =
        Swamping.algorithm.Algorithm.make
          {
            Algorithm.n = bn;
            node;
            neighbors = [||];
            labels;
            rng = Rng.create ~seed:node;
            params = Params.default;
          }
      in
      let sender = mk 0 and receiver = mk 1 in
      let full = Cset.create bn in
      for v = 0 to bn - 1 do
        ignore (Cset.add full v)
      done;
      assert (not (Knowledge.is_tracked sender.Algorithm.knowledge));
      ignore (Knowledge.merge_bits sender.Algorithm.knowledge full);
      ignore (Knowledge.merge_bits receiver.Algorithm.knowledge full);
      let send ~dst:_ payload = receiver.Algorithm.receive ~src:0 payload in
      (* round 1 builds and caches the snapshot message; from round 2 on
         the broadcast is the steady state *)
      sender.Algorithm.round ~round:1 ~send;
      let cal_before = Gc.minor_words () in
      let cal_after = Gc.minor_words () in
      let overhead = cal_after -. cal_before in
      let before = Gc.minor_words () in
      sender.Algorithm.round ~round:2 ~send;
      let after = Gc.minor_words () in
      let extra = after -. before -. overhead in
      if extra > 64.0 then
        Alcotest.failf "steady-state broadcast round allocated %.0f minor words (expected 0)"
          extra)

let () =
  Alcotest.run "alloc"
    [
      ( "regression",
        [
          Alcotest.test_case "steady-state flooding round is allocation-free" `Quick
            test_steady_state_flooding_round_allocates_nothing;
          Alcotest.test_case "steady-state compact broadcast round is allocation-free" `Quick
            test_steady_state_broadcast_round_allocates_nothing;
        ] );
    ]
