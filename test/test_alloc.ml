open Repro_util
open Repro_discovery

(* Regression guard for the allocation-free hot path: a steady-state
   flooding round at n = 4096 with tracing off must not allocate on the
   minor heap. Once a node's [sent_upto] mark has caught up with its
   knowledge, the round body is a single integer comparison — any
   reintroduced per-node or per-send allocation shows up here as at
   least one word per node, far above the measurement overhead of the
   [Gc.minor_words] calls themselves (which box their float results). *)

let n = 4096

let make_instances () =
  let labels = Array.init n (fun i -> i) in
  Array.init n (fun i ->
      Flooding.algorithm.make
        {
          Algorithm.n;
          node = i;
          neighbors = [| (i + 1) mod n |];
          labels;
          rng = Rng.create ~seed:i;
          params = Params.default;
        })

let send_sink ~dst:_ (_ : Payload.t) = ()

let run_round inst = inst.Algorithm.round ~round:2 ~send:send_sink

let test_steady_state_flooding_round_allocates_nothing () =
  let instances = make_instances () in
  (* saturate every node's knowledge, then flush the backlog once so the
     next round is the converged steady state *)
  let everyone = Payload.Share (Payload.Ids (Array.init n (fun i -> i))) in
  Array.iter (fun inst -> inst.Algorithm.receive ~src:0 everyone) instances;
  Array.iter (fun inst -> inst.Algorithm.round ~round:1 ~send:send_sink) instances;
  (* calibrate the overhead of the measurement window itself *)
  let cal_before = Gc.minor_words () in
  let cal_after = Gc.minor_words () in
  let overhead = cal_after -. cal_before in
  let before = Gc.minor_words () in
  Array.iter run_round instances;
  let after = Gc.minor_words () in
  let extra = after -. before -. overhead in
  if extra > 64.0 then
    Alcotest.failf "steady-state flooding round allocated %.0f minor words (expected 0)" extra

let () =
  Alcotest.run "alloc"
    [
      ( "regression",
        [
          Alcotest.test_case "steady-state flooding round is allocation-free" `Quick
            test_steady_state_flooding_round_allocates_nothing;
        ] );
    ]
